// Package uis runs a userspace TCP/IP stack over a packet Device and
// exposes it through the standard net.Conn / net.Listener shapes — the
// bassosimone/uis pattern. A real Go net/http client can dial through
// it, its bytes ride the repo's own tcpstack as raw IPv4 datagrams,
// and whatever sits on the far side of the device (the intangd proxy,
// a simulated censored path, a test pipe) sees honest wire traffic.
//
// Internally the stack owns a private discrete-event simulator that a
// wall-clock pump advances, so the tcpstack's virtual timers (RTO,
// persist, TIME_WAIT) fire in real time. One mutex serializes the
// simulator, the TCP state machines, and the connection buffers; the
// read pump and the clock pump are the only goroutines that take it
// besides callers.
package uis

import (
	"context"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"time"

	"intango/internal/device"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// Config parameterizes a Stack.
type Config struct {
	// Addr is the stack's IPv4 address (required).
	Addr packet.Addr
	// Profile is the TCP profile; the zero value means Linux 4.4.
	Profile tcpstack.Profile
	// Seed drives the stack's private simulator (ISNs, timer jitter).
	Seed int64
	// Tick is the wall-clock granularity of the virtual clock pump
	// (default 1ms).
	Tick time.Duration
	// TimeScale multiplies wall time into virtual time (default 1.0);
	// >1 makes the stack's timers run fast, matching a proxy world
	// driven at the same scale.
	TimeScale float64
	// DialTimeout bounds Dial's wait for the handshake (default 10s).
	DialTimeout time.Duration
	// Hosts resolves names the Dialer sees to addresses on the far
	// side of the device; literal IPv4 strings always resolve.
	Hosts map[string]packet.Addr
}

// Stack is a userspace TCP/IP endpoint bound to a Device.
type Stack struct {
	cfg Config
	dev device.Device

	mu   sync.Mutex
	note sync.Cond
	sim  *netem.Simulator
	tcp  *tcpstack.Stack
	down bool // device closed under us

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// New builds a stack over dev and starts its pumps.
func New(dev device.Device, cfg Config) *Stack {
	if cfg.Profile.Name == "" {
		cfg.Profile = tcpstack.Linux44()
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	s := &Stack{cfg: cfg, dev: dev, stop: make(chan struct{})}
	s.note.L = &s.mu
	s.sim = netem.NewSimulator(cfg.Seed)
	s.tcp = tcpstack.NewStack(cfg.Addr, cfg.Profile, s.sim)
	s.tcp.AttachDevice(dev)
	s.wg.Add(2)
	go s.readPump()
	go s.clockPump()
	return s
}

// Close stops the pumps and closes the underlying device.
func (s *Stack) Close() error {
	s.once.Do(func() {
		close(s.stop)
		s.dev.Close() // unblocks the read pump
	})
	s.wg.Wait()
	return nil
}

// readPump moves inbound datagrams from the device into the TCP stack.
func (s *Stack) readPump() {
	defer s.wg.Done()
	for {
		pkt, err := s.dev.ReadPacket()
		if err != nil {
			s.mu.Lock()
			s.down = true
			s.mu.Unlock()
			s.note.Broadcast()
			return
		}
		s.mu.Lock()
		s.tcp.Deliver(pkt)
		s.mu.Unlock()
		s.note.Broadcast()
	}
}

// clockPump advances the private simulator with the wall clock, firing
// the stack's virtual timers. Every tick also wakes blocked readers so
// deadlines are re-checked at tick granularity.
func (s *Stack) clockPump() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.Tick)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			el := now.Sub(last)
			last = now
			if s.cfg.TimeScale != 1 {
				el = time.Duration(float64(el) * s.cfg.TimeScale)
			}
			s.mu.Lock()
			s.sim.RunFor(el)
			s.mu.Unlock()
			s.note.Broadcast()
		}
	}
}

// Dial opens a TCP connection to raddr:rport through the device and
// blocks until the handshake completes (or DialTimeout).
func (s *Stack) Dial(raddr packet.Addr, rport uint16) (net.Conn, error) {
	return s.dial(raddr, rport, time.Now().Add(s.cfg.DialTimeout))
}

func (s *Stack) dial(raddr packet.Addr, rport uint16, deadline time.Time) (net.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down {
		return nil, device.ErrClosed
	}
	tc := s.tcp.Connect(raddr, rport)
	c := newConn(s, tc)
	for {
		switch tc.State() {
		case tcpstack.Established:
			return c, nil
		case tcpstack.SynSent, tcpstack.SynRecv:
			// still shaking hands
		default:
			return nil, s.refusedErr(tc, raddr, rport)
		}
		if s.down {
			return nil, device.ErrClosed
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, fmt.Errorf("uis: dial %v:%d: %w", raddr, rport, os.ErrDeadlineExceeded)
		}
		s.note.Wait()
	}
}

func (s *Stack) refusedErr(tc *tcpstack.Conn, raddr packet.Addr, rport uint16) error {
	why := tc.AbortReason
	if why == "" && tc.GotRST {
		why = "connection reset"
	}
	if why == "" {
		why = "connection closed"
	}
	return fmt.Errorf("uis: dial %v:%d: %s", raddr, rport, why)
}

// DialContext implements the http.Transport dialer shape. The address
// host resolves through Config.Hosts or as a literal IPv4; the network
// must be "tcp".
func (s *Stack) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	if network != "tcp" && network != "tcp4" {
		return nil, fmt.Errorf("uis: unsupported network %q", network)
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("uis: dial %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port <= 0 || port > 65535 {
		return nil, fmt.Errorf("uis: dial %q: bad port", addr)
	}
	raddr, ok := s.resolve(host)
	if !ok {
		return nil, fmt.Errorf("uis: dial %q: unknown host", addr)
	}
	deadline := time.Now().Add(s.cfg.DialTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	return s.dial(raddr, uint16(port), deadline)
}

func (s *Stack) resolve(host string) (packet.Addr, bool) {
	if a, ok := s.cfg.Hosts[host]; ok {
		return a, true
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return packet.Addr{}, false
	}
	v4 := ip.To4()
	if v4 == nil {
		return packet.Addr{}, false
	}
	return packet.AddrFrom4(v4[0], v4[1], v4[2], v4[3]), true
}

// Listen binds a TCP listener on port.
func (s *Stack) Listen(port uint16) (net.Listener, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := &Listener{stack: s, port: port}
	s.tcp.Listen(port, func(tc *tcpstack.Conn) {
		// Runs under s.mu (delivery path).
		l.pending = append(l.pending, newConn(s, tc))
	})
	return l, nil
}

// Listener accepts connections from the stack's TCP listener.
type Listener struct {
	stack   *Stack
	port    uint16
	pending []*Conn
	closed  bool
}

// Accept blocks until a handshake lands on the listener's port.
func (l *Listener) Accept() (net.Conn, error) {
	s := l.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(l.pending) == 0 && !l.closed && !s.down {
		s.note.Wait()
	}
	if l.closed || s.down {
		return nil, device.ErrClosed
	}
	c := l.pending[0]
	l.pending = l.pending[1:]
	return c, nil
}

// Close stops the listener (established connections live on).
func (l *Listener) Close() error {
	s := l.stack
	s.mu.Lock()
	l.closed = true
	s.mu.Unlock()
	s.note.Broadcast()
	return nil
}

// Addr returns the listener's address.
func (l *Listener) Addr() net.Addr {
	a := l.stack.cfg.Addr
	return &net.TCPAddr{IP: net.IPv4(a[0], a[1], a[2], a[3]), Port: int(l.port)}
}
