package uis_test

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"testing"
	"time"

	"intango/internal/device"
	"intango/internal/device/uis"
	"intango/internal/packet"
)

func newPair(t *testing.T) (cli, srv *uis.Stack) {
	t.Helper()
	a, b := device.NewPipe(0)
	srv = uis.New(a, uis.Config{
		Addr: packet.AddrFrom4(203, 0, 113, 80),
		Seed: 2,
	})
	cli = uis.New(b, uis.Config{
		Addr:  packet.AddrFrom4(10, 0, 0, 1),
		Seed:  1,
		Hosts: map[string]packet.Addr{"server.example": packet.AddrFrom4(203, 0, 113, 80)},
	})
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return cli, srv
}

// TestEchoAndEOF runs a raw byte exchange over two userspace stacks
// joined by a pipe: data both ways, then an orderly close that the
// peer reads as io.EOF.
func TestEchoAndEOF(t *testing.T) {
	cli, srv := newPair(t)
	l, err := srv.Listen(9000)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 64)
		n, err := c.Read(buf)
		if err != nil {
			done <- fmt.Errorf("server read: %w", err)
			return
		}
		if _, err := c.Write(append([]byte("echo:"), buf[:n]...)); err != nil {
			done <- fmt.Errorf("server write: %w", err)
			return
		}
		c.Close()
		done <- nil
	}()

	conn, err := cli.Dial(packet.AddrFrom4(203, 0, 113, 80), 9000)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatalf("client write: %v", err)
	}
	reply, err := io.ReadAll(conn) // reads until the server's FIN
	if err != nil {
		t.Fatalf("client read: %v", err)
	}
	if string(reply) != "echo:ping" {
		t.Errorf("reply: got %q want %q", reply, "echo:ping")
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	conn.Close()
}

// TestNetHTTPOverUserspaceStack is the ROADMAP shape reduced to its
// core: a stock net/http client and a stock net/http server, each on
// its own userspace stack, talking across a packet pipe.
func TestNetHTTPOverUserspaceStack(t *testing.T) {
	cli, srv := newPair(t)
	l, err := srv.Listen(80)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go http.Serve(l, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hello from userspace, path=%s", r.URL.Path)
	}))

	hc := &http.Client{
		Transport: &http.Transport{DialContext: cli.DialContext},
		Timeout:   10 * time.Second,
	}
	resp, err := hc.Get("http://server.example/probe")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Errorf("status: got %d", resp.StatusCode)
	}
	if string(body) != "hello from userspace, path=/probe" {
		t.Errorf("body: got %q", body)
	}
}

// TestReadDeadline: a blocked Read honors SetReadDeadline.
func TestReadDeadline(t *testing.T) {
	cli, srv := newPair(t)
	l, err := srv.Listen(9100)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go l.Accept() // accept and hold silently

	conn, err := cli.Dial(packet.AddrFrom4(203, 0, 113, 80), 9100)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err = conn.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Read: got %v want deadline exceeded", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("deadline took %v", waited)
	}
}

// TestDialRefused: dialing a port nobody listens on gets the stack's
// RST back as a dial error, not a hang.
func TestDialRefused(t *testing.T) {
	cli, _ := newPair(t)
	_, err := cli.Dial(packet.AddrFrom4(203, 0, 113, 80), 4444)
	if err == nil {
		t.Fatalf("Dial succeeded against a closed port")
	}
}
