package uis

import (
	"errors"
	"io"
	"net"
	"os"
	"time"

	"intango/internal/tcpstack"
)

// ErrReset is returned by Read/Write after the peer (or a censor
// injecting on the path) reset the connection.
var ErrReset = errors.New("uis: connection reset by peer")

// Conn adapts one tcpstack connection to net.Conn. All state is
// guarded by the owning stack's mutex; OnData runs on the delivery
// path with that mutex already held, so the callback only appends.
type Conn struct {
	stack *Stack
	tc    *tcpstack.Conn

	buf    []byte // received, not yet Read
	closed bool   // local Close called

	readDeadline  time.Time
	writeDeadline time.Time
}

func newConn(s *Stack, tc *tcpstack.Conn) *Conn {
	c := &Conn{stack: s, tc: tc}
	tc.OnData = func(data []byte) {
		// Delivery path: s.mu held. The stack recycles the packet the
		// bytes came from, so copy.
		c.buf = append(c.buf, data...)
	}
	return c
}

// eofState reports whether the peer can send no more data (FIN
// received in some form, or fully closed).
func eofState(st tcpstack.State) bool {
	switch st {
	case tcpstack.CloseWait, tcpstack.LastAck, tcpstack.Closing, tcpstack.TimeWait, tcpstack.Closed:
		return true
	}
	return false
}

// Read blocks until buffered data, EOF, reset, deadline, or close.
func (c *Conn) Read(b []byte) (int, error) {
	s := c.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(c.buf) > 0 {
			n := copy(b, c.buf)
			c.buf = c.buf[n:]
			return n, nil
		}
		switch {
		case c.closed:
			return 0, net.ErrClosed
		case c.tc.GotRST:
			return 0, ErrReset
		case eofState(c.tc.State()):
			return 0, io.EOF
		case s.down:
			return 0, io.ErrUnexpectedEOF
		}
		if !c.readDeadline.IsZero() && time.Now().After(c.readDeadline) {
			return 0, os.ErrDeadlineExceeded
		}
		// The clock pump broadcasts every tick, so deadline checks
		// rerun at tick granularity.
		s.note.Wait()
	}
}

// Write queues data on the connection.
func (c *Conn) Write(b []byte) (int, error) {
	s := c.stack
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	if c.tc.GotRST {
		return 0, ErrReset
	}
	if !c.writeDeadline.IsZero() && time.Now().After(c.writeDeadline) {
		return 0, os.ErrDeadlineExceeded
	}
	st := c.tc.State()
	if st != tcpstack.Established && st != tcpstack.CloseWait {
		return 0, net.ErrClosed
	}
	c.tc.Write(b)
	return len(b), nil
}

// Close starts an orderly shutdown (FIN after queued data).
func (c *Conn) Close() error {
	s := c.stack
	s.mu.Lock()
	if !c.closed {
		c.closed = true
		c.tc.Close()
	}
	s.mu.Unlock()
	s.note.Broadcast()
	return nil
}

// LocalAddr returns the connection's local address.
func (c *Conn) LocalAddr() net.Addr {
	a := c.stack.cfg.Addr
	return &net.TCPAddr{IP: net.IPv4(a[0], a[1], a[2], a[3]), Port: int(c.tc.LocalPort())}
}

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr {
	a, p := c.tc.RemoteAddr()
	return &net.TCPAddr{IP: net.IPv4(a[0], a[1], a[2], a[3]), Port: int(p)}
}

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.stack.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.stack.mu.Unlock()
	c.stack.note.Broadcast()
	return nil
}

// SetReadDeadline sets the read deadline.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.stack.mu.Lock()
	c.readDeadline = t
	c.stack.mu.Unlock()
	c.stack.note.Broadcast()
	return nil
}

// SetWriteDeadline sets the write deadline.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.stack.mu.Lock()
	c.writeDeadline = t
	c.stack.mu.Unlock()
	c.stack.note.Broadcast()
	return nil
}
