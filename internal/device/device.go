// Package device defines the single packet-I/O boundary everything
// above the wire speaks: the strategy engine, the TCP stacks, the live
// proxy daemon, and the discrete-event simulator all move raw IPv4
// datagrams through a Device. The paper's INTANG prototype sat on
// netfilter-queue; this boundary is the same seam, abstracted so one
// engine body serves both the simulated substrate (netem.Path /
// netem.Fabric behind a NetemEnd adapter) and live packet carriers
// (the in-memory Pipe, the userspace-stack dialer in device/uis, or a
// future TUN/pcap device).
package device

import (
	"errors"

	"intango/internal/packet"
)

// ErrClosed is returned by Read/Write on a closed device.
var ErrClosed = errors.New("device: closed")

// Device is one end of a packet carrier. WritePacket transmits a
// datagram toward the far side; ReadPacket blocks until a datagram
// arrives or the device is closed. Ownership of a written packet
// transfers to the device: callers must not touch it afterwards
// (pool-aware devices recycle it once the bytes are on the wire).
// Packets returned by ReadPacket belong to the caller.
//
// Devices may additionally implement LineageStamper and Pooled; use
// Stamp and PoolOf instead of asserting by hand.
type Device interface {
	ReadPacket() (*packet.Packet, error)
	WritePacket(pkt *packet.Packet) error
	Close() error
}

// LineageStamper is implemented by devices that can assign wire IDs
// for causal tracing (the netem substrates do; dumb carriers don't).
type LineageStamper interface {
	// StampLineage assigns pkt its wire ID if it does not have one yet
	// and returns the ID.
	StampLineage(pkt *packet.Packet) uint32
}

// Pooled is implemented by devices backed by a packet.Pool; crafting
// layers attached to such a device draw their packets from it so the
// hot path stays allocation-free.
type Pooled interface {
	// PacketPool returns the device's pool (nil when pooling is off).
	PacketPool() *packet.Pool
}

// Stamp assigns pkt a wire ID through d when d supports lineage
// stamping, and returns the ID (zero otherwise).
func Stamp(d Device, pkt *packet.Packet) uint32 {
	if s, ok := d.(LineageStamper); ok {
		return s.StampLineage(pkt)
	}
	return 0
}

// PoolOf returns d's packet pool when d is pool-backed, else nil (the
// nil-safe packet.Pool fallback then allocates from the heap).
func PoolOf(d Device) *packet.Pool {
	if p, ok := d.(Pooled); ok {
		return p.PacketPool()
	}
	return nil
}
