package device

import (
	"sync"

	"intango/internal/packet"
)

// PipeEnd is one side of an in-memory packet pipe. The pipe carries
// serialized wire bytes, not shared pointers: WritePacket encodes the
// datagram, ReadPacket parses a fresh packet on the far side — the
// same copy semantics a real interface has, which is what makes the
// pipe an honest stand-in for one in tests and in the intangd proxy.
//
// Writes never block: each end has a receive queue, and when a
// capacity is set the queue tail-drops like a full NIC ring (Dropped
// counts the losses). That property is load-bearing — the proxy writes
// into a pipe while holding its world lock, and a blocking write there
// would deadlock against a reader waiting for that lock.
type PipeEnd struct {
	name string
	peer *PipeEnd
	// pool, when set, receives every written packet back after its
	// bytes are encoded: the writer hands ownership to the device, and
	// the device releases to the pool exactly where netem would have —
	// after delivery onto the wire.
	pool *packet.Pool

	mu      sync.Mutex
	rd      sync.Cond
	queue   [][]byte
	closed  bool
	peerOff bool
	dropped uint64
	cap     int
}

// NewPipe returns the two connected ends of a packet pipe. capacity
// bounds each direction's receive queue (0 means unbounded); overflow
// tail-drops.
func NewPipe(capacity int) (*PipeEnd, *PipeEnd) {
	a := &PipeEnd{name: "a", cap: capacity}
	b := &PipeEnd{name: "b", cap: capacity}
	a.rd.L = &a.mu
	b.rd.L = &b.mu
	a.peer, b.peer = b, a
	return a, b
}

// SetPool attaches a pool this end releases written packets to once
// they are serialized (see PipeEnd). Callers that keep ownership of
// their packets — or whose packets belong to another layer — leave it
// nil.
func (e *PipeEnd) SetPool(pl *packet.Pool) { e.pool = pl }

// PacketPool implements Pooled.
func (e *PipeEnd) PacketPool() *packet.Pool { return e.pool }

// Dropped returns how many inbound datagrams this end's full queue
// discarded.
func (e *PipeEnd) Dropped() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// WritePacket serializes pkt and queues the bytes at the peer.
// Ownership of pkt transfers to the device: with a pool attached the
// packet is recycled here, otherwise it is simply left for the GC.
func (e *PipeEnd) WritePacket(pkt *packet.Packet) error {
	data := pkt.Serialize(packet.SerializeOptions{})
	if e.pool != nil {
		pkt.Release()
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return e.peer.push(data)
}

func (e *PipeEnd) push(data []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	if e.cap > 0 && len(e.queue) >= e.cap {
		e.dropped++
		e.mu.Unlock()
		return nil
	}
	e.queue = append(e.queue, data)
	e.mu.Unlock()
	e.rd.Signal()
	return nil
}

// ReadPacket parses and returns the next queued datagram, blocking
// until one arrives or the pipe is closed (either end). Buffered
// datagrams written before a close remain readable — the half-close
// drain a real socket gives.
func (e *PipeEnd) ReadPacket() (*packet.Packet, error) {
	e.mu.Lock()
	for len(e.queue) == 0 && !e.closed && !e.peerOff {
		e.rd.Wait()
	}
	if len(e.queue) == 0 {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	data := e.queue[0]
	e.queue = e.queue[1:]
	e.mu.Unlock()
	return packet.Parse(data)
}

// Close closes this end: its reads and writes fail, and the peer —
// after draining what was already queued — unblocks with ErrClosed.
// Each end's state lives under its own lock and Close touches them
// one at a time, so two concurrent closes cannot deadlock.
func (e *PipeEnd) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.rd.Broadcast()
	p := e.peer
	p.mu.Lock()
	p.peerOff = true
	p.mu.Unlock()
	p.rd.Broadcast()
	return nil
}
