package device

import (
	"sync"

	"intango/internal/netem"
	"intango/internal/packet"
)

// NetemEnd adapts one end of a simulated substrate (netem.Path or
// netem.Fabric, behind netem.Net) to the Device boundary. Writes
// transmit from the bound end; delivery runs in one of two modes:
//
//   - Handler mode (Sink set): inbound packets are forwarded
//     synchronously to Sink inside the simulation event that carried
//     them — the zero-allocation path the strategy engine and the TCP
//     stacks ride. The packet still belongs to netem (it is recycled
//     when the delivery event returns), exactly as before.
//   - Pull mode (Sink nil): inbound packets are copied off the
//     substrate into a queue and handed out by ReadPacket. The copy is
//     mandatory — netem recycles the in-flight packet the moment the
//     delivery event returns — and makes the returned packet the
//     caller's own.
//
// A NetemEnd is cheap enough to embed by value: the engine and the
// stacks hold one inline so adapting to the Device boundary costs no
// extra heap objects on the trial hot path.
type NetemEnd struct {
	// Net is the substrate this end writes into.
	Net netem.Net
	// Server selects the server end; the zero value binds the client
	// end.
	Server bool
	// Sink, when set, receives every inbound packet synchronously
	// (handler mode). Leave nil to queue packets for ReadPacket.
	Sink netem.Endpoint

	mu     sync.Mutex
	rd     sync.Cond
	queue  []*packet.Packet
	closed bool
}

// Attach registers the end as its side's endpoint on Net, so inbound
// traffic reaches Deliver. Layers that are themselves netem endpoints
// (the engine, the stacks) skip Attach and register directly.
func (d *NetemEnd) Attach() {
	if d.Server {
		d.Net.SetServer(d)
	} else {
		d.Net.SetClient(d)
	}
}

// WritePacket transmits pkt from the bound end. Ownership passes to
// the substrate, which recycles pooled packets at end-of-life.
func (d *NetemEnd) WritePacket(pkt *packet.Packet) error {
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return ErrClosed
	}
	d.Transmit(pkt)
	return nil
}

// Transmit is WritePacket without the closed-state check or error
// return — the exact shape of tcpstack's Send hook, so attaching a
// stack to a NetemEnd costs one method value, same as the old direct
// netem binding.
func (d *NetemEnd) Transmit(pkt *packet.Packet) {
	if d.Server {
		d.Net.SendFromServer(pkt)
	} else {
		d.Net.SendFromClient(pkt)
	}
}

// Deliver implements netem.Endpoint.
func (d *NetemEnd) Deliver(pkt *packet.Packet) {
	if d.Sink != nil {
		d.Sink.Deliver(pkt)
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	if d.rd.L == nil {
		d.rd.L = &d.mu
	}
	// netem recycles pkt when this event returns; the queue keeps a
	// deep copy the reader will own.
	d.queue = append(d.queue, pkt.Clone())
	d.mu.Unlock()
	d.rd.Signal()
}

// ReadPacket returns the next queued inbound packet, blocking until
// one arrives or the end is closed. In handler mode there is nothing
// to pull and ReadPacket reports the device closed.
func (d *NetemEnd) ReadPacket() (*packet.Packet, error) {
	if d.Sink != nil {
		return nil, ErrClosed
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.rd.L == nil {
		d.rd.L = &d.mu
	}
	for len(d.queue) == 0 && !d.closed {
		d.rd.Wait()
	}
	if len(d.queue) == 0 {
		return nil, ErrClosed
	}
	pkt := d.queue[0]
	d.queue = d.queue[1:]
	return pkt, nil
}

// Close marks the end closed: writes fail, blocked readers drain the
// queue and then unblock with ErrClosed. The substrate itself is
// untouched.
func (d *NetemEnd) Close() error {
	d.mu.Lock()
	d.closed = true
	if d.rd.L == nil {
		d.rd.L = &d.mu
	}
	d.mu.Unlock()
	d.rd.Broadcast()
	return nil
}

// StampLineage implements LineageStamper by forwarding to the
// substrate's wire-ID allocator.
func (d *NetemEnd) StampLineage(pkt *packet.Packet) uint32 {
	return d.Net.StampLineage(pkt)
}

// PacketPool implements Pooled with the substrate's pool.
func (d *NetemEnd) PacketPool() *packet.Pool {
	return d.Net.PacketPool()
}
