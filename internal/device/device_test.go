package device

import (
	"errors"
	"testing"
	"time"

	"intango/internal/netem"
	"intango/internal/packet"
)

func mkTCP(payload string) *packet.Packet {
	return packet.NewTCP(
		packet.AddrFrom4(10, 0, 0, 1), 40000,
		packet.AddrFrom4(203, 0, 113, 80), 80,
		packet.FlagPSH|packet.FlagACK, packet.Seq(1000), packet.Seq(2000),
		[]byte(payload),
	)
}

// TestPipeRoundTripFidelity pushes TCP, UDP and ICMP datagrams through
// a pipe and checks the parsed far-side packets field-for-field: the
// pipe must behave like a wire, not a pointer queue.
func TestPipeRoundTripFidelity(t *testing.T) {
	a, b := NewPipe(0)
	defer a.Close()

	want := mkTCP("GET /search?q=ultrasurf HTTP/1.1\r\n\r\n")
	want.TCP.Window = 512
	want.IP.TTL = 7
	want.Finalize()
	if err := a.WritePacket(want); err != nil {
		t.Fatalf("WritePacket: %v", err)
	}
	got, err := b.ReadPacket()
	if err != nil {
		t.Fatalf("ReadPacket: %v", err)
	}
	if got.TCP == nil {
		t.Fatalf("parsed packet lost its TCP header: %v", got)
	}
	if got.Tuple() != want.Tuple() {
		t.Errorf("tuple: got %v want %v", got.Tuple(), want.Tuple())
	}
	if got.TCP.Seq != want.TCP.Seq || got.TCP.Ack != want.TCP.Ack ||
		got.TCP.Flags != want.TCP.Flags || got.TCP.Window != want.TCP.Window {
		t.Errorf("TCP header mismatch: got %+v want %+v", got.TCP, want.TCP)
	}
	if got.IP.TTL != want.IP.TTL {
		t.Errorf("TTL: got %d want %d", got.IP.TTL, want.IP.TTL)
	}
	if string(got.Payload) != string(want.Payload) {
		t.Errorf("payload: got %q want %q", got.Payload, want.Payload)
	}
	if !got.TCP.VerifyChecksum(got.IP.Src, got.IP.Dst, got.Payload) {
		t.Errorf("checksum did not survive the wire")
	}

	// A deliberately corrupted checksum must also survive verbatim —
	// the device must not "helpfully" fix insertion packets.
	bad := mkTCP("x")
	bad.TCP.Checksum ^= 0xffff
	if err := a.WritePacket(bad); err != nil {
		t.Fatalf("WritePacket(bad): %v", err)
	}
	got, err = b.ReadPacket()
	if err != nil {
		t.Fatalf("ReadPacket(bad): %v", err)
	}
	if got.TCP.VerifyChecksum(got.IP.Src, got.IP.Dst, got.Payload) {
		t.Errorf("corrupted checksum was repaired in transit")
	}

	udp := packet.NewUDP(packet.AddrFrom4(10, 0, 0, 1), 5353, packet.AddrFrom4(8, 8, 8, 8), 53, []byte("query"))
	if err := a.WritePacket(udp); err != nil {
		t.Fatalf("WritePacket(udp): %v", err)
	}
	got, err = b.ReadPacket()
	if err != nil {
		t.Fatalf("ReadPacket(udp): %v", err)
	}
	if got.UDP == nil || got.UDP.DstPort != 53 || string(got.Payload) != "query" {
		t.Errorf("UDP round trip: got %v", got)
	}
}

// TestPipeHalfClose: after one end closes, the peer drains what was
// already in flight, then reads fail; writes fail on both sides.
func TestPipeHalfClose(t *testing.T) {
	a, b := NewPipe(0)
	for i := 0; i < 3; i++ {
		if err := a.WritePacket(mkTCP("buffered")); err != nil {
			t.Fatalf("WritePacket: %v", err)
		}
	}
	a.Close()
	for i := 0; i < 3; i++ {
		if _, err := b.ReadPacket(); err != nil {
			t.Fatalf("drain read %d: %v", i, err)
		}
	}
	if _, err := b.ReadPacket(); !errors.Is(err, ErrClosed) {
		t.Errorf("post-drain read: got %v want ErrClosed", err)
	}
	if err := b.WritePacket(mkTCP("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("write to closed peer: got %v want ErrClosed", err)
	}
	if err := a.WritePacket(mkTCP("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("write on closed end: got %v want ErrClosed", err)
	}
	if _, err := a.ReadPacket(); !errors.Is(err, ErrClosed) {
		t.Errorf("read on closed end: got %v want ErrClosed", err)
	}
}

// TestPipeCloseUnblocksReader: a reader blocked in ReadPacket must
// wake with ErrClosed when either its own end or the peer closes.
func TestPipeCloseUnblocksReader(t *testing.T) {
	for _, who := range []string{"own", "peer"} {
		a, b := NewPipe(0)
		done := make(chan error, 1)
		go func() {
			_, err := b.ReadPacket()
			done <- err
		}()
		time.Sleep(10 * time.Millisecond) // let the reader block
		if who == "own" {
			b.Close()
		} else {
			a.Close()
		}
		select {
		case err := <-done:
			if !errors.Is(err, ErrClosed) {
				t.Errorf("close=%s: got %v want ErrClosed", who, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("close=%s: reader still blocked after close", who)
		}
	}
}

// TestPipePoolReleaseAfterDeliver: with a pool attached, a written
// packet goes back to the pool exactly once its bytes are encoded, so
// a userspace stack over a pipe recycles like one over netem.
func TestPipePoolReleaseAfterDeliver(t *testing.T) {
	pl := packet.NewPool()
	a, b := NewPipe(0)
	a.SetPool(pl)
	if PoolOf(a) != pl {
		t.Fatalf("PoolOf(pipe) did not surface the attached pool")
	}

	p := pl.NewTCP(packet.AddrFrom4(10, 0, 0, 1), 40000, packet.AddrFrom4(203, 0, 113, 80), 80,
		packet.FlagPSH|packet.FlagACK, 1, 2, []byte("hello"))
	if err := a.WritePacket(p); err != nil {
		t.Fatalf("WritePacket: %v", err)
	}
	if st := pl.Stats(); st.Puts != 1 {
		t.Errorf("pool puts after write: got %d want 1", st.Puts)
	}
	got, err := b.ReadPacket()
	if err != nil {
		t.Fatalf("ReadPacket: %v", err)
	}
	if string(got.Payload) != "hello" {
		t.Errorf("payload: got %q", got.Payload)
	}
	// The recycled packet is reused by the next Get without a fresh
	// allocation.
	q := pl.Get()
	if st := pl.Stats(); st.Recycled() == 0 {
		t.Errorf("expected the released packet to be recycled, stats %+v", st)
	}
	q.Release()

	// The second write of the same (released) packet is an ownership
	// bug and must panic rather than corrupt.
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("double write of a pool packet did not panic")
			}
		}()
		_ = a.WritePacket(p)
	}()
	_ = b.Close()
}

// TestPipeTailDrop: a bounded pipe drops overflow instead of blocking
// the writer.
func TestPipeTailDrop(t *testing.T) {
	a, b := NewPipe(2)
	for i := 0; i < 5; i++ {
		if err := a.WritePacket(mkTCP("x")); err != nil {
			t.Fatalf("WritePacket %d: %v", i, err)
		}
	}
	if got := b.Dropped(); got != 3 {
		t.Errorf("dropped: got %d want 3", got)
	}
	for i := 0; i < 2; i++ {
		if _, err := b.ReadPacket(); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}

// TestNetemEndPullMode drives a linear path through NetemEnd devices on
// both ends: client writes arrive at the server end's ReadPacket as
// owned copies.
func TestNetemEndPullMode(t *testing.T) {
	sim := netem.NewSimulator(1)
	path := &netem.Path{Sim: sim}
	path.Hops = append(path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})

	cli := &NetemEnd{Net: path}
	srv := &NetemEnd{Net: path, Server: true}
	cli.Attach()
	srv.Attach()

	want := mkTCP("through the substrate")
	if err := cli.WritePacket(want); err != nil {
		t.Fatalf("WritePacket: %v", err)
	}
	sim.RunFor(50 * time.Millisecond)
	got, err := srv.ReadPacket()
	if err != nil {
		t.Fatalf("ReadPacket: %v", err)
	}
	if string(got.Payload) != string(want.Payload) || got.Tuple() != want.Tuple() {
		t.Errorf("delivered packet mismatch: got %v", got)
	}
	if got == want {
		t.Errorf("pull mode must hand out a copy, not the in-flight packet")
	}

	if Stamp(cli, mkTCP("y")) == 0 {
		t.Errorf("NetemEnd should stamp lineage through the substrate")
	}

	srv.Close()
	if _, err := srv.ReadPacket(); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close: got %v want ErrClosed", err)
	}
	if err := srv.WritePacket(mkTCP("z")); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: got %v want ErrClosed", err)
	}
}

// TestNetemEndHandlerMode checks the synchronous sink path the engine
// and stacks ride.
func TestNetemEndHandlerMode(t *testing.T) {
	sim := netem.NewSimulator(1)
	path := &netem.Path{Sim: sim}
	path.Hops = append(path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})

	var gotPayload string
	srv := &NetemEnd{Net: path, Server: true, Sink: netem.EndpointFunc(func(pkt *packet.Packet) {
		gotPayload = string(pkt.Payload) // copy: netem recycles pkt after delivery
	})}
	srv.Attach()
	cli := &NetemEnd{Net: path}
	cli.Attach()

	if err := cli.WritePacket(mkTCP("sync delivery")); err != nil {
		t.Fatalf("WritePacket: %v", err)
	}
	sim.RunFor(50 * time.Millisecond)
	if gotPayload != "sync delivery" {
		t.Errorf("sink saw %q", gotPayload)
	}
	if _, err := srv.ReadPacket(); !errors.Is(err, ErrClosed) {
		t.Errorf("ReadPacket in handler mode: got %v want ErrClosed", err)
	}
}
