// Package gfw implements executable models of the Great Firewall's
// on-path DPI devices: the "old" model inferred by Khattak et al.
// (FOCI '13) and the "evolved" model this paper infers in §4
// (Hypothesized New Behaviors 1–3), together with the type-1 and type-2
// reset injectors, the 90-second pair blocklist with forged SYN/ACKs,
// UDP DNS poisoning, and Tor/VPN flow identification (§7.3).
//
// A Device is attached to a netem hop as an on-path tap: it observes
// every packet, keeps shadow TCBs, and injects forged packets toward
// both endpoints — it can never drop traffic (§2.1). IP-level blocking
// of active-probed Tor bridges is the one in-path behaviour, exposed
// separately via Device.IPFilter.
package gfw

import (
	"time"

	"intango/internal/packet"
)

// Model selects which inferred GFW state machine a device runs.
type Model int

const (
	// ModelKhattak2013 is the prior model: TCB created only on SYN,
	// torn down by RST/RST-ACK/FIN, no resynchronization state.
	ModelKhattak2013 Model = iota
	// ModelEvolved2017 is the model inferred in §4: TCB also created on
	// SYN/ACK, a resynchronization state entered on ambiguous
	// handshakes, FIN never tears down, RST only sometimes does.
	ModelEvolved2017
)

// String names the model.
func (m Model) String() string {
	if m == ModelKhattak2013 {
		return "khattak-2013"
	}
	return "evolved-2017"
}

// Config parameterizes a Device. NewDevice fills zero fields with the
// paper's measured defaults.
type Config struct {
	Model Model

	// Type1 and Type2 select the reset-injector types this device
	// carries. The two usually exist together (§2.1); occasionally one
	// is down, which the experiments exploit to tell them apart.
	Type1 bool
	Type2 bool

	// Keywords is the sensitive-keyword blacklist for the rule-based
	// detection engine.
	Keywords []string
	// PoisonedDomains is the DNS censorship list (suffix match).
	PoisonedDomains []string
	// PoisonedAddr is the forged address DNS poisoning answers with;
	// zero means the well-known PoisonAddr pool address.
	PoisonedAddr packet.Addr

	// BlockDuration is the post-detection pair-blocklist period —
	// 90 seconds as measured in §2.1. Only type-2 devices enforce it.
	BlockDuration time.Duration
	// DetectionMissProb is the probability a flow escapes detection
	// entirely (GFW overload — the persistent 2.8% no-strategy success
	// rate of §3.4, first documented in 2007).
	DetectionMissProb float64
	// ResyncOnRSTProb is the probability — sampled once per device,
	// because the paper found the behaviour consistent per pair within
	// a period (§4) — that a RST sends the evolved TCB to the
	// resynchronization state instead of tearing it down.
	ResyncOnRSTProb float64
	// SegmentLastWinsProb is the probability (sampled per device) that
	// overlapping out-of-order TCP segments are resolved in favour of
	// the newest copy, the behaviour Khattak et al. reported; the
	// complement models evolved devices that now keep the first copy,
	// which is why the out-of-order strategy has a high Failure-2 rate
	// in Table 1.
	SegmentLastWinsProb float64

	// ReassemblyWindow bounds the client→server stream buffer.
	ReassemblyWindow int

	// TorFiltering enables Tor fingerprinting + active-probe IP
	// blocking; §7.3 found it absent on paths from Northern China.
	TorFiltering bool
	// VPNFiltering enables OpenVPN-over-TCP DPI resets (observed
	// November 2016, discontinued by the time of the paper's later
	// measurements).
	VPNFiltering bool
	// ActiveProbeDelay is how long after fingerprinting a Tor bridge
	// the active prober confirms and the IP is null-routed.
	ActiveProbeDelay time.Duration

	// ResetSeqOffsets are the type-2 sequence offsets: one RST/ACK at
	// X, X+1460, X+4380 (§2.1).
	ResetSeqOffsets []int

	// ResponseCensorship also scans server→client data. Backbone-level
	// response filtering was discontinued (Park & Crandall 2010), but
	// §3.3 found devices on some paths still detect keywords copied
	// into HTTP 301 Location headers — the reason the study excluded
	// HTTPS-default websites.
	ResponseCensorship bool

	// --- §8 countermeasure ablations. The measured GFW does none of
	// these; each is a hardening the paper discusses, implemented so
	// the arms race can be explored. ---

	// ValidateTCPChecksum drops bad-checksum packets before tracking
	// (kills the bad-checksum insertion family).
	ValidateTCPChecksum bool
	// ValidateMD5 ignores packets carrying unsolicited MD5 options
	// (kills the MD5 insertion family — but, as §8 notes, opens a new
	// evasion: an MD5-tagged *real* request is now invisible to the
	// GFW yet accepted by servers that don't check the option).
	ValidateMD5 bool
	// TrustDataAfterServerACK defers scanning of client data until the
	// server has acknowledged it — the "potential improvement" of §8
	// that defeats prefill and desynchronization at the cost of much
	// heavier per-flow state.
	TrustDataAfterServerACK bool
}

// withDefaults fills unset fields with the paper's measured values.
func (c Config) withDefaults() Config {
	if c.BlockDuration == 0 {
		c.BlockDuration = 90 * time.Second
	}
	if c.DetectionMissProb == 0 {
		c.DetectionMissProb = 0.028
	}
	if c.ReassemblyWindow == 0 {
		c.ReassemblyWindow = 64 * 1024
	}
	if c.ActiveProbeDelay == 0 {
		c.ActiveProbeDelay = 10 * time.Second
	}
	if c.ResetSeqOffsets == nil {
		c.ResetSeqOffsets = []int{0, 1460, 4380}
	}
	if c.PoisonedAddr == (packet.Addr{}) {
		c.PoisonedAddr = PoisonAddr
	}
	if !c.Type1 && !c.Type2 {
		c.Type1, c.Type2 = true, true
	}
	return c
}
