package gfw

import (
	"strings"
	"testing"
	"time"

	"intango/internal/dnsmsg"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

func TestReassemblyWindowBoundsBuffer(t *testing.T) {
	cfg := evolvedCfg()
	cfg.ReassemblyWindow = 1024
	r := newRig(t, cfg)
	c := r.cli.Connect(srvAddr, 80)
	r.sim.RunFor(100 * time.Millisecond)
	// Data far beyond the window is not buffered by the GFW.
	far := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, c.SndNxt().Add(4096), c.RcvNxt(),
		[]byte("GET /?q="+keyword+" HTTP/1.1\r\n\r\n"))
	r.path.SendFromClient(far)
	r.sim.RunFor(time.Second)
	if r.countEvents("detect") != 0 {
		t.Fatal("out-of-window data must not be scanned")
	}
	// In-window data still is.
	near := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, c.SndNxt(), c.RcvNxt(),
		[]byte("GET /?q="+keyword+" HTTP/1.1\r\n\r\n"))
	r.path.SendFromClient(near)
	r.sim.RunFor(time.Second)
	if r.countEvents("detect") != 1 {
		t.Fatal("in-window keyword missed")
	}
}

func TestBlocklistRefreshedByNewDetection(t *testing.T) {
	r := newRig(t, evolvedCfg())
	r.get(t, "/?q="+keyword)
	firstBlocks := r.countEvents("block")
	if firstBlocks == 0 {
		t.Fatal("no block recorded")
	}
	// 60 s later (block still active) the enforcement path handles a
	// new attempt; after expiry a fresh keyword re-blocks.
	r.sim.RunFor(2 * time.Minute)
	r.get(t, "/?q="+keyword)
	if r.countEvents("block") <= firstBlocks {
		t.Fatal("new detection should re-block")
	}
}

func TestTwoDevicesSameHopBothDetect(t *testing.T) {
	// Old and evolved devices co-deployed (§8): both see the traffic,
	// each keeps its own TCB.
	r := newRig(t, evolvedCfg())
	oldDev := NewDevice("gfw-old", Config{Model: ModelKhattak2013, Keywords: []string{keyword}, DetectionMissProb: -1}, r.sim.Rand())
	oldDev.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
	r.path.Hops[2].Taps = append(r.path.Hops[2].Taps, oldDev)
	c := r.get(t, "/?q="+keyword)
	if !c.GotRST {
		t.Fatal("not reset")
	}
	if r.dev.Stats["detect"] != 1 || oldDev.Stats["detect"] != 1 {
		t.Fatalf("detect: evolved=%d old=%d", r.dev.Stats["detect"], oldDev.Stats["detect"])
	}
}

func TestDNSTCPQuerySplitAcrossSegments(t *testing.T) {
	// The 2-byte length prefix and the qname arrive in separate
	// segments; only a reassembling device can extract the name.
	r := newRig(t, Config{Model: ModelEvolved2017, PoisonedDomains: []string{"dropbox.com"}, DetectionMissProb: -1})
	r.srv.Listen(53, func(c *tcpstack.Conn) { c.OnData = func([]byte) {} })
	c := r.cli.Connect(srvAddr, 53)
	r.sim.RunFor(100 * time.Millisecond)
	q, err := dnsmsg.NewQuery(5, "www.dropbox.com").Encode()
	if err != nil {
		t.Fatal(err)
	}
	framed := dnsmsg.FrameTCP(q)
	c.Write(framed[:7])
	r.sim.RunFor(50 * time.Millisecond)
	c.Write(framed[7:])
	r.sim.RunFor(2 * time.Second)
	if !c.GotRST {
		t.Fatal("split TCP DNS query not detected")
	}
}

func TestType2OnlyNoType1Resets(t *testing.T) {
	cfg := evolvedCfg()
	cfg.Type1, cfg.Type2 = false, true
	r := newRig(t, cfg)
	bare := 0
	withAck := 0
	r.path.Trace = func(ev netem.TraceEvent) {
		if ev.Event == "deliver" && ev.Where == "client" && ev.Pkt.TCP != nil && ev.Pkt.TCP.HasFlag(packet.FlagRST) {
			if ev.Pkt.TCP.HasFlag(packet.FlagACK) {
				withAck++
			} else {
				bare++
			}
		}
	}
	r.get(t, "/?q="+keyword)
	if bare != 0 {
		t.Fatalf("type-2-only device emitted %d bare RSTs", bare)
	}
	if withAck < 3 {
		t.Fatalf("type-2 resets = %d", withAck)
	}
}

func TestType1OnlyNoBlocklist(t *testing.T) {
	// §2.1: only type-2 devices enforce the 90-second block.
	cfg := evolvedCfg()
	cfg.Type1, cfg.Type2 = true, false
	r := newRig(t, cfg)
	r.get(t, "/?q="+keyword)
	if r.dev.PairBlocked(cliAddr, srvAddr, r.sim.Now()) {
		t.Fatal("type-1-only device must not blocklist")
	}
	// A follow-up clean request works immediately.
	c := r.get(t, "/clean.html")
	if c.GotRST {
		t.Fatal("clean request after type-1 reset should pass")
	}
}

func TestStatsAndStateAccessors(t *testing.T) {
	r := newRig(t, evolvedCfg())
	c := r.get(t, "/?q="+keyword)
	_ = c
	if r.dev.Stats["tcb-create"] == 0 || r.dev.Stats["detect"] != 1 {
		t.Fatalf("stats = %v", r.dev.Stats)
	}
	if r.dev.TCBCount() == 0 {
		t.Fatal("no TCBs tracked")
	}
	if _, ok := r.dev.TCBState(packet.FourTuple{}); ok {
		t.Fatal("bogus tuple should not resolve")
	}
	if r.dev.Config().BlockDuration != 90*time.Second {
		t.Fatalf("default block duration = %v", r.dev.Config().BlockDuration)
	}
	if r.dev.Name() != "gfw" {
		t.Fatalf("name = %q", r.dev.Name())
	}
}

func TestModelStrings(t *testing.T) {
	if ModelKhattak2013.String() == ModelEvolved2017.String() {
		t.Fatal("model names collide")
	}
	if !strings.Contains(ModelEvolved2017.String(), "2017") {
		t.Fatalf("evolved name = %q", ModelEvolved2017.String())
	}
}

func TestPairBlockedHelper(t *testing.T) {
	r := newRig(t, evolvedCfg())
	if r.dev.PairBlocked(cliAddr, srvAddr, 0) {
		t.Fatal("fresh pair blocked")
	}
	r.get(t, "/?q="+keyword)
	now := r.sim.Now()
	if !r.dev.PairBlocked(cliAddr, srvAddr, now) {
		t.Fatal("pair should be blocked")
	}
	// Symmetric in argument order.
	if !r.dev.PairBlocked(srvAddr, cliAddr, now) {
		t.Fatal("blocklist must be direction independent")
	}
	if r.dev.PairBlocked(cliAddr, srvAddr, now+2*time.Hour) {
		t.Fatal("block should expire")
	}
}

func TestKeywordCaseInsensitiveOnWire(t *testing.T) {
	r := newRig(t, evolvedCfg())
	c := r.get(t, "/?q=ULTRASURF")
	if !c.GotRST {
		t.Fatal("uppercase keyword missed")
	}
}

func TestStreamScannedPrefixImmutable(t *testing.T) {
	// White-box: once bytes are consumed by the scanner, later copies
	// must not replace them — even under the last-wins overlap policy.
	m := newRig(t, evolvedCfg())
	_ = m
	s := newStream(4096, m.dev.matcher.NewStreamScanner())
	s.rebase(1000)
	if got := s.insert(1000, []byte("AAAA"), true); len(got) != 0 {
		t.Fatalf("junk matched: %v", got)
	}
	if s.scanned != 4 {
		t.Fatalf("scanned = %d", s.scanned)
	}
	// Overwrite attempt at the same range with the keyword.
	if got := s.insert(1000, []byte(keyword[:4]), true); len(got) != 0 {
		t.Fatal("scanned prefix was overwritten")
	}
	if string(s.contiguous()) != "AAAA" {
		t.Fatalf("prefix = %q", s.contiguous())
	}
}

func TestStreamOutOfOrderOverlapPolicies(t *testing.T) {
	mk := func() *stream {
		r := newRig(t, evolvedCfg())
		s := newStream(4096, r.dev.matcher.NewStreamScanner())
		s.rebase(0)
		return s
	}
	// Last-wins: the newer copy of unscanned bytes prevails.
	s := mk()
	s.insert(10, []byte("XX"), true)
	s.insert(10, []byte("YY"), true)
	s.insert(0, []byte("0123456789"), true)
	if string(s.contiguous()) != "0123456789YY" {
		t.Fatalf("last-wins = %q", s.contiguous())
	}
	// First-wins: the older copy prevails.
	s2 := mk()
	s2.insert(10, []byte("XX"), false)
	s2.insert(10, []byte("YY"), false)
	s2.insert(0, []byte("0123456789"), false)
	if string(s2.contiguous()) != "0123456789XX" {
		t.Fatalf("first-wins = %q", s2.contiguous())
	}
}

func TestStreamKeywordAcrossInsertBoundary(t *testing.T) {
	r := newRig(t, evolvedCfg())
	s := newStream(4096, r.dev.matcher.NewStreamScanner())
	s.rebase(500)
	half := len(keyword) / 2
	if got := s.insert(500, []byte(keyword[:half]), false); len(got) != 0 {
		t.Fatal("premature match")
	}
	got := s.insert(packet.Seq(500+half), []byte(keyword[half:]), false)
	if len(got) != 1 || got[0].Pattern != keyword {
		t.Fatalf("split keyword: %v", got)
	}
}

func TestTrustAfterServerACKDirect(t *testing.T) {
	// Hardened mode (§8): client data is scanned only once the server
	// acknowledges it.
	cfg := evolvedCfg()
	cfg.TrustDataAfterServerACK = true
	r := newRig(t, cfg)
	c := r.cli.Connect(srvAddr, 80)
	r.sim.RunFor(100 * time.Millisecond)
	// Raw keyword data injected without server delivery: never ACKed,
	// never scanned.
	orphan := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, c.SndNxt().Add(1<<20), c.RcvNxt(),
		[]byte("GET /?q="+keyword+" HTTP/1.1\r\n\r\n"))
	orphan.IP.TTL = 3 // dies before the server: no ACK will come
	orphan.Finalize()
	r.path.SendFromClient(orphan)
	r.sim.RunFor(time.Second)
	if r.countEvents("detect") != 0 {
		t.Fatal("unacknowledged data scanned in hardened mode")
	}
	// A real request is ACKed by the server and then detected.
	c.Write([]byte("GET /?q=" + keyword + " HTTP/1.1\r\nHost: x\r\n\r\n"))
	r.sim.RunFor(2 * time.Second)
	if r.countEvents("detect") != 1 {
		t.Fatalf("acknowledged keyword not detected: %d", r.countEvents("detect"))
	}
}

func TestBlockIPHelper(t *testing.T) {
	r := newRig(t, evolvedCfg())
	addr := packet.AddrFrom4(1, 2, 3, 4)
	if r.dev.IsIPBlocked(addr) {
		t.Fatal("fresh address blocked")
	}
	r.dev.BlockIP(addr)
	if !r.dev.IsIPBlocked(addr) {
		t.Fatal("BlockIP did not stick")
	}
	filter := r.dev.IPFilter()
	if filter.Name() == "" {
		t.Fatal("filter must be named")
	}
}

func TestSampledBehaviourSetters(t *testing.T) {
	r := newRig(t, evolvedCfg())
	r.dev.SetRSTResyncs(true)
	if !r.dev.RSTResyncs() {
		t.Fatal("setter lost")
	}
	r.dev.SetSegmentLastWins(true)
	r.dev.SetRSTResyncs(false)
	if r.dev.RSTResyncs() {
		t.Fatal("setter lost")
	}
	if stTracking.String() == stResync.String() {
		t.Fatal("tcb state strings collide")
	}
}
