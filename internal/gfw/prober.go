package gfw

import (
	"bytes"

	"intango/internal/netem"
	"intango/internal/packet"
)

// The active prober (§7.3, Ensafi et al. / Winter & Lindskog): after a
// flow is fingerprinted as Tor, the censor connects to the suspected
// bridge *itself*, from an unrelated Chinese address, replays a
// Tor-style handshake, and null-routes the IP if the endpoint answers
// like a bridge. Here the probe is real traffic: the device injects
// the prober's packets at its own hop and watches the bridge's replies
// pass back through its tap.

// proberBase is the address pool the prober sources from — addresses
// the paper's bridge operators saw probing them from all over China.
var proberBase = packet.AddrFrom4(59, 66, 200, 0)

// probeState tracks one in-flight active probe.
type probeState struct {
	bridge     packet.Addr
	port       uint16
	proberAddr packet.Addr
	proberPort uint16
	iss        packet.Seq
	state      int // 0 = syn sent, 1 = established/hello sent
}

// launchActiveProbe starts a probe toward bridge:port after the
// configured delay.
func (d *Device) launchActiveProbe(ctx *netem.Context, bridge packet.Addr, port uint16) {
	if d.probes == nil {
		d.probes = make(map[packet.FourTuple]*probeState)
	}
	d.proberSeq++
	ps := &probeState{
		bridge:     bridge,
		port:       port,
		proberAddr: packet.AddrFrom4(proberBase[0], proberBase[1], proberBase[2], byte(d.proberSeq)),
		proberPort: 50000 + uint16(d.proberSeq),
		iss:        packet.Seq(d.rng.Uint32()),
	}
	tuple := packet.FourTuple{
		SrcAddr: ps.proberAddr, SrcPort: ps.proberPort,
		DstAddr: bridge, DstPort: port,
	}
	d.probes[tuple.Canonical()] = ps
	d.event("tor-probe-launch", tuple, bridge.String())
	// The path reuses one Context across arrivals, so copy it before
	// capturing: by the time this fires, ctx points at a later packet's
	// hop.
	probeCtx := &netem.Context{Sim: ctx.Sim, Net: ctx.Net, HopIndex: ctx.HopIndex}
	ctx.Sim.At(d.cfg.ActiveProbeDelay, func() {
		syn := probeCtx.Pool().NewTCP(ps.proberAddr, ps.proberPort, bridge, port, packet.FlagSYN, ps.iss, 0, nil)
		syn.Lin.Origin = packet.OriginGFW
		d.injectToward(probeCtx, bridge, syn)
	})
}

// proberPacket intercepts traffic belonging to an active probe. It
// returns true when the packet was probe traffic (and must not be
// processed as a monitored flow).
func (d *Device) proberPacket(ctx *netem.Context, pkt *packet.Packet) bool {
	if len(d.probes) == 0 || pkt.TCP == nil {
		return false
	}
	key := pkt.Tuple().Canonical()
	ps, ok := d.probes[key]
	if !ok {
		return false
	}
	// Only the bridge's replies are interesting; they pass the tap on
	// their way toward the (nonexistent) prober host.
	if pkt.IP.Src != ps.bridge {
		return true
	}
	tcp := pkt.TCP
	switch ps.state {
	case 0:
		if tcp.HasFlag(packet.FlagSYN) && tcp.HasFlag(packet.FlagACK) && tcp.Ack == ps.iss.Add(1) {
			ps.state = 1
			// Complete the handshake and send a Tor-style hello.
			ack := ctx.Pool().NewTCP(ps.proberAddr, ps.proberPort, ps.bridge, ps.port,
				packet.FlagACK, ps.iss.Add(1), tcp.Seq.Add(1), nil)
			ack.Lin = packet.Lineage{Origin: packet.OriginGFW, Parent: pkt.Lin.ID}
			d.injectToward(ctx, ps.bridge, ack)
			hello := torProbeHello()
			data := ctx.Pool().NewTCP(ps.proberAddr, ps.proberPort, ps.bridge, ps.port,
				packet.FlagPSH|packet.FlagACK, ps.iss.Add(1), tcp.Seq.Add(1), hello)
			data.Lin = packet.Lineage{Origin: packet.OriginGFW, Parent: pkt.Lin.ID}
			d.injectToward(ctx, ps.bridge, data)
		} else if tcp.HasFlag(packet.FlagRST) {
			d.finishProbe(key, ps, false)
		}
	case 1:
		switch {
		case tcp.HasFlag(packet.FlagRST):
			d.finishProbe(key, ps, false)
		case len(pkt.Payload) > 0:
			// A TLS-shaped reply to a Tor-shaped hello: confirmed.
			confirmed := len(pkt.Payload) > 0 && pkt.Payload[0] == 0x16
			d.finishProbe(key, ps, confirmed)
		}
	}
	return true
}

// finishProbe records the verdict and null-routes confirmed bridges.
func (d *Device) finishProbe(key packet.FourTuple, ps *probeState, confirmed bool) {
	delete(d.probes, key)
	if confirmed {
		if !d.ipBlock[ps.bridge] {
			d.ipBlock[ps.bridge] = true
			d.event("ip-block", key, ps.bridge.String())
		}
		d.event("tor-probe-confirm", key, ps.bridge.String())
		return
	}
	d.event("tor-probe-negative", key, ps.bridge.String())
}

// torProbeHello builds the prober's Tor-imitating ClientHello.
func torProbeHello() []byte {
	hello := []byte{0x16, 3, 1, 0, 60, 0x01, 0, 0, 56, 3, 3}
	hello = append(hello, bytes.Repeat([]byte{0x99}, 16)...)
	// The same distinctive cipher list the fingerprint keys on.
	return append(hello, []byte{0xc0, 0x2b, 0xc0, 0x2f, 0x00, 0x9e, 0xcc, 0x14, 0xcc, 0x13}...)
}

// ProbeInFlight reports whether an active probe toward addr is
// outstanding (diagnostics).
func (d *Device) ProbeInFlight(addr packet.Addr) bool {
	for _, ps := range d.probes {
		if ps.bridge == addr {
			return true
		}
	}
	return false
}
