package gfw

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"intango/internal/appsim"
	"intango/internal/dnsmsg"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

var (
	cliAddr = packet.AddrFrom4(10, 0, 0, 1)
	srvAddr = packet.AddrFrom4(203, 0, 113, 80)
)

const keyword = "ultrasurf"

// rig is a client—GFW—server test topology.
type rig struct {
	sim    *netem.Simulator
	path   *netem.Path
	dev    *Device
	cli    *tcpstack.Stack
	srv    *tcpstack.Stack
	events []Event
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{sim: netem.NewSimulator(11)}
	if cfg.Keywords == nil {
		cfg.Keywords = []string{keyword}
	}
	r.dev = NewDevice("gfw", cfg, r.sim.Rand())
	r.dev.OnEvent = func(ev Event) { r.events = append(r.events, ev) }
	r.path = &netem.Path{Sim: r.sim}
	for i := 0; i < 5; i++ {
		r.path.Hops = append(r.path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	r.path.ClientLink.Latency = time.Millisecond
	// GFW taps hop 2; its IP filter sits in-path at the same hop.
	r.path.Hops[2].Taps = []netem.Processor{r.dev}
	r.path.Hops[2].Processors = []netem.Processor{r.dev.IPFilter()}
	r.cli = tcpstack.NewStack(cliAddr, tcpstack.Linux44(), r.sim)
	r.srv = tcpstack.NewStack(srvAddr, tcpstack.Linux44(), r.sim)
	r.cli.AttachClient(r.path)
	r.srv.AttachServer(r.path)
	// A minimal HTTP app.
	r.srv.Listen(80, func(c *tcpstack.Conn) {
		c.OnData = func(data []byte) {
			if bytes.Contains(c.Received(), []byte("\r\n\r\n")) {
				c.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"))
			}
		}
	})
	return r
}

func (r *rig) countEvents(kind string) int {
	n := 0
	for _, ev := range r.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// get runs one HTTP GET for uri and returns the client connection.
func (r *rig) get(t *testing.T, uri string) *tcpstack.Conn {
	t.Helper()
	c := r.cli.Connect(srvAddr, 80)
	r.sim.RunFor(100 * time.Millisecond)
	if c.State() == tcpstack.Established {
		c.Write([]byte("GET " + uri + " HTTP/1.1\r\nHost: example.com\r\n\r\n"))
	}
	r.sim.RunFor(2 * time.Second)
	return c
}

func evolvedCfg() Config {
	return Config{Model: ModelEvolved2017, DetectionMissProb: -1} // -1: never miss
}

func TestCleanRequestPasses(t *testing.T) {
	r := newRig(t, evolvedCfg())
	c := r.get(t, "/index.html")
	if !bytes.Contains(c.Received(), []byte("200 OK")) {
		t.Fatalf("no response: %q", c.Received())
	}
	if c.GotRST {
		t.Fatal("clean request drew a reset")
	}
	if r.countEvents("detect") != 0 {
		t.Fatal("spurious detection")
	}
}

func TestKeywordDetectedAndReset(t *testing.T) {
	r := newRig(t, evolvedCfg())
	c := r.get(t, "/?q="+keyword)
	if !c.GotRST {
		t.Fatalf("client not reset; received %q", c.Received())
	}
	if bytes.Contains(c.Received(), []byte("200 OK")) {
		t.Fatal("censored response leaked")
	}
	if r.countEvents("detect") != 1 {
		t.Fatalf("detect events = %d", r.countEvents("detect"))
	}
	if !r.dev.PairBlocked(cliAddr, srvAddr, r.sim.Now()) {
		t.Fatal("pair not blocklisted")
	}
}

func TestResetSignature(t *testing.T) {
	// §2.1: one type-1 RST (random TTL/window) plus three type-2
	// RST/ACKs at X, X+1460, X+4380 with cyclic TTL/window.
	r := newRig(t, evolvedCfg())
	var toClient []*packet.Packet
	r.path.Trace = func(ev netem.TraceEvent) {
		if ev.Event == "deliver" && ev.Where == "client" && ev.Pkt.TCP != nil && ev.Pkt.TCP.HasFlag(packet.FlagRST) {
			toClient = append(toClient, ev.Pkt)
		}
	}
	r.get(t, "/?q="+keyword)
	// Examine the initial volley only: during the 90-second block any
	// further packet (server retransmissions, orphan-segment RSTs)
	// draws more resets, so the stream continues beyond it.
	if len(toClient) < 4 {
		t.Fatalf("only %d resets reached the client", len(toClient))
	}
	var type1, type2 []*packet.Packet
	for _, p := range toClient[:4] {
		if p.TCP.HasFlag(packet.FlagACK) {
			type2 = append(type2, p)
		} else {
			type1 = append(type1, p)
		}
	}
	if len(type1) != 1 {
		t.Fatalf("type-1 resets = %d, want 1", len(type1))
	}
	if len(type2) != 3 {
		t.Fatalf("type-2 resets = %d, want 3", len(type2))
	}
	base := type2[0].TCP.Seq
	if type2[1].TCP.Seq != base.Add(1460) || type2[2].TCP.Seq != base.Add(4380) {
		t.Fatalf("type-2 offsets: %d %d %d", type2[0].TCP.Seq, type2[1].TCP.Seq, type2[2].TCP.Seq)
	}
	if type2[1].IP.TTL <= type2[0].IP.TTL {
		t.Fatal("type-2 TTL should cyclically increase")
	}
}

func TestBlocklistForgedSynAckAndExpiry(t *testing.T) {
	r := newRig(t, evolvedCfg())
	r.get(t, "/?q="+keyword)

	// A fresh connection during the block is obstructed.
	c2 := r.get(t, "/clean.html")
	if bytes.Contains(c2.Received(), []byte("200 OK")) {
		t.Fatal("connection during block period succeeded")
	}
	if r.countEvents("forged-synack") == 0 {
		t.Fatal("no forged SYN/ACK during block")
	}

	// After the 90-second block expires, access works again.
	r.sim.RunFor(91 * time.Second)
	c3 := r.get(t, "/clean.html")
	if !bytes.Contains(c3.Received(), []byte("200 OK")) {
		t.Fatalf("post-block request failed: %q", c3.Received())
	}
}

func TestOldModelIgnoresSynAck(t *testing.T) {
	r := newRig(t, Config{Model: ModelKhattak2013, DetectionMissProb: -1})
	synack := packet.NewTCP(cliAddr, 4000, srvAddr, 80, packet.FlagSYN|packet.FlagACK, 100, 200, nil)
	synack.IP.TTL = 3 // never reaches the server
	synack.Finalize()
	r.path.SendFromClient(synack)
	r.sim.RunFor(100 * time.Millisecond)
	if r.dev.TCBCount() != 0 {
		t.Fatal("old model must not create a TCB from SYN/ACK")
	}
}

func TestEvolvedCreatesTCBFromSynAckReversed(t *testing.T) {
	// Hypothesized New Behavior 1 + the TCB Reversal premise (§5.2).
	r := newRig(t, evolvedCfg())
	synack := packet.NewTCP(cliAddr, 4000, srvAddr, 80, packet.FlagSYN|packet.FlagACK, 100, 200, nil)
	synack.IP.TTL = 3
	synack.Finalize()
	r.path.SendFromClient(synack)
	r.sim.RunFor(100 * time.Millisecond)
	if r.dev.TCBCount() != 1 {
		t.Fatal("evolved model must create a TCB from SYN/ACK")
	}
	tuple := synack.Tuple()
	client, ok := r.dev.TCBOrientation(tuple)
	if !ok || client != srvAddr {
		t.Fatalf("orientation: client=%v, want %v (reversed)", client, srvAddr)
	}
}

func TestMultipleSynEntersResync(t *testing.T) {
	// Hypothesized New Behavior 2(a).
	r := newRig(t, evolvedCfg())
	syn1 := packet.NewTCP(cliAddr, 4001, srvAddr, 80, packet.FlagSYN, 1000, 0, nil)
	syn2 := packet.NewTCP(cliAddr, 4001, srvAddr, 80, packet.FlagSYN, 99999, 0, nil)
	syn1.IP.TTL = 3
	syn1.Finalize()
	syn2.IP.TTL = 3
	syn2.Finalize()
	r.path.SendFromClient(syn1)
	r.path.SendFromClient(syn2)
	r.sim.RunFor(100 * time.Millisecond)
	st, ok := r.dev.TCBState(syn1.Tuple())
	if !ok || st != "RESYNC" {
		t.Fatalf("state = %q ok=%v, want RESYNC", st, ok)
	}
}

func TestResyncFollowsClientData(t *testing.T) {
	// In resync state the GFW adopts the next client data packet's
	// sequence — even a wildly out-of-window one. The fake-SYN evasion
	// therefore fails against the evolved model (§4, Prior Assumption 2).
	r := newRig(t, evolvedCfg())
	send := func(p *packet.Packet) {
		p.IP.TTL = 3
		p.Finalize()
		r.path.SendFromClient(p)
		r.sim.RunFor(50 * time.Millisecond)
	}
	send(packet.NewTCP(cliAddr, 4002, srvAddr, 80, packet.FlagSYN, 1000, 0, nil))
	send(packet.NewTCP(cliAddr, 4002, srvAddr, 80, packet.FlagSYN, 5000, 0, nil))
	// HTTP request at an arbitrary sequence: resynchronizes and is
	// still detected.
	send(packet.NewTCP(cliAddr, 4002, srvAddr, 80, packet.FlagPSH|packet.FlagACK,
		777777, 1, []byte("GET /?q="+keyword+" HTTP/1.1\r\n\r\n")))
	if r.countEvents("resync-applied") == 0 {
		t.Fatal("no resynchronization applied")
	}
	if r.countEvents("detect") != 1 {
		t.Fatal("keyword after resync not detected")
	}
}

func TestDesyncDefeatsResync(t *testing.T) {
	// §5.1: while in resync state, an out-of-window junk data packet
	// desynchronizes the TCB; the real request is then invisible.
	r := newRig(t, evolvedCfg())
	send := func(p *packet.Packet) {
		p.IP.TTL = 3
		p.Finalize()
		r.path.SendFromClient(p)
		r.sim.RunFor(50 * time.Millisecond)
	}
	send(packet.NewTCP(cliAddr, 4003, srvAddr, 80, packet.FlagSYN, 1000, 0, nil))
	send(packet.NewTCP(cliAddr, 4003, srvAddr, 80, packet.FlagSYN, 5000, 0, nil))
	// Desynchronization packet: 1 byte of junk at a far-away sequence.
	send(packet.NewTCP(cliAddr, 4003, srvAddr, 80, packet.FlagPSH|packet.FlagACK, 999999, 1, []byte("z")))
	// Real request at the "true" sequence.
	send(packet.NewTCP(cliAddr, 4003, srvAddr, 80, packet.FlagPSH|packet.FlagACK,
		1001, 1, []byte("GET /?q="+keyword+" HTTP/1.1\r\n\r\n")))
	if r.countEvents("detect") != 0 {
		t.Fatal("desynchronized GFW still detected the keyword")
	}
}

func TestRSTTeardownVsResync(t *testing.T) {
	mk := func(prob float64) (*rig, *Device) {
		cfg := evolvedCfg()
		cfg.ResyncOnRSTProb = prob
		r := newRig(t, cfg)
		return r, r.dev
	}
	// Device that tears down on RST: evasion by teardown works.
	r, dev := mk(0)
	if dev.RSTResyncs() {
		t.Fatal("prob 0 device must not resync on RST")
	}
	send := func(r *rig, p *packet.Packet) {
		p.IP.TTL = 3
		p.Finalize()
		r.path.SendFromClient(p)
		r.sim.RunFor(50 * time.Millisecond)
	}
	send(r, packet.NewTCP(cliAddr, 4004, srvAddr, 80, packet.FlagSYN, 1000, 0, nil))
	send(r, packet.NewTCP(cliAddr, 4004, srvAddr, 80, packet.FlagRST, 1001, 0, nil))
	send(r, packet.NewTCP(cliAddr, 4004, srvAddr, 80, packet.FlagPSH|packet.FlagACK,
		1001, 1, []byte("GET /?q="+keyword+" HTTP/1.1\r\n\r\n")))
	if r.countEvents("detect") != 0 {
		t.Fatal("teardown device detected after RST")
	}

	// Device that resyncs on RST: the request itself resynchronizes the
	// TCB and is detected (Hypothesized New Behavior 3).
	r2, dev2 := mk(1)
	if !dev2.RSTResyncs() {
		t.Fatal("prob 1 device must resync on RST")
	}
	send(r2, packet.NewTCP(cliAddr, 4005, srvAddr, 80, packet.FlagSYN, 1000, 0, nil))
	send(r2, packet.NewTCP(cliAddr, 4005, srvAddr, 80, packet.FlagRST, 1001, 0, nil))
	send(r2, packet.NewTCP(cliAddr, 4005, srvAddr, 80, packet.FlagPSH|packet.FlagACK,
		1001, 1, []byte("GET /?q="+keyword+" HTTP/1.1\r\n\r\n")))
	if r2.countEvents("detect") != 1 {
		t.Fatal("resync device failed to detect after RST")
	}
}

func TestSplitKeywordType1VsType2(t *testing.T) {
	// §2.1: only type-2 devices reassemble across packets.
	run := func(type1, type2 bool) int {
		cfg := evolvedCfg()
		cfg.Type1, cfg.Type2 = type1, type2
		r := newRig(t, cfg)
		c := r.cli.Connect(srvAddr, 80)
		r.sim.RunFor(100 * time.Millisecond)
		half := len(keyword) / 2
		c.Write([]byte("GET /?q=" + keyword[:half]))
		r.sim.RunFor(50 * time.Millisecond)
		c.Write([]byte(keyword[half:] + " HTTP/1.1\r\n\r\n"))
		r.sim.RunFor(time.Second)
		return r.countEvents("detect")
	}
	if got := run(true, false); got != 0 {
		t.Fatalf("type-1-only device detected a split keyword (%d)", got)
	}
	if got := run(false, true); got != 1 {
		t.Fatalf("type-2 device missed the split keyword (%d)", got)
	}
}

func TestFragmentedRequestReassembled(t *testing.T) {
	// The GFW reassembles IP fragments (first copy wins) before DPI.
	r := newRig(t, evolvedCfg())
	c := r.cli.Connect(srvAddr, 80)
	r.sim.RunFor(100 * time.Millisecond)
	req := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, c.SndNxt(), c.RcvNxt(),
		[]byte("GET /?q="+keyword+" HTTP/1.1\r\nHost: example.com\r\nX-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n"))
	frags, err := packet.Fragment(req, 80)
	if err != nil || len(frags) < 2 {
		t.Fatalf("fragmentation failed: %v (%d frags)", err, len(frags))
	}
	for _, f := range frags {
		r.path.SendFromClient(f)
	}
	r.sim.RunFor(time.Second)
	if r.countEvents("detect") != 1 {
		t.Fatalf("fragmented keyword not detected: %d", r.countEvents("detect"))
	}
}

func TestDetectionMissProbability(t *testing.T) {
	cfg := evolvedCfg()
	cfg.DetectionMissProb = 1.0
	r := newRig(t, cfg)
	c := r.get(t, "/?q="+keyword)
	if c.GotRST {
		t.Fatal("overloaded device should have missed")
	}
	if !bytes.Contains(c.Received(), []byte("200 OK")) {
		t.Fatal("response missing despite detection miss")
	}
	if r.countEvents("detect-miss") != 1 {
		t.Fatalf("miss events = %d", r.countEvents("detect-miss"))
	}
}

func TestDNSUDPPoisoning(t *testing.T) {
	r := newRig(t, Config{Model: ModelEvolved2017, PoisonedDomains: []string{"dropbox.com"}, DetectionMissProb: -1})
	// Resolver app on the server.
	r.srv.ListenUDP(53, func(src packet.Addr, srcPort uint16, payload []byte) {
		q, err := dnsmsg.Decode(payload)
		if err != nil {
			return
		}
		resp := dnsmsg.NewResponse(q, packet.AddrFrom4(1, 2, 3, 4), 60)
		b, _ := resp.Encode()
		r.srv.SendUDP(53, src, srcPort, b)
	})
	var answers []packet.Addr
	r.cli.ListenUDP(5353, func(src packet.Addr, srcPort uint16, payload []byte) {
		m, err := dnsmsg.Decode(payload)
		if err == nil && len(m.Answers) > 0 {
			answers = append(answers, m.Answers[0].Addr)
		}
	})
	q, _ := dnsmsg.NewQuery(42, "www.dropbox.com").Encode()
	r.cli.SendUDP(5353, srvAddr, 53, q)
	r.sim.RunFor(time.Second)
	if len(answers) < 2 {
		t.Fatalf("answers = %v, want poisoned + real", answers)
	}
	if answers[0] != PoisonAddr {
		t.Fatalf("first answer = %v, want poison %v", answers[0], PoisonAddr)
	}
	// An innocent domain is not poisoned.
	answers = nil
	q2, _ := dnsmsg.NewQuery(43, "www.example.com").Encode()
	r.cli.SendUDP(5353, srvAddr, 53, q2)
	r.sim.RunFor(time.Second)
	if len(answers) != 1 || answers[0] != packet.AddrFrom4(1, 2, 3, 4) {
		t.Fatalf("innocent answers = %v", answers)
	}
}

func TestDNSOverTCPReset(t *testing.T) {
	r := newRig(t, Config{Model: ModelEvolved2017, PoisonedDomains: []string{"dropbox.com"}, DetectionMissProb: -1})
	r.srv.Listen(53, func(c *tcpstack.Conn) {
		c.OnData = func([]byte) {}
	})
	c := r.cli.Connect(srvAddr, 53)
	r.sim.RunFor(100 * time.Millisecond)
	q, _ := dnsmsg.NewQuery(7, "www.dropbox.com").Encode()
	c.Write(dnsmsg.FrameTCP(q))
	r.sim.RunFor(time.Second)
	if !c.GotRST {
		t.Fatal("TCP DNS query for censored domain not reset")
	}
}

func TestTorFingerprintAndIPBlock(t *testing.T) {
	cfg := evolvedCfg()
	cfg.TorFiltering = true
	cfg.ActiveProbeDelay = 5 * time.Second
	r := newRig(t, cfg)
	appsim.ServeTorBridge(r.srv, 9001)
	c := r.cli.Connect(srvAddr, 9001)
	r.sim.RunFor(100 * time.Millisecond)
	hello := []byte{0x16, 3, 1, 0, 60, 0x01, 0, 0, 0}
	hello = append(hello, bytes.Repeat([]byte{0}, 8)...)
	hello = append(hello, []byte{0xc0, 0x2b, 0xc0, 0x2f, 0x00, 0x9e, 0xcc, 0x14, 0xcc, 0x13}...)
	c.Write(hello)
	r.sim.RunFor(time.Second)
	if !c.GotRST {
		t.Fatal("Tor handshake not reset")
	}
	if r.dev.IsIPBlocked(srvAddr) {
		t.Fatal("IP blocked before the active-probe delay")
	}
	r.sim.RunFor(10 * time.Second)
	if !r.dev.IsIPBlocked(srvAddr) {
		t.Fatal("bridge IP not blocked after active probing")
	}
	// Let the 90-second pair block lapse so only the IP-level blackhole
	// remains, then observe that SYNs vanish silently (no RST, no
	// SYN/ACK) — the "can no longer connect to this IP via any port"
	// behaviour of §7.3.
	r.sim.RunFor(2 * time.Minute)
	c2 := r.cli.Connect(srvAddr, 9001)
	r.sim.RunFor(60 * time.Second)
	if c2.State() == tcpstack.Established {
		t.Fatal("connection to a null-routed bridge succeeded")
	}
	if c2.GotRST {
		t.Fatal("blackholed SYN should time out silently, not draw a RST")
	}
	if c2.AbortReason != "retransmission-limit" {
		t.Fatalf("abort reason = %q", c2.AbortReason)
	}
}

func TestTorWithoutFilteringPasses(t *testing.T) {
	r := newRig(t, evolvedCfg()) // TorFiltering false (Northern China paths)
	r.srv.Listen(9001, func(c *tcpstack.Conn) { c.OnData = func(d []byte) { c.Write([]byte("srvhello")) } })
	c := r.cli.Connect(srvAddr, 9001)
	r.sim.RunFor(100 * time.Millisecond)
	hello := []byte{0x16, 3, 1, 0, 60, 0x01, 0, 0, 0}
	hello = append(hello, []byte{0xc0, 0x2b, 0xc0, 0x2f, 0x00, 0x9e, 0xcc, 0x14, 0xcc, 0x13}...)
	c.Write(hello)
	r.sim.RunFor(time.Second)
	if c.GotRST || !strings.Contains(string(c.Received()), "srvhello") {
		t.Fatalf("Tor on unfiltered path disturbed: rst=%v recv=%q", c.GotRST, c.Received())
	}
}

func TestVPNFiltering(t *testing.T) {
	cfg := evolvedCfg()
	cfg.VPNFiltering = true
	r := newRig(t, cfg)
	r.srv.Listen(1194, func(c *tcpstack.Conn) { c.OnData = func([]byte) {} })
	c := r.cli.Connect(srvAddr, 1194)
	r.sim.RunFor(100 * time.Millisecond)
	ovpn := []byte{0x00, 0x20, 0x38}
	ovpn = append(ovpn, bytes.Repeat([]byte{0xaa}, 32)...)
	c.Write(ovpn)
	r.sim.RunFor(time.Second)
	if !c.GotRST {
		t.Fatal("OpenVPN handshake not reset")
	}
}

func TestKeywordInServerResponseNotScanned(t *testing.T) {
	// The GFW only censors client→server traffic (§5.2).
	r := newRig(t, evolvedCfg())
	r.srv.Listen(8080, func(c *tcpstack.Conn) {
		c.OnData = func([]byte) {
			c.Write([]byte("HTTP/1.1 200 OK\r\n\r\n" + keyword))
		}
	})
	c := r.cli.Connect(srvAddr, 8080)
	r.sim.RunFor(100 * time.Millisecond)
	c.Write([]byte("GET /clean HTTP/1.1\r\n\r\n"))
	r.sim.RunFor(time.Second)
	if c.GotRST {
		t.Fatal("response keyword drew a reset")
	}
	if !bytes.Contains(c.Received(), []byte(keyword)) {
		t.Fatalf("response not received: %q", c.Received())
	}
}

func TestActiveProberIsRealTraffic(t *testing.T) {
	cfg := evolvedCfg()
	cfg.TorFiltering = true
	cfg.ActiveProbeDelay = 3 * time.Second
	r := newRig(t, cfg)
	appsim.ServeTorBridge(r.srv, 9001)

	// Watch actual probe packets cross the wire.
	var probeSyn, probeHello, bridgeReply bool
	r.path.Trace = func(ev netem.TraceEvent) {
		if ev.Pkt.TCP == nil {
			return
		}
		src := ev.Pkt.IP.Src
		if src[0] == 59 && src[1] == 66 { // prober address pool
			if ev.Pkt.TCP.FlagsOnly(packet.FlagSYN) {
				probeSyn = true
			}
			if len(ev.Pkt.Payload) > 0 {
				probeHello = true
			}
		}
		if ev.Event == "deliver" && ev.Where == "client" && src == srvAddr && len(ev.Pkt.Payload) > 0 {
			bridgeReply = true
		}
	}
	c := r.cli.Connect(srvAddr, 9001)
	r.sim.RunFor(100 * time.Millisecond)
	c.Write(appsim.TorClientHello())
	r.sim.RunFor(30 * time.Second)

	if !probeSyn || !probeHello {
		t.Fatalf("probe traffic missing: syn=%v hello=%v", probeSyn, probeHello)
	}
	_ = bridgeReply
	if !r.dev.IsIPBlocked(srvAddr) {
		t.Fatal("bridge not confirmed and blocked")
	}
	if r.countEvents("tor-probe-confirm") != 1 {
		t.Fatalf("confirm events = %d", r.countEvents("tor-probe-confirm"))
	}
	if r.dev.ProbeInFlight(srvAddr) {
		t.Fatal("probe should have completed")
	}
}

func TestActiveProberNegativeOnNonBridge(t *testing.T) {
	// A fingerprint match against an endpoint that answers probes with
	// an HTTP response (not TLS) is not confirmed: no IP block.
	cfg := evolvedCfg()
	cfg.TorFiltering = true
	cfg.ActiveProbeDelay = 3 * time.Second
	r := newRig(t, cfg)
	r.srv.Listen(9001, func(c *tcpstack.Conn) {
		c.OnData = func([]byte) { c.Write([]byte("HTTP/1.1 400 Bad Request\r\n\r\n")) }
	})
	c := r.cli.Connect(srvAddr, 9001)
	r.sim.RunFor(100 * time.Millisecond)
	c.Write(appsim.TorClientHello()) // fingerprinted anyway
	r.sim.RunFor(30 * time.Second)
	if r.dev.IsIPBlocked(srvAddr) {
		t.Fatal("non-bridge endpoint must not be null-routed")
	}
	if r.countEvents("tor-probe-negative") != 1 {
		t.Fatalf("negative events = %d", r.countEvents("tor-probe-negative"))
	}
}

func TestResponseCensorshipCleanRedirectPasses(t *testing.T) {
	// A redirect with no sensitive keyword in the Location header is
	// untouched even by a response-censoring device.
	cfg := evolvedCfg()
	cfg.ResponseCensorship = true
	r := newRig(t, cfg)
	appsim.ServeHTTPSRedirect(r.srv, 8443, "secure.example.com")
	c := r.cli.Connect(srvAddr, 8443)
	r.sim.RunFor(100 * time.Millisecond)
	c.Write([]byte("GET /search HTTP/1.1\r\nHost: x\r\n\r\n"))
	r.sim.RunFor(2 * time.Second)
	if c.GotRST {
		t.Fatal("clean redirect should pass")
	}
	if !bytes.Contains(c.Received(), []byte("301")) {
		t.Fatalf("no redirect received: %q", c.Received())
	}
}

func TestResponseCensorshipDetectsLocationHeader(t *testing.T) {
	cfg := evolvedCfg()
	cfg.ResponseCensorship = true
	cfg.Keywords = []string{"falun"} // ensure a fresh matcher keyword
	r := newRig(t, cfg)
	appsim.ServeHTTPSRedirect(r.srv, 8443, "site.example")
	c := r.cli.Connect(srvAddr, 8443)
	r.sim.RunFor(100 * time.Millisecond)
	// Desynchronize the client→server direction first (extra SYN →
	// resync, junk data → garbage sequence) so the request-side scanner
	// is blind; the only way the device can catch the keyword is in the
	// 301 Location header coming back.
	syn := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 8443, packet.FlagSYN, 1, 0, nil)
	syn.IP.TTL = 3
	syn.Finalize()
	r.path.SendFromClient(syn) // extra SYN: TCB → resync
	desync := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 8443,
		packet.FlagPSH|packet.FlagACK, c.SndNxt().Add(1<<20), c.RcvNxt(), []byte("z"))
	desync.IP.TTL = 3
	desync.Finalize()
	r.path.SendFromClient(desync) // desynchronize the client direction
	r.sim.RunFor(100 * time.Millisecond)
	c.Write([]byte("GET /?q=falun HTTP/1.1\r\nHost: site.example\r\n\r\n"))
	r.sim.RunFor(2 * time.Second)
	if r.countEvents("detect-response") == 0 {
		t.Fatalf("no response-side detection; events: %d request-side", r.countEvents("detect"))
	}
	if !c.GotRST {
		t.Fatal("response censorship should reset the connection")
	}
}
