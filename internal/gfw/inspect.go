package gfw

import (
	"strings"
	"time"

	"intango/internal/dnsmsg"
	"intango/internal/dpi"
	"intango/internal/netem"
	"intango/internal/packet"
)

// inspect runs the detection engine over newly ingested client data.
// wasInOrder reports whether the packet sat at the expected in-order
// position (a per-packet type-1 device only scans those); matches are
// new keyword hits from the reassembling type-2 scanner.
func (d *Device) inspect(ctx *netem.Context, key packet.FourTuple, t *tcb, pkt *packet.Packet, wasInOrder bool, matches []dpi.Match) {
	if t.immune || t.detected {
		return
	}

	// Protocol identification over the reassembled prefix.
	if t.classified == dpi.ProtoUnknown && t.stream.scanned >= 3 {
		t.classified = dpi.ClassifyClientStream(t.sport, t.stream.contiguous())
	}

	type1Hit := d.cfg.Type1 && wasInOrder && d.matcher.Contains(pkt.Payload)
	type2Hit := d.cfg.Type2 && len(matches) > 0

	// DNS-over-TCP: censored domain in the query stream (§7.2).
	if d.cfg.Type2 && t.sport == 53 {
		if name, ok := dpi.DNSTCPQueryName(t.stream.contiguous()); ok && d.domainPoisoned(name) {
			type2Hit = true
		}
	}

	// Tor: fingerprint, reset, and dispatch the active prober (§7.3).
	if d.cfg.TorFiltering && t.classified == dpi.ProtoTor && !t.torHandled {
		t.torHandled = true
		d.eventPkt("tor-fingerprint", key, pkt, "")
		d.launchActiveProbe(ctx, t.server, t.sport)
		type2Hit = true
	}

	// OpenVPN-over-TCP DPI (observed November 2016).
	if d.cfg.VPNFiltering && t.classified == dpi.ProtoOpenVPN {
		type2Hit = true
	}

	if !type1Hit && !type2Hit {
		return
	}

	// GFW overload: some flows escape detection entirely (§3.4).
	if d.rng.Float64() < d.cfg.DetectionMissProb {
		t.immune = true
		d.eventPkt("detect-miss", key, pkt, "overload")
		return
	}

	t.detected = true
	d.eventPkt("detect", key, pkt, "")
	d.injectResets(ctx, t, type1Hit && d.cfg.Type1, d.cfg.Type2, pkt)
	if d.cfg.Type2 {
		d.blockPair(ctx, t.client, t.server, pkt)
	}
}

func (d *Device) domainPoisoned(name string) bool {
	name = strings.ToLower(name)
	for _, dom := range d.cfg.PoisonedDomains {
		if name == dom || strings.HasSuffix(name, "."+dom) {
			return true
		}
	}
	return false
}

// blockPair starts (or refreshes) the 90-second blocklist entry for a
// client/server address pair. cause is the packet whose detection
// triggered the entry.
func (d *Device) blockPair(ctx *netem.Context, client, server packet.Addr, cause *packet.Packet) {
	key := pairKey(client, server)
	d.pairBlock[key] = ctx.Sim.Now() + d.cfg.BlockDuration
	d.eventPkt("block", packet.FourTuple{SrcAddr: client, DstAddr: server}, cause, "")
}

func pairKey(a, b packet.Addr) [2]packet.Addr {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return [2]packet.Addr{a, b}
			}
			return [2]packet.Addr{b, a}
		}
	}
	return [2]packet.Addr{a, b}
}

// PairBlocked reports whether the address pair is currently blocked.
func (d *Device) PairBlocked(a, b packet.Addr, now time.Duration) bool {
	exp, ok := d.pairBlock[pairKey(a, b)]
	return ok && now < exp
}

// enforceBlocklist applies the during-block behaviour of §2.1: SYNs
// draw a forged SYN/ACK with a wrong sequence number; everything else
// draws resets toward both ends. Only type-2 devices enforce it. It
// returns true when the packet hit an active block.
func (d *Device) enforceBlocklist(ctx *netem.Context, pkt *packet.Packet) bool {
	if !d.cfg.Type2 {
		return false
	}
	exp, ok := d.pairBlock[pairKey(pkt.IP.Src, pkt.IP.Dst)]
	if !ok {
		return false
	}
	if ctx.Sim.Now() >= exp {
		delete(d.pairBlock, pairKey(pkt.IP.Src, pkt.IP.Dst))
		return false
	}
	tcp := pkt.TCP
	if tcp == nil {
		return true
	}
	tuple := pkt.Tuple()
	if tcp.FlagsOnly(packet.FlagSYN) {
		// Forged SYN/ACK with a wrong (random) sequence number but a
		// correct ack, obstructing the legitimate handshake.
		forged := ctx.Pool().NewTCP(pkt.IP.Dst, tcp.DstPort, pkt.IP.Src, tcp.SrcPort,
			packet.FlagSYN|packet.FlagACK, packet.Seq(d.rng.Uint32()), tcp.Seq.Add(1), nil)
		forged.Lin = packet.Lineage{Origin: packet.OriginGFW, Parent: lineageOf(pkt)}
		d.injectToward(ctx, pkt.IP.Src, forged)
		d.eventPkt("forged-synack", tuple, pkt, "")
		return true
	}
	// Reset both ends, keyed off the offending packet's numbers.
	toSrc := packet.Seq(0)
	if tcp.HasFlag(packet.FlagACK) {
		toSrc = tcp.Ack
	}
	d.injectTypedResets(ctx, pkt.IP.Dst, tcp.DstPort, pkt.IP.Src, tcp.SrcPort, toSrc, tcp.Seq.Add(len(pkt.Payload)), lineageOf(pkt))
	d.injectTypedResets(ctx, pkt.IP.Src, tcp.SrcPort, pkt.IP.Dst, tcp.DstPort, tcp.Seq.Add(len(pkt.Payload)), toSrc, lineageOf(pkt))
	d.eventPkt("block-enforce", tuple, pkt, "")
	return true
}

// injectResets fires the §2.1 reset volley for a detected TCB: type-1
// sends one bare RST each way; type-2 sends three RST/ACKs each way at
// offsets {0, 1460, 4380} from the current sequence. cause is the
// packet whose detection triggered the volley; every forged reset
// records it as its lineage parent.
func (d *Device) injectResets(ctx *netem.Context, t *tcb, type1, type2 bool, cause *packet.Packet) {
	serverSeq := t.serverNext // X: current server-side sequence (§2.1)
	clientSeq := t.clientNext
	parent := lineageOf(cause)

	if type1 {
		// Type-1: bare RST, random TTL and window (§2.1).
		toClient := ctx.Pool().NewTCP(t.server, t.sport, t.client, t.cport, packet.FlagRST, serverSeq, 0, nil)
		toClient.IP.TTL = uint8(40 + d.rng.Intn(200))
		toClient.TCP.Window = uint16(d.rng.Intn(65536))
		toClient.Finalize()
		toClient.Lin = packet.Lineage{Origin: packet.OriginGFW, Parent: parent}
		d.injectToward(ctx, t.client, toClient)

		toServer := ctx.Pool().NewTCP(t.client, t.cport, t.server, t.sport, packet.FlagRST, clientSeq, 0, nil)
		toServer.IP.TTL = uint8(40 + d.rng.Intn(200))
		toServer.TCP.Window = uint16(d.rng.Intn(65536))
		toServer.Finalize()
		toServer.Lin = packet.Lineage{Origin: packet.OriginGFW, Parent: parent}
		d.injectToward(ctx, t.server, toServer)
		d.eventPkt("inject-type1", packet.FourTuple{SrcAddr: t.client, DstAddr: t.server}, cause, "")
	}
	if type2 {
		d.injectTypedResets(ctx, t.server, t.sport, t.client, t.cport, serverSeq, clientSeq, parent)
		d.injectTypedResets(ctx, t.client, t.cport, t.server, t.sport, clientSeq, serverSeq, parent)
		d.eventPkt("inject-type2", packet.FourTuple{SrcAddr: t.client, DstAddr: t.server}, cause, "")
	}
}

// injectTypedResets emits the type-2 RST/ACK triple from (src,sport)
// toward dst, each stamped with the causing packet's lineage ID.
func (d *Device) injectTypedResets(ctx *netem.Context, src packet.Addr, sport uint16, dst packet.Addr, dport uint16, seq, ack packet.Seq, parent uint32) {
	for _, off := range d.cfg.ResetSeqOffsets {
		p := ctx.Pool().NewTCP(src, sport, dst, dport, packet.FlagRST|packet.FlagACK, seq.Add(off), ack, nil)
		// Type-2 signature: cyclically increasing TTL and window (§2.1).
		d.t2TTL++
		if d.t2TTL < 40 {
			d.t2TTL = 40
		}
		d.t2Win += 79
		p.IP.TTL = d.t2TTL
		p.TCP.Window = d.t2Win
		p.Finalize()
		p.Lin = packet.Lineage{Origin: packet.OriginGFW, Parent: parent}
		d.injectToward(ctx, dst, p)
	}
}

// injectToward sends a forged packet from the device's hop toward the
// end of the path holding addr.
func (d *Device) injectToward(ctx *netem.Context, dst packet.Addr, pkt *packet.Packet) {
	dir := netem.ToServer
	if d.towardClientEnd(ctx, dst) {
		dir = netem.ToClient
	}
	ctx.Inject(dir, pkt, 0)
}

// towardClientEnd decides which path direction reaches addr. The
// experiment topology registers the client-end address set on the
// device via SetClientSide; absent that, heuristically treat the
// 10.0.0.0/8 range as the client side.
func (d *Device) towardClientEnd(ctx *netem.Context, addr packet.Addr) bool {
	if d.clientSide != nil {
		return d.clientSide(addr)
	}
	return addr[0] == 10
}

// processUDP applies DNS poisoning to client→resolver queries (§2.1).
func (d *Device) processUDP(ctx *netem.Context, pkt *packet.Packet) {
	if pkt.UDP.DstPort != 53 {
		return
	}
	name, ok := dpi.DNSUDPQueryName(pkt.Payload)
	if !ok || !d.domainPoisoned(name) {
		return
	}
	query, err := dnsmsg.Decode(pkt.Payload)
	if err != nil {
		return
	}
	// Inject a forged response; being closer to the client than the
	// real resolver, it wins the race.
	forged := dnsmsg.NewResponse(query, d.cfg.PoisonedAddr, 300)
	payload, err := forged.Encode()
	if err != nil {
		return
	}
	resp := ctx.Pool().NewUDP(pkt.IP.Dst, 53, pkt.IP.Src, pkt.UDP.SrcPort, payload)
	resp.Lin = packet.Lineage{Origin: packet.OriginGFW, Parent: lineageOf(pkt)}
	d.injectToward(ctx, pkt.IP.Src, resp)
	d.eventPkt("dns-poison", pkt.Tuple(), pkt, name)
}

// PoisonAddr is the well-known bogus address the GFW's DNS poisoner
// returns (one of the documented poison IPs).
var PoisonAddr = packet.AddrFrom4(8, 7, 198, 45)
