package gfw

import (
	"intango/internal/netem"
	"intango/internal/packet"
)

// clientSideFunc tells the device which addresses live on the client
// end of its path.
type clientSideFunc func(addr packet.Addr) bool

// SetClientSide registers the predicate identifying client-end
// addresses, used to aim injected packets. The experiment topology
// calls this when attaching the device to a path.
func (d *Device) SetClientSide(f func(addr packet.Addr) bool) { d.clientSide = f }

// IsIPBlocked reports whether addr has been null-routed (Tor active
// probing aftermath, §7.3).
func (d *Device) IsIPBlocked(addr packet.Addr) bool { return d.ipBlock[addr] }

// BlockIP null-routes addr immediately (test/probe helper).
func (d *Device) BlockIP(addr packet.Addr) { d.ipBlock[addr] = true }

// IPFilter returns the in-path companion processor that enforces the
// device's IP blocklist. Unlike the wiretap, it can drop packets: IP
// blocking is implemented in the routing layer, not the DPI tap.
func (d *Device) IPFilter() netem.Processor {
	return &ipFilter{d: d}
}

type ipFilter struct{ d *Device }

func (f *ipFilter) Name() string { return f.d.name + "-ipfilter" }

func (f *ipFilter) Process(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
	if f.d.ipBlock[pkt.IP.Src] || f.d.ipBlock[pkt.IP.Dst] {
		return netem.Drop
	}
	return netem.Pass
}
