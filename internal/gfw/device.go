package gfw

import (
	"math/rand"
	"time"

	"intango/internal/dpi"
	"intango/internal/netem"
	"intango/internal/obs"
	"intango/internal/packet"
)

// Event is one observable state transition inside a device; tests and
// the probing tool subscribe to them. Pkt is the causal-tracing wire
// ID of the packet that caused the transition (zero when unknown).
type Event struct {
	Kind   string
	Tuple  packet.FourTuple
	Detail string
	Pkt    uint32
}

// Device is one GFW DPI instance wiretapping a hop.
type Device struct {
	name string
	cfg  Config
	rng  *rand.Rand

	matcher *dpi.Matcher
	tcbs    map[packet.FourTuple]*tcb
	frag    *packet.Reassembler

	// pairBlock maps a canonical (client,server) address pair to the
	// virtual time its 90-second block expires.
	pairBlock map[[2]packet.Addr]time.Duration
	ipBlock   map[packet.Addr]bool

	// Per-device sampled behaviours (§4: consistent per pair within a
	// period, inconsistent across periods/devices).
	rstResyncs  bool
	segLastWins bool

	// clientSide identifies which addresses live on the client end of
	// the device's path, to aim injected packets.
	clientSide clientSideFunc

	// probes tracks in-flight active-prober connections (§7.3).
	probes    map[packet.FourTuple]*probeState
	proberSeq int

	// type-2 injector counters: cyclically increasing TTL and window.
	t2TTL uint8
	t2Win uint16

	// Stage marks for span profiling, all on the virtual clock:
	// FirstPktAt/LastPktAt bracket the traffic this device saw, and
	// VerdictAt stamps its first enforcement action (injection or
	// block), zero if it never enforced. now caches the simulation
	// clock at the top of Process so eventPkt can stamp verdicts
	// without threading a Context through every call site.
	FirstPktAt time.Duration
	LastPktAt  time.Duration
	VerdictAt  time.Duration
	sawPkt     bool
	now        time.Duration

	// OnEvent, when set, observes device events.
	OnEvent func(Event)
	// Stats counts events by kind.
	Stats map[string]int
	// Obs, when set, mirrors every device event into the shared
	// observability layer as a "gfw.<kind>" counter and a
	// flight-recorder entry. Nil (the default) costs one branch.
	Obs *obs.Obs
}

// NewDevice builds a device named name. The rng drives all sampled
// behaviour and must be the simulation's PRNG (or a derived one) for
// deterministic runs.
func NewDevice(name string, cfg Config, rng *rand.Rand) *Device {
	cfg = cfg.withDefaults()
	d := &Device{
		name:      name,
		cfg:       cfg,
		rng:       rng,
		matcher:   dpi.NewMatcher(cfg.Keywords),
		tcbs:      make(map[packet.FourTuple]*tcb),
		frag:      packet.NewReassembler(packet.FirstWins),
		pairBlock: make(map[[2]packet.Addr]time.Duration),
		ipBlock:   make(map[packet.Addr]bool),
		Stats:     make(map[string]int),
		t2TTL:     64,
		t2Win:     8192,
	}
	d.rstResyncs = rng.Float64() < cfg.ResyncOnRSTProb
	// Khattak et al. measured the old model preferring the later copy
	// of overlapping out-of-order segments unconditionally; only the
	// evolved deployment is heterogeneous (Config.SegmentLastWinsProb).
	d.segLastWins = cfg.Model == ModelKhattak2013 || rng.Float64() < cfg.SegmentLastWinsProb
	return d
}

// Name implements netem.Processor.
func (d *Device) Name() string { return d.name }

// Config returns the device's effective configuration.
func (d *Device) Config() Config { return d.cfg }

// RSTResyncs reports the device's sampled RST behaviour: true means
// RSTs send TCBs to the resynchronization state instead of tearing
// them down (Hypothesized New Behavior 3).
func (d *Device) RSTResyncs() bool { return d.rstResyncs }

// SetRSTResyncs pins the sampled RST behaviour. The experiment harness
// uses it to keep a device's behaviour stable across trials for a
// client/server pair, which is what the paper observed (§4: consistent
// during a period, inconsistent across periods).
func (d *Device) SetRSTResyncs(v bool) { d.rstResyncs = v }

// SetSegmentLastWins pins the sampled segment-overlap behaviour (see
// Config.SegmentLastWinsProb).
func (d *Device) SetSegmentLastWins(v bool) { d.segLastWins = v }

// SetObs mirrors device events into the shared observability layer
// (censor.Instance).
func (d *Device) SetObs(o *obs.Obs) { d.Obs = o }

// Stat returns the count of one event kind (censor.Instance).
func (d *Device) Stat(kind string) int { return d.Stats[kind] }

// ClearStats resets the event counters (censor.Instance); series
// runners reuse one device across trials.
func (d *Device) ClearStats() {
	for k := range d.Stats {
		delete(d.Stats, k)
	}
}

// Marks returns the span-profiling stamps (censor.Instance).
func (d *Device) Marks() (first, verdict, last time.Duration) {
	return d.FirstPktAt, d.VerdictAt, d.LastPktAt
}

// Filter returns the in-path companion processor (censor.Instance);
// for the GFW engine that is the active-probing IP blocklist.
func (d *Device) Filter() netem.Processor { return d.IPFilter() }

func (d *Device) event(kind string, tuple packet.FourTuple, detail string) {
	d.eventPkt(kind, tuple, nil, detail)
}

// verdictKinds are the event kinds that count as enforcement — the
// same set classify() in the experiment runner treats as censorship.
var verdictKinds = map[string]bool{
	"inject-type1":  true,
	"inject-type2":  true,
	"block-enforce": true,
	"forged-synack": true,
}

// eventPkt is event keyed to the packet that caused the state
// transition, so the flight recorder (and the causal tracer tapping
// it) can tie censor state changes back to specific wire packets.
func (d *Device) eventPkt(kind string, tuple packet.FourTuple, cause *packet.Packet, detail string) {
	d.Stats[kind]++
	if d.VerdictAt == 0 && verdictKinds[kind] {
		d.VerdictAt = d.now
	}
	id := lineageOf(cause)
	if d.Obs != nil {
		d.Obs.Count("gfw." + kind)
		note := d.name
		if detail != "" {
			note += " " + detail
		}
		d.Obs.TracePkt("gfw", kind, id, 0, 0, 0, note)
	}
	if d.OnEvent != nil {
		d.OnEvent(Event{Kind: kind, Tuple: tuple, Detail: detail, Pkt: id})
	}
}

// lineageOf resolves the wire ID a GFW event should key on. A
// reassembled whole datagram never went on the wire itself (ID zero);
// it inherits the completing fragment's identity via Parent.
func lineageOf(pkt *packet.Packet) uint32 {
	if pkt == nil {
		return 0
	}
	if pkt.Lin.ID != 0 {
		return pkt.Lin.ID
	}
	return pkt.Lin.Parent
}

// Process implements netem.Processor as an on-path tap: it always
// passes and never mutates pkt.
func (d *Device) Process(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
	d.now = ctx.Sim.Now()
	if !d.sawPkt {
		d.sawPkt = true
		d.FirstPktAt = d.now
	}
	d.LastPktAt = d.now
	switch {
	case pkt.UDP != nil:
		d.processUDP(ctx, pkt)
	case pkt.TCP != nil || pkt.IP.IsFragment():
		d.processTCPDatagram(ctx, pkt)
	}
	return netem.Pass
}

// processTCPDatagram handles fragment reassembly before TCP tracking.
func (d *Device) processTCPDatagram(ctx *netem.Context, pkt *packet.Packet) {
	if pkt.IP.IsFragment() {
		// The GFW reassembles IP fragments itself, preferring the first
		// copy of overlapping fragment data (§3.2). The reassembler
		// copies everything it keeps, so the clone can be a pooled one
		// released as soon as Add returns.
		c := ctx.Pool().Clone(pkt)
		whole, err := d.frag.AddAt(c, ctx.Sim.Now())
		c.Release()
		d.countFragEvictions()
		if err != nil || whole == nil {
			return
		}
		// The whole datagram is internal to the device — it inherits
		// the completing fragment's wire identity as its parent, and the
		// reassembly decision is audited against that fragment.
		whole.Lin = packet.Lineage{Parent: pkt.Lin.ID, Origin: pkt.Lin.Origin}
		d.eventPkt("frag-complete", pkt.Tuple(), pkt, "first-wins")
		pkt = whole
	}
	if pkt.TCP == nil {
		return
	}
	d.processTCP(ctx, pkt)
}

// countFragEvictions surfaces reassembler evictions (TTL or series-cap)
// as device stats and an obs counter.
func (d *Device) countFragEvictions() {
	n := d.frag.TakeEvicted()
	if n == 0 {
		return
	}
	d.Stats["frag-evict"] += int(n)
	if d.Obs != nil {
		d.Obs.Registry().Add("gfw.frag-evict", n)
	}
}

func (d *Device) processTCP(ctx *netem.Context, pkt *packet.Packet) {
	// Active-probe traffic is the censor's own; it is steered to the
	// prober state machine, never to flow tracking.
	if d.proberPacket(ctx, pkt) {
		return
	}

	// §8 countermeasure ablations: a hardened device validates fields
	// the measured GFW does not.
	if d.cfg.ValidateTCPChecksum && !pkt.TCP.VerifyChecksum(pkt.IP.Src, pkt.IP.Dst, pkt.Payload) {
		d.eventPkt("harden-drop-checksum", pkt.Tuple(), pkt, "")
		return
	}
	if d.cfg.ValidateMD5 && pkt.TCP.HasMD5() {
		d.eventPkt("harden-drop-md5", pkt.Tuple(), pkt, "")
		return
	}

	tuple := pkt.Tuple()
	key := tuple.Canonical()

	if d.enforceBlocklist(ctx, pkt) {
		return
	}

	t := d.tcbs[key]
	tcp := pkt.TCP
	if t == nil {
		d.maybeCreateTCB(ctx, key, pkt)
		return
	}

	if t.fromClient(pkt) {
		d.fromClientSide(ctx, key, t, pkt)
	} else {
		d.fromServerSide(ctx, key, t, pkt)
	}
	_ = tcp
}

// maybeCreateTCB applies Hypothesized New Behavior 1: a TCB is created
// on SYN (both models) or on SYN/ACK (evolved model only), the latter
// with reversed orientation.
func (d *Device) maybeCreateTCB(ctx *netem.Context, key packet.FourTuple, pkt *packet.Packet) {
	tcp := pkt.TCP
	switch {
	case tcp.HasFlag(packet.FlagSYN) && !tcp.HasFlag(packet.FlagACK):
		t := &tcb{
			client: pkt.IP.Src, cport: tcp.SrcPort,
			server: pkt.IP.Dst, sport: tcp.DstPort,
			clientISN: tcp.Seq, haveISN: true,
			clientNext: tcp.Seq.Add(1), haveClient: true,
			synCount: 1,
			lastWins: d.segLastWins,
		}
		t.stream = newStream(d.cfg.ReassemblyWindow, d.matcher.NewStreamScanner())
		t.stream.rebase(t.clientNext)
		d.tcbs[key] = t
		d.eventPkt("tcb-create", key, pkt, "syn")
	case tcp.HasFlag(packet.FlagSYN) && tcp.HasFlag(packet.FlagACK) && d.cfg.Model == ModelEvolved2017:
		// The GFW assumes a SYN/ACK's source is the server (§5.2).
		t := &tcb{
			client: pkt.IP.Dst, cport: tcp.DstPort,
			server: pkt.IP.Src, sport: tcp.SrcPort,
			clientNext: tcp.Ack, haveClient: true,
			serverNext: tcp.Seq.Add(1), haveServer: true,
			synAckCount: 1,
			lastWins:    d.segLastWins,
		}
		t.stream = newStream(d.cfg.ReassemblyWindow, d.matcher.NewStreamScanner())
		t.stream.rebase(t.clientNext)
		d.tcbs[key] = t
		d.eventPkt("tcb-create-reversed", key, pkt, "synack")
	}
}

// fromClientSide handles packets traveling from the TCB's notion of the
// client toward its notion of the server.
func (d *Device) fromClientSide(ctx *netem.Context, key packet.FourTuple, t *tcb, pkt *packet.Packet) {
	tcp := pkt.TCP

	// The client's acknowledgments reveal the server-side sequence.
	if tcp.HasFlag(packet.FlagACK) && !tcp.HasFlag(packet.FlagSYN) {
		if !t.haveServer || tcp.Ack.After(t.serverNext) {
			t.serverNext = tcp.Ack
			t.haveServer = true
		}
	}

	switch {
	case tcp.HasFlag(packet.FlagRST):
		d.handleRST(key, t, pkt)
		return
	case tcp.HasFlag(packet.FlagSYN) && !tcp.HasFlag(packet.FlagACK):
		t.synCount++
		if d.cfg.Model == ModelEvolved2017 && t.synCount >= 2 {
			d.enterResync(key, t, pkt, "multiple-syn")
		}
		return
	case tcp.HasFlag(packet.FlagFIN) && d.cfg.Model == ModelKhattak2013:
		// The old model tears down on FIN; the evolved model does not
		// (§4, Prior Assumption 3).
		d.teardown(key, t, pkt, "fin")
		return
	}

	if len(pkt.Payload) == 0 {
		return
	}

	// §8 hardened mode: trust client data only once the server has
	// acknowledged it. Buffer here; commits happen when acknowledgments
	// flow back (fromServerSide).
	if d.cfg.TrustDataAfterServerACK {
		if len(t.pending) < maxPendingSegs {
			t.pending = append(t.pending, pendingSeg{seq: tcp.Seq, pkt: pkt.Clone()})
		}
		return
	}

	d.ingestClientData(ctx, key, t, pkt)
}

// ingestClientData runs resynchronization, reassembly and detection on
// one client data segment.
func (d *Device) ingestClientData(ctx *netem.Context, key packet.FourTuple, t *tcb, pkt *packet.Packet) {
	tcp := pkt.TCP

	// Hypothesized New Behavior 2: in the resynchronization state the
	// TCB adopts the sequence number of the next client data packet.
	if t.state == stResync {
		t.clientNext = tcp.Seq
		t.stream.rebase(tcp.Seq)
		t.state = stTracking
		d.eventPkt("resync-applied", key, pkt, "client-data")
	}

	// A type-1 device scans packets individually, with no reassembly:
	// it only examines the segment sitting at the expected in-order
	// position. Data that shadows already-consumed bytes (the prefill
	// evasion) or arrives out of order is never scanned by it.
	wasInOrder := t.stream.started && tcp.Seq == t.stream.nextSeq()
	matches := t.stream.insert(tcp.Seq, pkt.Payload, t.lastWins)
	t.clientNext = t.stream.nextSeq()

	d.inspect(ctx, key, t, pkt, wasInOrder, matches)
}

// commitAcknowledged releases buffered client data covered by a server
// acknowledgment into the detection pipeline (TrustDataAfterServerACK).
func (d *Device) commitAcknowledged(ctx *netem.Context, key packet.FourTuple, t *tcb, ack packet.Seq) {
	if len(t.pending) == 0 {
		return
	}
	keep := t.pending[:0]
	for _, ps := range t.pending {
		if ps.pkt.EndSeq().AtOrBefore(ack) {
			d.ingestClientData(ctx, key, t, ps.pkt)
		} else {
			keep = append(keep, ps)
		}
	}
	t.pending = keep
}

// fromServerSide handles packets from the TCB's notion of the server.
func (d *Device) fromServerSide(ctx *netem.Context, key packet.FourTuple, t *tcb, pkt *packet.Packet) {
	tcp := pkt.TCP

	switch {
	case tcp.HasFlag(packet.FlagRST):
		d.handleRST(key, t, pkt)
		return
	case tcp.HasFlag(packet.FlagSYN) && tcp.HasFlag(packet.FlagACK):
		t.synAckCount++
		if d.cfg.Model == ModelEvolved2017 {
			if t.state == stResync {
				// The SYN/ACK resynchronizes the TCB (§4).
				t.clientNext = tcp.Ack
				t.serverNext = tcp.Seq.Add(1)
				t.haveServer = true
				t.stream.rebase(t.clientNext)
				t.state = stTracking
				d.eventPkt("resync-applied", key, pkt, "synack")
				return
			}
			if t.synAckCount >= 2 {
				d.enterResync(key, t, pkt, "multiple-synack")
				return
			}
			if t.haveISN && tcp.Ack != t.clientISN.Add(1) {
				d.enterResync(key, t, pkt, "synack-ack-mismatch")
				return
			}
		}
		// First consistent SYN/ACK: adopt the server's numbering. Only
		// the evolved model also re-confirms the client-side sequence
		// from the SYN/ACK's ack (§5.2) — the old model keeps whatever
		// the first SYN said, which is precisely why the 2013 fake-SYN
		// evasion worked against it.
		t.serverNext = tcp.Seq.Add(1)
		t.haveServer = true
		if d.cfg.Model == ModelEvolved2017 {
			t.clientNext = tcp.Ack
			if !t.stream.started || t.stream.base != tcp.Ack {
				t.stream.rebase(tcp.Ack)
			}
		}
		return
	case tcp.HasFlag(packet.FlagFIN) && d.cfg.Model == ModelKhattak2013:
		d.teardown(key, t, pkt, "fin-server")
		return
	}

	if n := len(pkt.Payload); n > 0 {
		end := tcp.Seq.Add(n)
		if !t.haveServer || end.After(t.serverNext) {
			t.serverNext = end
			t.haveServer = true
		}
		// Response censorship (where still deployed, §3.3): scan the
		// server→client stream too — this is what catches sensitive
		// keywords copied into HTTP 301 Location headers.
		if d.cfg.ResponseCensorship && !t.immune && !t.detected {
			if t.respStream == nil {
				t.respStream = newStream(d.cfg.ReassemblyWindow, d.matcher.NewStreamScanner())
				t.respStream.rebase(tcp.Seq)
			}
			if matches := t.respStream.insert(tcp.Seq, pkt.Payload, false); len(matches) > 0 {
				t.detected = true
				d.eventPkt("detect-response", key, pkt, "")
				d.injectResets(ctx, t, d.cfg.Type1, d.cfg.Type2, pkt)
				if d.cfg.Type2 {
					d.blockPair(ctx, t.client, t.server, pkt)
				}
			}
		}
	}

	// Hardened mode: server acknowledgments release buffered client
	// data into the detection pipeline.
	if d.cfg.TrustDataAfterServerACK && tcp.HasFlag(packet.FlagACK) {
		d.commitAcknowledged(ctx, key, t, tcp.Ack)
	}
}

// handleRST applies Hypothesized New Behavior 3.
func (d *Device) handleRST(key packet.FourTuple, t *tcb, pkt *packet.Packet) {
	if d.cfg.Model == ModelEvolved2017 && d.rstResyncs {
		d.enterResync(key, t, pkt, "rst")
		return
	}
	d.teardown(key, t, pkt, "rst")
}

func (d *Device) enterResync(key packet.FourTuple, t *tcb, cause *packet.Packet, why string) {
	if t.state != stResync {
		t.state = stResync
		d.eventPkt("resync", key, cause, why)
	}
}

func (d *Device) teardown(key packet.FourTuple, t *tcb, cause *packet.Packet, why string) {
	delete(d.tcbs, key)
	d.eventPkt("teardown", key, cause, why)
}

// TCBState reports the shadow state for a connection, for probing tools
// and tests.
func (d *Device) TCBState(tuple packet.FourTuple) (string, bool) {
	t, ok := d.tcbs[tuple.Canonical()]
	if !ok {
		return "", false
	}
	return t.state.String(), true
}

// TCBOrientation reports who the device believes the client is.
func (d *Device) TCBOrientation(tuple packet.FourTuple) (client packet.Addr, ok bool) {
	t, found := d.tcbs[tuple.Canonical()]
	if !found {
		return packet.Addr{}, false
	}
	return t.client, true
}

// TCBCount returns the number of live shadow connections.
func (d *Device) TCBCount() int { return len(d.tcbs) }
