package gfw

import (
	"testing"

	"intango/internal/packet"
)

// TestKeywordDetectedAcrossSeqWrap forces the client's initial sequence
// number to sit 8 bytes below 2^32, so the censored keyword in the
// request straddles the 32-bit wraparound inside the device's stream
// reassembler. The TCB's clientNext/serverNext tracking, the stream's
// base/offset arithmetic, and the injected resets' sequence numbers all
// cross the boundary; detection must still fire exactly once.
func TestKeywordDetectedAcrossSeqWrap(t *testing.T) {
	r := newRig(t, evolvedCfg())
	r.cli.ForceISS = func() packet.Seq { return packet.Seq(0xFFFFFFF8) }

	c := r.get(t, "/?q="+keyword)
	if !c.GotRST {
		t.Fatalf("keyword across seq wrap not reset; received %q", c.Received())
	}
	if got := r.countEvents("detect"); got != 1 {
		t.Fatalf("detect events across wrap = %d, want 1", got)
	}
	if !r.dev.PairBlocked(cliAddr, srvAddr, r.sim.Now()) {
		t.Fatal("pair not blocklisted after wrap-straddling detection")
	}
}

// TestTCBTracksServerAcrossSeqWrap wraps the server side instead: the
// SYN/ACK's sequence is just below 2^32, so serverNext and the type-2
// reset volley (serverSeq + {0, 1460, 4380}) wrap. The volley must
// still tear the client connection down.
func TestTCBTracksServerAcrossSeqWrap(t *testing.T) {
	r := newRig(t, evolvedCfg())
	r.srv.ForceISS = func() packet.Seq { return packet.Seq(0xFFFFFFFE) }

	c := r.get(t, "/?q="+keyword)
	if !c.GotRST {
		t.Fatalf("detection with wrapped server sequence not reset; received %q", c.Received())
	}
	if got := r.countEvents("inject-type2"); got == 0 {
		t.Fatal("no type-2 volley despite detection")
	}
}
