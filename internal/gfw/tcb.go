package gfw

import (
	"intango/internal/dpi"
	"intango/internal/packet"
)

// tcbState is the GFW's shadow-connection state.
type tcbState int

const (
	// stTracking: the TCB is synchronized and reassembling.
	stTracking tcbState = iota
	// stResync: the re-synchronization state of Hypothesized New
	// Behavior 2 — the TCB adopts the sequence numbering of the next
	// client data packet or server SYN/ACK.
	stResync
)

func (s tcbState) String() string {
	if s == stResync {
		return "RESYNC"
	}
	return "TRACKING"
}

// tcb is one shadow connection. Orientation (who the GFW believes is
// the client) is fixed at creation — by the SYN's source, or, for a TCB
// created by a SYN/ACK, by the SYN/ACK's destination. TCB Reversal
// (§5.2) exploits exactly this.
type tcb struct {
	client, server packet.Addr
	cport, sport   uint16

	state tcbState

	clientISN  packet.Seq
	haveISN    bool
	clientNext packet.Seq // next expected client-side byte
	haveClient bool

	serverNext packet.Seq // best estimate of the server-side sequence
	haveServer bool

	synCount    int
	synAckCount int

	stream *stream

	classified dpi.Protocol
	torHandled bool

	// immune: the detection engine sampled an overload miss for this
	// flow; it will not be re-examined (§3.4's no-strategy successes).
	immune   bool
	detected bool

	// lastWins is the device's sampled segment-overlap behaviour.
	lastWins bool

	// pending buffers client data awaiting a server acknowledgment
	// when the §8 TrustDataAfterServerACK hardening is on.
	pending []pendingSeg

	// respStream reassembles server→client data when response
	// censorship is enabled (lazy).
	respStream *stream
}

// pendingSeg is one buffered client segment (hardened mode).
type pendingSeg struct {
	seq packet.Seq
	pkt *packet.Packet
}

// maxPendingSegs bounds the hardened-mode buffer; the paper's point is
// precisely that this state is expensive for the censor.
const maxPendingSegs = 64

// fromClient reports whether pkt travels from the TCB's notion of the
// client toward its notion of the server.
func (t *tcb) fromClient(pkt *packet.Packet) bool {
	return pkt.IP.Src == t.client && pkt.TCP.SrcPort == t.cport
}

// stream reassembles the client→server byte stream for the detection
// engine. Bytes that have been scanned are immutable (the DPI engine
// consumed them); unscanned out-of-order bytes are resolved by the
// device's overlap policy.
type stream struct {
	base    packet.Seq // sequence number of buf[0]
	started bool
	buf     []byte
	cover   []bool
	scanned int // contiguous prefix already fed to the scanner
	window  int
	scanner *dpi.StreamScanner
}

func newStream(window int, scanner *dpi.StreamScanner) *stream {
	return &stream{window: window, scanner: scanner}
}

// rebase resets the stream to a new base sequence (TCB creation or
// resynchronization). Already-scanned bytes are discarded; the scanner
// keeps its automaton state so keywords spanning a resync boundary are
// still only found if genuinely contiguous — matching a DPI engine that
// processes the stream as it goes.
func (s *stream) rebase(seq packet.Seq) {
	s.base = seq
	s.started = true
	s.buf = s.buf[:0]
	s.cover = s.cover[:0]
	s.scanned = 0
	s.scanner.Reset()
}

// accepts reports whether a segment at seq is within the reassembly
// window relative to the current expectations.
func (s *stream) accepts(seq packet.Seq, n int) bool {
	if !s.started {
		return false
	}
	d := seq.Diff(s.base)
	return d >= 0 && int(d)+n <= s.window
}

// insert places data at seq, honoring immutability of scanned bytes and
// the overlap policy for the rest, then returns any newly contiguous
// bytes as keyword matches from the detection scanner.
func (s *stream) insert(seq packet.Seq, data []byte, lastWins bool) []dpi.Match {
	if len(data) == 0 || !s.accepts(seq, len(data)) {
		return nil
	}
	off := int(seq.Diff(s.base))
	end := off + len(data)
	if end > len(s.buf) {
		// Grow both buffers to end in one step (append-zero loops are
		// quadratic against large out-of-order jumps within the window).
		s.buf = append(s.buf, make([]byte, end-len(s.buf))...)
		s.cover = append(s.cover, make([]bool, end-len(s.cover))...)
	}
	for i, b := range data {
		at := off + i
		if at < s.scanned {
			continue // already consumed by the engine: first copy wins
		}
		if s.cover[at] && !lastWins {
			continue
		}
		s.buf[at] = b
		s.cover[at] = true
	}
	// Feed any newly contiguous prefix to the scanner.
	newEnd := s.scanned
	for newEnd < len(s.cover) && s.cover[newEnd] {
		newEnd++
	}
	if newEnd == s.scanned {
		return nil
	}
	chunk := s.buf[s.scanned:newEnd]
	s.scanned = newEnd
	return s.scanner.Feed(chunk)
}

// contiguous returns the scanned prefix of the stream (used by the
// protocol classifier).
func (s *stream) contiguous() []byte { return s.buf[:s.scanned] }

// nextSeq returns the sequence number just past the scanned prefix.
func (s *stream) nextSeq() packet.Seq { return s.base.Add(s.scanned) }
