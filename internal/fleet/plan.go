// Package fleet lifts a campaign past one process: a shard coordinator
// that splits the (VP × server × strategy × trial-range) job cube into
// deterministic contiguous shards, runs them across worker goroutines,
// journals each shard's progress as incremental checkpoint frames, and
// folds the shards back through the commutative obs/tally merges — so a
// campaign killed mid-run resumes from its checkpoint directory with
// merged results bit-identical to an uninterrupted serial run.
//
// The fleet is observable as one object while it runs: /shards (the
// per-shard state machine), aggregated /progress, /metrics (Prometheus
// exposition with a shard label), /timeseries (per-shard curves
// stitched across kills), and /manifest (the provenance document tying
// every artifact to the exact specs that produced it). Serving requires
// a registered server — import internal/experiment/progresshttp.
package fleet

import (
	"fmt"

	"intango/internal/experiment"
)

// ShardPlan is one shard's deterministic slice of the campaign job
// cube: jobs [JobStart, JobEnd) of the canonical enumeration.
type ShardPlan struct {
	ID       int `json:"id"`
	JobStart int `json:"job_start"`
	JobEnd   int `json:"job_end"`
}

// Jobs returns how many jobs the shard covers.
func (p ShardPlan) Jobs() int { return p.JobEnd - p.JobStart }

// Plan is the full shard decomposition of one campaign — a pure
// function of (campaign, seed, scale, shard count), so a resuming
// process re-derives the identical plan and checkpoint cursors stay
// meaningful.
type Plan struct {
	Campaign  string           `json:"campaign"`
	Seed      int64            `json:"seed"`
	Scale     experiment.Scale `json:"scale"`
	TotalJobs int              `json:"total_jobs"`
	Shards    []ShardPlan      `json:"shards"`
}

// PlanShards splits total jobs into n contiguous shards, spreading the
// remainder over the leading shards so sizes differ by at most one. n
// is clamped to [1, total] (a shard must cover at least one job when
// any exist).
func PlanShards(total, n int) []ShardPlan {
	if n < 1 {
		n = 1
	}
	if n > total {
		n = max(total, 1)
	}
	out := make([]ShardPlan, n)
	base, rem := 0, 0
	if n > 0 {
		base, rem = total/n, total%n
	}
	start := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = ShardPlan{ID: i, JobStart: start, JobEnd: start + size}
		start += size
	}
	if start != total {
		panic(fmt.Sprintf("fleet: shard plan covers %d of %d jobs", start, total))
	}
	return out
}
