package fleet

import (
	"fmt"
	"io"
	"strings"

	"intango/internal/experiment"
	"intango/internal/obs"
)

// ShardStatus is one shard's live row in the /shards view: where it is
// in the pending → running → checkpointed → done (or failed) state
// machine, its trial cursor, and how stale its last checkpoint frame
// is.
type ShardStatus struct {
	ID       int    `json:"id"`
	State    string `json:"state"`
	JobStart int    `json:"job_start"`
	JobEnd   int    `json:"job_end"`
	Cursor   int    `json:"cursor"`
	Done     int64  `json:"done"`
	Success  int64  `json:"success"`
	Frames   int    `json:"frames"`
	// LastFrameAgeSec is seconds since the shard last journaled a
	// frame; absent until the first frame.
	LastFrameAgeSec float64 `json:"last_frame_age_sec,omitempty"`
	// Resumed marks a shard restored from a checkpoint frame.
	Resumed bool `json:"resumed,omitempty"`
	// Error carries the failure reason for failed shards.
	Error string `json:"error,omitempty"`
}

// ShardsView is the /shards payload: the fleet state machine plus the
// campaign-level rollup counts.
type ShardsView struct {
	Campaign   string        `json:"campaign"`
	Total      int           `json:"total_jobs"`
	Done       int64         `json:"done"`
	ShardsDone int           `json:"shards_done"`
	Shards     []ShardStatus `json:"shards"`
}

// SeriesView is the /timeseries payload: the fleet-level sampled curve
// plus each shard's checkpoint-stitched curve, keyed by shard ID.
type SeriesView struct {
	Fleet  obs.TimeSeriesSnapshot            `json:"fleet"`
	Shards map[string]obs.TimeSeriesSnapshot `json:"shards"`
}

// Feeds bundles the live views a fleet server exposes. All closures
// are safe to call concurrently with the running campaign; they read
// atomics and mutex-guarded shard fields, never the trial hot path.
type Feeds struct {
	Shards   func() ShardsView
	Progress func() experiment.ProgressSnapshot
	Metrics  func() string
	Series   func() SeriesView
	Manifest func() Manifest
}

// fleetServer, when registered, serves the fleet plane over HTTP. Like
// the progress server it lives behind a hook so this package never
// imports net/http (see experiment.RegisterProgressServer for why).
var fleetServer func(feeds Feeds, diag io.Writer, addr string) (stop func(), bound string)

// RegisterServer installs the HTTP serving implementation used when
// Options.HTTPAddr is set. The progresshttp package registers itself
// from init; programs that want the endpoints import it.
func RegisterServer(f func(feeds Feeds, diag io.Writer, addr string) (stop func(), bound string)) {
	fleetServer = f
}

// metricsText renders the fleet /metrics view: the campaign-level
// progress families plus fleet rollups and per-shard families carrying
// a shard label.
func metricsText(prog experiment.ProgressSnapshot, sv ShardsView) string {
	var b strings.Builder
	b.WriteString(prog.MetricsText())
	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	gauge("fleet_shards", "Shards in the campaign plan.")
	fmt.Fprintf(&b, "fleet_shards %d\n", len(sv.Shards))
	gauge("fleet_shards_done", "Shards that completed their job range.")
	fmt.Fprintf(&b, "fleet_shards_done %d\n", sv.ShardsDone)
	gauge("shard_done", "Trials completed per shard.")
	for _, s := range sv.Shards {
		fmt.Fprintf(&b, "shard_done{shard=\"%d\"} %d\n", s.ID, s.Done)
	}
	gauge("shard_success", "Successful trials per shard.")
	for _, s := range sv.Shards {
		fmt.Fprintf(&b, "shard_success{shard=\"%d\"} %d\n", s.ID, s.Success)
	}
	gauge("shard_cursor", "Absolute next-job cursor per shard.")
	for _, s := range sv.Shards {
		fmt.Fprintf(&b, "shard_cursor{shard=\"%d\"} %d\n", s.ID, s.Cursor)
	}
	gauge("shard_frames", "Checkpoint frames journaled per shard.")
	for _, s := range sv.Shards {
		fmt.Fprintf(&b, "shard_frames{shard=\"%d\"} %d\n", s.ID, s.Frames)
	}
	gauge("shard_last_frame_age_seconds", "Seconds since the shard last journaled a frame.")
	for _, s := range sv.Shards {
		if s.Frames > 0 {
			fmt.Fprintf(&b, "shard_last_frame_age_seconds{shard=\"%d\"} %g\n", s.ID, s.LastFrameAgeSec)
		}
	}
	gauge("shard_state", "Shard state machine (1 = current state).")
	for _, s := range sv.Shards {
		fmt.Fprintf(&b, "shard_state{shard=\"%d\",state=\"%s\"} 1\n", s.ID, obs.PromLabel(s.State))
	}
	return b.String()
}
