package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"intango/internal/experiment"
	"intango/internal/obs"
)

// FrameVersion is the checkpoint frame schema version. A frame with a
// different version is quarantined on load, never guessed at.
const FrameVersion = 1

// FailureRef identifies one retained failing trial — the checkpoint
// frame's weight-free stand-in for a full flight-recorder trace. Refs
// sort by the same total trial order the sink uses, so the min-N set
// that survives a kill/resume is identical to the uninterrupted one.
type FailureRef struct {
	Strategy  string `json:"strategy"`
	VP        string `json:"vp"`
	Server    string `json:"server"`
	Sensitive bool   `json:"sensitive,omitempty"`
	Trial     int    `json:"trial"`
	Outcome   string `json:"outcome"`
}

// Frame is one cumulative checkpoint of a shard: everything needed to
// resume the shard from Cursor with merged results bit-identical to an
// uninterrupted run. Frames are journaled one-per-line (JSONL); each
// supersedes all earlier frames for the shard, so a loader only ever
// needs the last valid line.
type Frame struct {
	Version  int    `json:"version"`
	Campaign string `json:"campaign"`
	Shard    int    `json:"shard"`
	// Cursor is the absolute index of the next job to run; jobs
	// [JobStart, Cursor) are folded into this frame.
	Cursor int  `json:"cursor"`
	Final  bool `json:"final,omitempty"`
	// Tallies is the shard's full tally vector (cube layout).
	Tallies []experiment.Tally `json:"tallies"`
	// Obs is the shard registry snapshot — counters, gauges, and
	// histograms, all of which fold through the commutative merge.
	Obs obs.Snapshot `json:"obs"`
	// Failures is the shard's retained min-N failing-trial set as refs.
	Failures []FailureRef `json:"failures,omitempty"`
	// Series is the shard's progress curve so far. Every frame carries
	// a terminal sample at its own cut point, so a resumed /timeseries
	// has no gap at the kill.
	Series obs.TimeSeriesSnapshot `json:"series"`
}

// sortRefs orders refs by the sink's total trial order
// (Strategy, VP, Server, Sensitive, Trial).
func sortRefs(refs []FailureRef) {
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.Strategy != b.Strategy {
			return a.Strategy < b.Strategy
		}
		if a.VP != b.VP {
			return a.VP < b.VP
		}
		if a.Server != b.Server {
			return a.Server < b.Server
		}
		if a.Sensitive != b.Sensitive {
			return !a.Sensitive
		}
		return a.Trial < b.Trial
	})
}

// refsFromTraces projects retained traces down to refs.
func refsFromTraces(ts []experiment.TrialTrace) []FailureRef {
	refs := make([]FailureRef, len(ts))
	for i, t := range ts {
		refs[i] = FailureRef{
			Strategy: t.Strategy, VP: t.VP, Server: t.Server,
			Sensitive: t.Sensitive, Trial: t.Trial,
			Outcome: t.Outcome.String(),
		}
	}
	return refs
}

// mergeRefs unions two ref sets, sorts by the total trial order, and
// keeps the smallest max entries — the same min-N retention rule the
// sink applies to traces, so restored-then-fresh refs converge to the
// uninterrupted set.
func mergeRefs(a, b []FailureRef, max int) []FailureRef {
	out := append(append([]FailureRef(nil), a...), b...)
	sortRefs(out)
	// A trial can appear in both the restored set and (never, in
	// practice, since resume re-runs no trial — but cheap to guard) the
	// fresh set; drop adjacent duplicates after sorting.
	dedup := out[:0]
	for i, r := range out {
		if i == 0 || r != out[i-1] {
			dedup = append(dedup, r)
		}
	}
	out = dedup
	if max > 0 && len(out) > max {
		out = out[:max:max]
	}
	return out
}

// journalPath names shard id's checkpoint journal inside dir.
func journalPath(dir string, id int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.ckpt.jsonl", id))
}

// journalLoad replays shard id's journal and returns the last valid
// frame (nil when none), how many valid frames it holds, and how many
// lines were quarantined — malformed JSON, wrong version or campaign or
// shard, or a cursor outside [start, end]. Truncated tails (a kill
// mid-write) land in the quarantined count; the preceding complete
// frame still wins. A missing journal is simply (nil, 0, 0).
func journalLoad(dir, campaign string, id, start, end int) (last *Frame, frames, quarantined int, err error) {
	data, rerr := os.ReadFile(journalPath(dir, id))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, rerr
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var f Frame
		if jerr := json.Unmarshal(line, &f); jerr != nil {
			quarantined++
			continue
		}
		if f.Version != FrameVersion || f.Campaign != campaign || f.Shard != id ||
			f.Cursor < start || f.Cursor > end {
			quarantined++
			continue
		}
		frames++
		last = &f
	}
	if serr := sc.Err(); serr != nil {
		return nil, 0, 0, serr
	}
	return last, frames, quarantined, nil
}

// quarantineJournal moves a journal that contained invalid lines aside
// (shard-NNNN.ckpt.jsonl.quarantined) so the shard re-journals cleanly
// from its last good frame; the damaged evidence is kept for autopsy,
// never silently deleted.
func quarantineJournal(dir string, id int) error {
	src := journalPath(dir, id)
	dst := src + ".quarantined"
	_ = os.Remove(dst)
	return os.Rename(src, dst)
}

// journalWriter appends frames to a shard journal, one JSON line per
// frame, fsync-free (the checkpoint cadence is the durability unit; a
// torn tail line is exactly what the loader quarantines).
type journalWriter struct {
	f *os.File
}

// openJournal opens shard id's journal for appending, creating it (and
// dir) as needed. seed, when non-nil, re-journals the last good frame
// first — the recovery step after quarantining a damaged journal.
func openJournal(dir string, id int, seed *Frame) (*journalWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(journalPath(dir, id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &journalWriter{f: f}
	if seed != nil {
		if err := w.append(*seed); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

func (w *journalWriter) append(f Frame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.f.Write(b)
	return err
}

func (w *journalWriter) close() error {
	if w == nil || w.f == nil {
		return nil
	}
	return w.f.Close()
}
