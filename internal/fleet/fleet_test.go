package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"intango/internal/experiment"
)

// goldenScale is the kill/resume campaign shape: small enough that the
// full cube runs in a couple of seconds, large enough that every shard
// journals several frames before finishing.
func goldenScale() experiment.Scale { return experiment.Scale{VPs: 2, Servers: 2, Trials: 1} }

const goldenSeed = 42

// serialDoc produces the deterministic result artifact from a plain
// single-worker RunTable1Parallel — the independent reference every
// fleet execution history must match byte for byte.
func serialDoc(t *testing.T) []byte {
	t.Helper()
	sc := goldenScale()
	r := experiment.NewRunner(goldenSeed)
	r.Workers = 1
	r.Obs = experiment.NewObsSink()
	rows := experiment.RunTable1Parallel(r, sc)
	var tallies []experiment.Tally
	for _, row := range rows {
		tallies = append(tallies, row.Sensitive, row.Clean)
	}
	res := &Result{
		Plan:     Plan{Campaign: "table1", Seed: goldenSeed, Scale: sc},
		Rows:     rows,
		Tallies:  tallies,
		Snapshot: r.Obs.Snapshot(),
		Trials:   r.Obs.Trials(),
		Failures: refsFromTraces(r.Obs.Failures()),
	}
	var b bytes.Buffer
	if err := res.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// fleetDoc runs a fleet campaign and serializes its deterministic
// artifact.
func fleetDoc(t *testing.T, opts Options) ([]byte, *Result) {
	t.Helper()
	res := runFleet(t, opts)
	var b bytes.Buffer
	if err := res.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), res
}

func runFleet(t *testing.T, opts Options) *Result {
	t.Helper()
	c, err := New(experiment.NewRunner(goldenSeed), goldenScale(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// readGolden loads testdata/fleet.golden. Setting UPDATE_FLEET_GOLDEN
// rewrites it from the serial reference first (a deliberate act after
// a substrate change, the same discipline as the table goldens).
func readGolden(t *testing.T) []byte {
	t.Helper()
	path := filepath.Join("testdata", "fleet.golden")
	if os.Getenv("UPDATE_FLEET_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, serialDoc(t), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func TestPlanShards(t *testing.T) {
	for _, tc := range []struct {
		total, n int
		sizes    []int
	}{
		{10, 3, []int{4, 3, 3}},
		{6, 3, []int{2, 2, 2}},
		{3, 8, []int{1, 1, 1}}, // clamped to total
		{5, 1, []int{5}},
		{7, 0, []int{7}}, // clamped up to 1
		{0, 4, []int{0}},
	} {
		plan := PlanShards(tc.total, tc.n)
		if len(plan) != len(tc.sizes) {
			t.Fatalf("PlanShards(%d,%d) = %d shards, want %d", tc.total, tc.n, len(plan), len(tc.sizes))
		}
		next := 0
		for i, p := range plan {
			if p.ID != i || p.JobStart != next || p.Jobs() != tc.sizes[i] {
				t.Fatalf("PlanShards(%d,%d)[%d] = %+v, want start %d size %d", tc.total, tc.n, i, p, next, tc.sizes[i])
			}
			next = p.JobEnd
		}
		if next != tc.total {
			t.Fatalf("PlanShards(%d,%d) covers %d jobs", tc.total, tc.n, next)
		}
	}
}

// TestFleetMatchesSerialGolden: the golden is the serial reference, and
// an uninterrupted sharded fleet — any shard/proc split — reproduces it
// byte for byte, checkpointing included.
func TestFleetMatchesSerialGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns")
	}
	want := readGolden(t)
	if got := serialDoc(t); !bytes.Equal(got, want) {
		t.Fatalf("serial reference drifted from golden:\ngot:\n%s", got)
	}
	doc, res := fleetDoc(t, Options{Shards: 4, Procs: 3, Dir: t.TempDir(), CheckpointEvery: 5})
	if !bytes.Equal(doc, want) {
		t.Errorf("uninterrupted fleet diverged from serial golden:\ngot:\n%s\nwant:\n%s", doc, want)
	}
	if res.Resume != (experiment.ResumeHealth{}) {
		t.Errorf("fresh fleet reports resume state: %+v", res.Resume)
	}
	if len(res.Shards) != 4 {
		t.Fatalf("fleet ran %d shards, want 4", len(res.Shards))
	}
	for _, s := range res.Shards {
		if s.State != StateDone || s.Cursor != s.JobEnd || s.Frames == 0 {
			t.Errorf("shard %d finished in state %+v", s.ID, s)
		}
	}
}

// killFleet starts a checkpointing fleet and stops it via the OnFrame
// hook after `after` journaled frames — the in-process stand-in for
// kill -9 at a frame boundary. It returns only after Run has unwound.
func killFleet(t *testing.T, dir string, after int) {
	t.Helper()
	c, err := New(experiment.NewRunner(goldenSeed), goldenScale(), Options{
		Shards: 4, Procs: 2, Dir: dir, CheckpointEvery: 5,
		OnFrame: func(_, total int) error {
			if total >= after {
				return errors.New("kill drill")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("killed fleet returned %v, want ErrStopped", err)
	}
}

// TestFleetKillResumeBitIdentical is the tentpole acceptance test: a
// campaign killed mid-run and resumed from its checkpoint directory
// produces merged rows, tallies, obs snapshot, and failure refs
// byte-identical to the uninterrupted serial golden.
func TestFleetKillResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns")
	}
	want := readGolden(t)
	dir := t.TempDir()
	killFleet(t, dir, 3)

	// The journals hold partial frames; a fresh coordinator over the
	// same dir must skip/restore and finish.
	doc, res := fleetDoc(t, Options{Shards: 4, Procs: 2, Dir: dir, CheckpointEvery: 5})
	if !bytes.Equal(doc, want) {
		t.Errorf("kill+resume diverged from serial golden:\ngot:\n%s\nwant:\n%s", doc, want)
	}
	if res.Resume.ResumedShards+res.Resume.CompletedShards == 0 {
		t.Error("resumed fleet restored nothing — the kill drill journaled no frames?")
	}
	if res.Resume.ReplayedTrials < 5 {
		t.Errorf("resumed fleet replayed %d trials, want >= one checkpoint interval", res.Resume.ReplayedTrials)
	}
	resumed := 0
	for _, s := range res.Shards {
		if s.Resumed {
			resumed++
		}
	}
	if resumed == 0 {
		t.Error("no shard carries the Resumed mark")
	}
}

// TestFleetDoubleKillResume survives two successive kills at different
// frame counts before completing — checkpoint cursors stay exact across
// repeated restore/re-journal cycles.
func TestFleetDoubleKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns")
	}
	want := readGolden(t)
	dir := t.TempDir()
	killFleet(t, dir, 2)
	killFleet(t, dir, 3)
	doc, _ := fleetDoc(t, Options{Shards: 4, Procs: 2, Dir: dir, CheckpointEvery: 5})
	if !bytes.Equal(doc, want) {
		t.Errorf("double kill+resume diverged from serial golden:\ngot:\n%s", doc)
	}
}

// TestFleetQuarantineDamagedJournal: malformed lines — torn tails,
// garbage, frames with the wrong version — are quarantined, the shard
// resumes from its last good frame (or from scratch), and the merged
// result still matches the golden byte for byte.
func TestFleetQuarantineDamagedJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns")
	}
	want := readGolden(t)
	dir := t.TempDir()
	killFleet(t, dir, 3)

	journals, err := filepath.Glob(filepath.Join(dir, "shard-*.ckpt.jsonl"))
	if err != nil || len(journals) == 0 {
		t.Fatalf("no journals after kill drill (err=%v)", err)
	}
	// Damage every journal three ways: a garbage line, a structurally
	// valid frame with an unknown version, and a torn tail (no newline,
	// truncated JSON — the shape a real SIGKILL mid-write leaves).
	for _, j := range journals {
		f, err := os.OpenFile(j, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString("{this is not json\n")
		f.WriteString(`{"version":99,"campaign":"table1","shard":0,"cursor":0,"tallies":[],"obs":{"counters":{}},"series":{"points":[]}}` + "\n")
		f.WriteString(`{"version":1,"campaign":"table1","shard":`)
		f.Close()
	}

	doc, res := fleetDoc(t, Options{Shards: 4, Procs: 2, Dir: dir, CheckpointEvery: 5})
	if !bytes.Equal(doc, want) {
		t.Errorf("quarantined resume diverged from serial golden:\ngot:\n%s", doc)
	}
	if res.Resume.QuarantinedFrames < 3*len(journals) {
		t.Errorf("quarantined %d frames, want >= %d", res.Resume.QuarantinedFrames, 3*len(journals))
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*.quarantined"))
	if len(quarantined) != len(journals) {
		t.Errorf("%d quarantined journals retained, want %d", len(quarantined), len(journals))
	}
}

// TestFleetWholeJournalGarbage: a journal with no salvageable frame at
// all re-runs the shard from scratch — no crash, same bytes.
func TestFleetWholeJournalGarbage(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns")
	}
	want := readGolden(t)
	dir := t.TempDir()
	killFleet(t, dir, 3)
	journals, _ := filepath.Glob(filepath.Join(dir, "shard-*.ckpt.jsonl"))
	if len(journals) == 0 {
		t.Fatal("no journals after kill drill")
	}
	if err := os.WriteFile(journals[0], []byte("total garbage\nmore garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc, res := fleetDoc(t, Options{Shards: 4, Procs: 2, Dir: dir, CheckpointEvery: 5})
	if !bytes.Equal(doc, want) {
		t.Errorf("garbage-journal resume diverged from serial golden:\ngot:\n%s", doc)
	}
	if res.Resume.QuarantinedFrames == 0 {
		t.Error("no quarantined frames reported")
	}
}

// TestFleetManifestMismatch: a checkpoint dir from a different campaign
// (here: another seed) is refused, not silently blended.
func TestFleetManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := New(experiment.NewRunner(goldenSeed), goldenScale(), Options{Shards: 2, Dir: dir}); err != nil {
		t.Fatal(err)
	}
	_, err := New(experiment.NewRunner(goldenSeed+1), goldenScale(), Options{Shards: 2, Dir: dir})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("mismatched manifest accepted (err=%v)", err)
	}
	// Same inputs must still be welcome.
	if _, err := New(experiment.NewRunner(goldenSeed), goldenScale(), Options{Shards: 2, Dir: dir}); err != nil {
		t.Fatalf("matching manifest refused: %v", err)
	}
}

// TestFrameSeriesTerminalSample: every checkpoint frame's series ends
// with a sample cut at that frame — the invariant that keeps resumed
// /timeseries curves gap-free at the kill point — and a resumed shard's
// curve continues monotonically from the restored points.
func TestFrameSeriesTerminalSample(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns")
	}
	dir := t.TempDir()
	killFleet(t, dir, 3)
	journals, _ := filepath.Glob(filepath.Join(dir, "shard-*.ckpt.jsonl"))
	if len(journals) == 0 {
		t.Fatal("no journals after kill drill")
	}
	checked := 0
	for _, j := range journals {
		id := 0
		if _, err := fmt.Sscanf(filepath.Base(j), "shard-%04d.ckpt.jsonl", &id); err != nil {
			t.Fatal(err)
		}
		last, frames, quarantined, err := journalLoad(dir, "table1", id, 0, 1<<30)
		if err != nil || quarantined != 0 {
			t.Fatalf("journal %s: err=%v quarantined=%d", j, err, quarantined)
		}
		if frames == 0 {
			continue
		}
		pts := last.Series.Points
		if len(pts) < frames {
			t.Errorf("shard %d: %d frames but only %d series points — frames missing their terminal sample", id, frames, len(pts))
		}
		lastPt := last.Series.Last()
		if got, want := lastPt.Values["done"], float64(last.Cursor-shardJobStart(dir, id)); got != want {
			// done is cumulative per shard; the terminal sample must sit
			// exactly at the frame's cut.
			t.Errorf("shard %d: terminal sample done=%v, frame covers %v trials", id, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no journaled frames to check")
	}

	// Resume and re-kill immediately: the next frame's series must
	// extend the restored curve (timestamps strictly non-decreasing).
	killFleet(t, dir, 1)
	for _, j := range journals {
		id := 0
		fmt.Sscanf(filepath.Base(j), "shard-%04d.ckpt.jsonl", &id)
		last, frames, _, err := journalLoad(dir, "table1", id, 0, 1<<30)
		if err != nil || frames == 0 {
			continue
		}
		prev := -1.0
		for _, p := range last.Series.Points {
			if p.T < prev {
				t.Errorf("shard %d: series time went backwards across resume (%v after %v)", id, p.T, prev)
			}
			prev = p.T
		}
	}
}

// shardJobStart recovers the shard's plan start for the frame check.
func shardJobStart(dir string, id int) int {
	m, ok, err := loadManifest(dir)
	if err != nil || !ok {
		return 0
	}
	for _, p := range m.Shards {
		if p.ID == id {
			return p.JobStart
		}
	}
	return 0
}

// TestFleetHealthSections: the merged result's health report carries
// the shard table and — after a resume — the resume summary, and both
// render in the text digest.
func TestFleetHealthSections(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns")
	}
	dir := t.TempDir()
	killFleet(t, dir, 3)
	_, res := fleetDoc(t, Options{Shards: 4, Procs: 2, Dir: dir, CheckpointEvery: 5})
	h := res.Health("fleet-test", 2, 0)
	if len(h.Shards) != 4 {
		t.Fatalf("health carries %d shards, want 4", len(h.Shards))
	}
	if h.Resume == nil || h.Resume.ReplayedTrials == 0 {
		t.Fatalf("health resume section = %+v", h.Resume)
	}
	if h.Trials != res.Trials || h.Success+h.Failure1+h.Failure2 != int64(res.Trials) {
		t.Fatalf("health counts inconsistent: %+v vs %d trials", h, res.Trials)
	}
	text := experiment.FormatHealth(h)
	for _, wantStr := range []string{"shards:", "resume:", "trials recovered from checkpoints"} {
		if !strings.Contains(text, wantStr) {
			t.Errorf("health text missing %q:\n%s", wantStr, text)
		}
	}
}

// TestManifestProvenance: the manifest canonicalizes strategy, censor,
// and topo specs and survives a round trip through the checkpoint dir.
func TestManifestProvenance(t *testing.T) {
	r := experiment.NewRunner(goldenSeed)
	r.Censor = "turkmenistan"
	dir := t.TempDir()
	c, err := New(r, goldenScale(), Options{Shards: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Manifest()
	if m.Campaign != "table1" || m.Seed != goldenSeed || m.TotalJobs == 0 {
		t.Fatalf("manifest = %+v", m)
	}
	if len(m.Strategies) == 0 || m.Strategies[0].Spec == "" {
		t.Fatalf("manifest strategies = %+v", m.Strategies)
	}
	if m.Censor == "" || m.Censor == "turkmenistan" {
		t.Fatalf("manifest censor %q not canonicalized spec text", m.Censor)
	}
	loaded, ok, err := loadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest not persisted: ok=%v err=%v", ok, err)
	}
	if loaded.fingerprint() != m.fingerprint() {
		t.Fatal("persisted manifest fingerprint differs")
	}
	if loaded.Started == "" {
		t.Fatal("manifest missing start time")
	}
}
