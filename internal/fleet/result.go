package fleet

import (
	"encoding/json"
	"io"
	"time"

	"intango/internal/experiment"
	"intango/internal/obs"
)

// Result is the merged output of a fleet campaign. Rows, Tallies,
// Snapshot, Trials, and Failures are deterministic — bit-identical for
// the same (seed, scale) regardless of shard count, worker count, or
// kill/resume history — and are exactly what WriteJSON serializes for
// golden comparison. Resume, Shards, and Series describe how this
// particular run got there.
type Result struct {
	Plan     Plan
	Rows     []experiment.Table1Row
	Tallies  []experiment.Tally
	Snapshot obs.Snapshot
	Trials   int
	Failures []FailureRef
	Resume   experiment.ResumeHealth
	Shards   []ShardStatus
	Series   SeriesView
}

// resultDoc is the deterministic artifact WriteJSON emits — only the
// fields that must be identical across any execution history, no
// wall-clock anything.
type resultDoc struct {
	Campaign string                 `json:"campaign"`
	Seed     int64                  `json:"seed"`
	Scale    experiment.Scale       `json:"scale"`
	Trials   int                    `json:"trials"`
	Rows     []experiment.Table1Row `json:"rows"`
	Tallies  []experiment.Tally     `json:"tallies"`
	Obs      obs.Snapshot           `json:"obs"`
	Failures []FailureRef           `json:"failures"`
}

// WriteJSON writes the deterministic slice of the result as indented
// JSON — the artifact fleet-smoke diffs between an interrupted-and-
// resumed campaign and an uninterrupted reference run.
func (res *Result) WriteJSON(w io.Writer) error {
	doc := resultDoc{
		Campaign: res.Plan.Campaign,
		Seed:     res.Plan.Seed,
		Scale:    res.Plan.Scale,
		Trials:   res.Trials,
		Rows:     res.Rows,
		Tallies:  res.Tallies,
		Obs:      res.Snapshot,
		Failures: res.Failures,
	}
	if doc.Failures == nil {
		doc.Failures = []FailureRef{}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Health assembles the campaign health digest from the merged result:
// the standard outcome/strategy/stage/eviction sections plus the
// fleet-only shard table and resume summary.
func (res *Result) Health(campaign string, workers int, wall time.Duration) experiment.HealthReport {
	h := experiment.HealthReport{
		Campaign:    campaign,
		Seed:        res.Plan.Seed,
		Workers:     workers,
		WallSeconds: wall.Seconds(),
		Trials:      res.Trials,
	}
	strat := map[string]*experiment.StrategyHealth{}
	var order []string
	for _, t := range res.Tallies {
		h.Success += int64(t.Success)
		h.Failure1 += int64(t.Failure1)
		h.Failure2 += int64(t.Failure2)
	}
	// Per-strategy rollup from the final rows (sensitive + clean arms).
	for _, row := range res.Rows {
		key := row.Strategy + " / " + row.Discrepancy
		sh, ok := strat[key]
		if !ok {
			sh = &experiment.StrategyHealth{Strategy: key}
			strat[key] = sh
			order = append(order, key)
		}
		sh.Done += int64(row.Sensitive.Total + row.Clean.Total)
		sh.Success += int64(row.Sensitive.Success + row.Clean.Success)
	}
	for _, key := range order {
		sh := strat[key]
		if sh.Done > 0 {
			sh.SuccessPct = 100 * float64(sh.Success) / float64(sh.Done)
		}
		h.Strategies = append(h.Strategies, *sh)
	}
	if h.Trials > 0 {
		h.SuccessPct = 100 * float64(h.Success) / float64(h.Trials)
	}
	for _, p := range res.Series.Fleet.Points {
		h.Throughput = append(h.Throughput, experiment.ThroughputPoint{
			T: p.T, Done: p.Values["done"], TrialsPerSec: p.Values["trials_per_sec"],
		})
	}
	h.SeriesSamples = len(res.Series.Fleet.Points)
	h.SeriesDropped = res.Series.Fleet.Dropped
	h.FillFromSnapshot(res.Snapshot)
	for _, s := range res.Shards {
		h.Shards = append(h.Shards, experiment.ShardHealth{
			ID: s.ID, State: s.State, Jobs: s.JobEnd - s.JobStart,
			Done: s.Done, Success: s.Success, Frames: s.Frames, Resumed: s.Resumed,
		})
	}
	if res.Resume != (experiment.ResumeHealth{}) {
		r := res.Resume
		h.Resume = &r
	}
	return h
}
