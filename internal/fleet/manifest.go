package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"intango/internal/censor"
	"intango/internal/experiment"
	"intango/internal/topo"
)

// ManifestVersion is the provenance document schema version.
const ManifestVersion = 1

// Manifest is the campaign's provenance document: everything needed to
// tie a checkpoint directory (and the results folded out of it) back to
// the exact inputs that produced it. Every spec string is canonical —
// round-tripped through its grammar — so two manifests are comparable
// byte-for-byte regardless of how the operator spelled the inputs.
type Manifest struct {
	Version   int              `json:"version"`
	Campaign  string           `json:"campaign"`
	Seed      int64            `json:"seed"`
	Scale     experiment.Scale `json:"scale"`
	TotalJobs int              `json:"total_jobs"`
	// Strategies is the campaign strategy set in cube order, each with
	// its canonical strategy-spec text.
	Strategies []experiment.StrategySpec `json:"strategies"`
	// Censor is the canonical censor-spec text ("" = default GFW
	// population from the calibration).
	Censor string `json:"censor,omitempty"`
	// Topo is the canonical topology-spec text ("" = linear path).
	Topo string `json:"topo,omitempty"`
	// Shards is the shard plan the campaign was cut into.
	Shards []ShardPlan `json:"shards"`
	// Started is the wall-clock start (RFC3339). Excluded from the
	// compatibility fingerprint: a resumed campaign keeps the original.
	Started string `json:"started,omitempty"`
}

// buildManifest assembles the provenance document for (r, sc, plan),
// canonicalizing the censor and topology specs through their grammars.
func buildManifest(r *experiment.Runner, sc experiment.Scale, plan Plan) (Manifest, error) {
	m := Manifest{
		Version:    ManifestVersion,
		Campaign:   plan.Campaign,
		Seed:       r.Seed,
		Scale:      sc,
		TotalJobs:  plan.TotalJobs,
		Strategies: experiment.Table1StrategySpecs(),
		Shards:     plan.Shards,
	}
	if r.Censor != "" {
		c, err := censor.Resolve(r.Censor)
		if err != nil {
			return Manifest{}, fmt.Errorf("manifest: censor %q: %w", r.Censor, err)
		}
		m.Censor = c.Spec().String()
	}
	if r.Topo != "" {
		t, err := topo.ParseTopo(r.Topo)
		if err != nil {
			return Manifest{}, fmt.Errorf("manifest: topo: %w", err)
		}
		m.Topo = t.String()
	}
	return m, nil
}

// fingerprint is the manifest's identity for resume compatibility:
// everything except the start time, serialized canonically.
func (m Manifest) fingerprint() string {
	m.Started = ""
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("fleet: manifest fingerprint: %v", err))
	}
	return string(b)
}

// manifestPath names the provenance document inside a checkpoint dir.
func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }

// loadManifest reads dir's manifest; (zero, false, nil) when absent.
func loadManifest(dir string) (Manifest, bool, error) {
	data, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return Manifest{}, false, nil
		}
		return Manifest{}, false, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("manifest: %s: %w", manifestPath(dir), err)
	}
	return m, true, nil
}

// writeManifest persists the provenance document atomically (tmp +
// rename), so a kill mid-write never leaves a torn manifest to poison
// the next resume.
func writeManifest(dir string, m Manifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	tmp := manifestPath(dir) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, manifestPath(dir))
}

// reconcileManifest enforces resume safety: a checkpoint directory
// carrying a manifest for a different campaign (different seed, scale,
// shard plan, or specs) is refused rather than silently blended. A
// matching manifest's Started stamp is preserved — the campaign started
// when it first started, not when it was last resumed.
func reconcileManifest(dir string, m *Manifest) error {
	prev, ok, err := loadManifest(dir)
	if err != nil {
		return err
	}
	if ok {
		if prev.fingerprint() != m.fingerprint() {
			return fmt.Errorf("fleet: checkpoint dir %s belongs to a different campaign (manifest mismatch); use a fresh dir or matching flags", dir)
		}
		if prev.Started != "" {
			m.Started = prev.Started
		}
		return nil
	}
	return writeManifest(dir, *m)
}
