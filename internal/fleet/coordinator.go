package fleet

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"intango/internal/experiment"
	"intango/internal/obs"
)

// Shard states — the /shards state machine.
const (
	StatePending      = "pending"
	StateRunning      = "running"
	StateCheckpointed = "checkpointed"
	StateDone         = "done"
	StateFailed       = "failed"
)

// ErrStopped is returned (wrapped) when the fleet was stopped at a
// frame boundary before completing — by the OnFrame hook or Stop. The
// checkpoint directory holds every journaled frame; a new coordinator
// over the same directory resumes from them.
var ErrStopped = errors.New("fleet: stopped before completion")

// Options configures a fleet campaign.
type Options struct {
	// Campaign names the campaign (manifest identity, frame headers).
	// Default "table1".
	Campaign string
	// Shards is how many shards to cut the job cube into (default 8,
	// clamped to the job count).
	Shards int
	// Procs is how many shards run concurrently (default 4). Within a
	// shard execution is strictly serial — the cursor is the exact
	// resume point — so Procs is the fleet's entire parallelism.
	Procs int
	// Dir is the checkpoint directory. Frames are journaled there and
	// a prior campaign's journals are resumed from there. Empty
	// disables checkpointing (the fleet still runs and serves feeds).
	Dir string
	// CheckpointEvery is trials between frames (default
	// experiment.DefaultCheckpointEvery).
	CheckpointEvery int
	// HTTPAddr, when non-empty, serves the fleet plane: /shards,
	// /progress, /metrics, /timeseries, /manifest. Requires a
	// registered server (import the progresshttp package). Use
	// "127.0.0.1:0" for an ephemeral port; see Coordinator.Addr.
	HTTPAddr string
	// W receives periodic progress lines and diagnostics; nil silences.
	W io.Writer
	// Interval is the fleet sampler cadence (default 1s).
	Interval time.Duration
	// SeriesCap bounds each sampled series ring (default
	// obs.DefaultSeriesCap).
	SeriesCap int
	// OnFrame, when non-nil, observes every journaled checkpoint frame
	// (shard that cut it, total frames journaled fleet-wide). A
	// non-nil error stops the whole fleet at the next frame boundary —
	// the in-process stand-in for kill -9 that the kill/resume tests
	// and fleet-smoke build on.
	OnFrame func(shard, totalFrames int) error
}

// stratCount is one strategy's live fleet counters.
type stratCount struct {
	done, success atomic.Int64
}

// shardRun is one shard's full lifecycle: plan, restored checkpoint,
// live counters, journal, and stitched time series.
type shardRun struct {
	plan ShardPlan

	// Live counters: written by the shard goroutine, read by scrapers.
	done, success, f1, f2 atomic.Int64
	cursor                atomic.Int64

	mu        sync.Mutex // guards the fields below
	state     string
	frames    int
	lastFrame time.Time
	errMsg    string

	// Restored from the journal at plan time.
	resumed      bool
	replayed     int
	quarantined  int
	restoredRefs []FailureRef

	st      *experiment.ShardState
	series  *obs.TimeSeries
	tOffset float64
	journal *journalWriter
}

func (sr *shardRun) setState(s string) {
	sr.mu.Lock()
	sr.state = s
	sr.mu.Unlock()
}

func (sr *shardRun) fail(err error) {
	sr.mu.Lock()
	sr.state = StateFailed
	sr.errMsg = err.Error()
	sr.mu.Unlock()
}

// status snapshots the shard for /shards.
func (sr *shardRun) status(now time.Time) ShardStatus {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	s := ShardStatus{
		ID:       sr.plan.ID,
		State:    sr.state,
		JobStart: sr.plan.JobStart,
		JobEnd:   sr.plan.JobEnd,
		Cursor:   int(sr.cursor.Load()),
		Done:     sr.done.Load(),
		Success:  sr.success.Load(),
		Frames:   sr.frames,
		Resumed:  sr.resumed,
		Error:    sr.errMsg,
	}
	if sr.frames > 0 && !sr.lastFrame.IsZero() {
		s.LastFrameAgeSec = now.Sub(sr.lastFrame).Seconds()
	}
	return s
}

// Coordinator plans, runs, checkpoints, and merges one sharded
// campaign. Build with New (which also replays any prior journals in
// Options.Dir), then call Run once.
type Coordinator struct {
	r    *experiment.Runner
	opts Options
	cube *experiment.Cube
	plan Plan

	manifest Manifest
	shards   []*shardRun

	strats     map[string]*stratCount
	stratNames []string

	start       time.Time
	fleetSeries *obs.TimeSeries
	totalFrames atomic.Int64

	stopFlag atomic.Bool
	stopMu   sync.Mutex
	stopErr  error

	addr atomic.Value // string: bound HTTP address
}

// New plans the campaign and, when Options.Dir is set, reconciles the
// directory's manifest and replays existing shard journals: shards
// with a final frame are marked done, shards with a partial frame are
// restored to their cursor, and journals with damaged lines are
// quarantined (the shard restarts from its last good frame, or from
// scratch when none survives). The runner's own Obs and Progress are
// not used — every shard runs its own sink, and the coordinator is the
// progress plane.
func New(r *experiment.Runner, sc experiment.Scale, opts Options) (*Coordinator, error) {
	if opts.Campaign == "" {
		opts.Campaign = "table1"
	}
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	if opts.Procs <= 0 {
		opts.Procs = 4
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = experiment.DefaultCheckpointEvery
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	cube := experiment.Table1Cube(r, sc)
	c := &Coordinator{
		r: r, opts: opts, cube: cube,
		plan: Plan{
			Campaign:  opts.Campaign,
			Seed:      r.Seed,
			Scale:     sc,
			TotalJobs: cube.Len(),
			Shards:    PlanShards(cube.Len(), opts.Shards),
		},
		strats:      map[string]*stratCount{},
		fleetSeries: obs.NewTimeSeries(opts.SeriesCap),
	}
	c.stratNames = cube.StrategyLabels()
	sort.Strings(c.stratNames)
	for _, name := range c.stratNames {
		c.strats[name] = &stratCount{}
	}
	m, err := buildManifest(r, sc, c.plan)
	if err != nil {
		return nil, err
	}
	m.Started = time.Now().UTC().Format(time.RFC3339)
	if opts.Dir != "" {
		if err := reconcileManifest(opts.Dir, &m); err != nil {
			return nil, err
		}
	}
	c.manifest = m
	for _, p := range c.plan.Shards {
		sr := &shardRun{plan: p, state: StatePending, series: obs.NewTimeSeries(opts.SeriesCap)}
		sr.cursor.Store(int64(p.JobStart))
		sr.st = experiment.NewShardState(cube, p.JobStart, p.JobEnd)
		if opts.Dir != "" {
			if err := c.restoreShard(sr); err != nil {
				return nil, err
			}
		}
		c.shards = append(c.shards, sr)
	}
	return c, nil
}

// restoreShard replays sr's journal (if any) into its state.
func (c *Coordinator) restoreShard(sr *shardRun) error {
	last, frames, quarantined, err := journalLoad(c.opts.Dir, c.opts.Campaign, sr.plan.ID, sr.plan.JobStart, sr.plan.JobEnd)
	if err != nil {
		return fmt.Errorf("fleet: shard %d journal: %w", sr.plan.ID, err)
	}
	if last != nil {
		if rerr := sr.st.Restore(last.Cursor, last.Tallies, last.Obs); rerr != nil {
			// The frame passed line-level validation but not the cube's —
			// a stale layout. Quarantine the whole journal and restart.
			quarantined += frames
			last, frames = nil, 0
		}
	}
	sr.quarantined = quarantined
	if quarantined > 0 {
		if qerr := quarantineJournal(c.opts.Dir, sr.plan.ID); qerr != nil {
			return fmt.Errorf("fleet: shard %d quarantine: %w", sr.plan.ID, qerr)
		}
		if c.opts.W != nil {
			fmt.Fprintf(c.opts.W, "fleet: shard %d: %d damaged journal lines quarantined\n", sr.plan.ID, quarantined)
		}
		if last != nil {
			// Re-journal the surviving frame immediately (not lazily at
			// shard start): a done shard never re-runs, and its state
			// must survive the quarantine for any later resume.
			jw, jerr := openJournal(c.opts.Dir, sr.plan.ID, last)
			if jerr == nil {
				jerr = jw.close()
			}
			if jerr != nil {
				return fmt.Errorf("fleet: shard %d re-journal: %w", sr.plan.ID, jerr)
			}
		}
	}
	if last == nil {
		return nil
	}
	sr.resumed = true
	sr.replayed = last.Cursor - sr.plan.JobStart
	sr.restoredRefs = append([]FailureRef(nil), last.Failures...)
	sr.mu.Lock()
	sr.frames = frames
	sr.mu.Unlock()
	sr.cursor.Store(int64(last.Cursor))
	// Re-seed live counters from the restored tallies so /progress and
	// per-strategy rollups include the replayed trials.
	var succ, f1, f2 int64
	for i, t := range last.Tallies {
		succ += int64(t.Success)
		f1 += int64(t.Failure1)
		f2 += int64(t.Failure2)
		if sc := c.strats[c.cube.TallyLabel(i)]; sc != nil {
			sc.done.Add(int64(t.Total))
			sc.success.Add(int64(t.Success))
		}
	}
	sr.done.Store(int64(sr.replayed))
	sr.success.Store(succ)
	sr.f1.Store(f1)
	sr.f2.Store(f2)
	// Stitch the shard's curve: restored points keep their original
	// timestamps and new samples continue from the last one, so the
	// /timeseries curve crosses the kill point without a gap or reset.
	for _, p := range last.Series.Points {
		sr.series.Append(p)
	}
	sr.tOffset = last.Series.Last().T
	if last.Final || last.Cursor == sr.plan.JobEnd {
		sr.setState(StateDone)
	} else {
		sr.setState(StateCheckpointed)
	}
	return nil
}

// Addr returns the bound fleet-plane HTTP address ("" when none).
// Safe to poll from other goroutines while Run is live.
func (c *Coordinator) Addr() string {
	if s, ok := c.addr.Load().(string); ok {
		return s
	}
	return ""
}

// Plan returns the campaign's shard plan.
func (c *Coordinator) Plan() Plan { return c.plan }

// Manifest returns the campaign's provenance document.
func (c *Coordinator) Manifest() Manifest { return c.manifest }

// Stop requests a stop at every shard's next frame boundary.
func (c *Coordinator) Stop() { c.stop(ErrStopped) }

func (c *Coordinator) stop(err error) {
	c.stopMu.Lock()
	if c.stopErr == nil {
		c.stopErr = err
	}
	c.stopMu.Unlock()
	c.stopFlag.Store(true)
}

func (c *Coordinator) stopped() error {
	if !c.stopFlag.Load() {
		return nil
	}
	c.stopMu.Lock()
	defer c.stopMu.Unlock()
	return c.stopErr
}

// Run executes every incomplete shard across Procs workers, journaling
// checkpoint frames as it goes, and folds the shards into the merged
// Result. Because every fold is commutative the merged tallies,
// registry snapshot, and retained failure set are bit-identical to an
// uninterrupted serial run — however many kills and resumes happened
// along the way.
func (c *Coordinator) Run() (*Result, error) {
	c.start = time.Now()
	c.sampleFleet()
	stopSrv := c.serve()
	stopSampler := c.startSampler()

	work := make(chan *shardRun)
	var wg sync.WaitGroup
	for w := 0; w < c.opts.Procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sr := range work {
				c.runShard(sr)
			}
		}()
	}
	for _, sr := range c.shards {
		sr.mu.Lock()
		done := sr.state == StateDone
		sr.mu.Unlock()
		if done {
			continue
		}
		if c.stopped() != nil {
			break
		}
		work <- sr
	}
	close(work)
	wg.Wait()

	stopSampler()
	c.sampleFleet()
	if stopSrv != nil {
		stopSrv()
	}
	if c.opts.W != nil {
		fmt.Fprintln(c.opts.W, "fleet: "+c.progress().Line())
	}
	if err := c.stopped(); err != nil {
		return nil, fmt.Errorf("%w (checkpoints retained in %s)", err, c.opts.Dir)
	}
	var failed []string
	for _, sr := range c.shards {
		sr.mu.Lock()
		if sr.state == StateFailed {
			failed = append(failed, fmt.Sprintf("shard %d: %s", sr.plan.ID, sr.errMsg))
		}
		sr.mu.Unlock()
	}
	if len(failed) > 0 {
		return nil, fmt.Errorf("fleet: %d shard(s) failed: %v", len(failed), failed)
	}
	return c.merge(), nil
}

// runShard executes one shard's remaining range, checkpointing every
// CheckpointEvery trials and at the end of the range.
func (c *Coordinator) runShard(sr *shardRun) {
	sr.setState(StateRunning)
	if c.opts.Dir != "" {
		jw, err := openJournal(c.opts.Dir, sr.plan.ID, nil)
		if err != nil {
			sr.fail(err)
			return
		}
		sr.journal = jw
		defer func() {
			if cerr := sr.journal.close(); cerr != nil {
				sr.fail(cerr)
			}
		}()
	}
	shardStart := time.Now()
	onTrial := func(label string, out experiment.Outcome) {
		sr.done.Add(1)
		sr.cursor.Add(1)
		switch out {
		case experiment.Success:
			sr.success.Add(1)
		case experiment.Failure1:
			sr.f1.Add(1)
		default:
			sr.f2.Add(1)
		}
		if sc := c.strats[label]; sc != nil {
			sc.done.Add(1)
			if out == experiment.Success {
				sc.success.Add(1)
			}
		}
	}
	checkpoint := func(final bool) bool {
		// Terminal sample first, so the frame's series ends exactly at
		// this cut — a resumed /timeseries curve has no gap at a kill.
		sr.series.Append(obs.SeriesPoint{
			T: sr.tOffset + time.Since(shardStart).Seconds(),
			Values: map[string]float64{
				"cursor":    float64(sr.st.Cursor),
				"done":      float64(sr.done.Load()),
				"success":   float64(sr.success.Load()),
				"failure_1": float64(sr.f1.Load()),
				"failure_2": float64(sr.f2.Load()),
			},
		})
		if sr.journal != nil {
			frame := Frame{
				Version:  FrameVersion,
				Campaign: c.opts.Campaign,
				Shard:    sr.plan.ID,
				Cursor:   sr.st.Cursor,
				Final:    final,
				Tallies:  append([]experiment.Tally(nil), sr.st.Tallies...),
				Obs:      sr.st.Sink.Snapshot(),
				Failures: mergeRefs(sr.restoredRefs, refsFromTraces(sr.st.Sink.Failures()), sr.st.Sink.MaxFailures),
				Series:   sr.series.Snapshot(),
			}
			if err := sr.journal.append(frame); err != nil {
				sr.fail(err)
				return false
			}
		}
		sr.mu.Lock()
		sr.frames++
		sr.lastFrame = time.Now()
		if !final {
			sr.state = StateCheckpointed
		}
		sr.mu.Unlock()
		total := int(c.totalFrames.Add(1))
		if c.opts.OnFrame != nil {
			if err := c.opts.OnFrame(sr.plan.ID, total); err != nil {
				c.stop(fmt.Errorf("%w: %v", ErrStopped, err))
				return false
			}
		}
		if c.stopped() != nil {
			return false
		}
		if !final {
			sr.setState(StateRunning)
		}
		return true
	}
	c.r.RunCubeRange(c.cube, sr.st, c.opts.CheckpointEvery, onTrial, checkpoint)
	sr.mu.Lock()
	if sr.state != StateFailed && sr.st.Cursor == sr.st.End {
		sr.state = StateDone
	}
	sr.mu.Unlock()
}

// progress assembles the fleet-wide ProgressSnapshot from shard
// counters.
func (c *Coordinator) progress() experiment.ProgressSnapshot {
	var done, succ, f1, f2, replayed int64
	for _, sr := range c.shards {
		done += sr.done.Load()
		succ += sr.success.Load()
		f1 += sr.f1.Load()
		f2 += sr.f2.Load()
		replayed += int64(sr.replayed)
	}
	s := experiment.ProgressSnapshot{
		Done: done, Total: int64(c.cube.Len()),
		Success: succ, Failure1: f1, Failure2: f2,
	}
	elapsed := time.Since(c.start).Seconds()
	if elapsed > 0 {
		// Throughput counts fresh trials only: replayed trials were
		// recovered from checkpoints, not run.
		s.TrialsPerSec = float64(done-replayed) / elapsed
	}
	if s.TrialsPerSec > 0 && done < s.Total {
		s.ETASeconds = float64(s.Total-done) / s.TrialsPerSec
	}
	for _, name := range c.stratNames {
		sc := c.strats[name]
		s.Strategies = append(s.Strategies, experiment.StrategyProgress{
			Strategy: name, Done: sc.done.Load(), Success: sc.success.Load(),
		})
	}
	return s
}

// shardsView assembles the /shards payload.
func (c *Coordinator) shardsView() ShardsView {
	now := time.Now()
	sv := ShardsView{Campaign: c.opts.Campaign, Total: c.cube.Len()}
	for _, sr := range c.shards {
		st := sr.status(now)
		sv.Shards = append(sv.Shards, st)
		sv.Done += st.Done
		if st.State == StateDone {
			sv.ShardsDone++
		}
	}
	return sv
}

// seriesView assembles the /timeseries payload.
func (c *Coordinator) seriesView() SeriesView {
	v := SeriesView{Fleet: c.fleetSeries.Snapshot(), Shards: map[string]obs.TimeSeriesSnapshot{}}
	for _, sr := range c.shards {
		v.Shards[fmt.Sprintf("%d", sr.plan.ID)] = sr.series.Snapshot()
	}
	return v
}

// feeds bundles the live closures for the fleet server.
func (c *Coordinator) feeds() Feeds {
	return Feeds{
		Shards:   c.shardsView,
		Progress: c.progress,
		Metrics:  func() string { return metricsText(c.progress(), c.shardsView()) },
		Series:   c.seriesView,
		Manifest: func() Manifest { return c.manifest },
	}
}

// serve binds the fleet plane when configured and a server is
// registered; like campaign progress serving, failure to bind is
// reported and ignored — observability must never abort a campaign.
func (c *Coordinator) serve() (stop func()) {
	if c.opts.HTTPAddr == "" {
		return nil
	}
	if fleetServer == nil {
		if c.opts.W != nil {
			fmt.Fprintln(c.opts.W, "fleet: http plane unavailable: no server registered (import the progresshttp package)")
		}
		return nil
	}
	stop, bound := fleetServer(c.feeds(), c.opts.W, c.opts.HTTPAddr)
	c.addr.Store(bound)
	return stop
}

// sampleFleet appends one fleet-level sample.
func (c *Coordinator) sampleFleet() {
	s := c.progress()
	sv := c.shardsView()
	c.fleetSeries.Append(obs.SeriesPoint{
		T: time.Since(c.start).Seconds(),
		Values: map[string]float64{
			"done":           float64(s.Done),
			"total":          float64(s.Total),
			"success":        float64(s.Success),
			"failure_1":      float64(s.Failure1),
			"failure_2":      float64(s.Failure2),
			"trials_per_sec": s.TrialsPerSec,
			"shards_done":    float64(sv.ShardsDone),
		},
	})
}

// startSampler runs the fleet sampler ticker; the returned stop blocks
// until the sampler goroutine exits.
func (c *Coordinator) startSampler() (stop func()) {
	quit := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(c.opts.Interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				c.sampleFleet()
				if c.opts.W != nil {
					fmt.Fprintln(c.opts.W, "fleet: "+c.progress().Line())
				}
			case <-quit:
				return
			}
		}
	}()
	return func() {
		close(quit)
		<-finished
	}
}

// merge folds every shard into the campaign Result. All folds are
// commutative (tally addition, registry merge, min-N ref union), so
// the output is independent of shard boundaries, execution order, and
// how many kill/resume cycles the campaign survived.
func (c *Coordinator) merge() *Result {
	tallies := make([]experiment.Tally, c.cube.NumTallies())
	reg := obs.NewRegistry()
	trials := 0
	var refs []FailureRef
	maxRefs := experiment.DefaultMaxFailures
	res := &Result{Plan: c.plan, Resume: experiment.ResumeHealth{}}
	now := time.Now()
	for _, sr := range c.shards {
		for i, t := range sr.st.Tallies {
			tallies[i].Success += t.Success
			tallies[i].Failure1 += t.Failure1
			tallies[i].Failure2 += t.Failure2
			tallies[i].Total += t.Total
		}
		reg.Merge(sr.st.Sink.Registry)
		trials += sr.st.Sink.Trials()
		refs = mergeRefs(refs, mergeRefs(sr.restoredRefs, refsFromTraces(sr.st.Sink.Failures()), maxRefs), maxRefs)
		if sr.resumed {
			if sr.replayed == sr.plan.Jobs() {
				res.Resume.CompletedShards++
			} else {
				res.Resume.ResumedShards++
			}
			res.Resume.ReplayedTrials += sr.replayed
		}
		res.Resume.QuarantinedFrames += sr.quarantined
		res.Shards = append(res.Shards, sr.status(now))
	}
	res.Tallies = tallies
	res.Rows = c.cube.Fold(tallies)
	res.Snapshot = reg.Snapshot()
	res.Trials = trials
	res.Failures = refs
	res.Series = c.seriesView()
	return res
}
