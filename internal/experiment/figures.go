package experiment

import (
	"fmt"
	"strings"
	"time"

	"intango/internal/appsim"
	"intango/internal/core"
	"intango/internal/gfw"
	"intango/internal/intang"
	"intango/internal/netem"
	"intango/internal/packet"
)

// Figure1 renders the threat model of Fig. 1: client, client-side
// middleboxes, the GFW wiretap, server-side middleboxes, server.
func Figure1(r *Runner) string {
	vp := VantagePoints()[0]
	srv := Servers(1, r.Cal, r.Seed)[0]
	srv.ServerSideFirewall = true
	rg := r.build(vp, srv, 1, r.packetPool())
	var b strings.Builder
	b.WriteString("Fig. 1 — Threat model (on-path GFW between client and server):\n")
	b.WriteString(rg.net.Describe())
	b.WriteString("\n")
	fmt.Fprintf(&b, "GFW devices: %d on-path wiretap(s) at hop %d (read + inject, never drop)\n",
		len(rg.devices), srv.GFWHop)
	return b.String()
}

// Figure2 renders the INTANG component architecture of Fig. 2 and
// traces one request through all components.
func Figure2(r *Runner) string {
	vp := VantagePoints()[0]
	srv := Servers(1, r.Cal, r.Seed)[0]
	rg := r.build(vp, srv, 2, r.packetPool())
	it := intang.New(rg.sim, rg.net, rg.cli, intang.Options{Resolver: srv.Addr})
	it.Engine.Env.InsertionTTL = insertionTTL(srv)
	appsim.ServeDNSTCP(rg.srv, appsim.Zone{})
	var b strings.Builder
	b.WriteString("Fig. 2 — INTANG components:\n")
	b.WriteString(it.Describe())
	// Exercise every component once: hop measurement, a protected HTTP
	// fetch (strategy + cache), and a forwarded DNS query.
	it.MeasureHops(srv.Addr, 80)
	rg.sim.RunFor(2 * time.Second)
	conn := fetch(rg, srv, true)
	query, _ := dnsQueryBytes()
	rg.cli.SendUDP(5353, srv.Addr, 53, query)
	rg.sim.RunFor(10 * time.Second)
	fmt.Fprintf(&b, "trace: hops=%v strategy=%s cacheHit=%v fetchOK=%v dnsForwarded=%d\n",
		firstHop(it, srv.Addr), it.ChooseStrategy(srv.Addr), it.Stats["success"] > 0,
		appsim.HTTPResponseComplete(conn.Received()), it.Stats["dns-forwarded"])
	return b.String()
}

func dnsQueryBytes() ([]byte, error) {
	return []byte{0, 9, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0, 0, 1, 0, 1}, nil
}

func firstHop(it *intang.INTANG, dst packet.Addr) int {
	h, _ := it.HopsTo(dst)
	return h
}

// SequenceDiagram runs one instrumented trial of a strategy and renders
// the packet time-sequence the way Figs. 3 and 4 draw it, with the GFW
// devices' internal state transitions interleaved.
func SequenceDiagram(r *Runner, factoryName, title string) string {
	vp := VantagePoints()[0]
	srv := Servers(1, r.Cal, r.Seed)[0]
	srv.Mix = BothModels
	rg := r.build(vp, srv, 3, r.packetPool())
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, dev := range rg.devices {
		// Event subscription is engine-specific; non-GFW zoo censors
		// simply contribute no state-transition lines.
		gd, ok := dev.(*gfw.Device)
		if !ok {
			continue
		}
		gd.OnEvent = func(ev gfw.Event) {
			switch ev.Kind {
			case "tcb-create", "tcb-create-reversed", "resync", "resync-applied", "teardown", "detect":
				fmt.Fprintf(&b, "%9.3fms      %s: %s %s\n", ms(rg.sim.Now()), gd.Name(), ev.Kind, ev.Detail)
			}
		}
	}
	rg.net.SetTraceHook(func(ev netem.TraceEvent) {
		if ev.Pkt.TCP == nil {
			return
		}
		switch {
		case ev.Where == "client" && ev.Event == "send":
			fmt.Fprintf(&b, "%9.3fms  client ─▶        %s\n", ms(ev.Time), label(ev.Pkt))
		case ev.Where == "server" && ev.Event == "send":
			fmt.Fprintf(&b, "%9.3fms        ◀─ server  %s\n", ms(ev.Time), label(ev.Pkt))
		case ev.Event == "inject":
			fmt.Fprintf(&b, "%9.3fms      GFW ✦ inject  %s %s\n", ms(ev.Time), ev.Dir, label(ev.Pkt))
		case ev.Event == "drop-ttl":
			fmt.Fprintf(&b, "%9.3fms      ✗ TTL expiry at %s: %s\n", ms(ev.Time), ev.Where, label(ev.Pkt))
		}
	})
	env := core.DefaultEnv(insertionTTL(srv), rg.sim.Rand())
	rg.engine = core.NewEngine(rg.sim, rg.net, rg.cli, env)
	factory := core.BuiltinFactories()[factoryName]
	rg.engine.NewStrategy = func(packet.FourTuple) core.Strategy { return factory() }
	conn := fetch(rg, srv, true)
	fmt.Fprintf(&b, "outcome: %v\n", classify(rg, conn, true))
	return b.String()
}

// Figure3 renders the Fig. 3 combined strategy sequence: TCB Creation +
// Resync/Desync.
func Figure3(r *Runner) string {
	return SequenceDiagram(r, "creation-resync-desync",
		"Fig. 3 — Combined strategy: TCB Creation + Resync/Desync")
}

// Figure4 renders the Fig. 4 combined strategy sequence: TCB Teardown +
// TCB Reversal.
func Figure4(r *Runner) string {
	return SequenceDiagram(r, "teardown-reversal",
		"Fig. 4 — Combined strategy: TCB Teardown + TCB Reversal")
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func label(p *packet.Packet) string {
	tcp := p.TCP
	kind := packet.FlagString(tcp.Flags)
	extra := ""
	if tcp.HasMD5() {
		extra += " +md5"
	}
	if p.BadTCPChecksum {
		extra += " +badck"
	}
	if p.IP.TTL < 32 {
		extra += fmt.Sprintf(" ttl=%d", p.IP.TTL)
	}
	if n := len(p.Payload); n > 0 {
		extra += fmt.Sprintf(" len=%d", n)
	}
	return fmt.Sprintf("[%s] seq=%d ack=%d%s", kind, uint32(tcp.Seq), uint32(tcp.Ack), extra)
}
