package experiment

import (
	"strings"
	"testing"

	"intango/internal/core"
	"intango/internal/middlebox"
)

func TestPopulationMatchesSection33(t *testing.T) {
	vps := VantagePoints()
	if len(vps) != 11 {
		t.Fatalf("vantage points = %d, want 11", len(vps))
	}
	byISP := map[string]int{}
	cities := map[string]bool{}
	torUnfiltered := 0
	for _, vp := range vps {
		byISP[vp.ISP]++
		cities[vp.City] = true
		if !vp.TorFiltered {
			torUnfiltered++
		}
	}
	if byISP["aliyun"] != 6 || byISP["qcloud"] != 3 || byISP["unicom"] != 2 {
		t.Fatalf("ISP split = %v", byISP)
	}
	if torUnfiltered != 4 {
		t.Fatalf("unfiltered Tor VPs = %d, want 4 (§7.3)", torUnfiltered)
	}
	servers := Servers(77, DefaultCalibration(), 1)
	if len(servers) != 77 {
		t.Fatalf("servers = %d", len(servers))
	}
	seen := map[string]bool{}
	for _, s := range servers {
		if seen[s.Addr.String()] {
			t.Fatalf("duplicate server address %v", s.Addr)
		}
		seen[s.Addr.String()] = true
		if s.GFWHop >= s.Hops {
			t.Fatalf("GFW hop %d beyond path %d", s.GFWHop, s.Hops)
		}
	}
	// Outside servers put the GFW near the server (§7.1).
	for _, s := range OutsideServers(33, DefaultCalibration(), 1) {
		if s.Hops-s.GFWHop > 4 {
			t.Fatalf("outside server GFW hop too far from server: %d/%d", s.GFWHop, s.Hops)
		}
	}
}

func TestServersDeterministic(t *testing.T) {
	a := Servers(10, DefaultCalibration(), 9)
	b := Servers(10, DefaultCalibration(), 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("server %d differs between identical seeds", i)
		}
	}
}

// TestTable1Shape checks the qualitative findings of §3.4 at reduced
// scale: which strategies win, which fail, and how.
func TestTable1Shape(t *testing.T) {
	r := NewRunner(42)
	rows := RunTable1(r, Scale{VPs: 11, Servers: 12, Trials: 2})
	byKey := map[string]Table1Row{}
	for _, row := range rows {
		byKey[row.Strategy+"/"+row.Discrepancy] = row
	}
	rate := func(key string) (s, f1, f2 float64) {
		row, ok := byKey[key]
		if !ok {
			t.Fatalf("missing row %q", key)
		}
		return row.Sensitive.Rates()
	}

	// No strategy: nearly everything censored.
	s, _, f2 := rate("No Strategy/N/A")
	if s > 10 || f2 < 85 {
		t.Errorf("no strategy: s=%.1f f2=%.1f", s, f2)
	}
	// TCB creation no longer works (<25%, high F2).
	s, _, f2 = rate("TCB creation with SYN/TTL")
	if s > 25 || f2 < 60 {
		t.Errorf("tcb creation: s=%.1f f2=%.1f", s, f2)
	}
	// In-order prefill still works well (>80%).
	if s, _, _ = rate("Reassembly in-order data/TTL"); s < 80 {
		t.Errorf("prefill ttl: s=%.1f", s)
	}
	// IP fragmentation: dominated by middlebox interference — high F1
	// (Aliyun drops) and high F2 (reassembling profiles).
	s, f1, f2 := rate("Reassembly out-of-order data/IP fragments")
	if s > 10 || f1 < 35 || f2 < 25 {
		t.Errorf("ip frags: s=%.1f f1=%.1f f2=%.1f", s, f1, f2)
	}
	// Teardown with RST: works but imperfect (~70%, noticeable F2).
	s, _, f2 = rate("TCB teardown with RST/TTL")
	if s < 55 || s > 90 || f2 < 10 {
		t.Errorf("teardown rst: s=%.1f f2=%.1f", s, f2)
	}
	// Teardown with FIN: defeated by the evolved model.
	s, _, f2 = rate("TCB teardown with FIN/TTL")
	if s > 30 || f2 < 60 {
		t.Errorf("teardown fin: s=%.1f f2=%.1f", s, f2)
	}
	// Without the keyword, traffic flows freely for every strategy —
	// except IP fragmentation, where the paper itself measured only
	// 45.1% clean success (Aliyun middleboxes discard the fragments).
	for key, row := range byKey {
		cs, _, _ := row.Clean.Rates()
		if key == "Reassembly out-of-order data/IP fragments" {
			if cs < 30 || cs > 60 {
				t.Errorf("%s: clean success %.1f, want ≈45 (paper 45.1)", key, cs)
			}
			continue
		}
		if cs < 85 {
			t.Errorf("%s: clean success %.1f", key, cs)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	results := RunTable2(5)
	get := func(typ string, prof middlebox.ProfileName) string {
		for _, res := range results {
			if res.PacketType == typ {
				return res.Behaviour[prof]
			}
		}
		t.Fatalf("missing %q", typ)
		return ""
	}
	want := []struct {
		typ  string
		prof middlebox.ProfileName
		val  string
	}{
		{"IP fragments", middlebox.ProfileAliyun, "Discarded"},
		{"IP fragments", middlebox.ProfileQCloud, "Reassembled"},
		{"IP fragments", middlebox.ProfileUnicomSJZ, "Reassembled"},
		{"IP fragments", middlebox.ProfileUnicomTJ, "Reassembled"},
		{"Wrong TCP checksum", middlebox.ProfileAliyun, "Pass"},
		{"Wrong TCP checksum", middlebox.ProfileUnicomTJ, "Dropped"},
		{"No TCP flag", middlebox.ProfileQCloud, "Pass"},
		{"No TCP flag", middlebox.ProfileUnicomTJ, "Dropped"},
		{"RST packets", middlebox.ProfileAliyun, "Pass"},
		{"RST packets", middlebox.ProfileQCloud, "Sometimes dropped"},
		{"FIN packets", middlebox.ProfileAliyun, "Sometimes dropped"},
		{"FIN packets", middlebox.ProfileQCloud, "Pass"},
		{"FIN packets", middlebox.ProfileUnicomSJZ, "Dropped"},
		{"FIN packets", middlebox.ProfileUnicomTJ, "Dropped"},
	}
	for _, w := range want {
		if got := get(w.typ, w.prof); got != w.val {
			t.Errorf("%s @ %s = %q, want %q", w.typ, w.prof, got, w.val)
		}
	}
	if out := FormatTable2(results); !strings.Contains(out, "Aliyun(6/11)") {
		t.Error("table formatting missing header")
	}
}

func TestTable4ShapeInsideChina(t *testing.T) {
	r := NewRunner(42)
	rows := RunTable4(r, VantagePoints(), Servers(10, r.Cal, 42), 2)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Success[2] < 85 {
			t.Errorf("%s: avg success %.1f, want ≥85 (paper ≥94)", row.Strategy, row.Success[2])
		}
		if row.Failure2[2] > 10 {
			t.Errorf("%s: avg F2 %.1f, want small", row.Strategy, row.Failure2[2])
		}
		if row.Success[0] > row.Success[1] {
			t.Errorf("%s: min > max", row.Strategy)
		}
	}
	out := FormatTable4("Inside China", rows)
	if !strings.Contains(out, "TCB Teardown + TCB Reversal") {
		t.Error("format missing strategy row")
	}
}

func TestTable4INTANGBeatsFixedStrategies(t *testing.T) {
	r := NewRunner(42)
	vps := VantagePoints()[:4]
	servers := Servers(6, r.Cal, 42)
	row := RunTable4INTANG(r, vps, servers, 6)
	if row.Success[2] < 90 {
		t.Errorf("INTANG avg success %.1f, want ≥90 (paper 98.3)", row.Success[2])
	}
}

func TestTable4OutsideChinaHarder(t *testing.T) {
	r := NewRunner(42)
	inside := RunTable4(r, VantagePoints()[:4], Servers(8, r.Cal, 42), 2)
	outside := RunTable4(r, OutsideVantagePoints(), OutsideServers(8, r.Cal, 42), 2)
	// §7.1: outside China the TTL-dependent strategies degrade (GFW
	// co-located with servers); the MD5/timestamp-based improved
	// prefill holds up best.
	insideAvg, outsideAvg := 0.0, 0.0
	for i := range inside {
		insideAvg += inside[i].Success[2]
		outsideAvg += outside[i].Success[2]
	}
	if outsideAvg >= insideAvg {
		t.Errorf("outside (%.1f) should be harder than inside (%.1f)", outsideAvg/4, insideAvg/4)
	}
	var prefill, resync Table4Row
	for _, row := range outside {
		switch row.Strategy {
		case "Improved In-order Data Overlapping":
			prefill = row
		case "TCB Creation + Resync/Desync":
			resync = row
		}
	}
	if prefill.Success[2] < resync.Success[2] {
		t.Errorf("outside: prefill (%.1f) should beat the TTL-heavy resync/desync (%.1f), as in Table 4",
			prefill.Success[2], resync.Success[2])
	}
}

func TestTable6Shape(t *testing.T) {
	r := NewRunner(42)
	rows := RunTable6(r, 4)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if strings.HasPrefix(row.Resolver, "Dyn") {
			if row.ExceptTianjin < 90 {
				t.Errorf("%s except-TJ = %.1f, want ≥90 (paper ≥98.6)", row.Resolver, row.ExceptTianjin)
			}
			if row.All >= row.ExceptTianjin {
				t.Errorf("%s: Tianjin should drag the overall rate down (%.1f vs %.1f)",
					row.Resolver, row.All, row.ExceptTianjin)
			}
		} else if row.All < 99 {
			// OpenDNS paths see no DNS censorship at all (§7.2).
			t.Errorf("%s = %.1f, want ~100", row.Resolver, row.All)
		}
	}
	if out := FormatTable6(rows); !strings.Contains(out, "216.146.35.35") {
		t.Error("format missing resolver IP")
	}
}

func TestTorSection73(t *testing.T) {
	r := NewRunner(42)
	results := RunTor(r, 2)
	if len(results) != 11 {
		t.Fatalf("results = %d", len(results))
	}
	for _, res := range results {
		if res.FilteredPath {
			if res.PlainWorks {
				t.Errorf("%s: plain Tor should be blocked on a filtered path", res.VP)
			}
			if !res.IPBlocked {
				t.Errorf("%s: bridge IP should be null-routed after active probing", res.VP)
			}
			if res.INTANGSuccess < 100 {
				t.Errorf("%s: INTANG Tor success %.0f, want 100 (§7.3)", res.VP, res.INTANGSuccess)
			}
		} else {
			if !res.PlainWorks {
				t.Errorf("%s: plain Tor should survive on an unfiltered path", res.VP)
			}
			if res.IPBlocked {
				t.Errorf("%s: no active probing expected", res.VP)
			}
		}
	}
	if out := FormatTor(results); !strings.Contains(out, "INTANG") {
		t.Error("format missing column")
	}
}

func TestVPNSection73(t *testing.T) {
	r := NewRunner(42)
	results := RunVPN(r)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	nov := results[0]
	if nov.PlainSurvives || !nov.INTANGSurvives {
		t.Errorf("2016: plain=%v intang=%v, want blocked/rescued", nov.PlainSurvives, nov.INTANGSurvives)
	}
	later := results[1]
	if !later.PlainSurvives || !later.INTANGSurvives {
		t.Errorf("2017: plain=%v intang=%v, want both fine", later.PlainSurvives, later.INTANGSurvives)
	}
	if out := FormatVPN(results); !strings.Contains(out, "DPI") {
		t.Error("format missing column")
	}
}

func TestFiguresRender(t *testing.T) {
	r := NewRunner(42)
	fig1 := Figure1(r)
	if !strings.Contains(fig1, "client") || !strings.Contains(fig1, "server") || !strings.Contains(fig1, "gfw") {
		t.Errorf("fig1:\n%s", fig1)
	}
	fig2 := Figure2(r)
	for _, want := range []string{"main thread", "DNS thread", "fetchOK=true", "dnsForwarded=1"} {
		if !strings.Contains(fig2, want) {
			t.Errorf("fig2 missing %q:\n%s", want, fig2)
		}
	}
	fig3 := Figure3(r)
	for _, want := range []string{"[SYN]", "outcome: success", "TTL expiry"} {
		if !strings.Contains(fig3, want) {
			t.Errorf("fig3 missing %q:\n%s", want, fig3)
		}
	}
	fig4 := Figure4(r)
	for _, want := range []string{"SYN|ACK", "RST", "outcome: success"} {
		if !strings.Contains(fig4, want) {
			t.Errorf("fig4 missing %q:\n%s", want, fig4)
		}
	}
}

func TestRunOneDeterministic(t *testing.T) {
	r := NewRunner(7)
	vp := VantagePoints()[0]
	srv := Servers(1, r.Cal, 7)[0]
	f := core.BuiltinFactories()["improved-teardown"]
	a := r.RunOne(vp, srv, f, true, 3)
	b := r.RunOne(vp, srv, f, true, 3)
	if a != b {
		t.Fatalf("same trial differs: %v vs %v", a, b)
	}
}

func TestTable5AllPreferredConstructionsValidate(t *testing.T) {
	r := NewRunner(42)
	cells := RunTable5(r)
	if len(cells) != 7 {
		t.Fatalf("cells = %d, want 7", len(cells))
	}
	for _, c := range cells {
		if !c.Preferred {
			t.Errorf("%s/%v should be a Table 5 preferred construction", c.PacketType, c.Discrepancy)
		}
		if !c.Validated {
			t.Errorf("%s/%v failed validation", c.PacketType, c.Discrepancy)
		}
	}
	out := FormatTable5(cells)
	if !strings.Contains(out, "Data") || strings.Contains(out, "FAIL") {
		t.Errorf("table:\n%s", out)
	}
}

// TestAblationSection8 checks the §8 countermeasure ladder: what each
// hardening breaks, what it doesn't, and the arms-race move it opens.
func TestAblationSection8(t *testing.T) {
	r := NewRunner(42)
	cells := RunAblation(r)
	get := func(strategy, hardening, server string) Outcome {
		for _, c := range cells {
			if c.Strategy == strategy && c.Hardening == hardening && c.Server == server {
				return c.Outcome
			}
		}
		t.Fatalf("missing cell %s/%s/%s", strategy, hardening, server)
		return Failure1
	}
	const modern, ancient = "linux-4.4", "linux-2.4.37"

	// The measured GFW loses to all four Table 4 strategies.
	for _, s := range []string{"improved-teardown", "improved-prefill", "creation-resync-desync", "teardown-reversal"} {
		if got := get(s, "measured (2017)", modern); got != Success {
			t.Errorf("measured GFW vs %s: %v", s, got)
		}
	}
	// West Chamber's bare teardown kills its own connection (§2).
	if got := get("west-chamber", "measured (2017)", modern); got != Failure1 {
		t.Errorf("west-chamber: %v, want failure-1", got)
	}
	// Checksum validation kills the bad-checksum insertion family.
	if got := get("prefill/bad-checksum", "measured (2017)", modern); got != Success {
		t.Errorf("bad-checksum prefill vs measured: %v", got)
	}
	if got := get("prefill/bad-checksum", "+checksum validation", modern); got != Failure2 {
		t.Errorf("bad-checksum prefill vs hardened: %v, want failure-2", got)
	}
	// MD5 validation opens the §8 counter-move: an MD5-tagged request
	// is invisible to the censor but accepted by pre-RFC-2385 servers.
	if got := get("md5-request", "measured (2017)", modern); got != Failure2 {
		t.Errorf("md5-request vs measured: %v, want failure-2", got)
	}
	if got := get("md5-request", "+md5 validation", ancient); got != Success {
		t.Errorf("md5-request vs hardened + old server: %v, want success", got)
	}
	// ACK-trust defeats desynchronization (the junk range is never
	// acknowledged)...
	if got := get("creation-resync-desync", "+trust-after-server-ack", modern); got != Failure2 {
		t.Errorf("resync-desync vs ack-trust: %v, want failure-2", got)
	}
	// ...but NOT same-range prefill: the server's ACK covers the junk
	// copy's sequence range too, and the censor cannot tell which copy
	// was kept — Ptacek's ambiguity, all the way down.
	if got := get("improved-prefill", "+trust-after-server-ack", modern); got != Success {
		t.Errorf("prefill vs ack-trust: %v, want success (range ambiguity)", got)
	}
	// Teardown-based strategies are untouched by data-trust hardening.
	if got := get("improved-teardown", "+trust-after-server-ack", modern); got != Success {
		t.Errorf("teardown vs ack-trust: %v", got)
	}
	if out := FormatAblation(cells); !strings.Contains(out, "+all of the above") {
		t.Error("format missing hardening block")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	scale := Scale{VPs: 4, Servers: 4, Trials: 1}
	serial := RunTable1(NewRunner(42), scale)
	parallel := RunTable1Parallel(NewRunner(42), scale)
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Sensitive != parallel[i].Sensitive || serial[i].Clean != parallel[i].Clean {
			t.Fatalf("row %d differs:\nserial   %+v\nparallel %+v", i, serial[i], parallel[i])
		}
	}
	r4s := RunTable4(NewRunner(42), VantagePoints()[:3], Servers(3, DefaultCalibration(), 42), 1)
	r4p := RunTable4Parallel(NewRunner(42), VantagePoints()[:3], Servers(3, DefaultCalibration(), 42), 1)
	for i := range r4s {
		if r4s[i] != r4p[i] {
			t.Fatalf("table4 row %d differs:\n%+v\n%+v", i, r4s[i], r4p[i])
		}
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 0)
	if lo != 0 || hi != 0 {
		t.Fatal("empty interval")
	}
	// 50/100: symmetric around 0.5, roughly ±0.097.
	lo, hi = WilsonInterval(50, 100)
	if lo < 0.40 || lo > 0.41 || hi < 0.59 || hi > 0.60 {
		t.Fatalf("50/100 interval = [%.3f, %.3f]", lo, hi)
	}
	// 0/20 must not dip below zero and must not be a point mass.
	lo, hi = WilsonInterval(0, 20)
	if lo != 0 || hi < 0.1 || hi > 0.2 {
		t.Fatalf("0/20 interval = [%.3f, %.3f]", lo, hi)
	}
	// 20/20: hi pinned at 1.
	lo, hi = WilsonInterval(20, 20)
	if hi != 1 || lo < 0.8 {
		t.Fatalf("20/20 interval = [%.3f, %.3f]", lo, hi)
	}
	// The interval always contains the point estimate (modulo float
	// rounding at the extremes).
	const eps = 1e-9
	for k := 0; k <= 30; k++ {
		lo, hi := WilsonInterval(k, 30)
		p := float64(k) / 30
		if p < lo-eps || p > hi+eps {
			t.Fatalf("point %f outside [%f, %f]", p, lo, hi)
		}
	}
}

func TestTallyMergeAndCI(t *testing.T) {
	var a, b Tally
	for i := 0; i < 8; i++ {
		a.Add(Success)
	}
	a.Add(Failure1)
	b.Add(Failure2)
	a.Merge(b)
	if a.Total != 10 || a.Success != 8 || a.Failure1 != 1 || a.Failure2 != 1 {
		t.Fatalf("merged = %+v", a)
	}
	if s := a.SuccessCI(); !strings.Contains(s, "80.0%") || !strings.Contains(s, "[") {
		t.Fatalf("CI = %q", s)
	}
}

// TestDiagnoseAttributesFailures implements the §3.4 future-work check:
// controlled re-runs identify which factor caused a failure.
func TestDiagnoseAttributesFailures(t *testing.T) {
	r := NewRunner(42)
	// A pair known to fail: teardown-rst against a device pinned to
	// resync-on-RST. Find one by sweeping.
	servers := Servers(30, r.Cal, 42)
	vps := VantagePoints()
	var found *Diagnosis
	for _, vp := range vps {
		for _, srv := range servers {
			if r.RunOne(vp, srv, core.BuiltinFactories()["teardown-rst/ttl"], true, 0) == Failure2 {
				d := r.Diagnose(vp, srv, "teardown-rst/ttl", 0)
				found = &d
				break
			}
		}
		if found != nil {
			break
		}
	}
	if found == nil {
		t.Fatal("no failing pair found to diagnose")
	}
	if found.Baseline == Success {
		t.Fatal("diagnosis baseline should fail")
	}
	// The RST-resync factor must be among the explanations for a
	// teardown Failure-2 (that is its mechanism).
	explained := false
	for _, att := range found.Attributions {
		if att.Factor == "gfw-rst-resync" && att.Explains {
			explained = true
		}
	}
	if !explained && !found.Residual {
		t.Fatalf("attributions: %+v", found.Attributions)
	}

	// Campaign-level aggregation quantifies impact.
	counts := r.DiagnoseCampaign("teardown-rst/ttl", vps[:4], servers[:8], 2)
	if counts["failures"] == 0 {
		t.Fatal("campaign found no failures to diagnose")
	}
	if counts["gfw-rst-resync"] == 0 {
		t.Fatalf("rst-resync never explains a teardown failure: %v", counts)
	}
	out := FormatDiagnosis("teardown-rst/ttl", counts)
	if !strings.Contains(out, "gfw-rst-resync") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestDiagnoseSuccessIsEmpty(t *testing.T) {
	r := NewRunner(42)
	srv := Servers(1, r.Cal, 42)[0]
	srv.Mix = EvolvedOnly
	srv.ServerSideFirewall = false
	srv.RouteDynamicsProb = 0
	srv.LossRate = 0
	d := r.Diagnose(VantagePoints()[0], srv, "creation-resync-desync", 1)
	if d.Baseline != Success || len(d.Attributions) != 0 {
		t.Fatalf("diagnosis of a success: %+v", d)
	}
}
