package experiment

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"intango/internal/appsim"
	"intango/internal/censor"
	"intango/internal/core"
	"intango/internal/gfw"
	"intango/internal/intang"
	"intango/internal/netem"
	"intango/internal/obs"
	"intango/internal/packet"
	"intango/internal/tcpstack"
	"intango/internal/topo"
	"intango/internal/trace"
)

// Outcome is the §3.4 trial classification.
type Outcome int

// The three outcomes of Table 1's notation.
const (
	// Success: HTTP response received and no resets from the GFW.
	Success Outcome = iota
	// Failure1: no response and no GFW resets (middlebox/server/path
	// side effects).
	Failure1
	// Failure2: reset packets from the GFW (type-1 or type-2).
	Failure2

	// numOutcomes sizes outcome-indexed arrays (the progress tracker's
	// per-outcome counters); keep it last in the block.
	numOutcomes = iota
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Success:
		return "success"
	case Failure1:
		return "failure-1"
	case Failure2:
		return "failure-2"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Runner executes trials over the calibrated population.
type Runner struct {
	Cal  Calibration
	Seed int64
	// HardenGFW, when set, applies §8 countermeasures to every device
	// the runner builds (the ablation harness sets it).
	HardenGFW func(cfg *gfw.Config)
	// Obs, when set, collects counters, throughput aggregates, and
	// failing-trial flight-recorder traces from every trial. Nil (the
	// default) leaves the whole stack uninstrumented.
	Obs *ObsSink
	// Workers caps RunParallel's fan-out; 0 means GOMAXPROCS.
	Workers int
	// NoPool disables packet pooling: every trial then allocates its
	// packets on the heap. The pooling determinism test uses it as the
	// control arm; campaigns leave it false.
	NoPool bool
	// PerWorkerPool gives each RunParallel worker a private packet pool
	// instead of the shared sync.Pool-backed one — no cross-CPU recycle
	// traffic on many-core fleets. Serial entry points keep the shared
	// pool; results are bit-identical either way (pooling only recycles
	// storage, never changes behaviour), which the determinism test
	// pins.
	PerWorkerPool bool
	// Causal, when set (and Obs is attached), records a full causal
	// trace — packet bytes with lineage plus the complete event stream —
	// for every trial and retains the bundle on each failing trial the
	// sink keeps. Off by default: tracing costs per-packet serialization.
	Causal bool
	// Progress, when set, emits periodic campaign-progress snapshots
	// during RunParallel.
	Progress *ProgressOptions
	// Topo, when set, is a declarative topology spec (internal/topo
	// grammar) that replaces the linear path derived from each (vantage
	// point, server) pair. Graph shapes — parallel censor branches,
	// asymmetric routes — compile to a netem.Fabric; attachment
	// references resolve through the standard rig binder (see topo.go).
	// An invalid spec panics at the first build.
	Topo string
	// Censor, when set, replaces every GFW device the topology would
	// bind with a censor compiled from this reference — a registry name
	// ("turkmenistan") or raw censor-spec text (internal/censor
	// grammar). The spec's parameters are authoritative: Cal's device
	// probabilities and HardenGFW apply only to the default ("")
	// population. Chain-kind censors (filter-only specs) cannot stand in
	// for a device; attach those with censor= in a topology spec.
	Censor string

	// progressAddr is atomic: callers poll ProgressAddr from other
	// goroutines while RunParallel is binding the endpoint (the whole
	// point of a live scrape).
	progressAddr atomic.Value // string
	// progressSeries and progressFinal are retained from the tracker
	// when a progress-enabled RunParallel completes; the health report
	// builds its throughput curve and final counts from them.
	progressSeries obs.TimeSeriesSnapshot
	progressFinal  ProgressSnapshot
	progressRan    bool

	poolOnce sync.Once
	pool     *packet.Pool
	// workerPools collects the per-worker pools RunParallel created so
	// PoolStats can aggregate them with the shared pool.
	poolMu      sync.Mutex
	workerPools []*packet.Pool
}

// packetPool returns the runner's shared packet pool (nil when pooling
// is disabled). One pool serves every trial and every parallel worker;
// sync.Pool handles the concurrency.
func (r *Runner) packetPool() *packet.Pool {
	if r.NoPool {
		return nil
	}
	r.poolOnce.Do(func() { r.pool = packet.NewPool() })
	return r.pool
}

// workerPool returns the pool one RunParallel worker should thread
// through its trials: nil when pooling is off, a freshly registered
// private pool under PerWorkerPool, and the shared pool otherwise.
func (r *Runner) newWorkerPool() *packet.Pool {
	if r.NoPool {
		return nil
	}
	if !r.PerWorkerPool {
		return r.packetPool()
	}
	pl := packet.NewPool()
	r.poolMu.Lock()
	r.workerPools = append(r.workerPools, pl)
	r.poolMu.Unlock()
	return pl
}

// PoolStats snapshots the packet-pool traffic counters, summed across
// the shared pool and any per-worker pools. When pooling is disabled
// (NoPool) or no trial has run yet, there is no pool; the snapshot is
// explicitly zero rather than a nil-receiver dereference.
func (r *Runner) PoolStats() packet.PoolStats {
	var s packet.PoolStats
	if r.pool != nil {
		s = r.pool.Stats()
	}
	r.poolMu.Lock()
	for _, pl := range r.workerPools {
		ps := pl.Stats()
		s.Gets += ps.Gets
		s.Puts += ps.Puts
		s.News += ps.News
	}
	r.poolMu.Unlock()
	return s
}

// ProgressAddr returns the bound address of the live progress HTTP
// endpoint once RunParallel has started it ("" when none configured).
// Safe to poll from another goroutine while a campaign runs.
func (r *Runner) ProgressAddr() string {
	if v := r.progressAddr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// ProgressSeries returns the sampled campaign time-series retained
// from the most recent progress-enabled RunParallel (empty when
// progress was never configured).
func (r *Runner) ProgressSeries() obs.TimeSeriesSnapshot { return r.progressSeries }

// FinalProgress returns the closing progress snapshot of the most
// recent progress-enabled RunParallel; ok is false when progress was
// never configured.
func (r *Runner) FinalProgress() (ProgressSnapshot, bool) { return r.progressFinal, r.progressRan }

// NewRunner builds a runner with the default calibration.
func NewRunner(seed int64) *Runner {
	return &Runner{Cal: DefaultCalibration(), Seed: seed}
}

// pairSeed derives the stable per-(vantage point, server) seed that
// pins device behaviour across trials.
func (r *Runner) pairSeed(vp VantagePoint, srv Server) int64 {
	h := fnv.New64a()
	h.Write([]byte(vp.Name))
	h.Write([]byte{0})
	h.Write([]byte(srv.Name))
	return r.Seed ^ int64(h.Sum64())
}

// rig is one constructed trial topology.
type rig struct {
	sim     *netem.Simulator
	net     netem.Net
	devices []censor.Instance
	cli     *tcpstack.Stack
	srv     *tcpstack.Stack
	engine  *core.Engine
}

// build assembles the (vp, server) substrate for one trial: derive (or
// override) the declarative topology, fetch its cached compiled
// Program, and instantiate it with this trial's RNGs bound through the
// rig binder. Measured paths are linear chains and compile to the
// allocation-free netem.Path; a graph Runner.Topo compiles to a
// netem.Fabric.
func (r *Runner) build(vp VantagePoint, srv Server, trialSeed int64, pool *packet.Pool) *rig {
	rg := &rig{sim: netem.NewSimulator(trialSeed)}
	trialRng := rg.sim.Rand()
	pairRng := rand.New(rand.NewSource(r.pairSeed(vp, srv)))

	// Route dynamics: the path this trial may be ±2 hops off the
	// measured count (§3.4). A shift below one hop clamps to a single
	// router: the shortest path that still carries a tap.
	hops := srv.Hops
	if trialRng.Float64() < srv.RouteDynamicsProb {
		if trialRng.Intn(2) == 0 {
			hops -= 2
		} else {
			hops += 2
		}
	}
	if hops < 1 {
		hops = 1
	}

	prog := r.program(vp, srv, hops)
	binder := &rigBinder{r: r, vp: vp, rg: rg, trialRng: trialRng, pairRng: pairRng}
	n, err := prog.Instantiate(binder, topo.Options{Sim: rg.sim, Pool: pool})
	if err != nil {
		// Derived specs are valid by construction and overrides are
		// validated at parse; a bind failure here is a programming error.
		panic(fmt.Sprintf("experiment: instantiate topology: %v", err))
	}
	rg.net = n

	rg.cli = tcpstack.NewStack(vp.Addr, tcpstack.Linux44(), rg.sim)
	// The engine interposes on the client end (NewEngine replaces
	// cli.Send), so the client stack never runs AttachClient; hand it
	// the pool directly.
	rg.cli.Pool = n.PacketPool()
	rg.srv = tcpstack.NewStack(srv.Addr, srv.Stack, rg.sim)
	rg.srv.AttachServer(n)
	appsim.ServeHTTP(rg.srv, 80)
	return rg
}

// insertionTTL computes the crafting TTL from the measured hop count:
// (hops+1) - δ, i.e. one short of the last router (§7.1, δ=2).
func insertionTTL(srv Server) uint8 {
	ttl := srv.Hops - 1
	if ttl < 1 {
		ttl = 1
	}
	return uint8(ttl)
}

// classify applies the §3.4 notation.
func classify(rg *rig, conn *tcpstack.Conn, sensitive bool) Outcome {
	injected := false
	for _, dev := range rg.devices {
		if dev.Stat("inject-type1")+dev.Stat("inject-type2")+dev.Stat("block-enforce")+dev.Stat("forged-synack") > 0 {
			injected = true
		}
	}
	responded := appsim.HTTPResponseComplete(conn.Received())
	switch {
	case responded && !(conn.GotRST && injected):
		return Success
	case conn.GotRST && injected:
		return Failure2
	default:
		return Failure1
	}
}

// attachObs threads one trial's obs bundle through every layer of the
// rig: the path (netem + middlebox counters), each GFW device, and
// both end-host stacks. Instrumentation never schedules events or
// draws randomness, so an attached rig behaves identically to a bare
// one.
func (rg *rig) attachObs(b *obs.Obs) {
	rg.net.SetObs(b)
	for _, dev := range rg.devices {
		dev.SetObs(b)
	}
	rg.cli.Obs = b
	rg.srv.Obs = b
}

// runRig executes one constructed trial: optional obs attachment, one
// HTTP fetch, §3.4 classification. A nil reg runs uninstrumented (the
// hot path); otherwise a fresh per-trial flight recorder keyed to the
// simulator's virtual clock is wired through the whole rig. A non-nil
// tc additionally taps the recorder and the path so the tracer sees the
// complete event stream and every wire packet; tracing only observes —
// it never schedules events or draws randomness, so a traced trial is
// bit-identical to an untraced one.
func (r *Runner) runRig(vp VantagePoint, srv Server, factory core.Factory, sensitive bool, trial int, reg *obs.Registry, tc *trace.Tracer, pool *packet.Pool) (Outcome, *rig, *obs.Recorder) {
	trialSeed := r.pairSeed(vp, srv) ^ int64(uint64(trial)*0x9e3779b97f4a7c15)
	rg := r.build(vp, srv, trialSeed, pool)
	var rec *obs.Recorder
	if reg != nil {
		rec = obs.NewRecorder(obs.DefaultRingSize, rg.sim.Now)
		rg.attachObs(obs.New(reg, rec))
		if tc != nil {
			tc.Attach(rec, rg.net)
		}
	}
	env := core.DefaultEnv(insertionTTL(srv), rg.sim.Rand())
	rg.engine = core.NewEngine(rg.sim, rg.net, rg.cli, env)
	if factory != nil {
		rg.engine.NewStrategy = func(packet.FourTuple) core.Strategy { return factory() }
	}
	conn := fetch(rg, srv, sensitive)
	if rec != nil {
		recordStageSpans(rg, conn, reg, rec)
	}
	return classify(rg, conn, sensitive), rg, rec
}

// Stage histogram names, shared by span recording and the health
// report. Constants keep the instrumented path free of per-span string
// concatenation.
const (
	spanBuild     = "span.build"
	spanHandshake = "span.handshake"
	spanStrategy  = "span.strategy"
	spanVerdict   = "span.verdict"
	spanTeardown  = "span.teardown"
)

// connectWindow is how long fetch waits for the handshake before
// writing the request — and what the handshake span charges when the
// connection never establishes.
const connectWindow = 500 * time.Millisecond

// recordStageSpans brackets the trial's stages on the virtual clock —
// topology build, handshake, strategy application, censor verdict,
// teardown — recording each as a flight-recorder span and folding its
// duration into the registry's stage histograms. Everything here reads
// marks the layers stamped while the simulation ran; nothing schedules
// events or draws randomness, so instrumented trials stay bit-identical
// to bare ones, serial or parallel.
func recordStageSpans(rg *rig, conn *tcpstack.Conn, reg *obs.Registry, rec *obs.Recorder) {
	span := func(name string, start, end time.Duration) {
		if end < start {
			end = start
		}
		rec.AddSpan(name, start, end)
		reg.Histogram(name, obs.DefaultDurationBuckets).Observe(uint64(end - start))
	}
	// Topology build happens before the virtual clock starts ticking;
	// a zero-width span at t=0 keeps the stage visible in exports.
	span(spanBuild, 0, 0)
	est := conn.EstablishedAt
	if est == 0 {
		// Never established: charge the full window fetch waited.
		est = connectWindow
	}
	span(spanHandshake, 0, est)
	span(spanStrategy, rg.engine.FirstSendAt, rg.engine.LastSendAt)
	for _, dev := range rg.devices {
		first, verdict, last := dev.Marks()
		if first == 0 && last == 0 {
			continue // saw no traffic
		}
		end := verdict
		if end == 0 {
			end = last
		}
		span(spanVerdict, first, end)
	}
	span(spanTeardown, rg.net.LastEventAt(), rg.sim.Now())
}

// runOne runs one trial against an explicit sink (RunParallel hands
// each worker its own shard here, plus the worker's packet pool).
// label names the strategy for the failure-trace retention key.
func (r *Runner) runOne(vp VantagePoint, srv Server, factory core.Factory, sensitive bool, trial int, sink *ObsSink, label string, pool *packet.Pool) Outcome {
	var reg *obs.Registry
	var tc *trace.Tracer
	if sink != nil {
		reg = sink.Registry
		if r.Causal {
			tc = trace.New()
		}
	}
	out, rg, rec := r.runRig(vp, srv, factory, sensitive, trial, reg, tc, pool)
	if sink != nil {
		var bundle *trace.Trace
		if tc != nil && out != Success {
			bundle = tc.Finish(trace.Meta{
				Strategy: label, VP: vp.Name, Server: srv.Name,
				Trial: trial, Outcome: out.String(),
			})
		}
		sink.absorb(rg, label, vp.Name, srv.Name, sensitive, trial, out, rec, bundle)
	}
	return out
}

// RunOne executes a single strategy trial and classifies it.
func (r *Runner) RunOne(vp VantagePoint, srv Server, factory core.Factory, sensitive bool, trial int) Outcome {
	return r.runOne(vp, srv, factory, sensitive, trial, r.Obs, "", r.packetPool())
}

// RunOneTraced runs one trial with a private flight recorder and
// returns the classification together with the retained trace — the
// §3.4 controlled-experiment hook diagnosis builds on.
func (r *Runner) RunOneTraced(vp VantagePoint, srv Server, factory core.Factory, sensitive bool, trial int) (Outcome, []obs.Event) {
	out, _, rec := r.runRig(vp, srv, factory, sensitive, trial, obs.NewRegistry(), nil, r.packetPool())
	return out, rec.Events()
}

// RunOneCausal runs one trial with full causal tracing — lineage-
// annotated packet capture plus the complete (unevicted) event stream —
// and returns the classification with the assembled trace. label names
// the strategy in the trace meta; pass "" for no strategy.
func (r *Runner) RunOneCausal(vp VantagePoint, srv Server, factory core.Factory, label string, sensitive bool, trial int) (Outcome, *trace.Trace) {
	tc := trace.New()
	out, _, _ := r.runRig(vp, srv, factory, sensitive, trial, obs.NewRegistry(), tc, r.packetPool())
	return out, tc.Finish(trace.Meta{
		Strategy: label, VP: vp.Name, Server: srv.Name,
		Trial: trial, Outcome: out.String(),
	})
}

// fetch performs one HTTP GET (optionally with the sensitive keyword)
// and advances the simulation long enough to settle.
func fetch(rg *rig, srv Server, sensitive bool) *tcpstack.Conn {
	conn := rg.cli.Connect(srv.Addr, 80)
	rg.sim.RunFor(connectWindow)
	uri := "/index.html"
	if sensitive {
		uri = "/search?q=" + Keyword
	}
	if conn.State() == tcpstack.Established {
		conn.Write(appsim.HTTPRequest(srv.Name, uri))
	}
	rg.sim.RunFor(8 * time.Second)
	return conn
}

// RunINTANGSeries runs a sequence of sensitive fetches for one pair
// inside a single simulation, with a persistent INTANG instance whose
// cache learns across trials (the Table 4 "INTANG Performance" row).
// Between trials it waits out any active blocklist period, as the
// paper's methodology did (§3.3).
func (r *Runner) RunINTANGSeries(vp VantagePoint, srv Server, trials int) []Outcome {
	rg := r.build(vp, srv, r.pairSeed(vp, srv), r.packetPool())
	it := intang.New(rg.sim, rg.net, rg.cli, intang.Options{})
	it.Engine.Env.InsertionTTL = insertionTTL(srv)
	if r.Obs != nil {
		bundle := obs.New(r.Obs.Registry, obs.NewRecorder(obs.DefaultRingSize, rg.sim.Now))
		rg.attachObs(bundle)
		it.Obs = bundle
	}
	outcomes := make([]Outcome, 0, trials)
	for i := 0; i < trials; i++ {
		for _, dev := range rg.devices {
			dev.ClearStats()
		}
		conn := fetch(rg, srv, true)
		out := classify(rg, conn, true)
		outcomes = append(outcomes, out)
		if out == Failure2 {
			rg.sim.RunFor(95 * time.Second) // wait out the 90 s block
		} else {
			rg.sim.RunFor(2 * time.Second)
		}
	}
	if r.Obs != nil {
		r.Obs.absorbSeries(rg, outcomes)
	}
	return outcomes
}

// Tally aggregates outcomes into Success/Failure-1/Failure-2 counts.
type Tally struct {
	Success, Failure1, Failure2, Total int
}

// Add counts one outcome.
func (t *Tally) Add(o Outcome) {
	t.Total++
	switch o {
	case Success:
		t.Success++
	case Failure1:
		t.Failure1++
	default:
		t.Failure2++
	}
}

// Rates returns the percentages (0-100).
func (t Tally) Rates() (s, f1, f2 float64) {
	if t.Total == 0 {
		return 0, 0, 0
	}
	n := float64(t.Total)
	return 100 * float64(t.Success) / n, 100 * float64(t.Failure1) / n, 100 * float64(t.Failure2) / n
}

// responseBytes is a test helper confirming the server actually spoke
// HTTP.
func responseBytes(conn *tcpstack.Conn) []byte {
	if idx := bytes.Index(conn.Received(), []byte("\r\n\r\n")); idx >= 0 {
		return conn.Received()[:idx]
	}
	return conn.Received()
}
