package experiment

import (
	"fmt"
	"math"
)

// WilsonInterval returns the 95% Wilson score interval for k successes
// in n trials — the right interval for proportions near 0 or 1, which
// is where most of these tables live.
func WilsonInterval(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 0
	}
	const z = 1.959963984540054 // 97.5th percentile of the normal
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// SuccessCI renders the tally's success rate with its 95% interval, in
// percent: "93.2% [91.0, 95.0]".
func (t Tally) SuccessCI() string {
	lo, hi := WilsonInterval(t.Success, t.Total)
	s, _, _ := t.Rates()
	return fmt.Sprintf("%.1f%% [%.1f, %.1f]", s, 100*lo, 100*hi)
}

// Merge combines two tallies.
func (t *Tally) Merge(other Tally) {
	t.Success += other.Success
	t.Failure1 += other.Failure1
	t.Failure2 += other.Failure2
	t.Total += other.Total
}
