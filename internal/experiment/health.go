package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"intango/internal/obs"
)

// HealthReport is the post-campaign telemetry digest: final outcome
// counts, the sampled throughput curve, per-strategy success, stage
// latency percentiles from the span histograms, packet-pool recycling,
// and reassembly eviction rates. It serializes as health.json and
// renders as health.txt (FormatHealth, golden-tested).
type HealthReport struct {
	Campaign    string  `json:"campaign"`
	Seed        int64   `json:"seed"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`

	Trials     int     `json:"trials"`
	Success    int64   `json:"success"`
	Failure1   int64   `json:"failure_1"`
	Failure2   int64   `json:"failure_2"`
	SuccessPct float64 `json:"success_pct"`

	Strategies []StrategyHealth  `json:"strategies,omitempty"`
	Throughput []ThroughputPoint `json:"throughput,omitempty"`
	Stages     []StageLatency    `json:"stages,omitempty"`
	Goodput    *GoodputHealth    `json:"goodput,omitempty"`
	Evictions  []EvictionRate    `json:"evictions,omitempty"`

	// Shards and Resume are present only for sharded (fleet) campaigns:
	// the per-shard outcome table and the summary of what a resumed run
	// replayed from its checkpoint journal.
	Shards []ShardHealth `json:"shards,omitempty"`
	Resume *ResumeHealth `json:"resume,omitempty"`

	Pool          PoolHealth `json:"pool"`
	SeriesSamples int        `json:"series_samples"`
	SeriesDropped uint64     `json:"series_dropped,omitempty"`
}

// StrategyHealth is one strategy's slice of the report.
type StrategyHealth struct {
	Strategy   string  `json:"strategy"`
	Done       int64   `json:"done"`
	Success    int64   `json:"success"`
	SuccessPct float64 `json:"success_pct"`
}

// ThroughputPoint is one sample of the campaign throughput curve.
type ThroughputPoint struct {
	T            float64 `json:"t"` // wall seconds since campaign start
	Done         float64 `json:"done"`
	TrialsPerSec float64 `json:"trials_per_sec"`
}

// StageLatency summarises one trial stage's virtual-time histogram.
type StageLatency struct {
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// GoodputHealth summarises the goodput.bps histogram — present only
// when the campaign measured goodput (the congestion matrix), absent
// otherwise so existing health artifacts are byte-identical.
type GoodputHealth struct {
	Transfers uint64  `json:"transfers"`
	MeanBps   float64 `json:"mean_bps"`
	P50Bps    uint64  `json:"p50_bps"`
	P90Bps    uint64  `json:"p90_bps"`
}

// ShardHealth is one fleet shard's slice of the report.
type ShardHealth struct {
	ID      int    `json:"id"`
	State   string `json:"state"`
	Jobs    int    `json:"jobs"`
	Done    int64  `json:"done"`
	Success int64  `json:"success"`
	Frames  int    `json:"frames"`
	Resumed bool   `json:"resumed,omitempty"`
}

// ResumeHealth summarises what a resumed fleet campaign recovered from
// its checkpoint directory instead of re-running.
type ResumeHealth struct {
	ResumedShards     int `json:"resumed_shards"`
	CompletedShards   int `json:"completed_shards"`
	ReplayedTrials    int `json:"replayed_trials"`
	QuarantinedFrames int `json:"quarantined_frames,omitempty"`
}

// PoolHealth summarises packet-pool recycling over the campaign.
type PoolHealth struct {
	Gets        uint64  `json:"gets"`
	News        uint64  `json:"news"`
	Recycled    uint64  `json:"recycled"`
	RecycledPct float64 `json:"recycled_pct"`
}

// EvictionRate is one reassembly-eviction counter normalised per trial.
type EvictionRate struct {
	Counter  string  `json:"counter"`
	Count    uint64  `json:"count"`
	PerTrial float64 `json:"per_trial"`
}

// BuildHealthReport assembles the health digest from the runner's
// telemetry after a progress-enabled, observed campaign: the sink's
// registry (stage histograms, eviction counters), the final progress
// snapshot, the sampled time-series, and the packet pool. It reads —
// never resets — the underlying state, so it can be called repeatedly.
func (r *Runner) BuildHealthReport(campaign string, wall time.Duration) HealthReport {
	h := HealthReport{
		Campaign:    campaign,
		Seed:        r.Seed,
		Workers:     r.Workers,
		WallSeconds: wall.Seconds(),
	}
	if final, ok := r.FinalProgress(); ok {
		h.Success, h.Failure1, h.Failure2 = final.Success, final.Failure1, final.Failure2
		for _, sp := range final.Strategies {
			sh := StrategyHealth{Strategy: sp.Strategy, Done: sp.Done, Success: sp.Success}
			if sp.Done > 0 {
				sh.SuccessPct = 100 * float64(sp.Success) / float64(sp.Done)
			}
			h.Strategies = append(h.Strategies, sh)
		}
	}
	series := r.ProgressSeries()
	h.SeriesSamples = len(series.Points)
	h.SeriesDropped = series.Dropped
	for _, p := range series.Points {
		h.Throughput = append(h.Throughput, ThroughputPoint{
			T: p.T, Done: p.Values["done"], TrialsPerSec: p.Values["trials_per_sec"],
		})
	}
	if r.Obs != nil {
		snap := r.Obs.Snapshot()
		h.Trials = r.Obs.Trials()
		h.Stages = stageLatencies(snap)
		if hs, ok := snap.Histograms["goodput.bps"]; ok && hs.Count > 0 {
			h.Goodput = &GoodputHealth{
				Transfers: hs.Count,
				MeanBps:   hs.Mean(),
				P50Bps:    hs.Quantile(0.50),
				P90Bps:    hs.Quantile(0.90),
			}
		}
		h.Evictions = evictionRates(snap, h.Trials)
	} else if final, ok := r.FinalProgress(); ok {
		h.Trials = int(final.Done)
	}
	if h.Trials > 0 {
		h.SuccessPct = 100 * float64(h.Success) / float64(h.Trials)
	}
	ps := r.PoolStats()
	h.Pool = PoolHealth{Gets: ps.Gets, News: ps.News, Recycled: ps.Recycled()}
	if ps.Gets > 0 {
		h.Pool.RecycledPct = 100 * float64(ps.Recycled()) / float64(ps.Gets)
	}
	return h
}

// FillFromSnapshot populates the snapshot-derived report sections —
// stage latencies, goodput, eviction rates — from a merged registry
// snapshot. The fleet coordinator uses it to build the same health
// digest from checkpoint-merged state that BuildHealthReport builds
// from a live runner. Set Trials first: eviction rates normalise by it.
func (h *HealthReport) FillFromSnapshot(snap obs.Snapshot) {
	h.Stages = stageLatencies(snap)
	if hs, ok := snap.Histograms["goodput.bps"]; ok && hs.Count > 0 {
		h.Goodput = &GoodputHealth{
			Transfers: hs.Count,
			MeanBps:   hs.Mean(),
			P50Bps:    hs.Quantile(0.50),
			P90Bps:    hs.Quantile(0.90),
		}
	}
	h.Evictions = evictionRates(snap, h.Trials)
}

// stageLatencies extracts the "span.*" histograms in a fixed stage
// order (the order the trial runs them), appending any unknown span
// names alphabetically after the known ones.
func stageLatencies(snap obs.Snapshot) []StageLatency {
	ordered := []string{spanBuild, spanHandshake, spanStrategy, spanVerdict, spanTeardown}
	seen := map[string]bool{}
	var out []StageLatency
	add := func(name string) {
		hs, ok := snap.Histograms[name]
		if !ok || seen[name] {
			return
		}
		seen[name] = true
		ms := func(v uint64) float64 { return float64(v) / float64(time.Millisecond) }
		out = append(out, StageLatency{
			Stage:  strings.TrimPrefix(name, "span."),
			Count:  hs.Count,
			MeanMS: hs.Mean() / float64(time.Millisecond),
			P50MS:  ms(hs.Quantile(0.50)),
			P90MS:  ms(hs.Quantile(0.90)),
			P99MS:  ms(hs.Quantile(0.99)),
		})
	}
	for _, name := range ordered {
		add(name)
	}
	for _, name := range sortedSnapshotHistKeys(snap) {
		if strings.HasPrefix(name, "span.") {
			add(name)
		}
	}
	return out
}

func sortedSnapshotHistKeys(snap obs.Snapshot) []string {
	keys := make([]string, 0, len(snap.Histograms))
	for k := range snap.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// evictionRates collects every "*.frag-evict" counter (gfw, middlebox,
// tcpstack reassemblers) normalised per trial.
func evictionRates(snap obs.Snapshot, trials int) []EvictionRate {
	var out []EvictionRate
	for _, k := range snap.Keys() {
		if !strings.HasSuffix(k, ".frag-evict") {
			continue
		}
		er := EvictionRate{Counter: k, Count: snap.Counters[k]}
		if trials > 0 {
			er.PerTrial = float64(er.Count) / float64(trials)
		}
		out = append(out, er)
	}
	return out
}

// FormatHealth renders the report as the human-readable health.txt.
// The layout is golden-tested (testdata/health.golden), so format
// changes are deliberate diffs, not drift.
func FormatHealth(h HealthReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== campaign health: %s ==\n", h.Campaign)
	fmt.Fprintf(&b, "seed=%d workers=%d wall=%.2fs\n", h.Seed, h.Workers, h.WallSeconds)
	fmt.Fprintf(&b, "trials: %d  success=%d (%.1f%%)  failure-1=%d  failure-2=%d\n",
		h.Trials, h.Success, h.SuccessPct, h.Failure1, h.Failure2)
	if n := len(h.Throughput); n > 0 {
		first, last := h.Throughput[0], h.Throughput[n-1]
		peak := 0.0
		for _, p := range h.Throughput {
			if p.TrialsPerSec > peak {
				peak = p.TrialsPerSec
			}
		}
		fmt.Fprintf(&b, "throughput: %d samples over %.2fs, last=%.1f peak=%.1f trials/sec",
			h.SeriesSamples, last.T-first.T, last.TrialsPerSec, peak)
		if h.SeriesDropped > 0 {
			fmt.Fprintf(&b, " (%d samples evicted)", h.SeriesDropped)
		}
		b.WriteByte('\n')
	}
	if len(h.Strategies) > 0 {
		b.WriteString("per-strategy success:\n")
		width := 0
		for _, s := range h.Strategies {
			if len(s.Strategy) > width {
				width = len(s.Strategy)
			}
		}
		for _, s := range h.Strategies {
			fmt.Fprintf(&b, "  %-*s %5d/%-5d %5.1f%%\n", width, s.Strategy, s.Success, s.Done, s.SuccessPct)
		}
	}
	if len(h.Stages) > 0 {
		b.WriteString("stage latency (virtual ms):\n")
		fmt.Fprintf(&b, "  %-10s %8s %9s %8s %8s %8s\n", "stage", "count", "mean", "p50", "p90", "p99")
		for _, st := range h.Stages {
			fmt.Fprintf(&b, "  %-10s %8d %9.3f %8.0f %8.0f %8.0f\n",
				st.Stage, st.Count, st.MeanMS, st.P50MS, st.P90MS, st.P99MS)
		}
	}
	if g := h.Goodput; g != nil {
		fmt.Fprintf(&b, "goodput: %d transfers, mean=%.0f bps, p50<=%d p90<=%d (bucket bounds)\n",
			g.Transfers, g.MeanBps, g.P50Bps, g.P90Bps)
	}
	if len(h.Shards) > 0 {
		b.WriteString("shards:\n")
		fmt.Fprintf(&b, "  %4s %-13s %7s %7s %7s %7s %s\n", "id", "state", "jobs", "done", "succ", "frames", "")
		for _, s := range h.Shards {
			note := ""
			if s.Resumed {
				note = "resumed"
			}
			fmt.Fprintf(&b, "  %4d %-13s %7d %7d %7d %7d %s\n",
				s.ID, s.State, s.Jobs, s.Done, s.Success, s.Frames, note)
		}
	}
	if r := h.Resume; r != nil {
		fmt.Fprintf(&b, "resume: %d shards replayed complete, %d resumed mid-range, %d trials recovered from checkpoints",
			r.CompletedShards, r.ResumedShards, r.ReplayedTrials)
		if r.QuarantinedFrames > 0 {
			fmt.Fprintf(&b, ", %d frames quarantined", r.QuarantinedFrames)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "packet pool: gets=%d news=%d recycled=%d (%.1f%%)\n",
		h.Pool.Gets, h.Pool.News, h.Pool.Recycled, h.Pool.RecycledPct)
	if len(h.Evictions) > 0 {
		b.WriteString("reassembly evictions:\n")
		for _, e := range h.Evictions {
			fmt.Fprintf(&b, "  %-22s %6d (%.3f/trial)\n", e.Counter, e.Count, e.PerTrial)
		}
	}
	return b.String()
}

// WriteHealthJSON writes the report as indented JSON plus newline.
func WriteHealthJSON(w io.Writer, h HealthReport) error {
	b, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteHealthArtifacts writes health.json and health.txt into dir,
// creating it if needed, and returns the paths written. The pair is
// the campaign's durable telemetry record, sitting next to any causal
// trace bundles from the same run.
func WriteHealthArtifacts(dir string, h HealthReport) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	write := func(name string, emit func(io.Writer) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		paths = append(paths, path)
		return nil
	}
	if err := write("health.json", func(w io.Writer) error { return WriteHealthJSON(w, h) }); err != nil {
		return nil, err
	}
	if err := write("health.txt", func(w io.Writer) error {
		_, err := io.WriteString(w, FormatHealth(h))
		return err
	}); err != nil {
		return nil, err
	}
	return paths, nil
}

// RunHealthCampaign runs the Table 1 campaign with full telemetry —
// counters, stage spans, progress sampling — and returns the health
// report. It installs an ObsSink and ProgressOptions when the caller
// has not configured them (a fast sampling interval, so even quick
// campaigns catch mid-run points).
func RunHealthCampaign(r *Runner, sc Scale, campaign string) HealthReport {
	if r.Obs == nil {
		r.Obs = NewObsSink()
	}
	if r.Progress == nil {
		r.Progress = &ProgressOptions{Interval: 100 * time.Millisecond}
	}
	start := time.Now()
	RunTable1Parallel(r, sc)
	return r.BuildHealthReport(campaign, time.Since(start))
}
