package experiment

import (
	"fmt"
	"io"
	"sort"
	"time"

	"intango/internal/appsim"
	"intango/internal/core"
	"intango/internal/obs"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// This file measures goodput as a first-class outcome: how much of a
// bandwidth-constrained uplink an evasion strategy leaves for actual
// data. Duplicate/reorder-heavy strategies (out-of-order IP fragments,
// overlapping TCP segments) multiply every client payload packet, so
// on a rated link (netem `bw=`) with a finite router queue they
// contend with their own transfer; insertion-only strategies spend a
// handful of crafted packets at the handshake and first payload and
// cost almost nothing. An unconstrained link shows no difference —
// which is exactly why the paper's success rates never surfaced this
// cost and a congestion-real substrate does.

// GoodputUploadBytes is the upload size of one goodput trial. At the
// constrained arm's 1 mbit/s it takes ~0.5 s of virtual time to
// deliver — long enough for congestion control to reach steady state,
// short enough to keep the campaign fast.
const GoodputUploadBytes = 64 << 10

// GoodputConstraint is the constrained arm's client-link shaping:
// the acceptance scenario's `bw=1mbit queue=16`.
const (
	goodputRateBits  = 1_000_000
	goodputQueuePkts = 16
)

// GoodputRow is one strategy's goodput across both link arms, in bits
// per second of virtual time (medians over the campaign's trials).
type GoodputRow struct {
	Strategy string
	// Class is "reorder" for strategies that duplicate or split client
	// payload packets, "inject" for insertion-only ones.
	Class string
	// UnconstrainedBps and ConstrainedBps are median goodputs on the
	// unshaped and on the bw=1mbit,queue=16 client link.
	UnconstrainedBps int64
	ConstrainedBps   int64
	// Success counts trials (out of Trials) whose upload completed on
	// the constrained link: HTTP 200 back, no censor interference.
	Success, Trials int
}

// goodputStrategies is the demo matrix: the two duplicate/reorder
// primitives against three insertion-only strategies.
//
// The reorder entries are the sustained forms of the registry's
// one-shot specs: the trigger fires on every payload segment, the way
// real client-side implementations apply them (the GFW's reassembly
// must stay desynchronized for the whole flow, not just its first
// segment). The IP-fragment variant uses 512-byte fragment chunks —
// the registry's header-sized fragments turn one MSS segment into a
// 60-packet burst, which no finite router queue survives. The inject
// entries are the registry strategies unchanged.
func goodputStrategies() []struct {
	name, class string
	factory     core.Factory
} {
	builtin := core.BuiltinFactories()
	sustained := func(name string, rule core.Rule) core.Factory {
		return core.Spec{Rules: []core.Rule{rule}}.FactoryAs(name)
	}
	return []struct {
		name, class string
		factory     core.Factory
	}{
		{"ooo-ipfrag", "reorder", sustained("ooo-ipfrag", core.Rule{
			Trigger: core.Trigger{Phase: core.PhasePayload, Min: 16},
			Actions: []core.Action{
				core.FragmentAction{Layer: core.LayerIP, At: 512},
				core.ReorderAction{},
				core.DuplicateAction{Fill: core.FillJunk, Pos: core.PosBefore},
			},
		})},
		{"ooo-tcpseg", "reorder", sustained("ooo-tcpseg", core.Rule{
			Trigger: core.Trigger{Phase: core.PhasePayload, Min: 8},
			Actions: []core.Action{
				core.FragmentAction{Layer: core.LayerTCP, At: 4},
				core.ReorderAction{},
				core.DuplicateAction{Fill: core.FillJunk, Pos: core.PosAfter},
			},
		})},
		{"teardown-rst/ttl", "inject", builtin["teardown-rst/ttl"]},
		{"improved-teardown", "inject", builtin["improved-teardown"]},
		{"prefill/ttl", "inject", builtin["prefill/ttl"]},
	}
}

// goodputServers returns the controlled server population: evolved
// censor only, no server-side firewall, no route dynamics, no access
// loss — so the only variable across arms is the link constraint.
func goodputServers(r *Runner, n int) []Server {
	servers := Servers(n, r.Cal, r.Seed)
	for i := range servers {
		servers[i].Mix = EvolvedOnly
		servers[i].ServerSideFirewall = false
		servers[i].RouteDynamicsProb = 0
		servers[i].LossRate = 0
	}
	return servers
}

// goodputTopo renders the derived linear topology for (vp, srv) with
// the client access link shaped to the constrained arm's rate and
// queue — the same chain the unconstrained arm compiles, plus `bw=`.
func goodputTopo(vp VantagePoint, srv Server) string {
	spec := derivedSpec(shapeKey(vp, srv, srv.Hops))
	for i := range spec.Links {
		if spec.Links[i].From == "c" || spec.Links[i].To == "c" {
			spec.Links[i].RateBits = goodputRateBits
			spec.Links[i].Queue = goodputQueuePkts
		}
	}
	return spec.String()
}

// runGoodputTrial uploads GoodputUploadBytes through one rig and
// returns the goodput observed at the server: delivered bytes over the
// virtual-time window from first to last in-order delivery. All
// arithmetic is integer on virtual time, so serial and parallel
// campaigns measure bit-identically. A non-nil reg additionally folds
// the trial into the goodput.bps / goodput.bytes histograms.
func (r *Runner) runGoodputTrial(vp VantagePoint, srv Server, factory core.Factory, trial int, reg *obs.Registry) (bps int64, out Outcome) {
	trialSeed := r.pairSeed(vp, srv) ^ int64(uint64(trial)*0x9e3779b97f4a7c15)
	rg := r.build(vp, srv, trialSeed, r.packetPool())
	appsim.ServeHTTPUpload(rg.srv, 80)
	if reg != nil {
		rg.attachObs(obs.New(reg, obs.NewRecorder(obs.DefaultRingSize, rg.sim.Now)))
	}
	env := core.DefaultEnv(insertionTTL(srv), rg.sim.Rand())
	rg.engine = core.NewEngine(rg.sim, rg.net, rg.cli, env)
	if factory != nil {
		rg.engine.NewStrategy = func(packet.FourTuple) core.Strategy { return factory() }
	}
	conn := rg.cli.Connect(srv.Addr, 80)
	rg.sim.RunFor(connectWindow)
	if conn.State() == tcpstack.Established {
		// The upload carries no sensitive keyword: the matrix isolates
		// what each strategy's wire pattern costs on a congested link,
		// with the censor present but never triggered. (With a keyword
		// every fragment-based trial dies to the Table 2 middleboxes —
		// dropped on Aliyun paths, reassembled ahead of the GFW
		// elsewhere — and the goodput column would measure censorship,
		// not congestion.)
		conn.Write(appsim.HTTPUpload(srv.Name, "/upload", GoodputUploadBytes))
	}
	rg.sim.RunFor(30 * time.Second)

	if sc, ok := rg.srv.Conn(80, vp.Addr, conn.LocalPort()); ok {
		delivered := int64(len(sc.Received()))
		if window := sc.LastDataAt - sc.FirstDataAt; window > 0 && delivered > 0 {
			bps = delivered * 8 * int64(time.Second) / int64(window)
		}
	}
	if reg != nil {
		reg.Histogram("goodput.bps", obs.GoodputBuckets).Observe(uint64(bps))
		reg.Histogram("goodput.bytes", obs.TransferBuckets).Observe(uint64(GoodputUploadBytes))
		reg.Inc("goodput.trials")
	}
	return bps, classify(rg, conn, true)
}

// RunGoodput runs the goodput matrix: every demo strategy through an
// upload on the unconstrained and on the bw=1mbit,queue=16 client
// link, over a controlled server slice. Trials feed the runner's obs
// registry (when attached), so a health report built afterwards
// carries the goodput histograms.
func RunGoodput(r *Runner, sc Scale) []GoodputRow {
	// The QCloud vantage point: its Table 2 middlebox reassembles IP
	// fragments (after the shaped access link, so the fragment burst
	// still pays the bandwidth toll) instead of discarding them the way
	// the Aliyun profile does — fragment-based strategies can finish an
	// upload at all.
	vp := VantagePoints()[6]
	nsrv := sc.Servers
	if nsrv > 3 {
		nsrv = 3
	}
	servers := goodputServers(r, nsrv)
	var reg *obs.Registry
	if r.Obs != nil {
		reg = r.Obs.Registry
	}

	median := func(vals []int64) int64 {
		if len(vals) == 0 {
			return 0
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		return vals[len(vals)/2]
	}

	var rows []GoodputRow
	for _, s := range goodputStrategies() {
		row := GoodputRow{Strategy: s.name, Class: s.class}
		var un, con []int64
		for _, srv := range servers {
			for trial := 0; trial < sc.Trials; trial++ {
				r.Topo = ""
				bps, _ := r.runGoodputTrial(vp, srv, s.factory, trial, reg)
				un = append(un, bps)

				r.Topo = goodputTopo(vp, srv)
				bps, out := r.runGoodputTrial(vp, srv, s.factory, trial, reg)
				con = append(con, bps)
				row.Trials++
				if out == Success {
					row.Success++
				}
			}
		}
		r.Topo = ""
		row.UnconstrainedBps = median(un)
		row.ConstrainedBps = median(con)
		rows = append(rows, row)
	}
	return rows
}

// FormatGoodput renders the goodput matrix in kbit/s with the
// constrained/unconstrained ratio — the number that separates
// reorder-heavy from insertion-only strategies.
func FormatGoodput(rows []GoodputRow) string {
	out := fmt.Sprintf("%-20s %-8s %14s %14s %7s %9s\n",
		"strategy", "class", "unconstrained", "bw=1mbit,q=16", "ratio", "done")
	for _, row := range rows {
		ratio := 0.0
		if row.UnconstrainedBps > 0 {
			ratio = float64(row.ConstrainedBps) / float64(row.UnconstrainedBps)
		}
		out += fmt.Sprintf("%-20s %-8s %11d kbps %11d kbps %7.3f %5d/%-3d\n",
			row.Strategy, row.Class,
			row.UnconstrainedBps/1000, row.ConstrainedBps/1000,
			ratio, row.Success, row.Trials)
	}
	return out
}

// WriteGoodputCampaign runs and renders the goodput matrix — what
// `cmd/tables -what goodput` prints.
func WriteGoodputCampaign(w io.Writer, r *Runner, sc Scale) {
	nsrv := sc.Servers
	if nsrv > 3 {
		nsrv = 3
	}
	fmt.Fprintf(w, "== goodput under congestion (%d KiB upload, %d servers × %d trials, median kbit/s of virtual time) ==\n",
		GoodputUploadBytes>>10, nsrv, sc.Trials)
	fmt.Fprint(w, FormatGoodput(RunGoodput(r, sc)))
	fmt.Fprintln(w)
}
