package experiment

import (
	"bytes"
	"os"
	"testing"

	"intango/internal/core"
)

// TestTablesMatchGolden regenerates the Table 1, 4 and 5 byte streams
// (quick scale, seed 42 — what `cmd/tables -what 1|4|5` prints) and
// compares them against the goldens captured before the strategy layer
// was decomposed into spec-compiled primitives. Equality here is the
// refactor's core guarantee: the declarative specs reproduce the
// monolithic strategies bit for bit.
func TestTablesMatchGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-scale campaigns")
	}
	for _, tc := range []struct {
		golden string
		write  func(w *bytes.Buffer)
	}{
		{"testdata/table1.golden", func(w *bytes.Buffer) { WriteTable1Campaign(w, NewRunner(42), QuickScale()) }},
		{"testdata/table4.golden", func(w *bytes.Buffer) { WriteTable4Campaign(w, NewRunner(42), QuickScale()) }},
		{"testdata/table5.golden", func(w *bytes.Buffer) { WriteTable5Campaign(w, NewRunner(42)) }},
		{"testdata/goodput.golden", func(w *bytes.Buffer) {
			r := NewRunner(42)
			r.Obs = NewObsSink()
			WriteGoodputCampaign(w, r, QuickScale())
		}},
	} {
		want, err := os.ReadFile(tc.golden)
		if err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		tc.write(&got)
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("output drifted from %s:\ngot:\n%swant:\n%s", tc.golden, got.Bytes(), want)
		}
	}
}

// TestTableSpecsMatchRegistry checks every strategy the campaign tables
// define inline: the spec text must parse, and when its name is a
// registered alias, the inline spec must be the registered one — the
// tables and the registry may not silently diverge.
func TestTableSpecsMatchRegistry(t *testing.T) {
	var all []strategySpec
	for _, s := range table1Strategies() {
		all = append(all, s.strategySpec)
	}
	for _, s := range table4Strategies() {
		all = append(all, s.strategySpec)
	}
	all = append(all, ablationStrategies()...)
	for _, s := range all {
		spec, err := core.ParseSpec(s.spec)
		if err != nil {
			t.Errorf("%s: bad spec %q: %v", s.name, s.spec, err)
			continue
		}
		if canon := spec.String(); canon != s.spec {
			t.Errorf("%s: spec %q is not canonical (want %q)", s.name, s.spec, canon)
		}
		_, registered, ok := core.ResolveStrategy(s.name)
		if !ok {
			// Not a registry alias (e.g. ad-hoc Table 5 constructions):
			// parseability is all we require.
			continue
		}
		if registered != spec.String() {
			t.Errorf("%s: table spec %q != registered spec %q", s.name, spec.String(), registered)
		}
	}
}
