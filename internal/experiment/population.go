// Package experiment reproduces the paper's measurement campaigns over
// the simulated substrate: the vantage-point and website populations of
// §3.3, the per-trial topology construction, the Success/Failure-1/
// Failure-2 classification of §3.4, and runners that regenerate every
// table and figure of the evaluation.
package experiment

import (
	"fmt"
	"math/rand"

	"intango/internal/censor"
	"intango/internal/gfw"
	"intango/internal/middlebox"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// Keyword is the sensitive keyword the paper probes with (§3.3).
const Keyword = "ultrasurf"

// VantagePoint is one of the measurement clients of §3.3.
type VantagePoint struct {
	Name    string
	City    string
	ISP     string
	Profile middlebox.ProfileName
	Addr    packet.Addr
	// TorFiltered: Tor-filtering GFW devices sit on this VP's paths
	// (§7.3 found them absent from Northern China).
	TorFiltered bool
	// ResolverPathFirewall models the Tianjin anomaly of §7.2: paths
	// from that VP to the public DNS resolvers traverse a stateful
	// firewall that honors the RST insertion packets and then blocks
	// the flow.
	ResolverPathFirewall bool
}

// VantagePoints returns the paper's 11 clients: 6 on Aliyun, 3 on
// QCloud, 2 on China Unicom home networks, across 9 cities (§3.3).
func VantagePoints() []VantagePoint {
	mk := func(i int, city, isp string, prof middlebox.ProfileName) VantagePoint {
		return VantagePoint{
			Name:    fmt.Sprintf("vp%02d-%s", i, city),
			City:    city,
			ISP:     isp,
			Profile: prof,
			Addr:    packet.AddrFrom4(10, 0, byte(i), 1),
		}
	}
	vps := []VantagePoint{
		mk(1, "beijing", "aliyun", middlebox.ProfileAliyun),
		mk(2, "shanghai", "aliyun", middlebox.ProfileAliyun),
		mk(3, "hangzhou", "aliyun", middlebox.ProfileAliyun),
		mk(4, "qingdao", "aliyun", middlebox.ProfileAliyun),
		mk(5, "zhangjiakou", "aliyun", middlebox.ProfileAliyun),
		mk(6, "beijing2", "aliyun", middlebox.ProfileAliyun),
		mk(7, "guangzhou", "qcloud", middlebox.ProfileQCloud),
		mk(8, "shenzhen", "qcloud", middlebox.ProfileQCloud),
		mk(9, "shanghai2", "qcloud", middlebox.ProfileQCloud),
		mk(10, "shijiazhuang", "unicom", middlebox.ProfileUnicomSJZ),
		mk(11, "tianjin", "unicom", middlebox.ProfileUnicomTJ),
	}
	// §7.3: four vantage points in three Northern-China cities
	// (Beijing, Zhangjiakou, Qingdao) see no Tor filtering.
	unfilteredCities := map[string]bool{"beijing": true, "beijing2": true, "zhangjiakou": true, "qingdao": true}
	for i := range vps {
		vps[i].TorFiltered = !unfilteredCities[vps[i].City]
	}
	// §7.2: the Tianjin vantage point has low TCP-DNS success.
	vps[10].ResolverPathFirewall = true
	return vps
}

// DeviceMix describes which GFW generations sit on a path.
type DeviceMix int

// Path device mixes. The evolved rollout was nearly complete by the
// measurement period (old-only paths are what keeps the Table 1
// legacy strategies at single-digit success).
const (
	EvolvedOnly DeviceMix = iota
	OldOnly
	BothModels
)

// Server is one website stand-in of §3.3 (77 ASes, one IP each).
type Server struct {
	Name  string
	Addr  packet.Addr
	Stack tcpstack.Profile
	// Hops is the router hop count client→server; GFWHop is the tap
	// position.
	Hops   int
	GFWHop int
	// Mix selects the GFW generations on the path.
	Mix DeviceMix
	// LossRate applies to the client-side access link.
	LossRate float64
	// ServerSideFirewall places a stateful firewall past the GFW.
	ServerSideFirewall bool
	// RouteDynamicsProb is the per-trial chance the route shifted
	// since the hop count was measured (§3.4 network dynamics).
	RouteDynamicsProb float64
}

// Calibration gathers the free parameters of the reproduction; each is
// tied to the paper observation that motivates it (see DESIGN.md).
type Calibration struct {
	// DetectionMissProb: the persistent no-strategy success (§3.4,
	// 2.8%).
	DetectionMissProb float64
	// OldOnlyShare / BothShare: remaining old-model deployments; the
	// 6-7% success of TCB-creation (Table 1) bounds old-only paths.
	OldOnlyShare, BothShare float64
	// ResyncOnRSTProb: the ~25% of RSTs that do not tear down
	// (Table 1 teardown Failure-2; §4 Hypothesized Behavior 3).
	ResyncOnRSTProb float64
	// SegmentLastWinsProb: share of devices still preferring the later
	// overlapping segment copy (Table 1 out-of-order TCP ~31% success).
	SegmentLastWinsProb float64
	// OldServerShare: Linux ≤ 2.6 servers (§5.3 cross-validation
	// failures).
	OldServerShare float64
	// LossRate: baseline packet loss motivating insertion repeats.
	LossRate float64
	// RouteDynamicsProb: routes shifting under the measured hop count.
	RouteDynamicsProb float64
	// ServerSideFirewallShare: paths with interfering server-side
	// middleboxes (§3.4 "Failures 1").
	ServerSideFirewallShare float64
}

// DefaultCalibration returns the values used for the headline tables.
func DefaultCalibration() Calibration {
	return Calibration{
		DetectionMissProb:       0.028,
		OldOnlyShare:            0.055,
		BothShare:               0.20,
		ResyncOnRSTProb:         0.22,
		SegmentLastWinsProb:     0.32,
		OldServerShare:          0.07,
		LossRate:                0.006,
		RouteDynamicsProb:       0.035,
		ServerSideFirewallShare: 0.02,
	}
}

// Servers deterministically samples n website stand-ins from the
// calibrated distributions.
func Servers(n int, cal Calibration, seed int64) []Server {
	rng := rand.New(rand.NewSource(seed))
	stacks := []func() tcpstack.Profile{
		tcpstack.Linux44, tcpstack.Linux40, tcpstack.Linux314,
	}
	oldStacks := []func() tcpstack.Profile{tcpstack.Linux2634, tcpstack.Linux2437}
	out := make([]Server, 0, n)
	for i := 0; i < n; i++ {
		s := Server{
			Name: fmt.Sprintf("site%03d.example", i),
			Addr: packet.AddrFrom4(203, 0, byte(113+i/200), byte(i%200+10)),
		}
		if rng.Float64() < cal.OldServerShare {
			s.Stack = oldStacks[rng.Intn(len(oldStacks))]()
		} else {
			s.Stack = stacks[rng.Intn(len(stacks))]()
		}
		s.Hops = 9 + rng.Intn(7) // 9..15 router hops
		// Inside China the GFW sits at the border, early on the path.
		s.GFWHop = 2 + rng.Intn(3)
		switch v := rng.Float64(); {
		case v < cal.OldOnlyShare:
			s.Mix = OldOnly
		case v < cal.OldOnlyShare+cal.BothShare:
			s.Mix = BothModels
		default:
			s.Mix = EvolvedOnly
		}
		s.LossRate = cal.LossRate * (0.5 + rng.Float64())
		s.ServerSideFirewall = rng.Float64() < cal.ServerSideFirewallShare
		s.RouteDynamicsProb = cal.RouteDynamicsProb
		out = append(out, s)
	}
	return out
}

// OutsideServers samples the §7 outside-China targets: 33 Chinese
// websites reached from abroad, where the GFW devices sit within a few
// hops of the server — sometimes co-located — making TTL-limited
// insertion much harder (§7.1).
func OutsideServers(n int, cal Calibration, seed int64) []Server {
	servers := Servers(n, cal, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	for i := range servers {
		servers[i].Name = fmt.Sprintf("cn-site%03d.example", i)
		// GFW within 0-3 hops of the server.
		servers[i].GFWHop = servers[i].Hops - 1 - rng.Intn(4)
		if servers[i].GFWHop < 1 {
			servers[i].GFWHop = 1
		}
	}
	return servers
}

// gfwConfig builds the device configuration for a path: the compiled
// censor-spec lowering of the model's registry entry (gfw2017/gfw2013),
// with the calibration's device probabilities layered on top — Cal is
// the experiment-level override knob the §8 ablations and sensitivity
// sweeps turn, so it wins over the spec's measured defaults here.
func gfwConfig(model gfw.Model, cal Calibration) gfw.Config {
	name := censor.GFW2017
	if model == gfw.ModelKhattak2013 {
		name = censor.GFW2013
	}
	cfg, ok := censor.MustResolve(name).GFWConfig()
	if !ok {
		panic("experiment: registry censor " + name + " is not an engine spec")
	}
	cfg.DetectionMissProb = cal.DetectionMissProb
	cfg.ResyncOnRSTProb = cal.ResyncOnRSTProb
	cfg.SegmentLastWinsProb = cal.SegmentLastWinsProb
	return cfg
}
