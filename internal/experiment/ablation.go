package experiment

import (
	"fmt"
	"strings"

	"intango/internal/censor"
	"intango/internal/core"
	"intango/internal/gfw"
	"intango/internal/tcpstack"
)

// Hardening names a §8 countermeasure configuration of the censor.
type Hardening struct {
	Name  string
	Apply func(cfg *gfw.Config)
}

// Hardenings returns the §8 ablation ladder: the measured GFW plus
// each discussed countermeasure.
func Hardenings() []Hardening {
	return []Hardening{
		{Name: "measured (2017)", Apply: func(cfg *gfw.Config) {}},
		{Name: "+checksum validation", Apply: func(cfg *gfw.Config) { cfg.ValidateTCPChecksum = true }},
		{Name: "+md5 validation", Apply: func(cfg *gfw.Config) { cfg.ValidateMD5 = true }},
		{Name: "+trust-after-server-ack", Apply: func(cfg *gfw.Config) { cfg.TrustDataAfterServerACK = true }},
		{Name: "+all of the above", Apply: func(cfg *gfw.Config) {
			cfg.ValidateTCPChecksum = true
			cfg.ValidateMD5 = true
			cfg.TrustDataAfterServerACK = true
		}},
	}
}

// AblationCensorSpec pairs a Hardenings() rung with the canonical
// censor-spec edit string expressing the same censor declaratively:
// the gfw2017 registry spec with the matching harden: statements
// appended and the detection-miss draw pinned off (param:miss(p=0)),
// exactly as runHardened pins it via Cal. TestAblationSpecsMatchConfig
// holds the two constructions to identical behaviour.
type AblationCensorSpec struct {
	Hardening string
	Spec      string
}

// AblationCensorSpecs returns the §8 ablation ladder as censor-spec
// edits: the registered gfw2017 variants with the detection-miss draw
// pinned — each rung a pure text edit of the measured spec, the
// countermeasures data rather than code toggles.
func AblationCensorSpecs() []AblationCensorSpec {
	pinned := func(name string) string {
		spec, ok := censor.Lookup(name)
		if !ok {
			panic("experiment: " + name + " missing from censor registry")
		}
		return strings.Replace(spec, "param:miss(p=0.028)", "param:miss(p=0)", 1)
	}
	return []AblationCensorSpec{
		{"measured (2017)", pinned(censor.GFW2017)},
		{"+checksum validation", pinned(censor.GFW2017 + "+checksum")},
		{"+md5 validation", pinned(censor.GFW2017 + "+md5")},
		{"+trust-after-server-ack", pinned(censor.GFW2017 + "+trustack")},
		{"+all of the above", pinned(censor.GFW2017 + "+all")},
	}
}

// AblationCell is one (strategy, hardening, server stack) outcome.
type AblationCell struct {
	Strategy  string
	Hardening string
	Server    string
	Outcome   Outcome
}

// ablationStrategies lists the strategies the ablation sweeps —
// Table 4's winners plus the two arms-race baselines — each defined by
// its spec.
func ablationStrategies() []strategySpec {
	t4 := table4Strategies()
	return []strategySpec{
		t4[0].strategySpec, // improved-teardown
		t4[1].strategySpec, // improved-prefill
		t4[2].strategySpec, // creation-resync-desync
		t4[3].strategySpec, // teardown-reversal
		{"prefill/bad-checksum", "on:first-payload[inject(prefill,disc=bad-checksum)]"},
		{"west-chamber", "on:first-payload[teardown(flags=rst); teardown(flags=finack)]"},
		{"md5-request", "on:payload[tamper(md5)]"},
	}
}

// RunAblation sweeps strategies against each hardened censor on clean
// controlled paths, on a modern server and (for the MD5 arms race) a
// pre-RFC-2385 server.
func RunAblation(r *Runner) []AblationCell {
	vp := VantagePoints()[0]
	base := Servers(1, r.Cal, r.Seed)[0]
	base.Mix = EvolvedOnly
	base.ServerSideFirewall = false
	base.RouteDynamicsProb = 0
	base.LossRate = 0

	stacks := []tcpstack.Profile{tcpstack.Linux44(), tcpstack.Linux2437()}

	var cells []AblationCell
	for _, h := range Hardenings() {
		for _, strat := range ablationStrategies() {
			factory := strat.compile()
			for _, stack := range stacks {
				srv := base
				srv.Stack = stack
				out := r.runHardened(vp, srv, factory, h)
				cells = append(cells, AblationCell{
					Strategy: strat.name, Hardening: h.Name, Server: stack.Name, Outcome: out,
				})
			}
		}
	}
	return cells
}

// runHardened is RunOne with a hardened GFW configuration.
func (r *Runner) runHardened(vp VantagePoint, srv Server, factory core.Factory, h Hardening) Outcome {
	saved := r.Cal.DetectionMissProb
	r.Cal.DetectionMissProb = -1 // deterministic ablation
	r.HardenGFW = h.Apply
	defer func() {
		r.Cal.DetectionMissProb = saved
		r.HardenGFW = nil
	}()
	return r.RunOne(vp, srv, factory, true, 17)
}

// FormatAblation renders the matrix, one block per hardening.
func FormatAblation(cells []AblationCell) string {
	var b strings.Builder
	byHardening := map[string][]AblationCell{}
	var order []string
	for _, c := range cells {
		if _, ok := byHardening[c.Hardening]; !ok {
			order = append(order, c.Hardening)
		}
		byHardening[c.Hardening] = append(byHardening[c.Hardening], c)
	}
	for _, h := range order {
		fmt.Fprintf(&b, "%s\n", h)
		fmt.Fprintf(&b, "  %-26s %-14s %-14s\n", "strategy", "linux-4.4", "linux-2.4.37")
		byStrat := map[string]map[string]Outcome{}
		var strats []string
		for _, c := range byHardening[h] {
			if byStrat[c.Strategy] == nil {
				byStrat[c.Strategy] = map[string]Outcome{}
				strats = append(strats, c.Strategy)
			}
			byStrat[c.Strategy][c.Server] = c.Outcome
		}
		for _, s := range strats {
			fmt.Fprintf(&b, "  %-26s %-14s %-14s\n", s,
				byStrat[s]["linux-4.4"], byStrat[s]["linux-2.4.37"])
		}
	}
	return b.String()
}
