// Package progresshttp serves live campaign-progress snapshots over
// HTTP: /progress as JSON, /metrics in Prometheus exposition format,
// and /timeseries as the sampled campaign time-series window (JSON).
// For fleet campaigns it also serves the fleet plane: /shards (the
// per-shard state machine), shard-labelled /metrics, per-shard
// /timeseries stitched across kills, and the /manifest provenance
// document.
//
// It registers itself with the experiment harness and the fleet
// coordinator from init, so enabling the endpoints is just an import:
//
//	import _ "intango/internal/experiment/progresshttp"
//
// The split exists so internal/experiment never links net/http —
// the http package's init-time heap globals would otherwise be marked
// by every GC cycle of every binary using the harness, a measurable
// tax on the trial hot path (BenchmarkTrialHotPath).
package progresshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"

	"intango/internal/experiment"
	"intango/internal/fleet"
)

func init() {
	experiment.RegisterProgressServer(Serve)
	fleet.RegisterServer(ServeFleet)
}

// Serve binds addr and serves feeds until stop is called: /progress
// (snapshot JSON), /metrics (Prometheus exposition), /timeseries
// (sampled series JSON). A bind failure is reported on diag (when set)
// and returns a nil stop with an empty bound address: progress serving
// must never abort a campaign.
func Serve(feeds experiment.ProgressFeeds, diag io.Writer, addr string) (stop func(), bound string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if diag != nil {
			fmt.Fprintf(diag, "progress: http endpoint unavailable: %v\n", err)
		}
		return nil, ""
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(feeds.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, feeds.Snapshot().MetricsText())
	})
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var series any = struct{}{}
		if feeds.Series != nil {
			series = feeds.Series()
		}
		_ = json.NewEncoder(w).Encode(series)
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return func() { _ = srv.Close() }, ln.Addr().String()
}

// ServeFleet binds addr and serves a fleet's observability plane until
// stop is called: /shards (per-shard state machine JSON), /progress
// (aggregated snapshot JSON), /metrics (Prometheus exposition with a
// shard label plus fleet rollups), /timeseries (fleet curve plus
// per-shard checkpoint-stitched curves), and /manifest (the campaign
// provenance document). Bind failures are reported on diag and return
// a nil stop — fleet observability must never abort a campaign.
func ServeFleet(feeds fleet.Feeds, diag io.Writer, addr string) (stop func(), bound string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if diag != nil {
			fmt.Fprintf(diag, "fleet: http plane unavailable: %v\n", err)
		}
		return nil, ""
	}
	asJSON := func(get func() any) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(get())
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/shards", asJSON(func() any { return feeds.Shards() }))
	mux.HandleFunc("/progress", asJSON(func() any { return feeds.Progress() }))
	mux.HandleFunc("/timeseries", asJSON(func() any { return feeds.Series() }))
	mux.HandleFunc("/manifest", asJSON(func() any { return feeds.Manifest() }))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, feeds.Metrics())
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return func() { _ = srv.Close() }, ln.Addr().String()
}
