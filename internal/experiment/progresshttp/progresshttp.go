// Package progresshttp serves live campaign-progress snapshots over
// HTTP: /progress as JSON, /metrics in Prometheus exposition format,
// and /timeseries as the sampled campaign time-series window (JSON).
//
// It registers itself with the experiment harness from init, so
// enabling the endpoint is just an import:
//
//	import _ "intango/internal/experiment/progresshttp"
//
// The split exists so internal/experiment never links net/http —
// the http package's init-time heap globals would otherwise be marked
// by every GC cycle of every binary using the harness, a measurable
// tax on the trial hot path (BenchmarkTrialHotPath).
package progresshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"

	"intango/internal/experiment"
)

func init() {
	experiment.RegisterProgressServer(Serve)
}

// Serve binds addr and serves feeds until stop is called: /progress
// (snapshot JSON), /metrics (Prometheus exposition), /timeseries
// (sampled series JSON). A bind failure is reported on diag (when set)
// and returns a nil stop with an empty bound address: progress serving
// must never abort a campaign.
func Serve(feeds experiment.ProgressFeeds, diag io.Writer, addr string) (stop func(), bound string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if diag != nil {
			fmt.Fprintf(diag, "progress: http endpoint unavailable: %v\n", err)
		}
		return nil, ""
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(feeds.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, feeds.Snapshot().MetricsText())
	})
	mux.HandleFunc("/timeseries", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var series any = struct{}{}
		if feeds.Series != nil {
			series = feeds.Series()
		}
		_ = json.NewEncoder(w).Encode(series)
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return func() { _ = srv.Close() }, ln.Addr().String()
}
