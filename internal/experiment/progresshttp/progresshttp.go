// Package progresshttp serves live campaign-progress snapshots over
// HTTP: /progress as JSON, /metrics as expvar-style plain text.
//
// It registers itself with the experiment harness from init, so
// enabling the endpoint is just an import:
//
//	import _ "intango/internal/experiment/progresshttp"
//
// The split exists so internal/experiment never links net/http —
// the http package's init-time heap globals would otherwise be marked
// by every GC cycle of every binary using the harness, a measurable
// tax on the trial hot path (BenchmarkTrialHotPath).
package progresshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"

	"intango/internal/experiment"
)

func init() {
	experiment.RegisterProgressServer(Serve)
}

// Serve binds addr and serves snapshot() on /progress (JSON) and
// /metrics (plain text) until stop is called. A bind failure is
// reported on diag (when set) and returns a nil stop with an empty
// bound address: progress serving must never abort a campaign.
func Serve(snapshot func() experiment.ProgressSnapshot, diag io.Writer, addr string) (stop func(), bound string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if diag != nil {
			fmt.Fprintf(diag, "progress: http endpoint unavailable: %v\n", err)
		}
		return nil, ""
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, snapshot().MetricsText())
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return func() { _ = srv.Close() }, ln.Addr().String()
}
