package progresshttp_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"intango/internal/experiment"
	"intango/internal/experiment/progresshttp"
	"intango/internal/obs"
)

// TestServe drives the HTTP endpoint directly against fixed feeds.
func TestServe(t *testing.T) {
	snap := experiment.ProgressSnapshot{
		Done: 3, Total: 4, Success: 2, Failure2: 1,
		Strategies: []experiment.StrategyProgress{
			{Strategy: "a", Done: 2, Success: 1},
			{Strategy: `q"uo\te` + "\n", Done: 1},
		},
	}
	series := obs.TimeSeriesSnapshot{Points: []obs.SeriesPoint{
		{T: 0, Values: map[string]float64{"done": 0}},
		{T: 0.5, Values: map[string]float64{"done": 3}},
	}}
	feeds := experiment.ProgressFeeds{
		Snapshot: func() experiment.ProgressSnapshot { return snap },
		Series:   func() obs.TimeSeriesSnapshot { return series },
	}
	stop, addr := progresshttp.Serve(feeds, nil, "127.0.0.1:0")
	if addr == "" {
		t.Fatal("no endpoint bound")
	}
	defer stop()

	resp, err := http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var got experiment.ProgressSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Done != 3 || got.Total != 4 {
		t.Fatalf("http snapshot = %+v", got)
	}

	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE trials_done gauge",
		"trials_done 3",
		"trials_total 4",
		`strategy_success{strategy="a"} 1`,
		`strategy_done{strategy="q\"uo\\te\n"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get("http://" + addr + "/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	var ts obs.TimeSeriesSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&ts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ts.Points) != 2 || ts.Points[1].Values["done"] != 3 {
		t.Fatalf("timeseries = %+v", ts)
	}
}

// TestServeBindFailure: an unusable address degrades to a diagnostic.
func TestServeBindFailure(t *testing.T) {
	var buf strings.Builder
	feeds := experiment.ProgressFeeds{
		Snapshot: func() experiment.ProgressSnapshot { return experiment.ProgressSnapshot{} },
	}
	stop, addr := progresshttp.Serve(feeds, &buf, "256.0.0.1:0")
	if stop != nil || addr != "" {
		t.Fatalf("bind to bogus address succeeded: %q", addr)
	}
	if !strings.Contains(buf.String(), "unavailable") {
		t.Fatalf("missing diagnostic, got %q", buf.String())
	}
}

// TestCampaignEndpointWiring: importing this package is all it takes —
// a campaign with HTTPAddr set binds the endpoint through the
// registered hook.
func TestCampaignEndpointWiring(t *testing.T) {
	r := experiment.NewRunner(42)
	r.Workers = 2
	r.Progress = &experiment.ProgressOptions{Interval: time.Hour, HTTPAddr: "127.0.0.1:0"}
	experiment.RunTable1Parallel(r, experiment.Scale{VPs: 1, Servers: 1, Trials: 1})
	if r.ProgressAddr() == "" {
		t.Fatal("campaign never bound the progress endpoint")
	}
}

// TestTimeseriesMidCampaign scrapes /timeseries while a campaign is
// still running and asserts the sampler has produced at least the
// baseline plus one interval sample.
func TestTimeseriesMidCampaign(t *testing.T) {
	r := experiment.NewRunner(7)
	r.Workers = 1
	r.Progress = &experiment.ProgressOptions{Interval: time.Millisecond, HTTPAddr: "127.0.0.1:0"}

	done := make(chan struct{})
	go func() {
		defer close(done)
		experiment.RunTable1Parallel(r, experiment.Scale{VPs: 1, Servers: 1, Trials: 2})
	}()

	// Wait for the endpoint to bind, then poll until two samples show.
	var addr string
	for i := 0; i < 1000 && addr == ""; i++ {
		addr = r.ProgressAddr()
		time.Sleep(time.Millisecond)
	}
	if addr == "" {
		<-done
		t.Fatal("campaign never bound the progress endpoint")
	}
	deadline := time.Now().Add(10 * time.Second)
	var ts obs.TimeSeriesSnapshot
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/timeseries")
		if err != nil {
			break // campaign finished and closed the endpoint
		}
		err = json.NewDecoder(resp.Body).Decode(&ts)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode /timeseries: %v", err)
		}
		if len(ts.Points) >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	if len(ts.Points) < 2 {
		// The campaign may have outrun the scraper; the retained series
		// must still carry the baseline and closing samples.
		ts = r.ProgressSeries()
	}
	if len(ts.Points) < 2 {
		t.Fatalf("timeseries has %d points, want >= 2", len(ts.Points))
	}
	if ts.Points[0].T > ts.Points[len(ts.Points)-1].T {
		t.Fatal("timeseries not in time order")
	}
	if _, ok := ts.Points[0].Values["done"]; !ok {
		t.Fatalf("sample missing done value: %+v", ts.Points[0])
	}
}
