package progresshttp_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"intango/internal/experiment"
	"intango/internal/experiment/progresshttp"
	"intango/internal/fleet"
	"intango/internal/obs"
)

// TestServe drives the HTTP endpoint directly against fixed feeds.
func TestServe(t *testing.T) {
	snap := experiment.ProgressSnapshot{
		Done: 3, Total: 4, Success: 2, Failure2: 1,
		Strategies: []experiment.StrategyProgress{
			{Strategy: "a", Done: 2, Success: 1},
			{Strategy: `q"uo\te` + "\n", Done: 1},
		},
	}
	series := obs.TimeSeriesSnapshot{Points: []obs.SeriesPoint{
		{T: 0, Values: map[string]float64{"done": 0}},
		{T: 0.5, Values: map[string]float64{"done": 3}},
	}}
	feeds := experiment.ProgressFeeds{
		Snapshot: func() experiment.ProgressSnapshot { return snap },
		Series:   func() obs.TimeSeriesSnapshot { return series },
	}
	stop, addr := progresshttp.Serve(feeds, nil, "127.0.0.1:0")
	if addr == "" {
		t.Fatal("no endpoint bound")
	}
	defer stop()

	resp, err := http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var got experiment.ProgressSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Done != 3 || got.Total != 4 {
		t.Fatalf("http snapshot = %+v", got)
	}

	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE trials_done gauge",
		"trials_done 3",
		"trials_total 4",
		`strategy_success{strategy="a"} 1`,
		`strategy_done{strategy="q\"uo\\te\n"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get("http://" + addr + "/timeseries")
	if err != nil {
		t.Fatal(err)
	}
	var ts obs.TimeSeriesSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&ts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ts.Points) != 2 || ts.Points[1].Values["done"] != 3 {
		t.Fatalf("timeseries = %+v", ts)
	}
}

// TestServeBindFailure: an unusable address degrades to a diagnostic.
func TestServeBindFailure(t *testing.T) {
	var buf strings.Builder
	feeds := experiment.ProgressFeeds{
		Snapshot: func() experiment.ProgressSnapshot { return experiment.ProgressSnapshot{} },
	}
	stop, addr := progresshttp.Serve(feeds, &buf, "256.0.0.1:0")
	if stop != nil || addr != "" {
		t.Fatalf("bind to bogus address succeeded: %q", addr)
	}
	if !strings.Contains(buf.String(), "unavailable") {
		t.Fatalf("missing diagnostic, got %q", buf.String())
	}
}

// TestCampaignEndpointWiring: importing this package is all it takes —
// a campaign with HTTPAddr set binds the endpoint through the
// registered hook.
func TestCampaignEndpointWiring(t *testing.T) {
	r := experiment.NewRunner(42)
	r.Workers = 2
	r.Progress = &experiment.ProgressOptions{Interval: time.Hour, HTTPAddr: "127.0.0.1:0"}
	experiment.RunTable1Parallel(r, experiment.Scale{VPs: 1, Servers: 1, Trials: 1})
	if r.ProgressAddr() == "" {
		t.Fatal("campaign never bound the progress endpoint")
	}
}

// TestTimeseriesMidCampaign scrapes /timeseries while a campaign is
// still running and asserts the sampler has produced at least the
// baseline plus one interval sample.
func TestTimeseriesMidCampaign(t *testing.T) {
	r := experiment.NewRunner(7)
	r.Workers = 1
	r.Progress = &experiment.ProgressOptions{Interval: time.Millisecond, HTTPAddr: "127.0.0.1:0"}

	done := make(chan struct{})
	go func() {
		defer close(done)
		experiment.RunTable1Parallel(r, experiment.Scale{VPs: 1, Servers: 1, Trials: 2})
	}()

	// Wait for the endpoint to bind, then poll until two samples show.
	var addr string
	for i := 0; i < 1000 && addr == ""; i++ {
		addr = r.ProgressAddr()
		time.Sleep(time.Millisecond)
	}
	if addr == "" {
		<-done
		t.Fatal("campaign never bound the progress endpoint")
	}
	deadline := time.Now().Add(10 * time.Second)
	var ts obs.TimeSeriesSnapshot
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/timeseries")
		if err != nil {
			break // campaign finished and closed the endpoint
		}
		err = json.NewDecoder(resp.Body).Decode(&ts)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode /timeseries: %v", err)
		}
		if len(ts.Points) >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	if len(ts.Points) < 2 {
		// The campaign may have outrun the scraper; the retained series
		// must still carry the baseline and closing samples.
		ts = r.ProgressSeries()
	}
	if len(ts.Points) < 2 {
		t.Fatalf("timeseries has %d points, want >= 2", len(ts.Points))
	}
	if ts.Points[0].T > ts.Points[len(ts.Points)-1].T {
		t.Fatal("timeseries not in time order")
	}
	if _, ok := ts.Points[0].Values["done"]; !ok {
		t.Fatalf("sample missing done value: %+v", ts.Points[0])
	}
}

// TestServeFleet drives the fleet plane against fixed feeds: /shards,
// /progress, /metrics (shard labels + fleet rollups), /timeseries
// (stitched per-shard curves), and /manifest.
func TestServeFleet(t *testing.T) {
	feeds := fleet.Feeds{
		Shards: func() fleet.ShardsView {
			return fleet.ShardsView{
				Campaign: "table1", Total: 40, Done: 13, ShardsDone: 1,
				Shards: []fleet.ShardStatus{
					{ID: 0, State: "done", JobStart: 0, JobEnd: 10, Cursor: 10, Done: 10, Success: 7, Frames: 2},
					{ID: 1, State: "running", JobStart: 10, JobEnd: 20, Cursor: 13, Done: 3, Success: 2, Frames: 1, LastFrameAgeSec: 0.5, Resumed: true},
				},
			}
		},
		Progress: func() experiment.ProgressSnapshot {
			return experiment.ProgressSnapshot{Done: 13, Total: 40, Success: 9}
		},
		Metrics: func() string {
			return "fleet_shards 2\nshard_done{shard=\"0\"} 10\nshard_done{shard=\"1\"} 3\n"
		},
		Series: func() fleet.SeriesView {
			return fleet.SeriesView{
				Fleet: obs.TimeSeriesSnapshot{Points: []obs.SeriesPoint{{T: 0, Values: map[string]float64{"done": 0}}}},
				Shards: map[string]obs.TimeSeriesSnapshot{
					"0": {Points: []obs.SeriesPoint{{T: 0.1, Values: map[string]float64{"done": 10}}}},
				},
			}
		},
		Manifest: func() fleet.Manifest {
			return fleet.Manifest{Version: 1, Campaign: "table1", Seed: 42, TotalJobs: 40}
		},
	}
	stop, addr := progresshttp.ServeFleet(feeds, nil, "127.0.0.1:0")
	if addr == "" {
		t.Fatal("no fleet plane bound")
	}
	defer stop()

	var sv fleet.ShardsView
	getJSON(t, addr, "/shards", &sv)
	if len(sv.Shards) != 2 || sv.Shards[1].State != "running" || !sv.Shards[1].Resumed {
		t.Fatalf("/shards = %+v", sv)
	}
	var prog experiment.ProgressSnapshot
	getJSON(t, addr, "/progress", &prog)
	if prog.Done != 13 || prog.Total != 40 {
		t.Fatalf("/progress = %+v", prog)
	}
	var series fleet.SeriesView
	getJSON(t, addr, "/timeseries", &series)
	if len(series.Shards["0"].Points) != 1 {
		t.Fatalf("/timeseries = %+v", series)
	}
	var man fleet.Manifest
	getJSON(t, addr, "/manifest", &man)
	if man.Campaign != "table1" || man.Seed != 42 {
		t.Fatalf("/manifest = %+v", man)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `shard_done{shard="1"} 3`) {
		t.Fatalf("/metrics missing shard label:\n%s", body)
	}
}

func getJSON(t *testing.T, addr, path string, into any) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s content type %q", path, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
}

// TestFleetPlaneLiveCampaign: a real coordinator with HTTPAddr set
// binds the plane through the init-registered hook; the fleet metrics
// exposition carries shard labels and the manifest carries canonical
// strategy specs — scraped live, mid-campaign, via the OnFrame hook.
func TestFleetPlaneLiveCampaign(t *testing.T) {
	r := experiment.NewRunner(42)
	var coord *fleet.Coordinator
	scraped := make(chan string, 1)
	opts := fleet.Options{
		Shards: 2, Procs: 1, CheckpointEvery: 8, HTTPAddr: "127.0.0.1:0",
		OnFrame: func(_, total int) error {
			if total == 1 {
				resp, err := http.Get("http://" + coord.Addr() + "/metrics")
				if err != nil {
					t.Errorf("mid-campaign scrape: %v", err)
					return nil
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				select {
				case scraped <- string(body):
				default:
				}
			}
			return nil
		},
	}
	var err error
	coord, err = fleet.New(r, experiment.Scale{VPs: 1, Servers: 1, Trials: 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials == 0 {
		t.Fatal("campaign ran no trials")
	}
	select {
	case text := <-scraped:
		for _, want := range []string{"fleet_shards 2", `shard_cursor{shard="0"}`, "# TYPE shard_done gauge", "trials_total"} {
			if !strings.Contains(text, want) {
				t.Errorf("live /metrics missing %q:\n%s", want, text)
			}
		}
	default:
		t.Fatal("no mid-campaign scrape happened")
	}
}

// TestFleetPlaneConcurrentScrapeShutdown hammers every fleet endpoint
// from several goroutines while the campaign runs to completion and
// the coordinator tears the server down — the race detector's view of
// the scrape/shutdown window. Requests failing after shutdown are fine;
// data races and panics are not.
func TestFleetPlaneConcurrentScrapeShutdown(t *testing.T) {
	r := experiment.NewRunner(7)
	coord, err := fleet.New(r, experiment.Scale{VPs: 1, Servers: 2, Trials: 1}, fleet.Options{
		Shards: 3, Procs: 2, CheckpointEvery: 4, HTTPAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		if _, err := coord.Run(); err != nil {
			t.Errorf("fleet run: %v", err)
		}
	}()
	<-started
	var addr string
	for i := 0; i < 2000 && addr == ""; i++ {
		addr = coord.Addr()
		time.Sleep(time.Millisecond)
	}
	if addr == "" {
		<-done
		t.Skip("campaign finished before the plane bound")
	}
	var wg sync.WaitGroup
	for _, path := range []string{"/shards", "/progress", "/metrics", "/timeseries", "/manifest"} {
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					resp, err := http.Get("http://" + addr + p)
					if err != nil {
						return // server shut down mid-scrape: expected
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}(path)
		}
	}
	<-done
	wg.Wait()
}
