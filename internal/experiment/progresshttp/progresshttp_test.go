package progresshttp_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"intango/internal/experiment"
	"intango/internal/experiment/progresshttp"
)

// TestServe drives the HTTP endpoint directly against a fixed
// snapshot.
func TestServe(t *testing.T) {
	snap := experiment.ProgressSnapshot{
		Done: 3, Total: 4, Success: 2, Failure2: 1,
		Strategies: []experiment.StrategyProgress{{Strategy: "a", Done: 2, Success: 1}},
	}
	stop, addr := progresshttp.Serve(func() experiment.ProgressSnapshot { return snap }, nil, "127.0.0.1:0")
	if addr == "" {
		t.Fatal("no endpoint bound")
	}
	defer stop()

	resp, err := http.Get("http://" + addr + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var got experiment.ProgressSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Done != 3 || got.Total != 4 {
		t.Fatalf("http snapshot = %+v", got)
	}

	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{"trials_done 3", "trials_total 4", `strategy_success{strategy="a"} 1`} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestServeBindFailure: an unusable address degrades to a diagnostic.
func TestServeBindFailure(t *testing.T) {
	var buf strings.Builder
	stop, addr := progresshttp.Serve(func() experiment.ProgressSnapshot { return experiment.ProgressSnapshot{} }, &buf, "256.0.0.1:0")
	if stop != nil || addr != "" {
		t.Fatalf("bind to bogus address succeeded: %q", addr)
	}
	if !strings.Contains(buf.String(), "unavailable") {
		t.Fatalf("missing diagnostic, got %q", buf.String())
	}
}

// TestCampaignEndpointWiring: importing this package is all it takes —
// a campaign with HTTPAddr set binds the endpoint through the
// registered hook.
func TestCampaignEndpointWiring(t *testing.T) {
	r := experiment.NewRunner(42)
	r.Workers = 2
	r.Progress = &experiment.ProgressOptions{Interval: time.Hour, HTTPAddr: "127.0.0.1:0"}
	experiment.RunTable1Parallel(r, experiment.Scale{VPs: 1, Servers: 1, Trials: 1})
	if r.ProgressAddr() == "" {
		t.Fatal("campaign never bound the progress endpoint")
	}
}
