package experiment

import (
	"sort"
	"time"

	"intango/internal/obs"
	"intango/internal/trace"
)

// DefaultMaxFailures is how many failing-trial flight-recorder traces a
// sink retains by default.
const DefaultMaxFailures = 4

// ObsSink accumulates observability output across a batch of trials: a
// counter registry shared by every instrumented subsystem, per-trial
// event volumes for the campaign aggregate, and the flight-recorder
// traces of a bounded, deterministically chosen set of failing trials.
//
// Parallel runs give each worker its own shard (see shard/merge);
// because counter merging is addition and failure retention is
// minimum-N by a total trial order, the merged sink is bit-identical to
// a serial run over the same jobs.
type ObsSink struct {
	// Registry receives every counter increment from the attached
	// subsystems plus the sink's own trials.* outcome counters.
	Registry *obs.Registry
	// MaxFailures bounds retained failure traces (<=0 keeps none).
	MaxFailures int

	trials         int
	eventsPerTrial []int
	failures       []TrialTrace
}

// TrialTrace is the flight-recorder snapshot of one failing trial,
// keyed by the parameters that uniquely identify the trial.
type TrialTrace struct {
	Strategy  string
	VP        string
	Server    string
	Sensitive bool
	Trial     int
	Outcome   Outcome
	// Dropped counts ring-evicted events preceding Events.
	Dropped uint64
	Events  []obs.Event
	// Bundle is the full causal trace, retained only when the runner
	// ran with Causal set; nil otherwise.
	Bundle *trace.Trace
}

// NewObsSink returns an empty sink with a fresh registry.
func NewObsSink() *ObsSink {
	return &ObsSink{Registry: obs.NewRegistry(), MaxFailures: DefaultMaxFailures}
}

// shard returns an empty sink sharing no state with s. RunParallel
// hands one to each worker so the trial hot path never contends on a
// lock, then folds them back with merge after the barrier.
func (s *ObsSink) shard() *ObsSink {
	return &ObsSink{Registry: obs.NewRegistry(), MaxFailures: s.MaxFailures}
}

// merge folds a worker shard into s. Counter merge is addition, so any
// merge order yields the same totals.
func (s *ObsSink) merge(sh *ObsSink) {
	if sh == nil {
		return
	}
	s.Registry.Merge(sh.Registry)
	s.trials += sh.trials
	s.eventsPerTrial = append(s.eventsPerTrial, sh.eventsPerTrial...)
	s.failures = append(s.failures, sh.failures...)
	s.compact()
}

// absorb records one finished trial: the simulator's event count, the
// outcome, the flight-recorder volume, and — on failure — the trace.
func (s *ObsSink) absorb(rg *rig, label, vp, srv string, sensitive bool, trial int, out Outcome, rec *obs.Recorder, bundle *trace.Trace) {
	rg.net.FlushCounters()
	s.Registry.Add("netem.events", rg.sim.Steps())
	s.Registry.Inc("trials.total")
	s.Registry.Inc("trials." + out.String())
	s.trials++
	s.eventsPerTrial = append(s.eventsPerTrial, int(rec.Total()))
	if out != Success {
		s.failures = append(s.failures, TrialTrace{
			Strategy: label, VP: vp, Server: srv,
			Sensitive: sensitive, Trial: trial, Outcome: out,
			Dropped: rec.Dropped(), Events: rec.Events(),
			Bundle: bundle,
		})
		s.compact()
	}
}

// absorbSeries records a whole RunINTANGSeries simulation: one shared
// rig, many trials. Traces are not retained (the single ring spans all
// trials), only counters and throughput.
func (s *ObsSink) absorbSeries(rg *rig, outcomes []Outcome) {
	rg.net.FlushCounters()
	s.Registry.Add("netem.events", rg.sim.Steps())
	for _, out := range outcomes {
		s.Registry.Inc("trials.total")
		s.Registry.Inc("trials." + out.String())
		s.trials++
	}
}

// compact bounds the failure slice without breaking determinism: once
// it doubles past MaxFailures, sort by the trial key and keep the
// smallest MaxFailures. An element is only ever dropped when
// MaxFailures smaller-keyed elements are already retained, so the
// per-shard minimum-N set survives every compaction — and the global
// minimum-N set is always contained in the union of shard minimum-N
// sets, which is what makes serial and parallel retention identical.
func (s *ObsSink) compact() {
	if s.MaxFailures <= 0 {
		s.failures = nil
		return
	}
	if len(s.failures) <= 2*s.MaxFailures {
		return
	}
	sortTraces(s.failures)
	s.failures = s.failures[:s.MaxFailures:s.MaxFailures]
}

// Finish puts the retained failures in their final deterministic order
// and applies the retention bound. RunParallel calls it after merging;
// serial users call it before reading Failures.
func (s *ObsSink) Finish() {
	sortTraces(s.failures)
	if s.MaxFailures > 0 && len(s.failures) > s.MaxFailures {
		s.failures = s.failures[:s.MaxFailures:s.MaxFailures]
	}
}

// sortTraces orders by (Strategy, VP, Server, Sensitive, Trial) — a
// total order over trial identities, so ties are impossible.
func sortTraces(ts []TrialTrace) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.Strategy != b.Strategy {
			return a.Strategy < b.Strategy
		}
		if a.VP != b.VP {
			return a.VP < b.VP
		}
		if a.Server != b.Server {
			return a.Server < b.Server
		}
		if a.Sensitive != b.Sensitive {
			return !a.Sensitive
		}
		return a.Trial < b.Trial
	})
}

// Trials returns how many trials the sink absorbed.
func (s *ObsSink) Trials() int { return s.trials }

// Failures returns the retained failing-trial traces (call Finish
// first for the deterministic final set).
func (s *ObsSink) Failures() []TrialTrace { return s.failures }

// Snapshot copies the current counter values.
func (s *ObsSink) Snapshot() obs.Snapshot { return s.Registry.Snapshot() }

// Aggregate summarises the campaign: throughput against wall time and
// the distribution of flight-recorder events per trial. The percentile
// inputs are sorted first, so the result is independent of absorb
// order (serial vs parallel).
func (s *ObsSink) Aggregate(wall time.Duration) obs.Aggregate {
	agg := obs.Aggregate{Trials: s.trials, Wall: wall}
	sorted := append([]int(nil), s.eventsPerTrial...)
	sort.Ints(sorted)
	for _, n := range sorted {
		agg.TotalEvents += uint64(n)
	}
	if wall > 0 {
		agg.TrialsPerSec = float64(s.trials) / wall.Seconds()
	}
	agg.EventsPerTrialP50 = obs.Percentile(sorted, 50)
	agg.EventsPerTrialP99 = obs.Percentile(sorted, 99)
	return agg
}
