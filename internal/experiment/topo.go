package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"intango/internal/censor"
	"intango/internal/gfw"
	"intango/internal/middlebox"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/topo"
)

// This file derives each trial's declarative topology (internal/topo)
// from the (vantage point, server) pair and compiles it onto the netem
// substrate. The derived spec for a measured path is a symmetric
// linear chain, which the compiler lowers to the allocation-free
// netem.Path — so the trial hot path is unchanged from the hand-built
// rigs. Runner.Topo overrides the derivation with an explicit spec
// (graph shapes compile to a netem.Fabric), which is how the ECMP
// multi-device scenarios run through the standard campaign machinery.

// topoKey identifies a derived linear topology shape. Everything else
// about a trial (device behaviours, middlebox RNG, endpoints) binds at
// instantiation time, so one cached Program serves every trial with
// the same shape.
type topoKey struct {
	hops, gfwHop int
	profile      middlebox.ProfileName
	mix          DeviceMix
	fw           bool
	loss         float64
}

var (
	topoMu       sync.RWMutex
	topoPrograms = make(map[topoKey]*topo.Program)
	topoOverride = make(map[string]*topo.Program)
)

// derivedSpec builds the canonical linear spec for a shape key:
// client — r0..r(hops-1) — server, 1 ms symmetric links, access-link
// loss, client-side middlebox profile on the first hop, GFW tap (plus
// its in-path IP filter) at the tap hop, and optionally a server-side
// firewall two hops short of the server.
func derivedSpec(k topoKey) topo.Spec {
	var spec topo.Spec
	spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: "c", Kind: topo.KindClient})
	for i := 0; i < k.hops; i++ {
		n := topo.NodeSpec{Name: fmt.Sprintf("r%d", i), Kind: topo.KindRouter, Label: "r"}
		if i == 0 {
			n.Attach = append(n.Attach, topo.Attachment{Ref: "mbox:" + string(k.profile)})
		}
		if i == k.gfwHop {
			devs := []string{"gfw-new"}
			switch k.mix {
			case OldOnly:
				devs = []string{"gfw-old"}
			case BothModels:
				devs = []string{"gfw-old", "gfw-new"}
			}
			for _, d := range devs {
				n.Attach = append(n.Attach,
					topo.Attachment{Tap: true, Ref: d},
					topo.Attachment{Ref: "ipf:" + d})
			}
		}
		if k.fw && i == k.hops-2 {
			n.Attach = append(n.Attach, topo.Attachment{Ref: "server-fw"})
		}
		spec.Nodes = append(spec.Nodes, n)
	}
	spec.Nodes = append(spec.Nodes, topo.NodeSpec{Name: "s", Kind: topo.KindServer})
	link := func(from, to string, loss float64) {
		spec.Links = append(spec.Links,
			topo.LinkSpec{From: from, To: to, Latency: time.Millisecond, Loss: loss},
			topo.LinkSpec{From: to, To: from, Latency: time.Millisecond, Loss: loss})
	}
	link("c", "r0", k.loss)
	for i := 0; i+1 < k.hops; i++ {
		link(fmt.Sprintf("r%d", i), fmt.Sprintf("r%d", i+1), 0)
	}
	link(fmt.Sprintf("r%d", k.hops-1), "s", 0)
	return spec
}

// shapeKey derives the topology shape for a trial, with the tap hop
// clamped onto the (possibly route-shifted) path.
func shapeKey(vp VantagePoint, srv Server, hops int) topoKey {
	gfwHop := srv.GFWHop
	if gfwHop >= hops {
		gfwHop = hops - 1
	}
	if gfwHop < 0 {
		gfwHop = 0
	}
	return topoKey{
		hops: hops, gfwHop: gfwHop,
		profile: vp.Profile, mix: srv.Mix,
		fw:   srv.ServerSideFirewall && hops >= 3,
		loss: srv.LossRate,
	}
}

// program returns the compiled Program for a trial: the cached derived
// linear program, or the parsed Runner.Topo override. Programs are
// immutable and shared across trials and workers.
func (r *Runner) program(vp VantagePoint, srv Server, hops int) *topo.Program {
	if r.Topo != "" {
		return overrideProgram(r.Topo)
	}
	key := shapeKey(vp, srv, hops)
	topoMu.RLock()
	prog := topoPrograms[key]
	topoMu.RUnlock()
	if prog != nil {
		return prog
	}
	prog, err := topo.NewProgram(derivedSpec(key))
	if err != nil {
		panic(fmt.Sprintf("experiment: derived topology invalid: %v", err))
	}
	if !prog.Linear() {
		panic("experiment: derived topology did not take the linear fast path")
	}
	topoMu.Lock()
	topoPrograms[key] = prog
	topoMu.Unlock()
	return prog
}

// overrideProgram parses and caches an explicit Runner.Topo spec. An
// invalid override is a configuration error and panics with the parse
// or validation message.
func overrideProgram(text string) *topo.Program {
	topoMu.RLock()
	prog := topoOverride[text]
	topoMu.RUnlock()
	if prog != nil {
		return prog
	}
	spec, err := topo.ParseTopo(text)
	if err != nil {
		panic(fmt.Sprintf("experiment: Runner.Topo: %v", err))
	}
	prog, err = topo.NewProgram(spec)
	if err != nil {
		panic(fmt.Sprintf("experiment: Runner.Topo: %v", err))
	}
	topoMu.Lock()
	topoOverride[text] = prog
	topoMu.Unlock()
	return prog
}

// TopoSpec returns the canonical topology spec derived for a (vantage
// point, server) pair at its measured hop count — what `-what topo`
// prints. Route dynamics perturb the per-trial shape around this.
func (r *Runner) TopoSpec(vp VantagePoint, srv Server) topo.Spec {
	return r.program(vp, srv, srv.Hops).Spec()
}

// GraphDemoTopo is the ECMP demonstration topology: two parallel GFW
// devices on equal-cost branches (the load-balanced device clusters of
// §2.2) and an asymmetric reverse route that bypasses both taps. The
// return links b1>a and b2>a exist so device-injected RSTs reach the
// client; hop-count routing never selects them for forward traffic.
const GraphDemoTopo = "node:c(client) " +
	"node:a(router) " +
	"node:b1(router,tap=gfw-new,proc=ipf:gfw-new) " +
	"node:b2(router,tap=gfw-new.2,proc=ipf:gfw-new.2) " +
	"node:x(router) node:rr(router) node:s(server) " +
	"link:c>a(lat=1ms,loss=0.006) link:a>c(lat=1ms,loss=0.006) " +
	"link:a>b1(lat=1ms) link:a>b2(lat=1ms) " +
	"link:b1>x(lat=1ms) link:b2>x(lat=1ms) link:x>s(lat=1ms) " +
	"link:s>rr(lat=1ms) link:rr>a(lat=1ms) " +
	"link:b1>a(lat=1ms) link:b2>a(lat=1ms) link:x>a(lat=1ms) " +
	"ecmp(seed=1)"

// WriteTopoSpecs writes the canonical derived topology spec for every
// (vantage point, server) pair of a campaign scale — the `-what topo`
// dump. Each line is a complete spec; feeding it back through
// Runner.Topo reproduces the pair's substrate exactly.
func WriteTopoSpecs(w io.Writer, r *Runner, sc Scale) {
	vps := VantagePoints()[:sc.VPs]
	servers := Servers(sc.Servers, r.Cal, r.Seed)
	fmt.Fprintf(w, "== derived topology specs (%d VPs × %d servers) ==\n", len(vps), len(servers))
	for _, vp := range vps {
		for _, srv := range servers {
			fmt.Fprintf(w, "%s ~ %s:\n  %s\n", vp.Name, srv.Name, r.TopoSpec(vp, srv).String())
		}
	}
}

// FormatTopoDemo compiles the ECMP demo topology and shows what the
// graph fabric adds over a linear path: the canonical spec, the
// compiled fabric, and the seeded per-flow route selection splitting
// flows across the two parallel censor devices while the reverse route
// returns asymmetrically past both taps.
func FormatTopoDemo(seed int64) string {
	r := NewRunner(seed)
	r.Topo = GraphDemoTopo
	vp := VantagePoints()[0]
	srv := Servers(1, r.Cal, seed)[0]
	rg := r.build(vp, srv, 1, r.packetPool())
	fab, ok := rg.net.(*netem.Fabric)
	if !ok {
		return "topo demo: unexpected linear compilation\n"
	}
	var b strings.Builder
	b.WriteString("== ECMP multi-device demo (graph fabric) ==\n")
	b.WriteString("spec:\n  " + overrideProgram(GraphDemoTopo).Spec().String() + "\n")
	b.WriteString("compiled:\n  " + fab.Describe() + "\n")
	b.WriteString("per-flow routes (hash-based ECMP, seed pinned in spec):\n")
	via := map[string]int{}
	const flows = 16
	for i := 0; i < flows; i++ {
		sport := uint16(32768 + i)
		pkt := packet.NewTCP(vp.Addr, sport, srv.Addr, 80, packet.FlagSYN, 1, 0, nil)
		fwd := strings.Join(fab.ForwardRoute(pkt), ">")
		rev := strings.Join(fab.ReverseRoute(pkt), ">")
		for _, branch := range []string{"b1", "b2"} {
			if strings.Contains(fwd, ">"+branch+">") {
				via[branch]++
			}
		}
		if i < 4 {
			fmt.Fprintf(&b, "  :%d  fwd %s   rev %s\n", sport, fwd, rev)
		}
	}
	fmt.Fprintf(&b, "branch split over %d flows: b1=%d b2=%d (reverse route bypasses both taps)\n",
		flows, via["b1"], via["b2"])
	return b.String()
}

// rigBinder resolves a topology's attachment references into the live
// processors of one trial, drawing from the trial and pair RNGs in
// node-declaration order — the same draw sequence the hand-built rigs
// used. The reference vocabulary:
//
//	mbox:<profile>  client-side middlebox chain (Table 2 profile)
//	gfw-old...      legacy-model GFW device (tap); name = ref
//	gfw-new...      evolved-model GFW device (tap); name = ref
//	ipf:<name>      the in-path companion filter of the already-bound
//	                device (IP blocklist for the engine, flow blackhole
//	                for the inline blocker)
//	server-fw       server-side stateful firewall
//
// It also implements topo.CensorBinder, so censor= attachments resolve
// through the internal/censor registry (heterogeneous zoos on fabric
// branches).
type rigBinder struct {
	r        *Runner
	vp       VantagePoint
	rg       *rig
	trialRng *rand.Rand
	pairRng  *rand.Rand
	// scratch backs single-processor returns; Bind's contract says the
	// returned slice is not retained, so one array serves every call.
	scratch [1]netem.Processor
}

// Bind implements topo.Binder.
func (b *rigBinder) Bind(ref string, tap bool) ([]netem.Processor, error) {
	switch {
	case strings.HasPrefix(ref, "mbox:"):
		// Always called, even for profiles with no middleboxes: the
		// chain constructor consumes trial RNG identically either way.
		return middlebox.BuildProfile(middlebox.ProfileName(ref[len("mbox:"):]), b.trialRng), nil
	case strings.HasPrefix(ref, "ipf:"):
		name := ref[len("ipf:"):]
		for _, dev := range b.rg.devices {
			if dev.Name() == name {
				b.scratch[0] = dev.Filter()
				return b.scratch[:1], nil
			}
		}
		return nil, fmt.Errorf("ipf ref %q precedes its device", ref)
	case strings.HasPrefix(ref, "gfw-old"), strings.HasPrefix(ref, "gfw-new"):
		if b.r.Censor != "" {
			// Censor override: the device slot is filled by the compiled
			// censor instead of the calibrated GFW population. Spec
			// parameters are authoritative — Cal probabilities and
			// HardenGFW do not apply here.
			comp, err := censor.Resolve(b.r.Censor)
			if err != nil {
				return nil, err
			}
			dev, err := comp.Build(ref, b.trialRng, b.pairRng)
			if err != nil {
				return nil, err
			}
			dev.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
			b.rg.devices = append(b.rg.devices, dev)
			b.scratch[0] = dev
			return b.scratch[:1], nil
		}
		model := gfw.ModelEvolved2017
		if strings.HasPrefix(ref, "gfw-old") {
			model = gfw.ModelKhattak2013
		}
		cfg := gfwConfig(model, b.r.Cal)
		cfg.TorFiltering = b.vp.TorFiltered
		if b.r.HardenGFW != nil {
			b.r.HardenGFW(&cfg)
		}
		dev := gfw.NewDevice(ref, cfg, b.trialRng)
		dev.SetRSTResyncs(b.pairRng.Float64() < b.r.Cal.ResyncOnRSTProb)
		dev.SetSegmentLastWins(b.pairRng.Float64() < b.r.Cal.SegmentLastWinsProb)
		dev.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
		b.rg.devices = append(b.rg.devices, dev)
		b.scratch[0] = dev
		return b.scratch[:1], nil
	case ref == "server-fw":
		b.scratch[0] = middlebox.NewStatefulFirewall("server-side-fw", false)
		return b.scratch[:1], nil
	default:
		return nil, fmt.Errorf("unknown attachment ref %q", ref)
	}
}

// BindCensor implements topo.CensorBinder: a censor= attachment builds
// one live instance from the registry (or raw spec text) at the node,
// returning its tap plus its in-path companion; filter-only censors
// contribute just a processor chain. Instance names carry a per-rig
// ordinal so two attachments of the same censor stay distinguishable
// in traces and stats.
func (b *rigBinder) BindCensor(ref string) (taps, procs []netem.Processor, err error) {
	comp, err := censor.Resolve(ref)
	if err != nil {
		return nil, nil, err
	}
	if chain, ok := comp.BuildChain(b.trialRng); ok {
		return nil, chain, nil
	}
	name := fmt.Sprintf("censor%d:%s", len(b.rg.devices), ref)
	dev, err := comp.Build(name, b.trialRng, b.pairRng)
	if err != nil {
		return nil, nil, err
	}
	dev.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
	b.rg.devices = append(b.rg.devices, dev)
	return []netem.Processor{dev}, []netem.Processor{dev.Filter()}, nil
}

// GraphZooTopo is the heterogeneous censor-zoo demonstration topology:
// a GFW engine and a Turkmenistan-style inline blocker on parallel
// equal-cost branches, each attached declaratively with censor=. Which
// censor a flow meets is decided by the seeded per-flow ECMP hash —
// the cross-censor analogue of GraphDemoTopo's device clusters.
const GraphZooTopo = "node:c(client) " +
	"node:a(router) " +
	"node:b1(router,censor=gfw2017) " +
	"node:b2(router,censor=turkmenistan) " +
	"node:x(router) node:rr(router) node:s(server) " +
	"link:c>a(lat=1ms) link:a>c(lat=1ms) " +
	"link:a>b1(lat=1ms) link:a>b2(lat=1ms) " +
	"link:b1>x(lat=1ms) link:b2>x(lat=1ms) link:x>s(lat=1ms) " +
	"link:s>rr(lat=1ms) link:rr>a(lat=1ms) " +
	"link:b1>a(lat=1ms) link:b2>a(lat=1ms) link:x>a(lat=1ms) " +
	"ecmp(seed=7)"
