package experiment

import (
	"fmt"
	"io"
)

// The Write*Campaign functions produce the exact byte streams
// `cmd/tables -what 1|4|5` prints — header, table, trailing blank line.
// They exist so the CLI and the golden-file regression tests share one
// formatting path: TestTablesMatchGolden regenerates these streams and
// compares them against internal/experiment/testdata/*.golden, pinning
// the strategy refactor to bit-identical output.

// WriteTable1Campaign runs and prints the Table 1 campaign.
func WriteTable1Campaign(w io.Writer, r *Runner, sc Scale) {
	fmt.Fprintf(w, "== Table 1: existing strategies (%d VPs × %d servers × %d trials) ==\n",
		sc.VPs, sc.Servers, sc.Trials)
	fmt.Fprint(w, FormatTable1(RunTable1Parallel(r, sc)))
	fmt.Fprintln(w)
}

// WriteTable4Campaign runs and prints the Table 4 campaign, inside and
// outside blocks plus the persistent-INTANG row.
func WriteTable4Campaign(w io.Writer, r *Runner, sc Scale) {
	fmt.Fprintf(w, "== Table 4: new strategies (%d servers × %d trials) ==\n", sc.Servers, sc.Trials)
	inside := RunTable4Parallel(r, VantagePoints(), Servers(sc.Servers, r.Cal, r.Seed), sc.Trials)
	inside = append(inside, RunTable4INTANG(r,
		VantagePoints(), Servers(sc.Servers/2+1, r.Cal, r.Seed), sc.Trials))
	fmt.Fprint(w, FormatTable4("Inside China", inside))
	outN := sc.Servers / 2
	if outN < 4 {
		outN = 4
	}
	outside := RunTable4Parallel(r, OutsideVantagePoints(),
		OutsideServers(outN, r.Cal, r.Seed), sc.Trials)
	fmt.Fprint(w, FormatTable4("Outside China", outside))
	fmt.Fprintln(w)
}

// WriteTable5Campaign runs and prints the Table 5 validation.
func WriteTable5Campaign(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "== Table 5: preferred insertion-packet constructions ==")
	fmt.Fprint(w, FormatTable5(RunTable5(r)))
	fmt.Fprintln(w)
}
