package experiment

import (
	"runtime"
	"sync"

	"intango/internal/core"
)

// trialJob is one independent simulation to run.
type trialJob struct {
	vp        VantagePoint
	srv       Server
	factory   core.Factory
	sensitive bool
	trial     int
	// sink receives the outcome; index identifies the tally.
	sink int
}

// RunParallel executes a batch of trials across all CPUs. Each trial is
// an isolated simulation with a seed derived only from its own
// parameters, so results are identical to serial execution regardless
// of scheduling.
func (r *Runner) RunParallel(jobs []trialJob, tallies []*Tally) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	ch := make(chan trialJob, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range ch {
				out := r.RunOne(job.vp, job.srv, job.factory, job.sensitive, job.trial)
				mu.Lock()
				tallies[job.sink].Add(out)
				mu.Unlock()
			}
		}()
	}
	for _, job := range jobs {
		ch <- job
	}
	close(ch)
	wg.Wait()
}

// RunTable1Parallel is RunTable1 with trials fanned out across CPUs.
// Results are identical to the serial runner for the same seed.
func RunTable1Parallel(r *Runner, scale Scale) []Table1Row {
	vps := VantagePoints()[:min(scale.VPs, 11)]
	servers := Servers(scale.Servers, r.Cal, r.Seed)
	factories := core.BuiltinFactories()
	specs := table1Strategies()
	rows := make([]Table1Row, len(specs))
	tallies := make([]*Tally, 2*len(specs))
	var jobs []trialJob
	for i, spec := range specs {
		rows[i] = Table1Row{Strategy: spec.group, Discrepancy: spec.disc}
		tallies[2*i] = &rows[i].Sensitive
		tallies[2*i+1] = &rows[i].Clean
		factory := factories[spec.factory]
		for _, vp := range vps {
			for _, srv := range servers {
				for trial := 0; trial < scale.Trials; trial++ {
					jobs = append(jobs, trialJob{vp, srv, factory, true, trial, 2 * i})
					jobs = append(jobs, trialJob{vp, srv, factory, false, trial + scale.Trials, 2*i + 1})
				}
			}
		}
	}
	r.RunParallel(jobs, tallies)
	return rows
}

// RunTable4Parallel fans the Table 4 strategy rows across CPUs.
func RunTable4Parallel(r *Runner, vps []VantagePoint, servers []Server, trials int) []Table4Row {
	factories := core.BuiltinFactories()
	specs := table4Strategies()
	perVP := make([][]Tally, len(specs))
	var jobs []trialJob
	var tallies []*Tally
	for si, spec := range specs {
		perVP[si] = make([]Tally, len(vps))
		factory := factories[spec.factory]
		for vi, vp := range vps {
			sink := len(tallies)
			tallies = append(tallies, &perVP[si][vi])
			for _, srv := range servers {
				for trial := 0; trial < trials; trial++ {
					jobs = append(jobs, trialJob{vp, srv, factory, true, trial, sink})
				}
			}
		}
	}
	r.RunParallel(jobs, tallies)
	rows := make([]Table4Row, len(specs))
	for si, spec := range specs {
		rows[si] = summarizeVPs(spec.label, perVP[si])
	}
	return rows
}
