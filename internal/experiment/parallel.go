package experiment

import (
	"runtime"
	"sync"

	"intango/internal/core"
)

// trialJob is one independent simulation to run.
type trialJob struct {
	vp        VantagePoint
	srv       Server
	factory   core.Factory
	sensitive bool
	trial     int
	// sink receives the outcome; index identifies the tally.
	sink int
	// label names the strategy for observability retention keys.
	label string
}

// RunParallel executes a batch of trials across all CPUs (bounded by
// r.Workers when set). Each trial is an isolated simulation with a
// seed derived only from its own parameters, and every worker
// accumulates into private tally and observability shards that are
// merged only after the barrier — no lock is taken anywhere on the
// trial hot path, and because the merges are order-independent the
// results are bit-identical to serial execution regardless of
// scheduling.
func (r *Runner) RunParallel(jobs []trialJob, tallies []*Tally) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	var prog *progressTracker
	if r.Progress != nil {
		prog = newProgressTracker(jobs, *r.Progress)
		r.progressAddr.Store(prog.Addr())
	}
	var wg sync.WaitGroup
	ch := make(chan trialJob, workers)
	tallyShards := make([][]Tally, workers)
	obsShards := make([]*ObsSink, workers)
	for w := 0; w < workers; w++ {
		tallyShards[w] = make([]Tally, len(tallies))
		if r.Obs != nil {
			obsShards[w] = r.Obs.shard()
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Under PerWorkerPool each worker recycles through its own
			// private pool; otherwise all workers share one sync.Pool.
			pool := r.newWorkerPool()
			for job := range ch {
				out := r.runOne(job.vp, job.srv, job.factory, job.sensitive, job.trial, obsShards[w], job.label, pool)
				tallyShards[w][job.sink].Add(out)
				prog.note(job.label, out)
			}
		}(w)
	}
	for _, job := range jobs {
		ch <- job
	}
	close(ch)
	wg.Wait()
	prog.finish()
	if prog != nil {
		r.progressSeries = prog.Series()
		r.progressFinal = prog.snapshot()
		r.progressRan = true
	}
	for w := range tallyShards {
		for i, t := range tallyShards[w] {
			tallies[i].Merge(t)
		}
		if r.Obs != nil {
			r.Obs.merge(obsShards[w])
		}
	}
	if r.Obs != nil {
		r.Obs.Finish()
	}
}

// RunTable1Parallel is RunTable1 with trials fanned out across CPUs.
// Results are identical to the serial runner for the same seed. The job
// enumeration lives in Table1Cube, shared with the fleet shard
// coordinator, so a sharded campaign partitions exactly this job list.
func RunTable1Parallel(r *Runner, scale Scale) []Table1Row {
	return r.runParallelCube(Table1Cube(r, scale))
}

// RunTable4Parallel fans the Table 4 strategy rows across CPUs.
func RunTable4Parallel(r *Runner, vps []VantagePoint, servers []Server, trials int) []Table4Row {
	specs := table4Strategies()
	perVP := make([][]Tally, len(specs))
	var jobs []trialJob
	var tallies []*Tally
	for si, spec := range specs {
		perVP[si] = make([]Tally, len(vps))
		factory := spec.compile()
		for vi, vp := range vps {
			sink := len(tallies)
			tallies = append(tallies, &perVP[si][vi])
			for _, srv := range servers {
				for trial := 0; trial < trials; trial++ {
					jobs = append(jobs, trialJob{vp, srv, factory, true, trial, sink, spec.name})
				}
			}
		}
	}
	r.RunParallel(jobs, tallies)
	rows := make([]Table4Row, len(specs))
	for si, spec := range specs {
		rows[si] = summarizeVPs(spec.label, perVP[si])
	}
	return rows
}
