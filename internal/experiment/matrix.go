package experiment

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"intango/internal/appsim"
	"intango/internal/censor"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// This file is the strategy × censor matrix runner: the censor-zoo
// analogue of the Table 1 campaign. Where Table 1 sweeps strategies
// against the calibrated GFW population, the matrix sweeps them
// against heterogeneous censors — GFW generations, the
// Turkmenistan-style bidirectional blocker, the Tor active prober —
// each compiled from its declarative spec (internal/censor). One run
// shows in a glance which evasion primitives transfer across censor
// architectures and which exploit GFW-specific TCB behaviour.

// MatrixCell is one (strategy, censor) aggregate.
type MatrixCell struct {
	Strategy string
	Censor   string
	T        Tally
}

// MatrixCensors lists the device censors the default matrix sweeps.
func MatrixCensors() []string {
	return []string{censor.GFW2017, censor.GFW2013, censor.Turkmenistan, censor.TorProber}
}

// matrixStrategies is the compact strategy axis: the no-strategy
// baseline, a TCB-teardown attack (GFW-specific state manipulation),
// out-of-order segmentation (poisons seq-based reassembly), and a
// segmentation that cuts inside the keyword itself — useless against a
// reassembling censor, decisive against per-packet DPI.
func matrixStrategies() []strategySpec {
	t1 := table1Strategies()
	return []strategySpec{
		t1[0].strategySpec, // none
		t1[9].strategySpec, // teardown-rst/ttl
		t1[4].strategySpec, // ooo-tcpseg
		// "GET /search?q=ultrasurf": byte 18 is mid-keyword, so neither
		// segment carries the keyword whole. Succeeds only when the
		// server accepts the crafted segments — strict stacks drop them
		// and the client's native retransmission re-exposes the keyword
		// in one piece (the §5.3 server-cooperation caveat).
		{"inkeyword-tcpseg", "on:first-payload(min=18)[fragment(tcp,at=18)]"},
	}
}

// RunCensorMatrix sweeps the matrix strategies against each censor on
// clean controlled paths (no route dynamics, loss, or server-side
// middleboxes — differences between cells are then attributable to the
// censor alone).
func RunCensorMatrix(r *Runner, censors []string, trials int) []MatrixCell {
	vp := VantagePoints()[0]
	servers := Servers(2, r.Cal, r.Seed)
	for i := range servers {
		servers[i].Mix = EvolvedOnly
		servers[i].ServerSideFirewall = false
		servers[i].RouteDynamicsProb = 0
		servers[i].LossRate = 0
	}
	saved := r.Censor
	defer func() { r.Censor = saved }()
	var cells []MatrixCell
	for _, c := range censors {
		r.Censor = c
		for _, strat := range matrixStrategies() {
			factory := strat.compile()
			cell := MatrixCell{Strategy: strat.name, Censor: c}
			for _, srv := range servers {
				for trial := 0; trial < trials; trial++ {
					cell.T.Add(r.RunOne(vp, srv, factory, true, trial))
				}
			}
			cells = append(cells, cell)
		}
	}
	return cells
}

// FormatCensorMatrix renders the matrix, censors as columns.
func FormatCensorMatrix(cells []MatrixCell) string {
	var censors, strats []string
	seenC := map[string]bool{}
	byKey := map[[2]string]Tally{}
	for _, c := range cells {
		if !seenC[c.Censor] {
			seenC[c.Censor] = true
			censors = append(censors, c.Censor)
		}
		if _, ok := byKey[[2]string{c.Strategy, c.Censor}]; !ok {
			found := false
			for _, s := range strats {
				if s == c.Strategy {
					found = true
					break
				}
			}
			if !found {
				strats = append(strats, c.Strategy)
			}
		}
		byKey[[2]string{c.Strategy, c.Censor}] = c.T
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "strategy \\ censor")
	for _, c := range censors {
		fmt.Fprintf(&b, " %14s", c)
	}
	b.WriteString("\n")
	for _, s := range strats {
		fmt.Fprintf(&b, "%-22s", s)
		for _, c := range censors {
			t := byKey[[2]string{s, c}]
			succ, _, _ := t.Rates()
			fmt.Fprintf(&b, " %13.1f%%", succ)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// proberDemoSession runs one client session against a bridge behind
// the tor-prober censor, lets the active probe complete, then — after
// the pair blocklist has lapsed — tries a fresh connection, which only
// an IP null-route can stop. Returns the built censor instance and the
// fresh connection's outcome.
func proberDemoSession(seed int64, obfs bool) (censor.Instance, bool) {
	comp := censor.MustResolve(censor.TorProber)
	sim := netem.NewSimulator(seed)
	path := &netem.Path{Sim: sim}
	for i := 0; i < 9; i++ {
		path.Hops = append(path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	path.ClientLink.Latency = time.Millisecond
	inst, err := comp.Build("tor-prober", sim.Rand(), rand.New(rand.NewSource(seed^0x70726f6265)))
	if err != nil {
		panic(fmt.Sprintf("experiment: build tor-prober: %v", err))
	}
	inst.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
	path.Hops[3].Taps = []netem.Processor{inst}
	path.Hops[3].Processors = []netem.Processor{inst.Filter()}

	bridge := packet.AddrFrom4(52, 3, 17, 99)
	srv := tcpstack.NewStack(bridge, tcpstack.Linux44(), sim)
	srv.AttachServer(path)
	if obfs {
		appsim.ServeObfsBridge(srv, 9001)
	} else {
		appsim.ServeTorBridge(srv, 9001)
	}
	cli := tcpstack.NewStack(packet.AddrFrom4(10, 1, 1, 1), tcpstack.Linux44(), sim)
	cli.AttachClient(path)

	conn := cli.Connect(bridge, 9001)
	sim.RunFor(500 * time.Millisecond)
	if conn.State() == tcpstack.Established {
		conn.Write(appsim.TorClientHello())
	}
	// Probe delay is 15 s; the pair blocklist from the fingerprint
	// reset lasts 90 s. Wait both out, then test plain reachability.
	sim.RunFor(2 * time.Minute)
	fresh := cli.Connect(bridge, 9001)
	sim.RunFor(500 * time.Millisecond)
	return inst, fresh.State() == tcpstack.Established
}

// FormatProberDemo contrasts the tor-prober censor against a vanilla
// Tor bridge (fingerprint → probe → confirm → IP null-route) and a
// probe-resistant obfuscated bridge (Winter & Lindskog's
// countermeasure: the prober's replayed handshake draws an opaque
// blob, confirmation fails, the IP survives).
func FormatProberDemo(seed int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-12s %-8s %-9s %-9s %-9s\n",
		"bridge", "fingerprint", "probes", "confirmed", "ip-block", "reachable-after")
	for _, tc := range []struct {
		name string
		obfs bool
	}{
		{"vanilla-tor", false},
		{"obfs-bridge", true},
	} {
		inst, reachable := proberDemoSession(seed, tc.obfs)
		fmt.Fprintf(&b, "%-16s %-12d %-8d %-9d %-9d %-9v\n",
			tc.name, inst.Stat("tor-fingerprint"), inst.Stat("tor-probe-launch"),
			inst.Stat("tor-probe-confirm"), inst.Stat("ip-block"), reachable)
	}
	return b.String()
}

// WriteCensorsCampaign writes the `-what censors` artifact: the
// registry's name ↔ canonical-spec table, the strategy × censor
// matrix, and the active-probing demonstration.
func WriteCensorsCampaign(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "== censor zoo: registered censors (canonical specs) ==")
	fmt.Fprint(w, censor.FormatTable())
	fmt.Fprintln(w)
	fmt.Fprintln(w, "== strategy × censor matrix (success rate, sensitive fetches) ==")
	fmt.Fprint(w, FormatCensorMatrix(RunCensorMatrix(r, MatrixCensors(), 4)))
	fmt.Fprintln(w)
	fmt.Fprintln(w, "== active probing: vanilla vs probe-resistant bridge (tor-prober censor) ==")
	fmt.Fprint(w, FormatProberDemo(r.Seed))
}
