package experiment

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"intango/internal/appsim"
	"intango/internal/gfw"
	"intango/internal/intang"
	"intango/internal/middlebox"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// TorResult is one vantage point's §7.3 outcome.
type TorResult struct {
	VP           string
	FilteredPath bool
	// PlainWorks: a bare Tor connection survives the observation
	// period (unfiltered Northern-China paths).
	PlainWorks bool
	// IPBlocked: the bridge IP was null-routed after active probing.
	IPBlocked bool
	// INTANGSuccess is the success rate of INTANG-protected Tor
	// connections (the paper measured 100% over five attempts each).
	INTANGSuccess float64
}

// torRig builds a client—GFW—bridge path for a vantage point.
func (r *Runner) torRig(vp VantagePoint, bridge packet.Addr, seedExtra int64) (*netem.Simulator, *netem.Path, *gfw.Device) {
	sim := netem.NewSimulator(r.pairSeed(vp, Server{Name: bridge.String()}) ^ seedExtra)
	path := &netem.Path{Sim: sim}
	hops := 11
	for i := 0; i < hops; i++ {
		path.Hops = append(path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	path.ClientLink.Latency = time.Millisecond
	if chain := middlebox.BuildProfile(vp.Profile, sim.Rand()); chain != nil {
		path.Hops[0].Processors = chain
	}
	cfg := gfwConfig(gfw.ModelEvolved2017, r.Cal)
	cfg.TorFiltering = vp.TorFiltered
	cfg.ActiveProbeDelay = 15 * time.Second
	dev := gfw.NewDevice("gfw", cfg, sim.Rand())
	dev.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
	path.Hops[3].Taps = []netem.Processor{dev}
	path.Hops[3].Processors = []netem.Processor{dev.IPFilter()}

	srv := tcpstack.NewStack(bridge, tcpstack.Linux44(), sim)
	srv.AttachServer(path)
	appsim.ServeTorBridge(srv, 9001)
	return sim, path, dev
}

// torSession runs one Tor connection with periodic traffic for the
// given duration and reports whether it stayed usable.
func torSession(sim *netem.Simulator, cli *tcpstack.Stack, bridge packet.Addr, duration time.Duration) bool {
	conn := cli.Connect(bridge, 9001)
	sim.RunFor(500 * time.Millisecond)
	if conn.State() != tcpstack.Established {
		return false
	}
	conn.Write(appsim.TorClientHello())
	sim.RunFor(2 * time.Second)
	if conn.GotRST || len(conn.Received()) == 0 {
		return false
	}
	// Periodic, manually generated traffic (§7.3).
	steps := int(duration / (30 * time.Minute))
	if steps < 1 {
		steps = 1
	}
	before := 0
	for i := 0; i < steps; i++ {
		before = len(conn.Received())
		conn.Write([]byte("relay-cell-probe"))
		sim.RunFor(30 * time.Minute)
		if conn.GotRST || len(conn.Received()) == before {
			return false
		}
	}
	return !conn.GotRST && bytes.Contains(conn.Received(), []byte("TORCELL"))
}

// RunTor reproduces §7.3: plain Tor connections from all vantage
// points (working on unfiltered Northern-China paths, probed and
// IP-blocked elsewhere), then INTANG-protected connections on the
// filtered paths.
func RunTor(r *Runner, attempts int) []TorResult {
	bridge := packet.AddrFrom4(52, 3, 17, 99) // EC2-hosted hidden bridge
	var results []TorResult
	for _, vp := range VantagePoints() {
		res := TorResult{VP: vp.Name, FilteredPath: vp.TorFiltered}

		// Plain Tor, observed over two days of periodic traffic.
		sim, path, dev := r.torRig(vp, bridge, 1)
		cli := tcpstack.NewStack(vp.Addr, tcpstack.Linux44(), sim)
		cli.AttachClient(path)
		res.PlainWorks = torSession(sim, cli, bridge, 48*time.Hour)
		// Give the active prober time to confirm and null-route.
		sim.RunFor(time.Minute)
		res.IPBlocked = dev.IsIPBlocked(bridge)

		// INTANG-protected attempts on the same kind of path.
		okCount := 0
		for i := 0; i < attempts; i++ {
			sim2, path2, _ := r.torRig(vp, bridge, int64(100+i))
			cli2 := tcpstack.NewStack(vp.Addr, tcpstack.Linux44(), sim2)
			it := intang.New(sim2, path2, cli2, intang.Options{Candidates: []string{"improved-teardown"}})
			it.Engine.Env.InsertionTTL = 10
			if torSession(sim2, cli2, bridge, 9*time.Hour) {
				okCount++
			}
		}
		res.INTANGSuccess = 100 * float64(okCount) / float64(attempts)
		results = append(results, res)
	}
	return results
}

// FormatTor renders the Tor results.
func FormatTor(results []TorResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-10s %-12s %-10s %-14s\n", "Vantage point", "Filtered", "Plain Tor", "IP block", "INTANG succ.")
	for _, res := range results {
		plain := "blocked"
		if res.PlainWorks {
			plain = "works"
		}
		blocked := "no"
		if res.IPBlocked {
			blocked = "yes"
		}
		fmt.Fprintf(&b, "%-18s %-10v %-12s %-10s %12.0f%%\n", res.VP, res.FilteredPath, plain, blocked, res.INTANGSuccess)
	}
	return b.String()
}

// VPNResult captures the §7.3 OpenVPN observations.
type VPNResult struct {
	Era            string
	DPIFiltering   bool
	PlainSurvives  bool
	INTANGSurvives bool
}

// RunVPN reproduces the two OpenVPN measurements: November 2016 (DPI
// resets active; INTANG rescues the session) and the later re-run
// (filtering discontinued; both survive).
func RunVPN(r *Runner) []VPNResult {
	run := func(era string, filtering bool) VPNResult {
		trial := func(protected bool) bool {
			sim := netem.NewSimulator(2016)
			path := &netem.Path{Sim: sim}
			for i := 0; i < 10; i++ {
				path.Hops = append(path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
			}
			cfg := gfwConfig(gfw.ModelEvolved2017, r.Cal)
			cfg.VPNFiltering = filtering
			dev := gfw.NewDevice("gfw", cfg, sim.Rand())
			dev.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
			path.Hops[3].Taps = []netem.Processor{dev}
			srv := tcpstack.NewStack(packet.AddrFrom4(203, 0, 113, 194), tcpstack.Linux44(), sim)
			srv.AttachServer(path)
			appsim.ServeOpenVPN(srv, 1194)
			cli := tcpstack.NewStack(packet.AddrFrom4(10, 9, 9, 9), tcpstack.Linux44(), sim)
			if protected {
				it := intang.New(sim, path, cli, intang.Options{Candidates: []string{"improved-teardown"}})
				it.Engine.Env.InsertionTTL = 9
			} else {
				cli.AttachClient(path)
			}
			conn := cli.Connect(packet.AddrFrom4(203, 0, 113, 194), 1194)
			sim.RunFor(500 * time.Millisecond)
			if conn.State() != tcpstack.Established {
				return false
			}
			conn.Write(appsim.OpenVPNClientReset())
			sim.RunFor(5 * time.Second)
			return !conn.GotRST && len(conn.Received()) > 2 && conn.Received()[2] == 0x40
		}
		return VPNResult{Era: era, DPIFiltering: filtering, PlainSurvives: trial(false), INTANGSurvives: trial(true)}
	}
	return []VPNResult{
		run("2016-11 (DPI resets active)", true),
		run("2017-04 (filtering discontinued)", false),
	}
}

// FormatVPN renders the VPN results.
func FormatVPN(results []VPNResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %-10s %-12s %-12s\n", "Measurement", "DPI", "plain VPN", "with INTANG")
	for _, res := range results {
		fmt.Fprintf(&b, "%-34s %-10v %-12v %-12v\n", res.Era, res.DPIFiltering, res.PlainSurvives, res.INTANGSurvives)
	}
	return b.String()
}
