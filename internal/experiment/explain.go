package experiment

import (
	"fmt"

	"intango/internal/core"
	"intango/internal/trace"
)

// FindFailingTrial deterministically locates the first failing
// sensitive trial of a strategy over the population, scanning vantage
// points, then servers, then trial indices in order. ok is false when
// every trial in the sweep succeeds.
func (r *Runner) FindFailingTrial(strategyName string, vps []VantagePoint, servers []Server, trials int) (vp VantagePoint, srv Server, trial int, ok bool) {
	factory := core.BuiltinFactories()[strategyName]
	for _, v := range vps {
		for _, s := range servers {
			for t := 0; t < trials; t++ {
				if r.RunOne(v, s, factory, true, t) != Success {
					return v, s, t, true
				}
			}
		}
	}
	return VantagePoint{}, Server{}, 0, false
}

// Explain re-runs one trial with full causal tracing and returns its
// narrative — the human-readable account of what the censor saw, what
// it did, and which packet caused what — together with the trace for
// bundle export.
func (r *Runner) Explain(vp VantagePoint, srv Server, strategyName string, trial int) (string, *trace.Trace) {
	factory := core.BuiltinFactories()[strategyName]
	_, tr := r.RunOneCausal(vp, srv, factory, strategyName, true, trial)
	return tr.Narrative(), tr
}

// ExplainFirstFailure finds the first failing trial of a strategy and
// narrates it. The error is non-nil when the sweep has no failure to
// explain.
func (r *Runner) ExplainFirstFailure(strategyName string, vps []VantagePoint, servers []Server, trials int) (string, *trace.Trace, error) {
	vp, srv, trial, ok := r.FindFailingTrial(strategyName, vps, servers, trials)
	if !ok {
		return "", nil, fmt.Errorf("no failing trial for %s across %d vantage points x %d servers x %d trials",
			strategyName, len(vps), len(servers), trials)
	}
	narrative, tr := r.Explain(vp, srv, strategyName, trial)
	return narrative, tr, nil
}
