//go:build race

package experiment

const raceEnabled = true
