//go:build !race

package experiment

// raceEnabled reports whether the race detector is compiled in; the
// allocation-gate test skips under it (instrumentation allocates).
const raceEnabled = false
