package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// ProgressOptions configures live campaign-progress reporting for
// RunParallel. Reporting only observes atomic counters the workers
// bump — it never touches the trial hot path's determinism.
type ProgressOptions struct {
	// Interval is how often a snapshot line is emitted (default 1s).
	Interval time.Duration
	// W receives the periodic snapshot lines (typically os.Stderr);
	// nil disables printing.
	W io.Writer
	// HTTPAddr, when non-empty, serves live progress over HTTP:
	// /progress returns the snapshot as JSON, /metrics as
	// expvar-style plain text. Use "127.0.0.1:0" for an ephemeral
	// port; the bound address is available via Runner.ProgressAddr
	// while the campaign runs. Serving requires a registered server
	// (import the progresshttp subpackage); without one the option is
	// reported on W and ignored.
	HTTPAddr string
}

// StrategyProgress is the per-strategy slice of a snapshot.
type StrategyProgress struct {
	Strategy string `json:"strategy"`
	Done     int64  `json:"done"`
	Success  int64  `json:"success"`
}

// ProgressSnapshot is one point-in-time view of a running campaign.
type ProgressSnapshot struct {
	Done         int64              `json:"done"`
	Total        int64              `json:"total"`
	TrialsPerSec float64            `json:"trials_per_sec"`
	ETASeconds   float64            `json:"eta_seconds"`
	Success      int64              `json:"success"`
	Failure1     int64              `json:"failure_1"`
	Failure2     int64              `json:"failure_2"`
	Strategies   []StrategyProgress `json:"strategies,omitempty"`
}

// MetricsText renders the snapshot as expvar-style plain text, one
// metric per line — the /metrics view of the progress endpoint.
func (s ProgressSnapshot) MetricsText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trials_done %d\n", s.Done)
	fmt.Fprintf(&b, "trials_total %d\n", s.Total)
	fmt.Fprintf(&b, "trials_per_sec %g\n", s.TrialsPerSec)
	fmt.Fprintf(&b, "eta_seconds %g\n", s.ETASeconds)
	fmt.Fprintf(&b, "outcome_success %d\n", s.Success)
	fmt.Fprintf(&b, "outcome_failure1 %d\n", s.Failure1)
	fmt.Fprintf(&b, "outcome_failure2 %d\n", s.Failure2)
	for _, sp := range s.Strategies {
		fmt.Fprintf(&b, "strategy_done{strategy=%q} %d\n", sp.Strategy, sp.Done)
		fmt.Fprintf(&b, "strategy_success{strategy=%q} %d\n", sp.Strategy, sp.Success)
	}
	return b.String()
}

// progressServer, when registered, serves live snapshots over HTTP.
// It lives behind a hook (see RegisterProgressServer) so this package
// never imports net/http: the http package's init-time heap globals
// would otherwise be marked by every GC cycle of every program linking
// the experiment harness, which is measurable on the trial hot path.
var progressServer func(snapshot func() ProgressSnapshot, diag io.Writer, addr string) (stop func(), bound string)

// RegisterProgressServer installs the HTTP serving implementation used
// when ProgressOptions.HTTPAddr is set. The progresshttp subpackage
// registers itself from init; programs that want the endpoint import
// it, everything else stays free of net/http.
func RegisterProgressServer(f func(snapshot func() ProgressSnapshot, diag io.Writer, addr string) (stop func(), bound string)) {
	progressServer = f
}

// stratCounters is one strategy's counters. The map of strategies is
// built complete before workers start, so workers only ever do atomic
// increments — no locks, no map writes on the hot path.
type stratCounters struct {
	done, success atomic.Int64
}

// progressTracker accumulates campaign progress across workers.
type progressTracker struct {
	total    int64
	start    time.Time
	done     atomic.Int64
	outcomes [3]atomic.Int64
	strats   map[string]*stratCounters
	names    []string // sorted strategy labels

	opts    ProgressOptions
	stop    chan struct{}
	wg      chan struct{}
	stopSrv func()
	addr    string
}

// newProgressTracker sizes the tracker from the job list (labels are
// known up-front) and starts the ticker and optional HTTP endpoint.
func newProgressTracker(jobs []trialJob, opts ProgressOptions) *progressTracker {
	t := &progressTracker{
		total:  int64(len(jobs)),
		start:  time.Now(),
		strats: map[string]*stratCounters{},
		opts:   opts,
		stop:   make(chan struct{}),
		wg:     make(chan struct{}),
	}
	for _, j := range jobs {
		if _, ok := t.strats[j.label]; !ok {
			t.strats[j.label] = &stratCounters{}
			t.names = append(t.names, j.label)
		}
	}
	sort.Strings(t.names)
	if opts.HTTPAddr != "" {
		t.serveHTTP(opts.HTTPAddr)
	}
	interval := opts.Interval
	if interval <= 0 {
		interval = time.Second
	}
	go t.loop(interval)
	return t
}

// note records one finished trial. Called from worker goroutines.
func (t *progressTracker) note(label string, out Outcome) {
	if t == nil {
		return
	}
	t.done.Add(1)
	t.outcomes[out].Add(1)
	if sc := t.strats[label]; sc != nil {
		sc.done.Add(1)
		if out == Success {
			sc.success.Add(1)
		}
	}
}

// snapshot assembles the current view.
func (t *progressTracker) snapshot() ProgressSnapshot {
	done := t.done.Load()
	s := ProgressSnapshot{
		Done: done, Total: t.total,
		Success:  t.outcomes[Success].Load(),
		Failure1: t.outcomes[Failure1].Load(),
		Failure2: t.outcomes[Failure2].Load(),
	}
	elapsed := time.Since(t.start).Seconds()
	if elapsed > 0 {
		s.TrialsPerSec = float64(done) / elapsed
	}
	if s.TrialsPerSec > 0 && done < t.total {
		s.ETASeconds = float64(t.total-done) / s.TrialsPerSec
	}
	for _, name := range t.names {
		sc := t.strats[name]
		s.Strategies = append(s.Strategies, StrategyProgress{
			Strategy: name, Done: sc.done.Load(), Success: sc.success.Load(),
		})
	}
	return s
}

// line renders a one-line human summary of a snapshot.
func (s ProgressSnapshot) line() string {
	pct := 0.0
	if s.Total > 0 {
		pct = 100 * float64(s.Done) / float64(s.Total)
	}
	out := fmt.Sprintf("progress: %d/%d (%.0f%%) %.1f trials/s S=%d F1=%d F2=%d",
		s.Done, s.Total, pct, s.TrialsPerSec, s.Success, s.Failure1, s.Failure2)
	if s.ETASeconds > 0 {
		out += fmt.Sprintf(" eta=%s", (time.Duration(s.ETASeconds * float64(time.Second))).Round(time.Second))
	}
	return out
}

func (t *progressTracker) loop(interval time.Duration) {
	defer close(t.wg)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if t.opts.W != nil {
				fmt.Fprintln(t.opts.W, t.snapshot().line())
			}
		case <-t.stop:
			return
		}
	}
}

// serveHTTP binds the progress endpoint through the registered server.
// An unregistered server or a bind failure is reported on W (when set)
// and otherwise ignored: progress reporting must never abort a
// campaign.
func (t *progressTracker) serveHTTP(addr string) {
	if progressServer == nil {
		if t.opts.W != nil {
			fmt.Fprintln(t.opts.W, "progress: http endpoint unavailable: no server registered (import the progresshttp package)")
		}
		return
	}
	t.stopSrv, t.addr = progressServer(t.snapshot, t.opts.W, addr)
}

// finish stops the ticker and endpoint and emits the final snapshot.
func (t *progressTracker) finish() {
	if t == nil {
		return
	}
	close(t.stop)
	<-t.wg
	if t.stopSrv != nil {
		t.stopSrv()
	}
	if t.opts.W != nil {
		fmt.Fprintln(t.opts.W, t.snapshot().line())
	}
}

// Addr returns the bound HTTP endpoint address ("" when none).
func (t *progressTracker) Addr() string {
	if t == nil {
		return ""
	}
	return t.addr
}
