package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"intango/internal/obs"
)

// ProgressOptions configures live campaign-progress reporting for
// RunParallel. Reporting only observes atomic counters the workers
// bump — it never touches the trial hot path's determinism.
type ProgressOptions struct {
	// Interval is how often a snapshot line is emitted (default 1s).
	Interval time.Duration
	// W receives the periodic snapshot lines (typically os.Stderr);
	// nil disables printing.
	W io.Writer
	// HTTPAddr, when non-empty, serves live progress over HTTP:
	// /progress returns the snapshot as JSON, /metrics as
	// expvar-style plain text. Use "127.0.0.1:0" for an ephemeral
	// port; the bound address is available via Runner.ProgressAddr
	// while the campaign runs. Serving requires a registered server
	// (import the progresshttp subpackage); without one the option is
	// reported on W and ignored.
	HTTPAddr string
	// SeriesCap bounds the sampled time-series ring (default
	// obs.DefaultSeriesCap). The sampler records one point per
	// Interval; when full the oldest points are dropped.
	SeriesCap int
}

// StrategyProgress is the per-strategy slice of a snapshot.
type StrategyProgress struct {
	Strategy string `json:"strategy"`
	Done     int64  `json:"done"`
	Success  int64  `json:"success"`
}

// ProgressSnapshot is one point-in-time view of a running campaign.
type ProgressSnapshot struct {
	Done         int64              `json:"done"`
	Total        int64              `json:"total"`
	TrialsPerSec float64            `json:"trials_per_sec"`
	ETASeconds   float64            `json:"eta_seconds"`
	Success      int64              `json:"success"`
	Failure1     int64              `json:"failure_1"`
	Failure2     int64              `json:"failure_2"`
	Strategies   []StrategyProgress `json:"strategies,omitempty"`
}

// MetricsText renders the snapshot in Prometheus exposition format —
// the /metrics view of the progress endpoint. Strategy labels carry
// raw spec text (quotes, backslashes, arbitrary UTF-8), so they go
// through obs.PromLabel rather than %q: Go quoting escapes non-ASCII,
// which the exposition format forbids, and real scrapers reject it.
// Each family is emitted contiguously under one # TYPE header, as the
// format requires.
func (s ProgressSnapshot) MetricsText() string {
	var b strings.Builder
	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	gauge("trials_done", "Trials completed so far.")
	fmt.Fprintf(&b, "trials_done %d\n", s.Done)
	gauge("trials_total", "Trials in the campaign.")
	fmt.Fprintf(&b, "trials_total %d\n", s.Total)
	gauge("trials_per_sec", "Campaign throughput.")
	fmt.Fprintf(&b, "trials_per_sec %g\n", s.TrialsPerSec)
	gauge("eta_seconds", "Estimated seconds to completion.")
	fmt.Fprintf(&b, "eta_seconds %g\n", s.ETASeconds)
	gauge("outcome_success", "Trials classified success.")
	fmt.Fprintf(&b, "outcome_success %d\n", s.Success)
	gauge("outcome_failure1", "Trials classified failure-1.")
	fmt.Fprintf(&b, "outcome_failure1 %d\n", s.Failure1)
	gauge("outcome_failure2", "Trials classified failure-2.")
	fmt.Fprintf(&b, "outcome_failure2 %d\n", s.Failure2)
	if len(s.Strategies) > 0 {
		gauge("strategy_done", "Trials completed per strategy.")
		for _, sp := range s.Strategies {
			fmt.Fprintf(&b, "strategy_done{strategy=\"%s\"} %d\n", obs.PromLabel(sp.Strategy), sp.Done)
		}
		gauge("strategy_success", "Successful trials per strategy.")
		for _, sp := range s.Strategies {
			fmt.Fprintf(&b, "strategy_success{strategy=\"%s\"} %d\n", obs.PromLabel(sp.Strategy), sp.Success)
		}
	}
	return b.String()
}

// ProgressFeeds bundles the live views a progress server exposes:
// Snapshot for the current campaign state (/progress, /metrics) and
// Series for the sampled time-series window (/timeseries).
type ProgressFeeds struct {
	Snapshot func() ProgressSnapshot
	Series   func() obs.TimeSeriesSnapshot
}

// progressServer, when registered, serves live snapshots over HTTP.
// It lives behind a hook (see RegisterProgressServer) so this package
// never imports net/http: the http package's init-time heap globals
// would otherwise be marked by every GC cycle of every program linking
// the experiment harness, which is measurable on the trial hot path.
var progressServer func(feeds ProgressFeeds, diag io.Writer, addr string) (stop func(), bound string)

// RegisterProgressServer installs the HTTP serving implementation used
// when ProgressOptions.HTTPAddr is set. The progresshttp subpackage
// registers itself from init; programs that want the endpoint import
// it, everything else stays free of net/http.
func RegisterProgressServer(f func(feeds ProgressFeeds, diag io.Writer, addr string) (stop func(), bound string)) {
	progressServer = f
}

// stratCounters is one strategy's counters. The map of strategies is
// built complete before workers start, so workers only ever do atomic
// increments — no locks, no map writes on the hot path.
type stratCounters struct {
	done, success atomic.Int64
}

// progressTracker accumulates campaign progress across workers.
type progressTracker struct {
	total    int64
	start    time.Time
	done     atomic.Int64
	outcomes [numOutcomes]atomic.Int64
	strats   map[string]*stratCounters
	names    []string // sorted strategy labels
	series   *obs.TimeSeries

	opts    ProgressOptions
	stop    chan struct{}
	wg      chan struct{}
	stopSrv func()
	addr    string
}

// newProgressTracker sizes the tracker from the job list (labels are
// known up-front) and starts the sampler ticker and optional HTTP
// endpoint.
func newProgressTracker(jobs []trialJob, opts ProgressOptions) *progressTracker {
	t := &progressTracker{
		total:  int64(len(jobs)),
		start:  time.Now(),
		strats: map[string]*stratCounters{},
		series: obs.NewTimeSeries(DefaultSeriesCap(opts)),
		opts:   opts,
		stop:   make(chan struct{}),
		wg:     make(chan struct{}),
	}
	for _, j := range jobs {
		if _, ok := t.strats[j.label]; !ok {
			t.strats[j.label] = &stratCounters{}
			t.names = append(t.names, j.label)
		}
	}
	sort.Strings(t.names)
	t.sample() // t=0 baseline; finish() adds the closing sample
	if opts.HTTPAddr != "" {
		t.serveHTTP(opts.HTTPAddr)
	}
	interval := opts.Interval
	if interval <= 0 {
		interval = time.Second
	}
	go t.loop(interval)
	return t
}

// DefaultSeriesCap resolves the sample-ring capacity for opts (the
// obs default unless overridden).
func DefaultSeriesCap(opts ProgressOptions) int {
	if opts.SeriesCap > 0 {
		return opts.SeriesCap
	}
	return obs.DefaultSeriesCap
}

// note records one finished trial. Called from worker goroutines. An
// out-of-range outcome (a future Outcome value this tracker predates)
// still counts toward done; it must never panic a live campaign.
func (t *progressTracker) note(label string, out Outcome) {
	if t == nil {
		return
	}
	t.done.Add(1)
	if out >= 0 && int(out) < len(t.outcomes) {
		t.outcomes[out].Add(1)
	}
	if sc := t.strats[label]; sc != nil {
		sc.done.Add(1)
		if out == Success {
			sc.success.Add(1)
		}
	}
}

// sample appends one time-series point from the current snapshot. The
// sampler is the one place in the telemetry stack allowed to read the
// wall clock; everything inside a trial is stamped with virtual time.
func (t *progressTracker) sample() {
	s := t.snapshot()
	t.series.Append(obs.SeriesPoint{
		T: time.Since(t.start).Seconds(),
		Values: map[string]float64{
			"done":           float64(s.Done),
			"total":          float64(s.Total),
			"success":        float64(s.Success),
			"failure_1":      float64(s.Failure1),
			"failure_2":      float64(s.Failure2),
			"trials_per_sec": s.TrialsPerSec,
		},
	})
}

// Series returns the sampled window so far.
func (t *progressTracker) Series() obs.TimeSeriesSnapshot {
	if t == nil {
		return obs.TimeSeriesSnapshot{}
	}
	return t.series.Snapshot()
}

// snapshot assembles the current view.
func (t *progressTracker) snapshot() ProgressSnapshot {
	done := t.done.Load()
	s := ProgressSnapshot{
		Done: done, Total: t.total,
		Success:  t.outcomes[Success].Load(),
		Failure1: t.outcomes[Failure1].Load(),
		Failure2: t.outcomes[Failure2].Load(),
	}
	elapsed := time.Since(t.start).Seconds()
	if elapsed > 0 {
		s.TrialsPerSec = float64(done) / elapsed
	}
	if s.TrialsPerSec > 0 && done < t.total {
		s.ETASeconds = float64(t.total-done) / s.TrialsPerSec
	}
	for _, name := range t.names {
		sc := t.strats[name]
		s.Strategies = append(s.Strategies, StrategyProgress{
			Strategy: name, Done: sc.done.Load(), Success: sc.success.Load(),
		})
	}
	return s
}

// Line renders a one-line human summary of a snapshot (the periodic
// progress line; the fleet coordinator reuses it for its own ticker).
func (s ProgressSnapshot) Line() string {
	pct := 0.0
	if s.Total > 0 {
		pct = 100 * float64(s.Done) / float64(s.Total)
	}
	out := fmt.Sprintf("progress: %d/%d (%.0f%%) %.1f trials/s S=%d F1=%d F2=%d",
		s.Done, s.Total, pct, s.TrialsPerSec, s.Success, s.Failure1, s.Failure2)
	if s.ETASeconds > 0 {
		out += fmt.Sprintf(" eta=%s", (time.Duration(s.ETASeconds * float64(time.Second))).Round(time.Second))
	}
	return out
}

func (t *progressTracker) loop(interval time.Duration) {
	defer close(t.wg)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			t.sample()
			if t.opts.W != nil {
				fmt.Fprintln(t.opts.W, t.snapshot().Line())
			}
		case <-t.stop:
			return
		}
	}
}

// serveHTTP binds the progress endpoint through the registered server.
// An unregistered server or a bind failure is reported on W (when set)
// and otherwise ignored: progress reporting must never abort a
// campaign.
func (t *progressTracker) serveHTTP(addr string) {
	if progressServer == nil {
		if t.opts.W != nil {
			fmt.Fprintln(t.opts.W, "progress: http endpoint unavailable: no server registered (import the progresshttp package)")
		}
		return
	}
	t.stopSrv, t.addr = progressServer(ProgressFeeds{Snapshot: t.snapshot, Series: t.Series}, t.opts.W, addr)
}

// finish stops the ticker and endpoint and emits the final snapshot.
// The closing sample runs before the endpoint stops, so every campaign
// — however short — serves at least two points (the t=0 baseline and
// this one) and the retained series always ends at the final counts.
func (t *progressTracker) finish() {
	if t == nil {
		return
	}
	close(t.stop)
	<-t.wg
	t.sample()
	if t.stopSrv != nil {
		t.stopSrv()
	}
	if t.opts.W != nil {
		fmt.Fprintln(t.opts.W, t.snapshot().Line())
	}
}

// Addr returns the bound HTTP endpoint address ("" when none).
func (t *progressTracker) Addr() string {
	if t == nil {
		return ""
	}
	return t.addr
}
