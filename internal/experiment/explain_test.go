package experiment

import (
	"bytes"
	"os"
	"testing"

	"intango/internal/packet"
	"intango/internal/pcap"
)

// explainQuick reproduces what `cmd/tables -what explain` prints at
// quick scale, seed 42.
func explainQuick(t *testing.T) string {
	t.Helper()
	r := NewRunner(42)
	sc := QuickScale()
	vps := VantagePoints()[:sc.VPs]
	servers := Servers(sc.Servers, r.Cal, 42)
	narrative, _, err := r.ExplainFirstFailure("teardown-rst/ttl", vps, servers, sc.Trials)
	if err != nil {
		t.Fatal(err)
	}
	return narrative
}

// TestExplainGolden pins the `-what explain` narrative byte-for-byte:
// the causal account of the first failing teardown-rst/ttl trial must
// stay stable across refactors (set UPDATE_GOLDEN=1 to regenerate
// after an intentional change).
func TestExplainGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a population sweep")
	}
	got := explainQuick(t)
	const golden = "testdata/explain.golden"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Errorf("explain narrative drifted from %s:\ngot:\n%swant:\n%s", golden, got, want)
	}
}

// TestExplainNoFailureErrors: a sweep with no failure must surface an
// error, not an empty narrative (the CLI exits non-zero on it). An
// empty sweep trivially has no failure.
func TestExplainNoFailureErrors(t *testing.T) {
	r := NewRunner(42)
	vps := VantagePoints()[:1]
	servers := Servers(1, r.Cal, 42)
	if _, _, err := r.ExplainFirstFailure("teardown-rst/ttl", vps, servers, 0); err == nil {
		t.Fatal("expected an error when the sweep has no failing trial")
	}
}

// TestDiagnoseBundlesParse: every pcap in a diagnosis bundle must parse
// back through pcap.Read, and the annotated packets must parse as IPv4
// datagrams — the acceptance bar for bundle fidelity.
func TestDiagnoseBundlesParse(t *testing.T) {
	if testing.Short() {
		t.Skip("controlled re-runs")
	}
	r := NewRunner(42)
	sc := QuickScale()
	vps := VantagePoints()[:sc.VPs]
	servers := Servers(sc.Servers, r.Cal, 42)
	vp, srv, trial, ok := r.FindFailingTrial("teardown-rst/ttl", vps, servers, sc.Trials)
	if !ok {
		t.Fatal("no failing trial at quick scale")
	}
	d := r.Diagnose(vp, srv, "teardown-rst/ttl", trial)
	if d.BaselineBundle == nil {
		t.Fatal("baseline bundle missing")
	}
	dir := t.TempDir()
	paths, err := WriteDiagnosisBundles(d, dir)
	if err != nil {
		t.Fatal(err)
	}
	var pcaps int
	for _, p := range paths {
		if len(p) < 5 || p[len(p)-5:] != ".pcap" {
			continue
		}
		pcaps++
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := pcap.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(recs) == 0 {
			t.Fatalf("%s: empty capture", p)
		}
		for _, rec := range recs {
			if _, err := packet.Parse(rec.Data); err != nil {
				t.Fatalf("%s: unparseable datagram: %v", p, err)
			}
		}
	}
	if pcaps == 0 {
		t.Fatal("diagnosis wrote no pcap files")
	}
	// The baseline trace must carry strategy-crafted packets with their
	// spec-piece attribution.
	var crafted bool
	for _, p := range d.BaselineBundle.Packets {
		if p.Crafter != "" {
			crafted = true
		}
	}
	if !crafted {
		t.Error("baseline bundle has no crafter-attributed packets")
	}
}
