package experiment

// The persistent benchmark harness behind `make bench`: it measures the
// trial hot path and the serial/parallel campaign loops in-process (via
// testing.Benchmark, so the numbers are directly comparable with
// `go test -bench`), embeds the pre-pooling seed baseline, and renders
// the whole thing as BENCH_netem.json so regressions are a diff away.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"intango/internal/core"
	"intango/internal/packet"
)

// seedBaseline is the trial/campaign cost measured at this repo's
// pre-pooling parent commit (heap packets, container/heap event queue),
// on the reference container. It is embedded in every report so a
// single BENCH_netem.json answers "how far from the old cost are we?"
// without digging through git history.
func seedBaseline() BenchBaseline {
	return BenchBaseline{
		Commit: "994cc34 (pre-pooling seed)",
		Trial: BenchResult{
			NsPerOp:     109392,
			BytesPerOp:  80340,
			AllocsPerOp: 1069,
		},
		CampaignSerial: BenchResult{
			NsPerOp:     56981366,
			AllocsPerOp: 547502,
		},
		CampaignParallel: BenchResult{
			NsPerOp:     53374346,
			AllocsPerOp: 547516,
		},
	}
}

// BenchCampaignScale is the campaign shape the harness times: small
// enough to iterate in tens of milliseconds, large enough to exercise
// every strategy row and both keyword arms.
func BenchCampaignScale() Scale { return Scale{VPs: 3, Servers: 2, Trials: 1} }

// BenchResult is one measured benchmark, in go-test units.
type BenchResult struct {
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	TrialsPerSec float64 `json:"trials_per_sec,omitempty"`
}

// BenchBaseline pins the recorded pre-PR numbers a report is judged
// against.
type BenchBaseline struct {
	Commit           string      `json:"commit"`
	Trial            BenchResult `json:"trial"`
	CampaignSerial   BenchResult `json:"campaign_serial"`
	CampaignParallel BenchResult `json:"campaign_parallel"`
}

// BenchPoolStats mirrors packet.PoolStats with JSON names, plus the
// derived recycle count.
type BenchPoolStats struct {
	Gets     uint64 `json:"gets"`
	Puts     uint64 `json:"puts"`
	News     uint64 `json:"news"`
	Recycled uint64 `json:"recycled"`
}

// BenchReport is the schema of BENCH_netem.json.
type BenchReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Seed      int64  `json:"seed"`

	Baseline BenchBaseline `json:"baseline"`

	// Trial is one RunOne (handshake, strategy volley, fetch,
	// classification) — the unit every campaign multiplies.
	Trial BenchResult `json:"trial"`
	// GoodputTrial is one bandwidth-constrained upload through the
	// congestion machinery (token-bucket shaper, finite queue, cwnd) —
	// the allocation cost of the goodput path when it is actually
	// exercised. Absent from pre-congestion reports.
	GoodputTrial BenchResult `json:"goodput_trial,omitempty"`
	// CampaignSerial/CampaignParallel run the full Table 1 strategy
	// grid at BenchCampaignScale per op.
	CampaignSerial   BenchResult `json:"campaign_serial"`
	CampaignParallel BenchResult `json:"campaign_parallel"`

	// TrialsPerCampaignOp is the trial count behind the campaign
	// trials_per_sec figures.
	TrialsPerCampaignOp int `json:"trials_per_campaign_op"`

	// Pool is the serial campaign runner's packet-pool traffic.
	Pool BenchPoolStats `json:"pool"`

	// AllocReductionPct is 100*(1 - trial allocs / baseline trial
	// allocs): the headline number the pooling work is judged by.
	AllocReductionPct float64 `json:"alloc_reduction_pct"`
}

func toBenchResult(r testing.BenchmarkResult, trialsPerOp int) BenchResult {
	out := BenchResult{
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if trialsPerOp > 0 && out.NsPerOp > 0 {
		out.TrialsPerSec = float64(trialsPerOp) / (out.NsPerOp / 1e9)
	}
	return out
}

// RunBench measures the hot path and both campaign modes and returns
// the full report. Each section uses a fresh Runner so pool statistics
// and RNG streams are attributable.
func RunBench(seed int64) BenchReport {
	rep := BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Seed:      seed,
		Baseline:  seedBaseline(),
	}

	// Single-trial hot path, the allocs/op headline.
	trialRes := testing.Benchmark(func(b *testing.B) {
		r := NewRunner(seed)
		vp := VantagePoints()[0]
		srv := Servers(1, r.Cal, seed)[0]
		factory := core.BuiltinFactories()["teardown-rst/ttl"]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.RunOne(vp, srv, factory, true, i)
		}
	})
	rep.Trial = toBenchResult(trialRes, 0) // trials/sec is a campaign-level figure

	// Goodput path: one 64 KiB upload through the bw=1mbit,queue=16
	// access link, congestion control and the shaper both live.
	goodputRes := testing.Benchmark(func(b *testing.B) {
		r := NewRunner(seed)
		vp := VantagePoints()[6]
		srv := goodputServers(r, 1)[0]
		s := goodputStrategies()[2] // an inject strategy: the plain congested transfer
		r.Topo = goodputTopo(vp, srv)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.runGoodputTrial(vp, srv, s.factory, i, nil)
		}
	})
	rep.GoodputTrial = toBenchResult(goodputRes, 0)

	sc := BenchCampaignScale()
	rep.TrialsPerCampaignOp = 2 * len(table1Strategies()) * sc.VPs * sc.Servers * sc.Trials

	var poolStats packet.PoolStats
	serialRes := testing.Benchmark(func(b *testing.B) {
		r := NewRunner(seed)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rows := RunTable1(r, sc); len(rows) != len(table1Strategies()) {
				b.Fatalf("rows = %d", len(rows))
			}
		}
		poolStats = r.PoolStats()
	})
	rep.CampaignSerial = toBenchResult(serialRes, rep.TrialsPerCampaignOp)
	rep.Pool = BenchPoolStats{
		Gets:     poolStats.Gets,
		Puts:     poolStats.Puts,
		News:     poolStats.News,
		Recycled: poolStats.Recycled(),
	}

	parallelRes := testing.Benchmark(func(b *testing.B) {
		r := NewRunner(seed)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rows := RunTable1Parallel(r, sc); len(rows) != len(table1Strategies()) {
				b.Fatalf("rows = %d", len(rows))
			}
		}
	})
	rep.CampaignParallel = toBenchResult(parallelRes, rep.TrialsPerCampaignOp)

	if base := rep.Baseline.Trial.AllocsPerOp; base > 0 {
		rep.AllocReductionPct = 100 * (1 - float64(rep.Trial.AllocsPerOp)/float64(base))
	}
	return rep
}

// BenchGateTolerance is the allocs/trial regression budget the CI
// bench gate allows over the committed report before failing.
const BenchGateTolerance = 0.05

// RunBenchGate re-measures the single-trial hot path's allocs/op and
// judges it against the committed report's figure with the given
// fractional tolerance (<=0 selects BenchGateTolerance). It measures
// only allocation counts — deterministic under Go's allocator, unlike
// ns/op — so the gate holds on loaded CI machines.
func RunBenchGate(seed int64, committed BenchReport, tolerance float64) (measured, limit int64, ok bool) {
	if tolerance <= 0 {
		tolerance = BenchGateTolerance
	}
	res := testing.Benchmark(func(b *testing.B) {
		r := NewRunner(seed)
		vp := VantagePoints()[0]
		srv := Servers(1, r.Cal, seed)[0]
		factory := core.BuiltinFactories()["teardown-rst/ttl"]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.RunOne(vp, srv, factory, true, i)
		}
	})
	measured = res.AllocsPerOp()
	limit = int64(float64(committed.Trial.AllocsPerOp) * (1 + tolerance))
	return measured, limit, measured <= limit
}

// WriteBenchJSON renders the report as indented JSON (the
// BENCH_netem.json format).
func WriteBenchJSON(w io.Writer, rep BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadBenchJSON parses a report written by WriteBenchJSON.
func ReadBenchJSON(r io.Reader) (BenchReport, error) {
	var rep BenchReport
	err := json.NewDecoder(r).Decode(&rep)
	return rep, err
}

func pctDelta(oldV, newV float64) string {
	if oldV == 0 {
		return "   n/a"
	}
	return fmt.Sprintf("%+5.1f%%", 100*(newV-oldV)/oldV)
}

func benchLine(b *strings.Builder, name string, cur, base BenchResult) {
	fmt.Fprintf(b, "  %-18s %12.0f ns/op (%s vs baseline)   %8d allocs/op (%s)\n",
		name, cur.NsPerOp, pctDelta(base.NsPerOp, cur.NsPerOp),
		cur.AllocsPerOp, pctDelta(float64(base.AllocsPerOp), float64(cur.AllocsPerOp)))
}

// FormatBenchReport renders the report for humans, deltas against the
// embedded baseline included.
func FormatBenchReport(rep BenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== benchmark: trial hot path and campaigns (%s %s/%s, %d CPUs, seed %d) ==\n",
		rep.GoVersion, rep.GOOS, rep.GOARCH, rep.NumCPU, rep.Seed)
	fmt.Fprintf(&b, "baseline: %s\n", rep.Baseline.Commit)
	benchLine(&b, "trial", rep.Trial, rep.Baseline.Trial)
	if rep.GoodputTrial.NsPerOp > 0 {
		// No pre-congestion baseline exists for the goodput path; the
		// line still records ns/op and allocs/op for bench-compare.
		benchLine(&b, "goodput trial", rep.GoodputTrial, BenchResult{})
	}
	benchLine(&b, "campaign/serial", rep.CampaignSerial, rep.Baseline.CampaignSerial)
	benchLine(&b, "campaign/parallel", rep.CampaignParallel, rep.Baseline.CampaignParallel)
	fmt.Fprintf(&b, "  %-18s serial %.0f trials/s, parallel %.0f trials/s (%d trials per campaign op)\n",
		"throughput", rep.CampaignSerial.TrialsPerSec, rep.CampaignParallel.TrialsPerSec, rep.TrialsPerCampaignOp)
	fmt.Fprintf(&b, "  %-18s gets %d, puts %d, news %d, recycled %d (%.1f%% of gets)\n",
		"packet pool", rep.Pool.Gets, rep.Pool.Puts, rep.Pool.News, rep.Pool.Recycled,
		safePct(rep.Pool.Recycled, rep.Pool.Gets))
	fmt.Fprintf(&b, "  %-18s %.1f%% fewer allocs per trial than the pre-pooling seed\n",
		"headline", rep.AllocReductionPct)
	return b.String()
}

func safePct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// CompareBenchReports diffs two BENCH_netem.json files (typically an
// old artifact vs a fresh `make bench` run) section by section.
func CompareBenchReports(oldRep, newRep BenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== benchmark comparison (old: %s/%s ×%d, new: %s/%s ×%d) ==\n",
		oldRep.GOOS, oldRep.GOARCH, oldRep.NumCPU, newRep.GOOS, newRep.GOARCH, newRep.NumCPU)
	fmt.Fprintf(&b, "%-18s %14s %14s %8s   %12s %12s %8s\n",
		"", "old ns/op", "new ns/op", "Δ", "old allocs", "new allocs", "Δ")
	row := func(name string, o, n BenchResult) {
		fmt.Fprintf(&b, "%-18s %14.0f %14.0f %8s   %12d %12d %8s\n",
			name, o.NsPerOp, n.NsPerOp, strings.TrimSpace(pctDelta(o.NsPerOp, n.NsPerOp)),
			o.AllocsPerOp, n.AllocsPerOp,
			strings.TrimSpace(pctDelta(float64(o.AllocsPerOp), float64(n.AllocsPerOp))))
	}
	row("trial", oldRep.Trial, newRep.Trial)
	if oldRep.GoodputTrial.NsPerOp > 0 || newRep.GoodputTrial.NsPerOp > 0 {
		row("goodput trial", oldRep.GoodputTrial, newRep.GoodputTrial)
	}
	row("campaign/serial", oldRep.CampaignSerial, newRep.CampaignSerial)
	row("campaign/parallel", oldRep.CampaignParallel, newRep.CampaignParallel)
	if oldRep.CampaignParallel.TrialsPerSec > 0 && newRep.CampaignParallel.TrialsPerSec > 0 {
		fmt.Fprintf(&b, "%-18s %14.0f %14.0f %8s   (parallel trials/sec)\n", "throughput",
			oldRep.CampaignParallel.TrialsPerSec, newRep.CampaignParallel.TrialsPerSec,
			strings.TrimSpace(pctDelta(oldRep.CampaignParallel.TrialsPerSec, newRep.CampaignParallel.TrialsPerSec)))
	}
	return b.String()
}
