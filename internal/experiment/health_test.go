package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// healthFixture is a hand-built report with every section populated,
// so the golden pins the full renderer. Values are arbitrary but
// fixed — including the wall-clock ones, which a live campaign could
// never reproduce byte-for-byte.
func healthFixture() HealthReport {
	return HealthReport{
		Campaign: "table1-quick", Seed: 42, Workers: 4, WallSeconds: 2.5,
		Trials: 616, Success: 500, Failure1: 100, Failure2: 16,
		SuccessPct: 100 * 500.0 / 616.0,
		Strategies: []StrategyHealth{
			{Strategy: "teardown-rst/ttl", Done: 308, Success: 260, SuccessPct: 100 * 260.0 / 308.0},
			{Strategy: "ooo-ipfrag", Done: 308, Success: 240, SuccessPct: 100 * 240.0 / 308.0},
		},
		Throughput: []ThroughputPoint{
			{T: 0, Done: 0, TrialsPerSec: 0},
			{T: 1.0, Done: 280, TrialsPerSec: 280},
			{T: 2.5, Done: 616, TrialsPerSec: 246.4},
		},
		Stages: []StageLatency{
			{Stage: "build", Count: 616, MeanMS: 0, P50MS: 0, P90MS: 0, P99MS: 0},
			{Stage: "handshake", Count: 616, MeanMS: 62.4, P50MS: 50, P90MS: 100, P99MS: 500},
			{Stage: "strategy", Count: 616, MeanMS: 841.7, P50MS: 1000, P90MS: 2000, P99MS: 2000},
			{Stage: "verdict", Count: 616, MeanMS: 903.2, P50MS: 1000, P90MS: 2000, P99MS: 5000},
			{Stage: "teardown", Count: 616, MeanMS: 12.1, P50MS: 10, P90MS: 20, P99MS: 50},
		},
		Goodput: &GoodputHealth{Transfers: 60, MeanBps: 612345.5, P50Bps: 500_000, P90Bps: 1_000_000},
		Evictions: []EvictionRate{
			{Counter: "gfw.frag-evict", Count: 12, PerTrial: 12.0 / 616.0},
		},
		Pool:          PoolHealth{Gets: 40000, News: 1200, Recycled: 38800, RecycledPct: 97.0},
		SeriesSamples: 3,
	}
}

// TestHealthGolden pins FormatHealth byte-for-byte against
// testdata/health.golden.
func TestHealthGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "health.golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := FormatHealth(healthFixture())
	if got != string(want) {
		t.Fatalf("health report drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHealthJSONRoundTrip: the JSON artifact parses back to the same
// report.
func TestHealthJSONRoundTrip(t *testing.T) {
	h := healthFixture()
	dir := t.TempDir()
	paths, err := WriteHealthArtifacts(dir, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("artifact paths = %v", paths)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "health.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got HealthReport
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Trials != h.Trials || got.Success != h.Success || len(got.Stages) != len(h.Stages) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	txt, err := os.ReadFile(filepath.Join(dir, "health.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(txt) != FormatHealth(h) {
		t.Fatal("health.txt does not match FormatHealth")
	}
}

// TestHealthCampaign runs a real (tiny) campaign end to end and
// asserts the report carries live telemetry: at least the baseline and
// closing samples, non-empty stage latencies with one observation per
// trial, outcome counts that sum to the trial count, and the written
// artifact pair.
func TestHealthCampaign(t *testing.T) {
	r := NewRunner(42)
	r.Workers = 4
	r.Progress = &ProgressOptions{Interval: time.Millisecond}
	h := RunHealthCampaign(r, Scale{VPs: 2, Servers: 2, Trials: 1}, "health-test")

	if h.Trials == 0 {
		t.Fatal("no trials recorded")
	}
	if h.Success+h.Failure1+h.Failure2 != int64(h.Trials) {
		t.Fatalf("outcomes %d+%d+%d do not sum to trials %d", h.Success, h.Failure1, h.Failure2, h.Trials)
	}
	if h.SeriesSamples < 2 {
		t.Fatalf("series samples = %d, want >= 2", h.SeriesSamples)
	}
	if len(h.Throughput) != h.SeriesSamples {
		t.Fatalf("throughput points = %d, samples = %d", len(h.Throughput), h.SeriesSamples)
	}
	if len(h.Stages) == 0 {
		t.Fatal("no stage latencies")
	}
	for _, st := range h.Stages {
		if st.Stage == "handshake" || st.Stage == "teardown" {
			if st.Count != uint64(h.Trials) {
				t.Fatalf("stage %s count = %d, want %d", st.Stage, st.Count, h.Trials)
			}
		}
	}
	if len(h.Strategies) == 0 {
		t.Fatal("no per-strategy rows")
	}
	if h.Pool.Gets == 0 || h.Pool.RecycledPct <= 0 {
		t.Fatalf("pool stats missing: %+v", h.Pool)
	}

	dir := t.TempDir()
	if _, err := WriteHealthArtifacts(dir, h); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "health.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got HealthReport
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Trials != h.Trials {
		t.Fatalf("health.json trials = %d, want %d", got.Trials, h.Trials)
	}
}
