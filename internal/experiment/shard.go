package experiment

import (
	"fmt"

	"intango/internal/core"
	"intango/internal/obs"
)

// The shard substrate under internal/fleet: a campaign's job cube built
// once, deterministic contiguous shards over it, and a serial range
// runner with checkpoint hooks. Shards accumulate into private tallies
// and ObsSink shards — the same commutative-merge contract RunParallel
// relies on — so any partition of the cube, run in any order, possibly
// killed and resumed from journaled snapshots, folds back to results
// bit-identical to an uninterrupted serial run.

// Cube is a campaign's fully enumerated job list plus the tally layout
// the jobs index into. The enumeration order is a pure function of the
// runner's seed and the scale, so two processes planning the same
// campaign derive identical cubes — the property shard plans and
// checkpoint cursors depend on.
type Cube struct {
	jobs       []trialJob
	rows       []Table1Row
	numTallies int
	labels     []string // strategy label per tally index
	stratOrder []string // unique strategy labels in first-seen order
}

// Table1Cube enumerates the Table 1 campaign for (r, sc): every
// strategy × vantage point × server × trial, sensitive and clean arms.
// The job order matches RunTable1Parallel exactly.
func Table1Cube(r *Runner, sc Scale) *Cube {
	vps := VantagePoints()[:min(sc.VPs, 11)]
	servers := Servers(sc.Servers, r.Cal, r.Seed)
	specs := table1Strategies()
	c := &Cube{numTallies: 2 * len(specs)}
	c.rows = make([]Table1Row, len(specs))
	c.labels = make([]string, c.numTallies)
	for i, spec := range specs {
		c.rows[i] = Table1Row{Strategy: spec.group, Discrepancy: spec.disc}
		c.labels[2*i] = spec.name
		c.labels[2*i+1] = spec.name
		c.stratOrder = append(c.stratOrder, spec.name)
		factory := spec.compile()
		for _, vp := range vps {
			for _, srv := range servers {
				for trial := 0; trial < sc.Trials; trial++ {
					c.jobs = append(c.jobs, trialJob{vp, srv, factory, true, trial, 2 * i, spec.name})
					c.jobs = append(c.jobs, trialJob{vp, srv, factory, false, trial + sc.Trials, 2*i + 1, spec.name})
				}
			}
		}
	}
	return c
}

// Len returns the number of jobs in the cube.
func (c *Cube) Len() int { return len(c.jobs) }

// NumTallies returns how many tally sinks the cube's jobs index.
func (c *Cube) NumTallies() int { return c.numTallies }

// TallyLabel returns the strategy label tally index i accumulates for —
// how a restored checkpoint frame's tallies are re-attributed to
// per-strategy progress counters.
func (c *Cube) TallyLabel(i int) string { return c.labels[i] }

// StrategyLabels returns the cube's unique strategy labels in campaign
// order.
func (c *Cube) StrategyLabels() []string {
	return append([]string(nil), c.stratOrder...)
}

// Fold writes the merged tallies into the cube's row skeletons and
// returns the finished rows. tallies must have NumTallies entries.
func (c *Cube) Fold(tallies []Tally) []Table1Row {
	rows := append([]Table1Row(nil), c.rows...)
	for i := range rows {
		rows[i].Sensitive = tallies[2*i]
		rows[i].Clean = tallies[2*i+1]
	}
	return rows
}

// runParallelCube is RunTable1Parallel over a prebuilt cube.
func (r *Runner) runParallelCube(c *Cube) []Table1Row {
	backing := make([]Tally, c.numTallies)
	tallies := make([]*Tally, c.numTallies)
	for i := range tallies {
		tallies[i] = &backing[i]
	}
	r.RunParallel(c.jobs, tallies)
	return c.Fold(backing)
}

// DefaultCheckpointEvery is how many trials a shard runs between
// checkpoint frames when the coordinator does not override it.
const DefaultCheckpointEvery = 64

// ShardState is the cumulative result of one shard's slice of the cube:
// jobs [Start, End), of which [Start, Cursor) have been folded into
// Tallies and Sink. A fresh shard starts with Cursor == Start; a
// resumed shard restores Cursor, Tallies, and the Sink registry from
// its last checkpoint frame and continues, producing state bit-identical
// to an uninterrupted run of the full range.
type ShardState struct {
	Start, End int
	Cursor     int
	Tallies    []Tally
	Sink       *ObsSink
}

// NewShardState returns a fresh state for jobs [start, end) of the cube.
func NewShardState(c *Cube, start, end int) *ShardState {
	return &ShardState{
		Start: start, End: end, Cursor: start,
		Tallies: make([]Tally, c.numTallies),
		Sink:    NewObsSink(),
	}
}

// Restore rehydrates the state from a checkpoint frame's cumulative
// payload: the trial cursor, the tallies, and the serialized registry
// snapshot (folded through the commutative snapshot merge). The
// restored sink counts the replayed trials but retains no failure
// traces or per-trial event volumes — those live only in frames (as
// refs) and in memory.
func (st *ShardState) Restore(cursor int, tallies []Tally, snap obs.Snapshot) error {
	if cursor < st.Start || cursor > st.End {
		return fmt.Errorf("cursor %d outside shard range [%d,%d)", cursor, st.Start, st.End)
	}
	if len(tallies) != len(st.Tallies) {
		return fmt.Errorf("frame carries %d tallies, cube has %d", len(tallies), len(st.Tallies))
	}
	st.Cursor = cursor
	copy(st.Tallies, tallies)
	st.Sink.Registry.MergeSnapshot(snap)
	st.Sink.trials = cursor - st.Start
	return nil
}

// RunCubeRange executes the shard's remaining jobs [st.Cursor, st.End)
// serially, folding each outcome into st. After every `every` completed
// trials — and always after the range's final trial — it calls
// checkpoint with final reporting whether the range is complete;
// checkpoint returning false stops the shard at that frame boundary
// (the coordinator's abort path). onTrial, when non-nil, observes every
// completed trial (live fleet progress counters; it must not block).
// Within a shard execution is strictly serial, so Cursor is always the
// exact resume point.
func (r *Runner) RunCubeRange(c *Cube, st *ShardState, every int, onTrial func(label string, out Outcome), checkpoint func(final bool) bool) {
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	since := 0
	// A shard is one worker: under PerWorkerPool it recycles through its
	// own private pool, like a RunParallel worker would.
	pool := r.newWorkerPool()
	for st.Cursor < st.End {
		job := c.jobs[st.Cursor]
		out := r.runOne(job.vp, job.srv, job.factory, job.sensitive, job.trial, st.Sink, job.label, pool)
		st.Tallies[job.sink].Add(out)
		st.Cursor++
		since++
		if onTrial != nil {
			onTrial(job.label, out)
		}
		if checkpoint != nil && (since >= every || st.Cursor == st.End) {
			since = 0
			if !checkpoint(st.Cursor == st.End) {
				return
			}
		}
	}
	st.Sink.Finish()
}

// StrategySpec names one campaign strategy together with its canonical
// spec text — the provenance line a fleet manifest records for it.
type StrategySpec struct {
	Name string `json:"name"`
	Spec string `json:"spec"`
}

// Table1StrategySpecs returns the Table 1 strategy set with each spec
// canonicalized through the grammar round trip, in campaign order.
func Table1StrategySpecs() []StrategySpec {
	specs := table1Strategies()
	out := make([]StrategySpec, len(specs))
	for i, s := range specs {
		parsed, err := core.ParseSpec(s.spec)
		if err != nil {
			panic(fmt.Sprintf("experiment: bad table spec %s: %v", s.name, err))
		}
		out[i] = StrategySpec{Name: s.name, Spec: parsed.String()}
	}
	return out
}
