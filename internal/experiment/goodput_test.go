package experiment

import (
	"testing"

	"intango/internal/core"
)

// TestCongestionDisabledZeroAlloc pins the unconstrained trial at the
// seed hot-path allocation baseline: the congestion machinery grown
// for rated links — per-connection cwnd/ssthresh tracking, RTT-sampled
// retransmission timers, the persist timer, and the per-link shaper
// hook — must cost a campaign over unshaped links nothing. Shaper
// state is allocated lazily only when a link sets `bw=`, and the
// stack's new bookkeeping lives in fields that already existed per
// connection, so the per-trial allocation count must not move.
func TestCongestionDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates alloc counts")
	}
	r := NewRunner(42)
	vp := VantagePoints()[0]
	srv := Servers(1, r.Cal, 42)[0]
	f := core.BuiltinFactories()["teardown-rst/ttl"]
	for i := 0; i < 200; i++ {
		r.RunOne(vp, srv, f, true, 0) // warm the packet pool past GC churn
	}
	// The pre-congestion seed baseline (see TestTelemetryDisabledZeroAlloc
	// for the amortization slack rationale).
	const seedBaseline = 139
	avg := testing.AllocsPerRun(1000, func() {
		r.RunOne(vp, srv, f, true, 0)
	})
	if avg > seedBaseline+1 {
		t.Fatalf("unconstrained trial allocates %.1f/op with congestion machinery present, budget %d", avg, seedBaseline)
	}
}

// TestGoodputReorderCostlier is the congestion demo's acceptance
// property: on the bw=1mbit,queue=16 access link every
// duplicate/reorder-heavy strategy must deliver measurably lower
// goodput than every insertion-only strategy — the cost the paper's
// success rates never surfaced.
func TestGoodputReorderCostlier(t *testing.T) {
	if testing.Short() {
		t.Skip("full goodput campaign")
	}
	rows := RunGoodput(NewRunner(42), QuickScale())
	var minInject, maxReorder int64
	minInject = 1 << 62
	for _, row := range rows {
		if row.ConstrainedBps <= 0 {
			t.Errorf("%s: no goodput on the constrained link", row.Strategy)
		}
		switch row.Class {
		case "reorder":
			if row.ConstrainedBps > maxReorder {
				maxReorder = row.ConstrainedBps
			}
		case "inject":
			if row.ConstrainedBps < minInject {
				minInject = row.ConstrainedBps
			}
		}
	}
	// "Measurably lower": the best reorder strategy still loses at
	// least a third of the goodput the worst inject strategy keeps.
	if maxReorder*3 > minInject*2 {
		t.Errorf("reorder strategies not measurably costlier: best reorder %d bps vs worst inject %d bps",
			maxReorder, minInject)
	}
}
