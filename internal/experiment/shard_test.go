package experiment

import (
	"reflect"
	"testing"

	"intango/internal/core"
)

// TestCubeRangeMatchesParallel: running the whole cube serially through
// the shard range runner reproduces RunTable1Parallel bit for bit —
// rows, tallies, counters, and retained failure traces.
func TestCubeRangeMatchesParallel(t *testing.T) {
	sc := Scale{VPs: 2, Servers: 2, Trials: 1}

	ref := NewRunner(42)
	ref.Workers = 4
	ref.Obs = NewObsSink()
	wantRows := RunTable1Parallel(ref, sc)

	r := NewRunner(42)
	cube := Table1Cube(r, sc)
	st := NewShardState(cube, 0, cube.Len())
	checkpoints := 0
	r.RunCubeRange(cube, st, 7, nil, func(final bool) bool {
		checkpoints++
		return true
	})
	if st.Cursor != cube.Len() {
		t.Fatalf("cursor %d, want %d", st.Cursor, cube.Len())
	}
	if checkpoints < cube.Len()/7 {
		t.Fatalf("only %d checkpoints for %d jobs at every=7", checkpoints, cube.Len())
	}
	if gotRows := cube.Fold(st.Tallies); !reflect.DeepEqual(gotRows, wantRows) {
		t.Errorf("cube range rows differ:\ngot:  %+v\nwant: %+v", gotRows, wantRows)
	}
	if got, want := st.Sink.Snapshot(), ref.Obs.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("cube range snapshot differs:\ngot:  %+v\nwant: %+v", got, want)
	}
	st.Sink.Finish()
	if !reflect.DeepEqual(st.Sink.Failures(), ref.Obs.Failures()) {
		t.Errorf("cube range failure retention differs")
	}
}

// TestShardRestoreResumeEquivalence mirrors one kill/resume cycle at
// the ShardState layer: run to a mid-range checkpoint, serialize the
// frame payload, restore into a fresh state, finish — the result must
// equal an uninterrupted run of the same range.
func TestShardRestoreResumeEquivalence(t *testing.T) {
	sc := Scale{VPs: 2, Servers: 2, Trials: 1}
	r := NewRunner(42)
	cube := Table1Cube(r, sc)
	start, end := cube.Len()/4, 3*cube.Len()/4

	full := NewShardState(cube, start, end)
	r.RunCubeRange(cube, full, 0, nil, nil)

	// First leg: stop at the first checkpoint past ten trials.
	first := NewShardState(cube, start, end)
	r2 := NewRunner(42)
	r2.RunCubeRange(cube, first, 10, nil, func(final bool) bool { return false })
	if first.Cursor == start || first.Cursor == end {
		t.Fatalf("first leg stopped at %d of [%d,%d)", first.Cursor, start, end)
	}

	// Frame payload: cursor, tallies, snapshot. Restore and finish.
	resumed := NewShardState(cube, start, end)
	if err := resumed.Restore(first.Cursor, first.Tallies, first.Sink.Snapshot()); err != nil {
		t.Fatal(err)
	}
	r3 := NewRunner(42)
	r3.RunCubeRange(cube, resumed, 0, nil, nil)

	if !reflect.DeepEqual(resumed.Tallies, full.Tallies) {
		t.Errorf("resumed tallies differ:\ngot:  %+v\nwant: %+v", resumed.Tallies, full.Tallies)
	}
	if got, want := resumed.Sink.Snapshot(), full.Sink.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed snapshot differs:\ngot:  %+v\nwant: %+v", got, want)
	}
	if resumed.Sink.Trials() != full.Sink.Trials() {
		t.Errorf("resumed trials %d, want %d", resumed.Sink.Trials(), full.Sink.Trials())
	}
}

// TestShardRestoreRejectsBadFrames: cursors outside the shard range and
// tally vectors that do not match the cube layout are refused — the
// journal loader quarantines such frames instead of corrupting state.
func TestShardRestoreRejectsBadFrames(t *testing.T) {
	r := NewRunner(42)
	cube := Table1Cube(r, Scale{VPs: 1, Servers: 1, Trials: 1})
	st := NewShardState(cube, 2, 6)
	if err := st.Restore(1, make([]Tally, cube.NumTallies()), NewObsSink().Snapshot()); err == nil {
		t.Error("cursor below range accepted")
	}
	if err := st.Restore(7, make([]Tally, cube.NumTallies()), NewObsSink().Snapshot()); err == nil {
		t.Error("cursor past range accepted")
	}
	if err := st.Restore(3, make([]Tally, 2), NewObsSink().Snapshot()); err == nil {
		t.Error("short tally vector accepted")
	}
	if err := st.Restore(3, make([]Tally, cube.NumTallies()), NewObsSink().Snapshot()); err != nil {
		t.Errorf("valid frame refused: %v", err)
	}
}

// TestTable1StrategySpecsCanonical: the manifest's provenance lines are
// canonical spec text in campaign order, matching the cube's labels.
func TestTable1StrategySpecsCanonical(t *testing.T) {
	specs := Table1StrategySpecs()
	if len(specs) == 0 {
		t.Fatal("no strategy specs")
	}
	r := NewRunner(42)
	cube := Table1Cube(r, Scale{VPs: 1, Servers: 1, Trials: 1})
	labels := cube.StrategyLabels()
	if len(labels) != len(specs) {
		t.Fatalf("%d cube labels vs %d specs", len(labels), len(specs))
	}
	for i, s := range specs {
		if s.Name != labels[i] {
			t.Errorf("spec %d name %q != cube label %q", i, s.Name, labels[i])
		}
		parsed, err := core.ParseSpec(s.Spec)
		if err != nil {
			t.Errorf("%s: spec does not parse: %v", s.Name, err)
			continue
		}
		if parsed.String() != s.Spec {
			t.Errorf("%s: spec %q not canonical (want %q)", s.Name, s.Spec, parsed.String())
		}
	}
}

// TestFleetDisabledZeroAlloc pins the non-fleet trial hot path at the
// seed allocation baseline: the shard substrate (cube enumeration,
// checkpoint hooks, restore plumbing) must cost a plain RunOne
// nothing. Companion to TestTelemetryDisabledZeroAlloc, and run by
// `make bench-obs` as a hard gate.
func TestFleetDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates alloc counts")
	}
	r := NewRunner(42)
	vp := VantagePoints()[0]
	srv := Servers(1, r.Cal, 42)[0]
	f := core.BuiltinFactories()["teardown-rst/ttl"]
	for i := 0; i < 200; i++ {
		r.RunOne(vp, srv, f, true, 0) // warm the packet pool past GC churn
	}
	// Same budget as TestTelemetryDisabledZeroAlloc: the 139-alloc seed
	// baseline plus one alloc of sync.Pool refill amortization slack.
	const seedBaseline = 139
	avg := testing.AllocsPerRun(1000, func() {
		r.RunOne(vp, srv, f, true, 0)
	})
	if avg > seedBaseline+1 {
		t.Fatalf("trial with fleet machinery linked allocates %.1f/op, budget %d", avg, seedBaseline)
	}
}
