package experiment

import (
	"fmt"
	"strings"

	"intango/internal/middlebox"
	"intango/internal/packet"
)

// OutsideVantagePoints returns the §7 outside-China clients (Amazon
// EC2 in US, UK, Germany, Japan): no interfering client-side
// middleboxes, Tor-irrelevant.
func OutsideVantagePoints() []VantagePoint {
	mk := func(i int, name string) VantagePoint {
		return VantagePoint{
			Name:    "ec2-" + name,
			City:    name,
			ISP:     "ec2",
			Profile: middlebox.ProfileName(""),
			Addr:    packet.AddrFrom4(10, 100, byte(i), 1),
		}
	}
	return []VantagePoint{mk(1, "us"), mk(2, "uk"), mk(3, "de"), mk(4, "jp")}
}

// Table4Row is one strategy's per-vantage-point Min/Max/Avg triple for
// each outcome, as the paper reports it.
type Table4Row struct {
	Strategy string
	// Per-outcome [min, max, avg] percentages across vantage points.
	Success, Failure1, Failure2 [3]float64
}

// table4Spec is one §7.1 strategy row definition: paper label plus the
// strategy spec.
type table4Spec struct {
	label string
	strategySpec
}

// table4Strategies lists the §7.1 strategy rows, each defined by its
// spec.
func table4Strategies() []table4Spec {
	return []table4Spec{
		{"Improved TCB Teardown", strategySpec{"improved-teardown",
			"on:first-payload[teardown(flags=rst,disc=ttl); teardown(flags=rst,disc=md5); inject(desync)]"}},
		{"Improved In-order Data Overlapping", strategySpec{"improved-prefill",
			"on:first-payload[inject(prefill,disc=md5); inject(prefill,disc=old-timestamp)]"}},
		{"TCB Creation + Resync/Desync", strategySpec{"creation-resync-desync",
			"on:handshake[inject(syn,disc=ttl)] on:first-payload[inject(syn,disc=ttl); inject(desync)]"}},
		{"TCB Teardown + TCB Reversal", strategySpec{"teardown-reversal",
			"on:handshake[inject(synack,disc=ttl)] on:first-payload[teardown(flags=rst,disc=ttl); teardown(flags=rst,disc=md5)]"}},
	}
}

// RunTable4 reproduces the strategy rows of Table 4 over the given
// vantage points and servers (use VantagePoints()+Servers for the
// inside-China block, OutsideVantagePoints()+OutsideServers for the
// outside block).
func RunTable4(r *Runner, vps []VantagePoint, servers []Server, trials int) []Table4Row {
	var rows []Table4Row
	for _, spec := range table4Strategies() {
		factory := spec.compile()
		perVP := make([]Tally, len(vps))
		for vi, vp := range vps {
			for _, srv := range servers {
				for trial := 0; trial < trials; trial++ {
					perVP[vi].Add(r.RunOne(vp, srv, factory, true, trial))
				}
			}
		}
		rows = append(rows, summarizeVPs(spec.label, perVP))
	}
	return rows
}

// RunTable4INTANG reproduces the "INTANG Performance" row: a
// persistent, learning INTANG instance per pair.
func RunTable4INTANG(r *Runner, vps []VantagePoint, servers []Server, trials int) Table4Row {
	perVP := make([]Tally, len(vps))
	for vi, vp := range vps {
		for _, srv := range servers {
			for _, out := range r.RunINTANGSeries(vp, srv, trials) {
				perVP[vi].Add(out)
			}
		}
	}
	return summarizeVPs("INTANG Performance", perVP)
}

func summarizeVPs(label string, perVP []Tally) Table4Row {
	row := Table4Row{Strategy: label}
	var sMin, sMax, sSum = 101.0, -1.0, 0.0
	var f1Min, f1Max, f1Sum = 101.0, -1.0, 0.0
	var f2Min, f2Max, f2Sum = 101.0, -1.0, 0.0
	n := 0
	for _, tally := range perVP {
		if tally.Total == 0 {
			continue
		}
		n++
		s, f1, f2 := tally.Rates()
		sMin, sMax, sSum = minF(sMin, s), maxF(sMax, s), sSum+s
		f1Min, f1Max, f1Sum = minF(f1Min, f1), maxF(f1Max, f1), f1Sum+f1
		f2Min, f2Max, f2Sum = minF(f2Min, f2), maxF(f2Max, f2), f2Sum+f2
	}
	if n == 0 {
		return row
	}
	row.Success = [3]float64{sMin, sMax, sSum / float64(n)}
	row.Failure1 = [3]float64{f1Min, f1Max, f1Sum / float64(n)}
	row.Failure2 = [3]float64{f2Min, f2Max, f2Sum / float64(n)}
	return row
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// FormatTable4 renders one block (inside or outside China).
func FormatTable4(block string, rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", block)
	fmt.Fprintf(&b, "%-36s | %-20s | %-20s | %-20s\n", "Strategy", "Success min/max/avg", "Fail1 min/max/avg", "Fail2 min/max/avg")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-36s | %5.1f %5.1f %5.1f    | %5.1f %5.1f %5.1f    | %5.1f %5.1f %5.1f\n",
			row.Strategy,
			row.Success[0], row.Success[1], row.Success[2],
			row.Failure1[0], row.Failure1[1], row.Failure1[2],
			row.Failure2[0], row.Failure2[1], row.Failure2[2])
	}
	return b.String()
}
