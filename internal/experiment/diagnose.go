package experiment

import (
	"fmt"
	"strings"

	"intango/internal/core"
	"intango/internal/middlebox"
	"intango/internal/obs"
	"intango/internal/tcpstack"
	"intango/internal/trace"
)

// The §3.4 future-work item, implemented: "To fully untangle the
// factors causing failures and to quantify the impact of each, more
// in-depth analysis and controlled experiments are required (e.g.,
// using controlled replay server as in [18])." Given a failing trial,
// Diagnose re-runs it in controlled variants with one suspected factor
// removed at a time and reports which removals flip the outcome — the
// simulated equivalent of moving the experiment onto a controlled
// replay server.

// Factor is one suspected failure cause that can be removed.
type Factor struct {
	Name  string
	apply func(vp *VantagePoint, srv *Server, cal *Calibration)
}

// Factors returns the §3.4 failure-cause taxonomy: client-side
// middleboxes, server-side middleboxes, server implementation
// variation, network dynamics, packet loss, and GFW RST heterogeneity.
func Factors() []Factor {
	return []Factor{
		{"client-side-middleboxes", func(vp *VantagePoint, srv *Server, cal *Calibration) {
			vp.Profile = middlebox.ProfileName("")
		}},
		{"server-side-middleboxes", func(vp *VantagePoint, srv *Server, cal *Calibration) {
			srv.ServerSideFirewall = false
		}},
		{"server-implementation", func(vp *VantagePoint, srv *Server, cal *Calibration) {
			srv.Stack = tcpstack.Linux44()
		}},
		{"route-dynamics", func(vp *VantagePoint, srv *Server, cal *Calibration) {
			srv.RouteDynamicsProb = 0
		}},
		{"packet-loss", func(vp *VantagePoint, srv *Server, cal *Calibration) {
			srv.LossRate = 0
		}},
		{"gfw-rst-resync", func(vp *VantagePoint, srv *Server, cal *Calibration) {
			cal.ResyncOnRSTProb = 0
		}},
		{"gfw-overlap-heterogeneity", func(vp *VantagePoint, srv *Server, cal *Calibration) {
			cal.SegmentLastWinsProb = 1
		}},
	}
}

// Attribution is the diagnosis for one factor.
type Attribution struct {
	Factor string
	// Outcome is the trial result with only this factor removed.
	Outcome Outcome
	// Explains: removing the factor alone flips the trial to success.
	Explains bool
	// FirstDivergence is the first flight-recorder event at which the
	// controlled re-run departs from the baseline trial's trace — the
	// mechanism, not just the fact, of the factor's influence. Empty
	// when both traces agree event-for-event.
	FirstDivergence string
	// Bundle is the controlled re-run's full causal trace, attached
	// whenever the re-run diverged from the baseline. WriteBundle
	// exports it for offline inspection.
	Bundle *trace.Trace
}

// Diagnosis is the full controlled-experiment result for one failing
// trial.
type Diagnosis struct {
	VP, Server, Strategy string
	Baseline             Outcome
	// BaselineTrace is the failing trial's flight-recorder snapshot.
	BaselineTrace []obs.Event
	// BaselineBundle is the failing trial's full causal trace.
	BaselineBundle *trace.Trace
	Attributions   []Attribution
	// Residual: no single factor explains the failure (interaction or
	// inherent strategy weakness).
	Residual bool
}

// Diagnose reruns a trial under controlled variants. A nil factory
// means no strategy. Each run is fully causally traced: the baseline's
// bundle is always attached, and each factor re-run that diverges from
// the baseline keeps its own bundle for offline inspection.
func (r *Runner) Diagnose(vp VantagePoint, srv Server, strategyName string, trial int) Diagnosis {
	factory := core.BuiltinFactories()[strategyName]
	diag := Diagnosis{VP: vp.Name, Server: srv.Name, Strategy: strategyName}
	var baseTr *trace.Trace
	diag.Baseline, baseTr = r.RunOneCausal(vp, srv, factory, strategyName, true, trial)
	diag.BaselineTrace = baseTr.Events
	diag.BaselineBundle = baseTr
	if diag.Baseline == Success {
		return diag
	}
	anyExplains := false
	for _, f := range Factors() {
		vpCopy, srvCopy, calCopy := vp, srv, r.Cal
		f.apply(&vpCopy, &srvCopy, &calCopy)
		sub := &Runner{Cal: calCopy, Seed: r.Seed}
		out, tr := sub.RunOneCausal(vpCopy, srvCopy, factory, strategyName+" -"+f.Name, true, trial)
		att := Attribution{
			Factor: f.Name, Outcome: out, Explains: out == Success,
			FirstDivergence: firstDivergence(diag.BaselineTrace, tr.Events),
		}
		if att.FirstDivergence != "" {
			att.Bundle = tr
		}
		if att.Explains {
			anyExplains = true
		}
		diag.Attributions = append(diag.Attributions, att)
	}
	diag.Residual = !anyExplains
	return diag
}

// WriteDiagnosisBundles exports a diagnosis's causal traces into dir:
// the baseline failing trial as <prefix>-baseline.*, and every
// divergent factor re-run as <prefix>-without-<factor>.*. Each bundle
// is a pcap + JSONL + Chrome trace + narrative set. It returns every
// path written.
func WriteDiagnosisBundles(d Diagnosis, dir string) ([]string, error) {
	prefix := sanitizeName(d.Strategy)
	if prefix == "" {
		prefix = "trial"
	}
	var paths []string
	if d.BaselineBundle != nil {
		p, err := d.BaselineBundle.WriteBundle(dir, prefix+"-baseline")
		if err != nil {
			return paths, err
		}
		paths = append(paths, p...)
	}
	for _, att := range d.Attributions {
		if att.Bundle == nil {
			continue
		}
		p, err := att.Bundle.WriteBundle(dir, prefix+"-without-"+sanitizeName(att.Factor))
		if err != nil {
			return paths, err
		}
		paths = append(paths, p...)
	}
	return paths, nil
}

// sanitizeName makes a strategy or factor name filesystem-safe.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', ' ':
			return '-'
		}
		return r
	}, s)
}

// DiagnoseCampaign sweeps a strategy over the population, diagnoses
// every failure, and aggregates how often each factor explains one —
// "quantify the impact of each" (§3.4).
func (r *Runner) DiagnoseCampaign(strategyName string, vps []VantagePoint, servers []Server, trials int) map[string]int {
	counts := map[string]int{}
	factory := core.BuiltinFactories()[strategyName]
	for _, vp := range vps {
		for _, srv := range servers {
			for trial := 0; trial < trials; trial++ {
				if r.RunOne(vp, srv, factory, true, trial) == Success {
					continue
				}
				counts["failures"]++
				diag := r.Diagnose(vp, srv, strategyName, trial)
				for _, att := range diag.Attributions {
					if att.Explains {
						counts[att.Factor]++
					}
				}
				if diag.Residual {
					counts["residual"]++
				}
			}
		}
	}
	return counts
}

// firstDivergence reports where the controlled re-run's trace first
// departs from the baseline's, comparing the retained windows of both
// rings position by position. Both runs are deterministic, so the
// first differing event is exactly where the removed factor began to
// matter. Empty means the traces agree event-for-event.
func firstDivergence(base, alt []obs.Event) string {
	n := len(base)
	if len(alt) < n {
		n = len(alt)
	}
	for i := 0; i < n; i++ {
		if base[i] != alt[i] {
			return fmt.Sprintf("#%d %s (baseline: %s)", i, alt[i], base[i])
		}
	}
	switch {
	case len(alt) > n:
		return fmt.Sprintf("#%d %s (baseline trace ends)", n, alt[n])
	case len(base) > n:
		return fmt.Sprintf("#%d trace ends (baseline: %s)", n, base[n])
	}
	return ""
}

// FormatDiagnosisDetail renders one trial's diagnosis including where
// each factor's controlled re-run diverged from the baseline trace.
func FormatDiagnosisDetail(d Diagnosis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s via %s against %s: baseline %s\n", d.VP, d.Strategy, d.Server, d.Baseline)
	for _, att := range d.Attributions {
		marker := " "
		if att.Explains {
			marker = "*"
		}
		fmt.Fprintf(&b, " %s -%-26s -> %-9s", marker, att.Factor, att.Outcome)
		if att.FirstDivergence != "" {
			fmt.Fprintf(&b, " diverges at %s", att.FirstDivergence)
		}
		b.WriteByte('\n')
	}
	if d.Residual {
		b.WriteString("   no single factor explains the failure\n")
	}
	return b.String()
}

// FormatDiagnosis renders a campaign's factor attribution.
func FormatDiagnosis(strategy string, counts map[string]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "failure attribution for %s (%d failures):\n", strategy, counts["failures"])
	for _, f := range Factors() {
		if n := counts[f.Name]; n > 0 {
			fmt.Fprintf(&b, "  %-28s explains %d\n", f.Name, n)
		}
	}
	if n := counts["residual"]; n > 0 {
		fmt.Fprintf(&b, "  %-28s %d (interactions / inherent)\n", "no single factor", n)
	}
	return b.String()
}
