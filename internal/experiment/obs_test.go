package experiment

import (
	"encoding/json"
	"reflect"
	"testing"

	"intango/internal/core"
	"intango/internal/obs"
	"intango/internal/trace"
)

// TestObsSerialParallelDeterminism is the headline guarantee: a
// one-worker run and a many-worker run of the same campaign produce
// bit-identical tallies, counters, aggregates, and retained failure
// traces.
func TestObsSerialParallelDeterminism(t *testing.T) {
	scale := Scale{VPs: 2, Servers: 2, Trials: 1}
	run := func(workers int, noPool bool) ([]Table1Row, *ObsSink) {
		r := NewRunner(42)
		r.Workers = workers
		r.NoPool = noPool
		r.Obs = NewObsSink()
		rows := RunTable1Parallel(r, scale)
		return rows, r.Obs
	}
	rowsSerial, obsSerial := run(1, false)
	rowsPar, obsPar := run(8, false)

	// Per-worker pools arm: private recycling per worker must be just as
	// invisible as the shared sync.Pool — bit-identical rows and full
	// snapshots — while the pools actually see the traffic.
	{
		r := NewRunner(42)
		r.Workers = 8
		r.PerWorkerPool = true
		r.Obs = NewObsSink()
		rowsPW := RunTable1Parallel(r, scale)
		if !reflect.DeepEqual(rowsSerial, rowsPW) {
			t.Errorf("per-worker pools changed table rows:\nshared: %+v\nper-worker: %+v", rowsSerial, rowsPW)
		}
		if !reflect.DeepEqual(obsSerial.Snapshot(), r.Obs.Snapshot()) {
			t.Errorf("per-worker pools changed the obs snapshot")
		}
		ps := r.PoolStats()
		if ps.Gets == 0 || ps.Recycled() == 0 {
			t.Errorf("per-worker pools saw no traffic: %+v", ps)
		}
	}

	if !reflect.DeepEqual(rowsSerial, rowsPar) {
		t.Errorf("table rows differ:\nserial: %+v\nparallel: %+v", rowsSerial, rowsPar)
	}
	// Packet pooling must be invisible to results: the heap-only control
	// arm produces bit-identical rows and counters, serial and parallel.
	rowsNoPool, obsNoPool := run(1, true)
	rowsNoPoolPar, obsNoPoolPar := run(8, true)
	if !reflect.DeepEqual(rowsSerial, rowsNoPool) {
		t.Errorf("pooling changed table rows:\npooled: %+v\nheap: %+v", rowsSerial, rowsNoPool)
	}
	if !reflect.DeepEqual(rowsNoPool, rowsNoPoolPar) {
		t.Errorf("heap-arm serial/parallel rows differ:\nserial: %+v\nparallel: %+v", rowsNoPool, rowsNoPoolPar)
	}
	if !reflect.DeepEqual(obsSerial.Snapshot().Counters, obsNoPool.Snapshot().Counters) {
		t.Errorf("pooling changed counters:\npooled: %v\nheap: %v",
			obsSerial.Snapshot().Counters, obsNoPool.Snapshot().Counters)
	}
	if !reflect.DeepEqual(obsSerial.Failures(), obsNoPool.Failures()) {
		t.Errorf("pooling changed retained failure traces")
	}
	if !reflect.DeepEqual(obsNoPool.Snapshot().Counters, obsNoPoolPar.Snapshot().Counters) {
		t.Errorf("heap-arm serial/parallel counters differ")
	}
	snapS, snapP := obsSerial.Snapshot(), obsPar.Snapshot()
	if !reflect.DeepEqual(snapS.Counters, snapP.Counters) {
		t.Errorf("counter snapshots differ:\nserial: %v\nparallel: %v", snapS.Counters, snapP.Counters)
	}
	// The full snapshot — gauges and stage-span histograms included —
	// must be bit-identical too: histogram merges are bucketwise
	// integer sums, so shard order cannot show through.
	if !reflect.DeepEqual(snapS, snapP) {
		t.Errorf("full snapshots differ:\nserial: %+v\nparallel: %+v", snapS, snapP)
	}
	hs, ok := snapS.Histograms["span.handshake"]
	if !ok || hs.Count == 0 {
		t.Error("no span.handshake histogram recorded; span determinism check is vacuous")
	}
	if hs.Count != uint64(obsSerial.Trials()) {
		t.Errorf("span.handshake count %d != trials %d", hs.Count, obsSerial.Trials())
	}
	for _, name := range []string{"span.build", "span.strategy", "span.verdict", "span.teardown"} {
		if snapS.Histograms[name].Count == 0 {
			t.Errorf("stage histogram %s is empty", name)
		}
	}
	if obsSerial.Trials() != obsPar.Trials() {
		t.Errorf("trials differ: %d vs %d", obsSerial.Trials(), obsPar.Trials())
	}
	// Checkpoint codec arm: the snapshot must survive the frame JSON
	// round trip and fold into a fresh registry bit-for-bit — the
	// invariant every fleet checkpoint/resume cycle leans on.
	frame, err := json.Marshal(snapS)
	if err != nil {
		t.Fatal(err)
	}
	var decoded obs.Snapshot
	if err := json.Unmarshal(frame, &decoded); err != nil {
		t.Fatal(err)
	}
	replayed := obs.NewRegistry()
	replayed.MergeSnapshot(decoded)
	if got := replayed.Snapshot(); !reflect.DeepEqual(got, snapS) {
		t.Errorf("snapshot encode→decode→Merge round trip diverged:\ngot:  %+v\nwant: %+v", got, snapS)
	}
	aggS, aggP := obsSerial.Aggregate(0), obsPar.Aggregate(0)
	if aggS.TotalEvents != aggP.TotalEvents ||
		aggS.EventsPerTrialP50 != aggP.EventsPerTrialP50 ||
		aggS.EventsPerTrialP99 != aggP.EventsPerTrialP99 {
		t.Errorf("aggregates differ: %v vs %v", aggS, aggP)
	}
	if !reflect.DeepEqual(obsSerial.Failures(), obsPar.Failures()) {
		t.Errorf("retained failure traces differ:\nserial: %+v\nparallel: %+v",
			obsSerial.Failures(), obsPar.Failures())
	}
	if len(obsSerial.Failures()) == 0 {
		t.Error("campaign retained no failure traces; determinism check is vacuous")
	}
	if snapS.Counters["trials.total"] != uint64(obsSerial.Trials()) {
		t.Errorf("trials.total counter %d != absorbed trials %d",
			snapS.Counters["trials.total"], obsSerial.Trials())
	}

	// The same guarantee over a graph topology: the ECMP demo fabric
	// (two parallel censor devices, asymmetric reverse route) replaces
	// the derived linear paths, and serial vs parallel must still be
	// bit-identical — rows, counters, and retained failure traces.
	runGraph := func(workers int) ([]Table1Row, *ObsSink) {
		r := NewRunner(42)
		r.Workers = workers
		r.Topo = GraphDemoTopo
		r.Obs = NewObsSink()
		rows := RunTable1Parallel(r, scale)
		return rows, r.Obs
	}
	rowsGS, obsGS := runGraph(1)
	rowsGP, obsGP := runGraph(8)
	if !reflect.DeepEqual(rowsGS, rowsGP) {
		t.Errorf("graph-topology serial/parallel rows differ:\nserial: %+v\nparallel: %+v", rowsGS, rowsGP)
	}
	if !reflect.DeepEqual(obsGS.Snapshot().Counters, obsGP.Snapshot().Counters) {
		t.Errorf("graph-topology serial/parallel counters differ:\nserial: %v\nparallel: %v",
			obsGS.Snapshot().Counters, obsGP.Snapshot().Counters)
	}
	if !reflect.DeepEqual(obsGS.Failures(), obsGP.Failures()) {
		t.Errorf("graph-topology serial/parallel failure traces differ")
	}
	if reflect.DeepEqual(rowsGS, rowsSerial) {
		t.Error("graph campaign produced identical rows to the linear campaign; graph arm is vacuous")
	}

	// The same guarantee with a spec-compiled censor replacing the GFW
	// population: the inline Turkmenistan blocker (flow blackholes,
	// per-packet bidirectional DPI) is built per trial from one cached
	// Compiled, and serial vs parallel must stay bit-identical.
	runCensor := func(workers int) ([]Table1Row, *ObsSink) {
		r := NewRunner(42)
		r.Workers = workers
		r.Censor = "turkmenistan"
		r.Obs = NewObsSink()
		rows := RunTable1Parallel(r, scale)
		return rows, r.Obs
	}
	rowsCS, obsCS := runCensor(1)
	rowsCP, obsCP := runCensor(8)
	if !reflect.DeepEqual(rowsCS, rowsCP) {
		t.Errorf("spec-censor serial/parallel rows differ:\nserial: %+v\nparallel: %+v", rowsCS, rowsCP)
	}
	if !reflect.DeepEqual(obsCS.Snapshot().Counters, obsCP.Snapshot().Counters) {
		t.Errorf("spec-censor serial/parallel counters differ:\nserial: %v\nparallel: %v",
			obsCS.Snapshot().Counters, obsCP.Snapshot().Counters)
	}
	if !reflect.DeepEqual(obsCS.Failures(), obsCP.Failures()) {
		t.Errorf("spec-censor serial/parallel failure traces differ")
	}
	if obsCS.Snapshot().Counters["censor.detect-keyword"] == 0 {
		t.Error("spec-censor campaign detected nothing; censor arm is vacuous")
	}
	if reflect.DeepEqual(rowsCS, rowsSerial) {
		t.Error("spec-censor campaign produced identical rows to the GFW campaign; arm is vacuous")
	}

	// And over a graph topology whose censors attach declaratively
	// (censor= node attributes binding registry censors onto parallel
	// branches).
	runZoo := func(workers int) ([]Table1Row, *ObsSink) {
		r := NewRunner(42)
		r.Workers = workers
		r.Topo = GraphZooTopo
		r.Obs = NewObsSink()
		rows := RunTable1Parallel(r, scale)
		return rows, r.Obs
	}
	rowsZS, obsZS := runZoo(1)
	rowsZP, obsZP := runZoo(8)
	if !reflect.DeepEqual(rowsZS, rowsZP) {
		t.Errorf("censor-zoo-topology serial/parallel rows differ:\nserial: %+v\nparallel: %+v", rowsZS, rowsZP)
	}
	if !reflect.DeepEqual(obsZS.Snapshot().Counters, obsZP.Snapshot().Counters) {
		t.Errorf("censor-zoo-topology serial/parallel counters differ")
	}
	if !reflect.DeepEqual(obsZS.Failures(), obsZP.Failures()) {
		t.Errorf("censor-zoo-topology serial/parallel failure traces differ")
	}

	// And over a bandwidth-constrained topology: token-bucket shaping,
	// a tight router queue, and the congestion machinery it wakes up
	// (tail drops, retransmission timers, cwnd state) are all integer
	// virtual-time arithmetic, so serial vs parallel must remain
	// bit-identical with queues overflowing.
	bwSpec := derivedSpec(shapeKey(VantagePoints()[0], Servers(1, NewRunner(42).Cal, 42)[0], 5))
	for i := range bwSpec.Links {
		if bwSpec.Links[i].From == "c" || bwSpec.Links[i].To == "c" {
			bwSpec.Links[i].RateBits = 56_000
			bwSpec.Links[i].Queue = 4
		}
	}
	runBW := func(workers int) ([]Table1Row, *ObsSink) {
		r := NewRunner(42)
		r.Workers = workers
		r.Topo = bwSpec.String()
		r.Obs = NewObsSink()
		rows := RunTable1Parallel(r, scale)
		return rows, r.Obs
	}
	rowsBS, obsBS := runBW(1)
	rowsBP, obsBP := runBW(8)
	if !reflect.DeepEqual(rowsBS, rowsBP) {
		t.Errorf("bw-constrained serial/parallel rows differ:\nserial: %+v\nparallel: %+v", rowsBS, rowsBP)
	}
	if !reflect.DeepEqual(obsBS.Snapshot().Counters, obsBP.Snapshot().Counters) {
		t.Errorf("bw-constrained serial/parallel counters differ:\nserial: %v\nparallel: %v",
			obsBS.Snapshot().Counters, obsBP.Snapshot().Counters)
	}
	if !reflect.DeepEqual(obsBS.Failures(), obsBP.Failures()) {
		t.Errorf("bw-constrained serial/parallel failure traces differ")
	}
	if obsBS.Snapshot().Counters["netem.drop-queue"] == 0 {
		t.Error("bw-constrained campaign saw no queue drops; congestion arm is vacuous")
	}
	if reflect.DeepEqual(rowsBS, rowsSerial) {
		t.Error("bw-constrained campaign produced identical rows to the unshaped campaign; arm is vacuous")
	}

	// Traced vs untraced over the graph: attaching the packet tracer
	// (which suppresses pool recycling on the fabric) must not perturb
	// the outcome, the flight-recorder stream, or the lineage wire IDs
	// embedded in it.
	rTrace := NewRunner(42)
	rTrace.Topo = GraphDemoTopo
	vp := VantagePoints()[0]
	srv := Servers(1, rTrace.Cal, 42)[0]
	f := core.BuiltinFactories()["teardown-rst/ttl"]
	outPlain, _, recPlain := rTrace.runRig(vp, srv, f, true, 0, obs.NewRegistry(), nil, rTrace.packetPool())
	tc := trace.New()
	outTraced, _, recTraced := rTrace.runRig(vp, srv, f, true, 0, obs.NewRegistry(), tc, rTrace.packetPool())
	if outPlain != outTraced {
		t.Errorf("tracing changed graph outcome: %v vs %v", outPlain, outTraced)
	}
	if !reflect.DeepEqual(recPlain.Events(), recTraced.Events()) {
		t.Errorf("tracing perturbed the graph flight-recorder stream (lineage IDs included)")
	}
	if !reflect.DeepEqual(recPlain.Spans(), recTraced.Spans()) {
		t.Errorf("tracing perturbed stage spans:\nplain: %+v\ntraced: %+v", recPlain.Spans(), recTraced.Spans())
	}
	if len(recPlain.Spans()) == 0 {
		t.Error("instrumented trial recorded no stage spans")
	}
	if len(tc.Packets) == 0 {
		t.Fatal("tracer captured no packets on the graph topology")
	}
	for _, p := range tc.Packets {
		if p.ID == 0 {
			t.Fatalf("captured packet with unstamped lineage: %+v", p)
		}
	}
}

// TestObsDoesNotPerturbOutcomes: attaching the full instrumentation
// bundle must not change any trial's classification.
func TestObsDoesNotPerturbOutcomes(t *testing.T) {
	vp := VantagePoints()[0]
	bare := NewRunner(7)
	srv := Servers(3, bare.Cal, 7)
	f := core.BuiltinFactories()["teardown-rst/ttl"]
	instr := NewRunner(7)
	instr.Obs = NewObsSink()
	for si, s := range srv {
		for trial := 0; trial < 2; trial++ {
			a := bare.RunOne(vp, s, f, true, trial)
			b := instr.RunOne(vp, s, f, true, trial)
			if a != b {
				t.Fatalf("server %d trial %d: bare %v, instrumented %v", si, trial, a, b)
			}
		}
	}
	if instr.Obs.Trials() == 0 || len(instr.Obs.Snapshot().Counters) == 0 {
		t.Error("instrumented runner collected nothing")
	}
}

// TestRunOneTraced: the flight recorder yields a non-empty trace with
// nondecreasing virtual timestamps.
func TestRunOneTraced(t *testing.T) {
	r := NewRunner(7)
	vp := VantagePoints()[0]
	srv := Servers(1, r.Cal, 7)[0]
	f := core.BuiltinFactories()["improved-teardown"]
	out, events := r.RunOneTraced(vp, srv, f, true, 3)
	if out != r.RunOne(vp, srv, f, true, 3) {
		t.Error("traced run classified differently from plain run")
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	for i := 1; i < len(events); i++ {
		if events[i].T < events[i-1].T {
			t.Fatalf("timestamps regress at %d: %v after %v", i, events[i], events[i-1])
		}
	}
	for _, e := range events {
		if e.Subsys == "" || e.Verb == "" {
			t.Fatalf("event missing subsystem or verb: %+v", e)
		}
	}
}

func TestOutcomeStringUnknown(t *testing.T) {
	if got := Outcome(7).String(); got != "outcome(7)" {
		t.Errorf("Outcome(7).String() = %q, want outcome(7)", got)
	}
	if got := Failure2.String(); got != "failure-2" {
		t.Errorf("Failure2.String() = %q", got)
	}
}

func TestFirstDivergence(t *testing.T) {
	a := []obs.Event{{Subsys: "gfw", Verb: "resync"}, {Subsys: "gfw", Verb: "inject-type1"}}
	if d := firstDivergence(a, a); d != "" {
		t.Errorf("identical traces diverge: %q", d)
	}
	b := []obs.Event{{Subsys: "gfw", Verb: "resync"}, {Subsys: "gfw", Verb: "keyword-match"}}
	if d := firstDivergence(a, b); d == "" {
		t.Error("differing traces report no divergence")
	}
	if d := firstDivergence(a, a[:1]); d == "" {
		t.Error("truncated trace reports no divergence")
	}
}

// TestDiagnoseDivergence: when a factor removal flips a failing trial,
// its controlled re-run must diverge from the baseline trace.
func TestDiagnoseDivergence(t *testing.T) {
	r := NewRunner(42)
	servers := Servers(30, r.Cal, 42)
	f := core.BuiltinFactories()["teardown-rst/ttl"]
	for _, vp := range VantagePoints() {
		for _, srv := range servers {
			if r.RunOne(vp, srv, f, true, 0) == Success {
				continue
			}
			d := r.Diagnose(vp, srv, "teardown-rst/ttl", 0)
			if len(d.BaselineTrace) == 0 {
				t.Fatal("failing baseline has no trace")
			}
			for _, att := range d.Attributions {
				if att.Explains && att.FirstDivergence == "" {
					t.Errorf("factor %s flips the outcome but traces do not diverge", att.Factor)
				}
			}
			if out := FormatDiagnosisDetail(d); out == "" {
				t.Error("empty diagnosis detail")
			}
			return
		}
	}
	t.Fatal("no failing pair found to diagnose")
}

// BenchmarkObsOverhead measures the instrumentation tax on a full
// trial: "disabled" is the nil-Obs hot path (one branch per probe
// site), "enabled" attaches the registry and flight recorder.
func BenchmarkObsOverhead(b *testing.B) {
	vp := VantagePoints()[0]
	f := core.BuiltinFactories()["improved-teardown"]
	b.Run("disabled", func(b *testing.B) {
		r := NewRunner(7)
		srv := Servers(1, r.Cal, 7)[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.RunOne(vp, srv, f, true, 3)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		r := NewRunner(7)
		srv := Servers(1, r.Cal, 7)[0]
		r.Obs = NewObsSink()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.RunOne(vp, srv, f, true, 3)
		}
	})
}

// TestObsCausalDeterminism extends the headline guarantee to causal
// tracing: with Causal set, serial and parallel runs produce identical
// results including the retained trace bundles; and turning tracing on
// changes nothing about outcomes, counters, or flight-recorder events
// — it only adds the bundles.
func TestObsCausalDeterminism(t *testing.T) {
	scale := Scale{VPs: 2, Servers: 2, Trials: 1}
	run := func(workers int, causal bool) ([]Table1Row, *ObsSink) {
		r := NewRunner(42)
		r.Workers = workers
		r.Causal = causal
		r.Obs = NewObsSink()
		rows := RunTable1Parallel(r, scale)
		return rows, r.Obs
	}
	rowsOff, obsOff := run(1, false)
	rowsOn, obsOn := run(1, true)
	rowsOnPar, obsOnPar := run(8, true)

	if !reflect.DeepEqual(rowsOff, rowsOn) {
		t.Errorf("causal tracing changed table rows:\noff: %+v\non: %+v", rowsOff, rowsOn)
	}
	if !reflect.DeepEqual(rowsOn, rowsOnPar) {
		t.Errorf("causal serial/parallel rows differ")
	}
	if !reflect.DeepEqual(obsOff.Snapshot().Counters, obsOn.Snapshot().Counters) {
		t.Errorf("causal tracing changed counters")
	}
	// Serial vs parallel with tracing on: bundles and all.
	if !reflect.DeepEqual(obsOn.Failures(), obsOnPar.Failures()) {
		t.Errorf("causal serial/parallel failure traces (with bundles) differ")
	}
	// On vs off: identical apart from the attached bundles.
	strip := func(ts []TrialTrace) []TrialTrace {
		out := append([]TrialTrace(nil), ts...)
		for i := range out {
			out[i].Bundle = nil
		}
		return out
	}
	if !reflect.DeepEqual(strip(obsOn.Failures()), strip(obsOff.Failures())) {
		t.Errorf("causal tracing perturbed the flight-recorder traces")
	}
	fails := obsOn.Failures()
	if len(fails) == 0 {
		t.Fatal("no failures retained; causal determinism check is vacuous")
	}
	for _, f := range fails {
		if f.Bundle == nil {
			t.Fatalf("failing trial %s/%s/%d retained no bundle", f.VP, f.Server, f.Trial)
		}
		if len(f.Bundle.Packets) == 0 || len(f.Bundle.Events) == 0 {
			t.Fatalf("bundle for %s/%s/%d is empty", f.VP, f.Server, f.Trial)
		}
	}
	for _, f := range obsOff.Failures() {
		if f.Bundle != nil {
			t.Fatal("bundle retained with tracing off")
		}
	}
}

// TestTelemetryDisabledZeroAlloc pins the disabled-telemetry trial
// at the seed baseline of the hot-path allocation gate: growing the
// obs layer (gauges, histograms, spans, sampling) must cost the
// uninstrumented path nothing beyond its one nil check per probe
// site. BenchmarkTrialHotPath reports the same number; this test
// makes the bound a hard failure in `go test`.
func TestTelemetryDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates alloc counts")
	}
	r := NewRunner(42)
	vp := VantagePoints()[0]
	srv := Servers(1, r.Cal, 42)[0]
	f := core.BuiltinFactories()["teardown-rst/ttl"]
	for i := 0; i < 200; i++ {
		r.RunOne(vp, srv, f, true, 0) // warm the packet pool past GC churn
	}
	// Seed baseline: BenchmarkTrialHotPath reports 139 allocs/op at
	// steady state. Short windows read ~1 high (sync.Pool refills after
	// GC amortize over fewer runs — the seed itself measures 143 at
	// 200 iterations), so allow that amortization slack but nothing
	// that would hide a real per-trial allocation on the disabled path.
	const seedBaseline = 139
	avg := testing.AllocsPerRun(1000, func() {
		r.RunOne(vp, srv, f, true, 0)
	})
	if avg > seedBaseline+1 {
		t.Fatalf("disabled-telemetry trial allocates %.1f/op, budget %d", avg, seedBaseline)
	}
}
