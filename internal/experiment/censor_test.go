package experiment

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"intango/internal/censor"
	"intango/internal/tcpstack"
)

// TestAblationSpecsCanonical checks the §8 spec-edit ladder is well
// formed: one rung per Hardenings() entry, in order, each a canonical
// spec (round-trips through the grammar unchanged) that differs from
// the measured gfw2017 only by its harden: statements and the pinned
// detection-miss draw.
func TestAblationSpecsCanonical(t *testing.T) {
	hardenings := Hardenings()
	specs := AblationCensorSpecs()
	if len(specs) != len(hardenings) {
		t.Fatalf("%d censor specs for %d hardenings", len(specs), len(hardenings))
	}
	for i, s := range specs {
		if s.Hardening != hardenings[i].Name {
			t.Errorf("rung %d: spec names hardening %q, Hardenings() has %q", i, s.Hardening, hardenings[i].Name)
		}
		spec, err := censor.ParseCensor(s.Spec)
		if err != nil {
			t.Errorf("%s: bad spec %q: %v", s.Hardening, s.Spec, err)
			continue
		}
		if canon := spec.String(); canon != s.Spec {
			t.Errorf("%s: spec %q is not canonical (want %q)", s.Hardening, s.Spec, canon)
		}
		if !strings.Contains(s.Spec, "param:miss(p=0)") {
			t.Errorf("%s: spec %q does not pin the detection-miss draw off", s.Hardening, s.Spec)
		}
	}
}

// TestAblationSpecsMatchConfig is the satellite equivalence proof: each
// §8 rung built two ways — the legacy route (Config toggles via
// Runner.HardenGFW plus Cal pinning) and the declarative route (the
// canonical spec edit compiled through the censor grammar) — must
// classify every (strategy, server-stack) trial identically.
func TestAblationSpecsMatchConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation sweep twice over")
	}
	vp := VantagePoints()[0]
	base := Servers(1, DefaultCalibration(), 42)[0]
	base.Mix = EvolvedOnly
	base.ServerSideFirewall = false
	base.RouteDynamicsProb = 0
	base.LossRate = 0
	stacks := []tcpstack.Profile{tcpstack.Linux44(), tcpstack.Linux2437()}

	hardenings := Hardenings()
	specs := AblationCensorSpecs()
	if len(specs) != len(hardenings) {
		t.Fatalf("%d censor specs for %d hardenings", len(specs), len(hardenings))
	}
	for i, h := range hardenings {
		for _, strat := range ablationStrategies() {
			factory := strat.compile()
			for _, stack := range stacks {
				srv := base
				srv.Stack = stack

				legacy := NewRunner(42)
				cfgOut := legacy.runHardened(vp, srv, factory, h)

				viaSpec := NewRunner(42)
				viaSpec.Censor = specs[i].Spec
				specOut := viaSpec.RunOne(vp, srv, factory, true, 17)

				if cfgOut != specOut {
					t.Errorf("%s / %s / %s: Config-toggled censor = %v, spec-compiled censor = %v",
						h.Name, strat.name, stack.Name, cfgOut, specOut)
				}
			}
		}
	}
}

// TestCensorsMatchGolden regenerates the censor-zoo reference dump —
// registry table, strategy × censor matrix, active-probing demo — and
// compares it against the committed golden (what `cmd/tables -what
// censors` prints at seed 42).
func TestCensorsMatchGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-censor matrix campaign")
	}
	want, err := os.ReadFile("testdata/censors.golden")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	WriteCensorsCampaign(&got, NewRunner(42))
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("output drifted from testdata/censors.golden:\ngot:\n%swant:\n%s", got.Bytes(), want)
	}
}
