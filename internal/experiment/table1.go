package experiment

import (
	"fmt"
	"strings"

	"intango/internal/core"
)

// Scale controls how much of the full campaign a run covers. The paper
// ran 11 VPs × 77 websites × 50 repetitions; that is available (and
// used by cmd/tables -full), while tests and benchmarks use reduced
// scales with the same populations.
type Scale struct {
	VPs     int
	Servers int
	Trials  int
}

// PaperScale is the full §3.3 campaign.
func PaperScale() Scale { return Scale{VPs: 11, Servers: 77, Trials: 50} }

// QuickScale is a reduced campaign for tests and benches.
func QuickScale() Scale { return Scale{VPs: 11, Servers: 12, Trials: 2} }

// Table1Row is one strategy's aggregate results, with and without the
// sensitive keyword.
type Table1Row struct {
	Strategy    string
	Discrepancy string
	Sensitive   Tally
	Clean       Tally
}

// strategySpec defines one campaign strategy as data: the registry
// alias (used for observability retention labels and human output) and
// the spec text the factory is compiled from. The alias must agree
// with the core registry — TestTableSpecsMatchRegistry pins that.
type strategySpec struct {
	name string
	spec string
}

// compile builds the factory for a strategy spec, panicking on a
// malformed definition (these are compile-time tables, not user input).
func (s strategySpec) compile() core.Factory {
	f, err := core.CompileSpecAs(s.name, s.spec)
	if err != nil {
		panic(fmt.Sprintf("experiment: bad spec for %s: %v", s.name, err))
	}
	return f
}

// table1Spec is one Table 1 row definition: paper labels plus the
// strategy spec.
type table1Spec struct {
	group, disc string
	strategySpec
}

// table1Strategies lists the Table 1 rows in paper order, each defined
// by its spec.
func table1Strategies() []table1Spec {
	row := func(group, disc, name, spec string) table1Spec {
		return table1Spec{group, disc, strategySpec{name, spec}}
	}
	return []table1Spec{
		row("No Strategy", "N/A", "none", "pass"),
		row("TCB creation with SYN", "TTL", "tcb-creation-syn/ttl",
			"on:handshake[inject(syn,disc=ttl)]"),
		row("TCB creation with SYN", "Bad checksum", "tcb-creation-syn/bad-checksum",
			"on:handshake[inject(syn,disc=bad-checksum)]"),
		row("Reassembly out-of-order data", "IP fragments", "ooo-ipfrag",
			"on:first-payload(min=16,rexmit)[fragment(ip); reorder(head-last); duplicate(tails,fill=junk,pos=before)]"),
		row("Reassembly out-of-order data", "TCP segments", "ooo-tcpseg",
			"on:first-payload(min=4)[fragment(tcp,at=4); reorder(head-last); duplicate(tails,fill=junk,pos=after)]"),
		row("Reassembly in-order data", "TTL", "prefill/ttl",
			"on:first-payload[inject(prefill,disc=ttl)]"),
		row("Reassembly in-order data", "Bad ACK number", "prefill/bad-ack",
			"on:first-payload[inject(prefill,disc=bad-ack)]"),
		row("Reassembly in-order data", "Bad checksum", "prefill/bad-checksum",
			"on:first-payload[inject(prefill,disc=bad-checksum)]"),
		row("Reassembly in-order data", "No TCP flag", "prefill/no-flag",
			"on:first-payload[inject(prefill,disc=no-flag)]"),
		row("TCB teardown with RST", "TTL", "teardown-rst/ttl",
			"on:first-payload[teardown(flags=rst,disc=ttl)]"),
		row("TCB teardown with RST", "Bad checksum", "teardown-rst/bad-checksum",
			"on:first-payload[teardown(flags=rst,disc=bad-checksum)]"),
		row("TCB teardown with RST/ACK", "TTL", "teardown-rstack/ttl",
			"on:first-payload[teardown(flags=rstack,disc=ttl)]"),
		row("TCB teardown with RST/ACK", "Bad checksum", "teardown-rstack/bad-checksum",
			"on:first-payload[teardown(flags=rstack,disc=bad-checksum)]"),
		row("TCB teardown with FIN", "TTL", "teardown-fin/ttl",
			"on:first-payload[teardown(flags=finack,disc=ttl)]"),
		row("TCB teardown with FIN", "Bad checksum", "teardown-fin/bad-checksum",
			"on:first-payload[teardown(flags=finack,disc=bad-checksum)]"),
	}
}

// RunTable1 reproduces Table 1: every existing strategy probed from
// every vantage point against the website population, with and without
// the sensitive keyword.
func RunTable1(r *Runner, scale Scale) []Table1Row {
	vps := VantagePoints()[:min(scale.VPs, 11)]
	servers := Servers(scale.Servers, r.Cal, r.Seed)
	var rows []Table1Row
	for _, spec := range table1Strategies() {
		row := Table1Row{Strategy: spec.group, Discrepancy: spec.disc}
		factory := spec.compile()
		for _, vp := range vps {
			for _, srv := range servers {
				for trial := 0; trial < scale.Trials; trial++ {
					row.Sensitive.Add(r.RunOne(vp, srv, factory, true, trial))
					row.Clean.Add(r.RunOne(vp, srv, factory, false, trial+scale.Trials))
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable1 renders the rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %-14s | %21s | %15s\n", "Strategy", "Discrepancy", "w/ sensitive keyword", "w/o keyword")
	fmt.Fprintf(&b, "%-30s %-14s | %6s %6s %7s | %7s %7s\n", "", "", "Succ", "Fail1", "Fail2", "Succ", "Fail1")
	for _, row := range rows {
		s, f1, f2 := row.Sensitive.Rates()
		cs, cf1, _ := row.Clean.Rates()
		fmt.Fprintf(&b, "%-30s %-14s | %5.1f%% %5.1f%% %6.1f%% | %6.1f%% %6.1f%%\n",
			row.Strategy, row.Discrepancy, s, f1, f2, cs, cf1)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
