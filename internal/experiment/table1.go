package experiment

import (
	"fmt"
	"strings"

	"intango/internal/core"
)

// Scale controls how much of the full campaign a run covers. The paper
// ran 11 VPs × 77 websites × 50 repetitions; that is available (and
// used by cmd/tables -full), while tests and benchmarks use reduced
// scales with the same populations.
type Scale struct {
	VPs     int
	Servers int
	Trials  int
}

// PaperScale is the full §3.3 campaign.
func PaperScale() Scale { return Scale{VPs: 11, Servers: 77, Trials: 50} }

// QuickScale is a reduced campaign for tests and benches.
func QuickScale() Scale { return Scale{VPs: 11, Servers: 12, Trials: 2} }

// Table1Row is one strategy's aggregate results, with and without the
// sensitive keyword.
type Table1Row struct {
	Strategy    string
	Discrepancy string
	Sensitive   Tally
	Clean       Tally
}

// table1Strategies lists the Table 1 rows in paper order.
func table1Strategies() []struct{ group, disc, factory string } {
	return []struct{ group, disc, factory string }{
		{"No Strategy", "N/A", "none"},
		{"TCB creation with SYN", "TTL", "tcb-creation-syn/ttl"},
		{"TCB creation with SYN", "Bad checksum", "tcb-creation-syn/bad-checksum"},
		{"Reassembly out-of-order data", "IP fragments", "ooo-ipfrag"},
		{"Reassembly out-of-order data", "TCP segments", "ooo-tcpseg"},
		{"Reassembly in-order data", "TTL", "prefill/ttl"},
		{"Reassembly in-order data", "Bad ACK number", "prefill/bad-ack"},
		{"Reassembly in-order data", "Bad checksum", "prefill/bad-checksum"},
		{"Reassembly in-order data", "No TCP flag", "prefill/no-flag"},
		{"TCB teardown with RST", "TTL", "teardown-rst/ttl"},
		{"TCB teardown with RST", "Bad checksum", "teardown-rst/bad-checksum"},
		{"TCB teardown with RST/ACK", "TTL", "teardown-rstack/ttl"},
		{"TCB teardown with RST/ACK", "Bad checksum", "teardown-rstack/bad-checksum"},
		{"TCB teardown with FIN", "TTL", "teardown-fin/ttl"},
		{"TCB teardown with FIN", "Bad checksum", "teardown-fin/bad-checksum"},
	}
}

// RunTable1 reproduces Table 1: every existing strategy probed from
// every vantage point against the website population, with and without
// the sensitive keyword.
func RunTable1(r *Runner, scale Scale) []Table1Row {
	vps := VantagePoints()[:min(scale.VPs, 11)]
	servers := Servers(scale.Servers, r.Cal, r.Seed)
	factories := core.BuiltinFactories()
	var rows []Table1Row
	for _, spec := range table1Strategies() {
		row := Table1Row{Strategy: spec.group, Discrepancy: spec.disc}
		factory := factories[spec.factory]
		for _, vp := range vps {
			for _, srv := range servers {
				for trial := 0; trial < scale.Trials; trial++ {
					row.Sensitive.Add(r.RunOne(vp, srv, factory, true, trial))
					row.Clean.Add(r.RunOne(vp, srv, factory, false, trial+scale.Trials))
				}
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable1 renders the rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %-14s | %21s | %15s\n", "Strategy", "Discrepancy", "w/ sensitive keyword", "w/o keyword")
	fmt.Fprintf(&b, "%-30s %-14s | %6s %6s %7s | %7s %7s\n", "", "", "Succ", "Fail1", "Fail2", "Succ", "Fail1")
	for _, row := range rows {
		s, f1, f2 := row.Sensitive.Rates()
		cs, cf1, _ := row.Clean.Rates()
		fmt.Fprintf(&b, "%-30s %-14s | %5.1f%% %5.1f%% %6.1f%% | %6.1f%% %6.1f%%\n",
			row.Strategy, row.Discrepancy, s, f1, f2, cs, cf1)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
