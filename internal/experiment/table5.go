package experiment

import (
	"fmt"
	"strings"

	"intango/internal/core"
)

// Table5Cell is one (packet type, discrepancy) construction with its
// validation outcome.
type Table5Cell struct {
	PacketType  string
	Discrepancy core.Discrepancy
	Preferred   bool
	// Validated: a controlled trial using an evasion strategy built on
	// exactly this insertion construction succeeded.
	Validated bool
}

// RunTable5 reproduces Table 5: for every preferred insertion-packet
// construction, run the corresponding strategy on a clean controlled
// path and confirm it evades.
func RunTable5(r *Runner) []Table5Cell {
	vp := VantagePoints()[0] // Aliyun profile, benign for these packets
	servers := Servers(3, r.Cal, r.Seed)
	for i := range servers {
		servers[i].Mix = EvolvedOnly
		servers[i].ServerSideFirewall = false
		servers[i].RouteDynamicsProb = 0
		servers[i].LossRate = 0
	}

	strategyFor := func(ptype string, d core.Discrepancy) core.Factory {
		switch ptype {
		case "SYN":
			// SYN insertions are exercised by the combined creation
			// strategy (its insertions are TTL-crafted SYNs).
			return strategySpec{"creation-resync-desync",
				"on:handshake[inject(syn,disc=ttl)] on:first-payload[inject(syn,disc=ttl); inject(desync)]"}.compile()
		case "RST":
			return strategySpec{"teardown-rst/" + d.String(),
				"on:first-payload[teardown(flags=rst,disc=" + d.String() + ")]"}.compile()
		default: // Data
			return strategySpec{"prefill/" + d.String(),
				"on:first-payload[inject(prefill,disc=" + d.String() + ")]"}.compile()
		}
	}

	var cells []Table5Cell
	for _, spec := range []struct {
		ptype string
		disc  core.Discrepancy
	}{
		{"SYN", core.DiscTTL},
		{"RST", core.DiscTTL},
		{"RST", core.DiscMD5},
		{"Data", core.DiscTTL},
		{"Data", core.DiscMD5},
		{"Data", core.DiscBadAck},
		{"Data", core.DiscOldTimestamp},
	} {
		cell := Table5Cell{PacketType: spec.ptype, Discrepancy: spec.disc, Preferred: preferred(spec.ptype, spec.disc)}
		ok := 0
		for _, srv := range servers {
			if r.RunOne(vp, srv, strategyFor(spec.ptype, spec.disc), true, 0) == Success {
				ok++
			}
		}
		cell.Validated = ok == len(servers)
		cells = append(cells, cell)
	}
	return cells
}

func preferred(ptype string, d core.Discrepancy) bool {
	for _, p := range core.PreferredDiscrepancies[ptype] {
		if p == d {
			return true
		}
	}
	return false
}

// FormatTable5 renders the preferred-construction matrix with
// validation marks.
func FormatTable5(cells []Table5Cell) string {
	discs := []core.Discrepancy{core.DiscTTL, core.DiscMD5, core.DiscBadAck, core.DiscOldTimestamp}
	types := []string{"SYN", "RST", "Data"}
	cell := func(t string, d core.Discrepancy) string {
		for _, c := range cells {
			if c.PacketType == t && c.Discrepancy == d {
				if c.Validated {
					return "ok"
				}
				return "FAIL"
			}
		}
		return "-"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %-8s %-8s %-12s\n", "Type", "TTL", "MD5", "BadACK", "Timestamp")
	for _, t := range types {
		fmt.Fprintf(&b, "%-8s", t)
		for _, d := range discs {
			fmt.Fprintf(&b, " %-8s", cell(t, d))
		}
		b.WriteString("\n")
	}
	return b.String()
}
