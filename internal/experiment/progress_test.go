package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestProgressTracker exercises the tracker directly: counters, the
// snapshot math, and the metrics rendering.
func TestProgressTracker(t *testing.T) {
	jobs := []trialJob{
		{label: "a"}, {label: "a"}, {label: "b"}, {label: "b"},
	}
	pt := newProgressTracker(jobs, ProgressOptions{
		Interval: time.Hour, // never ticks during the test
	})
	pt.note("a", Success)
	pt.note("a", Failure2)
	pt.note("b", Success)

	s := pt.snapshot()
	if s.Done != 3 || s.Total != 4 || s.Success != 2 || s.Failure2 != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Strategies) != 2 || s.Strategies[0].Strategy != "a" || s.Strategies[0].Success != 1 {
		t.Fatalf("strategies = %+v", s.Strategies)
	}

	text := s.MetricsText()
	for _, want := range []string{
		"# TYPE trials_done gauge",
		"# TYPE strategy_success gauge",
		"trials_done 3", "trials_total 4",
		`strategy_success{strategy="a"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	pt.finish()
	// The sampler runs at construction and at finish, so even a
	// never-ticking tracker retains two bracketing samples.
	series := pt.Series()
	if len(series.Points) < 2 {
		t.Fatalf("series has %d points, want >= 2", len(series.Points))
	}
	last := series.Last()
	if last.Values["done"] != 3 || last.Values["success"] != 2 {
		t.Fatalf("closing sample = %+v", last)
	}
}

// TestProgressMetricsEscaping: strategy labels carry raw spec text;
// the exposition format escapes exactly backslash, quote, and newline
// and passes non-ASCII through unmodified (%q would corrupt it).
func TestProgressMetricsEscaping(t *testing.T) {
	s := ProgressSnapshot{Strategies: []StrategyProgress{
		{Strategy: `rst(disc="ttl\x")` + "\nπ", Done: 1},
	}}
	text := s.MetricsText()
	want := `strategy_done{strategy="rst(disc=\"ttl\\x\")\nπ"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("metrics missing %q:\n%s", want, text)
	}
}

// TestProgressNoteOutOfRange: a future Outcome value must not panic
// the tracker; it still counts toward done.
func TestProgressNoteOutOfRange(t *testing.T) {
	pt := newProgressTracker([]trialJob{{label: "a"}}, ProgressOptions{Interval: time.Hour})
	pt.note("a", Outcome(99))
	pt.note("a", Outcome(-1))
	pt.finish()
	if s := pt.snapshot(); s.Done != 2 || s.Success != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
}

// TestProgressHTTPUnregistered: this package deliberately never links
// net/http, so asking for the endpoint without importing the
// progresshttp package must degrade to a diagnostic, not a crash or an
// aborted campaign. (The endpoint itself is tested in progresshttp.)
func TestProgressHTTPUnregistered(t *testing.T) {
	if progressServer != nil {
		t.Skip("a progress server is registered in this binary")
	}
	var buf bytes.Buffer
	pt := newProgressTracker([]trialJob{{label: "a"}}, ProgressOptions{
		Interval: time.Hour, W: &buf, HTTPAddr: "127.0.0.1:0",
	})
	if pt.Addr() != "" {
		t.Fatalf("endpoint bound without a registered server: %s", pt.Addr())
	}
	if !strings.Contains(buf.String(), "no server registered") {
		t.Fatalf("missing diagnostic, got %q", buf.String())
	}
	pt.finish()
}

// TestRunParallelProgress: a campaign with progress enabled reports
// every trial and writes a final summary line, without perturbing
// results.
func TestRunParallelProgress(t *testing.T) {
	scale := Scale{VPs: 2, Servers: 2, Trials: 1}
	var buf bytes.Buffer
	r := NewRunner(42)
	r.Workers = 4
	r.Obs = NewObsSink()
	r.Progress = &ProgressOptions{Interval: time.Hour, W: &buf}
	rows := RunTable1Parallel(r, scale)

	base := NewRunner(42)
	base.Workers = 4
	base.Obs = NewObsSink()
	baseRows := RunTable1Parallel(base, scale)
	for i := range rows {
		if rows[i] != baseRows[i] {
			t.Fatalf("progress reporting changed results: %+v vs %+v", rows[i], baseRows[i])
		}
	}
	line := buf.String()
	if !strings.Contains(line, "progress:") {
		t.Fatalf("no final progress line: %q", line)
	}
	// The final snapshot must account for every job.
	if !strings.Contains(line, "(100%)") {
		t.Fatalf("final line not at 100%%: %q", line)
	}
}

// TestProgressNilSafe: a nil tracker (progress disabled) must be inert.
func TestProgressNilSafe(t *testing.T) {
	var pt *progressTracker
	pt.note("x", Success)
	pt.finish()
	if pt.Addr() != "" {
		t.Fatal("nil tracker has an address")
	}
}
