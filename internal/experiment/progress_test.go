package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestProgressTracker exercises the tracker directly: counters, the
// snapshot math, and the metrics rendering.
func TestProgressTracker(t *testing.T) {
	jobs := []trialJob{
		{label: "a"}, {label: "a"}, {label: "b"}, {label: "b"},
	}
	pt := newProgressTracker(jobs, ProgressOptions{
		Interval: time.Hour, // never ticks during the test
	})
	pt.note("a", Success)
	pt.note("a", Failure2)
	pt.note("b", Success)

	s := pt.snapshot()
	if s.Done != 3 || s.Total != 4 || s.Success != 2 || s.Failure2 != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Strategies) != 2 || s.Strategies[0].Strategy != "a" || s.Strategies[0].Success != 1 {
		t.Fatalf("strategies = %+v", s.Strategies)
	}

	text := s.MetricsText()
	for _, want := range []string{"trials_done 3", "trials_total 4", `strategy_success{strategy="a"} 1`} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	pt.finish()
}

// TestProgressHTTPUnregistered: this package deliberately never links
// net/http, so asking for the endpoint without importing the
// progresshttp package must degrade to a diagnostic, not a crash or an
// aborted campaign. (The endpoint itself is tested in progresshttp.)
func TestProgressHTTPUnregistered(t *testing.T) {
	if progressServer != nil {
		t.Skip("a progress server is registered in this binary")
	}
	var buf bytes.Buffer
	pt := newProgressTracker([]trialJob{{label: "a"}}, ProgressOptions{
		Interval: time.Hour, W: &buf, HTTPAddr: "127.0.0.1:0",
	})
	if pt.Addr() != "" {
		t.Fatalf("endpoint bound without a registered server: %s", pt.Addr())
	}
	if !strings.Contains(buf.String(), "no server registered") {
		t.Fatalf("missing diagnostic, got %q", buf.String())
	}
	pt.finish()
}

// TestRunParallelProgress: a campaign with progress enabled reports
// every trial and writes a final summary line, without perturbing
// results.
func TestRunParallelProgress(t *testing.T) {
	scale := Scale{VPs: 2, Servers: 2, Trials: 1}
	var buf bytes.Buffer
	r := NewRunner(42)
	r.Workers = 4
	r.Obs = NewObsSink()
	r.Progress = &ProgressOptions{Interval: time.Hour, W: &buf}
	rows := RunTable1Parallel(r, scale)

	base := NewRunner(42)
	base.Workers = 4
	base.Obs = NewObsSink()
	baseRows := RunTable1Parallel(base, scale)
	for i := range rows {
		if rows[i] != baseRows[i] {
			t.Fatalf("progress reporting changed results: %+v vs %+v", rows[i], baseRows[i])
		}
	}
	line := buf.String()
	if !strings.Contains(line, "progress:") {
		t.Fatalf("no final progress line: %q", line)
	}
	// The final snapshot must account for every job.
	if !strings.Contains(line, "(100%)") {
		t.Fatalf("final line not at 100%%: %q", line)
	}
}

// TestProgressNilSafe: a nil tracker (progress disabled) must be inert.
func TestProgressNilSafe(t *testing.T) {
	var pt *progressTracker
	pt.note("x", Success)
	pt.finish()
	if pt.Addr() != "" {
		t.Fatal("nil tracker has an address")
	}
}
