package experiment

import (
	"fmt"
	"strings"
	"time"

	"intango/internal/middlebox"
	"intango/internal/netem"
	"intango/internal/packet"
)

// Table2Result is the observed middlebox behaviour for one packet type
// at one profile.
type Table2Result struct {
	PacketType string
	Behaviour  map[middlebox.ProfileName]string
}

// RunTable2 reproduces Table 2: probing each vantage point's
// client-side middleboxes with the five studied packet types against a
// controlled server.
func RunTable2(seed int64) []Table2Result {
	types := []struct {
		name  string
		build func(cli, srv packet.Addr) []*packet.Packet
	}{
		{"IP fragments", func(cli, srv packet.Addr) []*packet.Packet {
			p := packet.NewTCP(cli, 4000, srv, 80, packet.FlagPSH|packet.FlagACK, 1, 1,
				[]byte(strings.Repeat("x", 96)))
			frags, err := packet.Fragment(p, 60)
			if err != nil {
				return nil
			}
			return frags
		}},
		{"Wrong TCP checksum", func(cli, srv packet.Addr) []*packet.Packet {
			p := packet.NewTCP(cli, 4000, srv, 80, packet.FlagPSH|packet.FlagACK, 1, 1, []byte("probe"))
			p.TCP.Checksum ^= 0x5555
			p.BadTCPChecksum = true
			return []*packet.Packet{p}
		}},
		{"No TCP flag", func(cli, srv packet.Addr) []*packet.Packet {
			return []*packet.Packet{packet.NewTCP(cli, 4000, srv, 80, 0, 1, 0, []byte("probe"))}
		}},
		{"RST packets", func(cli, srv packet.Addr) []*packet.Packet {
			return []*packet.Packet{packet.NewTCP(cli, 4000, srv, 80, packet.FlagRST, 1, 0, nil)}
		}},
		{"FIN packets", func(cli, srv packet.Addr) []*packet.Packet {
			return []*packet.Packet{packet.NewTCP(cli, 4000, srv, 80, packet.FlagFIN|packet.FlagACK, 1, 1, nil)}
		}},
	}

	cli := packet.AddrFrom4(10, 0, 0, 1)
	srv := packet.AddrFrom4(203, 0, 113, 9)
	const trials = 30

	var results []Table2Result
	for _, typ := range types {
		res := Table2Result{PacketType: typ.name, Behaviour: make(map[middlebox.ProfileName]string)}
		for _, prof := range middlebox.AllProfiles() {
			sim := netem.NewSimulator(seed)
			path := &netem.Path{Sim: sim}
			path.Hops = append(path.Hops,
				&netem.Hop{Name: "mb", Router: true, Latency: time.Millisecond,
					Processors: middlebox.BuildProfile(prof, sim.Rand())},
				&netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
			whole, frags := 0, 0
			path.Server = netem.EndpointFunc(func(pkt *packet.Packet) {
				if pkt.IP.IsFragment() {
					frags++
				} else {
					whole++
				}
			})
			sentBatches := 0
			for i := 0; i < trials; i++ {
				pkts := typ.build(cli, srv)
				if pkts == nil {
					continue
				}
				sentBatches++
				for _, p := range pkts {
					path.SendFromClient(p.Clone())
				}
			}
			sim.Run(1_000_000)
			res.Behaviour[prof] = classifyTable2(typ.name, sentBatches, whole, frags)
		}
		results = append(results, res)
	}
	return results
}

func classifyTable2(typ string, batches, whole, frags int) string {
	if typ == "IP fragments" {
		switch {
		case whole == 0 && frags == 0:
			return "Discarded"
		case whole >= batches && frags == 0:
			return "Reassembled"
		default:
			return "Forwarded"
		}
	}
	switch {
	case whole >= batches:
		return "Pass"
	case whole == 0:
		return "Dropped"
	default:
		return "Sometimes dropped"
	}
}

// FormatTable2 renders the results in the paper's layout.
func FormatTable2(results []Table2Result) string {
	profs := middlebox.AllProfiles()
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s", "Packet Type")
	headers := map[middlebox.ProfileName]string{
		middlebox.ProfileAliyun:    "Aliyun(6/11)",
		middlebox.ProfileQCloud:    "QCloud(3/11)",
		middlebox.ProfileUnicomSJZ: "Unicom SJZ(1/11)",
		middlebox.ProfileUnicomTJ:  "Unicom TJ(1/11)",
	}
	for _, p := range profs {
		fmt.Fprintf(&b, " %-18s", headers[p])
	}
	b.WriteString("\n")
	for _, res := range results {
		fmt.Fprintf(&b, "%-20s", res.PacketType)
		for _, p := range profs {
			fmt.Fprintf(&b, " %-18s", res.Behaviour[p])
		}
		b.WriteString("\n")
	}
	return b.String()
}
