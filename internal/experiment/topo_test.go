package experiment

import (
	"strings"
	"testing"

	"intango/internal/core"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/topo"
)

// TestRouteDynamicsHopUnderflow is the regression test for the ±2 hop
// jitter on short measured paths: at srv.Hops = 2 the −2 draw used to
// produce a zero-hop path and panic indexing the first hop. The clamp
// floors the path at one router.
func TestRouteDynamicsHopUnderflow(t *testing.T) {
	vp := VantagePoints()[0]
	r := NewRunner(11)
	srv := Servers(1, r.Cal, 11)[0]
	srv.Hops = 2
	srv.GFWHop = 2 // clamps onto the shortened path
	srv.RouteDynamicsProb = 1.0
	f := core.BuiltinFactories()["teardown-rst/ttl"]
	sawShift := false
	for trial := 0; trial < 24; trial++ {
		out := r.RunOne(vp, srv, f, true, trial)
		// Same seed, same trial → same build; the clamp must be stable.
		if again := r.RunOne(vp, srv, f, true, trial); again != out {
			t.Fatalf("trial %d not deterministic: %v then %v", trial, out, again)
		}
		sawShift = true
	}
	if !sawShift {
		t.Fatal("no trials ran")
	}
	// The clamped single-hop shape itself: hops 2-2=0 → 1.
	key := shapeKey(vp, srv, 1)
	if key.gfwHop != 0 {
		t.Errorf("gfwHop on one-hop path = %d, want 0", key.gfwHop)
	}
	prog, err := topo.NewProgram(derivedSpec(key))
	if err != nil {
		t.Fatalf("one-hop derived spec invalid: %v", err)
	}
	if !prog.Linear() {
		t.Error("one-hop derived spec not linear")
	}
}

// TestPoolStatsBothArms: PoolStats must be an explicit zero snapshot
// when pooling is disabled or untouched, and live counters otherwise.
func TestPoolStatsBothArms(t *testing.T) {
	vp := VantagePoints()[0]
	f := core.BuiltinFactories()["teardown-rst/ttl"]

	fresh := NewRunner(5)
	if got := fresh.PoolStats(); got != (packet.PoolStats{}) {
		t.Errorf("PoolStats before any trial = %+v, want zero", got)
	}

	noPool := NewRunner(5)
	noPool.NoPool = true
	srv := Servers(1, noPool.Cal, 5)[0]
	noPool.RunOne(vp, srv, f, true, 0)
	if got := noPool.PoolStats(); got != (packet.PoolStats{}) {
		t.Errorf("PoolStats with NoPool = %+v, want zero", got)
	}

	pooled := NewRunner(5)
	pooled.RunOne(vp, srv, f, true, 0)
	got := pooled.PoolStats()
	if got.Gets == 0 {
		t.Errorf("PoolStats after pooled trial = %+v, want nonzero Gets", got)
	}
}

// TestDerivedTopoMatchesHandBuilt pins the derived spec's canonical
// text for a representative pair, and checks the compiled substrate is
// the linear fast path with the historical hop labeling.
func TestDerivedTopoMatchesHandBuilt(t *testing.T) {
	r := NewRunner(42)
	vp := VantagePoints()[0]
	srv := Servers(1, r.Cal, 42)[0]
	spec := r.TopoSpec(vp, srv)
	text := spec.String()
	for _, want := range []string{
		"node:c(client)",
		"node:r0(router,label=r,proc=mbox:aliyun)",
		"node:s(server)",
		"tap=gfw-",
		"link:c>r0(lat=1ms,loss=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("derived spec missing %q:\n%s", want, text)
		}
	}
	// Canonical round trip holds for derived specs too.
	if reparsed := topo.MustParseTopo(text); reparsed.String() != text {
		t.Errorf("derived spec does not round-trip:\n%s", text)
	}
	rg := r.build(vp, srv, 1, r.packetPool())
	path, ok := rg.net.(*netem.Path)
	if !ok {
		t.Fatalf("derived topology compiled to %T, want *netem.Path", rg.net)
	}
	for i, h := range path.Hops {
		if h.Name != "r" {
			t.Fatalf("hop %d named %q, want r (label preserved)", i, h.Name)
		}
	}
	if len(rg.devices) == 0 {
		t.Fatal("no GFW devices bound")
	}
}

// TestGraphTopoCampaign runs a trial campaign over the ECMP demo graph
// (two parallel censor devices, asymmetric reverse route) end to end
// through the standard runner: builds must produce a Fabric, flows
// must split across both branches, and outcomes must be deterministic.
func TestGraphTopoCampaign(t *testing.T) {
	vp := VantagePoints()[0]
	r := NewRunner(9)
	r.Topo = GraphDemoTopo
	srv := Servers(1, r.Cal, 9)[0]
	rg := r.build(vp, srv, 1, r.packetPool())
	fab, ok := rg.net.(*netem.Fabric)
	if !ok {
		t.Fatalf("graph topology compiled to %T, want *netem.Fabric", rg.net)
	}
	if len(rg.devices) != 2 {
		t.Fatalf("bound %d devices, want 2 parallel devices", len(rg.devices))
	}
	cli, sv := vp.Addr, srv.Addr
	sawB1, sawB2 := false, false
	for sport := uint16(32768); sport < 32768+64; sport++ {
		pkt := packet.NewTCP(cli, sport, sv, 80, packet.FlagSYN, 1, 0, nil)
		route := strings.Join(fab.ForwardRoute(pkt), ">")
		if strings.Contains(route, ">b1>") {
			sawB1 = true
		}
		if strings.Contains(route, ">b2>") {
			sawB2 = true
		}
	}
	if !sawB1 || !sawB2 {
		t.Errorf("ECMP never split flows across branches: b1=%v b2=%v", sawB1, sawB2)
	}
	f := core.BuiltinFactories()["teardown-rst/ttl"]
	for trial := 0; trial < 4; trial++ {
		out := r.RunOne(vp, srv, f, true, trial)
		if again := r.RunOne(vp, srv, f, true, trial); again != out {
			t.Fatalf("graph trial %d not deterministic: %v then %v", trial, out, again)
		}
	}
}
