package experiment

import (
	"fmt"
	"strings"
	"time"

	"intango/internal/appsim"
	"intango/internal/dnsmsg"
	"intango/internal/gfw"
	"intango/internal/intang"
	"intango/internal/middlebox"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// CensoredDomain is the domain §7.2 probes with.
const CensoredDomain = "www.dropbox.com"

// Resolver is one public DNS resolver target of §7.2.
type Resolver struct {
	Name string
	Addr packet.Addr
	// Censored: the GFW censors DNS on paths to this resolver. §7.2
	// accidentally discovered that OpenDNS's resolvers see no DNS
	// censorship at all.
	Censored bool
}

// Resolvers returns the §7.2 resolver set.
func Resolvers() []Resolver {
	return []Resolver{
		{Name: "Dyn 1", Addr: packet.AddrFrom4(216, 146, 35, 35), Censored: true},
		{Name: "Dyn 2", Addr: packet.AddrFrom4(216, 146, 36, 36), Censored: true},
		{Name: "OpenDNS 1", Addr: packet.AddrFrom4(208, 67, 222, 222), Censored: false},
		{Name: "OpenDNS 2", Addr: packet.AddrFrom4(208, 67, 220, 220), Censored: false},
	}
}

// Table6Row is one resolver's aggregate success.
type Table6Row struct {
	Resolver      string
	IP            string
	ExceptTianjin float64 // success % over the other 10 VPs
	All           float64 // success % over all 11 VPs
}

// RunTable6 reproduces Table 6: repeated queries for a censored domain
// via TCP DNS through each resolver, from every vantage point, using
// INTANG's DNS forwarder with the improved TCB-teardown strategy.
func RunTable6(r *Runner, queries int) []Table6Row {
	var rows []Table6Row
	realAddr := packet.AddrFrom4(162, 125, 248, 18)
	for _, resolver := range Resolvers() {
		var allOK, allN, exTJOK, exTJN int
		for _, vp := range VantagePoints() {
			ok := r.runDNSSeries(vp, resolver, realAddr, queries)
			allOK += ok
			allN += queries
			if vp.City != "tianjin" {
				exTJOK += ok
				exTJN += queries
			}
		}
		rows = append(rows, Table6Row{
			Resolver:      resolver.Name,
			IP:            resolver.Addr.String(),
			ExceptTianjin: 100 * float64(exTJOK) / float64(exTJN),
			All:           100 * float64(allOK) / float64(allN),
		})
	}
	return rows
}

// runDNSSeries issues queries for the censored domain from vp through
// resolver and counts correct answers.
func (r *Runner) runDNSSeries(vp VantagePoint, resolver Resolver, realAddr packet.Addr, queries int) int {
	sim := netem.NewSimulator(r.pairSeed(vp, Server{Name: resolver.Name}))
	path := &netem.Path{Sim: sim}
	hops := 10
	for i := 0; i < hops; i++ {
		path.Hops = append(path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	path.ClientLink.Latency = time.Millisecond
	if chain := middlebox.BuildProfile(vp.Profile, sim.Rand()); chain != nil {
		path.Hops[0].Processors = chain
	}
	cfg := gfwConfig(gfw.ModelEvolved2017, r.Cal)
	if resolver.Censored {
		cfg.PoisonedDomains = []string{"dropbox.com"}
	}
	dev := gfw.NewDevice("gfw", cfg, sim.Rand())
	dev.SetClientSide(func(a packet.Addr) bool { return a[0] == 10 })
	path.Hops[3].Taps = []netem.Processor{dev}
	// The Tianjin anomaly: a stateful firewall beyond the GFW on the
	// resolver paths that (usually) honors the RST insertion packets.
	if vp.ResolverPathFirewall {
		fw := middlebox.NewStatefulFirewall("resolver-fw", false)
		fw.SetRSTHonorProb(0.65, sim.Rand())
		path.Hops[4].Processors = append(path.Hops[4].Processors, fw)
	}

	cli := tcpstack.NewStack(vp.Addr, tcpstack.Linux44(), sim)
	srv := tcpstack.NewStack(resolver.Addr, tcpstack.Linux44(), sim)
	srv.AttachServer(path)
	appsim.ServeDNSTCP(srv, appsim.Zone{CensoredDomain: realAddr})
	appsim.ServeDNSUDP(srv, appsim.Zone{CensoredDomain: realAddr})

	// §7.2 methodology: the Dyn resolvers are probed through INTANG's
	// improved TCB-teardown strategy; the OpenDNS resolvers were found
	// to need no evasion at all, so they are queried bare.
	candidates := []string{"improved-teardown"}
	if !resolver.Censored {
		candidates = []string{"none"}
	}
	it := intang.New(sim, path, cli, intang.Options{
		Resolver:   resolver.Addr,
		Candidates: candidates,
	})
	it.Engine.Env.InsertionTTL = uint8(hops - 1)

	ok := 0
	var lastAnswer packet.Addr
	gotAnswer := false
	cli.ListenUDP(5353, func(src packet.Addr, sp uint16, payload []byte) {
		m, err := dnsmsg.Decode(payload)
		if err == nil && len(m.Answers) > 0 && !gotAnswer {
			gotAnswer = true
			lastAnswer = m.Answers[0].Addr
		}
	})
	for i := 0; i < queries; i++ {
		gotAnswer = false
		q, err := dnsmsg.NewQuery(uint16(i+1), CensoredDomain).Encode()
		if err != nil {
			continue
		}
		cli.SendUDP(5353, resolver.Addr, 53, q)
		sim.RunFor(5 * time.Second)
		if gotAnswer && lastAnswer == realAddr {
			ok++
		}
		// Wait out any blocklist the failed attempt triggered.
		if !gotAnswer || lastAnswer != realAddr {
			sim.RunFor(95 * time.Second)
		}
	}
	return ok
}

// FormatTable6 renders the rows in the paper's layout.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-16s %-16s %-8s\n", "DNS resolver", "IP", "except Tianjin", "All")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-12s %-16s %15.1f%% %6.1f%%\n", row.Resolver, row.IP, row.ExceptTianjin, row.All)
	}
	return b.String()
}
