package intangd

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
)

// ServePlane binds addr and serves the daemon's observability plane
// until stop is called:
//
//	/flows     live flow table (JSON)
//	/metrics   Prometheus exposition of the daemon's counters
//	/strategy  GET current; POST ?set=<ref> (or body) to switch
//	/healthz   liveness
//
// The packet path never touches this handler: /flows reads the sharded
// flow table, /metrics snapshots atomic counters, and only /strategy
// briefly takes the world lock.
func (p *Proxy) ServePlane(addr string) (stop func(), bound string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/flows", func(w http.ResponseWriter, _ *http.Request) {
		views := p.FlowViews()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Count int        `json:"count"`
			Flows []FlowView `json:"flows"`
		}{len(views), views})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = p.reg.Snapshot().WriteProm(w, "intangd_")
	})
	mux.HandleFunc("/strategy", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			ref := r.URL.Query().Get("set")
			if ref == "" {
				body, _ := io.ReadAll(io.LimitReader(r.Body, 4096))
				ref = strings.TrimSpace(string(body))
			}
			if err := p.SetStrategy(ref); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Strategy string `json:"strategy"`
		}{p.Strategy()})
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return func() { _ = srv.Close() }, ln.Addr().String(), nil
}
