package intangd

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"intango/internal/appsim"
	"intango/internal/censor"
	"intango/internal/core"
	"intango/internal/device"
	"intango/internal/netem"
	"intango/internal/obs"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// Config parameterizes a Proxy.
type Config struct {
	// Censor is a censor-zoo registry name or raw spec text (default
	// "gfw2017").
	Censor string
	// Strategy is the initial strategy reference: a builtin name, a raw
	// strategy spec, or ""/"none"/"pass" for passthrough.
	Strategy string
	// Seed drives the world's randomness.
	Seed int64
	// Hops is the router count client to server (default 8); CensorHop
	// is where the censor taps (default 2).
	Hops      int
	CensorHop int
	// IdleTimeout expires flows with no traffic for this long on the
	// wall clock (default 60s).
	IdleTimeout time.Duration
	// Tick is the wall-clock granularity driving the world's virtual
	// clock (default 1ms). TimeScale multiplies wall time into virtual
	// time (default 1.0) — raise it to compress the censor's 90-second
	// block windows into test-sized waits.
	Tick      time.Duration
	TimeScale float64
	// Shards sizes the flow table (default 16, rounded to a power of
	// two).
	Shards int
}

// Proxy is a running daemon world: the censored path, its censor
// devices, an HTTP origin server, and the strategy engine — plus a
// packet pipe whose far end is handed to clients (usually wrapped in a
// uis.Stack so stock net code can dial through it).
//
// One mutex serializes the world — the simulator, the engine, and the
// censor devices; the client pump and the clock pump are the only
// goroutines that take it besides control-plane calls. The flow table
// has its own sharded locks so /flows scrapes never stall the packet
// path on the world lock.
type Proxy struct {
	cfg Config

	mu     sync.Mutex // world lock
	sim    *netem.Simulator
	path   *netem.Path
	cen    censor.Instance // nil for chain-only censors
	engine *core.Engine
	server *tcpstack.Stack

	stratName    string
	stratFactory core.Factory

	reg   *obs.Registry
	rec   *obs.Recorder
	flows *FlowTable

	cdev *device.PipeEnd // proxy-side client boundary
	ext  *device.PipeEnd // handed to clients

	clientAddr packet.Addr
	serverAddr packet.Addr

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// New assembles and starts a proxy world.
func New(cfg Config) (*Proxy, error) {
	if cfg.Censor == "" {
		cfg.Censor = "gfw2017"
	}
	if cfg.Hops <= 0 {
		cfg.Hops = 8
	}
	if cfg.CensorHop <= 0 {
		cfg.CensorHop = 2
	}
	if cfg.CensorHop >= cfg.Hops {
		return nil, fmt.Errorf("intangd: censor hop %d outside path of %d hops", cfg.CensorHop, cfg.Hops)
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}

	p := &Proxy{
		cfg:        cfg,
		sim:        netem.NewSimulator(cfg.Seed),
		reg:        obs.NewRegistry(),
		flows:      NewFlowTable(cfg.Shards),
		clientAddr: packet.AddrFrom4(10, 0, 0, 1),
		serverAddr: packet.AddrFrom4(203, 0, 113, 80),
		stop:       make(chan struct{}),
	}
	p.rec = obs.NewRecorder(obs.DefaultRingSize, p.sim.Now)
	bundle := obs.New(p.reg, p.rec)

	p.path = &netem.Path{Sim: p.sim}
	for i := 0; i < cfg.Hops; i++ {
		p.path.Hops = append(p.path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	p.path.ClientLink.Latency = time.Millisecond
	p.path.SetObs(bundle)

	comp, err := censor.Resolve(cfg.Censor)
	if err != nil {
		return nil, fmt.Errorf("intangd: censor: %w", err)
	}
	hop := p.path.Hops[cfg.CensorHop]
	if procs, ok := comp.BuildChain(p.sim.Rand()); ok {
		hop.Processors = append(hop.Processors, procs...)
	} else {
		pairRng := rand.New(rand.NewSource(cfg.Seed + 1))
		inst, err := comp.Build("gfw", p.sim.Rand(), pairRng)
		if err != nil {
			return nil, fmt.Errorf("intangd: censor: %w", err)
		}
		inst.SetClientSide(func(a packet.Addr) bool { return a[0] == p.clientAddr[0] })
		inst.SetObs(bundle)
		hop.Taps = append(hop.Taps, inst)
		if f := inst.Filter(); f != nil {
			hop.Processors = append(hop.Processors, f)
		}
		p.cen = inst
	}

	p.server = tcpstack.NewStack(p.serverAddr, tcpstack.Linux44(), p.sim)
	p.server.AttachServer(p.path)
	p.server.Obs = bundle
	appsim.ServeHTTP(p.server, 80)

	env := core.DefaultEnv(uint8(cfg.Hops-1), p.sim.Rand())
	p.engine = core.NewEngine(p.sim, p.path, nil, env)
	p.engine.Upstream = p.inbound
	p.engine.NewStrategy = func(packet.FourTuple) core.Strategy {
		// Runs under p.mu (the engine is only entered with it held).
		if p.stratFactory == nil {
			return nil
		}
		return p.stratFactory()
	}

	if err := p.SetStrategy(cfg.Strategy); err != nil {
		return nil, err
	}

	ext, cdev := device.NewPipe(4096)
	p.ext, p.cdev = ext, cdev

	p.wg.Add(2)
	go p.clientPump()
	go p.clockPump()
	return p, nil
}

// ClientDevice returns the packet device clients attach to (feed it to
// uis.New for a net.Conn-shaped dialer).
func (p *Proxy) ClientDevice() device.Device { return p.ext }

// ClientAddr is the address clients must send from; ServerAddr is the
// censored origin behind the path.
func (p *Proxy) ClientAddr() packet.Addr { return p.clientAddr }
func (p *Proxy) ServerAddr() packet.Addr { return p.serverAddr }

// Registry exposes the daemon's counters for the plane.
func (p *Proxy) Registry() *obs.Registry { return p.reg }

// FlowViews snapshots the flow table for /flows.
func (p *Proxy) FlowViews() []FlowView { return p.flows.Snapshot(time.Now()) }

// FlowCount returns the number of live flows.
func (p *Proxy) FlowCount() int { return p.flows.Len() }

// ResolveStrategy maps a strategy reference — ""/"none"/"pass", a
// builtin name, or raw spec text — to a display name and factory (nil
// factory = passthrough).
func ResolveStrategy(ref string) (string, core.Factory, error) {
	switch ref {
	case "", "none", "pass":
		return "pass", nil, nil
	}
	if f, ok := core.BuiltinFactories()[ref]; ok {
		return ref, f, nil
	}
	spec, err := core.ParseSpec(ref)
	if err != nil {
		return "", nil, fmt.Errorf("intangd: strategy %q: %w", ref, err)
	}
	return ref, spec.FactoryAs(ref), nil
}

// SetStrategy switches the strategy applied to NEW flows; in-flight
// flows keep the strategy they opened with.
func (p *Proxy) SetStrategy(ref string) error {
	name, factory, err := ResolveStrategy(ref)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.stratName, p.stratFactory = name, factory
	p.mu.Unlock()
	return nil
}

// Strategy returns the name applied to new flows.
func (p *Proxy) Strategy() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stratName
}

// CensorStat reads one censor event counter (0 when the censor is a
// chain-only spec with no stats).
func (p *Proxy) CensorStat(kind string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cen == nil {
		return 0
	}
	return p.cen.Stat(kind)
}

// AdvanceVirtual runs the world's virtual clock forward by d without
// waiting on the wall clock — operational lever for skipping a censor
// block window (and what the tests use instead of sleeping 90s).
func (p *Proxy) AdvanceVirtual(d time.Duration) {
	p.mu.Lock()
	p.sim.RunFor(d)
	p.mu.Unlock()
}

// Close stops the pumps and severs the client boundary.
func (p *Proxy) Close() error {
	p.once.Do(func() {
		close(p.stop)
		p.cdev.Close() // unblocks the client pump; peers see ErrClosed
	})
	p.wg.Wait()
	return nil
}

// clientPump moves packets from the client boundary into the engine.
func (p *Proxy) clientPump() {
	defer p.wg.Done()
	for {
		pkt, err := p.cdev.ReadPacket()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.flows.TouchOutbound(pkt, p.stratName, time.Now(), p.sim.Now()) {
			p.reg.Inc("intangd.flows-opened")
		}
		p.reg.Inc("intangd.pkts-out")
		p.reg.Add("intangd.bytes-out", pktBytes(pkt))
		p.engine.Outbound(pkt)
		p.mu.Unlock()
	}
}

// inbound is the engine's Upstream: it runs inside simulator events
// with the world lock held. The packet still belongs to the substrate,
// and the pipe serializes synchronously, so handing it over copies by
// construction.
func (p *Proxy) inbound(pkt *packet.Packet) {
	p.flows.TouchInbound(pkt, time.Now(), p.sim.Now())
	p.reg.Inc("intangd.pkts-in")
	p.reg.Add("intangd.bytes-in", pktBytes(pkt))
	_ = p.cdev.WritePacket(pkt)
}

// clockPump advances the world with the wall clock and expires idle
// flows. Expiry prunes the flow table under its own shard locks, then
// takes the world lock once to drop the engine's matching state.
func (p *Proxy) clockPump() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Tick)
	defer t.Stop()
	expireEvery := p.cfg.IdleTimeout / 4
	if expireEvery < 50*time.Millisecond {
		expireEvery = 50 * time.Millisecond
	}
	ex := time.NewTicker(expireEvery)
	defer ex.Stop()
	last := time.Now()
	for {
		select {
		case <-p.stop:
			return
		case now := <-t.C:
			el := now.Sub(last)
			last = now
			if p.cfg.TimeScale != 1 {
				el = time.Duration(float64(el) * p.cfg.TimeScale)
			}
			p.mu.Lock()
			p.sim.RunFor(el)
			p.mu.Unlock()
		case now := <-ex.C:
			expired := p.flows.Expire(now, p.cfg.IdleTimeout)
			if len(expired) == 0 {
				continue
			}
			p.mu.Lock()
			for _, tuple := range expired {
				p.engine.DropFlow(tuple)
			}
			p.mu.Unlock()
			p.reg.Add("intangd.flows-expired", uint64(len(expired)))
		}
	}
}
