package intangd_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"intango/internal/appsim"
	"intango/internal/device/uis"
	"intango/internal/intangd"
	"intango/internal/packet"
)

// TestFlowTableConcurrency hammers the sharded table directly:
// concurrent setup (outbound touches on fresh tuples), traffic on both
// directions, teardown via Expire, and snapshot scrapes — the shapes
// the daemon runs simultaneously. The race detector is the real
// assertion; the counts at the end are a sanity floor.
func TestFlowTableConcurrency(t *testing.T) {
	ft := intangd.NewFlowTable(8)
	const workers = 8
	const flowsPerWorker = 50

	var writers, loops sync.WaitGroup
	stop := make(chan struct{})

	// Scraper: Snapshot + Len in a tight loop while writers run.
	loops.Add(1)
	go func() {
		defer loops.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ft.Snapshot(time.Now())
			ft.Len()
		}
	}()

	// Expirer: everything idle for >1ms goes; writers keep re-creating.
	loops.Add(1)
	go func() {
		defer loops.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ft.Expire(time.Now(), time.Millisecond)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			src := packet.AddrFrom4(10, 0, byte(w), 1)
			dst := packet.AddrFrom4(203, 0, 113, 80)
			for i := 0; i < flowsPerWorker; i++ {
				out := packet.NewTCP(src, uint16(10000+i), dst, 80, packet.FlagPSH|packet.FlagACK, 1, 1, []byte("x"))
				in := packet.NewTCP(dst, 80, src, uint16(10000+i), packet.FlagACK|packet.FlagRST, 1, 2, nil)
				for j := 0; j < 5; j++ {
					ft.TouchOutbound(out, "pass", time.Now(), 0)
					ft.TouchInbound(in, time.Now(), 0)
				}
			}
		}(w)
	}

	// Let writers finish, then stop the background loops.
	done := make(chan struct{})
	go func() { writers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("flow table hammer wedged")
	}
	close(stop)
	loops.Wait()

	// Everything idle now; a final expire drains the table.
	ft.Expire(time.Now().Add(time.Hour), time.Millisecond)
	if n := ft.Len(); n != 0 {
		t.Errorf("table not drained: %d flows left", n)
	}
}

// TestProxyConcurrentFlowsWithPlaneScrape runs the whole daemon hot:
// concurrent client connections opening, transferring and closing
// through the engine while /flows and /metrics are scraped over real
// HTTP mid-traffic, then a short idle timeout expires the leftovers.
func TestProxyConcurrentFlowsWithPlaneScrape(t *testing.T) {
	p, err := intangd.New(intangd.Config{
		Censor:      testCensor,
		Strategy:    "teardown-reversal",
		Seed:        11,
		IdleTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cli := uis.New(p.ClientDevice(), uis.Config{Addr: p.ClientAddr(), Seed: 3})
	stopPlane, bound, err := p.ServePlane("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServePlane: %v", err)
	}
	t.Cleanup(func() {
		stopPlane()
		cli.Close()
		p.Close()
	})

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				conn, err := cli.Dial(p.ServerAddr(), 80)
				if err != nil {
					errs <- fmt.Errorf("client %d dial: %w", c, err)
					return
				}
				conn.SetDeadline(time.Now().Add(10 * time.Second))
				// Innocuous URI: the flows exercise the engine without
				// tripping the censor's pair blocklist mid-hammer.
				if _, err := conn.Write(appsim.HTTPRequest("origin.example", fmt.Sprintf("/c%d/%d", c, i))); err != nil {
					errs <- fmt.Errorf("client %d write: %w", c, err)
					conn.Close()
					return
				}
				var got []byte
				buf := make([]byte, 2048)
				for !appsim.HTTPResponseComplete(got) {
					n, err := conn.Read(buf)
					if err != nil {
						errs <- fmt.Errorf("client %d read (%d bytes so far): %w", c, len(got), err)
						conn.Close()
						return
					}
					got = append(got, buf[:n]...)
				}
				conn.Close()
			}
		}(c)
	}

	// Mid-traffic plane scrapes, interleaved with the clients.
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 20; i++ {
			resp, err := http.Get("http://" + bound + "/flows")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			resp, err = http.Get("http://" + bound + "/metrics")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	<-scrapeDone

	// The daemon saw every flow.
	resp, err := http.Get("http://" + bound + "/flows")
	if err != nil {
		t.Fatalf("final /flows: %v", err)
	}
	var dump struct {
		Count int                `json:"count"`
		Flows []intangd.FlowView `json:"flows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decode /flows: %v", err)
	}
	resp.Body.Close()
	for _, v := range dump.Flows {
		if v.Strategy != "teardown-reversal" {
			t.Errorf("flow %s recorded strategy %q", v.Tuple, v.Strategy)
		}
	}

	// Idle expiry drains the table (and the engine's flow map with it).
	deadline := time.Now().Add(10 * time.Second)
	for p.FlowCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("flows never expired: %d live", p.FlowCount())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
