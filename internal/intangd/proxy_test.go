package intangd_test

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"intango/internal/device/uis"
	"intango/internal/intangd"
	"intango/internal/packet"
)

// testCensor is the measured gfw2017 with every sampled probability
// pinned: detection never misses, RSTs always tear the TCB down, and
// reassembly is first-wins — so one fetch decides the outcome.
const testCensor = "tcb:evolved detect:keywords(ultrasurf) " +
	"react:reset(type1) react:reset(type2) react:block(dur=1m30s) " +
	"param:miss(p=0) param:resync(p=0) param:seglastwins(p=0)"

// newWorld boots a proxy against the deterministic censor and hangs a
// userspace stack plus a stock net/http client off its client device.
func newWorld(t *testing.T, strategy string) (*intangd.Proxy, *http.Client) {
	t.Helper()
	p, err := intangd.New(intangd.Config{
		Censor:   testCensor,
		Strategy: strategy,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cli := uis.New(p.ClientDevice(), uis.Config{
		Addr:  p.ClientAddr(),
		Seed:  1,
		Hosts: map[string]packet.Addr{"origin.example": p.ServerAddr()},
	})
	hc := &http.Client{
		Transport: &http.Transport{DialContext: cli.DialContext, DisableKeepAlives: true},
		Timeout:   15 * time.Second,
	}
	t.Cleanup(func() {
		cli.Close()
		p.Close()
	})
	return p, hc
}

// TestProxyBlocksSensitiveFetch is the daemon half of the paper's
// baseline: a real net/http GET carrying the censored keyword, dialed
// through the userspace stack into intangd with no strategy, dies to
// the censor's injected resets.
func TestProxyBlocksSensitiveFetch(t *testing.T) {
	p, hc := newWorld(t, "")

	resp, err := hc.Get("http://origin.example/search?q=ultrasurf")
	if err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("sensitive GET succeeded without a strategy: %d %q", resp.StatusCode, body)
	}

	if got := p.CensorStat("inject-type1") + p.CensorStat("inject-type2"); got == 0 {
		t.Errorf("censor injected no resets (stats: type1=%d type2=%d)",
			p.CensorStat("inject-type1"), p.CensorStat("inject-type2"))
	}
	views := p.FlowViews()
	reset := false
	for _, v := range views {
		if v.GotRST {
			reset = true
		}
	}
	if !reset {
		t.Errorf("no flow marked got_rst; flows: %+v", views)
	}
}

// TestProxyEvadesWithStrategy is the payoff: the same real client, the
// same censor, but the daemon wraps each flow in the Table 4
// teardown-reversal strategy — and the keyword fetch completes.
func TestProxyEvadesWithStrategy(t *testing.T) {
	p, hc := newWorld(t, "teardown-reversal")

	resp, err := hc.Get("http://origin.example/search?q=ultrasurf")
	if err != nil {
		t.Fatalf("GET through teardown-reversal: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Errorf("status: got %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "it works") {
		t.Errorf("body: got %q", body)
	}

	views := p.FlowViews()
	if len(views) == 0 {
		t.Fatalf("flow table empty after fetch")
	}
	found := false
	for _, v := range views {
		if v.Strategy == "teardown-reversal" && v.OutPkts > 0 && v.InPkts > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no flow recorded under teardown-reversal; flows: %+v", views)
	}
}

// TestProxyStrategySwitchAndBlockWindow drives the live-switch loop:
// evade, flip the daemon to passthrough mid-run, get censored, then
// skip the 90-second pair blocklist on the virtual clock and evade
// again after flipping back.
func TestProxyStrategySwitchAndBlockWindow(t *testing.T) {
	p, hc := newWorld(t, "teardown-reversal")

	if _, err := hc.Get("http://origin.example/search?q=ultrasurf"); err != nil {
		t.Fatalf("initial evaded GET: %v", err)
	}

	if err := p.SetStrategy("pass"); err != nil {
		t.Fatalf("SetStrategy(pass): %v", err)
	}
	if got := p.Strategy(); got != "pass" {
		t.Fatalf("Strategy() = %q", got)
	}
	if _, err := hc.Get("http://origin.example/search?q=ultrasurf"); err == nil {
		t.Fatalf("sensitive GET succeeded on passthrough")
	}

	// The censored pair is now on the 90s blocklist; skip it on the
	// virtual clock instead of waiting out wall time.
	p.AdvanceVirtual(2 * time.Minute)

	if err := p.SetStrategy("teardown-reversal"); err != nil {
		t.Fatalf("SetStrategy back: %v", err)
	}
	resp, err := hc.Get("http://origin.example/search?q=ultrasurf")
	if err != nil {
		t.Fatalf("GET after block window: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status after block window: got %d", resp.StatusCode)
	}
}

// TestResolveStrategy covers the three reference forms the daemon and
// its plane accept.
func TestResolveStrategy(t *testing.T) {
	for _, ref := range []string{"", "none", "pass"} {
		name, f, err := intangd.ResolveStrategy(ref)
		if err != nil || f != nil || name != "pass" {
			t.Errorf("ResolveStrategy(%q) = %q, %v, %v", ref, name, f, err)
		}
	}
	name, f, err := intangd.ResolveStrategy("teardown-reversal")
	if err != nil || f == nil || name != "teardown-reversal" {
		t.Errorf("builtin: %q, %v, %v", name, f, err)
	}
	if _, f, err := intangd.ResolveStrategy("on:first-payload[teardown(flags=rst,disc=ttl)]"); err != nil || f == nil {
		t.Errorf("raw spec: %v, %v", f, err)
	}
	if _, _, err := intangd.ResolveStrategy("no-such-strategy-!!!"); err == nil {
		t.Errorf("garbage ref resolved")
	}
}
