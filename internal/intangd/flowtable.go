// Package intangd is the live evasion proxy: a long-running daemon
// that multiplexes real client flows through the strategy engine and
// out across a (simulated or real) censored path. It is the daemon
// counterpart of the per-trial experiment rig — same engine, same
// censor devices, same observability plane, but flows arrive
// concurrently from outside instead of being scripted one at a time.
package intangd

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"intango/internal/packet"
)

// FlowInfo is the per-flow record the daemon keeps alongside the
// engine's strategy state: traffic counters, liveness timestamps on
// both clocks, and the TCP teardown signals seen from the network side.
type FlowInfo struct {
	Tuple    packet.FourTuple
	Strategy string

	OutPkts  uint64
	InPkts   uint64
	OutBytes uint64
	InBytes  uint64

	GotRST  bool // RST arrived from the network side (censor or server)
	FINSeen bool // orderly close observed in either direction

	OpenedWall time.Time
	LastWall   time.Time
	OpenedVirt time.Duration
	LastVirt   time.Duration
}

// FlowView is the JSON shape /flows serves.
type FlowView struct {
	Tuple    string `json:"tuple"`
	Strategy string `json:"strategy"`
	State    string `json:"state"`
	OutPkts  uint64 `json:"out_pkts"`
	InPkts   uint64 `json:"in_pkts"`
	OutBytes uint64 `json:"out_bytes"`
	InBytes  uint64 `json:"in_bytes"`
	GotRST   bool   `json:"got_rst"`
	AgeMS    int64  `json:"age_ms"`
	IdleMS   int64  `json:"idle_ms"`
	VirtMS   int64  `json:"virt_ms"` // virtual-clock lifetime
}

type flowShard struct {
	mu    sync.Mutex
	flows map[packet.FourTuple]*FlowInfo
}

// FlowTable is the daemon's sharded per-flow state table. Shard count
// is a power of two; a flow's shard comes from an FNV-1a hash of its
// canonical tuple, so both directions of a connection land on the same
// shard without allocating a key.
type FlowTable struct {
	shards []flowShard
	mask   uint32
}

// NewFlowTable builds a table with at least n shards (n rounds up to a
// power of two; n<=0 means 16).
func NewFlowTable(n int) *FlowTable {
	if n <= 0 {
		n = 16
	}
	size := 1
	for size < n {
		size <<= 1
	}
	t := &FlowTable{shards: make([]flowShard, size), mask: uint32(size - 1)}
	for i := range t.shards {
		t.shards[i].flows = make(map[packet.FourTuple]*FlowInfo)
	}
	return t
}

// shardFor hashes the canonical tuple inline (FNV-1a over the 12
// addr/port bytes) — no per-packet allocation.
func (t *FlowTable) shardFor(k packet.FourTuple) *flowShard {
	h := uint32(2166136261)
	step := func(b byte) { h = (h ^ uint32(b)) * 16777619 }
	for i := 0; i < 4; i++ {
		step(k.SrcAddr[i])
	}
	step(byte(k.SrcPort >> 8))
	step(byte(k.SrcPort))
	for i := 0; i < 4; i++ {
		step(k.DstAddr[i])
	}
	step(byte(k.DstPort >> 8))
	step(byte(k.DstPort))
	return &t.shards[h&t.mask]
}

func pktBytes(pkt *packet.Packet) uint64 {
	if n := pkt.IP.TotalLength; n > 0 {
		return uint64(n)
	}
	return uint64(len(pkt.Payload))
}

// TouchOutbound records a client-side packet, creating the flow record
// (stamped with the strategy in force) on first sight. Returns true
// when this packet opened a new flow.
func (t *FlowTable) TouchOutbound(pkt *packet.Packet, strategy string, wall time.Time, virt time.Duration) bool {
	key := pkt.Tuple().Canonical()
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fi, ok := sh.flows[key]
	if !ok {
		fi = &FlowInfo{
			Tuple: pkt.Tuple(), Strategy: strategy,
			OpenedWall: wall, OpenedVirt: virt,
		}
		sh.flows[key] = fi
	}
	fi.OutPkts++
	fi.OutBytes += pktBytes(pkt)
	fi.LastWall, fi.LastVirt = wall, virt
	if pkt.TCP != nil && pkt.TCP.HasFlag(packet.FlagFIN) {
		fi.FINSeen = true
	}
	return !ok
}

// TouchInbound records a network-side packet for an already-open flow;
// packets for unknown flows (e.g. censor injections racing expiry) are
// counted by the caller's registry but create no record.
func (t *FlowTable) TouchInbound(pkt *packet.Packet, wall time.Time, virt time.Duration) {
	key := pkt.Tuple().Canonical()
	sh := t.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fi, ok := sh.flows[key]
	if !ok {
		return
	}
	fi.InPkts++
	fi.InBytes += pktBytes(pkt)
	fi.LastWall, fi.LastVirt = wall, virt
	if pkt.TCP != nil {
		if pkt.TCP.HasFlag(packet.FlagRST) {
			fi.GotRST = true
		}
		if pkt.TCP.HasFlag(packet.FlagFIN) {
			fi.FINSeen = true
		}
	}
}

// Len returns the live flow count.
func (t *FlowTable) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.flows)
		sh.mu.Unlock()
	}
	return n
}

// Expire removes flows idle (wall clock) for longer than idle and
// returns their canonical tuples so the caller can drop the engine's
// matching strategy state.
func (t *FlowTable) Expire(now time.Time, idle time.Duration) []packet.FourTuple {
	var expired []packet.FourTuple
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for key, fi := range sh.flows {
			if now.Sub(fi.LastWall) >= idle {
				delete(sh.flows, key)
				expired = append(expired, key)
			}
		}
		sh.mu.Unlock()
	}
	return expired
}

// Snapshot renders the table for /flows, oldest flow first.
func (t *FlowTable) Snapshot(now time.Time) []FlowView {
	var out []FlowView
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, fi := range sh.flows {
			state := "active"
			switch {
			case fi.GotRST:
				state = "reset"
			case fi.FINSeen:
				state = "closing"
			}
			out = append(out, FlowView{
				Tuple:    tupleString(fi.Tuple),
				Strategy: fi.Strategy,
				State:    state,
				OutPkts:  fi.OutPkts, InPkts: fi.InPkts,
				OutBytes: fi.OutBytes, InBytes: fi.InBytes,
				GotRST: fi.GotRST,
				AgeMS:  now.Sub(fi.OpenedWall).Milliseconds(),
				IdleMS: now.Sub(fi.LastWall).Milliseconds(),
				VirtMS: (fi.LastVirt - fi.OpenedVirt).Milliseconds(),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AgeMS != out[j].AgeMS {
			return out[i].AgeMS > out[j].AgeMS
		}
		return out[i].Tuple < out[j].Tuple
	})
	return out
}

func tupleString(t packet.FourTuple) string {
	return fmt.Sprintf("%d.%d.%d.%d:%d->%d.%d.%d.%d:%d",
		t.SrcAddr[0], t.SrcAddr[1], t.SrcAddr[2], t.SrcAddr[3], t.SrcPort,
		t.DstAddr[0], t.DstAddr[1], t.DstAddr[2], t.DstAddr[3], t.DstPort)
}
