package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

var (
	cliAddr = packet.AddrFrom4(10, 0, 0, 1)
	srvAddr = packet.AddrFrom4(203, 0, 113, 80)
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	p1 := packet.NewTCP(cliAddr, 4000, srvAddr, 80, packet.FlagSYN, 100, 0, nil)
	p2 := packet.NewTCP(srvAddr, 80, cliAddr, 4000, packet.FlagSYN|packet.FlagACK, 500, 101, []byte("x"))
	if err := w.WritePacket(1500*time.Millisecond, p1); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(2750*time.Millisecond, p2); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Time != 1500*time.Millisecond || recs[1].Time != 2750*time.Millisecond {
		t.Fatalf("timestamps = %v %v", recs[0].Time, recs[1].Time)
	}
	got, err := packet.Parse(recs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TCP == nil || got.TCP.Seq != 100 || !got.TCP.FlagsOnly(packet.FlagSYN) {
		t.Fatalf("parsed %v", got)
	}
}

func TestBadChecksumSurvivesCapture(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	p := packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagRST, 9, 0, nil)
	p.TCP.Checksum ^= 0x5555
	if err := w.WritePacket(0, p); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := packet.Parse(recs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TCP.VerifyChecksum(got.IP.Src, got.IP.Dst, got.Payload) {
		t.Fatal("capture must preserve the deliberately bad checksum")
	}
}

func TestHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteRaw(0, []byte{0x45, 0}); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()[:24]
	if binary.LittleEndian.Uint32(hdr[0:]) != 0xa1b2c3d4 {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint32(hdr[20:]) != 101 {
		t.Fatal("link type must be LINKTYPE_RAW")
	}
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short header should error")
	}
}

func TestAttachCapturesLiveTraffic(t *testing.T) {
	sim := netem.NewSimulator(4)
	path := &netem.Path{Sim: sim}
	path.Hops = append(path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	cli := tcpstack.NewStack(cliAddr, tcpstack.Linux44(), sim)
	srv := tcpstack.NewStack(srvAddr, tcpstack.Linux44(), sim)
	cli.AttachClient(path)
	srv.AttachServer(path)
	srv.Listen(80, func(c *tcpstack.Conn) { c.OnData = func(d []byte) { c.Write(d) } })

	var buf bytes.Buffer
	path.Trace = Attach(NewWriter(&buf), nil)
	c := cli.Connect(srvAddr, 80)
	sim.RunFor(time.Second)
	c.Write([]byte("hello"))
	sim.RunFor(time.Second)

	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// SYN, SYN/ACK, ACK, data, ACK, echo, ACK at minimum.
	if len(recs) < 7 {
		t.Fatalf("captured %d packets", len(recs))
	}
	syn, err := packet.Parse(recs[0].Data)
	if err != nil || !syn.TCP.FlagsOnly(packet.FlagSYN) {
		t.Fatalf("first capture should be the SYN: %v %v", syn, err)
	}
	// Every captured datagram parses.
	for i, rec := range recs {
		if _, err := packet.Parse(rec.Data); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
}

func TestNanoRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewNanoWriter(&buf)
	p := packet.NewTCP(cliAddr, 4000, srvAddr, 80, packet.FlagSYN, 100, 0, nil)
	// Sub-microsecond deltas that the classic format would collapse.
	stamps := []time.Duration{
		1500*time.Millisecond + 1*time.Nanosecond,
		1500*time.Millisecond + 999*time.Nanosecond,
		2*time.Second + 123456789*time.Nanosecond,
	}
	for _, ts := range stamps {
		if err := w.WritePacket(ts, p); err != nil {
			t.Fatal(err)
		}
	}
	if m := binary.LittleEndian.Uint32(buf.Bytes()[0:4]); m != magicNano {
		t.Fatalf("magic = %#x, want %#x", m, uint32(magicNano))
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(stamps) {
		t.Fatalf("records = %d", len(recs))
	}
	for i, ts := range stamps {
		if recs[i].Time != ts {
			t.Fatalf("record %d time = %v, want %v", i, recs[i].Time, ts)
		}
	}
	if got, err := packet.Parse(recs[0].Data); err != nil || got.TCP == nil || got.TCP.Seq != 100 {
		t.Fatalf("parse: %v %v", got, err)
	}
}

func TestMicrosecondStaysDefault(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	p := packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagSYN, 1, 0, nil)
	// A nanosecond-granular stamp is truncated to microseconds in the
	// classic format.
	if err := w.WritePacket(1*time.Second+1234567*time.Nanosecond, p); err != nil {
		t.Fatal(err)
	}
	if m := binary.LittleEndian.Uint32(buf.Bytes()[0:4]); m != magic {
		t.Fatalf("magic = %#x, want %#x", m, uint32(magic))
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1*time.Second + 1234*time.Microsecond; recs[0].Time != want {
		t.Fatalf("time = %v, want %v", recs[0].Time, want)
	}
}
