// Package pcap writes (and reads back) classic libpcap capture files
// containing the simulation's raw IPv4 datagrams, so any trial can be
// inspected in Wireshark/tcpdump. The original, universally supported
// microsecond format (magic 0xa1b2c3d4, LINKTYPE_RAW) is the default;
// a nanosecond-precision variant (magic 0xa1b23c4d) is available for
// traces whose virtual-time deltas are finer than a microsecond.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"intango/internal/netem"
	"intango/internal/packet"
)

const (
	magic = 0xa1b2c3d4
	// magicNano marks the nanosecond-resolution pcap variant: identical
	// layout, but the record sub-second field counts nanoseconds.
	magicNano = 0xa1b23c4d
	// linkTypeRaw is LINKTYPE_RAW: packets begin with the IPv4 header.
	linkTypeRaw = 101
	versionMaj  = 2
	versionMin  = 4
	snapLen     = 65535
)

// Writer emits a pcap stream.
type Writer struct {
	w           io.Writer
	wroteHeader bool
	nano        bool
}

// NewWriter wraps w, producing the classic microsecond format.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// NewNanoWriter wraps w, producing the nanosecond-precision variant
// (magic 0xa1b23c4d). Virtual time in the simulator is nanosecond-
// granular, so this format preserves event ordering that microsecond
// rounding can collapse.
func NewNanoWriter(w io.Writer) *Writer { return &Writer{w: w, nano: true} }

func (pw *Writer) header() error {
	if pw.wroteHeader {
		return nil
	}
	pw.wroteHeader = true
	var hdr [24]byte
	m := uint32(magic)
	if pw.nano {
		m = magicNano
	}
	binary.LittleEndian.PutUint32(hdr[0:], m)
	binary.LittleEndian.PutUint16(hdr[4:], versionMaj)
	binary.LittleEndian.PutUint16(hdr[6:], versionMin)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linkTypeRaw)
	_, err := pw.w.Write(hdr[:])
	return err
}

// WriteRaw records one raw IPv4 datagram at virtual time ts.
func (pw *Writer) WriteRaw(ts time.Duration, data []byte) error {
	if err := pw.header(); err != nil {
		return err
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(ts/time.Second))
	if pw.nano {
		binary.LittleEndian.PutUint32(rec[4:], uint32(ts%time.Second))
	} else {
		binary.LittleEndian.PutUint32(rec[4:], uint32(ts%time.Second/time.Microsecond))
	}
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(data)))
	if _, err := pw.w.Write(rec[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(data)
	return err
}

// WritePacket serializes and records a simulation packet. The packet's
// current field values are emitted verbatim — including deliberately
// wrong checksums — so the capture shows exactly what was "on the
// wire".
func (pw *Writer) WritePacket(ts time.Duration, pkt *packet.Packet) error {
	return pw.WriteRaw(ts, pkt.Serialize(packet.SerializeOptions{}))
}

// Attach builds a netem trace hook that captures every send/deliver/
// inject event on a path into the writer, chaining to prev (which may
// be nil).
func Attach(pw *Writer, prev func(netem.TraceEvent)) func(netem.TraceEvent) {
	return func(ev netem.TraceEvent) {
		switch ev.Event {
		case "send", "inject":
			// Capture at transmission points only, so each datagram
			// appears once.
			_ = pw.WritePacket(ev.Time, ev.Pkt)
		}
		if prev != nil {
			prev(ev)
		}
	}
}

// Record is one packet read back from a capture.
type Record struct {
	Time time.Duration
	Data []byte
}

// Read parses a pcap stream written by this package, accepting both the
// microsecond (0xa1b2c3d4) and nanosecond (0xa1b23c4d) magics.
func Read(r io.Reader) ([]Record, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: header: %w", err)
	}
	var subsec time.Duration
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case magic:
		subsec = time.Microsecond
	case magicNano:
		subsec = time.Nanosecond
	default:
		return nil, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != linkTypeRaw {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	var out []Record
	for {
		var rec [16]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("pcap: record header: %w", err)
		}
		sec := binary.LittleEndian.Uint32(rec[0:])
		frac := binary.LittleEndian.Uint32(rec[4:])
		n := binary.LittleEndian.Uint32(rec[8:])
		if n > snapLen {
			return nil, fmt.Errorf("pcap: oversized record %d", n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("pcap: record body: %w", err)
		}
		out = append(out, Record{
			Time: time.Duration(sec)*time.Second + time.Duration(frac)*subsec,
			Data: data,
		})
	}
}
