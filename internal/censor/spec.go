// Package censor is the declarative censor layer: a Spec describes a
// censoring apparatus as data — a stateful TCB engine, detection rules
// (keyword DPI, DNS lists, HTTP Host lists, protocol fingerprints),
// in-path filtering primitives, reactions (reset volleys, residual
// blocklists, flow blackholing, DNS poisoning, active probing),
// hardening countermeasures, and per-device parameter draws — with a
// canonical text encoding that round-trips through ParseCensor,
// exactly as internal/core's Spec does for strategies and
// internal/topo's for topologies. Compilation to live devices lives in
// compile.go: specs with a tcb: statement lower onto the internal/gfw
// engine, tcb-less detect/react specs lower onto the stateless
// bidirectional Blocker (the Turkmenistan-style apparatus of Nourin et
// al.), and filter-only specs lower onto internal/middlebox chains.
package censor

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"intango/internal/packet"
)

// Detect is one detection rule.
type Detect struct {
	// Kind: "keywords" (payload DPI), "dns" (poisoned-domain list),
	// "host" (HTTP Host blocklist, suffix match), "proto" (protocol
	// fingerprint).
	Kind string
	// Words carries the keyword/domain list, or the single protocol
	// name ("tor", "openvpn") for proto.
	Words []string
	// Both scans both directions (keywords only): response censorship
	// on the GFW engine, bidirectional DPI on the inline blocker.
	Both bool
}

// String renders the detect statement in canonical form.
func (d Detect) String() string {
	s := "detect:" + d.Kind + "(" + strings.Join(d.Words, "+")
	if d.Both {
		s += ",dir=both"
	}
	return s + ")"
}

// Filter is one in-path filtering primitive (the Table 2 middlebox
// behaviours expressed as censor statements).
type Filter struct {
	// Kind: "fragdrop", "reassemble", "checksum", "flagless", "flag".
	Kind string
	// Flag ("fin" or "rst") and P (drop probability) apply to "flag".
	Flag string
	P    float64
}

// String renders the filter statement in canonical form.
func (f Filter) String() string {
	if f.Kind == "flag" {
		return "filter:flag(" + f.Flag + ",p=" + formatFloat(f.P) + ")"
	}
	return "filter:" + f.Kind
}

// React is one reaction rule.
type React struct {
	// Kind: "reset", "block", "drop", "poison", "probe".
	Kind string
	// Type selects the injector for "reset": 1 (bare RST, random
	// TTL/window) or 2 (RST/ACK triples at sequence offsets).
	Type int
	// Offsets overrides the type-2 sequence offsets; nil keeps the
	// measured {0, 1460, 4380}.
	Offsets []int
	// Dur is the residual period for "block" (pair blocklist) and
	// "drop" (flow blackhole).
	Dur time.Duration
	// Delay is the fingerprint→probe delay for "probe".
	Delay time.Duration
	// IP is the forged answer for "poison"; HasIP distinguishes an
	// explicit address from the default poison pool.
	IP    packet.Addr
	HasIP bool
}

// String renders the react statement in canonical form.
func (r React) String() string {
	switch r.Kind {
	case "reset":
		s := fmt.Sprintf("react:reset(type%d", r.Type)
		if len(r.Offsets) > 0 {
			strs := make([]string, len(r.Offsets))
			for i, o := range r.Offsets {
				strs[i] = strconv.Itoa(o)
			}
			s += ",offsets=" + strings.Join(strs, "+")
		}
		return s + ")"
	case "block":
		return "react:block(dur=" + r.Dur.String() + ")"
	case "drop":
		return "react:drop(dur=" + r.Dur.String() + ")"
	case "poison":
		if r.HasIP {
			return "react:poison(ip=" + formatAddr(r.IP) + ")"
		}
		return "react:poison"
	case "probe":
		return "react:probe(delay=" + r.Delay.String() + ")"
	}
	return "react:" + r.Kind
}

// Param is one per-device parameter draw.
type Param struct {
	// Kind: "miss" (detection-miss probability), "resync" (RST sends
	// the TCB to resynchronization), "seglastwins" (overlapping
	// out-of-order segments resolve to the newest copy).
	Kind string
	P    float64
}

// String renders the param statement in canonical form.
func (p Param) String() string {
	return "param:" + p.Kind + "(p=" + formatFloat(p.P) + ")"
}

// Spec is a complete declarative censor.
type Spec struct {
	// TCB selects the stateful engine model: "" (no engine — an inline
	// blocker or a pure filter chain), "evolved" (§4's 2017 model) or
	// "khattak" (the FOCI '13 model).
	TCB     string
	Detects []Detect
	Filters []Filter
	Reacts  []React
	// Hardens lists §8 countermeasures: "checksum", "md5", "trustack".
	Hardens []string
	Params  []Param
}

// String renders the canonical single-line encoding: the tcb statement,
// then detects, filters, reacts, hardens and params, each category in
// declaration order. ParseCensor inverts it exactly:
// ParseCensor(s.String()).String() == s.String().
func (s Spec) String() string {
	var parts []string
	if s.TCB != "" {
		parts = append(parts, "tcb:"+s.TCB)
	}
	for _, d := range s.Detects {
		parts = append(parts, d.String())
	}
	for _, f := range s.Filters {
		parts = append(parts, f.String())
	}
	for _, r := range s.Reacts {
		parts = append(parts, r.String())
	}
	for _, h := range s.Hardens {
		parts = append(parts, "harden:"+h)
	}
	for _, p := range s.Params {
		parts = append(parts, p.String())
	}
	return strings.Join(parts, " ")
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func formatAddr(a packet.Addr) string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// MustParseCensor is ParseCensor for statically-known specs; it panics
// on error.
func MustParseCensor(input string) Spec {
	spec, err := ParseCensor(input)
	if err != nil {
		panic(err)
	}
	return spec
}

// ParseCensor parses the canonical text encoding:
//
//	censor = stmt {" " stmt}
//	stmt   = "tcb:" model | "detect:" det | "filter:" filt |
//	         "react:" rea | "harden:" hard | "param:" par
//	model  = "evolved" | "khattak"
//	det    = "keywords(" words ["," "dir=both"] ")" | "dns(" words ")" |
//	         "host(" words ")" | "proto(" ("tor" | "openvpn") ")"
//	words  = word {"+" word}
//	filt   = "fragdrop" | "reassemble" | "checksum" | "flagless" |
//	         "flag(" ("fin" | "rst") ",p=" float ")"
//	rea    = "reset(type1)" | "reset(type2" ["," "offsets=" ints] ")" |
//	         "block(dur=" duration ")" | "drop(dur=" duration ")" |
//	         "poison(ip=" dotted-quad ")" | "probe(delay=" duration ")"
//	hard   = "checksum" | "md5" | "trustack"
//	par    = ("miss" | "resync" | "seglastwins") "(p=" float ")"
//
// Whitespace (including newlines) between statements is forgiving on
// input; String always emits single spaces. Statements may arrive in
// any order; String emits the canonical category order. Semantic
// checks (which primitives compose, duplicate rules) happen in
// Compile, not here — except a few that would make the encoding
// ambiguous.
func ParseCensor(input string) (Spec, error) {
	p := &censorParser{s: input}
	var spec Spec
	p.space()
	if p.eof() {
		return Spec{}, fmt.Errorf("censor: empty input")
	}
	for {
		p.space()
		if p.eof() {
			return spec, nil
		}
		head := p.ident()
		if head == "" || !p.consume(':') {
			return Spec{}, fmt.Errorf("censor: expected tcb:, detect:, filter:, react:, harden: or param:, got %q", p.rest())
		}
		var err error
		switch head {
		case "tcb":
			err = p.tcb(&spec)
		case "detect":
			err = p.detect(&spec)
		case "filter":
			err = p.filter(&spec)
		case "react":
			err = p.react(&spec)
		case "harden":
			err = p.harden(&spec)
		case "param":
			err = p.param(&spec)
		default:
			return Spec{}, fmt.Errorf("censor: unknown statement %q", head)
		}
		if err != nil {
			return Spec{}, err
		}
	}
}

type censorParser struct {
	s string
	i int
}

func (p *censorParser) eof() bool    { return p.i >= len(p.s) }
func (p *censorParser) rest() string { return p.s[p.i:] }

func (p *censorParser) space() {
	for !p.eof() && (p.s[p.i] == ' ' || p.s[p.i] == '\t' || p.s[p.i] == '\n' || p.s[p.i] == '\r') {
		p.i++
	}
}

func (p *censorParser) consume(c byte) bool {
	if !p.eof() && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

func identByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// valueByte covers attribute values: words, word lists joined with
// '+', dotted quads, durations, signed numbers.
func valueByte(c byte) bool {
	return identByte(c) || c == '-' || c == '_' || c == '.' || c == '+'
}

// ident consumes a run of identifier bytes (possibly empty).
func (p *censorParser) ident() string {
	start := p.i
	for !p.eof() && identByte(p.s[p.i]) {
		p.i++
	}
	return p.s[start:p.i]
}

// arg is one parsed attribute: bare ("type1") or key=value.
type arg struct {
	key string // "" for a bare token
	val string
}

// label names the attribute in errors: the key for key=value, the
// token itself when bare.
func (a arg) label() string {
	if a.key != "" {
		return a.key
	}
	return a.val
}

// args parses an optional parenthesised attribute list.
func (p *censorParser) args(owner string) ([]arg, error) {
	if !p.consume('(') {
		return nil, nil
	}
	var out []arg
	for {
		p.space()
		if p.consume(')') {
			return out, nil
		}
		start := p.i
		for !p.eof() && valueByte(p.s[p.i]) {
			p.i++
		}
		tok := p.s[start:p.i]
		if tok == "" {
			return nil, fmt.Errorf("censor: %s: expected attribute, got %q", owner, p.rest())
		}
		a := arg{val: tok}
		if p.consume('=') {
			a.key = tok
			start = p.i
			for !p.eof() && valueByte(p.s[p.i]) {
				p.i++
			}
			a.val = p.s[start:p.i]
			if a.val == "" {
				return nil, fmt.Errorf("censor: %s: missing value for %q", owner, a.key)
			}
		}
		out = append(out, a)
		p.space()
		if p.consume(',') {
			continue
		}
		if p.consume(')') {
			return out, nil
		}
		return nil, fmt.Errorf("censor: %s: expected ',' or ')', got %q", owner, p.rest())
	}
}

func (p *censorParser) tcb(spec *Spec) error {
	model := p.ident()
	if model != "evolved" && model != "khattak" {
		return fmt.Errorf("censor: tcb: unknown model %q (want evolved or khattak)", model)
	}
	if spec.TCB != "" {
		return fmt.Errorf("censor: duplicate tcb statement")
	}
	spec.TCB = model
	return nil
}

// words splits a '+'-joined word list, rejecting empty elements.
func words(owner, list string) ([]string, error) {
	if list == "" {
		return nil, fmt.Errorf("censor: %s: missing word list", owner)
	}
	parts := strings.Split(list, "+")
	for _, w := range parts {
		if w == "" {
			return nil, fmt.Errorf("censor: %s: empty word in %q", owner, list)
		}
	}
	return parts, nil
}

func (p *censorParser) detect(spec *Spec) error {
	kind := p.ident()
	owner := "detect:" + kind
	args, err := p.args(owner)
	if err != nil {
		return err
	}
	d := Detect{Kind: kind}
	switch kind {
	case "keywords", "dns", "host":
		if len(args) == 0 || args[0].key != "" {
			return fmt.Errorf("censor: %s: missing word list", owner)
		}
		d.Words, err = words(owner, args[0].val)
		if err != nil {
			return err
		}
		for _, a := range args[1:] {
			if a.key == "dir" && a.val == "both" && kind == "keywords" {
				d.Both = true
				continue
			}
			return fmt.Errorf("censor: %s: unknown argument %q", owner, a.label())
		}
	case "proto":
		if len(args) != 1 || args[0].key != "" || (args[0].val != "tor" && args[0].val != "openvpn") {
			return fmt.Errorf("censor: detect:proto: want proto(tor) or proto(openvpn)")
		}
		d.Words = []string{args[0].val}
	default:
		return fmt.Errorf("censor: detect: unknown kind %q (want keywords, dns, host or proto)", kind)
	}
	spec.Detects = append(spec.Detects, d)
	return nil
}

func (p *censorParser) filter(spec *Spec) error {
	kind := p.ident()
	owner := "filter:" + kind
	args, err := p.args(owner)
	if err != nil {
		return err
	}
	f := Filter{Kind: kind}
	switch kind {
	case "fragdrop", "reassemble", "checksum", "flagless":
		if len(args) != 0 {
			return fmt.Errorf("censor: %s: takes no arguments", owner)
		}
	case "flag":
		if len(args) != 2 || args[0].key != "" || args[1].key != "p" {
			return fmt.Errorf("censor: filter:flag: want flag(fin|rst,p=F)")
		}
		if args[0].val != "fin" && args[0].val != "rst" {
			return fmt.Errorf("censor: filter:flag: unknown flag %q (want fin or rst)", args[0].val)
		}
		f.Flag = args[0].val
		f.P, err = prob(owner, args[1].val)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("censor: filter: unknown kind %q (want fragdrop, reassemble, checksum, flagless or flag)", kind)
	}
	spec.Filters = append(spec.Filters, f)
	return nil
}

func (p *censorParser) react(spec *Spec) error {
	kind := p.ident()
	owner := "react:" + kind
	args, err := p.args(owner)
	if err != nil {
		return err
	}
	r := React{Kind: kind}
	switch kind {
	case "reset":
		if len(args) == 0 || args[0].key != "" || (args[0].val != "type1" && args[0].val != "type2") {
			return fmt.Errorf("censor: react:reset: want reset(type1) or reset(type2)")
		}
		r.Type = 1
		if args[0].val == "type2" {
			r.Type = 2
		}
		for _, a := range args[1:] {
			if a.key != "offsets" || r.Type != 2 {
				return fmt.Errorf("censor: react:reset: unknown argument %q", a.label())
			}
			for _, s := range strings.Split(a.val, "+") {
				n, err := strconv.Atoi(s)
				if err != nil || n < 0 {
					return fmt.Errorf("censor: react:reset: bad offset %q", s)
				}
				r.Offsets = append(r.Offsets, n)
			}
		}
	case "block", "drop":
		if len(args) != 1 || args[0].key != "dur" {
			return fmt.Errorf("censor: %s: want %s(dur=D)", owner, kind)
		}
		d, err := time.ParseDuration(args[0].val)
		if err != nil || d <= 0 {
			return fmt.Errorf("censor: %s: bad dur %q", owner, args[0].val)
		}
		r.Dur = d
	case "poison":
		if len(args) > 1 || (len(args) == 1 && args[0].key != "ip") {
			return fmt.Errorf("censor: react:poison: want poison or poison(ip=A.B.C.D)")
		}
		if len(args) == 1 {
			a, err := parseAddr(args[0].val)
			if err != nil {
				return fmt.Errorf("censor: react:poison: bad ip %q", args[0].val)
			}
			r.IP, r.HasIP = a, true
		}
	case "probe":
		if len(args) != 1 || args[0].key != "delay" {
			return fmt.Errorf("censor: react:probe: want probe(delay=D)")
		}
		d, err := time.ParseDuration(args[0].val)
		if err != nil || d <= 0 {
			return fmt.Errorf("censor: react:probe: bad delay %q", args[0].val)
		}
		r.Delay = d
	default:
		return fmt.Errorf("censor: react: unknown kind %q (want reset, block, drop, poison or probe)", kind)
	}
	spec.Reacts = append(spec.Reacts, r)
	return nil
}

func (p *censorParser) harden(spec *Spec) error {
	kind := p.ident()
	switch kind {
	case "checksum", "md5", "trustack":
	default:
		return fmt.Errorf("censor: harden: unknown countermeasure %q (want checksum, md5 or trustack)", kind)
	}
	for _, h := range spec.Hardens {
		if h == kind {
			return fmt.Errorf("censor: duplicate harden:%s", kind)
		}
	}
	spec.Hardens = append(spec.Hardens, kind)
	return nil
}

func (p *censorParser) param(spec *Spec) error {
	kind := p.ident()
	owner := "param:" + kind
	switch kind {
	case "miss", "resync", "seglastwins":
	default:
		return fmt.Errorf("censor: param: unknown parameter %q (want miss, resync or seglastwins)", kind)
	}
	args, err := p.args(owner)
	if err != nil {
		return err
	}
	if len(args) != 1 || args[0].key != "p" {
		return fmt.Errorf("censor: %s: want %s(p=F)", owner, kind)
	}
	f, err := prob(owner, args[0].val)
	if err != nil {
		return err
	}
	for _, q := range spec.Params {
		if q.Kind == kind {
			return fmt.Errorf("censor: duplicate param:%s", kind)
		}
	}
	spec.Params = append(spec.Params, Param{Kind: kind, P: f})
	return nil
}

// prob parses a probability in [0, 1].
func prob(owner, s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f < 0 || f > 1 {
		return 0, fmt.Errorf("censor: %s: bad probability %q (want [0,1])", owner, s)
	}
	return f, nil
}

// parseAddr parses a dotted quad.
func parseAddr(s string) (packet.Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return packet.Addr{}, fmt.Errorf("bad address")
	}
	var out [4]byte
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return packet.Addr{}, fmt.Errorf("bad address")
		}
		out[i] = byte(n)
	}
	return packet.AddrFrom4(out[0], out[1], out[2], out[3]), nil
}
