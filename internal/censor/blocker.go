package censor

import (
	"math/rand"
	"strings"
	"time"

	"intango/internal/dnsmsg"
	"intango/internal/dpi"
	"intango/internal/gfw"
	"intango/internal/netem"
	"intango/internal/obs"
	"intango/internal/packet"
)

// BlockerConfig parameterizes the inline blocker — the stateless
// bidirectional apparatus Nourin et al. measured in Turkmenistan:
// per-packet keyword DPI (no TCB, no reassembly), HTTP Host and DNS
// blocklists, forged DNS answers, and flow blackholing with a residual
// window. Compile lowers tcb-less detect/react specs here.
type BlockerConfig struct {
	// Keywords is the per-packet payload blacklist.
	Keywords []string
	// Bidirectional also scans server→client payloads.
	Bidirectional bool
	// Hosts is the HTTP Host blocklist (suffix match).
	Hosts []string
	// Domains is the DNS blocklist (suffix match).
	Domains []string
	// BlockDuration is the residual flow-blackhole window.
	BlockDuration time.Duration
	// PoisonDNS injects a forged answer for blocked domains;
	// PoisonAddr is the forged address (the GFW poison pool default
	// when zero — Turkmenistan's injector famously answers 127.0.0.1).
	PoisonDNS  bool
	PoisonAddr packet.Addr
}

// Blocker is a stateless bidirectional blocking device. Like every
// censor it splits across the two netem positions: the tap observes
// and injects (forged DNS answers) but never drops; the Filter
// companion enforces the pair blackhole in-path — including on the
// triggering packet itself, which the tap marks before the in-path
// chain runs.
type Blocker struct {
	name    string
	cfg     BlockerConfig
	matcher *dpi.Matcher

	// pairBlock maps a canonical address pair to the virtual time its
	// blackhole expires.
	pairBlock map[[2]packet.Addr]time.Duration

	clientSide func(packet.Addr) bool

	// Stage marks for span profiling, mirroring gfw.Device.
	firstPktAt time.Duration
	lastPktAt  time.Duration
	verdictAt  time.Duration
	sawPkt     bool
	now        time.Duration

	// Stats counts events by kind.
	Stats map[string]int
	// Obs, when set, mirrors events into the shared observability
	// layer as "censor.<kind>" counters.
	Obs *obs.Obs
}

// NewBlocker builds a blocker named name. The rng parameter keeps the
// constructor signature uniform with the engine's; the stateless
// blocker draws no sampled behaviour.
func NewBlocker(name string, cfg BlockerConfig, rng *rand.Rand) *Blocker {
	if cfg.PoisonAddr == (packet.Addr{}) {
		cfg.PoisonAddr = gfw.PoisonAddr
	}
	_ = rng
	return &Blocker{
		name:      name,
		cfg:       cfg,
		matcher:   dpi.NewMatcher(cfg.Keywords),
		pairBlock: make(map[[2]packet.Addr]time.Duration),
		Stats:     make(map[string]int),
	}
}

// Name implements netem.Processor.
func (b *Blocker) Name() string { return b.name }

// SetObs implements Instance.
func (b *Blocker) SetObs(o *obs.Obs) { b.Obs = o }

// SetClientSide implements Instance.
func (b *Blocker) SetClientSide(f func(packet.Addr) bool) { b.clientSide = f }

// Stat implements Instance.
func (b *Blocker) Stat(kind string) int { return b.Stats[kind] }

// ClearStats implements Instance.
func (b *Blocker) ClearStats() {
	for k := range b.Stats {
		delete(b.Stats, k)
	}
}

// Marks implements Instance.
func (b *Blocker) Marks() (first, verdict, last time.Duration) {
	return b.firstPktAt, b.verdictAt, b.lastPktAt
}

// blockerVerdicts are the event kinds that stamp VerdictAt.
var blockerVerdicts = map[string]bool{
	"detect-keyword": true,
	"detect-host":    true,
	"detect-dns":     true,
}

func (b *Blocker) event(kind string, pkt *packet.Packet, detail string) {
	b.Stats[kind]++
	if b.verdictAt == 0 && blockerVerdicts[kind] {
		b.verdictAt = b.now
	}
	if b.Obs != nil {
		b.Obs.Count("censor." + kind)
		note := b.name
		if detail != "" {
			note += " " + detail
		}
		var id uint32
		if pkt != nil {
			id = pkt.Lin.ID
		}
		b.Obs.TracePkt("censor", kind, id, 0, 0, 0, note)
	}
}

// Process implements netem.Processor as an on-path tap: it always
// passes and never mutates pkt. Detection here only marks state; the
// Filter companion does the dropping.
func (b *Blocker) Process(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
	b.now = ctx.Sim.Now()
	if !b.sawPkt {
		b.sawPkt = true
		b.firstPktAt = b.now
	}
	b.lastPktAt = b.now
	switch {
	case pkt.UDP != nil:
		b.processUDP(ctx, pkt)
	case pkt.TCP != nil:
		b.processTCP(pkt, dir)
	}
	return netem.Pass
}

func (b *Blocker) processTCP(pkt *packet.Packet, dir netem.Direction) {
	if len(pkt.Payload) == 0 {
		return
	}
	if dir == netem.ToClient && !b.cfg.Bidirectional {
		return
	}
	if len(b.cfg.Keywords) > 0 && b.matcher.Contains(pkt.Payload) {
		b.event("detect-keyword", pkt, "")
		b.blockPair(pkt.IP.Src, pkt.IP.Dst, pkt)
		return
	}
	if dir == netem.ToServer && len(b.cfg.Hosts) > 0 {
		if info, ok := dpi.ParseHTTPRequest(pkt.Payload); ok && suffixMatch(info.Host, b.cfg.Hosts) {
			b.event("detect-host", pkt, info.Host)
			b.blockPair(pkt.IP.Src, pkt.IP.Dst, pkt)
		}
	}
}

// processUDP applies the DNS blocklist to client→resolver queries:
// forged answer injection (when configured) plus the same residual
// blackhole every detection draws.
func (b *Blocker) processUDP(ctx *netem.Context, pkt *packet.Packet) {
	if pkt.UDP.DstPort != 53 || len(b.cfg.Domains) == 0 {
		return
	}
	name, ok := dpi.DNSUDPQueryName(pkt.Payload)
	if !ok || !suffixMatch(name, b.cfg.Domains) {
		return
	}
	b.event("detect-dns", pkt, name)
	if b.cfg.PoisonDNS {
		if query, err := dnsmsg.Decode(pkt.Payload); err == nil {
			forged := dnsmsg.NewResponse(query, b.cfg.PoisonAddr, 300)
			if payload, err := forged.Encode(); err == nil {
				resp := ctx.Pool().NewUDP(pkt.IP.Dst, 53, pkt.IP.Src, pkt.UDP.SrcPort, payload)
				resp.Lin = packet.Lineage{Origin: packet.OriginGFW, Parent: pkt.Lin.ID}
				dirOut := netem.ToServer
				if b.towardClientEnd(pkt.IP.Src) {
					dirOut = netem.ToClient
				}
				ctx.Inject(dirOut, resp, 0)
				b.event("dns-poison", pkt, name)
			}
		}
	}
	b.blockPair(pkt.IP.Src, pkt.IP.Dst, pkt)
}

func (b *Blocker) towardClientEnd(addr packet.Addr) bool {
	if b.clientSide != nil {
		return b.clientSide(addr)
	}
	return addr[0] == 10
}

// blockPair starts (or refreshes) the residual blackhole for an
// address pair.
func (b *Blocker) blockPair(src, dst packet.Addr, cause *packet.Packet) {
	b.pairBlock[blockerPairKey(src, dst)] = b.now + b.cfg.BlockDuration
	b.event("block", cause, "")
}

func blockerPairKey(a, b packet.Addr) [2]packet.Addr {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return [2]packet.Addr{a, b}
			}
			return [2]packet.Addr{b, a}
		}
	}
	return [2]packet.Addr{a, b}
}

// PairBlocked reports whether the address pair is currently
// blackholed.
func (b *Blocker) PairBlocked(x, y packet.Addr, now time.Duration) bool {
	exp, ok := b.pairBlock[blockerPairKey(x, y)]
	return ok && now < exp
}

// Filter implements Instance: the in-path companion that enforces the
// flow blackhole. Unlike the tap it can drop packets — and because
// taps run before in-path processors at a hop, the packet whose
// payload triggered detection is itself swallowed, which is what makes
// the blocker bidirectional blocking rather than reset injection: the
// client sees silence, not a RST.
func (b *Blocker) Filter() netem.Processor {
	return &flowFilter{b: b}
}

type flowFilter struct{ b *Blocker }

func (f *flowFilter) Name() string { return f.b.name + "-flowfilter" }

func (f *flowFilter) Process(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
	key := blockerPairKey(pkt.IP.Src, pkt.IP.Dst)
	exp, ok := f.b.pairBlock[key]
	if !ok {
		return netem.Pass
	}
	if ctx.Sim.Now() >= exp {
		delete(f.b.pairBlock, key)
		return netem.Pass
	}
	f.b.event("drop-flow", pkt, "")
	return netem.Drop
}

// suffixMatch reports whether name equals, or is a subdomain of, any
// entry in list.
func suffixMatch(name string, list []string) bool {
	name = strings.ToLower(name)
	for _, dom := range list {
		if name == dom || strings.HasSuffix(name, "."+dom) {
			return true
		}
	}
	return false
}
