package censor

import (
	"bytes"
	"testing"
	"time"

	"intango/internal/appsim"
	"intango/internal/dnsmsg"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

var (
	blkCliAddr = packet.AddrFrom4(10, 0, 0, 1)
	blkSrvAddr = packet.AddrFrom4(203, 0, 113, 80)
)

// blkRig is a client—blocker—server test topology: the blocker taps a
// mid-path hop and its flow filter sits in-path at the same hop.
type blkRig struct {
	sim *netem.Simulator
	blk *Blocker
	cli *tcpstack.Stack
	srv *tcpstack.Stack
}

func newBlkRig(t *testing.T, cfg BlockerConfig) *blkRig {
	t.Helper()
	r := &blkRig{sim: netem.NewSimulator(11)}
	r.blk = NewBlocker("blk", cfg, r.sim.Rand())
	path := &netem.Path{Sim: r.sim}
	for i := 0; i < 5; i++ {
		path.Hops = append(path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	path.ClientLink.Latency = time.Millisecond
	path.Hops[2].Taps = []netem.Processor{r.blk}
	path.Hops[2].Processors = []netem.Processor{r.blk.Filter()}
	r.cli = tcpstack.NewStack(blkCliAddr, tcpstack.Linux44(), r.sim)
	r.srv = tcpstack.NewStack(blkSrvAddr, tcpstack.Linux44(), r.sim)
	r.cli.AttachClient(path)
	r.srv.AttachServer(path)
	appsim.ServeHTTP(r.srv, 80)
	return r
}

func (r *blkRig) get(t *testing.T, host, uri string) *tcpstack.Conn {
	t.Helper()
	c := r.cli.Connect(blkSrvAddr, 80)
	r.sim.RunFor(100 * time.Millisecond)
	if c.State() == tcpstack.Established {
		c.Write(appsim.HTTPRequest(host, uri))
	}
	r.sim.RunFor(2 * time.Second)
	return c
}

// TestBlockerKeywordBlackhole checks the signature behaviour: a
// keyword match blackholes the flow — including the triggering packet
// itself — and the client sees silence, not a reset.
func TestBlockerKeywordBlackhole(t *testing.T) {
	r := newBlkRig(t, BlockerConfig{Keywords: []string{"ultrasurf"}, BlockDuration: time.Minute})
	c := r.get(t, "example.com", "/?q=ultrasurf")
	if appsim.HTTPResponseComplete(c.Received()) {
		t.Fatal("sensitive fetch completed through the blocker")
	}
	if c.GotRST {
		t.Fatal("blocker injected a reset; blackholing should be silent")
	}
	if r.blk.Stat("detect-keyword") == 0 || r.blk.Stat("block") == 0 || r.blk.Stat("drop-flow") == 0 {
		t.Fatalf("stats = %v", r.blk.Stats)
	}
	if !r.blk.PairBlocked(blkCliAddr, blkSrvAddr, r.sim.Now()) {
		t.Fatal("pair not blocked after detection")
	}
}

// TestBlockerCleanPasses checks an innocent fetch is untouched.
func TestBlockerCleanPasses(t *testing.T) {
	r := newBlkRig(t, BlockerConfig{Keywords: []string{"ultrasurf"}, BlockDuration: time.Minute})
	c := r.get(t, "example.com", "/index.html")
	if !appsim.HTTPResponseComplete(c.Received()) {
		t.Fatal("clean fetch did not complete")
	}
	if r.blk.Stat("detect-keyword") != 0 || r.blk.Stat("drop-flow") != 0 {
		t.Fatalf("stats = %v", r.blk.Stats)
	}
}

// TestBlockerBlockExpiry checks the residual blackhole lapses: a
// fresh connection after BlockDuration completes normally. Every
// retransmission of the swallowed sensitive request re-trips detection
// and refreshes the block, so the wait must outlast the client stack's
// retry schedule plus one full block window.
func TestBlockerBlockExpiry(t *testing.T) {
	r := newBlkRig(t, BlockerConfig{Keywords: []string{"ultrasurf"}, BlockDuration: 30 * time.Second})
	r.get(t, "example.com", "/?q=ultrasurf")
	r.sim.RunFor(3 * time.Minute)
	c := r.get(t, "example.com", "/index.html")
	if !appsim.HTTPResponseComplete(c.Received()) {
		t.Fatal("fetch after blackhole expiry did not complete")
	}
}

// TestBlockerBidirectional checks dir=both scans server→client data:
// a response echoing the keyword trips detection even though the
// request was clean.
func TestBlockerBidirectional(t *testing.T) {
	for _, bidir := range []bool{true, false} {
		r := newBlkRig(t, BlockerConfig{
			Keywords: []string{"ultrasurf"}, Bidirectional: bidir, BlockDuration: time.Minute,
		})
		// A server whose response carries the keyword even though the
		// request was clean (cf. the §3.3 response-censorship exclusion).
		r.srv.Listen(81, func(c *tcpstack.Conn) {
			c.OnData = func([]byte) {
				if bytes.Contains(c.Received(), []byte("\r\n\r\n")) {
					body := "ultra" + "surf is blocked here"
					c.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 25\r\n\r\n" + body))
				}
			}
		})
		c := r.cli.Connect(blkSrvAddr, 81)
		r.sim.RunFor(100 * time.Millisecond)
		if c.State() == tcpstack.Established {
			c.Write(appsim.HTTPRequest("example.com", "/index.html"))
		}
		r.sim.RunFor(2 * time.Second)
		if got := r.blk.Stat("detect-keyword") > 0; got != bidir {
			t.Errorf("bidir=%v: response detection = %v", bidir, got)
		}
	}
}

// TestBlockerHostList checks the HTTP Host blocklist suffix-matches.
func TestBlockerHostList(t *testing.T) {
	r := newBlkRig(t, BlockerConfig{Hosts: []string{"facebook.com"}, BlockDuration: time.Minute})
	c := r.get(t, "www.facebook.com", "/profile")
	if appsim.HTTPResponseComplete(c.Received()) {
		t.Fatal("blocked-host fetch completed")
	}
	if r.blk.Stat("detect-host") == 0 {
		t.Fatalf("stats = %v", r.blk.Stats)
	}
	r2 := newBlkRig(t, BlockerConfig{Hosts: []string{"facebook.com"}, BlockDuration: time.Minute})
	c2 := r2.get(t, "notfacebook.com", "/profile")
	if !appsim.HTTPResponseComplete(c2.Received()) {
		t.Fatal("suffix match over-blocked an innocent host")
	}
}

// TestBlockerDNSPoison checks the resolver path: a query for a listed
// domain draws a forged answer carrying the configured address, and
// the resolver pair is then blackholed.
func TestBlockerDNSPoison(t *testing.T) {
	poison := packet.AddrFrom4(127, 0, 0, 1)
	r := newBlkRig(t, BlockerConfig{
		Domains: []string{"dropbox.com"}, PoisonDNS: true, PoisonAddr: poison,
		BlockDuration: time.Minute,
	})
	appsim.ServeDNSUDP(r.srv, appsim.Zone{"www.dropbox.com": packet.AddrFrom4(1, 2, 3, 4)})
	var answers []packet.Addr
	r.cli.ListenUDP(5353, func(src packet.Addr, srcPort uint16, payload []byte) {
		if m, err := dnsmsg.Decode(payload); err == nil && len(m.Answers) > 0 {
			answers = append(answers, m.Answers[0].Addr)
		}
	})
	q, _ := dnsmsg.NewQuery(42, "www.dropbox.com").Encode()
	r.cli.SendUDP(5353, blkSrvAddr, 53, q)
	r.sim.RunFor(time.Second)
	if len(answers) != 1 || answers[0] != poison {
		t.Fatalf("answers = %v, want exactly the forged %v (real answer blackholed)", answers, poison)
	}
	if r.blk.Stat("detect-dns") == 0 || r.blk.Stat("dns-poison") == 0 {
		t.Fatalf("stats = %v", r.blk.Stats)
	}
	// An innocent domain resolves normally.
	answers = nil
	q2, _ := dnsmsg.NewQuery(43, "www.example.com").Encode()
	r.cli.SendUDP(5353, blkSrvAddr, 53, q2)
	r.sim.RunFor(time.Second)
	if len(answers) != 0 {
		// The resolver pair is blackholed from the earlier detection, so
		// even innocent queries die until the block lapses.
		t.Fatalf("blackholed resolver pair still answered: %v", answers)
	}
}

// TestBlockerInstanceSurface exercises the Instance bookkeeping the
// experiment rig relies on: marks, stat clearing, obs-free operation.
func TestBlockerInstanceSurface(t *testing.T) {
	r := newBlkRig(t, BlockerConfig{Keywords: []string{"ultrasurf"}, BlockDuration: time.Minute})
	r.get(t, "example.com", "/?q=ultrasurf")
	first, verdict, last := r.blk.Marks()
	if first == 0 || verdict == 0 || last < verdict {
		t.Fatalf("marks = %v %v %v", first, verdict, last)
	}
	r.blk.ClearStats()
	if r.blk.Stat("detect-keyword") != 0 {
		t.Fatal("ClearStats left counts behind")
	}
	if r.blk.Name() != "blk" || !bytes.Contains([]byte(r.blk.Filter().Name()), []byte("blk")) {
		t.Fatalf("names = %q / %q", r.blk.Name(), r.blk.Filter().Name())
	}
}
