package censor

import "testing"

// FuzzParseCensor asserts the parser's core invariant on arbitrary
// input: no panics, and every accepted spec has a canonical form that
// re-parses to the same canonical form (String is a fixed point of
// ParseCensor∘String). `make check` runs the seed corpus as a smoke
// test (go test -run=FuzzParseCensor); run
// `go test -fuzz=FuzzParseCensor ./internal/censor` to explore.
func FuzzParseCensor(f *testing.F) {
	seeds := []string{
		"",
		"tcb:evolved detect:keywords(ultrasurf) react:reset(type1) react:reset(type2) " +
			"react:block(dur=1m30s) param:miss(p=0.028) param:resync(p=0.22) param:seglastwins(p=0.32)",
		"detect:keywords(ultrasurf,dir=both) detect:host(facebook.com+youtube.com) " +
			"detect:dns(dropbox.com+twitter.com) react:drop(dur=3m0s) react:poison(ip=127.0.0.1)",
		"tcb:evolved detect:proto(tor) react:reset(type2) react:block(dur=1m30s) " +
			"react:probe(delay=15s) param:miss(p=0)",
		"filter:reassemble filter:checksum filter:flagless filter:flag(fin,p=1)",
		"react:reset(type2,offsets=0+1460+4380)",
		"react:poison",
		"tcb:",
		"tcb:evolved tcb:khattak",
		"detect:keywords(",
		"detect:keywords(a++b)",
		"detect:keywords( a+b , dir=both )",
		"filter:flag(fin,p=0.4)",
		"react:block(dur=banana)",
		"param:miss(p=2)",
		"harden:md5 harden:md5",
		"  tcb:evolved\n\tdetect:keywords(x)\r\nreact:reset(type1)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseCensor(input)
		if err != nil {
			return
		}
		canon := spec.String()
		again, err := ParseCensor(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, input, err)
		}
		if again.String() != canon {
			t.Fatalf("String not a fixed point: %q -> %q -> %q", input, canon, again.String())
		}
	})
}
