package censor

import (
	"fmt"
	"strings"
	"sync"
)

// Well-known censor names. GFW2017 is the headline instance: the
// evolved Great Firewall the paper measured, whose compiled form must
// reproduce Tables 1/4/5 byte-identical against the committed goldens.
const (
	GFW2017      = "gfw2017"
	GFW2013      = "gfw2013"
	Turkmenistan = "turkmenistan"
	TorProber    = "tor-prober"
)

// Entry is one registered censor: a name, its canonical spec, and the
// measurement the instance models.
type Entry struct {
	Name string
	Spec string
	Note string
}

// gfw2017Spec is the measured evolved GFW as a spec: both reset
// injector types, the 90-second pair blocklist, and the calibrated
// per-device parameter draws of §3.4/§4. The base/params split lets
// the §8 hardened variants splice their harden: statements in at the
// canonical position (harden before param).
const (
	gfw2017Base = "tcb:evolved detect:keywords(ultrasurf) " +
		"react:reset(type1) react:reset(type2) react:block(dur=1m30s)"
	gfw2017Params = "param:miss(p=0.028) param:resync(p=0.22) param:seglastwins(p=0.32)"
	gfw2017Spec   = gfw2017Base + " " + gfw2017Params
)

// Registry lists the censor zoo in display order: the two GFW
// generations, the §8 hardened ablation rungs as spec edits, and the
// non-GFW instances expressed purely in the grammar.
func Registry() []Entry {
	return []Entry{
		{GFW2017, gfw2017Spec,
			"evolved GFW, §4 (Wang et al. 2017)"},
		{GFW2013, "tcb:khattak detect:keywords(ultrasurf) " +
			"react:reset(type1) react:reset(type2) react:block(dur=1m30s) " +
			"param:miss(p=0.028)",
			"prior GFW model (Khattak et al. 2013)"},
		{GFW2017 + "+checksum", gfw2017Base + " harden:checksum " + gfw2017Params,
			"§8 ablation: validates TCP checksums"},
		{GFW2017 + "+md5", gfw2017Base + " harden:md5 " + gfw2017Params,
			"§8 ablation: ignores MD5-optioned packets"},
		{GFW2017 + "+trustack", gfw2017Base + " harden:trustack " + gfw2017Params,
			"§8 ablation: scans only server-acked data"},
		{GFW2017 + "+all", gfw2017Base + " harden:checksum harden:md5 harden:trustack " + gfw2017Params,
			"§8 ablation: all countermeasures"},
		{Turkmenistan, "detect:keywords(ultrasurf,dir=both) " +
			"detect:host(facebook.com+youtube.com) " +
			"detect:dns(dropbox.com+twitter.com) " +
			"react:drop(dur=3m0s) react:poison(ip=127.0.0.1)",
			"bidirectional blackholing + 127.0.0.1 DNS (Nourin et al.)"},
		{TorProber, "tcb:evolved detect:proto(tor) react:reset(type2) " +
			"react:block(dur=1m30s) react:probe(delay=15s) param:miss(p=0)",
			"Tor fingerprint + active probing (Winter & Lindskog)"},
		{"mbox-aliyun", "filter:fragdrop filter:flag(fin,p=0.4)",
			"Table 2 client-side profile (Aliyun)"},
		{"mbox-qcloud", "filter:reassemble filter:flag(rst,p=0.4)",
			"Table 2 client-side profile (QCloud)"},
		{"mbox-unicom-sjz", "filter:reassemble filter:flag(fin,p=1)",
			"Table 2 client-side profile (Unicom Shijiazhuang)"},
		{"mbox-unicom-tj", "filter:reassemble filter:checksum filter:flagless filter:flag(fin,p=1)",
			"Table 2 client-side profile (Unicom Tianjin)"},
	}
}

// Lookup returns the canonical spec text of a registered censor.
func Lookup(name string) (string, bool) {
	for _, e := range Registry() {
		if e.Name == name {
			return e.Spec, true
		}
	}
	return "", false
}

var (
	compiledMu    sync.RWMutex
	compiledCache = make(map[string]*Compiled)
)

// Resolve compiles a censor reference — a registry name or raw spec
// text — caching the result. Compiled censors are immutable and shared
// across trials and workers; Build stamps out per-trial devices.
func Resolve(ref string) (*Compiled, error) {
	compiledMu.RLock()
	c := compiledCache[ref]
	compiledMu.RUnlock()
	if c != nil {
		return c, nil
	}
	text := ref
	if spec, ok := Lookup(ref); ok {
		text = spec
	}
	spec, err := ParseCensor(text)
	if err != nil {
		return nil, err
	}
	c, err = Compile(spec)
	if err != nil {
		return nil, err
	}
	compiledMu.Lock()
	compiledCache[ref] = c
	compiledMu.Unlock()
	return c, nil
}

// MustResolve is Resolve for statically-known references; it panics on
// error.
func MustResolve(ref string) *Compiled {
	c, err := Resolve(ref)
	if err != nil {
		panic(fmt.Sprintf("censor: %v", err))
	}
	return c
}

// FormatTable renders the name ↔ canonical-spec table for every
// registered censor — what `cmd/tables -what censors` prints.
func FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-7s %s\n", "censor", "kind", "canonical spec")
	for _, e := range Registry() {
		c := MustResolve(e.Name)
		fmt.Fprintf(&b, "%-18s %-7s %s\n", e.Name, c.Kind().String(), c.Spec().String())
		fmt.Fprintf(&b, "%-18s %-7s ~ %s\n", "", "", e.Note)
	}
	return b.String()
}
