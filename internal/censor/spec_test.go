package censor

import (
	"strings"
	"testing"
)

// TestRegistrySpecsCanonical checks every registered spec is written in
// canonical form: ParseCensor(spec).String() == spec. Registry entries
// double as the grammar's reference corpus, so they must be exactly
// what String emits.
func TestRegistrySpecsCanonical(t *testing.T) {
	for _, e := range Registry() {
		spec, err := ParseCensor(e.Spec)
		if err != nil {
			t.Errorf("%s: ParseCensor(%q): %v", e.Name, e.Spec, err)
			continue
		}
		if got := spec.String(); got != e.Spec {
			t.Errorf("%s: not canonical:\nregistered: %q\ncanonical:  %q", e.Name, e.Spec, got)
		}
	}
}

// TestCanonicalOrder checks that statements arriving in any order
// canonicalize to the fixed category order (tcb, detect, filter,
// react, harden, param).
func TestCanonicalOrder(t *testing.T) {
	in := "param:miss(p=0.5) harden:md5 react:reset(type1) detect:keywords(x) tcb:evolved"
	want := "tcb:evolved detect:keywords(x) react:reset(type1) harden:md5 param:miss(p=0.5)"
	spec, err := ParseCensor(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.String(); got != want {
		t.Errorf("canonical order: got %q, want %q", got, want)
	}
}

// TestForgivingWhitespace checks the parser accepts newlines and runs
// of spaces between statements and inside attribute lists.
func TestForgivingWhitespace(t *testing.T) {
	in := "  tcb:evolved\n\tdetect:keywords( a+b , dir=both )\r\n react:reset(type2, offsets=0+1460 )  "
	want := "tcb:evolved detect:keywords(a+b,dir=both) react:reset(type2,offsets=0+1460)"
	spec, err := ParseCensor(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

// TestParseCensorFields spot-checks the structured decomposition of the
// headline spec.
func TestParseCensorFields(t *testing.T) {
	spec := MustParseCensor(gfw2017Spec)
	if spec.TCB != "evolved" {
		t.Errorf("TCB = %q", spec.TCB)
	}
	if len(spec.Detects) != 1 || spec.Detects[0].Kind != "keywords" || spec.Detects[0].Words[0] != "ultrasurf" {
		t.Errorf("Detects = %+v", spec.Detects)
	}
	if len(spec.Reacts) != 3 {
		t.Fatalf("Reacts = %+v", spec.Reacts)
	}
	if spec.Reacts[0].Type != 1 || spec.Reacts[1].Type != 2 {
		t.Errorf("reset types = %d, %d", spec.Reacts[0].Type, spec.Reacts[1].Type)
	}
	if spec.Reacts[2].Kind != "block" || spec.Reacts[2].Dur.Seconds() != 90 {
		t.Errorf("block = %+v", spec.Reacts[2])
	}
	if len(spec.Params) != 3 || spec.Params[0].P != 0.028 {
		t.Errorf("Params = %+v", spec.Params)
	}
}

// TestParseCensorErrors pins the parser's error messages: each names
// the offending statement, what was seen, and what the grammar wanted.
func TestParseCensorErrors(t *testing.T) {
	for _, tc := range []struct{ in, wantErr string }{
		{"", "censor: empty input"},
		{"bogus", "censor: expected tcb:, detect:, filter:, react:, harden: or param:"},
		{"zzz:x", `censor: unknown statement "zzz"`},
		{"tcb:weird", `censor: tcb: unknown model "weird"`},
		{"tcb:evolved tcb:khattak", "censor: duplicate tcb statement"},
		{"detect:keywords", "censor: detect:keywords: missing word list"},
		{"detect:keywords(a++b)", "censor: detect:keywords: empty word in"},
		{"detect:keywords(a,dir=up)", `censor: detect:keywords: unknown argument "dir"`},
		{"detect:keywords(", "censor: detect:keywords: expected attribute"},
		{"detect:keywords(a b)", "censor: detect:keywords: expected ',' or ')'"},
		{"detect:proto(http)", "censor: detect:proto: want proto(tor) or proto(openvpn)"},
		{"detect:nope(x)", `censor: detect: unknown kind "nope"`},
		{"filter:fragdrop(x)", "censor: filter:fragdrop: takes no arguments"},
		{"filter:flag(fin)", "censor: filter:flag: want flag(fin|rst,p=F)"},
		{"filter:flag(ack,p=1)", `censor: filter:flag: unknown flag "ack"`},
		{"filter:flag(fin,p=7)", `censor: filter:flag: bad probability "7"`},
		{"filter:nope", `censor: filter: unknown kind "nope"`},
		{"react:reset(type3)", "censor: react:reset: want reset(type1) or reset(type2)"},
		{"react:reset(type1,offsets=1)", `censor: react:reset: unknown argument "offsets"`},
		{"react:reset(type2,offsets=1+-2)", `censor: react:reset: bad offset "-2"`},
		{"react:block", "censor: react:block: want block(dur=D)"},
		{"react:block(dur=banana)", `censor: react:block: bad dur "banana"`},
		{"react:drop(dur=0s)", `censor: react:drop: bad dur "0s"`},
		{"react:poison(ip=999.1.1.1)", `censor: react:poison: bad ip "999.1.1.1"`},
		{"react:poison(ip=)", `censor: react:poison: missing value for "ip"`},
		{"react:probe(delay=0s)", `censor: react:probe: bad delay "0s"`},
		{"react:nope", `censor: react: unknown kind "nope"`},
		{"harden:nope", `censor: harden: unknown countermeasure "nope"`},
		{"harden:md5 harden:md5", "censor: duplicate harden:md5"},
		{"param:nope(p=1)", `censor: param: unknown parameter "nope"`},
		{"param:miss", "censor: param:miss: want miss(p=F)"},
		{"param:miss(p=2)", `censor: param:miss: bad probability "2"`},
		{"param:miss(p=0.1) param:miss(p=0.2)", "censor: duplicate param:miss"},
	} {
		_, err := ParseCensor(tc.in)
		if err == nil {
			t.Errorf("ParseCensor(%q) succeeded, want error %q", tc.in, tc.wantErr)
			continue
		}
		if !strings.HasPrefix(err.Error(), tc.wantErr) {
			t.Errorf("ParseCensor(%q) error = %q, want prefix %q", tc.in, err, tc.wantErr)
		}
	}
}

// TestMustParseCensorPanics verifies the Must helper panics on bad
// input.
func TestMustParseCensorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseCensor did not panic on bad input")
		}
	}()
	MustParseCensor("tcb:weird")
}
