package censor

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"intango/internal/gfw"
	"intango/internal/packet"
)

// TestGFW2017Lowering checks the headline spec lowers to exactly the
// gfw.Config the experiment population used to hand-build — the
// equality that keeps the Table 1/4/5 goldens byte-identical under the
// spec-compiled censor.
func TestGFW2017Lowering(t *testing.T) {
	c := MustResolve(GFW2017)
	if c.Kind() != KindEngine {
		t.Fatalf("kind = %v", c.Kind())
	}
	cfg, ok := c.GFWConfig()
	if !ok {
		t.Fatal("GFWConfig not ok for engine spec")
	}
	want := gfw.Config{
		Model:               gfw.ModelEvolved2017,
		Type1:               true,
		Type2:               true,
		Keywords:            []string{"ultrasurf"},
		BlockDuration:       90 * time.Second,
		DetectionMissProb:   0.028,
		ResyncOnRSTProb:     0.22,
		SegmentLastWinsProb: 0.32,
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("gfw2017 lowering:\ngot  %+v\nwant %+v", cfg, want)
	}
}

// TestGFW2013Lowering checks the prior-model spec selects the Khattak
// state machine and omits the evolved-only parameter draws.
func TestGFW2013Lowering(t *testing.T) {
	cfg, ok := MustResolve(GFW2013).GFWConfig()
	if !ok {
		t.Fatal("GFWConfig not ok")
	}
	if cfg.Model != gfw.ModelKhattak2013 {
		t.Errorf("model = %v", cfg.Model)
	}
	if cfg.ResyncOnRSTProb != 0 || cfg.SegmentLastWinsProb != 0 {
		t.Errorf("khattak spec should not draw evolved params: %+v", cfg)
	}
}

// TestHardenedLowering checks the §8 ablation spec edits set exactly
// the countermeasure toggles.
func TestHardenedLowering(t *testing.T) {
	base, _ := MustResolve(GFW2017).GFWConfig()
	for _, tc := range []struct {
		name  string
		check func(gfw.Config) bool
	}{
		{GFW2017 + "+checksum", func(c gfw.Config) bool { return c.ValidateTCPChecksum && !c.ValidateMD5 && !c.TrustDataAfterServerACK }},
		{GFW2017 + "+md5", func(c gfw.Config) bool { return c.ValidateMD5 && !c.ValidateTCPChecksum && !c.TrustDataAfterServerACK }},
		{GFW2017 + "+trustack", func(c gfw.Config) bool { return c.TrustDataAfterServerACK && !c.ValidateTCPChecksum && !c.ValidateMD5 }},
		{GFW2017 + "+all", func(c gfw.Config) bool { return c.ValidateTCPChecksum && c.ValidateMD5 && c.TrustDataAfterServerACK }},
	} {
		cfg, ok := MustResolve(tc.name).GFWConfig()
		if !ok {
			t.Errorf("%s: not an engine spec", tc.name)
			continue
		}
		if !tc.check(cfg) {
			t.Errorf("%s: wrong hardening toggles: %+v", tc.name, cfg)
		}
		// Everything except the toggles matches the base config.
		cfg.ValidateTCPChecksum, cfg.ValidateMD5, cfg.TrustDataAfterServerACK = false, false, false
		if !reflect.DeepEqual(cfg, base) {
			t.Errorf("%s: hardening edit changed more than its toggles:\ngot  %+v\nwant %+v", tc.name, cfg, base)
		}
	}
}

// TestMissZeroLowersToNever checks param:miss(p=0) defeats the
// zero-means-default convention of gfw.Config.
func TestMissZeroLowersToNever(t *testing.T) {
	cfg, _ := MustResolve(TorProber).GFWConfig()
	if cfg.DetectionMissProb != -1 {
		t.Errorf("miss(p=0) lowered to %v, want -1", cfg.DetectionMissProb)
	}
}

// TestTurkmenistanLowering checks the tcb-less spec lowers onto the
// inline blocker with every list and the explicit poison address.
func TestTurkmenistanLowering(t *testing.T) {
	c := MustResolve(Turkmenistan)
	if c.Kind() != KindInline {
		t.Fatalf("kind = %v", c.Kind())
	}
	if _, ok := c.GFWConfig(); ok {
		t.Error("GFWConfig ok for inline spec")
	}
	want := BlockerConfig{
		Keywords:      []string{"ultrasurf"},
		Bidirectional: true,
		Hosts:         []string{"facebook.com", "youtube.com"},
		Domains:       []string{"dropbox.com", "twitter.com"},
		BlockDuration: 3 * time.Minute,
		PoisonDNS:     true,
		PoisonAddr:    packet.AddrFrom4(127, 0, 0, 1),
	}
	if !reflect.DeepEqual(c.blk, want) {
		t.Errorf("turkmenistan lowering:\ngot  %+v\nwant %+v", c.blk, want)
	}
}

// TestChainLowering checks a filter-only spec builds the middlebox
// processor chain in statement order.
func TestChainLowering(t *testing.T) {
	c := MustResolve("mbox-unicom-tj")
	if c.Kind() != KindChain {
		t.Fatalf("kind = %v", c.Kind())
	}
	procs, ok := c.BuildChain(rand.New(rand.NewSource(1)))
	if !ok {
		t.Fatal("BuildChain not ok for chain spec")
	}
	var names []string
	for _, p := range procs {
		names = append(names, p.Name())
	}
	want := "frag-reassembler checksum-validator flagless-dropper fin-dropper"
	if got := strings.Join(names, " "); got != want {
		t.Errorf("chain = %q, want %q", got, want)
	}
	if _, err := c.Build("x", rand.New(rand.NewSource(1)), rand.New(rand.NewSource(2))); err == nil {
		t.Error("Build succeeded for a chain spec, want error")
	}
}

// TestBuildKinds checks Build stamps out the right device type per
// kind and BuildChain refuses device specs.
func TestBuildKinds(t *testing.T) {
	eng, err := MustResolve(GFW2017).Build("e", rand.New(rand.NewSource(1)), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.(*gfw.Device); !ok {
		t.Errorf("engine Build = %T", eng)
	}
	inl, err := MustResolve(Turkmenistan).Build("i", rand.New(rand.NewSource(1)), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := inl.(*Blocker); !ok {
		t.Errorf("inline Build = %T", inl)
	}
	if _, ok := MustResolve(GFW2017).BuildChain(rand.New(rand.NewSource(1))); ok {
		t.Error("BuildChain ok for an engine spec")
	}
}

// TestCompileErrors pins the composition rules: which primitives can
// ride together, and on which target.
func TestCompileErrors(t *testing.T) {
	for _, tc := range []struct{ in, wantErr string }{
		{"filter:fragdrop detect:keywords(x) react:drop(dur=1s)",
			"censor: filter: statements cannot mix with tcb/detect/react"},
		{"react:drop(dur=1s)", "censor: no detection rules"},
		{"detect:keywords(x)", "censor: no reactions"},
		{"tcb:evolved detect:host(x) react:reset(type1)",
			"censor: detect:host requires a tcb-less inline censor"},
		{"tcb:evolved detect:keywords(x) react:reset(type1) react:drop(dur=1s)",
			"censor: react:drop requires a tcb-less inline censor"},
		{"tcb:evolved detect:keywords(x) react:block(dur=1s)",
			"censor: a tcb: engine needs at least one react:reset injector"},
		{"tcb:evolved detect:keywords(x) react:reset(type1) react:block(dur=1s)",
			"censor: react:block requires react:reset(type2)"},
		{"tcb:evolved detect:keywords(x) react:reset(type1) react:reset(type1)",
			"censor: duplicate react:reset(type1)"},
		{"tcb:evolved detect:keywords(x) react:reset(type2) react:probe(delay=1s)",
			"censor: react:probe requires detect:proto(tor)"},
		{"tcb:evolved detect:proto(tor) react:reset(type2)",
			"censor: detect:proto(tor) requires react:probe(delay=D)"},
		{"tcb:evolved detect:keywords(x) react:reset(type1) react:poison",
			"censor: react:poison requires a detect:dns domain list"},
		{"detect:keywords(x) react:reset(type1)",
			"censor: react:reset requires a tcb: engine"},
		{"detect:keywords(x) react:block(dur=1s)",
			"censor: react:block requires a tcb: engine"},
		{"detect:proto(tor) react:drop(dur=1s)",
			"censor: detect:proto requires a tcb: engine"},
		{"detect:dns(x) react:poison",
			"censor: an inline censor needs react:drop(dur=D)"},
		{"detect:keywords(x) react:drop(dur=1s) harden:md5",
			"censor: harden:md5 requires a tcb: engine"},
		{"detect:keywords(x) react:drop(dur=1s) param:miss(p=0.1)",
			"censor: param:miss requires a tcb: engine"},
	} {
		_, err := Compile(MustParseCensor(tc.in))
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error %q", tc.in, tc.wantErr)
			continue
		}
		if !strings.HasPrefix(err.Error(), tc.wantErr) {
			t.Errorf("Compile(%q) error = %q, want prefix %q", tc.in, err, tc.wantErr)
		}
	}
}

// TestResolve checks the compiled cache: registry names and raw spec
// text both resolve, repeated lookups share one Compiled, and parse
// failures surface.
func TestResolve(t *testing.T) {
	a, err := Resolve(GFW2017)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Resolve(GFW2017)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated Resolve did not share the cached Compiled")
	}
	raw, err := Resolve("detect:keywords(x) react:drop(dur=5s)")
	if err != nil {
		t.Fatal(err)
	}
	if raw.Kind() != KindInline {
		t.Errorf("raw spec kind = %v", raw.Kind())
	}
	if _, err := Resolve("tcb:weird"); err == nil {
		t.Error("Resolve of invalid spec succeeded")
	}
}
