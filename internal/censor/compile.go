package censor

import (
	"fmt"
	"math/rand"
	"time"

	"intango/internal/gfw"
	"intango/internal/middlebox"
	"intango/internal/netem"
	"intango/internal/obs"
	"intango/internal/packet"
)

// Instance is one live censor device: an on-path tap (it can observe
// and inject but never drop) plus an optional in-path companion filter
// that enforces residual state — IP null-routes for the GFW engine,
// flow blackholes for the inline blocker. Both gfw.Device and Blocker
// implement it, so the experiment rig holds censors uniformly.
type Instance interface {
	netem.Processor
	// Filter returns the censor's in-path companion processor, nil when
	// the censor has none.
	Filter() netem.Processor
	// SetObs mirrors device events into the shared observability layer.
	SetObs(*obs.Obs)
	// SetClientSide registers the predicate identifying client-end
	// addresses, used to aim injected packets.
	SetClientSide(func(packet.Addr) bool)
	// Stat returns the count of one event kind.
	Stat(kind string) int
	// ClearStats resets the event counters (series runners reuse one
	// device across trials).
	ClearStats()
	// Marks returns the span-profiling stamps: first packet seen, first
	// enforcement verdict (zero if never enforced), last packet seen.
	Marks() (first, verdict, last time.Duration)
}

// Kind classifies what a spec compiles to.
type Kind int

const (
	// KindEngine: the spec has a tcb: statement and lowers onto the
	// stateful internal/gfw engine (tap + IP-filter companion).
	KindEngine Kind = iota
	// KindInline: a tcb-less detect/react spec lowering onto the
	// stateless bidirectional Blocker (tap + flow-filter companion).
	KindInline
	// KindChain: a filter-only spec lowering onto an in-path
	// middlebox processor chain (no tap, no device).
	KindChain
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindEngine:
		return "engine"
	case KindInline:
		return "inline"
	default:
		return "chain"
	}
}

// Compiled is a validated, lowered censor spec ready to stamp out
// per-trial instances. Compilation is pure — Build draws all sampled
// behaviour from the RNGs it is handed — so one Compiled is cached and
// shared across every trial and worker.
type Compiled struct {
	spec Spec
	kind Kind
	cfg  gfw.Config    // KindEngine lowering
	blk  BlockerConfig // KindInline lowering
}

// Spec returns the compiled spec.
func (c *Compiled) Spec() Spec { return c.spec }

// Kind reports the compilation target.
func (c *Compiled) Kind() Kind { return c.kind }

// GFWConfig returns the lowered gfw.Config; ok is false unless the
// spec compiles to the stateful engine.
func (c *Compiled) GFWConfig() (gfw.Config, bool) {
	return c.cfg, c.kind == KindEngine
}

// Build constructs one live instance for a trial. The trial RNG drives
// per-flow sampled behaviour; the pair RNG pins the per-(client,
// server) behaviours the paper found stable within a measurement
// period (§4) — engine devices draw their RST-resync and
// segment-overlap modes from it. Filter-only specs have no device;
// use BuildChain.
func (c *Compiled) Build(name string, trialRng, pairRng *rand.Rand) (Instance, error) {
	switch c.kind {
	case KindEngine:
		dev := gfw.NewDevice(name, c.cfg, trialRng)
		dev.SetRSTResyncs(pairRng.Float64() < c.cfg.ResyncOnRSTProb)
		dev.SetSegmentLastWins(pairRng.Float64() < c.cfg.SegmentLastWinsProb)
		return dev, nil
	case KindInline:
		return NewBlocker(name, c.blk, trialRng), nil
	default:
		return nil, fmt.Errorf("censor: %q compiles to a filter chain, not a device", c.spec.String())
	}
}

// BuildChain constructs the in-path processor chain of a filter-only
// spec; ok is false for specs that compile to a device.
func (c *Compiled) BuildChain(rng *rand.Rand) ([]netem.Processor, bool) {
	if c.kind != KindChain {
		return nil, false
	}
	procs := make([]netem.Processor, 0, len(c.spec.Filters))
	for _, f := range c.spec.Filters {
		switch f.Kind {
		case "fragdrop":
			procs = append(procs, middlebox.FragmentDropper{})
		case "reassemble":
			procs = append(procs, middlebox.NewFragmentReassembler())
		case "checksum":
			procs = append(procs, middlebox.ChecksumValidator{})
		case "flagless":
			procs = append(procs, middlebox.FlaglessDropper{})
		case "flag":
			flag, name := packet.FlagFIN, "fin-dropper"
			if f.Flag == "rst" {
				flag, name = packet.FlagRST, "rst-dropper"
			}
			procs = append(procs, middlebox.NewFlagDropper(name, flag, f.P, rng))
		}
	}
	return procs, true
}

// MustCompile is Compile for statically-known specs; it panics on
// error.
func MustCompile(spec Spec) *Compiled {
	c, err := Compile(spec)
	if err != nil {
		panic(err)
	}
	return c
}

// Compile validates the spec's composition and lowers it onto its
// target. The grammar is deliberately wider than any one target: the
// stateful engine cannot blackhole (its wiretap position can only
// inject, §2.1), the stateless blocker has no TCBs to reset, and
// filter chains carry no detection at all — Compile is where those
// rules live, with error messages naming the offending statement.
func Compile(spec Spec) (*Compiled, error) {
	c := &Compiled{spec: spec}
	if len(spec.Filters) > 0 {
		if spec.TCB != "" || len(spec.Detects) > 0 || len(spec.Reacts) > 0 ||
			len(spec.Hardens) > 0 || len(spec.Params) > 0 {
			return nil, fmt.Errorf("censor: filter: statements cannot mix with tcb/detect/react (middlebox chains do not detect)")
		}
		c.kind = KindChain
		return c, nil
	}
	if len(spec.Detects) == 0 {
		return nil, fmt.Errorf("censor: no detection rules (want at least one detect: or filter: statement)")
	}
	if len(spec.Reacts) == 0 {
		return nil, fmt.Errorf("censor: no reactions (a censor that only watches needs at least one react: statement)")
	}
	if spec.TCB != "" {
		c.kind = KindEngine
		return c, c.lowerEngine()
	}
	c.kind = KindInline
	return c, c.lowerInline()
}

// lowerEngine maps the spec onto gfw.Config.
func (c *Compiled) lowerEngine() error {
	spec := c.spec
	cfg := gfw.Config{Model: gfw.ModelEvolved2017}
	if spec.TCB == "khattak" {
		cfg.Model = gfw.ModelKhattak2013
	}
	probed, torDetect := false, false
	for _, d := range spec.Detects {
		switch d.Kind {
		case "keywords":
			cfg.Keywords = append(cfg.Keywords, d.Words...)
			if d.Both {
				cfg.ResponseCensorship = true
			}
		case "dns":
			cfg.PoisonedDomains = append(cfg.PoisonedDomains, d.Words...)
		case "proto":
			if d.Words[0] == "tor" {
				cfg.TorFiltering = true
				torDetect = true
			} else {
				cfg.VPNFiltering = true
			}
		case "host":
			return fmt.Errorf("censor: detect:host requires a tcb-less inline censor (the engine's DPI is keyword-based)")
		}
	}
	for _, r := range spec.Reacts {
		switch r.Kind {
		case "reset":
			if r.Type == 1 {
				if cfg.Type1 {
					return fmt.Errorf("censor: duplicate react:reset(type1)")
				}
				cfg.Type1 = true
			} else {
				if cfg.Type2 {
					return fmt.Errorf("censor: duplicate react:reset(type2)")
				}
				cfg.Type2 = true
				cfg.ResetSeqOffsets = r.Offsets
			}
		case "block":
			if cfg.BlockDuration != 0 {
				return fmt.Errorf("censor: duplicate react:block")
			}
			cfg.BlockDuration = r.Dur
		case "probe":
			if cfg.ActiveProbeDelay != 0 {
				return fmt.Errorf("censor: duplicate react:probe")
			}
			cfg.ActiveProbeDelay = r.Delay
			probed = true
		case "poison":
			if len(cfg.PoisonedDomains) == 0 {
				return fmt.Errorf("censor: react:poison requires a detect:dns domain list")
			}
			if r.HasIP {
				cfg.PoisonedAddr = r.IP
			}
		case "drop":
			return fmt.Errorf("censor: react:drop requires a tcb-less inline censor (the engine's wiretap can inject but never drop)")
		}
	}
	if !cfg.Type1 && !cfg.Type2 {
		return fmt.Errorf("censor: a tcb: engine needs at least one react:reset injector")
	}
	if cfg.BlockDuration != 0 && !cfg.Type2 {
		return fmt.Errorf("censor: react:block requires react:reset(type2) (only type-2 devices enforce the pair blocklist)")
	}
	if probed && !torDetect {
		return fmt.Errorf("censor: react:probe requires detect:proto(tor)")
	}
	if torDetect && !probed {
		return fmt.Errorf("censor: detect:proto(tor) requires react:probe(delay=D)")
	}
	for _, h := range spec.Hardens {
		switch h {
		case "checksum":
			cfg.ValidateTCPChecksum = true
		case "md5":
			cfg.ValidateMD5 = true
		case "trustack":
			cfg.TrustDataAfterServerACK = true
		}
	}
	for _, p := range spec.Params {
		switch p.Kind {
		case "miss":
			// p=0 means "never misses": -1 defeats the zero-means-default
			// convention of gfw.Config.withDefaults.
			cfg.DetectionMissProb = p.P
			if p.P == 0 {
				cfg.DetectionMissProb = -1
			}
		case "resync":
			cfg.ResyncOnRSTProb = p.P
		case "seglastwins":
			cfg.SegmentLastWinsProb = p.P
		}
	}
	c.cfg = cfg
	return nil
}

// lowerInline maps the spec onto BlockerConfig.
func (c *Compiled) lowerInline() error {
	spec := c.spec
	var blk BlockerConfig
	for _, d := range spec.Detects {
		switch d.Kind {
		case "keywords":
			blk.Keywords = append(blk.Keywords, d.Words...)
			if d.Both {
				blk.Bidirectional = true
			}
		case "dns":
			blk.Domains = append(blk.Domains, d.Words...)
		case "host":
			blk.Hosts = append(blk.Hosts, d.Words...)
		case "proto":
			return fmt.Errorf("censor: detect:proto requires a tcb: engine (fingerprinting needs stream reassembly)")
		}
	}
	for _, r := range spec.Reacts {
		switch r.Kind {
		case "drop":
			if blk.BlockDuration != 0 {
				return fmt.Errorf("censor: duplicate react:drop")
			}
			blk.BlockDuration = r.Dur
		case "poison":
			if len(blk.Domains) == 0 {
				return fmt.Errorf("censor: react:poison requires a detect:dns domain list")
			}
			blk.PoisonDNS = true
			if r.HasIP {
				blk.PoisonAddr = r.IP
			}
		case "reset":
			return fmt.Errorf("censor: react:reset requires a tcb: engine (reset volleys are aimed by TCB state)")
		case "block":
			return fmt.Errorf("censor: react:block requires a tcb: engine (inline censors blackhole with react:drop)")
		case "probe":
			return fmt.Errorf("censor: react:probe requires a tcb: engine")
		}
	}
	if blk.BlockDuration == 0 {
		return fmt.Errorf("censor: an inline censor needs react:drop(dur=D) (detection without a drop has no effect)")
	}
	if len(spec.Hardens) > 0 {
		return fmt.Errorf("censor: harden:%s requires a tcb: engine", spec.Hardens[0])
	}
	if len(spec.Params) > 0 {
		return fmt.Errorf("censor: param:%s requires a tcb: engine", spec.Params[0].Kind)
	}
	c.blk = blk
	return nil
}
