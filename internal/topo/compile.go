package topo

import (
	"fmt"

	"intango/internal/netem"
	"intango/internal/packet"
)

// Binder resolves a spec's symbolic attachment references ("gfw-new",
// "client-mbox") into live netem processors at compile time. Bind is
// called once per attachment, nodes in declaration order and
// attachments in declaration order — so a binder that constructs
// stateful devices (whose constructors draw from a trial PRNG) sees a
// deterministic call sequence. The returned slice is not retained;
// binders may reuse a scratch slice across calls.
type Binder interface {
	Bind(ref string, tap bool) ([]netem.Processor, error)
}

// CensorBinder is the optional Binder extension that resolves censor=
// attachments. BindCensor builds one live censor instance for the ref
// (a registry name or raw censor-spec text) and returns its on-path
// tap chain plus its in-path companion chain; either may be empty.
// Binders without it reject censor= attachments.
type CensorBinder interface {
	BindCensor(ref string) (taps, procs []netem.Processor, err error)
}

// BindMap is the simple Binder: a map from reference to processor
// chain. Missing references are errors.
type BindMap map[string][]netem.Processor

// Bind implements Binder.
func (m BindMap) Bind(ref string, tap bool) ([]netem.Processor, error) {
	procs, ok := m[ref]
	if !ok {
		return nil, fmt.Errorf("topo: unbound ref %q", ref)
	}
	return procs, nil
}

// Options carries the runtime pieces a compiled topology binds to.
type Options struct {
	Sim *netem.Simulator
	// Pool, when set, recycles packets at end-of-life points.
	Pool *packet.Pool
}

// edge identifies a directed link by node index.
type edge struct{ from, to int }

// Program is a validated, routing-planned topology ready to
// instantiate. Validation and linearity detection happen once in
// NewProgram; Instantiate is cheap and allocation-disciplined, so rigs
// cache Programs per topology shape and stamp out one substrate per
// trial.
type Program struct {
	spec  Spec
	index map[string]int
	links map[edge]LinkSpec
	// chain is the node order client..server when the topology is a
	// symmetric linear chain (the netem.Path fast case); nil for graphs.
	chain []int
}

// Compile is NewProgram + Instantiate for one-shot use.
func Compile(spec Spec, b Binder, opts Options) (netem.Net, error) {
	p, err := NewProgram(spec)
	if err != nil {
		return nil, err
	}
	return p.Instantiate(b, opts)
}

// NewProgram validates spec and plans its compilation: a symmetric
// linear chain compiles to the allocation-free netem.Path; anything
// else — parallel branches, asymmetric routes, per-direction
// attributes, mid-path MTUs — compiles to a netem.Fabric.
func NewProgram(spec Spec) (*Program, error) {
	p := &Program{
		spec:  spec,
		index: make(map[string]int, len(spec.Nodes)),
		links: make(map[edge]LinkSpec, len(spec.Links)),
	}
	client, server := -1, -1
	for i, n := range spec.Nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("topo: node %d: empty name", i)
		}
		if _, dup := p.index[n.Name]; dup {
			return nil, fmt.Errorf("topo: duplicate node %q", n.Name)
		}
		p.index[n.Name] = i
		switch n.Kind {
		case KindClient:
			if client >= 0 {
				return nil, fmt.Errorf("topo: multiple client nodes (%q and %q)", spec.Nodes[client].Name, n.Name)
			}
			client = i
		case KindServer:
			if server >= 0 {
				return nil, fmt.Errorf("topo: multiple server nodes (%q and %q)", spec.Nodes[server].Name, n.Name)
			}
			server = i
		}
		if (n.Kind == KindClient || n.Kind == KindServer) && len(n.Attach) > 0 {
			return nil, fmt.Errorf("topo: node %q: endpoints cannot carry taps or processors", n.Name)
		}
	}
	if client < 0 {
		return nil, fmt.Errorf("topo: no client node")
	}
	if server < 0 {
		return nil, fmt.Errorf("topo: no server node")
	}
	for _, l := range spec.Links {
		from, ok := p.index[l.From]
		if !ok {
			return nil, fmt.Errorf("topo: link %s>%s: unknown node %q", l.From, l.To, l.From)
		}
		to, ok := p.index[l.To]
		if !ok {
			return nil, fmt.Errorf("topo: link %s>%s: unknown node %q", l.From, l.To, l.To)
		}
		if from == to {
			return nil, fmt.Errorf("topo: link %s>%s: self-link", l.From, l.To)
		}
		k := edge{from, to}
		if _, dup := p.links[k]; dup {
			return nil, fmt.Errorf("topo: duplicate link %s>%s", l.From, l.To)
		}
		if l.Latency < 0 {
			return nil, fmt.Errorf("topo: link %s>%s: negative latency", l.From, l.To)
		}
		if l.Loss < 0 || l.Loss >= 1 {
			return nil, fmt.Errorf("topo: link %s>%s: loss %g outside [0,1)", l.From, l.To, l.Loss)
		}
		if l.MTU < 0 {
			return nil, fmt.Errorf("topo: link %s>%s: negative mtu", l.From, l.To)
		}
		if l.RateBits < 0 {
			return nil, fmt.Errorf("topo: link %s>%s: negative bw", l.From, l.To)
		}
		if l.Queue < 0 {
			return nil, fmt.Errorf("topo: link %s>%s: negative queue", l.From, l.To)
		}
		if l.RateBits == 0 && (l.Queue != 0 || l.RED) {
			return nil, fmt.Errorf("topo: link %s>%s: queue/red require bw", l.From, l.To)
		}
		p.links[k] = l
	}
	if err := p.checkReachable(client, server); err != nil {
		return nil, err
	}
	p.chain = p.linearChain(client, server)
	return p, nil
}

// checkReachable verifies both endpoints can reach each other over the
// directed links.
func (p *Program) checkReachable(client, server int) error {
	n := len(p.spec.Nodes)
	adj := make([][]int, n)
	for k := range p.links {
		adj[k.from] = append(adj[k.from], k.to)
	}
	reach := func(src, dst int) bool {
		seen := make([]bool, n)
		seen[src] = true
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if v == dst {
				return true
			}
			for _, u := range adj[v] {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		return false
	}
	if !reach(client, server) {
		return fmt.Errorf("topo: no route from client %q to server %q",
			p.spec.Nodes[client].Name, p.spec.Nodes[server].Name)
	}
	if !reach(server, client) {
		return fmt.Errorf("topo: no route from server %q to client %q",
			p.spec.Nodes[server].Name, p.spec.Nodes[client].Name)
	}
	return nil
}

// linearChain returns the client..server node order when the topology
// is the netem.Path shape — a single chain whose every edge has both
// directions with equal latency and loss, and whose only MTU (if any)
// sits on the client→first-hop link, the one place Path enforces it.
// Returns nil for every other shape.
func (p *Program) linearChain(client, server int) []int {
	n := len(p.spec.Nodes)
	// A chain of n nodes has exactly n-1 undirected edges, each present
	// in both directions.
	if len(p.links) != 2*(n-1) {
		return nil
	}
	und := make([][]int, n)
	for k := range p.links {
		if _, ok := p.links[edge{k.to, k.from}]; !ok {
			return nil // one-way link: asymmetric, not a Path
		}
		if k.from < k.to { // count each undirected edge once
			und[k.from] = append(und[k.from], k.to)
			und[k.to] = append(und[k.to], k.from)
		}
	}
	chain := make([]int, 0, n)
	prev, at := -1, client
	for {
		chain = append(chain, at)
		if at == server {
			break
		}
		var next []int
		for _, v := range und[at] {
			if v != prev {
				next = append(next, v)
			}
		}
		if len(next) != 1 {
			return nil // branch or dead end
		}
		prev, at = at, next[0]
	}
	if len(chain) != n {
		return nil // nodes off the chain
	}
	for i := 0; i+1 < len(chain); i++ {
		fw := p.links[edge{chain[i], chain[i+1]}]
		rv := p.links[edge{chain[i+1], chain[i]}]
		if fw.Latency != rv.Latency || fw.Loss != rv.Loss {
			return nil // Path links are symmetric
		}
		if fw.RateBits != rv.RateBits || fw.Queue != rv.Queue || fw.RED != rv.RED {
			return nil // per-direction shaping needs the Fabric
		}
		if rv.MTU != 0 || (fw.MTU != 0 && i != 0) {
			return nil // Path enforces MTU only on client egress
		}
	}
	return chain
}

// Spec returns the program's spec (shared, not copied).
func (p *Program) Spec() Spec { return p.spec }

// Linear reports whether the program compiles to a netem.Path.
func (p *Program) Linear() bool { return p.chain != nil }

// display is a node's trace label: Label when set, else Name.
func display(n NodeSpec) string {
	if n.Label != "" {
		return n.Label
	}
	return n.Name
}

// bindInto resolves a node's attachments through b, appending taps and
// processors in attachment order.
func bindInto(b Binder, name string, attach []Attachment, taps, procs *[]netem.Processor) error {
	for _, a := range attach {
		if b == nil {
			return fmt.Errorf("topo: node %q: no binder for ref %q", name, a.Ref)
		}
		if a.Censor {
			cb, ok := b.(CensorBinder)
			if !ok {
				return fmt.Errorf("topo: node %q: binder cannot resolve censor ref %q", name, a.Ref)
			}
			t, pr, err := cb.BindCensor(a.Ref)
			if err != nil {
				return fmt.Errorf("topo: node %q: %w", name, err)
			}
			*taps = append(*taps, t...)
			*procs = append(*procs, pr...)
			continue
		}
		chain, err := b.Bind(a.Ref, a.Tap)
		if err != nil {
			return fmt.Errorf("topo: node %q: %w", name, err)
		}
		if a.Tap {
			*taps = append(*taps, chain...)
		} else {
			*procs = append(*procs, chain...)
		}
	}
	return nil
}

// Instantiate builds the substrate: a *netem.Path for linear programs,
// a finalized *netem.Fabric otherwise. Binder calls happen nodes in
// declaration order, attachments in declaration order, on both shapes.
func (p *Program) Instantiate(b Binder, opts Options) (netem.Net, error) {
	if p.chain != nil {
		return p.instantiatePath(b, opts)
	}
	return p.instantiateFabric(b, opts)
}

// instantiatePath compiles the chain onto the linear fast path. Hops
// are appended one at a time so the allocation profile matches the
// hand-built rigs the benchmarks baselined.
func (p *Program) instantiatePath(b Binder, opts Options) (netem.Net, error) {
	path := &netem.Path{Sim: opts.Sim, Pool: opts.Pool}
	cl := p.links[edge{p.chain[0], p.chain[1]}]
	path.ClientLink.Latency = cl.Latency
	path.ClientLink.LossRate = cl.Loss
	path.ClientLink.Rate = cl.RateBits
	path.ClientLink.Queue = cl.Queue
	path.ClientLink.RED = cl.RED
	path.MTU = cl.MTU
	for i := 1; i+1 < len(p.chain); i++ {
		n := p.spec.Nodes[p.chain[i]]
		fw := p.links[edge{p.chain[i], p.chain[i+1]}]
		hop := &netem.Hop{
			Name:     display(n),
			Router:   n.Kind == KindRouter,
			Latency:  fw.Latency,
			LossRate: fw.Loss,
			Rate:     fw.RateBits,
			Queue:    fw.Queue,
			RED:      fw.RED,
		}
		if err := bindInto(b, n.Name, n.Attach, &hop.Taps, &hop.Processors); err != nil {
			return nil, err
		}
		path.Hops = append(path.Hops, hop)
	}
	return path, nil
}

// instantiateFabric compiles the general graph case.
func (p *Program) instantiateFabric(b Binder, opts Options) (netem.Net, error) {
	f := netem.NewFabric(opts.Sim)
	f.Pool = opts.Pool
	f.SetECMPSeed(p.spec.ECMPSeed)
	for _, n := range p.spec.Nodes {
		node := &netem.Node{Name: display(n), Router: n.Kind == KindRouter}
		if err := bindInto(b, n.Name, n.Attach, &node.Taps, &node.Processors); err != nil {
			return nil, err
		}
		id := f.AddNode(node)
		switch n.Kind {
		case KindClient:
			f.SetClientNode(id)
		case KindServer:
			f.SetServerNode(id)
		}
	}
	for _, l := range p.spec.Links {
		f.Connect(p.index[l.From], p.index[l.To],
			netem.Link{Latency: l.Latency, LossRate: l.Loss, MTU: l.MTU,
				Rate: l.RateBits, Queue: l.Queue, RED: l.RED})
	}
	if err := f.Finalize(); err != nil {
		return nil, err
	}
	return f, nil
}
