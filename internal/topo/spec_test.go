package topo

import (
	"strings"
	"testing"
	"time"
)

// TestParseTopoRoundTrip checks canonical round-tripping: parsing a
// canonical string and re-rendering reproduces it exactly, and parsing
// a sloppy encoding canonicalizes it.
func TestParseTopoRoundTrip(t *testing.T) {
	canonical := []string{
		"node:c(client) node:s(server) link:c>s(lat=1ms)",
		"node:c(client) node:r0(router,label=r) node:s(server) " +
			"link:c>r0(lat=10ms,loss=0.006) link:r0>c(lat=10ms,loss=0.006) " +
			"link:r0>s(lat=1ms) link:s>r0(lat=1ms)",
		"node:c(client) node:g(router,tap=gfw-new,proc=ipf:gfw-new) node:s(server) " +
			"link:c>g(lat=2ms,mtu=1500) link:g>c(lat=2ms) link:g>s(lat=1ms) link:s>g(lat=1ms) " +
			"ecmp(seed=42)",
		"node:c(client) node:a(router) node:b1(router) node:b2(router) node:s(server) " +
			"link:c>a link:a>b1 link:a>b2 link:b1>s link:b2>s link:s>a link:a>c " +
			"ecmp(seed=7)",
		"node:c(client) node:r0(router) node:s(server) " +
			"link:c>r0(lat=1ms,bw=1mbit,queue=16) link:r0>c(lat=1ms,bw=1mbit,queue=16) " +
			"link:r0>s(lat=1ms) link:s>r0(lat=1ms)",
		"node:c(client) node:s(server) link:c>s(lat=1ms,bw=500kbit,red) link:s>c(lat=1ms,bw=2gbit)",
		"node:c(client) node:b1(router,censor=gfw2017) node:b2(router,censor=turkmenistan) node:s(server) " +
			"link:c>b1 link:c>b2 link:b1>s link:b2>s link:s>b1 " +
			"ecmp(seed=9)",
	}
	for _, in := range canonical {
		spec, err := ParseTopo(in)
		if err != nil {
			t.Fatalf("ParseTopo(%q): %v", in, err)
		}
		if got := spec.String(); got != in {
			t.Errorf("round trip:\n in:  %s\n out: %s", in, got)
		}
		// A second pass must be a fixed point.
		again := MustParseTopo(spec.String())
		if again.String() != spec.String() {
			t.Errorf("String not a fixed point for %q", in)
		}
	}

	sloppy := []struct{ in, want string }{
		{
			"  node:c( client )\n node:s(server)\tlink:c>s( lat=1ms , loss=0.5 )",
			"node:c(client) node:s(server) link:c>s(lat=1ms,loss=0.5)",
		},
		{
			// Statements may interleave; String reorders nodes-links-ecmp.
			"node:c(client) link:c>s ecmp(seed=3) node:s(server) link:s>c",
			"node:c(client) node:s(server) link:c>s link:s>c ecmp(seed=3)",
		},
		{
			// 1500us canonicalizes to 1.5ms, 0.50 to 0.5.
			"node:c(client) node:s(server) link:c>s(lat=1500us,loss=0.50)",
			"node:c(client) node:s(server) link:c>s(lat=1.5ms,loss=0.5)",
		},
		{
			// Rates canonicalize to the largest exact unit.
			"node:c(client) node:s(server) link:c>s(bw=1000kbit) link:s>c(bw=1536bit)",
			"node:c(client) node:s(server) link:c>s(bw=1mbit) link:s>c(bw=1536bit)",
		},
	}
	for _, tc := range sloppy {
		spec, err := ParseTopo(tc.in)
		if err != nil {
			t.Fatalf("ParseTopo(%q): %v", tc.in, err)
		}
		if got := spec.String(); got != tc.want {
			t.Errorf("canonicalize %q:\n got:  %s\n want: %s", tc.in, got, tc.want)
		}
	}
}

// TestParseTopoFields spot-checks the parsed structure, not just the
// re-rendering.
func TestParseTopoFields(t *testing.T) {
	spec := MustParseTopo("node:c(client) node:g(router,label=r,tap=gfw-new,proc=mbox) node:s(server) " +
		"link:c>g(lat=10ms,loss=0.006,mtu=1500) link:g>c(lat=10ms) link:g>s(lat=1ms) link:s>g(lat=1ms) " +
		"ecmp(seed=99)")
	if len(spec.Nodes) != 3 || len(spec.Links) != 4 {
		t.Fatalf("got %d nodes, %d links", len(spec.Nodes), len(spec.Links))
	}
	g := spec.Nodes[1]
	if g.Name != "g" || g.Kind != KindRouter || g.Label != "r" {
		t.Errorf("node g parsed as %+v", g)
	}
	if len(g.Attach) != 2 || !g.Attach[0].Tap || g.Attach[0].Ref != "gfw-new" ||
		g.Attach[1].Tap || g.Attach[1].Ref != "mbox" {
		t.Errorf("attachments parsed as %+v", g.Attach)
	}
	z := MustParseTopo("node:z(router,censor=tor-prober)").Nodes[0]
	if len(z.Attach) != 1 || !z.Attach[0].Censor || z.Attach[0].Tap || z.Attach[0].Ref != "tor-prober" {
		t.Errorf("censor attachment parsed as %+v", z.Attach)
	}
	l := spec.Links[0]
	if l.From != "c" || l.To != "g" || l.Latency != 10*time.Millisecond || l.Loss != 0.006 || l.MTU != 1500 {
		t.Errorf("link c>g parsed as %+v", l)
	}
	if spec.ECMPSeed != 99 {
		t.Errorf("seed = %d, want 99", spec.ECMPSeed)
	}
}

// TestParseTopoErrors locks in the error vocabulary, mirroring the
// strategy-spec parser's error table.
func TestParseTopoErrors(t *testing.T) {
	cases := []struct{ in, wantErr string }{
		{"", "topo: empty input"},
		{"   \n\t ", "topo: empty input"},
		{"nodes:c", "expected node:, link: or ecmp"},
		{"node:", "node: missing name"},
		{"node:c(", "expected attribute"},
		{"node:c(client", "expected ',' or ')'"},
		{"node:c(client server)", "expected ',' or ')'"},
		{"node:c(bogus)", `unknown attribute "bogus"`},
		{"node:c(client,router)", `conflicting kind "router"`},
		{"node:c(label=)", `missing value for "label"`},
		{"node:c(tap=)", `missing value for "tap"`},
		{"node:c(censor=)", `missing value for "censor"`},
		{"link:", "link: missing source node"},
		{"link:a", "expected '>'"},
		{"link:a>", "missing target node"},
		{"link:a>b(lat=fast)", `bad lat "fast"`},
		{"link:a>b(lat=-1ms)", `bad lat "-1ms"`},
		{"link:a>b(loss=1.5)", `bad loss "1.5"`},
		{"link:a>b(loss=1)", `bad loss "1"`},
		{"link:a>b(mtu=0)", `bad mtu "0"`},
		{"link:a>b(mtu=huge)", `bad mtu "huge"`},
		{"link:a>b(speed=9)", `unknown attribute "speed"`},
		{"link:a>b(bw=1)", `bad bw "1"`},
		{"link:a>b(bw=fastbit)", `bad bw "fastbit"`},
		{"link:a>b(bw=0mbit)", `bad bw "0mbit"`},
		{"link:a>b(queue=0)", `bad queue "0"`},
		{"link:a>b(bw=1mbit,queue=none)", `bad queue "none"`},
		{"link:a>b(blue)", `unknown attribute "blue"`},
		{"ecmp", "want ecmp(seed=N)"},
		{"ecmp(seed=0)", "seed must be nonzero"},
		{"ecmp(seed=x)", `bad seed "x"`},
		{"ecmp(seed=1) ecmp(seed=2)", "duplicate ecmp statement"},
	}
	for _, tc := range cases {
		_, err := ParseTopo(tc.in)
		if err == nil {
			t.Errorf("ParseTopo(%q): want error containing %q, got nil", tc.in, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseTopo(%q): error %q does not contain %q", tc.in, err, tc.wantErr)
		}
	}
}

// TestMustParseTopoPanics verifies the Must helper panics on bad input.
func TestMustParseTopoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseTopo did not panic on bad input")
		}
	}()
	MustParseTopo("node:")
}
