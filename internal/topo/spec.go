// Package topo is the declarative topology layer: a Spec describes a
// trial's network — nodes (endpoints, routers, taps, middleboxes),
// directed links with per-direction latency/loss/MTU and optional
// bandwidth shaping (token bucket + finite queue), and seeded
// per-flow ECMP route selection — with a canonical text encoding that
// round-trips through ParseTopo, exactly as internal/core's strategy
// Spec does for evasion strategies. Compilation onto the netem
// substrate lives in compile.go: linear chains compile to the
// allocation-free netem.Path, everything else to the graph
// netem.Fabric.
package topo

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"intango/internal/netem"
)

// Kind classifies a node.
type Kind int

const (
	// KindPlain forwards without touching TTL (a switch, a wiretap
	// position that is not a router).
	KindPlain Kind = iota
	// KindClient and KindServer are the endpoints; a spec has exactly
	// one of each, and they carry no taps or processors.
	KindClient
	KindServer
	// KindRouter decrements TTL, validates IP checksums, discards
	// optioned datagrams, and emits ICMP Time-Exceeded.
	KindRouter
)

// String names the kind as it appears in spec text ("" for plain,
// which is the unmarked default).
func (k Kind) String() string {
	switch k {
	case KindClient:
		return "client"
	case KindServer:
		return "server"
	case KindRouter:
		return "router"
	default:
		return ""
	}
}

// Attachment is one symbolic tap/processor reference on a node. The
// actual netem.Processor chains are bound at compile time (a spec is
// printable text; devices are live objects with config and RNG state).
type Attachment struct {
	// Tap: attach as an on-path tap (the GFW wiretap position) rather
	// than an in-path processor.
	Tap bool
	// Censor: Ref is a censor reference (registry name or spec text)
	// compiled by internal/censor; the binder builds the instance's tap
	// and its in-path companion filter at this node.
	Censor bool
	// Ref is the symbolic name a Binder resolves, e.g. "gfw-new",
	// "client-mbox", "ipf:gfw-new" — or, with Censor, "gfw2017".
	Ref string
}

// NodeSpec declares one node.
type NodeSpec struct {
	Name string
	Kind Kind
	// Label, when set, overrides Name in traces and diagrams (the
	// measurement rigs label every router "r", as the paper's diagrams
	// do, while spec names must be unique).
	Label string
	// Attach lists the node's taps and processors in attachment order.
	Attach []Attachment
}

// String renders the node statement in canonical form.
func (n NodeSpec) String() string {
	var args []string
	if k := n.Kind.String(); k != "" {
		args = append(args, k)
	}
	if n.Label != "" {
		args = append(args, "label="+n.Label)
	}
	for _, a := range n.Attach {
		switch {
		case a.Censor:
			args = append(args, "censor="+a.Ref)
		case a.Tap:
			args = append(args, "tap="+a.Ref)
		default:
			args = append(args, "proc="+a.Ref)
		}
	}
	s := "node:" + n.Name
	if len(args) > 0 {
		s += "(" + strings.Join(args, ",") + ")"
	}
	return s
}

// LinkSpec declares one directed link. Forward and reverse directions
// of an edge are separate statements, so asymmetric routes and
// per-direction attributes fall out naturally.
type LinkSpec struct {
	From, To string
	Latency  time.Duration
	Loss     float64
	// MTU, when nonzero, drops datagrams whose wire size exceeds it at
	// this link's egress.
	MTU int
	// RateBits, when nonzero, caps the link at that many bits per
	// second ("bw=1mbit"): packets serialize through a finite FIFO.
	RateBits int64
	// Queue is the FIFO depth in packets ("queue=16");
	// netem.DefaultQueueLimit applies when zero. Only valid with a rate.
	Queue int
	// RED switches the queue from tail-drop to random early detection
	// (bare "red" attribute). Only valid with a rate.
	RED bool
}

// String renders the link statement in canonical form.
func (l LinkSpec) String() string {
	var args []string
	if l.Latency != 0 {
		args = append(args, "lat="+l.Latency.String())
	}
	if l.Loss != 0 {
		args = append(args, "loss="+strconv.FormatFloat(l.Loss, 'g', -1, 64))
	}
	if l.MTU != 0 {
		args = append(args, "mtu="+strconv.Itoa(l.MTU))
	}
	if l.RateBits != 0 {
		args = append(args, "bw="+netem.FormatRate(l.RateBits))
	}
	if l.Queue != 0 {
		args = append(args, "queue="+strconv.Itoa(l.Queue))
	}
	if l.RED {
		args = append(args, "red")
	}
	s := "link:" + l.From + ">" + l.To
	if len(args) > 0 {
		s += "(" + strings.Join(args, ",") + ")"
	}
	return s
}

// Spec is a complete declarative topology.
type Spec struct {
	Nodes []NodeSpec
	Links []LinkSpec
	// ECMPSeed seeds the per-flow hash that picks among equal-cost
	// parallel routes. Two rigs compiled from the same spec route every
	// flow identically.
	ECMPSeed uint64
}

// String renders the canonical single-line encoding: nodes in
// declaration order, then links in declaration order, then the ECMP
// seed when nonzero. ParseTopo inverts it exactly:
// ParseTopo(s.String()).String() == s.String().
func (s Spec) String() string {
	parts := make([]string, 0, len(s.Nodes)+len(s.Links)+1)
	for _, n := range s.Nodes {
		parts = append(parts, n.String())
	}
	for _, l := range s.Links {
		parts = append(parts, l.String())
	}
	if s.ECMPSeed != 0 {
		parts = append(parts, "ecmp(seed="+strconv.FormatUint(s.ECMPSeed, 10)+")")
	}
	return strings.Join(parts, " ")
}

// MustParseTopo is ParseTopo for statically-known specs; it panics on
// error.
func MustParseTopo(input string) Spec {
	spec, err := ParseTopo(input)
	if err != nil {
		panic(err)
	}
	return spec
}

// ParseTopo parses the canonical text encoding:
//
//	topo  = stmt {" " stmt}
//	stmt  = node | link | ecmp
//	node  = "node:" name ["(" nattr {"," nattr} ")"]
//	nattr = "client" | "server" | "router" | "label=" name |
//	        "tap=" ref | "proc=" ref | "censor=" ref
//	link  = "link:" name ">" name ["(" lattr {"," lattr} ")"]
//	lattr = "lat=" duration | "loss=" float | "mtu=" int |
//	        "bw=" rate | "queue=" int | "red"
//	rate  = int ("bit" | "kbit" | "mbit" | "gbit")
//	ecmp  = "ecmp(seed=" uint ")"
//
// Whitespace (including newlines) between statements is forgiving on
// input; String always emits single spaces. Statements may interleave;
// String emits nodes, then links, then ecmp. Semantic checks (unique
// names, link endpoints, reachability) happen in NewProgram, not here
// — except a few that would make the encoding ambiguous.
func ParseTopo(input string) (Spec, error) {
	p := &topoParser{s: input}
	var spec Spec
	seenEcmp := false
	p.space()
	if p.eof() {
		return Spec{}, fmt.Errorf("topo: empty input")
	}
	for {
		p.space()
		if p.eof() {
			return spec, nil
		}
		switch {
		case strings.HasPrefix(p.rest(), "node:"):
			p.i += len("node:")
			n, err := p.node()
			if err != nil {
				return Spec{}, err
			}
			spec.Nodes = append(spec.Nodes, n)
		case strings.HasPrefix(p.rest(), "link:"):
			p.i += len("link:")
			l, err := p.link()
			if err != nil {
				return Spec{}, err
			}
			spec.Links = append(spec.Links, l)
		case strings.HasPrefix(p.rest(), "ecmp"):
			p.i += len("ecmp")
			seed, err := p.ecmp()
			if err != nil {
				return Spec{}, err
			}
			if seenEcmp {
				return Spec{}, fmt.Errorf("topo: duplicate ecmp statement")
			}
			seenEcmp = true
			spec.ECMPSeed = seed
		default:
			return Spec{}, fmt.Errorf("topo: expected node:, link: or ecmp, got %q", p.rest())
		}
	}
}

type topoParser struct {
	s string
	i int
}

func (p *topoParser) eof() bool    { return p.i >= len(p.s) }
func (p *topoParser) rest() string { return p.s[p.i:] }

func (p *topoParser) space() {
	for !p.eof() && (p.s[p.i] == ' ' || p.s[p.i] == '\t' || p.s[p.i] == '\n' || p.s[p.i] == '\r') {
		p.i++
	}
}

func nameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.' || c == '+'
}

// refByte additionally allows ':' so bindings can namespace their
// references ("ipf:gfw-new").
func refByte(c byte) bool { return nameByte(c) || c == ':' }

// name consumes a run of name bytes (possibly empty).
func (p *topoParser) name() string {
	start := p.i
	for !p.eof() && nameByte(p.s[p.i]) {
		p.i++
	}
	return p.s[start:p.i]
}

// ref consumes a run of reference bytes (possibly empty).
func (p *topoParser) ref() string {
	start := p.i
	for !p.eof() && refByte(p.s[p.i]) {
		p.i++
	}
	return p.s[start:p.i]
}

func (p *topoParser) consume(c byte) bool {
	if !p.eof() && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

// arg is one parsed attribute: bare ("router") or key=value.
type arg struct {
	key string // "" for a bare token
	val string
}

// label names the attribute in errors: the key for key=value, the
// token itself when bare.
func (a arg) label() string {
	if a.key != "" {
		return a.key
	}
	return a.val
}

// args parses an optional parenthesised attribute list.
func (p *topoParser) args(owner string) ([]arg, error) {
	if !p.consume('(') {
		return nil, nil
	}
	var out []arg
	for {
		p.space()
		if p.consume(')') {
			return out, nil
		}
		tok := p.name()
		if tok == "" {
			return nil, fmt.Errorf("topo: %s: expected attribute, got %q", owner, p.rest())
		}
		a := arg{val: tok}
		if p.consume('=') {
			a.key = tok
			a.val = p.ref()
			if a.val == "" {
				return nil, fmt.Errorf("topo: %s: missing value for %q", owner, a.key)
			}
		}
		out = append(out, a)
		p.space()
		if p.consume(',') {
			continue
		}
		if p.consume(')') {
			return out, nil
		}
		return nil, fmt.Errorf("topo: %s: expected ',' or ')', got %q", owner, p.rest())
	}
}

func (p *topoParser) node() (NodeSpec, error) {
	var n NodeSpec
	n.Name = p.name()
	if n.Name == "" {
		return n, fmt.Errorf("topo: node: missing name, got %q", p.rest())
	}
	args, err := p.args("node:" + n.Name)
	if err != nil {
		return n, err
	}
	for _, a := range args {
		switch {
		case a.key == "" && a.val == "client":
			if n.Kind != KindPlain {
				return n, fmt.Errorf("topo: node:%s: conflicting kind %q", n.Name, a.val)
			}
			n.Kind = KindClient
		case a.key == "" && a.val == "server":
			if n.Kind != KindPlain {
				return n, fmt.Errorf("topo: node:%s: conflicting kind %q", n.Name, a.val)
			}
			n.Kind = KindServer
		case a.key == "" && a.val == "router":
			if n.Kind != KindPlain {
				return n, fmt.Errorf("topo: node:%s: conflicting kind %q", n.Name, a.val)
			}
			n.Kind = KindRouter
		case a.key == "label":
			n.Label = a.val
		case a.key == "tap":
			n.Attach = append(n.Attach, Attachment{Tap: true, Ref: a.val})
		case a.key == "proc":
			n.Attach = append(n.Attach, Attachment{Ref: a.val})
		case a.key == "censor":
			n.Attach = append(n.Attach, Attachment{Censor: true, Ref: a.val})
		default:
			return n, fmt.Errorf("topo: node:%s: unknown attribute %q", n.Name, a.label())
		}
	}
	return n, nil
}

func (p *topoParser) link() (LinkSpec, error) {
	var l LinkSpec
	l.From = p.name()
	if l.From == "" {
		return l, fmt.Errorf("topo: link: missing source node, got %q", p.rest())
	}
	if !p.consume('>') {
		return l, fmt.Errorf("topo: link:%s: expected '>', got %q", l.From, p.rest())
	}
	l.To = p.name()
	if l.To == "" {
		return l, fmt.Errorf("topo: link:%s>: missing target node, got %q", l.From, p.rest())
	}
	owner := "link:" + l.From + ">" + l.To
	args, err := p.args(owner)
	if err != nil {
		return l, err
	}
	for _, a := range args {
		switch a.key {
		case "lat":
			d, err := time.ParseDuration(a.val)
			if err != nil || d < 0 {
				return l, fmt.Errorf("topo: %s: bad lat %q", owner, a.val)
			}
			l.Latency = d
		case "loss":
			f, err := strconv.ParseFloat(a.val, 64)
			if err != nil || f < 0 || f >= 1 {
				return l, fmt.Errorf("topo: %s: bad loss %q (want [0,1))", owner, a.val)
			}
			l.Loss = f
		case "mtu":
			m, err := strconv.Atoi(a.val)
			if err != nil || m <= 0 {
				return l, fmt.Errorf("topo: %s: bad mtu %q", owner, a.val)
			}
			l.MTU = m
		case "bw":
			bits, err := parseRate(a.val)
			if err != nil {
				return l, fmt.Errorf("topo: %s: bad bw %q", owner, a.val)
			}
			l.RateBits = bits
		case "queue":
			q, err := strconv.Atoi(a.val)
			if err != nil || q <= 0 {
				return l, fmt.Errorf("topo: %s: bad queue %q", owner, a.val)
			}
			l.Queue = q
		case "":
			if a.val == "red" {
				l.RED = true
				continue
			}
			return l, fmt.Errorf("topo: %s: unknown attribute %q", owner, a.label())
		default:
			return l, fmt.Errorf("topo: %s: unknown attribute %q", owner, a.label())
		}
	}
	return l, nil
}

// parseRate parses a link bit rate: an integer with a bit/kbit/mbit/
// gbit suffix, matching tc's spelling ("1mbit", "500kbit").
func parseRate(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "gbit"):
		mult, s = 1_000_000_000, strings.TrimSuffix(s, "gbit")
	case strings.HasSuffix(s, "mbit"):
		mult, s = 1_000_000, strings.TrimSuffix(s, "mbit")
	case strings.HasSuffix(s, "kbit"):
		mult, s = 1_000, strings.TrimSuffix(s, "kbit")
	case strings.HasSuffix(s, "bit"):
		s = strings.TrimSuffix(s, "bit")
	default:
		return 0, fmt.Errorf("missing bit/kbit/mbit/gbit suffix")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad rate magnitude %q", s)
	}
	return n * mult, nil
}

func (p *topoParser) ecmp() (uint64, error) {
	args, err := p.args("ecmp")
	if err != nil {
		return 0, err
	}
	if len(args) != 1 || args[0].key != "seed" {
		return 0, fmt.Errorf("topo: ecmp: want ecmp(seed=N)")
	}
	seed, err := strconv.ParseUint(args[0].val, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("topo: ecmp: bad seed %q", args[0].val)
	}
	if seed == 0 {
		return 0, fmt.Errorf("topo: ecmp: seed must be nonzero (zero is the unseeded default)")
	}
	return seed, nil
}
