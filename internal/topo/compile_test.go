package topo

import (
	"strings"
	"testing"
	"time"

	"intango/internal/netem"
	"intango/internal/packet"
)

// stubProc is a named no-op processor for binding tests.
type stubProc struct{ name string }

func (s stubProc) Name() string { return s.name }
func (s stubProc) Process(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
	return netem.Pass
}

// linearSpec is the canonical 2-hop chain the measurement rigs use:
// client — r0 — r1 — server, symmetric links, tap+middlebox on r0.
const linearSpec = "node:c(client) node:r0(router,label=r,tap=wiretap,proc=mbox) node:r1(router,label=r) node:s(server) " +
	"link:c>r0(lat=10ms,loss=0.006,mtu=1500) link:r0>c(lat=10ms,loss=0.006) " +
	"link:r0>r1(lat=1ms) link:r1>r0(lat=1ms) " +
	"link:r1>s(lat=1ms) link:s>r1(lat=1ms)"

// ecmpSpec has two parallel censor branches and an asymmetric reverse
// route — the fabric-only shape.
const ecmpSpec = "node:c(client) node:a(router) node:b1(router,tap=wiretap) node:b2(router,tap=wiretap) " +
	"node:x(router) node:rr(router) node:s(server) " +
	"link:c>a(lat=5ms) link:a>b1(lat=2ms) link:a>b2(lat=2ms) " +
	"link:b1>x(lat=2ms) link:b2>x(lat=2ms) link:x>s(lat=1ms) " +
	"link:s>rr(lat=3ms) link:rr>a(lat=3ms) link:a>c(lat=5ms) " +
	"link:b1>a(lat=2ms) link:b2>a(lat=2ms) " +
	"ecmp(seed=1)"

func testBinder() BindMap {
	return BindMap{
		"wiretap": {stubProc{name: "wiretap"}},
		"mbox":    {stubProc{name: "mbox"}},
	}
}

func TestCompileLinearToPath(t *testing.T) {
	prog, err := NewProgram(MustParseTopo(linearSpec))
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Linear() {
		t.Fatal("chain spec not detected as linear")
	}
	sim := netem.NewSimulator(1)
	n, err := prog.Instantiate(testBinder(), Options{Sim: sim})
	if err != nil {
		t.Fatal(err)
	}
	path, ok := n.(*netem.Path)
	if !ok {
		t.Fatalf("linear program compiled to %T, want *netem.Path", n)
	}
	if path.ClientLink.Latency != 10*time.Millisecond || path.ClientLink.LossRate != 0.006 {
		t.Errorf("client link = %v/%v", path.ClientLink.Latency, path.ClientLink.LossRate)
	}
	if path.MTU != 1500 {
		t.Errorf("MTU = %d, want 1500", path.MTU)
	}
	if len(path.Hops) != 2 {
		t.Fatalf("got %d hops, want 2", len(path.Hops))
	}
	// Labels override names in traces: both hops display as "r".
	if path.Hops[0].Name != "r" || path.Hops[1].Name != "r" {
		t.Errorf("hop names = %q, %q; want r, r", path.Hops[0].Name, path.Hops[1].Name)
	}
	if !path.Hops[0].Router || !path.Hops[1].Router {
		t.Error("hops not routers")
	}
	if len(path.Hops[0].Taps) != 1 || path.Hops[0].Taps[0].Name() != "wiretap" {
		t.Errorf("hop0 taps = %v", path.Hops[0].Taps)
	}
	if len(path.Hops[0].Processors) != 1 || path.Hops[0].Processors[0].Name() != "mbox" {
		t.Errorf("hop0 processors = %v", path.Hops[0].Processors)
	}
	if path.Hops[0].Latency != time.Millisecond || path.Hops[1].Latency != time.Millisecond {
		t.Errorf("hop latencies = %v, %v", path.Hops[0].Latency, path.Hops[1].Latency)
	}
}

// TestCompileShapedChain verifies symmetric bandwidth attributes keep
// the Path fast case and carry through to the substrate.
func TestCompileShapedChain(t *testing.T) {
	spec := "node:c(client) node:r0(router) node:s(server) " +
		"link:c>r0(lat=1ms,bw=1mbit,queue=16,red) link:r0>c(lat=1ms,bw=1mbit,queue=16,red) " +
		"link:r0>s(lat=1ms,bw=2mbit) link:s>r0(lat=1ms,bw=2mbit)"
	prog, err := NewProgram(MustParseTopo(spec))
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Linear() {
		t.Fatal("symmetric shaped chain not detected as linear")
	}
	n, err := prog.Instantiate(nil, Options{Sim: netem.NewSimulator(1)})
	if err != nil {
		t.Fatal(err)
	}
	path := n.(*netem.Path)
	if path.ClientLink.Rate != 1_000_000 || path.ClientLink.Queue != 16 || !path.ClientLink.RED {
		t.Errorf("client link shaping = %d/%d/%v, want 1mbit/16/red",
			path.ClientLink.Rate, path.ClientLink.Queue, path.ClientLink.RED)
	}
	if path.Hops[0].Rate != 2_000_000 || path.Hops[0].Queue != 0 || path.Hops[0].RED {
		t.Errorf("hop0 shaping = %d/%d/%v, want 2mbit/0/tail-drop",
			path.Hops[0].Rate, path.Hops[0].Queue, path.Hops[0].RED)
	}
}

// TestCompileTwoNodeChain covers the degenerate client—server chain:
// still linear, zero hops.
func TestCompileTwoNodeChain(t *testing.T) {
	n, err := Compile(MustParseTopo("node:c(client) node:s(server) link:c>s(lat=1ms) link:s>c(lat=1ms)"),
		nil, Options{Sim: netem.NewSimulator(1)})
	if err != nil {
		t.Fatal(err)
	}
	path, ok := n.(*netem.Path)
	if !ok {
		t.Fatalf("compiled to %T, want *netem.Path", n)
	}
	if len(path.Hops) != 0 {
		t.Errorf("got %d hops, want 0", len(path.Hops))
	}
}

// TestLinearityBoundary checks the shapes that must NOT take the Path
// fast case even though they parse fine.
func TestLinearityBoundary(t *testing.T) {
	cases := []struct{ name, spec string }{
		{"asymmetric latency",
			"node:c(client) node:r(router) node:s(server) " +
				"link:c>r(lat=2ms) link:r>c(lat=3ms) link:r>s(lat=1ms) link:s>r(lat=1ms)"},
		{"asymmetric loss",
			"node:c(client) node:r(router) node:s(server) " +
				"link:c>r(loss=0.1) link:r>c link:r>s link:s>r"},
		{"mid-path mtu",
			"node:c(client) node:r(router) node:s(server) " +
				"link:c>r link:r>c link:r>s(mtu=576) link:s>r"},
		{"reverse mtu on client link",
			"node:c(client) node:r(router) node:s(server) " +
				"link:c>r link:r>c(mtu=1500) link:r>s link:s>r"},
		{"one-way ring",
			"node:c(client) node:f(router) node:r(router) node:s(server) " +
				"link:c>f link:f>s link:s>r link:r>c"},
		{"asymmetric bandwidth",
			"node:c(client) node:r(router) node:s(server) " +
				"link:c>r(bw=1mbit) link:r>c link:r>s link:s>r"},
		{"asymmetric queue",
			"node:c(client) node:r(router) node:s(server) " +
				"link:c>r(bw=1mbit,queue=8) link:r>c(bw=1mbit,queue=16) link:r>s link:s>r"},
		{"parallel branches", ecmpSpec},
	}
	for _, tc := range cases {
		prog, err := NewProgram(MustParseTopo(tc.spec))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if prog.Linear() {
			t.Errorf("%s: detected as linear, want fabric", tc.name)
		}
		n, err := prog.Instantiate(testBinder(), Options{Sim: netem.NewSimulator(1)})
		if err != nil {
			t.Fatalf("%s: instantiate: %v", tc.name, err)
		}
		if _, ok := n.(*netem.Fabric); !ok {
			t.Errorf("%s: compiled to %T, want *netem.Fabric", tc.name, n)
		}
	}
}

func TestCompileFabricECMP(t *testing.T) {
	prog, err := NewProgram(MustParseTopo(ecmpSpec))
	if err != nil {
		t.Fatal(err)
	}
	n, err := prog.Instantiate(testBinder(), Options{Sim: netem.NewSimulator(1)})
	if err != nil {
		t.Fatal(err)
	}
	f := n.(*netem.Fabric)
	cli, srv := packet.AddrFrom4(10, 0, 0, 1), packet.AddrFrom4(10, 9, 0, 1)
	flow := func(sport uint16) *packet.Packet {
		return packet.NewTCP(cli, sport, srv, 80, packet.FlagSYN, 1, 0, nil)
	}
	// Forward routes go through exactly one of the parallel branches and
	// are stable per flow.
	sawB1, sawB2 := false, false
	for sport := uint16(4000); sport < 4032; sport++ {
		route := strings.Join(f.ForwardRoute(flow(sport)), ">")
		switch route {
		case "c>a>b1>x>s":
			sawB1 = true
		case "c>a>b2>x>s":
			sawB2 = true
		default:
			t.Fatalf("unexpected forward route %q", route)
		}
		if again := strings.Join(f.ForwardRoute(flow(sport)), ">"); again != route {
			t.Fatalf("route for sport %d not stable: %q then %q", sport, route, again)
		}
	}
	if !sawB1 || !sawB2 {
		t.Errorf("ECMP never split: b1=%v b2=%v over 32 flows", sawB1, sawB2)
	}
	// Reverse route is the asymmetric return path, branch-free.
	if rev := strings.Join(f.ReverseRoute(flow(4000)), ">"); rev != "s>rr>a>c" {
		t.Errorf("reverse route = %q, want s>rr>a>c", rev)
	}
	// Same spec, same seed → identical routing on a fresh instance.
	n2, err := prog.Instantiate(testBinder(), Options{Sim: netem.NewSimulator(99)})
	if err != nil {
		t.Fatal(err)
	}
	f2 := n2.(*netem.Fabric)
	for sport := uint16(4000); sport < 4032; sport++ {
		r1 := strings.Join(f.ForwardRoute(flow(sport)), ">")
		r2 := strings.Join(f2.ForwardRoute(flow(sport)), ">")
		if r1 != r2 {
			t.Fatalf("seeded ECMP not reproducible: sport %d routed %q vs %q", sport, r1, r2)
		}
	}
}

// TestNewProgramErrors locks in the semantic-validation vocabulary.
func TestNewProgramErrors(t *testing.T) {
	cases := []struct{ in, wantErr string }{
		{"node:s(server) link:s>s", "no client node"},
		{"node:c(client) link:c>c", "no server node"},
		{"node:c(client) node:c2(client) node:s(server)", "multiple client nodes"},
		{"node:c(client) node:s(server) node:s2(server)", "multiple server nodes"},
		{"node:c(client) node:c node:s(server) link:c>s link:s>c", `duplicate node "c"`},
		{"node:c(client,tap=x) node:s(server) link:c>s link:s>c", "endpoints cannot carry taps"},
		{"node:c(client) node:s(server) link:c>q link:s>c", `unknown node "q"`},
		{"node:c(client) node:s(server) link:c>c link:c>s link:s>c", "self-link"},
		{"node:c(client) node:s(server) link:c>s link:c>s link:s>c", "duplicate link c>s"},
		{"node:c(client) node:s(server) link:s>c", `no route from client "c" to server "s"`},
		{"node:c(client) node:s(server) link:c>s", `no route from server "s" to client "c"`},
		{"node:c(client) node:s(server) link:c>s(queue=4) link:s>c", "queue/red require bw"},
		{"node:c(client) node:s(server) link:c>s(red) link:s>c", "queue/red require bw"},
	}
	for _, tc := range cases {
		_, err := NewProgram(MustParseTopo(tc.in))
		if err == nil {
			t.Errorf("NewProgram(%q): want error containing %q, got nil", tc.in, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("NewProgram(%q): error %q does not contain %q", tc.in, err, tc.wantErr)
		}
	}
}

// TestBindErrors covers unbound references and the nil binder.
func TestBindErrors(t *testing.T) {
	prog, err := NewProgram(MustParseTopo(linearSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Instantiate(nil, Options{Sim: netem.NewSimulator(1)}); err == nil ||
		!strings.Contains(err.Error(), "no binder") {
		t.Errorf("nil binder: got %v", err)
	}
	if _, err := prog.Instantiate(BindMap{}, Options{Sim: netem.NewSimulator(1)}); err == nil ||
		!strings.Contains(err.Error(), `unbound ref "wiretap"`) {
		t.Errorf("empty bind map: got %v", err)
	}
}
