package topo

import "testing"

// FuzzParseTopo asserts the parser's core invariant on arbitrary
// input: no panics, and every accepted spec has a canonical form that
// re-parses to the same canonical form (String is a fixed point of
// ParseTopo∘String). `make check` runs the seed corpus as a smoke test
// (go test -run=FuzzParseTopo); run `go test -fuzz=FuzzParseTopo
// ./internal/topo` to explore.
func FuzzParseTopo(f *testing.F) {
	seeds := []string{
		"",
		"node:c(client) node:s(server) link:c>s(lat=1ms)",
		"node:c(client) node:r0(router,label=r,tap=gfw-new,proc=ipf:gfw-new) node:s(server) " +
			"link:c>r0(lat=10ms,loss=0.006,mtu=1500) link:r0>c(lat=10ms,loss=0.006) " +
			"link:r0>s(lat=1ms) link:s>r0(lat=1ms)",
		"node:c(client) node:a(router) node:b1(router) node:b2(router) node:s(server) " +
			"link:c>a link:a>b1 link:a>b2 link:b1>s link:b2>s link:s>a link:a>c ecmp(seed=7)",
		"ecmp(seed=42)",
		"node:",
		"node:c(",
		"node:c(client",
		"link:a>b(lat=,loss=)",
		"link:a>b(mtu=-1)",
		"  node:c( client )\n node:s(server)\tlink:c>s( lat=1500us , loss=0.50 )",
		"ecmp(seed=0) ecmp(seed=1)",
		"node:c(client,server)",
		"node:c(client) node:b1(router,censor=gfw2017) node:b2(router,censor=turkmenistan) node:s(server) " +
			"link:c>b1 link:c>b2 link:b1>s link:b2>s link:s>b1 ecmp(seed=9)",
		"node:c(censor=)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseTopo(input)
		if err != nil {
			return
		}
		canon := spec.String()
		again, err := ParseTopo(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, input, err)
		}
		if again.String() != canon {
			t.Fatalf("String not a fixed point: %q -> %q -> %q", input, canon, again.String())
		}
	})
}
