package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"intango/internal/obs"
	"intango/internal/pcap"
)

// WritePcap emits the captured packets as a nanosecond-precision pcap
// (virtual time is nanosecond-granular; microsecond rounding would
// collapse insertion volleys into identical timestamps). The capture
// parses back through pcap.Read.
func (tr *Trace) WritePcap(w io.Writer) error {
	pw := pcap.NewNanoWriter(w)
	for _, p := range tr.Packets {
		if err := pw.WriteRaw(p.Time, p.Data); err != nil {
			return err
		}
	}
	return nil
}

// jsonlLine is the tagged union the JSONL export emits: one meta line,
// then every packet and event merged in time order.
type jsonlLine struct {
	Type   string        `json:"type"` // "meta", "span", "packet", "event"
	Meta   *Meta         `json:"meta,omitempty"`
	Span   *obs.Span     `json:"span,omitempty"`
	Packet *PacketRecord `json:"packet,omitempty"`
	Event  *obs.Event    `json:"event,omitempty"`
}

// WriteJSONL emits the trace as line-delimited JSON: a meta line and
// the stage spans, followed by packet and event lines merged
// chronologically, so the file reads top-to-bottom as the trial's
// causal log.
func (tr *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlLine{Type: "meta", Meta: &tr.Meta}); err != nil {
		return err
	}
	for i := range tr.Spans {
		if err := enc.Encode(jsonlLine{Type: "span", Span: &tr.Spans[i]}); err != nil {
			return err
		}
	}
	pi, ei := 0, 0
	for pi < len(tr.Packets) || ei < len(tr.Events) {
		// Packets win ties: a packet's transmission precedes the events
		// it causes at the same virtual instant.
		if ei >= len(tr.Events) || (pi < len(tr.Packets) && tr.Packets[pi].Time <= tr.Events[ei].T) {
			if err := enc.Encode(jsonlLine{Type: "packet", Packet: &tr.Packets[pi]}); err != nil {
				return err
			}
			pi++
			continue
		}
		if err := enc.Encode(jsonlLine{Type: "event", Event: &tr.Events[ei]}); err != nil {
			return err
		}
		ei++
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto). Simulation events are instants (phase
// "i"); stage spans are complete events (phase "X" with a duration).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds, fractional
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome emits the trace in Chrome trace-event JSON: a "stages"
// lane of span bars, one thread lane per subsystem, plus a "wire" lane
// for packet transmissions, so the causal structure is visible on a
// shared time axis in chrome://tracing or Perfetto.
func (tr *Trace) WriteChrome(w io.Writer) error {
	const stagesTID = 0
	const wireTID = 1
	tids := map[string]int{}
	tidOf := func(subsys string) int {
		if id, ok := tids[subsys]; ok {
			return id
		}
		id := len(tids) + 2 // 1 is the wire lane
		tids[subsys] = id
		return id
	}
	var evs []chromeEvent
	ts := func(t time.Duration) float64 { return float64(t.Nanoseconds()) / 1e3 }
	for _, sp := range tr.Spans {
		evs = append(evs, chromeEvent{
			Name: sp.Name, Cat: "stage", Phase: "X",
			TS: ts(sp.Start), Dur: ts(sp.Dur()), PID: 1, TID: stagesTID,
		})
	}
	for i := range tr.Packets {
		p := &tr.Packets[i]
		args := map[string]any{
			"id": p.ID, "origin": p.Origin, "summary": p.Summary,
			"where": p.Where, "dir": p.Dir,
		}
		if p.Parent != 0 {
			args["parent"] = p.Parent
		}
		if p.Crafter != "" {
			args["crafter"] = p.Crafter
		}
		evs = append(evs, chromeEvent{
			Name: p.Event + " #" + utoa(p.ID), Cat: "wire", Phase: "i",
			TS: ts(p.Time), PID: 1, TID: wireTID, Scope: "t", Args: args,
		})
	}
	for _, e := range tr.Events {
		args := map[string]any{}
		if e.Pkt != 0 {
			args["pkt"] = e.Pkt
		}
		if e.Parent != 0 {
			args["parent"] = e.Parent
		}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		if e.Seq != 0 {
			args["seq"] = e.Seq
		}
		evs = append(evs, chromeEvent{
			Name: e.Verb, Cat: e.Subsys, Phase: "i",
			TS: ts(e.T), PID: 1, TID: tidOf(e.Subsys), Scope: "t", Args: args,
		})
	}
	// Thread-name metadata rows label the lanes.
	meta := []chromeEvent{{
		Name: "thread_name", Phase: "M", PID: 1, TID: stagesTID,
		Args: map[string]any{"name": "stages"},
	}, {
		Name: "thread_name", Phase: "M", PID: 1, TID: wireTID,
		Args: map[string]any{"name": "wire"},
	}}
	names := make([]string, 0, len(tids))
	for s := range tids {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tids[s],
			Args: map[string]any{"name": s},
		})
	}
	return json.NewEncoder(w).Encode(append(meta, evs...))
}

// WriteBundle writes all three export formats plus the narrative into
// dir as prefix.pcap / prefix.jsonl / prefix.trace.json / prefix.txt,
// creating dir if needed. It returns the paths written.
func (tr *Trace) WriteBundle(dir, prefix string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	write := func(name string, emit func(io.Writer) error) error {
		path := filepath.Join(dir, prefix+name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		paths = append(paths, path)
		return nil
	}
	if err := write(".pcap", tr.WritePcap); err != nil {
		return nil, err
	}
	if err := write(".jsonl", tr.WriteJSONL); err != nil {
		return nil, err
	}
	if err := write(".trace.json", tr.WriteChrome); err != nil {
		return nil, err
	}
	if err := write(".txt", func(w io.Writer) error {
		_, err := io.WriteString(w, tr.Narrative())
		return err
	}); err != nil {
		return nil, err
	}
	return paths, nil
}
