package trace

import (
	"fmt"
	"strings"
	"time"

	"intango/internal/obs"
)

// Narrative renders the trace as a human-readable account of the
// trial: the wire packets with their lineage, the decisive censor and
// endpoint events, and the causal chain leading to the censor's
// reaction (when there was one). Output is deterministic for a given
// trace — the explain golden test pins it.
func (tr *Trace) Narrative() string {
	var b strings.Builder
	m := tr.Meta
	fmt.Fprintf(&b, "trial %d", m.Trial)
	if m.Strategy != "" {
		fmt.Fprintf(&b, " strategy=%s", m.Strategy)
	}
	if m.VP != "" {
		fmt.Fprintf(&b, " vp=%s", m.VP)
	}
	if m.Server != "" {
		fmt.Fprintf(&b, " server=%s", m.Server)
	}
	if m.Outcome != "" {
		fmt.Fprintf(&b, " outcome=%s", m.Outcome)
	}
	b.WriteString("\n\n")

	b.WriteString("wire packets:\n")
	for i := range tr.Packets {
		p := &tr.Packets[i]
		fmt.Fprintf(&b, "  #%-3d %9.3fms %-9s %-6s %s", p.ID, ms(p.Time), p.Origin, p.Event, p.Summary)
		if p.Parent != 0 {
			fmt.Fprintf(&b, " <-#%d", p.Parent)
		}
		if p.Crafter != "" {
			fmt.Fprintf(&b, " crafted-by=%s", p.Crafter)
		}
		b.WriteByte('\n')
	}

	b.WriteString("\ndecisive events:\n")
	any := false
	for _, e := range tr.Events {
		if !decisive(e) {
			continue
		}
		any = true
		b.WriteString("  " + e.String() + "\n")
	}
	if !any {
		b.WriteString("  (none)\n")
	}

	b.WriteString("\n" + tr.causalChain())
	return b.String()
}

// decisive filters the event stream down to what explains an outcome:
// everything the censor and middleboxes did, the endpoint's
// state transitions and rejections, and the path's drops and
// injections. Routine send/deliver traffic is elided.
func decisive(e obs.Event) bool {
	switch e.Subsys {
	case "gfw", "middlebox":
		return true
	case "tcpstack":
		return true // only state transitions and non-accept verdicts are recorded
	case "netem":
		return e.Verb == "inject" || strings.HasPrefix(e.Verb, "drop-")
	}
	return false
}

// causalChain walks lineage parents from the censor's last injected
// packet back to the client packet that provoked it.
func (tr *Trace) causalChain() string {
	byID := make(map[uint32]*PacketRecord, len(tr.Packets))
	for i := range tr.Packets {
		if tr.Packets[i].ID != 0 {
			byID[tr.Packets[i].ID] = &tr.Packets[i]
		}
	}
	var last *PacketRecord
	for i := range tr.Packets {
		if tr.Packets[i].Origin == "gfw" {
			last = &tr.Packets[i]
		}
	}
	if last == nil {
		return "causal chain: no censor-injected packets — the censor never reacted\n"
	}
	var chain []*PacketRecord
	seen := make(map[uint32]bool)
	for p := last; p != nil; {
		chain = append(chain, p)
		if p.Parent == 0 || seen[p.Parent] {
			break
		}
		seen[p.Parent] = true
		p = byID[p.Parent]
	}
	var b strings.Builder
	b.WriteString("causal chain (last censor injection, provenance first):\n")
	for i := len(chain) - 1; i >= 0; i-- {
		p := chain[i]
		fmt.Fprintf(&b, "  #%-3d %9.3fms %-9s %s", p.ID, ms(p.Time), p.Origin, p.Summary)
		if p.Crafter != "" {
			fmt.Fprintf(&b, " crafted-by=%s", p.Crafter)
		}
		b.WriteByte('\n')
		if i > 0 {
			b.WriteString("   └─ caused\n")
		}
	}
	return b.String()
}

func ms(t time.Duration) float64 { return float64(t) / float64(time.Millisecond) }
