package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"intango/internal/netem"
	"intango/internal/obs"
	"intango/internal/packet"
	"intango/internal/pcap"
)

var (
	cliAddr = packet.AddrFrom4(10, 0, 0, 1)
	srvAddr = packet.AddrFrom4(203, 0, 113, 80)
)

// buildTrace assembles a small synthetic trace: a client SYN, a
// strategy-crafted RST insertion descended from it, and a GFW reset
// caused by the SYN, with matching recorder events.
func buildTrace(t *testing.T) *Trace {
	t.Helper()
	tr := New()
	hook := tr.PathHook(nil)

	syn := packet.NewTCP(cliAddr, 32768, srvAddr, 80, packet.FlagSYN, 100, 0, nil).Finalize()
	syn.Lin = packet.Lineage{ID: 1, Origin: packet.OriginStack}
	hook(netem.TraceEvent{Time: 1 * time.Millisecond, Where: "client", Event: "send", Dir: netem.ToServer, Pkt: syn})

	ins := packet.NewTCP(cliAddr, 32768, srvAddr, 80, packet.FlagRST, 100, 0, nil).Finalize()
	ins.Lin = packet.Lineage{ID: 2, Parent: 1, Origin: packet.OriginStrategy, Crafter: packet.InternCrafter("teardown(flags=rst,disc=ttl)")}
	hook(netem.TraceEvent{Time: 2 * time.Millisecond, Where: "client", Event: "send", Dir: netem.ToServer, Pkt: ins})

	rst := packet.NewTCP(srvAddr, 80, cliAddr, 32768, packet.FlagRST, 500, 0, nil).Finalize()
	rst.Lin = packet.Lineage{ID: 3, Parent: 1, Origin: packet.OriginGFW}
	hook(netem.TraceEvent{Time: 3 * time.Millisecond, Where: "gfw", Event: "inject", Dir: netem.ToClient, Pkt: rst})

	// A forwarded event the tracer must ignore.
	hook(netem.TraceEvent{Time: 3 * time.Millisecond, Where: "r1", Event: "fwd", Dir: netem.ToServer, Pkt: syn})

	tr.RecordEvent(obs.Event{T: 1 * time.Millisecond, Subsys: "gfw", Verb: "tcb-create", Pkt: 1})
	tr.RecordEvent(obs.Event{T: 3 * time.Millisecond, Subsys: "gfw", Verb: "detect", Pkt: 1, Detail: "keyword"})
	tr.RecordEvent(obs.Event{T: 4 * time.Millisecond, Subsys: "netem", Verb: "deliver", Pkt: 3})

	return tr.Finish(Meta{Strategy: "teardown-rst/ttl", Trial: 3, Outcome: "reset"})
}

func TestTracerCapture(t *testing.T) {
	tr := buildTrace(t)
	if len(tr.Packets) != 3 {
		t.Fatalf("packets = %d, want 3 (fwd must be ignored)", len(tr.Packets))
	}
	if tr.Packets[1].Crafter != "teardown(flags=rst,disc=ttl)" || tr.Packets[1].Parent != 1 {
		t.Fatalf("insertion lineage not captured: %+v", tr.Packets[1])
	}
	if len(tr.Events) != 3 {
		t.Fatalf("events = %d", len(tr.Events))
	}
}

func TestWritePcapRoundTrip(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := tr.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := pcap.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("pcap records = %d", len(recs))
	}
	got, err := packet.Parse(recs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TCP == nil || !got.TCP.FlagsOnly(packet.FlagSYN) {
		t.Fatalf("first record is not the SYN: %v", got)
	}
	if recs[0].Time != 1*time.Millisecond {
		t.Fatalf("timestamp = %v", recs[0].Time)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var types []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Type  string `json:"type"`
			Event *struct {
				Verb string `json:"verb"`
			} `json:"event"`
			Packet *struct {
				ID      uint32 `json:"id"`
				Crafter string `json:"crafter"`
			} `json:"packet"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		types = append(types, line.Type)
		if line.Type == "packet" && line.Packet.ID == 2 && line.Packet.Crafter == "" {
			t.Fatal("insertion packet lost its crafter annotation")
		}
	}
	if types[0] != "meta" {
		t.Fatalf("first line type = %s", types[0])
	}
	if len(types) != 1+3+3 {
		t.Fatalf("lines = %d, want 7", len(types))
	}
}

func TestWriteChrome(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	var lanes, instants int
	for _, e := range evs {
		switch e["ph"] {
		case "M":
			lanes++
		case "i":
			instants++
		}
	}
	if lanes < 2 { // wire + at least one subsystem
		t.Fatalf("metadata lanes = %d", lanes)
	}
	if instants != 3+3 {
		t.Fatalf("instant events = %d, want 6", instants)
	}
}

func TestWriteBundle(t *testing.T) {
	tr := buildTrace(t)
	dir := t.TempDir()
	paths, err := tr.WriteBundle(dir, "trial3")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("bundle files = %d", len(paths))
	}
	for _, p := range paths {
		if !strings.Contains(p, "trial3") {
			t.Fatalf("bundle path %q missing prefix", p)
		}
	}
}

func TestNarrative(t *testing.T) {
	tr := buildTrace(t)
	n := tr.Narrative()
	for _, want := range []string{
		"trial 3 strategy=teardown-rst/ttl outcome=reset",
		"crafted-by=teardown(flags=rst,disc=ttl)",
		"tcb-create",
		"causal chain",
		"#3 ", // the GFW reset terminates the chain
	} {
		if !strings.Contains(n, want) {
			t.Fatalf("narrative missing %q:\n%s", want, n)
		}
	}
	// The routine netem deliver event is not decisive.
	if strings.Contains(n, "deliver") {
		t.Fatalf("narrative should elide deliver events:\n%s", n)
	}
}
