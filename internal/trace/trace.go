// Package trace builds per-trial causal traces on top of the obs
// flight recorder. A Tracer taps a trial's Recorder (receiving the
// complete event stream, beyond the bounded ring) and hooks the netem
// path (capturing the serialized bytes of every packet at its
// transmission point, annotated with lineage: who crafted it and which
// packet caused it). The assembled Trace exports as an annotated pcap,
// as JSONL, and as Chrome trace-event JSON, and renders a
// human-readable narrative of why the trial ended the way it did.
package trace

import (
	"time"

	"intango/internal/netem"
	"intango/internal/obs"
	"intango/internal/packet"
)

// PacketRecord is one wire packet captured at its transmission point,
// with its lineage annotations resolved to plain values.
type PacketRecord struct {
	Time    time.Duration `json:"t"`
	ID      uint32        `json:"id"`
	Parent  uint32        `json:"parent,omitempty"`
	Origin  string        `json:"origin"`
	Crafter string        `json:"crafter,omitempty"`
	Where   string        `json:"where"`
	Event   string        `json:"event"` // "send" or "inject"
	Dir     string        `json:"dir"`
	Summary string        `json:"summary"`
	Data    []byte        `json:"-"`
}

// Tracer accumulates one trial's causal record. It implements
// obs.EventSink for the recorder tap; PathHook supplies the netem trace
// hook for byte capture. A trial is single-goroutine, so the tracer
// needs no locking.
type Tracer struct {
	Events  []obs.Event
	Packets []PacketRecord

	// rec is the tapped recorder; Finish reads its stage spans.
	rec *obs.Recorder
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// RecordEvent implements obs.EventSink.
func (t *Tracer) RecordEvent(e obs.Event) {
	t.Events = append(t.Events, e)
}

// PathHook returns a netem trace hook that captures every packet at
// its send/inject point, chaining to prev (which may be nil). Capturing
// at transmission points only means each datagram appears once, with
// its lineage already stamped.
func (t *Tracer) PathHook(prev func(netem.TraceEvent)) func(netem.TraceEvent) {
	return func(ev netem.TraceEvent) {
		switch ev.Event {
		case "send", "inject":
			t.Packets = append(t.Packets, PacketRecord{
				Time:    ev.Time,
				ID:      ev.Pkt.Lin.ID,
				Parent:  ev.Pkt.Lin.Parent,
				Origin:  ev.Pkt.Lin.Origin.String(),
				Crafter: ev.Pkt.Lin.Crafter.String(),
				Where:   ev.Where,
				Event:   ev.Event,
				Dir:     ev.Dir.String(),
				Summary: summarize(ev.Pkt),
				Data:    ev.Pkt.Serialize(packet.SerializeOptions{}),
			})
		}
		if prev != nil {
			prev(ev)
		}
	}
}

// Attach wires the tracer into a trial: the recorder tap for the event
// stream and the substrate's trace hook for packet bytes. n may be a
// linear netem.Path or a graph netem.Fabric — the hook contract is the
// same on both.
func (t *Tracer) Attach(rec *obs.Recorder, n netem.Net) {
	t.rec = rec
	rec.Tap(t)
	n.SetTraceHook(t.PathHook(n.TraceHook()))
}

// Meta identifies the trial a trace came from.
type Meta struct {
	Strategy string `json:"strategy,omitempty"`
	VP       string `json:"vp,omitempty"`
	Server   string `json:"server,omitempty"`
	Trial    int    `json:"trial"`
	Outcome  string `json:"outcome,omitempty"`
}

// Trace is the completed causal record of one trial.
type Trace struct {
	Meta    Meta
	Packets []PacketRecord
	Events  []obs.Event
	// Spans are the trial's virtual-time stage intervals (topology
	// build, handshake, strategy, verdict, teardown), copied from the
	// tapped recorder at Finish.
	Spans []obs.Span
}

// Finish freezes the tracer into a Trace carrying meta.
func (t *Tracer) Finish(meta Meta) *Trace {
	return &Trace{Meta: meta, Packets: t.Packets, Events: t.Events, Spans: t.rec.Spans()}
}

// summarize renders a one-line protocol summary of a packet.
func summarize(p *packet.Packet) string {
	switch {
	case p.TCP != nil:
		s := tupleString(p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort) +
			" [" + packet.FlagString(p.TCP.Flags) + "]" +
			" seq=" + utoa(uint32(p.TCP.Seq))
		if p.TCP.Flags&packet.FlagACK != 0 {
			s += " ack=" + utoa(uint32(p.TCP.Ack))
		}
		if n := len(p.Payload); n > 0 {
			s += " len=" + utoa(uint32(n))
		}
		if p.IP.IsFragment() {
			s += " frag"
		}
		return s
	case p.UDP != nil:
		return tupleString(p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort) +
			" udp len=" + utoa(uint32(len(p.Payload)))
	case p.IP.IsFragment():
		return p.IP.Src.String() + ">" + p.IP.Dst.String() +
			" frag off=" + utoa(uint32(p.IP.FragOffset)) + " len=" + utoa(uint32(len(p.Payload)))
	default:
		return p.IP.Src.String() + ">" + p.IP.Dst.String() + " proto=" + utoa(uint32(p.IP.Protocol))
	}
}

func tupleString(src packet.Addr, sport uint16, dst packet.Addr, dport uint16) string {
	return src.String() + ":" + utoa(uint32(sport)) + ">" + dst.String() + ":" + utoa(uint32(dport))
}

// utoa is strconv.Itoa for uint32 without the import noise at call
// sites.
func utoa(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b [10]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
