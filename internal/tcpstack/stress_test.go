package tcpstack

import (
	"bytes"
	"testing"
	"time"

	"intango/internal/netem"
	"intango/internal/packet"
)

func TestLargeTransferOverLossyLink(t *testing.T) {
	// 64 KiB through 2% loss: segmentation, retransmission and
	// reassembly must deliver every byte in order.
	sim, p, cli, srv := pair(t, Linux44(), Linux44())
	p.ClientLink.LossRate = 0.02
	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var serverConn *Conn
	srv.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnData = func([]byte) {}
	})
	c := cli.Connect(srvAddr, 80)
	sim.RunFor(2 * time.Second)
	if c.State() != Established {
		t.Fatalf("state = %v", c.State())
	}
	c.Write(payload)
	sim.RunFor(5 * time.Minute)
	if !bytes.Equal(serverConn.Received(), payload) {
		t.Fatalf("received %d/%d bytes intact=false", len(serverConn.Received()), len(payload))
	}
}

func TestSegmentationRespectsMSS(t *testing.T) {
	sim, p, cli, srv := pair(t, Linux44(), Linux44())
	echoServer(srv, 80)
	maxSeen := 0
	p.Trace = func(ev netem.TraceEvent) {
		if ev.Event == "send" && ev.Where == "client" && ev.Pkt.TCP != nil {
			if n := len(ev.Pkt.Payload); n > maxSeen {
				maxSeen = n
			}
		}
	}
	c := cli.Connect(srvAddr, 80)
	sim.RunFor(time.Second)
	c.Write(make([]byte, 10000))
	sim.RunFor(time.Second)
	if maxSeen == 0 || maxSeen > cli.Profile.MSS {
		t.Fatalf("max segment %d vs MSS %d", maxSeen, cli.Profile.MSS)
	}
}

func TestConcurrentConnections(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	echoServer(srv, 80)
	echoServer(srv, 8080)
	c1 := cli.Connect(srvAddr, 80)
	c2 := cli.Connect(srvAddr, 8080)
	c3 := cli.Connect(srvAddr, 80)
	sim.RunFor(time.Second)
	c1.Write([]byte("one"))
	c2.Write([]byte("two"))
	c3.Write([]byte("three"))
	sim.RunFor(time.Second)
	for i, want := range map[*Conn]string{c1: "one", c2: "two", c3: "three"} {
		if string(i.Received()) != want {
			t.Fatalf("conn got %q want %q", i.Received(), want)
		}
	}
	if c1.LocalPort() == c3.LocalPort() {
		t.Fatal("distinct connections must use distinct ports")
	}
}

func TestPortAllocationWraps(t *testing.T) {
	sim := netem.NewSimulator(1)
	s := NewStack(cliAddr, Linux44(), sim)
	s.nextPort = 65535
	a := s.AllocPort()
	b := s.AllocPort()
	if a != 65535 || b != 32768 {
		t.Fatalf("ports = %d, %d", a, b)
	}
}

func TestHalfCloseDeliversLateData(t *testing.T) {
	// Client closes its sending side; the server can still deliver its
	// final response before closing.
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	var serverConn *Conn
	srv.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnData = func([]byte) {}
	})
	c := cli.Connect(srvAddr, 80)
	sim.RunFor(time.Second)
	c.Write([]byte("request"))
	sim.RunFor(time.Second)
	c.Close() // FIN: half close
	sim.RunFor(time.Second)
	if serverConn.State() != CloseWait {
		t.Fatalf("server state = %v, want CLOSE_WAIT", serverConn.State())
	}
	serverConn.Write([]byte("late response"))
	sim.RunFor(time.Second)
	if !bytes.Contains(c.Received(), []byte("late response")) {
		t.Fatalf("client received %q", c.Received())
	}
	serverConn.Close()
	sim.RunFor(2 * time.Second)
	if serverConn.State() != Closed {
		t.Fatalf("server state = %v, want CLOSED", serverConn.State())
	}
}

func TestDuplicateSynGetsSynAckAgain(t *testing.T) {
	sim, p, _, srv := pair(t, Linux44(), Linux44())
	echoServer(srv, 80)
	synacks := 0
	p.Client = netem.EndpointFunc(func(pkt *packet.Packet) {
		if pkt.TCP != nil && pkt.TCP.HasFlag(packet.FlagSYN) && pkt.TCP.HasFlag(packet.FlagACK) {
			synacks++
		}
	})
	syn := packet.NewTCP(cliAddr, 4444, srvAddr, 80, packet.FlagSYN, 100, 0, nil)
	p.SendFromClient(syn.Clone())
	sim.RunFor(50 * time.Millisecond)
	p.SendFromClient(syn.Clone()) // retransmitted SYN
	sim.RunFor(50 * time.Millisecond)
	if synacks < 2 {
		t.Fatalf("SYN/ACKs = %d, want ≥2 (re-ACK on duplicate SYN)", synacks)
	}
}

func TestChallengeAckOnInWindowRST(t *testing.T) {
	sim, p, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	var challenge *packet.Packet
	p.Client = netem.EndpointFunc(func(pkt *packet.Packet) {
		if pkt.TCP != nil && pkt.TCP.FlagsOnly(packet.FlagACK) {
			challenge = pkt
		}
		cli.Deliver(pkt)
	})
	rst := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagRST, sc.RcvNxt().Add(5), 0, nil)
	p.SendFromClient(rst)
	sim.RunFor(time.Second)
	if sc.State() != Established {
		t.Fatalf("server state = %v after in-window RST", sc.State())
	}
	if challenge == nil {
		t.Fatal("no challenge ACK emitted")
	}
	if challenge.TCP.Ack != c.SndNxt() {
		t.Fatalf("challenge ack = %d, want %d", challenge.TCP.Ack, c.SndNxt())
	}
}

func TestPAWSTimestampWrap(t *testing.T) {
	// A timestamp that wrapped around zero must still count as newer
	// (modular comparison), not trip PAWS.
	view := ConnView{
		State: Established, RcvNxt: 1000, RcvWnd: 29200,
		SndUna: 1, SndNxt: 1, TSRecent: 0xfffffff0, HasTSRecent: true,
	}
	pkt := packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagPSH|packet.FlagACK, 1000, 1, []byte("x"))
	pkt.TCP.Options = append(pkt.TCP.Options, packet.TimestampOption(5, 0)) // wrapped forward
	pkt.Finalize()
	if d := Classify(Linux44(), view, pkt); d.Verdict != Accept {
		t.Fatalf("wrapped timestamp: %+v", d)
	}
	old := packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagPSH|packet.FlagACK, 1000, 1, []byte("x"))
	old.TCP.Options = append(old.TCP.Options, packet.TimestampOption(0xffffff00, 0)) // genuinely older
	old.Finalize()
	if d := Classify(Linux44(), view, old); d.Verdict != IgnoreWithAck || d.Reason != "timestamp-too-old" {
		t.Fatalf("older timestamp: %+v", d)
	}
}

func TestUDPPortsIndependentOfTCP(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	echoServer(srv, 80) // TCP listener on 80
	var gotUDP []byte
	srv.ListenUDP(80, func(src packet.Addr, sp uint16, payload []byte) {
		gotUDP = payload
		srv.SendUDP(80, src, sp, []byte("pong"))
	})
	var reply []byte
	cli.ListenUDP(7000, func(src packet.Addr, sp uint16, payload []byte) { reply = payload })
	cli.SendUDP(7000, srvAddr, 80, []byte("ping"))
	sim.RunFor(time.Second)
	if string(gotUDP) != "ping" || string(reply) != "pong" {
		t.Fatalf("udp exchange: %q %q", gotUDP, reply)
	}
}

func TestListenerIgnoresMD5AndBadChecksumSyn(t *testing.T) {
	sim, p, _, srv := pair(t, Linux44(), Linux44())
	echoServer(srv, 80)
	accepted := 0
	srv.Listen(81, func(c *Conn) { accepted++ })
	md5syn := packet.NewTCP(cliAddr, 5000, srvAddr, 81, packet.FlagSYN, 1, 0, nil)
	md5syn.TCP.Options = append(md5syn.TCP.Options, packet.MD5Option([16]byte{9}))
	md5syn.Finalize()
	p.SendFromClient(md5syn)
	badck := packet.NewTCP(cliAddr, 5001, srvAddr, 81, packet.FlagSYN, 1, 0, nil)
	badck.TCP.Checksum ^= 0xff
	p.SendFromClient(badck)
	sim.RunFor(time.Second)
	if accepted != 0 {
		t.Fatalf("listener accepted %d crafted SYNs", accepted)
	}
}

func TestAbortReasonAndReceivedAccessors(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	if a, p := c.RemoteAddr(); a != srvAddr || p != 80 {
		t.Fatalf("RemoteAddr = %v:%d", a, p)
	}
	if c.ISS() == 0 && c.SndNxt() == 0 {
		t.Fatal("sequence accessors broken")
	}
	c.Abort()
	sim.RunFor(time.Second)
	if c.AbortReason != "local-abort" {
		t.Fatalf("reason = %q", c.AbortReason)
	}
	if !sc.GotRST {
		t.Fatal("peer should record the RST")
	}
}

func TestSenderRespectsPeerWindow(t *testing.T) {
	sim, p, cli, srv := pair(t, Linux44(), Linux44())
	var serverConn *Conn
	srv.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnData = func([]byte) {}
	})
	c := cli.Connect(srvAddr, 80)
	sim.RunFor(time.Second)
	// Track the maximum unacknowledged bytes ever in flight.
	maxInflight := 0
	p.Trace = func(ev netem.TraceEvent) {
		if ev.Event == "send" && ev.Where == "client" && ev.Pkt.TCP != nil {
			if in := int(ev.Pkt.EndSeq().Diff(c.sndUna)); in > maxInflight {
				maxInflight = in
			}
		}
	}
	payload := make([]byte, 200*1024)
	c.Write(payload)
	sim.RunFor(time.Minute)
	if len(serverConn.Received()) != len(payload) {
		t.Fatalf("delivered %d/%d", len(serverConn.Received()), len(payload))
	}
	limit := srv.Profile.WindowSize + srv.Profile.MSS
	if maxInflight > limit {
		t.Fatalf("inflight peaked at %d, window is %d", maxInflight, srv.Profile.WindowSize)
	}
}

func TestCloseAfterQueuedDataFlushes(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	var serverConn *Conn
	srv.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnData = func([]byte) {}
	})
	c := cli.Connect(srvAddr, 80)
	sim.RunFor(time.Second)
	big := make([]byte, 100*1024)
	c.Write(big)
	c.Close() // must not cut off queued data
	sim.RunFor(time.Minute)
	if len(serverConn.Received()) != len(big) {
		t.Fatalf("delivered %d/%d after Close", len(serverConn.Received()), len(big))
	}
	if serverConn.State() != CloseWait && serverConn.State() != Closed {
		t.Fatalf("server state = %v, want FIN seen", serverConn.State())
	}
}
