package tcpstack

import (
	"bytes"
	"testing"
	"time"

	"intango/internal/netem"
	"intango/internal/packet"
)

var (
	cliAddr = packet.AddrFrom4(10, 0, 0, 1)
	srvAddr = packet.AddrFrom4(203, 0, 113, 80)
)

// pair builds client and server stacks joined by a 3-hop path.
func pair(t *testing.T, cliProf, srvProf Profile) (*netem.Simulator, *netem.Path, *Stack, *Stack) {
	t.Helper()
	sim := netem.NewSimulator(7)
	p := &netem.Path{Sim: sim}
	for i := 0; i < 3; i++ {
		p.Hops = append(p.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	p.ClientLink.Latency = time.Millisecond
	cli := NewStack(cliAddr, cliProf, sim)
	srv := NewStack(srvAddr, srvProf, sim)
	cli.AttachClient(p)
	srv.AttachServer(p)
	return sim, p, cli, srv
}

// echoServer installs a listener that echoes received data back.
func echoServer(srv *Stack, port uint16) {
	srv.Listen(port, func(c *Conn) {
		c.OnData = func(data []byte) { c.Write(data) }
	})
}

func TestHandshakeAndEcho(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	echoServer(srv, 80)
	c := cli.Connect(srvAddr, 80)
	sim.Run(1000)
	if c.State() != Established {
		t.Fatalf("client state = %v", c.State())
	}
	c.Write([]byte("hello state machines"))
	sim.Run(1000)
	if got := string(c.Received()); got != "hello state machines" {
		t.Fatalf("echo = %q", got)
	}
	sc, ok := srv.Conn(80, cliAddr, c.LocalPort())
	if !ok || sc.State() != Established {
		t.Fatalf("server conn state: %v ok=%v", sc, ok)
	}
}

func TestHandshakeAcrossProfiles(t *testing.T) {
	for _, prof := range AllProfiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			sim, _, cli, srv := pair(t, Linux44(), prof)
			echoServer(srv, 80)
			c := cli.Connect(srvAddr, 80)
			c.OnData = func([]byte) {}
			sim.Run(1000)
			c.Write([]byte("ping"))
			sim.Run(1000)
			if got := string(c.Received()); got != "ping" {
				t.Fatalf("%s: echo = %q", prof.Name, got)
			}
		})
	}
}

func TestRetransmissionOnLoss(t *testing.T) {
	sim, p, cli, srv := pair(t, Linux44(), Linux44())
	echoServer(srv, 80)
	// Lose 30% of packets on the client link; retransmission must
	// still complete the exchange.
	p.ClientLink.LossRate = 0.3
	c := cli.Connect(srvAddr, 80)
	sim.RunFor(10 * time.Second)
	if c.State() != Established {
		t.Fatalf("client state = %v", c.State())
	}
	c.Write([]byte("lossy"))
	sim.RunFor(20 * time.Second)
	if got := string(c.Received()); got != "lossy" {
		t.Fatalf("echo over loss = %q", got)
	}
}

func TestRetransmissionGivesUp(t *testing.T) {
	sim, p, cli, _ := pair(t, Linux44(), Linux44())
	p.ClientLink.LossRate = 1.0
	c := cli.Connect(srvAddr, 80)
	sim.RunFor(2 * time.Minute)
	if c.State() != Closed {
		t.Fatalf("state = %v, want CLOSED after retry limit", c.State())
	}
	if c.AbortReason != "retransmission-limit" {
		t.Fatalf("reason = %q", c.AbortReason)
	}
}

func TestOrderlyClose(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	var serverConn *Conn
	srv.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnData = func(data []byte) {
			c.Write([]byte("bye"))
			c.Close()
		}
	})
	c := cli.Connect(srvAddr, 80)
	sim.Run(1000)
	c.Write([]byte("x"))
	sim.Run(1000)
	if string(c.Received()) != "bye" {
		t.Fatalf("received %q", c.Received())
	}
	if c.State() != CloseWait {
		t.Fatalf("client state = %v, want CLOSE_WAIT", c.State())
	}
	c.Close()
	sim.Run(1000)
	if serverConn.State() != Closed {
		t.Fatalf("server state = %v", serverConn.State())
	}
}

func TestRSTFromPeerTearsDown(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	var serverConn *Conn
	srv.Listen(80, func(c *Conn) { serverConn = c })
	c := cli.Connect(srvAddr, 80)
	sim.Run(1000)
	c.Abort()
	sim.Run(1000)
	if serverConn.State() != Closed || !serverConn.GotRST {
		t.Fatalf("server state=%v gotRST=%v", serverConn.State(), serverConn.GotRST)
	}
}

func TestConnectToClosedPortGetsRST(t *testing.T) {
	sim, _, cli, _ := pair(t, Linux44(), Linux44())
	c := cli.Connect(srvAddr, 81)
	sim.Run(1000)
	if c.State() != Closed || !c.GotRST {
		t.Fatalf("state=%v gotRST=%v", c.State(), c.GotRST)
	}
}

func TestListenSynAckDrawsRST(t *testing.T) {
	// §5.2 TCB Reversal: a SYN/ACK to a LISTEN port draws a RST whose
	// seq comes from the ack field.
	sim, p, _, srv := pair(t, Linux44(), Linux44())
	echoServer(srv, 80)
	var got *packet.Packet
	p.Client = netem.EndpointFunc(func(pkt *packet.Packet) { got = pkt })
	synack := packet.NewTCP(cliAddr, 9999, srvAddr, 80, packet.FlagSYN|packet.FlagACK, 1000, 2000, nil)
	p.SendFromClient(synack)
	sim.Run(1000)
	if got == nil || !got.TCP.FlagsOnly(packet.FlagRST) {
		t.Fatalf("want bare RST, got %v", got)
	}
	if got.TCP.Seq != 2000 {
		t.Fatalf("RST seq = %d, want 2000 (the offending ack)", got.TCP.Seq)
	}
}

// establish returns an established client conn plus the server conn.
func establish(t *testing.T, sim *netem.Simulator, cli, srv *Stack) (*Conn, *Conn) {
	t.Helper()
	var serverConn *Conn
	srv.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnData = func([]byte) {}
	})
	c := cli.Connect(srvAddr, 80)
	sim.Run(1000)
	if c.State() != Established || serverConn == nil || serverConn.State() != Established {
		t.Fatalf("handshake failed: cli=%v", c.State())
	}
	return c, serverConn
}

// classify runs Classify against a live conn's view.
func classify(c *Conn, pkt *packet.Packet) Disposition {
	return Classify(c.stack.Profile, c.view(), pkt)
}

func TestDispositionBadChecksum(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	pkt := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, c.SndNxt(), c.RcvNxt(), []byte("junk"))
	pkt.TCP.Checksum ^= 0xbeef
	d := classify(sc, pkt)
	if d.Verdict != Ignore || d.Reason != "tcp-checksum-incorrect" {
		t.Fatalf("disposition = %+v", d)
	}
}

func TestDispositionMD5(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	pkt := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, c.SndNxt(), c.RcvNxt(), []byte("junk"))
	pkt.TCP.Options = append(pkt.TCP.Options, packet.MD5Option([16]byte{1}))
	pkt.Finalize()
	if d := classify(sc, pkt); d.Verdict != Ignore || d.Reason != "unsolicited-md5-option" {
		t.Fatalf("linux-4.4 disposition = %+v", d)
	}
	// Linux 2.4.37 has no RFC 2385 support: the packet is processed.
	old := Linux2437()
	if d := Classify(old, sc.view(), pkt); d.Verdict != Accept {
		t.Fatalf("linux-2.4.37 disposition = %+v", d)
	}
}

func TestDispositionNoFlags(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	pkt := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80, 0, c.SndNxt(), 0, []byte("junk"))
	if d := classify(sc, pkt); d.Verdict != Ignore || d.Reason != "no-tcp-flags" {
		t.Fatalf("4.4 disposition = %+v", d)
	}
	// Old stacks accept flagless data (§5.3) — the reason in-order
	// prefill with no-flag insertion packets fails against them.
	if d := Classify(Linux2634(), sc.view(), pkt); d.Verdict != Accept {
		t.Fatalf("2.6.34 disposition = %+v", d)
	}
}

func TestDispositionFINOnly(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	pkt := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80, packet.FlagFIN, c.SndNxt(), 0, nil)
	if d := classify(sc, pkt); d.Verdict != Ignore || d.Reason != "missing-ack-flag" {
		t.Fatalf("disposition = %+v", d)
	}
}

func TestDispositionBadAck(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	pkt := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, c.SndNxt(), sc.SndNxt().Add(99999), []byte("junk"))
	if d := classify(sc, pkt); d.Verdict != IgnoreWithAck || d.Reason != "ack-for-unsent-data" {
		t.Fatalf("disposition = %+v", d)
	}
}

func TestDispositionOldTimestamp(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	sim.RunFor(5 * time.Second) // let the timestamp clock advance
	c.Write([]byte("a"))
	sim.Run(1000)
	pkt := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, c.SndNxt(), c.RcvNxt(), []byte("junk"))
	pkt.TCP.Options = append(pkt.TCP.Options, packet.TimestampOption(1, 0)) // ancient
	pkt.Finalize()
	if d := classify(sc, pkt); d.Verdict != IgnoreWithAck || d.Reason != "timestamp-too-old" {
		t.Fatalf("disposition = %+v", d)
	}
}

func TestDispositionLyingIPLength(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	pkt := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, c.SndNxt(), c.RcvNxt(), []byte("junk"))
	pkt.IP.TotalLength += 100
	if d := classify(sc, pkt); d.Verdict != Ignore || d.Reason != "ip-total-length-exceeds-actual" {
		t.Fatalf("disposition = %+v", d)
	}
}

func TestDispositionShortTCPHeader(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	pkt := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagACK, c.SndNxt(), c.RcvNxt(), []byte("junk"))
	pkt.TCP.RawDataOffset = 4
	if d := classify(sc, pkt); d.Verdict != Ignore || d.Reason != "tcp-header-length-under-20" {
		t.Fatalf("disposition = %+v", d)
	}
}

func TestDispositionRSTPolicies(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	inWindow := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagRST, sc.RcvNxt().Add(100), 0, nil)
	if d := classify(sc, inWindow); d.Verdict != IgnoreWithAck {
		t.Fatalf("4.4 in-window RST: %+v", d)
	}
	exact := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagRST, sc.RcvNxt(), 0, nil)
	if d := classify(sc, exact); d.Verdict != AbortConn {
		t.Fatalf("4.4 exact RST: %+v", d)
	}
	// Pre-RFC-5961: any in-window RST aborts.
	if d := Classify(Linux2634(), sc.view(), inWindow); d.Verdict != AbortConn {
		t.Fatalf("2.6.34 in-window RST: %+v", d)
	}
	outOfWindow := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagRST, sc.RcvNxt().Add(1<<20), 0, nil)
	if d := Classify(Linux2634(), sc.view(), outOfWindow); d.Verdict != Ignore {
		t.Fatalf("2.6.34 out-of-window RST: %+v", d)
	}
}

func TestDispositionSYNInEstablished(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	inWindow := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagSYN, sc.RcvNxt().Add(10), 0, nil)
	outOfWindow := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagSYN, sc.RcvNxt().Add(1<<20), 0, nil)
	if d := classify(sc, inWindow); d.Verdict != IgnoreWithAck || d.Reason != "syn-challenge-ack" {
		t.Fatalf("4.4: %+v", d)
	}
	if d := Classify(Linux314(), sc.view(), inWindow); d.Verdict != Ignore {
		t.Fatalf("3.14: %+v", d)
	}
	if d := Classify(Linux2634(), sc.view(), inWindow); d.Verdict != AbortConn {
		t.Fatalf("2.6.34 in-window: %+v", d)
	}
	if d := Classify(Linux2634(), sc.view(), outOfWindow); d.Verdict != Ignore {
		t.Fatalf("2.6.34 out-of-window: %+v", d)
	}
	_ = c
}

func TestDispositionRSTACKBadAckInSynRecv(t *testing.T) {
	// Table 3 row 4: SYN_RECV + RST/ACK with wrong ack is ignored.
	sim := netem.NewSimulator(3)
	view := ConnView{State: SynRecv, RcvNxt: 1000, RcvWnd: 29200, SndUna: 500, SndNxt: 501}
	pkt := packet.NewTCP(cliAddr, 1, srvAddr, 80, packet.FlagRST|packet.FlagACK, 1000, 999999, nil)
	if d := Classify(Linux44(), view, pkt); d.Verdict != Ignore || d.Reason != "rstack-bad-ack-in-syn-recv" {
		t.Fatalf("disposition = %+v", d)
	}
	good := packet.NewTCP(cliAddr, 1, srvAddr, 80, packet.FlagRST|packet.FlagACK, 1000, 501, nil)
	if d := Classify(Linux44(), view, good); d.Verdict != AbortConn {
		t.Fatalf("good rst/ack = %+v", d)
	}
	_ = sim
}

func TestOutOfWindowDataDrawsDupAckOnly(t *testing.T) {
	// The desynchronization insertion packet (§5.1) must leave a real
	// server's state untouched, drawing only a duplicate ACK.
	sim, p, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	before := sc.RcvNxt()
	var acks int
	p.Client = netem.EndpointFunc(func(pkt *packet.Packet) {
		if pkt.TCP != nil && pkt.TCP.FlagsOnly(packet.FlagACK) {
			acks++
		}
		cli.Deliver(pkt)
	})
	desync := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, c.SndNxt().Add(1<<20), c.RcvNxt(), []byte("z"))
	p.SendFromClient(desync)
	sim.Run(1000)
	if sc.RcvNxt() != before {
		t.Fatal("server state moved on out-of-window data")
	}
	if acks == 0 {
		t.Fatal("expected a duplicate ACK")
	}
	// The connection still works.
	c.Write([]byte("still fine"))
	sim.Run(1000)
	if !bytes.Equal(sc.Received(), []byte("still fine")) {
		t.Fatalf("server received %q", sc.Received())
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	sim, p, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	// Send segment B (seq+5) before segment A (seq).
	seq := c.SndNxt()
	segB := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, seq.Add(5), c.RcvNxt(), []byte("world"))
	segA := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, seq, c.RcvNxt(), []byte("hello"))
	p.SendFromClient(segB)
	p.SendFromClient(segA)
	sim.Run(1000)
	if got := string(sc.Received()); got != "helloworld" {
		t.Fatalf("reassembled %q", got)
	}
}

func TestSegmentOverlapFirstWins(t *testing.T) {
	// Linux keeps already-queued data: send junk at seq+5 first, then
	// the real data at the same range — the junk survives.
	sim, p, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)
	seq := c.SndNxt()
	junk := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, seq.Add(5), c.RcvNxt(), []byte("JUNK!"))
	real := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, seq.Add(5), c.RcvNxt(), []byte("real!"))
	head := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80,
		packet.FlagPSH|packet.FlagACK, seq, c.RcvNxt(), []byte("abcde"))
	p.SendFromClient(junk)
	p.SendFromClient(real)
	p.SendFromClient(head)
	sim.Run(1000)
	if got := string(sc.Received()); got != "abcdeJUNK!" {
		t.Fatalf("first-wins got %q", got)
	}
}

func TestForgedSynAckDisruptsHandshake(t *testing.T) {
	// During the GFW's 90-second blocking period it answers SYNs with a
	// forged SYN/ACK carrying a wrong sequence number. The client
	// accepts it (the ack is right), desynchronizing it from the real
	// server — the legitimate handshake is obstructed (§2.1).
	sim, p, cli, srv := pair(t, Linux44(), Linux44())
	echoServer(srv, 80)
	var clientConn *Conn
	// Forge at hop 1: respond to the SYN before the server can.
	forge := processorFunc(func(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
		if dir == netem.ToServer && pkt.TCP != nil && pkt.TCP.FlagsOnly(packet.FlagSYN) {
			f := packet.NewTCP(pkt.IP.Dst, pkt.TCP.DstPort, pkt.IP.Src, pkt.TCP.SrcPort,
				packet.FlagSYN|packet.FlagACK, 0xdeadbeef, pkt.TCP.Seq.Add(1), nil)
			ctx.Inject(netem.ToClient, f, 0)
		}
		return netem.Pass
	})
	p.Hops[1].Processors = []netem.Processor{forge}
	clientConn = cli.Connect(srvAddr, 80)
	sim.Run(2000)
	// Client is "established" against a phantom; write data and observe
	// no echo arrives (server ignores out-of-sync data, sends
	// challenge ACKs).
	clientConn.Write([]byte("GET /"))
	sim.RunFor(5 * time.Second)
	if len(clientConn.Received()) != 0 {
		t.Fatalf("client should not receive echo, got %q", clientConn.Received())
	}
}

type processorFunc func(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict

func (processorFunc) Name() string { return "test-proc" }
func (f processorFunc) Process(ctx *netem.Context, pkt *packet.Packet, dir netem.Direction) netem.Verdict {
	return f(ctx, pkt, dir)
}

func TestObserveHookSeesDispositions(t *testing.T) {
	sim, p, cli, srv := pair(t, Linux44(), Linux44())
	var reasons []string
	srv.Observe = func(c *Conn, pkt *packet.Packet, d Disposition) {
		reasons = append(reasons, d.Reason)
	}
	c, _ := establish(t, sim, cli, srv)
	bad := packet.NewTCP(cliAddr, c.LocalPort(), srvAddr, 80, 0, c.SndNxt(), 0, []byte("x"))
	p.SendFromClient(bad)
	sim.Run(1000)
	found := false
	for _, r := range reasons {
		if r == "no-tcp-flags" {
			found = true
		}
	}
	if !found {
		t.Fatalf("observe hook missed the flagless packet: %v", reasons)
	}
}

func TestStateStrings(t *testing.T) {
	states := []State{Closed, SynSent, SynRecv, Established, FinWait1, FinWait2, CloseWait, LastAck, Closing, TimeWait}
	seen := map[string]bool{}
	for _, s := range states {
		str := s.String()
		if str == "?" || seen[str] {
			t.Fatalf("bad or duplicate state string %q", str)
		}
		seen[str] = true
	}
	if Verdict(99).String() != "?" {
		t.Fatal("unknown verdict string")
	}
}
