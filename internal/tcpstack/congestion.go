package tcpstack

import (
	"math"
	"time"

	"intango/internal/packet"
)

// This file is the sender side of congestion control, layered on the
// retransmission machinery in conn.go: slow start and congestion
// avoidance (Reno or CUBIC per profile), fast retransmit/fast
// recovery on three duplicate ACKs (RFC 5681/6582), RTT-sampled
// retransmission timeouts (RFC 6298), and the persist timer that
// probes a peer's closed receive window. None of it matters on an
// unconstrained link — the initial window dwarfs the request/response
// exchanges of the evasion campaigns — but on a rated link (netem
// `bw=`) it is what turns duplicate/reorder primitives into a
// measurable goodput cost.

// CongestionAlgo selects the sender-side congestion control
// algorithm.
type CongestionAlgo int

const (
	// CongestionCubic is the Linux default since 2.6.19 (RFC 8312
	// shape: cubic growth toward the pre-loss window).
	CongestionCubic CongestionAlgo = iota
	// CongestionReno is classic AIMD (RFC 5681): halve on loss, one
	// MSS per RTT in congestion avoidance.
	CongestionReno
)

// String names the algorithm.
func (a CongestionAlgo) String() string {
	if a == CongestionReno {
		return "reno"
	}
	return "cubic"
}

// CUBIC constants (RFC 8312): beta is the multiplicative decrease,
// cubicC the aggressiveness of the cubic growth term.
const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

// initialSsthresh is effectively infinite: slow start until the first
// loss event.
const initialSsthresh = 1 << 30

// initCongestion seeds the congestion state of a new connection:
// IW10 (RFC 6928) and an unbounded slow-start threshold.
func (c *Conn) initCongestion() {
	c.cwnd = 10 * c.stack.Profile.MSS
	c.ssthresh = initialSsthresh
}

// sndWnd is the effective send window: the peer's advertised window
// capped by the congestion window.
func (c *Conn) sndWnd() int {
	return min(c.peerWnd, c.cwnd)
}

// isDupAck applies the strict RFC 5681 definition: a pure ACK (no
// payload, no SYN/FIN) that acknowledges nothing new while data is
// outstanding and the advertised window is unchanged. Challenge ACKs
// elicited by insertion packets mostly fail the window/outstanding
// tests, which keeps spurious fast retransmits out of the campaigns.
func (c *Conn) isDupAck(tcp *packet.TCPHeader, payloadLen, prevWnd int) bool {
	return payloadLen == 0 &&
		tcp.HasFlag(packet.FlagACK) &&
		tcp.Flags&(packet.FlagSYN|packet.FlagFIN) == 0 &&
		len(c.retx) > 0 &&
		tcp.Ack == c.sndUna &&
		int(tcp.Window) == prevWnd
}

// onDupAck counts duplicate ACKs and runs fast retransmit / fast
// recovery (RFC 6582 NewReno shape: recovery ends when the ACK
// covers everything outstanding at loss detection).
func (c *Conn) onDupAck() {
	mss := c.stack.Profile.MSS
	if c.inRecovery {
		// Each further dup ACK signals another departed segment:
		// inflate so new data can go out.
		c.cwnd += mss
		c.pump()
		return
	}
	c.dupAcks++
	if c.dupAcks < 3 {
		return
	}
	c.enterRecovery()
}

// enterRecovery halves per the profile's algorithm, fast-retransmits
// the oldest outstanding segment, and inflates by the three segments
// the dup ACKs signalled.
func (c *Conn) enterRecovery() {
	mss := c.stack.Profile.MSS
	c.ssthresh = c.ssthreshOnLoss()
	c.recover = c.sndNxt
	c.inRecovery = true
	c.cwnd = c.ssthresh + 3*mss
	seg := &c.retx[0]
	if c.stack.Obs != nil {
		c.stack.Obs.Count("tcpstack.fast-retransmit")
		c.stack.Obs.Trace("tcpstack", "fast-retransmit", uint32(seg.seq), seg.flags, "")
	}
	c.rttTiming = false // Karn: never time a retransmitted segment
	c.transmit(seg.flags, seg.seq, c.rcvNxt, seg.data)
	c.armRetx()
}

// onAckAdvance updates congestion state for acked new bytes; called
// from ackAdvance before the send window reopens.
func (c *Conn) onAckAdvance(ack packet.Seq, acked int) {
	mss := c.stack.Profile.MSS
	c.dupAcks = 0
	if c.inRecovery {
		if !ack.AtOrAfter(c.recover) {
			// Partial ACK: retransmit the next hole, stay in recovery
			// with the window deflated by what was acked.
			if len(c.retx) > 0 {
				seg := &c.retx[0]
				c.rttTiming = false
				c.transmit(seg.flags, seg.seq, c.rcvNxt, seg.data)
				c.armRetx()
			}
			c.cwnd = max(c.cwnd-acked+mss, mss)
			return
		}
		c.inRecovery = false
		c.cwnd = c.ssthresh
		return
	}
	if c.cwnd < c.ssthresh {
		// Slow start with appropriate byte counting (RFC 3465).
		c.cwnd += min(acked, mss)
		return
	}
	c.avoidanceAck(acked)
}

// onRetxTimeout is the congestion half of an RTO: collapse to one
// segment and restart slow start toward half the flight (RFC 5681
// §3.1, or the CUBIC equivalent).
func (c *Conn) onRetxTimeout() {
	c.ssthresh = c.ssthreshOnLoss()
	c.cwnd = c.stack.Profile.MSS
	c.inRecovery = false
	c.dupAcks = 0
	c.rttTiming = false
}

// ssthreshOnLoss applies the profile's multiplicative decrease and,
// for CUBIC, records the pre-loss window as the new plateau.
func (c *Conn) ssthreshOnLoss() int {
	mss := c.stack.Profile.MSS
	inflight := int(c.sndNxt.Diff(c.sndUna))
	if c.stack.Profile.Congestion == CongestionReno {
		return max(inflight/2, 2*mss)
	}
	c.cubicWMax = float64(max(c.cwnd, inflight))
	c.cubicEpoch = 0 // next avoidance ACK starts a fresh epoch
	return max(int(float64(c.cwnd)*cubicBeta), 2*mss)
}

// avoidanceAck grows cwnd in congestion avoidance: classic AIMD for
// Reno, the RFC 8312 cubic curve toward (and past) the pre-loss
// plateau for CUBIC. CUBIC's float arithmetic never leaves this
// function — cwnd stays an integer byte count, and the same binary
// computes the same window everywhere, so campaign determinism is
// unaffected.
func (c *Conn) avoidanceAck(acked int) {
	mss := c.stack.Profile.MSS
	if c.stack.Profile.Congestion == CongestionReno {
		c.cwnd += max(mss*mss/c.cwnd, 1)
		return
	}
	now := c.stack.Sim.Now()
	if c.cubicEpoch == 0 {
		c.cubicEpoch = now
		if c.cubicWMax < float64(c.cwnd) {
			c.cubicWMax = float64(c.cwnd)
		}
		wm := c.cubicWMax / float64(mss)
		c.cubicK = math.Cbrt(wm * (1 - cubicBeta) / cubicC)
	}
	t := (now - c.cubicEpoch).Seconds()
	wCubic := cubicC*math.Pow(t-c.cubicK, 3) + c.cubicWMax/float64(mss)
	target := int(wCubic * float64(mss))
	if target <= c.cwnd {
		return
	}
	step := (target - c.cwnd) * mss / c.cwnd
	if step < 1 {
		step = 1
	}
	if step > mss {
		step = mss // at most one MSS per ACK, like the kernel
	}
	c.cwnd += step
}

// sampleRTT folds one round-trip measurement into the RFC 6298
// smoothed estimator.
func (c *Conn) sampleRTT(r time.Duration) {
	if r <= 0 {
		r = time.Nanosecond
	}
	if c.srtt == 0 {
		c.srtt = r
		c.rttvar = r / 2
		return
	}
	d := c.srtt - r
	if d < 0 {
		d = -d
	}
	c.rttvar = (3*c.rttvar + d) / 4
	c.srtt = (7*c.srtt + r) / 8
}

// currentRTO is the RFC 6298 estimate srtt + 4·rttvar clamped to
// [MinRTO, MaxRTO], or InitialRTO before the first sample. The
// 200ms MinRTO floor matches Linux; at simulated RTTs it always
// binds, so sampled RTOs reproduce the old fixed InitialRTO timing
// exactly.
func (c *Conn) currentRTO() time.Duration {
	if c.srtt == 0 {
		return c.stack.InitialRTO
	}
	rto := c.srtt + 4*c.rttvar
	if rto < c.stack.MinRTO {
		rto = c.stack.MinRTO
	}
	if c.stack.MaxRTO > 0 && rto > c.stack.MaxRTO {
		rto = c.stack.MaxRTO
	}
	return rto
}

// armPersist starts the zero-window probe timer (RFC 9293 §3.8.6.1)
// if it is not already running. The probe interval starts at the
// current RTO and doubles up to MaxRTO while the window stays closed.
func (c *Conn) armPersist() {
	if c.persistArmed {
		return
	}
	c.persistArmed = true
	if c.persistRTO == 0 {
		c.persistRTO = c.currentRTO()
	}
	c.persistTimer++
	gen := c.persistTimer
	c.stack.Sim.At(c.persistRTO, func() { c.onPersistTimer(gen) })
}

// onPersistTimer fires while the peer's window is closed: when
// nothing is outstanding (the retransmit timer covers the case when
// something is), it transmits one byte of queued data — a window
// probe that elicits an ACK carrying the peer's current window. The
// byte counts as sent (sndNxt advances, so the eventual ACK passes
// acknowledgment-number validation) but is kept out of the
// retransmission queue: re-probing is the persist timer's job, with
// its own backoff and no MaxRetries escalation, so a long-closed
// window never aborts the connection.
func (c *Conn) onPersistTimer(gen int) {
	if gen != c.persistTimer || c.state == Closed {
		return
	}
	c.persistArmed = false
	if c.peerWnd > 0 || (!c.probeOut && len(c.sendBuf) == 0) {
		c.persistRTO = 0
		return
	}
	if len(c.retx) == 0 {
		if !c.probeOut {
			c.probeOut = true
			c.probeSeq = c.sndNxt
			c.probeData = c.sendBuf[0]
			c.sendBuf = c.sendBuf[1:]
			c.sndNxt = c.sndNxt.Add(1)
		}
		if c.stack.Obs != nil {
			c.stack.Obs.Count("tcpstack.zero-window-probe")
			c.stack.Obs.Trace("tcpstack", "zero-window-probe", uint32(c.probeSeq), 0, "")
		}
		c.transmit(packet.FlagPSH|packet.FlagACK, c.probeSeq, c.rcvNxt, []byte{c.probeData})
	}
	c.persistRTO *= 2
	if c.stack.MaxRTO > 0 && c.persistRTO > c.stack.MaxRTO {
		c.persistRTO = c.stack.MaxRTO
	}
	c.armPersist()
}

// exitPersist cancels the probe timer once the window reopens. An
// unacknowledged probe byte is handed to the retransmission queue:
// from here on ordinary recovery covers it, so a lost probe cannot
// leave a one-byte hole in front of newly pumped data.
func (c *Conn) exitPersist() {
	if c.probeOut && !c.sndUna.After(c.probeSeq) {
		c.retx = append([]outSeg{{
			seq:   c.probeSeq,
			data:  []byte{c.probeData},
			flags: packet.FlagPSH | packet.FlagACK,
		}}, c.retx...)
		c.probeOut = false
		c.armRetx()
	}
	if !c.persistArmed && c.persistRTO == 0 {
		return
	}
	c.persistTimer++
	c.persistArmed = false
	c.persistRTO = 0
}
