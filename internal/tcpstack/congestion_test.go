package tcpstack

import (
	"bytes"
	"testing"
	"time"

	"intango/internal/netem"
	"intango/internal/obs"
	"intango/internal/packet"
)

// TestRetxTimerAnchorsOldestSegment is the regression test for the
// re-arm bug: armRetx used to restart the timer on every sendData, so
// a steady stream of writes pushed the oldest unacked segment's RTO
// out indefinitely. The timer must stay anchored to the oldest
// outstanding segment.
func TestRetxTimerAnchorsOldestSegment(t *testing.T) {
	sim, p, cli, srv := pair(t, Linux44(), Linux44())
	c, sc := establish(t, sim, cli, srv)

	// Drop exactly the first data-carrying segment on its way to the
	// server; everything else is delivered.
	dropped := false
	p.Server = netem.EndpointFunc(func(pkt *packet.Packet) {
		if !dropped && pkt.TCP != nil && len(pkt.Payload) > 0 {
			dropped = true
			return
		}
		srv.Deliver(pkt)
	})

	t0 := sim.Now()
	c.Write([]byte("first-segment"))
	// Two follow-up writes inside one RTO: enough to keep re-arming
	// the buggy timer, too few dup ACKs to trigger fast retransmit.
	sim.At(50*time.Millisecond, func() { c.Write([]byte("second")) })
	sim.At(100*time.Millisecond, func() { c.Write([]byte("third")) })
	sim.RunFor(2 * time.Second)

	if got := string(sc.Received()); got != "first-segmentsecondthird" {
		t.Fatalf("server received %q", got)
	}
	if !dropped {
		t.Fatal("test never dropped a segment")
	}
	// The lost segment retransmits one RTO (200ms) after it was first
	// sent, not one RTO after the last write (300ms+).
	firstRTO := sc.FirstDataAt - t0
	if firstRTO <= 0 || firstRTO > 280*time.Millisecond {
		t.Fatalf("first in-order delivery after %v, want ~1 RTO (200ms+path)", firstRTO)
	}
}

// TestZeroWindowProbe is the regression test for the dead persist
// path: with the peer's window closed the sender must probe with one
// byte until the window reopens, then resume the transfer.
func TestZeroWindowProbe(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	cli.Obs = obs.New(obs.NewRegistry(), nil)
	c, sc := establish(t, sim, cli, srv)

	// Server closes its receive window and advertises it.
	sc.rcvWnd = 0
	sc.Write([]byte("w"))
	sim.RunFor(50 * time.Millisecond)
	if c.peerWnd != 0 {
		t.Fatalf("client peerWnd = %d, want 0", c.peerWnd)
	}

	payload := bytes.Repeat([]byte("z"), 500)
	c.Write(payload)
	sim.RunFor(300 * time.Millisecond)
	if got := sc.Received(); len(got) != 0 {
		t.Fatalf("server received %d bytes through a closed window", len(got))
	}
	if n := cli.Obs.Registry().Value("tcpstack.zero-window-probe"); n == 0 {
		t.Fatal("no zero-window probes sent while window closed")
	}

	// Reopen: the next probe's ACK advertises the window and the
	// transfer completes.
	sc.rcvWnd = srv.Profile.WindowSize
	sim.RunFor(5 * time.Second)
	if got := sc.Received(); !bytes.Equal(got, payload) {
		t.Fatalf("server received %d bytes after reopen, want %d", len(got), len(payload))
	}
}

// TestRTOBackoffCapped is the regression test for unbounded RTO
// doubling: exponential backoff must clamp at MaxRTO.
func TestRTOBackoffCapped(t *testing.T) {
	sim, p, cli, _ := pair(t, Linux44(), Linux44())
	cli.Obs = obs.New(obs.NewRegistry(), nil)
	cli.MaxRTO = time.Second
	p.ClientLink.LossRate = 1.0

	c := cli.Connect(srvAddr, 80)
	sim.RunFor(10 * time.Second)
	// Uncapped doubling from 200ms gives up after 25.4s; capped at 1s
	// it gives up inside 6s.
	if c.State() != Closed || c.AbortReason != "retransmission-limit" {
		t.Fatalf("state=%v reason=%q, want capped backoff to give up within 10s",
			c.State(), c.AbortReason)
	}
	if n := cli.Obs.Registry().Value("tcpstack.rto-capped"); n == 0 {
		t.Fatal("rto-capped counter never incremented")
	}
}

// TestFastRetransmit checks that three duplicate ACKs recover a lost
// segment without waiting out the retransmission timer.
func TestFastRetransmit(t *testing.T) {
	sim, p, cli, srv := pair(t, Linux44(), Linux44())
	cli.Obs = obs.New(obs.NewRegistry(), nil)
	c, sc := establish(t, sim, cli, srv)

	// Drop the second data segment; the following segments elicit
	// enough duplicate ACKs for fast retransmit.
	seen := 0
	p.Server = netem.EndpointFunc(func(pkt *packet.Packet) {
		if pkt.TCP != nil && len(pkt.Payload) > 0 {
			seen++
			if seen == 2 {
				return
			}
		}
		srv.Deliver(pkt)
	})

	payload := bytes.Repeat([]byte("q"), 8*cli.Profile.MSS)
	t0 := sim.Now()
	c.Write(payload)
	sim.RunFor(2 * time.Second)

	if got := sc.Received(); !bytes.Equal(got, payload) {
		t.Fatalf("server received %d bytes, want %d", len(got), len(payload))
	}
	if n := cli.Obs.Registry().Value("tcpstack.fast-retransmit"); n != 1 {
		t.Fatalf("fast-retransmit count = %d, want 1", n)
	}
	// Recovery via dup ACKs completes well inside one RTO.
	if took := sc.LastDataAt - t0; took >= 200*time.Millisecond {
		t.Fatalf("transfer took %v, want < 1 RTO (fast retransmit, not timeout)", took)
	}
}

// TestCongestionWindowLimitsFlight checks the sender respects cwnd:
// after an RTO collapses the window to one MSS, at most one segment
// is in flight until ACKs grow it back.
func TestCongestionWindowLimitsFlight(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	c, _ := establish(t, sim, cli, srv)

	c.cwnd = cli.Profile.MSS // as if an RTO just fired
	c.ssthresh = 4 * cli.Profile.MSS
	payload := bytes.Repeat([]byte("s"), 6*cli.Profile.MSS)
	c.Write(payload)
	if inflight := int(c.sndNxt.Diff(c.sndUna)); inflight > cli.Profile.MSS {
		t.Fatalf("inflight = %d after write, want <= 1 MSS", inflight)
	}
	sim.RunFor(5 * time.Second)
	sc, _ := srv.Conn(80, cliAddr, c.LocalPort())
	if got := sc.Received(); !bytes.Equal(got, payload) {
		t.Fatalf("server received %d bytes, want %d", len(got), len(payload))
	}
}

// TestRTTSamplingFeedsRTO checks RFC 6298 plumbing: after an exchange
// the connection holds a smoothed RTT and the derived RTO respects
// the configured floor.
func TestRTTSamplingFeedsRTO(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	echoServer(srv, 80)
	c := cli.Connect(srvAddr, 80)
	sim.Run(1000)
	c.Write([]byte("ping"))
	sim.Run(1000)

	if c.srtt == 0 {
		t.Fatal("no RTT sample after a completed exchange")
	}
	// Path RTT is 8ms; the smoothed estimate must be in that vicinity
	// and the RTO must sit on the MinRTO floor.
	if c.srtt > 50*time.Millisecond {
		t.Fatalf("srtt = %v, want ~8ms", c.srtt)
	}
	if got := c.currentRTO(); got != cli.MinRTO {
		t.Fatalf("currentRTO = %v, want MinRTO %v", got, cli.MinRTO)
	}
}
