package tcpstack

import (
	"bytes"
	"testing"

	"intango/internal/packet"
)

// wrapISS sits 256 bytes below 2^32, so a handshake plus any real
// transfer crosses the 32-bit sequence boundary.
const wrapISS = packet.Seq(0xFFFFFF00)

// TestTransferAcrossSeqWrap pins both endpoints' initial sequence
// numbers just below 2^32: the handshake, data transfer, ack advance,
// reassembly and orderly close all cross the wraparound. A stack with
// a plain integer comparison anywhere on those paths stalls or drops
// the transfer here.
func TestTransferAcrossSeqWrap(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	cli.ForceISS = func() packet.Seq { return wrapISS }
	srv.ForceISS = func() packet.Seq { return wrapISS }
	echoServer(srv, 80)

	c := cli.Connect(srvAddr, 80)
	sim.Run(2000)
	if c.State() != Established {
		t.Fatalf("client state = %v", c.State())
	}
	if c.ISS() != wrapISS {
		t.Fatalf("ForceISS not honored: iss = %#x", uint32(c.ISS()))
	}

	payload := bytes.Repeat([]byte("wraparound!"), 200) // 2200 bytes, far past the boundary
	c.Write(payload)
	sim.Run(20000)
	if !bytes.Equal(c.Received(), payload) {
		t.Fatalf("echo across wrap: got %d bytes, want %d", len(c.Received()), len(payload))
	}
	if uint32(c.SndNxt()) >= uint32(wrapISS) {
		t.Fatalf("send sequence never wrapped: sndNxt = %#x", uint32(c.SndNxt()))
	}

	sc, ok := srv.Conn(80, cliAddr, c.LocalPort())
	if !ok {
		t.Fatal("server conn missing")
	}
	c.Close()
	sim.Run(20000)
	if c.State() != FinWait2 || sc.State() != CloseWait {
		t.Fatalf("half-close across wrap: client %v server %v", c.State(), sc.State())
	}
	sc.Close()
	sim.Run(20000)
	if c.State() != Closed && c.State() != TimeWait {
		t.Fatalf("close across wrap stuck in %v", c.State())
	}
}

// TestListenerAcceptsAcrossSeqWrap forces the wrap on the accepting
// side's ISS and exercises the server-side path (listenSegment,
// SYN/ACK retransmit handling, FIN) around the boundary.
func TestListenerAcceptsAcrossSeqWrap(t *testing.T) {
	sim, _, cli, srv := pair(t, Linux44(), Linux44())
	srv.ForceISS = func() packet.Seq { return wrapISS }
	echoServer(srv, 80)

	c := cli.Connect(srvAddr, 80)
	sim.Run(2000)
	sc, ok := srv.Conn(80, cliAddr, c.LocalPort())
	if !ok || sc.State() != Established {
		t.Fatalf("server conn not established (ok=%v)", ok)
	}
	if sc.ISS() != wrapISS {
		t.Fatalf("server ForceISS not honored: %#x", uint32(sc.ISS()))
	}

	payload := bytes.Repeat([]byte("x"), 1024)
	c.Write(payload)
	sim.Run(20000)
	// The echo comes back numbered across the server's wrap.
	if !bytes.Equal(c.Received(), payload) {
		t.Fatalf("echo across server wrap: got %d bytes", len(c.Received()))
	}
	if uint32(sc.SndNxt()) >= uint32(wrapISS) {
		t.Fatalf("server send sequence never wrapped: %#x", uint32(sc.SndNxt()))
	}
}
