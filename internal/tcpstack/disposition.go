package tcpstack

import (
	"intango/internal/packet"
)

// Verdict is what a stack decides to do with an arriving segment before
// any state is updated.
type Verdict int

const (
	// Accept processes the segment normally.
	Accept Verdict = iota
	// Ignore silently drops the segment; connection state is untouched.
	Ignore
	// IgnoreWithAck drops the segment but emits a duplicate/challenge
	// ACK; connection state is untouched.
	IgnoreWithAck
	// AbortConn is a valid RST: the connection is torn down.
	AbortConn
	// RespondRST rejects the segment with an outgoing RST without
	// touching an established connection (e.g. an ACK to LISTEN).
	RespondRST
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Accept:
		return "accept"
	case Ignore:
		return "ignore"
	case IgnoreWithAck:
		return "ignore+ack"
	case AbortConn:
		return "abort"
	case RespondRST:
		return "respond-rst"
	default:
		return "?"
	}
}

// Disposition is a verdict plus the first reason that produced it — the
// "ignore path" taken, in the paper's terminology.
type Disposition struct {
	Verdict Verdict
	Reason  string
}

// ConnView is the connection state a disposition decision depends on.
// It is a plain value so internal/ignorepath can evaluate dispositions
// without a live connection.
type ConnView struct {
	State       State
	RcvNxt      packet.Seq
	RcvWnd      int
	SndUna      packet.Seq
	SndNxt      packet.Seq
	TSRecent    uint32
	HasTSRecent bool
	// MaxWindow bounds how old an acceptable ACK may be.
	MaxWindow int
}

// actualIPLength computes the IP total length that honestly describes
// pkt's contents.
func actualIPLength(pkt *packet.Packet) int {
	n := pkt.IP.HeaderLen() + len(pkt.Payload)
	if pkt.TCP != nil {
		n += pkt.TCP.HeaderLen()
	}
	return n
}

// Classify runs the profile's ignore-path analysis for a TCP segment
// arriving on a connection in the given state. It is the executable
// form of Table 3 (plus the baseline RFC 793/5961 rules) and is used
// both by live connections and by the ignorepath enumerator.
func Classify(prof Profile, view ConnView, pkt *packet.Packet) Disposition {
	tcp := pkt.TCP

	// Header-level checks apply in every state (Table 3 rows 1-3).
	if prof.ValidatesIPLength && int(pkt.IP.TotalLength) > actualIPLength(pkt) {
		return Disposition{Ignore, "ip-total-length-exceeds-actual"}
	}
	if tcp.RawDataOffset != 0 && tcp.RawDataOffset < 5 {
		return Disposition{Ignore, "tcp-header-length-under-20"}
	}
	if prof.ValidatesChecksum && !tcp.VerifyChecksum(pkt.IP.Src, pkt.IP.Dst, pkt.Payload) {
		return Disposition{Ignore, "tcp-checksum-incorrect"}
	}
	if prof.ValidatesMD5 && tcp.HasMD5() {
		// TCP-MD5 was never negotiated on any connection in this model,
		// so the option is always unsolicited.
		return Disposition{Ignore, "unsolicited-md5-option"}
	}

	switch view.State {
	case SynSent:
		return classifySynSent(view, pkt)
	case SynRecv, Established, FinWait1, FinWait2, CloseWait, Closing, LastAck:
		return classifySynchronized(prof, view, pkt)
	default:
		return Disposition{Ignore, "closed"}
	}
}

func classifySynSent(view ConnView, pkt *packet.Packet) Disposition {
	tcp := pkt.TCP
	ackOK := tcp.HasFlag(packet.FlagACK) && tcp.Ack == view.SndNxt
	switch {
	case tcp.HasFlag(packet.FlagRST):
		if ackOK {
			return Disposition{AbortConn, "rst-in-syn-sent"}
		}
		return Disposition{Ignore, "rst-bad-ack-in-syn-sent"}
	case tcp.HasFlag(packet.FlagSYN) && tcp.HasFlag(packet.FlagACK):
		if !ackOK {
			// RFC 793: unacceptable ACK in SYN-SENT draws a RST.
			return Disposition{RespondRST, "synack-bad-ack"}
		}
		return Disposition{Accept, "synack"}
	case tcp.HasFlag(packet.FlagACK) && !ackOK:
		return Disposition{RespondRST, "ack-bad-in-syn-sent"}
	default:
		return Disposition{Ignore, "unexpected-in-syn-sent"}
	}
}

func classifySynchronized(prof Profile, view ConnView, pkt *packet.Packet) Disposition {
	tcp := pkt.TCP

	if tcp.HasFlag(packet.FlagRST) {
		// Table 3 row 4: in SYN_RECV a RST/ACK with a wrong
		// acknowledgment number is ignored.
		if view.State == SynRecv && tcp.HasFlag(packet.FlagACK) && tcp.Ack != view.SndNxt {
			return Disposition{Ignore, "rstack-bad-ack-in-syn-recv"}
		}
		switch prof.RSTValidation {
		case RSTExactSeq:
			if tcp.Seq == view.RcvNxt {
				return Disposition{AbortConn, "rst-exact-seq"}
			}
			if tcp.Seq.InWindow(view.RcvNxt, view.RcvWnd) {
				return Disposition{IgnoreWithAck, "rst-in-window-challenge-ack"}
			}
			return Disposition{Ignore, "rst-out-of-window"}
		default: // RSTInWindow
			if tcp.Seq.InWindow(view.RcvNxt, view.RcvWnd) || tcp.Seq == view.RcvNxt {
				return Disposition{AbortConn, "rst-in-window"}
			}
			return Disposition{Ignore, "rst-out-of-window"}
		}
	}

	if tcp.HasFlag(packet.FlagSYN) {
		if view.State == SynRecv {
			// A retransmitted SYN: re-ACK it.
			return Disposition{IgnoreWithAck, "syn-retransmit"}
		}
		switch prof.SYNInEstablished {
		case SYNChallengeACK:
			return Disposition{IgnoreWithAck, "syn-challenge-ack"}
		case SYNIgnore:
			return Disposition{Ignore, "syn-ignored"}
		default: // SYNResetInWindow
			if tcp.Seq.InWindow(view.RcvNxt, view.RcvWnd) {
				return Disposition{AbortConn, "syn-in-window-reset"}
			}
			return Disposition{Ignore, "syn-out-of-window"}
		}
	}

	// Table 3 rows 7-8: packets without the ACK bit (flagless, or
	// FIN-only) are ignored by stacks that require it. Stacks that do
	// not (Linux 2.6.34 / 2.4.37, §5.3) fall through and process them.
	if !tcp.HasFlag(packet.FlagACK) && prof.RequiresACKFlag {
		if tcp.Flags == 0 {
			return Disposition{Ignore, "no-tcp-flags"}
		}
		return Disposition{Ignore, "missing-ack-flag"}
	}

	// Table 3 row 9: PAWS — a timestamp older than the latest seen.
	if prof.PAWS && view.HasTSRecent {
		if tsval, _, ok := tcp.Timestamps(); ok {
			if int32(tsval-view.TSRecent) < 0 {
				return Disposition{IgnoreWithAck, "timestamp-too-old"}
			}
		}
	}

	// Table 3 row 5: acknowledgment-number validation.
	if prof.ValidatesAckNumber && tcp.HasFlag(packet.FlagACK) {
		if tcp.Ack.After(view.SndNxt) {
			if view.State == SynRecv {
				return Disposition{Ignore, "ack-for-unsent-data"}
			}
			return Disposition{IgnoreWithAck, "ack-for-unsent-data"}
		}
		maxWnd := view.MaxWindow
		if maxWnd <= 0 {
			maxWnd = 1 << 20
		}
		if tcp.Ack.Before(view.SndUna.Add(-maxWnd)) {
			return Disposition{Ignore, "ack-too-old"}
		}
	}

	return Disposition{Accept, "acceptable"}
}
