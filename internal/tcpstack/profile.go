// Package tcpstack implements endpoint TCP: a connection state machine
// with handshake, data transfer, reassembly, retransmission, and — the
// part this study turns on — configurable packet-acceptance behaviour
// ("ignore paths") matching several generations of the Linux TCP stack.
//
// The paper derives its insertion packets from an "ignore path" analysis
// of Linux 4.4 (§5.3, Table 3) and cross-validates against 4.0, 3.14,
// 2.6.34 and 2.4.37. Each of those stacks is available here as a
// Profile; the Disposition function is the executable form of that
// analysis and is what internal/ignorepath enumerates against.
package tcpstack

import "intango/internal/packet"

// SYNPolicy describes how a stack treats a SYN arriving on an
// ESTABLISHED connection.
type SYNPolicy int

const (
	// SYNChallengeACK: RFC 5961 — never accept, reply with a challenge
	// ACK (Linux ≥ 3.8 / 4.x).
	SYNChallengeACK SYNPolicy = iota
	// SYNIgnore: silently ignore (Linux 3.14 per §5.3).
	SYNIgnore
	// SYNResetInWindow: RFC 793 — an in-window SYN aborts the
	// connection with a RST (older stacks). Out-of-window SYNs are
	// ignored.
	SYNResetInWindow
)

// RSTPolicy describes RST sequence validation.
type RSTPolicy int

const (
	// RSTExactSeq: RFC 5961 — accept only seq == rcv_nxt; an otherwise
	// in-window RST draws a challenge ACK.
	RSTExactSeq RSTPolicy = iota
	// RSTInWindow: RFC 793 — any in-window RST aborts.
	RSTInWindow
)

// Profile captures the version-specific behaviours of a TCP stack. The
// zero value is not useful; use one of the Linux* constructors.
type Profile struct {
	Name string

	// ValidatesChecksum drops packets whose TCP checksum is wrong.
	// Every real stack does; it is a knob so tests can isolate other
	// behaviours.
	ValidatesChecksum bool
	// ValidatesMD5 drops packets carrying an unsolicited RFC 2385 MD5
	// signature option when the connection never negotiated TCP-MD5.
	// Linux gained this with TCP-MD5 support in 2.6.20; Linux 2.4.37
	// lacks it and processes such packets normally (§5.3).
	ValidatesMD5 bool
	// PAWS drops segments whose timestamp is older than the most recent
	// one seen (RFC 7323), replying with a duplicate ACK.
	PAWS bool
	// RequiresACKFlag ignores any non-SYN/non-RST segment without the
	// ACK bit (so flagless and FIN-only packets are ignored). Linux
	// 2.6.34 and 2.4.37 instead accept such data (§5.3).
	RequiresACKFlag bool
	// ValidatesAckNumber ignores segments whose acknowledgment number
	// is outside the acceptable range (acks data never sent, or
	// ancient).
	ValidatesAckNumber bool
	// ValidatesIPLength ignores packets whose IP total length exceeds
	// the bytes actually received.
	ValidatesIPLength bool

	SYNInEstablished SYNPolicy
	RSTValidation    RSTPolicy

	// SegmentOverlap selects which copy wins when out-of-order segments
	// overlap. Linux keeps the data already queued (first wins).
	SegmentOverlap packet.OverlapPolicy

	// UseTimestamps includes the RFC 7323 timestamps option on segments
	// this stack sends (and negotiates it on SYN).
	UseTimestamps bool

	// MSS is the maximum segment size used when sending.
	MSS int
	// WindowSize is the advertised receive window.
	WindowSize int

	// Congestion selects the sender-side congestion control algorithm.
	// The zero value is CUBIC, the Linux default since 2.6.19; older
	// profiles set Reno.
	Congestion CongestionAlgo
}

func baseProfile(name string) Profile {
	return Profile{
		Name:               name,
		ValidatesChecksum:  true,
		ValidatesAckNumber: true,
		ValidatesIPLength:  true,
		SegmentOverlap:     packet.FirstWins,
		UseTimestamps:      true,
		MSS:                1460,
		WindowSize:         29200,
	}
}

// Linux44 models Linux 4.4 — the kernel the paper analyses in depth.
func Linux44() Profile {
	p := baseProfile("linux-4.4")
	p.ValidatesMD5 = true
	p.PAWS = true
	p.RequiresACKFlag = true
	p.SYNInEstablished = SYNChallengeACK
	p.RSTValidation = RSTExactSeq
	return p
}

// Linux40 models Linux 4.0; §5.3 found no divergence from 4.4 along the
// studied axes.
func Linux40() Profile {
	p := Linux44()
	p.Name = "linux-4.0"
	return p
}

// Linux314 models Linux 3.14: identical to 4.4 except that a SYN on an
// ESTABLISHED connection is silently ignored (§5.3).
func Linux314() Profile {
	p := Linux44()
	p.Name = "linux-3.14"
	p.SYNInEstablished = SYNIgnore
	return p
}

// Linux2634 models Linux 2.6.34: accepts data packets without the ACK
// flag, pre-RFC-5961 RST/SYN validation.
func Linux2634() Profile {
	p := baseProfile("linux-2.6.34")
	p.ValidatesMD5 = true // TCP-MD5 landed in 2.6.20
	p.PAWS = true
	p.RequiresACKFlag = false
	p.SYNInEstablished = SYNResetInWindow
	p.RSTValidation = RSTInWindow
	// §3.4 "variations in server implementations": some older stacks
	// resolve overlapping out-of-order segments in favour of the junk
	// copy, "just like the GFW", breaking the out-of-order evasion.
	p.SegmentOverlap = packet.LastWins
	return p
}

// Linux2437 models Linux 2.4.37: like 2.6.34 but with no RFC 2385
// support at all, so unsolicited MD5 options are not a discrepancy
// against it (§5.3).
func Linux2437() Profile {
	p := Linux2634()
	p.Name = "linux-2.4.37"
	p.ValidatesMD5 = false
	p.Congestion = CongestionReno // pre-CUBIC kernel
	return p
}

// AllProfiles returns every modelled stack, newest first.
func AllProfiles() []Profile {
	return []Profile{Linux44(), Linux40(), Linux314(), Linux2634(), Linux2437()}
}
