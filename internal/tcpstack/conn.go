package tcpstack

import (
	"time"

	"intango/internal/packet"
)

// State is a TCP connection state.
type State int

// TCP connection states (RFC 793 names).
const (
	Closed State = iota
	SynSent
	SynRecv
	Established
	FinWait1
	FinWait2
	CloseWait
	LastAck
	Closing
	TimeWait
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "CLOSED"
	case SynSent:
		return "SYN_SENT"
	case SynRecv:
		return "SYN_RECV"
	case Established:
		return "ESTABLISHED"
	case FinWait1:
		return "FIN_WAIT_1"
	case FinWait2:
		return "FIN_WAIT_2"
	case CloseWait:
		return "CLOSE_WAIT"
	case LastAck:
		return "LAST_ACK"
	case Closing:
		return "CLOSING"
	case TimeWait:
		return "TIME_WAIT"
	default:
		return "?"
	}
}

// segment is buffered out-of-order data.
type segment struct {
	seq  packet.Seq
	data []byte
	fin  bool
}

// outSeg is sent-but-unacknowledged data awaiting acknowledgment.
type outSeg struct {
	seq     packet.Seq
	data    []byte
	flags   uint8
	retries int
}

// Conn is one TCP connection on a Stack.
type Conn struct {
	stack *Stack
	// Local perspective: Src is this stack's address/port.
	local struct {
		addr packet.Addr
		port uint16
	}
	remote struct {
		addr packet.Addr
		port uint16
	}

	state State

	iss    packet.Seq
	sndUna packet.Seq
	sndNxt packet.Seq
	rcvNxt packet.Seq
	rcvWnd int

	tsEnabled   bool
	tsRecent    uint32
	hasTSRecent bool

	ooo    []segment // out-of-order receive queue
	finSeq packet.Seq
	finAt  bool // peer FIN buffered at finSeq

	retx     []outSeg
	rtxTimer int // generation counter to invalidate stale timers
	rto      time.Duration

	// RFC 6298 RTT estimation. One segment is timed at a time (Karn's
	// algorithm): rttTiming marks a measurement in progress for the
	// segment ending at rttSeq, started at rttAt; retransmitting
	// anything cancels it.
	srtt, rttvar time.Duration
	rttTiming    bool
	rttSeq       packet.Seq
	rttAt        time.Duration

	// Congestion control (see congestion.go): cwnd/ssthresh in bytes,
	// duplicate-ACK counting toward fast retransmit, and the NewReno
	// recovery point. CUBIC keeps its plateau and epoch here too.
	cwnd       int
	ssthresh   int
	dupAcks    int
	inRecovery bool
	recover    packet.Seq
	cubicWMax  float64
	cubicK     float64
	cubicEpoch time.Duration

	// Persist timer for zero-window probing (see congestion.go).
	// probeOut marks one byte of sendBuf transmitted as a probe at
	// probeSeq, outside the retransmission queue.
	persistTimer int
	persistArmed bool
	persistRTO   time.Duration
	probeOut     bool
	probeSeq     packet.Seq
	probeData    byte

	// sendBuf stages data awaiting window room; peerWnd is the peer's
	// last advertised receive window; closePending defers the FIN
	// until sendBuf drains.
	sendBuf      []byte
	peerWnd      int
	closePending bool

	recvBuf []byte

	// OnData is called with each chunk of newly in-order application
	// data.
	OnData func(data []byte)
	// OnStateChange is called after every state transition.
	OnStateChange func(from, to State)

	// GotRST records that the connection was torn down by a RST.
	GotRST bool
	// AbortReason records why the connection aborted.
	AbortReason string

	// EstablishedAt is the virtual time the connection first entered
	// Established (zero if it never did). The experiment runner reads
	// it to close the handshake stage span.
	EstablishedAt time.Duration

	// FirstDataAt and LastDataAt bracket in-order application-data
	// delivery in virtual time (zero if no data arrived). Together
	// with len(Received()) they give the experiment runner per-trial
	// goodput without touching the hot path.
	FirstDataAt time.Duration
	LastDataAt  time.Duration

	// causeID is the causal-tracing wire ID of the most recent inbound
	// segment this connection processed. Outgoing segments record it as
	// their lineage parent — the proximate cause of the transmission
	// (the segment a challenge ACK answers, the request a response
	// acknowledges). Zero for unprompted sends (the initial SYN,
	// timer-driven retransmissions before any arrival).
	causeID uint32
}

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Received returns all application data received so far.
func (c *Conn) Received() []byte { return c.recvBuf }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.local.port }

// RemoteAddr returns the remote address and port.
func (c *Conn) RemoteAddr() (packet.Addr, uint16) { return c.remote.addr, c.remote.port }

// SndNxt returns the next sequence number this side will send. Evasion
// strategies use it to craft insertion packets consistent with the live
// connection.
func (c *Conn) SndNxt() packet.Seq { return c.sndNxt }

// RcvNxt returns the next expected peer sequence number.
func (c *Conn) RcvNxt() packet.Seq { return c.rcvNxt }

// ISS returns the initial send sequence number.
func (c *Conn) ISS() packet.Seq { return c.iss }

func (c *Conn) view() ConnView {
	return ConnView{
		State:       c.state,
		RcvNxt:      c.rcvNxt,
		RcvWnd:      c.rcvWnd,
		SndUna:      c.sndUna,
		SndNxt:      c.sndNxt,
		TSRecent:    c.tsRecent,
		HasTSRecent: c.hasTSRecent,
		MaxWindow:   c.stack.Profile.WindowSize,
	}
}

func (c *Conn) setState(s State) {
	if c.state == s {
		return
	}
	from := c.state
	c.state = s
	if s == Established && c.EstablishedAt == 0 {
		c.EstablishedAt = c.stack.Sim.Now()
	}
	if c.stack.Obs != nil {
		// State transitions are the tcpstack half of the censor-state
		// audit: keyed to the inbound segment that drove them.
		c.stack.Obs.TracePkt("tcpstack", "state", c.causeID, 0, 0, 0,
			c.local.addr.String()+" "+from.String()+">"+s.String())
	}
	if s == TimeWait {
		c.stack.Sim.At(c.stack.TimeWaitDuration, func() {
			if c.state == TimeWait {
				c.abort("")
				c.AbortReason = "closed"
			}
		})
	}
	if c.OnStateChange != nil {
		c.OnStateChange(from, s)
	}
}

// tsNow returns the timestamp clock value (milliseconds of virtual
// time, offset so it is never zero).
func (c *Conn) tsNow() uint32 {
	return uint32(c.stack.Sim.Now()/time.Millisecond) + 1000
}

// buildPacket assembles an outgoing segment for this connection. The
// packet comes from the stack's pool (heap when none is attached), so
// its headers and buffers are recycled storage — receivers copy what
// they keep.
func (c *Conn) buildPacket(flags uint8, seq, ack packet.Seq, payload []byte) *packet.Packet {
	p := c.stack.Pool.Get()
	p.IP = packet.IPv4Header{TTL: 64, Protocol: packet.ProtoTCP, Src: c.local.addr, Dst: c.remote.addr}
	tcp := p.UseTCP()
	tcp.SrcPort, tcp.DstPort = c.local.port, c.remote.port
	tcp.Seq, tcp.Ack, tcp.Flags = seq, ack, flags
	tcp.Window = uint16(min(c.rcvWnd, 0xffff))
	p.SetPayload(payload)
	p.Lin = packet.Lineage{Origin: packet.OriginStack, Parent: c.causeID}
	if c.tsEnabled && c.stack.Profile.UseTimestamps {
		p.AddTimestampOption(c.tsNow(), c.tsRecent)
	}
	if flags&packet.FlagSYN != 0 {
		p.AddMSSOption(uint16(c.stack.Profile.MSS))
	}
	return p.Finalize()
}

func (c *Conn) transmit(flags uint8, seq, ack packet.Seq, payload []byte) {
	c.stack.send(c.buildPacket(flags, seq, ack, payload))
}

// sendData queues payload for reliable delivery and transmits it.
func (c *Conn) sendData(flags uint8, payload []byte) {
	seg := outSeg{seq: c.sndNxt, data: append([]byte(nil), payload...), flags: flags}
	c.retx = append(c.retx, seg)
	c.transmit(flags, seg.seq, c.rcvNxt, seg.data)
	c.sndNxt = c.sndNxt.Add(len(payload))
	if flags&(packet.FlagSYN|packet.FlagFIN) != 0 {
		c.sndNxt = c.sndNxt.Add(1)
	}
	if !c.rttTiming {
		// Time one segment at a time (Karn): this transmission, acked
		// un-retransmitted, yields the next RTT sample.
		c.rttTiming = true
		c.rttSeq = c.sndNxt
		c.rttAt = c.stack.Sim.Now()
	}
	if len(c.retx) == 1 {
		// The timer is anchored to the oldest unacked segment: arm on
		// the empty→non-empty transition only, never on later sends —
		// re-arming here on every transmission would push the oldest
		// segment's RTO out indefinitely under sustained writes.
		c.armRetx()
	}
}

// armRetx (re)starts the retransmission timer for the oldest unacked
// segment, invalidating any previously scheduled firing.
func (c *Conn) armRetx() {
	if len(c.retx) == 0 {
		return
	}
	c.rtxTimer++
	gen := c.rtxTimer
	c.stack.Sim.At(c.rto, func() { c.onRetxTimer(gen) })
}

func (c *Conn) onRetxTimer(gen int) {
	if gen != c.rtxTimer || len(c.retx) == 0 || c.state == Closed {
		return
	}
	seg := &c.retx[0]
	seg.retries++
	if seg.retries > c.stack.MaxRetries {
		if c.stack.Obs != nil {
			c.stack.Obs.Count("tcpstack.retransmission-limit")
			c.stack.Obs.Trace("tcpstack", "retransmission-limit", uint32(seg.seq), seg.flags, "")
		}
		c.abort("retransmission-limit")
		return
	}
	if c.stack.Obs != nil {
		c.stack.Obs.Count("tcpstack.retransmit")
		c.stack.Obs.Trace("tcpstack", "retransmit", uint32(seg.seq), seg.flags, "")
	}
	c.onRetxTimeout()
	c.transmit(seg.flags, seg.seq, c.rcvNxt, seg.data)
	c.rto *= 2
	if c.stack.MaxRTO > 0 && c.rto > c.stack.MaxRTO {
		c.rto = c.stack.MaxRTO
		if c.stack.Obs != nil {
			c.stack.Obs.Count("tcpstack.rto-capped")
		}
	}
	c.armRetx()
}

// Write queues application data for delivery; segments go out at the
// profile MSS, paced by the peer's advertised receive window.
func (c *Conn) Write(data []byte) {
	if c.state != Established && c.state != CloseWait {
		return
	}
	c.sendBuf = append(c.sendBuf, data...)
	c.pump()
}

// pump transmits queued data while the send window (the peer's
// advertised window capped by cwnd) has room, and the deferred FIN
// once the queue drains. A closed peer window hands off to the
// persist timer, whose probes discover when it reopens.
func (c *Conn) pump() {
	mss := c.stack.Profile.MSS
	for len(c.sendBuf) > 0 {
		if c.peerWnd <= 0 {
			c.armPersist()
			return
		}
		inflight := int(c.sndNxt.Diff(c.sndUna))
		room := c.sndWnd() - inflight
		if room <= 0 {
			return
		}
		n := min(min(len(c.sendBuf), mss), room)
		c.sendData(packet.FlagPSH|packet.FlagACK, c.sendBuf[:n])
		c.sendBuf = c.sendBuf[n:]
	}
	if c.closePending && len(c.sendBuf) == 0 {
		c.closePending = false
		c.sendFIN()
	}
}

// Close starts an orderly shutdown; the FIN follows any queued data.
func (c *Conn) Close() {
	if c.state != Established && c.state != CloseWait {
		return
	}
	if len(c.sendBuf) > 0 {
		c.closePending = true
		return
	}
	c.sendFIN()
}

func (c *Conn) sendFIN() {
	switch c.state {
	case Established:
		c.setState(FinWait1)
		c.sendData(packet.FlagFIN|packet.FlagACK, nil)
	case CloseWait:
		c.setState(LastAck)
		c.sendData(packet.FlagFIN|packet.FlagACK, nil)
	}
}

// Abort resets the connection, notifying the peer.
func (c *Conn) Abort() {
	if c.state == Closed {
		return
	}
	c.transmit(packet.FlagRST|packet.FlagACK, c.sndNxt, c.rcvNxt, nil)
	c.abort("local-abort")
}

func (c *Conn) abort(reason string) {
	c.AbortReason = reason
	c.rtxTimer++ // cancel timers
	c.persistTimer++
	c.persistArmed = false
	c.retx = nil
	c.setState(Closed)
	c.stack.removeConn(c)
}

func (c *Conn) sendAck() {
	c.transmit(packet.FlagACK, c.sndNxt, c.rcvNxt, nil)
}

// handleSegment is the connection's receive path.
func (c *Conn) handleSegment(pkt *packet.Packet) {
	c.causeID = pkt.Lin.ID
	d := Classify(c.stack.Profile, c.view(), pkt)
	c.stack.observe(c, pkt, d)
	switch d.Verdict {
	case Ignore:
		return
	case IgnoreWithAck:
		if d.Reason == "syn-retransmit" && c.state == SynRecv {
			// A retransmitted SYN re-elicits the SYN/ACK.
			c.transmit(packet.FlagSYN|packet.FlagACK, c.iss, c.rcvNxt, nil)
			return
		}
		c.sendAck()
		return
	case AbortConn:
		c.GotRST = true
		c.abort("rst: " + d.Reason)
		return
	case RespondRST:
		// RFC 793: RST takes its seq from the offending ack.
		c.transmit(packet.FlagRST, pkt.TCP.Ack, 0, nil)
		return
	}
	c.accept(pkt)
}

// accept processes an acceptable segment.
func (c *Conn) accept(pkt *packet.Packet) {
	tcp := pkt.TCP

	prevWnd := c.peerWnd
	c.peerWnd = int(tcp.Window)

	// Track the peer's timestamp for PAWS and echoing.
	if tsval, _, ok := tcp.Timestamps(); ok {
		if !c.hasTSRecent || int32(tsval-c.tsRecent) >= 0 {
			c.tsRecent = tsval
			c.hasTSRecent = true
		}
	} else if c.state == SynSent || c.state == SynRecv {
		// Peer did not negotiate timestamps.
		if tcp.HasFlag(packet.FlagSYN) {
			c.tsEnabled = false
		}
	}

	switch c.state {
	case SynSent:
		// Classify only lets SYN/ACK with a good ack through.
		c.rcvNxt = tcp.Seq.Add(1)
		c.ackAdvance(tcp.Ack)
		c.setState(Established)
		c.sendAck()
		return
	case SynRecv:
		if tcp.HasFlag(packet.FlagACK) && tcp.Ack == c.sndNxt {
			c.ackAdvance(tcp.Ack)
			c.setState(Established)
		}
		// Data may ride on the handshake-completing ACK: fall through.
	}

	if tcp.HasFlag(packet.FlagACK) {
		if c.isDupAck(tcp, len(pkt.Payload), prevWnd) {
			c.onDupAck()
		} else {
			c.ackAdvance(tcp.Ack)
		}
	}

	if prevWnd <= 0 && c.peerWnd > 0 {
		// Window reopened: stop probing and resume the transfer. A pure
		// window update acknowledges nothing, so ackAdvance would not
		// pump.
		c.exitPersist()
		c.pump()
	}

	c.ingestData(pkt)
}

// ackAdvance retires retransmission state covered by ack, samples the
// RTT, and updates the congestion window.
func (c *Conn) ackAdvance(ack packet.Seq) {
	if ack.AtOrBefore(c.sndUna) {
		return
	}
	if c.rttTiming && ack.AtOrAfter(c.rttSeq) {
		c.rttTiming = false
		c.sampleRTT(c.stack.Sim.Now() - c.rttAt)
	}
	acked := int(ack.Diff(c.sndUna))
	c.sndUna = ack
	if c.probeOut && ack.After(c.probeSeq) {
		c.probeOut = false // zero-window probe byte acknowledged
	}
	keep := c.retx[:0]
	for _, s := range c.retx {
		end := s.seq.Add(len(s.data))
		if s.flags&(packet.FlagSYN|packet.FlagFIN) != 0 {
			end = end.Add(1)
		}
		if end.After(ack) {
			keep = append(keep, s)
		}
	}
	c.retx = keep
	c.onAckAdvance(ack, acked)
	c.rto = c.currentRTO()
	c.rtxTimer++
	c.armRetx()
	c.pump()
	// Progress the closing handshake.
	switch c.state {
	case FinWait1:
		if c.sndUna == c.sndNxt {
			c.setState(FinWait2)
		}
	case LastAck:
		if c.sndUna == c.sndNxt {
			c.abort("")
			c.AbortReason = "closed"
		}
	case Closing:
		if c.sndUna == c.sndNxt {
			c.setState(TimeWait)
		}
	}
}

// ingestData runs reassembly on the segment's payload and FIN.
func (c *Conn) ingestData(pkt *packet.Packet) {
	tcp := pkt.TCP
	segLen := len(pkt.Payload)
	fin := tcp.HasFlag(packet.FlagFIN)
	if segLen == 0 && !fin {
		return
	}
	seq := tcp.Seq
	end := seq.Add(segLen)

	// Entirely old data: duplicate ACK.
	if end.AtOrBefore(c.rcvNxt) && !(fin && end == c.rcvNxt) {
		c.sendAck()
		return
	}
	// Entirely beyond the window: duplicate ACK (this is the path an
	// out-of-window desynchronization packet takes on a real server).
	if seq.AtOrAfter(c.rcvNxt.Add(c.rcvWnd)) {
		c.sendAck()
		return
	}

	if segLen > 0 {
		c.enqueue(segment{seq: seq, data: append([]byte(nil), pkt.Payload...)})
	}
	if fin {
		c.finAt = true
		c.finSeq = end
	}
	c.drain()
	c.sendAck()
}

// enqueue inserts a segment into the out-of-order queue honoring the
// profile's overlap policy.
func (c *Conn) enqueue(seg segment) {
	if c.stack.Profile.SegmentOverlap == packet.FirstWins {
		c.ooo = append(c.ooo, seg)
		return
	}
	// LastWins: newest data overwrites; implement by prepending so the
	// drain pass reads newest first... drain applies first-match, so
	// order the queue newest-first.
	c.ooo = append([]segment{seg}, c.ooo...)
}

// drain moves contiguous data from the out-of-order queue into the
// receive buffer.
func (c *Conn) drain() {
	progress := true
	for progress {
		progress = false
		for i := range c.ooo {
			s := c.ooo[i]
			segEnd := s.seq.Add(len(s.data))
			if segEnd.AtOrBefore(c.rcvNxt) {
				// Fully consumed; remove.
				c.ooo = append(c.ooo[:i], c.ooo[i+1:]...)
				progress = true
				break
			}
			if s.seq.AtOrBefore(c.rcvNxt) {
				// Overlaps the edge: take the new part.
				skip := int(c.rcvNxt.Diff(s.seq))
				chunk := s.data[skip:]
				if c.FirstDataAt == 0 && len(chunk) > 0 {
					c.FirstDataAt = c.stack.Sim.Now()
				}
				if len(chunk) > 0 {
					c.LastDataAt = c.stack.Sim.Now()
				}
				c.recvBuf = append(c.recvBuf, chunk...)
				c.rcvNxt = c.rcvNxt.Add(len(chunk))
				c.ooo = append(c.ooo[:i], c.ooo[i+1:]...)
				if c.OnData != nil {
					c.OnData(chunk)
				}
				progress = true
				break
			}
		}
	}
	if c.finAt && c.finSeq == c.rcvNxt {
		c.finAt = false
		c.rcvNxt = c.rcvNxt.Add(1)
		c.peerFin()
	}
}

// peerFin handles an in-order FIN from the peer.
func (c *Conn) peerFin() {
	switch c.state {
	case SynRecv, Established:
		c.setState(CloseWait)
	case FinWait1:
		c.setState(Closing)
	case FinWait2:
		c.setState(TimeWait)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
