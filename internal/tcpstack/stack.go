package tcpstack

import (
	"time"

	"intango/internal/device"
	"intango/internal/netem"
	"intango/internal/obs"
	"intango/internal/packet"
)

// connKey identifies a connection from the local stack's perspective.
type connKey struct {
	localPort  uint16
	remoteAddr packet.Addr
	remotePort uint16
}

// Acceptor is called when a listener accepts a new connection, before
// the SYN/ACK is sent, so the application can install callbacks.
type Acceptor func(c *Conn)

// UDPHandler receives UDP datagrams addressed to a bound port.
type UDPHandler func(src packet.Addr, srcPort uint16, payload []byte)

// ObserveFunc, when set on a Stack, sees every (segment, disposition)
// pair its connections classify — the hook the ignore-path analysis and
// tests use.
type ObserveFunc func(c *Conn, pkt *packet.Packet, d Disposition)

// Stack is a host's TCP/IP endpoint: an address, a version Profile, a
// connection table, listeners, and a transmit function bound to a
// netem path.
type Stack struct {
	Addr    packet.Addr
	Profile Profile
	Sim     *netem.Simulator

	// Send transmits a packet into the network. Bind it with
	// AttachClient/AttachServer/AttachDevice or set it directly (the
	// strategy engine interposes here).
	Send func(pkt *packet.Packet)

	// Dev is the packet device every crafted segment leaves through —
	// the builders never reach into netem directly. Attach* binds it;
	// dev is the inline adapter storage for the netem substrates.
	Dev device.Device
	dev device.NetemEnd

	// InitialRTO and MaxRetries control retransmission. MinRTO and
	// MaxRTO clamp the RFC 6298 sampled estimate: the 200ms floor
	// matches Linux (and always binds at simulated RTTs, preserving
	// pre-sampling timing), the 60s ceiling caps exponential backoff.
	InitialRTO time.Duration
	MinRTO     time.Duration
	MaxRTO     time.Duration
	MaxRetries int
	// TimeWaitDuration is how long TIME_WAIT lingers before the
	// connection entry is reclaimed.
	TimeWaitDuration time.Duration

	// Observe, when set, sees every classified segment.
	Observe ObserveFunc

	// Obs, when set, counts every non-Accept disposition (challenge
	// ACKs, PAWS/MD5/checksum rejections, RST validation outcomes) and
	// retransmission as "tcpstack.<reason>" and records them in the
	// flight recorder. Nil (the default) costs one branch per segment.
	Obs *obs.Obs

	// Pool, when set, supplies recycled packets for every segment the
	// stack crafts. AttachClient/AttachServer copy it from the path; a
	// nil pool falls back to heap allocation transparently.
	Pool *packet.Pool

	// ForceISS, when set, overrides the random initial send sequence
	// number for new connections (both ConnectFrom and accepted
	// listeners). Wraparound regression tests pin it just below 2^32 so
	// handshakes and data transfer cross the 32-bit boundary.
	ForceISS func() packet.Seq

	conns     map[connKey]*Conn
	listeners map[uint16]Acceptor
	udp       map[uint16]UDPHandler
	nextPort  uint16
	frag      *packet.Reassembler
}

// NewStack creates a stack for addr with the given profile.
func NewStack(addr packet.Addr, profile Profile, sim *netem.Simulator) *Stack {
	return &Stack{
		Addr:             addr,
		Profile:          profile,
		Sim:              sim,
		InitialRTO:       200 * time.Millisecond,
		MinRTO:           200 * time.Millisecond,
		MaxRTO:           60 * time.Second,
		MaxRetries:       6,
		TimeWaitDuration: 500 * time.Millisecond,
		conns:            make(map[connKey]*Conn),
		listeners:        make(map[uint16]Acceptor),
		udp:              make(map[uint16]UDPHandler),
		nextPort:         32768,
		// Hosts resolve overlapping fragments in favour of the newest
		// copy — the behaviour the out-of-order IP-fragment evasion of
		// §3.2 relies on at the server.
		frag: packet.NewReassembler(packet.LastWins),
	}
}

// AttachClient wires the stack to the client end of a substrate (a
// linear netem.Path or a graph netem.Fabric): the stack stays the
// end's inbound endpoint and transmits through an inline NetemEnd
// device.
func (s *Stack) AttachClient(n netem.Net) {
	n.SetClient(s)
	s.dev = device.NetemEnd{Net: n}
	s.bindNetemEnd(n)
}

// AttachServer wires the stack to the server end of a substrate.
func (s *Stack) AttachServer(n netem.Net) {
	n.SetServer(s)
	s.dev = device.NetemEnd{Net: n, Server: true}
	s.bindNetemEnd(n)
}

func (s *Stack) bindNetemEnd(n netem.Net) {
	s.Dev = &s.dev
	// Transmit has the Send hook's exact shape; binding it costs the
	// same single method value the old direct netem binding did.
	s.Send = s.dev.Transmit
	s.Pool = n.PacketPool()
}

// AttachDevice wires the stack to an arbitrary packet device — a pipe,
// a userspace carrier, anything on the Device boundary. Inbound
// traffic is the caller's to pump (read the device, call Deliver).
func (s *Stack) AttachDevice(d device.Device) {
	s.Dev = d
	s.Send = func(pkt *packet.Packet) { _ = d.WritePacket(pkt) }
	s.Pool = device.PoolOf(d)
}

func (s *Stack) send(pkt *packet.Packet) {
	if s.Send != nil {
		s.Send(pkt)
	}
}

func (s *Stack) observe(c *Conn, pkt *packet.Packet, d Disposition) {
	if s.Obs != nil && d.Verdict != Accept {
		s.Obs.Count("tcpstack." + d.Reason)
		if d.Verdict == IgnoreWithAck {
			// The aggregate the paper's §5.1 cares about: segments that
			// only elicit a duplicate/challenge ACK.
			s.Obs.Count("tcpstack.ignore-with-ack")
		}
		s.Obs.TracePkt("tcpstack", d.Reason, pkt.Lin.ID, pkt.Lin.Parent, uint32(pkt.TCP.Seq), pkt.TCP.Flags, d.Verdict.String())
	}
	if s.Observe != nil {
		s.Observe(c, pkt, d)
	}
}

// Listen registers an acceptor for a TCP port.
func (s *Stack) Listen(port uint16, accept Acceptor) {
	s.listeners[port] = accept
}

// ListenUDP registers a handler for a UDP port.
func (s *Stack) ListenUDP(port uint16, h UDPHandler) {
	s.udp[port] = h
}

// SendUDP transmits a UDP datagram.
func (s *Stack) SendUDP(srcPort uint16, dst packet.Addr, dstPort uint16, payload []byte) {
	p := s.Pool.NewUDP(s.Addr, srcPort, dst, dstPort, payload)
	p.Lin.Origin = packet.OriginStack
	s.send(p)
}

// AllocPort returns a fresh ephemeral port.
func (s *Stack) AllocPort() uint16 {
	p := s.nextPort
	s.nextPort++
	if s.nextPort == 0 {
		s.nextPort = 32768
	}
	return p
}

// Connect opens a connection to raddr:rport and sends the SYN.
func (s *Stack) Connect(raddr packet.Addr, rport uint16) *Conn {
	return s.ConnectFrom(s.AllocPort(), raddr, rport)
}

// chooseISS draws the initial send sequence number, honoring the
// ForceISS test hook.
func (s *Stack) chooseISS() packet.Seq {
	if s.ForceISS != nil {
		return s.ForceISS()
	}
	return packet.Seq(s.Sim.Rand().Uint32())
}

// ConnectFrom opens a connection from a specific local port.
func (s *Stack) ConnectFrom(lport uint16, raddr packet.Addr, rport uint16) *Conn {
	c := s.newConn(lport, raddr, rport)
	c.iss = s.chooseISS()
	c.sndUna = c.iss
	c.sndNxt = c.iss
	c.tsEnabled = s.Profile.UseTimestamps
	c.setState(SynSent)
	c.sendData(packet.FlagSYN, nil)
	return c
}

func (s *Stack) newConn(lport uint16, raddr packet.Addr, rport uint16) *Conn {
	c := &Conn{stack: s, rto: s.InitialRTO, rcvWnd: s.Profile.WindowSize}
	c.initCongestion()
	c.local.addr, c.local.port = s.Addr, lport
	c.remote.addr, c.remote.port = raddr, rport
	s.conns[connKey{lport, raddr, rport}] = c
	return c
}

func (s *Stack) removeConn(c *Conn) {
	delete(s.conns, connKey{c.local.port, c.remote.addr, c.remote.port})
}

// Conn returns the live connection matching the tuple, if any.
func (s *Stack) Conn(lport uint16, raddr packet.Addr, rport uint16) (*Conn, bool) {
	c, ok := s.conns[connKey{lport, raddr, rport}]
	return c, ok
}

// Deliver implements netem.Endpoint: the stack's receive path.
func (s *Stack) Deliver(pkt *packet.Packet) {
	if pkt.IP.IsFragment() {
		whole, err := s.frag.AddAt(pkt, s.Sim.Now())
		if n := s.frag.TakeEvicted(); n > 0 && s.Obs != nil {
			s.Obs.Registry().Add("tcpstack.frag-evict", n)
		}
		if err != nil || whole == nil {
			return
		}
		pkt = whole
	}
	switch {
	case pkt.TCP != nil:
		s.deliverTCP(pkt)
	case pkt.UDP != nil:
		if h, ok := s.udp[pkt.UDP.DstPort]; ok {
			h(pkt.IP.Src, pkt.UDP.SrcPort, pkt.Payload)
		}
	default:
		// ICMP and raw IP are dropped; interested parties (INTANG's
		// hop-count prober) interpose on the path, not the stack.
	}
}

func (s *Stack) deliverTCP(pkt *packet.Packet) {
	key := connKey{pkt.TCP.DstPort, pkt.IP.Src, pkt.TCP.SrcPort}
	if c, ok := s.conns[key]; ok {
		c.handleSegment(pkt)
		return
	}
	// No connection: maybe a listener.
	if accept, ok := s.listeners[pkt.TCP.DstPort]; ok {
		s.listenSegment(pkt, accept)
		return
	}
	// Closed port: RST any non-RST segment (RFC 793).
	if !pkt.TCP.HasFlag(packet.FlagRST) {
		s.respondRST(pkt)
	}
}

// listenSegment applies LISTEN-state rules.
func (s *Stack) listenSegment(pkt *packet.Packet, accept Acceptor) {
	tcp := pkt.TCP
	// Header-level ignore paths still apply in LISTEN.
	if s.Profile.ValidatesIPLength && int(pkt.IP.TotalLength) > actualIPLength(pkt) {
		return
	}
	if tcp.RawDataOffset != 0 && tcp.RawDataOffset < 5 {
		return
	}
	if s.Profile.ValidatesChecksum && !tcp.VerifyChecksum(pkt.IP.Src, pkt.IP.Dst, pkt.Payload) {
		return
	}
	if s.Profile.ValidatesMD5 && tcp.HasMD5() {
		return
	}
	switch {
	case tcp.HasFlag(packet.FlagRST):
		return
	case tcp.HasFlag(packet.FlagACK):
		// Includes the SYN/ACK a TCB-Reversal client sends: the server
		// answers with a RST (§5.2), seq taken from the ack field.
		s.respondRST(pkt)
		return
	case tcp.HasFlag(packet.FlagSYN):
		c := s.newConn(tcp.DstPort, pkt.IP.Src, tcp.SrcPort)
		c.causeID = pkt.Lin.ID
		c.iss = s.chooseISS()
		c.sndUna = c.iss
		c.sndNxt = c.iss
		c.rcvNxt = tcp.Seq.Add(1)
		_, _, hasTS := tcp.Timestamps()
		c.tsEnabled = hasTS && s.Profile.UseTimestamps
		if tsval, _, ok := tcp.Timestamps(); ok {
			c.tsRecent = tsval
			c.hasTSRecent = true
		}
		c.setState(SynRecv)
		accept(c)
		c.sendData(packet.FlagSYN|packet.FlagACK, nil)
	}
}

// respondRST sends the RFC 793 reset for an orphan segment.
func (s *Stack) respondRST(pkt *packet.Packet) {
	tcp := pkt.TCP
	rst := s.Pool.Get()
	rst.Lin = packet.Lineage{Origin: packet.OriginStack, Parent: pkt.Lin.ID}
	rst.IP = packet.IPv4Header{TTL: 64, Protocol: packet.ProtoTCP, Src: s.Addr, Dst: pkt.IP.Src}
	h := rst.UseTCP()
	h.SrcPort, h.DstPort = tcp.DstPort, tcp.SrcPort
	if tcp.HasFlag(packet.FlagACK) {
		h.Flags = packet.FlagRST
		h.Seq = tcp.Ack
	} else {
		h.Flags = packet.FlagRST | packet.FlagACK
		h.Ack = tcp.Seq.Add(pktSegLen(pkt))
	}
	s.send(rst.Finalize())
}

func pktSegLen(pkt *packet.Packet) int {
	n := len(pkt.Payload)
	if pkt.TCP.HasFlag(packet.FlagSYN) {
		n++
	}
	if pkt.TCP.HasFlag(packet.FlagFIN) {
		n++
	}
	return n
}
