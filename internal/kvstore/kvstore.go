// Package kvstore is the in-memory key-value store INTANG uses for
// per-server strategy results — the stand-in for the Redis instance in
// the paper's implementation (§6). It provides TTL expiry against a
// caller-supplied clock (the simulation's virtual time) and a small LRU
// front cache mirroring INTANG's transient cache that avoids store
// round-trips on the packet-processing path.
package kvstore

import (
	"container/list"
	"time"
)

// Clock supplies the current time; the simulator's virtual clock in
// tests and experiments.
type Clock func() time.Duration

// Store is a TTL'd key-value store. The zero value is not usable; call
// New.
type Store struct {
	clock Clock
	items map[string]item
}

type item struct {
	value   string
	expires time.Duration // 0 = never
}

// New builds a store against the given clock.
func New(clock Clock) *Store {
	return &Store{clock: clock, items: make(map[string]item)}
}

// Set stores value under key with a TTL; ttl <= 0 means no expiry.
func (s *Store) Set(key, value string, ttl time.Duration) {
	var exp time.Duration
	if ttl > 0 {
		exp = s.clock() + ttl
	}
	s.items[key] = item{value: value, expires: exp}
}

// Get fetches the live value for key.
func (s *Store) Get(key string) (string, bool) {
	it, ok := s.items[key]
	if !ok {
		return "", false
	}
	if it.expires != 0 && s.clock() >= it.expires {
		delete(s.items, key)
		return "", false
	}
	return it.value, true
}

// Delete removes key.
func (s *Store) Delete(key string) { delete(s.items, key) }

// Len returns the number of entries, counting expired-but-unswept ones.
func (s *Store) Len() int { return len(s.items) }

// Sweep removes expired entries and reports how many were removed.
func (s *Store) Sweep() int {
	now := s.clock()
	n := 0
	for k, it := range s.items {
		if it.expires != 0 && now >= it.expires {
			delete(s.items, k)
			n++
		}
	}
	return n
}

// LRU is a fixed-capacity least-recently-used front cache (INTANG's
// transient cache, §6: linked lists plus hash tables).
type LRU struct {
	cap   int
	ll    *list.List
	index map[string]*list.Element
}

type lruEntry struct {
	key   string
	value string
}

// NewLRU builds a cache holding at most capacity entries.
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{cap: capacity, ll: list.New(), index: make(map[string]*list.Element)}
}

// Get fetches a value, marking it most recently used.
func (c *LRU) Get(key string) (string, bool) {
	el, ok := c.index[key]
	if !ok {
		return "", false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// Put stores a value, evicting the least recently used entry if full.
func (c *LRU) Put(key, value string) {
	if el, ok := c.index[key]; ok {
		el.Value.(*lruEntry).value = value
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.index, oldest.Value.(*lruEntry).key)
		}
	}
	c.index[key] = c.ll.PushFront(&lruEntry{key: key, value: value})
}

// Delete removes a key.
func (c *LRU) Delete(key string) {
	if el, ok := c.index[key]; ok {
		c.ll.Remove(el)
		delete(c.index, key)
	}
}

// Len returns the number of cached entries.
func (c *LRU) Len() int { return c.ll.Len() }

// CachedStore layers an LRU over a Store: reads hit the LRU first;
// writes go to both. TTLs are enforced by the backing store, so LRU
// hits re-validate against it.
type CachedStore struct {
	Front *LRU
	Back  *Store
}

// NewCachedStore builds the two-level cache INTANG uses.
func NewCachedStore(capacity int, clock Clock) *CachedStore {
	return &CachedStore{Front: NewLRU(capacity), Back: New(clock)}
}

// Set writes through both levels.
func (c *CachedStore) Set(key, value string, ttl time.Duration) {
	c.Back.Set(key, value, ttl)
	c.Front.Put(key, value)
}

// Get reads the key, consulting the backing store for TTL validity.
func (c *CachedStore) Get(key string) (string, bool) {
	v, ok := c.Back.Get(key)
	if !ok {
		c.Front.Delete(key)
		return "", false
	}
	if fv, hit := c.Front.Get(key); hit {
		return fv, true
	}
	c.Front.Put(key, v)
	return v, true
}

// Delete removes the key from both levels.
func (c *CachedStore) Delete(key string) {
	c.Front.Delete(key)
	c.Back.Delete(key)
}
