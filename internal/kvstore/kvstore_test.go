package kvstore

import (
	"fmt"
	"strconv"
	"testing"
	"testing/quick"
	"time"
)

type fakeClock struct{ now time.Duration }

func (c *fakeClock) fn() Clock { return func() time.Duration { return c.now } }

func TestStoreSetGetExpiry(t *testing.T) {
	clk := &fakeClock{}
	s := New(clk.fn())
	s.Set("a", "1", 10*time.Second)
	s.Set("b", "2", 0) // never expires
	if v, ok := s.Get("a"); !ok || v != "1" {
		t.Fatalf("a = %q %v", v, ok)
	}
	clk.now = 11 * time.Second
	if _, ok := s.Get("a"); ok {
		t.Fatal("a should have expired")
	}
	if v, ok := s.Get("b"); !ok || v != "2" {
		t.Fatalf("b = %q %v", v, ok)
	}
}

func TestStoreSweepAndDelete(t *testing.T) {
	clk := &fakeClock{}
	s := New(clk.fn())
	for i := 0; i < 10; i++ {
		s.Set(strconv.Itoa(i), "x", time.Duration(i+1)*time.Second)
	}
	clk.now = 5500 * time.Millisecond
	if n := s.Sweep(); n != 5 {
		t.Fatalf("swept %d, want 5", n)
	}
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Delete("9")
	if _, ok := s.Get("9"); ok {
		t.Fatal("deleted key present")
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewLRU(3)
	c.Put("a", "1")
	c.Put("b", "2")
	c.Put("c", "3")
	c.Get("a") // refresh a
	c.Put("d", "4")
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
	c.Put("a", "10")
	if v, _ := c.Get("a"); v != "10" {
		t.Fatal("update in place failed")
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	c.Delete("a")
	if c.Len() != 2 {
		t.Fatal("delete failed")
	}
}

func TestLRUNeverExceedsCapacity(t *testing.T) {
	f := func(keys []uint8) bool {
		c := NewLRU(4)
		for _, k := range keys {
			c.Put(fmt.Sprintf("k%d", k%20), "v")
			if c.Len() > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCachedStoreWriteThroughAndTTL(t *testing.T) {
	clk := &fakeClock{}
	cs := NewCachedStore(2, clk.fn())
	cs.Set("srv1", "improved-teardown", 5*time.Second)
	if v, ok := cs.Get("srv1"); !ok || v != "improved-teardown" {
		t.Fatalf("get = %q %v", v, ok)
	}
	// LRU eviction does not lose data (backing store holds it).
	cs.Set("srv2", "b", 5*time.Second)
	cs.Set("srv3", "c", 5*time.Second)
	if v, ok := cs.Get("srv1"); !ok || v != "improved-teardown" {
		t.Fatalf("after eviction: %q %v", v, ok)
	}
	// TTL expiry invalidates LRU hits too.
	clk.now = 6 * time.Second
	if _, ok := cs.Get("srv1"); ok {
		t.Fatal("expired entry served from LRU")
	}
	cs.Set("x", "1", 0)
	cs.Delete("x")
	if _, ok := cs.Get("x"); ok {
		t.Fatal("delete failed")
	}
}
