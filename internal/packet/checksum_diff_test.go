package packet

import (
	"math/rand"
	"testing"
)

// TestChecksumArithmeticMatchesWire pins the field-arithmetic checksum
// paths (Finalize, ComputeChecksum, VerifyChecksum, UpdateChecksum) to
// the serialization-derived ground truth over randomized packets,
// including odd payload lengths, options of every parity, fragments,
// and lying RawDataOffset values.
func TestChecksumArithmeticMatchesWire(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randAddr := func() Addr {
		return AddrFrom4(byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
	}
	randPayload := func() []byte {
		b := make([]byte, rng.Intn(70))
		rng.Read(b)
		return b
	}
	for i := 0; i < 2000; i++ {
		p := &Packet{IP: IPv4Header{
			TOS: uint8(rng.Intn(256)), ID: uint16(rng.Intn(1 << 16)),
			TTL: uint8(1 + rng.Intn(255)), Src: randAddr(), Dst: randAddr(),
		}}
		switch i % 3 {
		case 0:
			p.IP.Protocol = ProtoTCP
			p.TCP = &TCPHeader{
				SrcPort: uint16(rng.Intn(1 << 16)), DstPort: uint16(rng.Intn(1 << 16)),
				Seq: Seq(rng.Uint32()), Ack: Seq(rng.Uint32()),
				Flags: uint8(rng.Intn(64)), Window: uint16(rng.Intn(1 << 16)),
				Urgent: uint16(rng.Intn(1 << 16)),
			}
			if rng.Intn(2) == 0 {
				p.TCP.Options = append(p.TCP.Options, TimestampOption(rng.Uint32(), rng.Uint32()))
			}
			if rng.Intn(2) == 0 {
				p.TCP.Options = append(p.TCP.Options, TCPOption{Kind: OptNOP}, MSSOption(uint16(rng.Intn(1<<16))))
			}
			if rng.Intn(4) == 0 {
				var d [16]byte
				rng.Read(d[:])
				p.TCP.Options = append(p.TCP.Options, MD5Option(d))
			}
			p.Payload = randPayload()
		case 1:
			p.IP.Protocol = ProtoUDP
			p.UDP = &UDPHeader{SrcPort: uint16(rng.Intn(1 << 16)), DstPort: uint16(rng.Intn(1 << 16))}
			p.Payload = randPayload()
		default:
			p.IP.Protocol = ProtoICMP
			body := make([]byte, rng.Intn(40))
			rng.Read(body)
			p.ICMP = &ICMPMessage{Type: uint8(rng.Intn(256)), Code: uint8(rng.Intn(256)), Body: body}
			rng.Read(p.ICMP.Rest[:])
		}
		if rng.Intn(4) == 0 {
			opts := make([]byte, 1+rng.Intn(8))
			rng.Read(opts)
			p.IP.Options = opts
		}
		if rng.Intn(4) == 0 {
			p.IP.FragOffset = uint16(rng.Intn(1 << 13))
			p.IP.Flags = uint8(rng.Intn(4))
		}

		p.Finalize()
		// Ground truth: serialize with honest checksums and re-verify by
		// full-buffer summation.
		wire := p.Serialize(SerializeOptions{})
		hl := p.IP.HeaderLen()
		if got := Checksum(wire[:hl], 0); got != 0 {
			t.Fatalf("case %d: IP checksum wrong on the wire (residual %#x)", i, got)
		}
		if !p.IP.VerifyChecksum() {
			t.Fatalf("case %d: VerifyChecksum rejects a finalized header", i)
		}
		l4 := wire[hl:]
		switch {
		case p.TCP != nil:
			if got := Checksum(l4, pseudoHeaderSum(p.IP.Src, p.IP.Dst, ProtoTCP, len(l4))); got != 0 {
				t.Fatalf("case %d: TCP checksum wrong on the wire (residual %#x)", i, got)
			}
			if !p.TCP.VerifyChecksum(p.IP.Src, p.IP.Dst, p.Payload) {
				t.Fatalf("case %d: TCP VerifyChecksum rejects a finalized header", i)
			}
			// ComputeChecksum honors a lying RawDataOffset; compare with
			// the serialization path directly.
			p.TCP.RawDataOffset = uint8(rng.Intn(16))
			saved := p.TCP.Checksum
			p.TCP.Checksum = 0
			buf := p.TCP.SerializeTo(nil, p.IP.Src, p.IP.Dst, p.Payload, SerializeOptions{})
			p.TCP.Checksum = saved
			want := Checksum(buf, pseudoHeaderSum(p.IP.Src, p.IP.Dst, ProtoTCP, len(buf)))
			if got := p.TCP.ComputeChecksum(p.IP.Src, p.IP.Dst, p.Payload); got != want {
				t.Fatalf("case %d: ComputeChecksum = %#x, serialized = %#x (rawOff=%d)", i, got, want, p.TCP.RawDataOffset)
			}
		case p.UDP != nil:
			sum := Checksum(l4, pseudoHeaderSum(p.IP.Src, p.IP.Dst, ProtoUDP, len(l4)))
			if sum != 0 && p.UDP.Checksum != 0xffff {
				t.Fatalf("case %d: UDP checksum wrong on the wire (residual %#x)", i, sum)
			}
		case p.ICMP != nil:
			if got := Checksum(l4, 0); got != 0 {
				t.Fatalf("case %d: ICMP checksum wrong on the wire (residual %#x)", i, got)
			}
		}
		// Mutating the header must invalidate the arithmetic verify too.
		p.IP.TTL ^= 0x55
		if p.IP.TTL != 0 && p.IP.VerifyChecksum() {
			t.Fatalf("case %d: VerifyChecksum accepted a corrupted header", i)
		}
		p.IP.TTL ^= 0x55
		p.IP.UpdateChecksum()
		if !p.IP.VerifyChecksum() {
			t.Fatalf("case %d: UpdateChecksum/VerifyChecksum disagree", i)
		}
	}
}
