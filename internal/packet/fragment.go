package packet

import (
	"fmt"
	"time"
)

// Fragment splits a finalized datagram into IP fragments whose L4
// payloads are at most mtu-IPHeaderLen bytes (mtu counts the IP header).
// The first fragment carries the L4 header; later fragments carry raw
// bytes. mtu must allow at least 8 bytes of fragment data, and fragment
// data lengths other than the last are rounded down to 8-byte multiples,
// as required by the offset encoding.
func Fragment(p *Packet, mtu int) ([]*Packet, error) {
	if p.IP.IsFragment() {
		return nil, fmt.Errorf("fragment: packet is already a fragment")
	}
	if p.IP.Flags&IPFlagDontFragment != 0 {
		return nil, fmt.Errorf("fragment: DF set")
	}
	wire := p.Serialize(SerializeOptions{ComputeChecksums: true, FixLengths: true})
	hl := p.IP.HeaderLen()
	l4 := wire[hl:]
	maxData := (mtu - hl) &^ 7
	if maxData < 8 {
		return nil, fmt.Errorf("fragment: mtu %d too small", mtu)
	}
	if len(l4) <= maxData {
		return []*Packet{p.Clone()}, nil
	}
	var frags []*Packet
	for off := 0; off < len(l4); off += maxData {
		end := off + maxData
		more := true
		if end >= len(l4) {
			end = len(l4)
			more = false
		}
		f := &Packet{IP: p.IP.Clone()}
		f.IP.FragOffset = uint16(off / 8)
		if more {
			f.IP.Flags |= IPFlagMoreFragments
		} else {
			f.IP.Flags &^= IPFlagMoreFragments
		}
		chunk := append([]byte(nil), l4[off:end]...)
		if off == 0 {
			// Re-parse the first chunk so the fragment has a typed L4
			// header (it is what routers and the GFW look at).
			f.IP.SetLengths(len(chunk))
			tmp := f.IP.SerializeTo(nil, len(chunk), SerializeOptions{ComputeChecksums: true, FixLengths: true})
			tmp = append(tmp, chunk...)
			parsed, err := Parse(tmp)
			if err != nil {
				// L4 header split across fragments: keep raw bytes.
				f.Payload = chunk
			} else {
				parsed.IP = f.IP.Clone()
				f = parsed
			}
		} else {
			f.Payload = chunk
		}
		f.IP.SetLengths(len(chunk))
		f.IP.UpdateChecksum()
		frags = append(frags, f)
	}
	return frags, nil
}

// fragKey identifies a fragment series per RFC 791.
type fragKey struct {
	src, dst Addr
	proto    uint8
	id       uint16
}

type fragPiece struct {
	off  int // bytes
	data []byte
	last bool
}

type fragSeries struct {
	pieces []fragPiece
	// policy FirstWins retains the first copy of overlapping bytes;
	// otherwise the latest copy wins.
	haveLast bool
	totalLen int
	// born is the virtual time the series was opened (AddAt); the
	// expiry sweep evicts series older than the reassembler's TTL.
	born time.Duration
}

// OverlapPolicy selects which copy of overlapping fragment/segment data
// a reassembler keeps. The paper (§3.2, citing Khattak et al.) reports
// the GFW prefers the former copy for IP fragments and the latter for
// TCP segments, while end hosts vary.
type OverlapPolicy int

const (
	// FirstWins keeps the data that arrived first (GFW IP-fragment
	// behaviour; also BSD-style segment reassembly).
	FirstWins OverlapPolicy = iota
	// LastWins lets newly arrived data overwrite (GFW TCP-segment
	// behaviour).
	LastWins
)

// Reassembler reassembles IP fragments into whole datagrams. Its
// overlap policy is configurable because the divergence between
// implementations is exactly what the evasion strategies exploit.
//
// Incomplete series do not linger forever: AddAt evicts series older
// than TTL (virtual time) and, when MaxSeries is exceeded, the oldest
// series — both real-implementation behaviours, and both necessary to
// keep a long campaign's memory bounded against deliberately
// unfinished fragment trains (the §3.2 evasions send plenty).
type Reassembler struct {
	Policy OverlapPolicy
	// TTL is how long an incomplete series may wait for its missing
	// fragments; MaxSeries caps concurrently open series. Zero disables
	// the corresponding limit. NewReassembler sets both defaults.
	TTL       time.Duration
	MaxSeries int

	series  map[fragKey]*fragSeries
	order   []seriesRef // series in creation order; may hold stale refs
	evicted uint64
	lastNow time.Duration
}

// seriesRef pins an order entry to a specific series incarnation, so a
// key reused after completion is not confused with its predecessor.
type seriesRef struct {
	key fragKey
	s   *fragSeries
}

// Default reassembly limits: Linux uses 30s (ip_frag_time) and bounds
// reassembly memory; 256 open series is far beyond anything the
// simulated evasions produce in flight.
const (
	DefaultFragTTL       = 30 * time.Second
	DefaultFragMaxSeries = 256
)

// NewReassembler returns a reassembler with the given overlap policy
// and default expiry limits.
func NewReassembler(policy OverlapPolicy) *Reassembler {
	return &Reassembler{
		Policy:    policy,
		TTL:       DefaultFragTTL,
		MaxSeries: DefaultFragMaxSeries,
		series:    make(map[fragKey]*fragSeries),
	}
}

// Add offers a packet to the reassembler with no clock advance: expiry
// still applies, measured against the latest time AddAt has seen.
func (r *Reassembler) Add(p *Packet) (*Packet, error) {
	return r.AddAt(p, r.lastNow)
}

// AddAt offers a packet to the reassembler at virtual time now. Whole
// datagrams are returned unchanged. Fragments are buffered; when a
// series completes, the reassembled datagram is parsed and returned.
// Otherwise AddAt returns nil. Expired and over-cap series are evicted
// first (see TakeEvicted).
func (r *Reassembler) AddAt(p *Packet, now time.Duration) (*Packet, error) {
	if now > r.lastNow {
		r.lastNow = now
	}
	r.expire(r.lastNow)
	if !p.IP.IsFragment() {
		return p, nil
	}
	key := fragKey{src: p.IP.Src, dst: p.IP.Dst, proto: p.IP.Protocol, id: p.IP.ID}
	s := r.series[key]
	if s == nil {
		s = &fragSeries{born: r.lastNow}
		r.series[key] = s
		r.order = append(r.order, seriesRef{key: key, s: s})
		for r.MaxSeries > 0 && len(r.series) > r.MaxSeries {
			r.evictOldest()
		}
	}
	var data []byte
	if p.IP.FragOffset == 0 {
		// Emit the first fragment's stored bytes verbatim: its L4
		// checksum is a piece of the original whole segment's checksum
		// and must not be recomputed over the fragment alone.
		data = p.Serialize(SerializeOptions{})[p.IP.HeaderLen():]
	} else {
		data = append([]byte(nil), p.Payload...)
	}
	piece := fragPiece{off: int(p.IP.FragOffset) * 8, data: data, last: !p.IP.MoreFragments()}
	if piece.last {
		s.haveLast = true
		s.totalLen = piece.off + len(piece.data)
	}
	s.pieces = append(s.pieces, piece)
	if !s.haveLast {
		return nil, nil
	}
	buf, ok := s.assemble(r.Policy)
	if !ok {
		return nil, nil
	}
	delete(r.series, key)
	hdr := p.IP.Clone()
	hdr.Flags &^= IPFlagMoreFragments
	hdr.FragOffset = 0
	hdr.SetLengths(len(buf))
	wire := hdr.SerializeTo(nil, len(buf), SerializeOptions{ComputeChecksums: true, FixLengths: true})
	wire = append(wire, buf...)
	return Parse(wire)
}

// assemble tries to build the full byte range [0, totalLen). It reports
// ok=false while gaps remain.
func (s *fragSeries) assemble(policy OverlapPolicy) ([]byte, bool) {
	buf := make([]byte, s.totalLen)
	written := make([]bool, s.totalLen)
	pieces := s.pieces
	if policy == FirstWins {
		// Apply in arrival order but never overwrite.
		for _, pc := range pieces {
			for i, b := range pc.data {
				at := pc.off + i
				if at >= len(buf) {
					break
				}
				if !written[at] {
					buf[at] = b
					written[at] = true
				}
			}
		}
	} else {
		for _, pc := range pieces {
			for i, b := range pc.data {
				at := pc.off + i
				if at >= len(buf) {
					break
				}
				buf[at] = b
				written[at] = true
			}
		}
	}
	for _, w := range written {
		if !w {
			return nil, false
		}
	}
	return buf, true
}

// expire evicts series whose TTL has elapsed at virtual time now,
// draining stale order entries (completed series) as it goes.
func (r *Reassembler) expire(now time.Duration) {
	for len(r.order) > 0 {
		ref := r.order[0]
		if r.series[ref.key] != ref.s {
			// Completed or already evicted; drop the stale entry.
			r.order = r.order[1:]
			continue
		}
		if r.TTL > 0 && now-ref.s.born >= r.TTL {
			delete(r.series, ref.key)
			r.order = r.order[1:]
			r.evicted++
			continue
		}
		break
	}
	if len(r.order) == 0 {
		r.order = nil
	}
}

// evictOldest drops the oldest live series (MaxSeries pressure).
func (r *Reassembler) evictOldest() {
	for len(r.order) > 0 {
		ref := r.order[0]
		r.order = r.order[1:]
		if r.series[ref.key] == ref.s {
			delete(r.series, ref.key)
			r.evicted++
			return
		}
	}
}

// TakeEvicted returns the number of series evicted (TTL or cap) since
// the last call and resets the counter — the hook call sites use to
// feed an observability counter.
func (r *Reassembler) TakeEvicted() uint64 {
	n := r.evicted
	r.evicted = 0
	return n
}

// Pending returns the number of incomplete fragment series held.
func (r *Reassembler) Pending() int { return len(r.series) }
