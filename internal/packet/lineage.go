package packet

import "sync"

// Origin identifies which layer crafted a packet — the first axis of
// the causal-tracing lineage model (see DESIGN.md "Causal tracing").
// Zero (OriginUnknown) is the value for packets crafted by code that
// predates or ignores lineage; everything still works, the trace just
// cannot attribute the packet.
type Origin uint8

const (
	// OriginUnknown: the crafting layer did not stamp the packet.
	OriginUnknown Origin = iota
	// OriginStack: a real endpoint TCP/IP stack built the packet.
	OriginStack
	// OriginStrategy: an evasion-strategy primitive crafted it (the
	// insertion packets, fragments and tampered copies of internal/core).
	OriginStrategy
	// OriginGFW: a censor device injected it (forged RSTs, SYN/ACKs,
	// DNS poison, active-probe traffic).
	OriginGFW
	// OriginMiddlebox: an in-path middlebox emitted it (reassembled
	// datagrams).
	OriginMiddlebox
	// OriginRouter: a router generated it (ICMP Time-Exceeded).
	OriginRouter
)

// String names the origin for traces and exports.
func (o Origin) String() string {
	switch o {
	case OriginStack:
		return "stack"
	case OriginStrategy:
		return "strategy"
	case OriginGFW:
		return "gfw"
	case OriginMiddlebox:
		return "middlebox"
	case OriginRouter:
		return "router"
	default:
		return "unknown"
	}
}

// Lineage is the per-packet causal metadata the tracing subsystem keys
// on. It lives inline in the pooled Packet struct so stamping it is a
// handful of integer/string-header stores — never an allocation — and
// costs nothing when tracing is disabled.
//
// Rules (enforced by the crafting layers, summarized in DESIGN.md):
//
//   - ID is the packet's wire identity, assigned exactly once by the
//     netem path the first time the packet is sent or injected
//     (Path.StampLineage). Crafting layers never assign IDs.
//   - Parent is the ID of the packet that caused this one: the segment
//     a challenge ACK answers, the client packet a forged RST punishes,
//     the intercepted packet an insertion packet shields, the last
//     fragment that completed a reassembly.
//   - Origin names the crafting layer.
//   - Crafter, for strategy-built packets, identifies the canonical
//     spec text of the primitive action that crafted it, as an interned
//     ref (see InternCrafter) so the struct stays pointer-free: every
//     Lineage store is then plain integer moves with no GC write
//     barrier, which keeps the zero-allocation hot path at its
//     pre-lineage speed.
type Lineage struct {
	ID      uint32
	Parent  uint32
	Origin  Origin
	Crafter CrafterRef
}

// CrafterRef is an interned crafter label: an index into the process-
// global label table. Zero means "no crafter". Refs are stable for the
// life of the process but not across processes — resolve with String()
// before exporting.
type CrafterRef uint16

var crafters struct {
	mu    sync.RWMutex
	ids   map[string]CrafterRef
	names []string
}

// InternCrafter registers a crafter label and returns its ref.
// Interning happens at strategy-compile time (cold); the hot path only
// copies the returned integer. The zero ref is reserved for "", and the
// table is append-only, so a ref resolves to the same label forever.
func InternCrafter(name string) CrafterRef {
	if name == "" {
		return 0
	}
	crafters.mu.Lock()
	defer crafters.mu.Unlock()
	if crafters.ids == nil {
		crafters.ids = make(map[string]CrafterRef)
		crafters.names = []string{""}
	}
	if id, ok := crafters.ids[name]; ok {
		return id
	}
	if len(crafters.names) > 0xffff {
		// Table full (65535 distinct labels): record the packet as
		// uncrafted rather than corrupting earlier refs.
		return 0
	}
	id := CrafterRef(len(crafters.names))
	crafters.names = append(crafters.names, name)
	crafters.ids[name] = id
	return id
}

// String resolves the ref back to its label ("" for the zero ref or a
// ref this process never interned).
func (r CrafterRef) String() string {
	if r == 0 {
		return ""
	}
	crafters.mu.RLock()
	defer crafters.mu.RUnlock()
	if int(r) >= len(crafters.names) {
		return ""
	}
	return crafters.names[r]
}

// child derives the lineage a copy of this packet starts with: the
// copy has no wire identity of its own yet, and its parent is the
// original when the original has been on the wire (insertion-wave
// clones), otherwise whatever parent the original already carried
// (clones of not-yet-sent pieces).
func (l Lineage) child() Lineage {
	c := l
	if l.ID != 0 {
		c.Parent = l.ID
	}
	c.ID = 0
	return c
}
