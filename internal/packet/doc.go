// Package packet implements the wire formats the rest of the system is
// built on: IPv4, TCP (with options including the MD5 signature option of
// RFC 2385), UDP, and a minimal ICMP. It provides real serialization and
// parsing with Internet checksums, IP fragmentation and reassembly, and
// modular-arithmetic helpers for TCP sequence numbers.
//
// The API follows the gopacket idiom: types expose SerializeTo-style
// serialization and DecodeFromBytes-style parsing, and the Packet
// container gives typed access to each layer. Unlike gopacket, the types
// here are plain structs designed to be crafted field-by-field, because
// the whole point of this library is sending packets whose fields are
// deliberately wrong (bad checksums, lying length fields, stale
// timestamps, unsolicited MD5 options).
package packet
