package packet

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// UDPHeader is a UDP header.
type UDPHeader struct {
	SrcPort, DstPort uint16
	Length           uint16 // header + payload; filled when opts.FixLengths
	Checksum         uint16 // filled when opts.ComputeChecksums
}

// SerializeTo appends the encoded header and payload to buf.
func (h *UDPHeader) SerializeTo(buf []byte, src, dst Addr, payload []byte, opts SerializeOptions) []byte {
	if opts.FixLengths {
		h.Length = uint16(UDPHeaderLen + len(payload))
	}
	start := len(buf)
	out := append(buf, make([]byte, UDPHeaderLen)...)
	out = append(out, payload...)
	b := out[start:]
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint16(b[4:], h.Length)
	if opts.ComputeChecksums {
		binary.BigEndian.PutUint16(b[6:], 0)
		ck := Checksum(b, pseudoHeaderSum(src, dst, ProtoUDP, len(b)))
		if ck == 0 {
			ck = 0xffff // RFC 768: transmitted zero means "no checksum"
		}
		h.Checksum = ck
	}
	binary.BigEndian.PutUint16(b[6:], h.Checksum)
	return out
}

// computeChecksum returns the correct checksum for the current header
// fields (including whatever Length holds) and payload, arithmetically.
// A computed zero maps to 0xffff per RFC 768.
func (h *UDPHeader) computeChecksum(src, dst Addr, payload []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, ProtoUDP, UDPHeaderLen+len(payload))
	sum += uint32(h.SrcPort) + uint32(h.DstPort) + uint32(h.Length)
	ck := foldChecksum(sum + regionSum(payload))
	if ck == 0 {
		ck = 0xffff
	}
	return ck
}

// DecodeFromBytes parses a UDP header, returning the bytes consumed.
func (h *UDPHeader) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < UDPHeaderLen {
		return 0, fmt.Errorf("udp: truncated header: %d bytes", len(data))
	}
	h.SrcPort = binary.BigEndian.Uint16(data[0:])
	h.DstPort = binary.BigEndian.Uint16(data[2:])
	h.Length = binary.BigEndian.Uint16(data[4:])
	h.Checksum = binary.BigEndian.Uint16(data[6:])
	return UDPHeaderLen, nil
}

// Clone returns a copy of the header.
func (h *UDPHeader) Clone() *UDPHeader {
	c := *h
	return &c
}
