package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// TCP option kinds used in this codebase.
const (
	OptEnd           = 0
	OptNOP           = 1
	OptMSS           = 2
	OptWindowScale   = 3
	OptSACKPermitted = 4
	OptTimestamps    = 8
	OptMD5           = 19 // RFC 2385 TCP MD5 signature option
)

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCPOption is a single TCP option as it appears on the wire. NOP and
// End-of-Options carry no data and no length byte.
type TCPOption struct {
	Kind byte
	Data []byte
}

// TCPHeader is a TCP header plus options. DataOffset is implicit (from
// options) unless opts.FixLengths is false and RawDataOffset is nonzero,
// which allows crafting the "TCP header length < 20" discrepancy of
// Table 3.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq              Seq
	Ack              Seq
	Flags            uint8
	Window           uint16
	Checksum         uint16 // filled by SerializeTo when opts.ComputeChecksums
	Urgent           uint16
	Options          []TCPOption
	// RawDataOffset, when nonzero and FixLengths is false, overrides the
	// data-offset field (in 32-bit words) emitted on the wire.
	RawDataOffset uint8
}

// optionsLen returns the encoded length of the options, padded to a
// 4-byte multiple.
func (h *TCPHeader) optionsLen() int {
	n := 0
	for _, o := range h.Options {
		switch o.Kind {
		case OptEnd, OptNOP:
			n++
		default:
			n += 2 + len(o.Data)
		}
	}
	return (n + 3) &^ 3
}

// HeaderLen returns the encoded header length in bytes.
func (h *TCPHeader) HeaderLen() int { return TCPHeaderLen + h.optionsLen() }

// HasFlag reports whether all bits in f are set.
func (h *TCPHeader) HasFlag(f uint8) bool { return h.Flags&f == f }

// FlagsOnly reports whether the flag set is exactly f.
func (h *TCPHeader) FlagsOnly(f uint8) bool { return h.Flags == f }

// FindOption returns the first option with the given kind, if present.
func (h *TCPHeader) FindOption(kind byte) (TCPOption, bool) {
	for _, o := range h.Options {
		if o.Kind == kind {
			return o, true
		}
	}
	return TCPOption{}, false
}

// Timestamps returns the TSval/TSecr pair from the timestamps option.
func (h *TCPHeader) Timestamps() (tsval, tsecr uint32, ok bool) {
	o, found := h.FindOption(OptTimestamps)
	if !found || len(o.Data) != 8 {
		return 0, 0, false
	}
	return binary.BigEndian.Uint32(o.Data), binary.BigEndian.Uint32(o.Data[4:]), true
}

// HasMD5 reports whether an RFC 2385 MD5 signature option is present.
func (h *TCPHeader) HasMD5() bool {
	_, ok := h.FindOption(OptMD5)
	return ok
}

// MSSOption builds a maximum-segment-size option.
func MSSOption(mss uint16) TCPOption {
	d := make([]byte, 2)
	binary.BigEndian.PutUint16(d, mss)
	return TCPOption{Kind: OptMSS, Data: d}
}

// TimestampOption builds an RFC 7323 timestamps option.
func TimestampOption(tsval, tsecr uint32) TCPOption {
	d := make([]byte, 8)
	binary.BigEndian.PutUint32(d, tsval)
	binary.BigEndian.PutUint32(d[4:], tsecr)
	return TCPOption{Kind: OptTimestamps, Data: d}
}

// MD5Option builds an RFC 2385 MD5 signature option. The digest need not
// be a valid signature — an unsolicited MD5 option is ignored by servers
// that never negotiated TCP-MD5, which is exactly what makes it a good
// insertion packet (Table 3).
func MD5Option(digest [16]byte) TCPOption {
	return TCPOption{Kind: OptMD5, Data: append([]byte(nil), digest[:]...)}
}

// SerializeTo appends the encoded header and payload to buf. src/dst are
// the IPv4 endpoints for the pseudo-header checksum.
func (h *TCPHeader) SerializeTo(buf []byte, src, dst Addr, payload []byte, opts SerializeOptions) []byte {
	hl := h.HeaderLen()
	start := len(buf)
	out := append(buf, make([]byte, hl)...)
	out = append(out, payload...)
	b := out[start:]
	binary.BigEndian.PutUint16(b[0:], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:], h.DstPort)
	binary.BigEndian.PutUint32(b[4:], uint32(h.Seq))
	binary.BigEndian.PutUint32(b[8:], uint32(h.Ack))
	off := uint8(hl / 4)
	if !opts.FixLengths && h.RawDataOffset != 0 {
		off = h.RawDataOffset
	}
	b[12] = off << 4
	b[13] = h.Flags
	binary.BigEndian.PutUint16(b[14:], h.Window)
	binary.BigEndian.PutUint16(b[18:], h.Urgent)
	// Options.
	p := 20
	for _, o := range h.Options {
		switch o.Kind {
		case OptEnd, OptNOP:
			b[p] = o.Kind
			p++
		default:
			b[p] = o.Kind
			b[p+1] = byte(2 + len(o.Data))
			copy(b[p+2:], o.Data)
			p += 2 + len(o.Data)
		}
	}
	// Padding bytes are already zero (End-of-Options).
	if opts.ComputeChecksums {
		binary.BigEndian.PutUint16(b[16:], 0)
		h.Checksum = Checksum(b, pseudoHeaderSum(src, dst, ProtoTCP, len(b)))
	}
	binary.BigEndian.PutUint16(b[16:], h.Checksum)
	return out
}

// DecodeFromBytes parses a TCP header from data, returning the header
// length consumed. The payload is data[consumed:].
func (h *TCPHeader) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < TCPHeaderLen {
		return 0, fmt.Errorf("tcp: truncated header: %d bytes", len(data))
	}
	h.SrcPort = binary.BigEndian.Uint16(data[0:])
	h.DstPort = binary.BigEndian.Uint16(data[2:])
	h.Seq = Seq(binary.BigEndian.Uint32(data[4:]))
	h.Ack = Seq(binary.BigEndian.Uint32(data[8:]))
	hl := int(data[12]>>4) * 4
	h.RawDataOffset = data[12] >> 4
	h.Flags = data[13]
	h.Window = binary.BigEndian.Uint16(data[14:])
	h.Checksum = binary.BigEndian.Uint16(data[16:])
	h.Urgent = binary.BigEndian.Uint16(data[18:])
	h.Options = nil
	if hl < TCPHeaderLen {
		return 0, fmt.Errorf("tcp: header length %d < 20", hl)
	}
	if len(data) < hl {
		return 0, fmt.Errorf("tcp: truncated options: have %d want %d", len(data), hl)
	}
	p := TCPHeaderLen
opts:
	for p < hl {
		switch kind := data[p]; kind {
		case OptEnd:
			break opts
		case OptNOP:
			h.Options = append(h.Options, TCPOption{Kind: OptNOP})
			p++
		default:
			if p+1 >= hl {
				return 0, fmt.Errorf("tcp: option %d truncated", kind)
			}
			olen := int(data[p+1])
			if olen < 2 || p+olen > hl {
				return 0, fmt.Errorf("tcp: option %d bad length %d", kind, olen)
			}
			h.Options = append(h.Options, TCPOption{
				Kind: kind,
				Data: append([]byte(nil), data[p+2:p+olen]...),
			})
			p += olen
		}
	}
	return hl, nil
}

// VerifyChecksum reports whether the checksum field is correct for the
// current header contents and payload, given the IPv4 endpoints.
func (h *TCPHeader) VerifyChecksum(src, dst Addr, payload []byte) bool {
	want := h.ComputeChecksum(src, dst, payload)
	return h.Checksum == want
}

// ComputeChecksum returns the correct checksum for the current header
// contents and payload without modifying the header. It sums the fields
// arithmetically — this runs per packet per checksum-validating
// middlebox, so it must not serialize.
func (h *TCPHeader) ComputeChecksum(src, dst Addr, payload []byte) uint16 {
	return h.checksumOver(src, dst, payload, false)
}

// checksumFixed is ComputeChecksum under FixLengths semantics: the
// data-offset field is taken as the honest header length even when
// RawDataOffset lies. Finalize uses it; it must match what SerializeTo
// with FixLengths emits.
func (h *TCPHeader) checksumFixed(src, dst Addr, payload []byte) uint16 {
	return h.checksumOver(src, dst, payload, true)
}

func (h *TCPHeader) checksumOver(src, dst Addr, payload []byte, fixLengths bool) uint16 {
	hl := h.HeaderLen()
	sum := pseudoHeaderSum(src, dst, ProtoTCP, hl+len(payload))
	sum += uint32(h.SrcPort) + uint32(h.DstPort)
	sum += uint32(h.Seq)>>16 + uint32(h.Seq)&0xffff
	sum += uint32(h.Ack)>>16 + uint32(h.Ack)&0xffff
	off := uint8(hl / 4)
	if !fixLengths && h.RawDataOffset != 0 {
		off = h.RawDataOffset
	}
	sum += uint32(off<<4)<<8 | uint32(h.Flags)
	sum += uint32(h.Window) + uint32(h.Urgent)
	// Options, byte by byte with running parity: an odd-length option
	// shifts the alignment of everything after it, exactly as on the
	// wire. Trailing padding is zero and contributes nothing.
	shift := uint(8)
	for _, o := range h.Options {
		sum += uint32(o.Kind) << shift
		shift ^= 8
		if o.Kind == OptEnd || o.Kind == OptNOP {
			continue
		}
		sum += uint32(byte(2+len(o.Data))) << shift
		shift ^= 8
		for _, b := range o.Data {
			sum += uint32(b) << shift
			shift ^= 8
		}
	}
	// The payload begins at offset hl, a 4-byte multiple, so its words
	// align independently of the options region.
	return foldChecksum(sum + regionSum(payload))
}

// Clone returns a deep copy of the header.
func (h *TCPHeader) Clone() *TCPHeader {
	c := *h
	c.Options = make([]TCPOption, len(h.Options))
	for i, o := range h.Options {
		c.Options[i] = TCPOption{Kind: o.Kind, Data: append([]byte(nil), o.Data...)}
	}
	return &c
}

// FlagString renders a flag set like "SYN|ACK", or "none" for a
// flagless packet.
func FlagString(f uint8) string {
	if f == 0 {
		return "none"
	}
	names := []struct {
		bit  uint8
		name string
	}{
		{FlagSYN, "SYN"}, {FlagFIN, "FIN"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagACK, "ACK"}, {FlagURG, "URG"},
	}
	var parts []string
	for _, n := range names {
		if f&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, "|")
}
