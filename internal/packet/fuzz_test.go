package packet

import (
	"testing"
)

// FuzzParse hammers the wire-format parser with arbitrary bytes: it
// must never panic, and anything it accepts must re-serialize without
// panicking either.
func FuzzParse(f *testing.F) {
	// Seed with real datagrams of every flavour.
	tcp := NewTCP(addrA, 4000, addrB, 80, FlagPSH|FlagACK, 100, 200, []byte("GET / HTTP/1.1\r\n\r\n"))
	tcp.TCP.Options = []TCPOption{MSSOption(1460), TimestampOption(1, 2), MD5Option([16]byte{})}
	tcp.Finalize()
	f.Add(tcp.Serialize(SerializeOptions{ComputeChecksums: true, FixLengths: true}))
	udp := NewUDP(addrA, 53, addrB, 53, []byte{1, 2, 3})
	f.Add(udp.Serialize(SerializeOptions{ComputeChecksums: true, FixLengths: true}))
	icmp := &Packet{IP: IPv4Header{TTL: 64, Protocol: ProtoICMP, Src: addrA, Dst: addrB},
		ICMP: TimeExceeded(tcp)}
	icmp.Finalize()
	f.Add(icmp.Serialize(SerializeOptions{ComputeChecksums: true, FixLengths: true}))
	frags, _ := Fragment(tcp, 60)
	for _, fr := range frags {
		f.Add(fr.Serialize(SerializeOptions{ComputeChecksums: true, FixLengths: true}))
	}
	f.Add([]byte{0x45})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		// Whatever parsed must serialize and re-parse.
		wire := p.Serialize(SerializeOptions{})
		if _, err := Parse(wire); err != nil && p.TCP != nil {
			// Lying header fields can make a parsed packet that does
			// not round-trip (e.g. RawDataOffset < 5 came from a
			// truncated options region); that is acceptable, panics are
			// not.
			_ = err
		}
		_ = p.Clone()
		_ = p.String()
		_ = p.Tuple()
	})
}

// FuzzReassembler feeds arbitrary fragment series to the reassembler.
func FuzzReassembler(f *testing.F) {
	p := NewTCP(addrA, 1, addrB, 2, FlagACK, 1, 1, make([]byte, 120))
	frags, _ := Fragment(p, 60)
	for _, fr := range frags {
		f.Add(fr.Serialize(SerializeOptions{ComputeChecksums: true, FixLengths: true}), true)
	}
	f.Fuzz(func(t *testing.T, data []byte, lastWins bool) {
		pkt, err := Parse(data)
		if err != nil {
			return
		}
		policy := FirstWins
		if lastWins {
			policy = LastWins
		}
		r := NewReassembler(policy)
		for i := 0; i < 3; i++ {
			out, err := r.Add(pkt.Clone())
			if err != nil {
				return
			}
			if out != nil && out.IP.IsFragment() {
				t.Fatal("reassembler returned a fragment")
			}
		}
	})
}
