package packet

import (
	"encoding/binary"
	"fmt"
)

// ICMP types used in this codebase.
const (
	ICMPEchoReply    = 0
	ICMPUnreachable  = 3
	ICMPEcho         = 8
	ICMPTimeExceeded = 11
)

// ICMPMessage is a minimal ICMP message: type, code, and the body that
// follows the 4-byte rest-of-header (which we keep raw in Rest). For
// Time-Exceeded and Unreachable, Body carries the original IP header
// plus the first 8 bytes of its payload, per RFC 792 — enough for a
// tcptraceroute-style hop-count measurement to match probes to replies.
type ICMPMessage struct {
	Type     uint8
	Code     uint8
	Checksum uint16
	Rest     [4]byte
	Body     []byte
}

// SerializeTo appends the encoded message to buf.
func (m *ICMPMessage) SerializeTo(buf []byte, opts SerializeOptions) []byte {
	start := len(buf)
	out := append(buf, make([]byte, 8)...)
	out = append(out, m.Body...)
	b := out[start:]
	b[0] = m.Type
	b[1] = m.Code
	copy(b[4:8], m.Rest[:])
	if opts.ComputeChecksums {
		binary.BigEndian.PutUint16(b[2:], 0)
		m.Checksum = Checksum(b, 0)
	}
	binary.BigEndian.PutUint16(b[2:], m.Checksum)
	return out
}

// computeChecksum returns the correct checksum for the current message
// contents, arithmetically.
func (m *ICMPMessage) computeChecksum() uint16 {
	sum := uint32(m.Type)<<8 | uint32(m.Code)
	sum += uint32(m.Rest[0])<<8 | uint32(m.Rest[1])
	sum += uint32(m.Rest[2])<<8 | uint32(m.Rest[3])
	return foldChecksum(sum + regionSum(m.Body))
}

// DecodeFromBytes parses an ICMP message.
func (m *ICMPMessage) DecodeFromBytes(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("icmp: truncated message: %d bytes", len(data))
	}
	m.Type = data[0]
	m.Code = data[1]
	m.Checksum = binary.BigEndian.Uint16(data[2:])
	copy(m.Rest[:], data[4:8])
	m.Body = append([]byte(nil), data[8:]...)
	return nil
}

// TimeExceeded builds the ICMP Time-Exceeded message a router emits when
// it drops orig for TTL expiry. The body quotes orig's IP header and the
// first 8 bytes of its L4 payload.
func TimeExceeded(orig *Packet) *ICMPMessage {
	quoted := orig.Serialize(SerializeOptions{ComputeChecksums: true, FixLengths: true})
	hl := orig.IP.HeaderLen()
	end := hl + 8
	if end > len(quoted) {
		end = len(quoted)
	}
	return &ICMPMessage{Type: ICMPTimeExceeded, Body: append([]byte(nil), quoted[:end]...)}
}

// QuotedTCP extracts the quoted original IPv4+TCP ports/seq from a
// Time-Exceeded or Unreachable body, when the quoted datagram was TCP.
func (m *ICMPMessage) QuotedTCP() (ip IPv4Header, srcPort, dstPort uint16, seq Seq, ok bool) {
	n, err := ip.DecodeFromBytes(m.Body)
	if err != nil || ip.Protocol != ProtoTCP || len(m.Body) < n+8 {
		return ip, 0, 0, 0, false
	}
	b := m.Body[n:]
	return ip, binary.BigEndian.Uint16(b[0:]), binary.BigEndian.Uint16(b[2:]), Seq(binary.BigEndian.Uint32(b[4:])), true
}

// Clone returns a deep copy of the message.
func (m *ICMPMessage) Clone() *ICMPMessage {
	c := *m
	c.Body = append([]byte(nil), m.Body...)
	return &c
}
