package packet

import (
	"sync"
	"sync/atomic"
)

// Pool recycles Packets through a sync.Pool-backed arena. A pooled
// Packet carries its own header and buffer storage inline, so crafting
// a segment from a pool is allocation-free in steady state: the L4
// header comes from the packet's embedded store, the payload is copied
// into a reusable buffer, and TCP option data lands in a reusable
// scratch region.
//
// Lifecycle rules (see DESIGN.md "Performance"):
//
//   - Ownership of an in-flight packet belongs to the netem layer;
//     everything that wants bytes past the delivery event must copy
//     (the stacks, the GFW streams, and the reassemblers all do).
//   - Release is called only at provably-dead points — link-loss and
//     router drops, middlebox Drop verdicts, and after an endpoint's
//     Deliver returns. A missed Release is harmless (the GC takes it);
//     a premature one is corruption, so when in doubt, don't.
//   - The netem path never releases while a Trace callback is attached:
//     TraceEvents hold *Packet pointers for later rendering.
//
// All methods are safe on a nil *Pool and fall back to plain heap
// allocation, so call sites need no branching.
type Pool struct {
	p sync.Pool

	// Counters are atomic: one pool may serve every worker of a
	// parallel campaign.
	gets atomic.Uint64
	puts atomic.Uint64
	news atomic.Uint64
}

// PoolStats is a snapshot of pool traffic. Recycled = Gets - News is
// the number of allocations the pool avoided.
type PoolStats struct {
	Gets, Puts, News uint64
}

// Recycled returns how many Get calls were served from recycled
// packets rather than fresh allocations.
func (s PoolStats) Recycled() uint64 { return s.Gets - s.News }

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Stats returns a snapshot of the pool's traffic counters.
func (pl *Pool) Stats() PoolStats {
	if pl == nil {
		return PoolStats{}
	}
	return PoolStats{Gets: pl.gets.Load(), Puts: pl.puts.Load(), News: pl.news.Load()}
}

// Get returns a zeroed packet owned by the pool (or a plain heap packet
// when pl is nil). The caller must not hold references to any previous
// incarnation's headers or buffers.
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	pl.gets.Add(1)
	if v := pl.p.Get(); v != nil {
		p := v.(*Packet)
		p.reset()
		p.free = false
		return p
	}
	pl.news.Add(1)
	return &Packet{pool: pl}
}

// put returns p to the pool. Callers go through Packet.Release.
func (pl *Pool) put(p *Packet) {
	pl.puts.Add(1)
	pl.p.Put(p)
}

// Release returns the packet to its owning pool, if any. Heap packets
// (and packets from a nil pool) ignore it. Releasing the same packet
// twice is a hard ownership bug and panics rather than silently
// corrupting a future packet.
func (p *Packet) Release() {
	if p == nil || p.pool == nil {
		return
	}
	if p.free {
		panic("packet: double Release")
	}
	p.free = true
	p.pool.put(p)
}

// Pooled reports whether the packet came from a Pool.
func (p *Packet) Pooled() bool { return p.pool != nil }

// reset clears the packet for reuse, keeping the backing storage.
func (p *Packet) reset() {
	p.IP = IPv4Header{}
	p.TCP, p.UDP, p.ICMP = nil, nil, nil
	p.Payload = nil
	p.BadTCPChecksum = false
	p.Lin = Lineage{}
	p.payloadBuf = p.payloadBuf[:0]
	p.optBuf = p.optBuf[:0]
	p.ipOptBuf = p.ipOptBuf[:0]
	opts := p.tcpStore.Options[:0]
	p.tcpStore = TCPHeader{Options: opts}
	p.udpStore = UDPHeader{}
	body := p.icmpStore.Body
	p.icmpStore = ICMPMessage{}
	p.icmpStore.Body = body[:0]
}

// UseTCP points the packet at its embedded TCP header store (cleared)
// and returns it.
func (p *Packet) UseTCP() *TCPHeader {
	opts := p.tcpStore.Options[:0]
	p.tcpStore = TCPHeader{Options: opts}
	p.TCP = &p.tcpStore
	return p.TCP
}

// UseUDP points the packet at its embedded UDP header store (cleared)
// and returns it.
func (p *Packet) UseUDP() *UDPHeader {
	p.udpStore = UDPHeader{}
	p.UDP = &p.udpStore
	return p.UDP
}

// UseICMP points the packet at its embedded ICMP store (cleared, body
// truncated) and returns it.
func (p *Packet) UseICMP() *ICMPMessage {
	body := p.icmpStore.Body
	p.icmpStore = ICMPMessage{}
	p.icmpStore.Body = body[:0]
	p.ICMP = &p.icmpStore
	return p.ICMP
}

// SetPayload copies data into the packet's reusable payload buffer.
func (p *Packet) SetPayload(data []byte) {
	p.payloadBuf = append(p.payloadBuf[:0], data...)
	p.Payload = p.payloadBuf
}

// optScratch carves n fresh bytes out of the option-data scratch
// region. Earlier slices stay valid across growth (they keep pointing
// at the old backing array, which is simply not reused).
func (p *Packet) optScratch(n int) []byte {
	off := len(p.optBuf)
	if cap(p.optBuf)-off < n {
		grown := make([]byte, off, 2*cap(p.optBuf)+n)
		copy(grown, p.optBuf)
		p.optBuf = grown
	}
	p.optBuf = p.optBuf[:off+n]
	return p.optBuf[off : off+n]
}

// AddMSSOption appends a maximum-segment-size option, reusing the
// packet's option scratch.
func (p *Packet) AddMSSOption(mss uint16) {
	d := p.optScratch(2)
	d[0], d[1] = byte(mss>>8), byte(mss)
	p.TCP.Options = append(p.TCP.Options, TCPOption{Kind: OptMSS, Data: d})
}

// AddTimestampOption appends an RFC 7323 timestamps option, reusing the
// packet's option scratch.
func (p *Packet) AddTimestampOption(tsval, tsecr uint32) {
	d := p.optScratch(8)
	d[0], d[1], d[2], d[3] = byte(tsval>>24), byte(tsval>>16), byte(tsval>>8), byte(tsval)
	d[4], d[5], d[6], d[7] = byte(tsecr>>24), byte(tsecr>>16), byte(tsecr>>8), byte(tsecr)
	p.TCP.Options = append(p.TCP.Options, TCPOption{Kind: OptTimestamps, Data: d})
}

// NewTCP is the pooled equivalent of packet.NewTCP: a finalized TCP
// packet with the same defaults (TTL 64, window 29200).
func (pl *Pool) NewTCP(src Addr, sport uint16, dst Addr, dport uint16, flags uint8, seq, ack Seq, payload []byte) *Packet {
	p := pl.Get()
	p.IP = IPv4Header{TTL: 64, Protocol: ProtoTCP, Src: src, Dst: dst}
	tcp := p.UseTCP()
	tcp.SrcPort, tcp.DstPort = sport, dport
	tcp.Seq, tcp.Ack = seq, ack
	tcp.Flags = flags
	tcp.Window = 29200
	p.SetPayload(payload)
	return p.Finalize()
}

// NewUDP is the pooled equivalent of packet.NewUDP.
func (pl *Pool) NewUDP(src Addr, sport uint16, dst Addr, dport uint16, payload []byte) *Packet {
	p := pl.Get()
	p.IP = IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: src, Dst: dst}
	udp := p.UseUDP()
	udp.SrcPort, udp.DstPort = sport, dport
	p.SetPayload(payload)
	return p.Finalize()
}

// Clone is the pooled equivalent of Packet.Clone: a deep copy whose
// headers and buffers come from the pool packet's own storage, so the
// clone shares no memory with the original.
func (pl *Pool) Clone(src *Packet) *Packet {
	c := pl.Get()
	c.IP = src.IP
	c.Lin = src.Lin.child()
	if len(src.IP.Options) > 0 {
		c.ipOptBuf = append(c.ipOptBuf[:0], src.IP.Options...)
		c.IP.Options = c.ipOptBuf
	} else {
		c.IP.Options = nil
	}
	c.BadTCPChecksum = src.BadTCPChecksum
	switch {
	case src.TCP != nil:
		tcp := c.UseTCP()
		opts := tcp.Options
		*tcp = *src.TCP
		tcp.Options = opts
		for _, o := range src.TCP.Options {
			d := []byte(nil)
			if len(o.Data) > 0 {
				d = c.optScratch(len(o.Data))
				copy(d, o.Data)
			}
			tcp.Options = append(tcp.Options, TCPOption{Kind: o.Kind, Data: d})
		}
	case src.UDP != nil:
		*c.UseUDP() = *src.UDP
	case src.ICMP != nil:
		m := c.UseICMP()
		body := m.Body
		*m = *src.ICMP
		m.Body = append(body, src.ICMP.Body...)
	}
	c.SetPayload(src.Payload)
	return c
}

// TimeExceededPacket is the pooled equivalent of building a router's
// ICMP Time-Exceeded reply around packet.TimeExceeded: a finalized
// reply from src quoting orig's IP header and first 8 L4 bytes. Like
// TimeExceeded, it recomputes orig's checksums in place while quoting
// (the original is being dropped; routers quote honest bytes).
func (pl *Pool) TimeExceededPacket(orig *Packet, src Addr) *Packet {
	rep := pl.Get()
	rep.IP = IPv4Header{TTL: 64, Protocol: ProtoICMP, Src: src, Dst: orig.IP.Src}
	m := rep.UseICMP()
	m.Type = ICMPTimeExceeded

	orig.Finalize()
	body := m.Body[:0]
	body = orig.IP.SerializeTo(body, int(orig.IP.TotalLength)-orig.IP.HeaderLen(), SerializeOptions{})
	// First 8 bytes of the L4 header, via the option scratch so the
	// serialization is allocation-free too.
	l4 := rep.optBuf[:0]
	switch {
	case orig.TCP != nil:
		l4 = orig.TCP.SerializeTo(l4, orig.IP.Src, orig.IP.Dst, nil, SerializeOptions{})
	case orig.UDP != nil:
		l4 = orig.UDP.SerializeTo(l4, orig.IP.Src, orig.IP.Dst, nil, SerializeOptions{})
	case orig.ICMP != nil:
		l4 = orig.ICMP.SerializeTo(l4, SerializeOptions{})
	default:
		l4 = append(l4, orig.Payload...)
	}
	rep.optBuf = l4[:0]
	if len(l4) > 8 {
		l4 = l4[:8]
	}
	m.Body = append(body, l4...)
	return rep.Finalize()
}
