package packet

import (
	"bytes"
	"testing"
	"time"
)

// makeFrags builds a two-fragment TCP datagram with the given IP ID.
func makeFrags(t *testing.T, id uint16) []*Packet {
	t.Helper()
	p := NewTCP(AddrFrom4(10, 0, 0, 1), 4000, AddrFrom4(203, 0, 113, 80), 80,
		FlagPSH|FlagACK, 100, 200, bytes.Repeat([]byte("a"), 20))
	p.IP.ID = id
	p.Finalize()
	frags, err := Fragment(p, 48)
	if err != nil {
		t.Fatalf("Fragment: %v", err)
	}
	if len(frags) < 2 {
		t.Fatalf("want >=2 fragments, got %d", len(frags))
	}
	return frags
}

// TestReassemblerExpiresStaleSeries: an incomplete series older than
// TTL is evicted; the late fragment then opens a fresh series instead
// of completing the stale one.
func TestReassemblerExpiresStaleSeries(t *testing.T) {
	r := NewReassembler(FirstWins)
	frags := makeFrags(t, 1)

	if whole, err := r.AddAt(frags[0], 0); err != nil || whole != nil {
		t.Fatalf("first fragment: whole=%v err=%v", whole, err)
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d", r.Pending())
	}

	// The closing fragment arrives after the TTL: the series must have
	// been evicted, so reassembly cannot complete.
	whole, err := r.AddAt(frags[1], DefaultFragTTL+time.Second)
	if err != nil || whole != nil {
		t.Fatalf("late fragment completed an expired series: whole=%v err=%v", whole, err)
	}
	if got := r.TakeEvicted(); got != 1 {
		t.Fatalf("evicted = %d, want 1", got)
	}
	if r.TakeEvicted() != 0 {
		t.Fatal("TakeEvicted did not reset")
	}
}

// TestReassemblerCompletesWithinTTL: the happy path is untouched by the
// expiry machinery.
func TestReassemblerCompletesWithinTTL(t *testing.T) {
	r := NewReassembler(FirstWins)
	frags := makeFrags(t, 2)
	r.AddAt(frags[0], 0)
	whole, err := r.AddAt(frags[1], DefaultFragTTL-time.Second)
	if err != nil || whole == nil {
		t.Fatalf("in-time completion failed: whole=%v err=%v", whole, err)
	}
	if whole.TCP == nil || len(whole.Payload) != 20 {
		t.Fatalf("reassembled datagram malformed: %v", whole)
	}
	if r.TakeEvicted() != 0 {
		t.Fatal("spurious eviction")
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d after completion", r.Pending())
	}
}

// TestReassemblerSeriesCap: opening more concurrent series than
// MaxSeries evicts the oldest, FIFO.
func TestReassemblerSeriesCap(t *testing.T) {
	r := NewReassembler(FirstWins)
	r.MaxSeries = 3
	series := make([][]*Packet, 5)
	for i := range series {
		series[i] = makeFrags(t, uint16(10+i))
		r.AddAt(series[i][0], 0) // open, never complete
	}
	if r.Pending() != 3 {
		t.Fatalf("pending = %d, want cap 3", r.Pending())
	}
	if got := r.TakeEvicted(); got != 2 {
		t.Fatalf("evicted = %d, want 2", got)
	}
	// The two oldest series are gone; their closers open fresh series.
	if whole, _ := r.AddAt(series[0][1], 0); whole != nil {
		t.Fatal("evicted series 0 still completed")
	}
	// The newest survivor still completes.
	if whole, _ := r.AddAt(series[4][1], 0); whole == nil {
		t.Fatal("surviving series 4 failed to complete")
	}
}

// TestReassemblerAddUsesLastSeenClock: plain Add (no clock) measures
// TTL against the most recent AddAt time instead of resetting it.
func TestReassemblerAddUsesLastSeenClock(t *testing.T) {
	r := NewReassembler(FirstWins)
	a := makeFrags(t, 30)
	b := makeFrags(t, 31)
	r.AddAt(a[0], 0)
	// Advance the clock far past the TTL via an unrelated series.
	r.AddAt(b[0], 2*DefaultFragTTL)
	if r.TakeEvicted() != 1 {
		t.Fatal("series a not expired by clock advance")
	}
	// Clock-less Add runs at the last seen time; series b is still young.
	if whole, _ := r.Add(b[1]); whole == nil {
		t.Fatal("series b should complete via Add")
	}
}
