package packet

import (
	"fmt"
)

// FourTuple identifies a TCP or UDP flow. Tuples compare with == and key
// maps directly.
type FourTuple struct {
	SrcAddr Addr
	SrcPort uint16
	DstAddr Addr
	DstPort uint16
}

// Reverse returns the tuple for the opposite direction.
func (t FourTuple) Reverse() FourTuple {
	return FourTuple{SrcAddr: t.DstAddr, SrcPort: t.DstPort, DstAddr: t.SrcAddr, DstPort: t.SrcPort}
}

// Canonical returns a direction-independent key: the tuple whose
// (addr, port) pair is lexically smaller comes first. Both directions of
// a connection map to the same canonical tuple.
func (t FourTuple) Canonical() FourTuple {
	if t.less() {
		return t
	}
	return t.Reverse()
}

func (t FourTuple) less() bool {
	for i := range t.SrcAddr {
		if t.SrcAddr[i] != t.DstAddr[i] {
			return t.SrcAddr[i] < t.DstAddr[i]
		}
	}
	return t.SrcPort < t.DstPort
}

// String renders "src:port>dst:port".
func (t FourTuple) String() string {
	return fmt.Sprintf("%v:%d>%v:%d", t.SrcAddr, t.SrcPort, t.DstAddr, t.DstPort)
}

// Packet is one IPv4 datagram in flight. Exactly one of TCP, UDP, ICMP
// is non-nil for a first fragment or whole datagram; all are nil for a
// non-first IP fragment, whose L4 bytes live in Payload.
type Packet struct {
	IP      IPv4Header
	TCP     *TCPHeader
	UDP     *UDPHeader
	ICMP    *ICMPMessage
	Payload []byte

	// BadTCPChecksum marks a packet whose TCP checksum was deliberately
	// corrupted after finalization. Receivers that validate checksums
	// honor the actual field; this flag exists only for trace labels.
	BadTCPChecksum bool

	// Lin is the causal-tracing lineage (see lineage.go): who crafted
	// the packet, which packet caused it, and its wire identity. The
	// fields are stamped unconditionally by the crafting layers — plain
	// integer/string-header stores, so the zero-allocation hot path is
	// untouched — and only read when tracing is enabled.
	Lin Lineage

	// Pooling support: the owning pool plus inline header and buffer
	// storage reused across incarnations (see pool.go). All zero for
	// ordinary heap packets, whose Use*/SetPayload calls then simply
	// borrow the embedded stores without recycling.
	pool       *Pool
	free       bool
	tcpStore   TCPHeader
	udpStore   UDPHeader
	icmpStore  ICMPMessage
	payloadBuf []byte
	optBuf     []byte
	ipOptBuf   []byte
}

// Tuple returns the flow four-tuple. For non-TCP/UDP packets the ports
// are zero.
func (p *Packet) Tuple() FourTuple {
	t := FourTuple{SrcAddr: p.IP.Src, DstAddr: p.IP.Dst}
	switch {
	case p.TCP != nil:
		t.SrcPort, t.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		t.SrcPort, t.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	return t
}

// SegLen returns the TCP sequence-space length this packet occupies:
// payload bytes plus one for SYN and one for FIN.
func (p *Packet) SegLen() int {
	if p.TCP == nil {
		return 0
	}
	n := len(p.Payload)
	if p.TCP.HasFlag(FlagSYN) {
		n++
	}
	if p.TCP.HasFlag(FlagFIN) {
		n++
	}
	return n
}

// EndSeq returns the sequence number just past this segment.
func (p *Packet) EndSeq() Seq {
	return p.TCP.Seq.Add(p.SegLen())
}

// Serialize encodes the full datagram to wire bytes.
func (p *Packet) Serialize(opts SerializeOptions) []byte {
	var l4 []byte
	switch {
	case p.TCP != nil:
		l4 = p.TCP.SerializeTo(nil, p.IP.Src, p.IP.Dst, p.Payload, opts)
	case p.UDP != nil:
		l4 = p.UDP.SerializeTo(nil, p.IP.Src, p.IP.Dst, p.Payload, opts)
	case p.ICMP != nil:
		l4 = p.ICMP.SerializeTo(nil, opts)
	default:
		l4 = p.Payload
	}
	buf := p.IP.SerializeTo(nil, len(l4), opts)
	return append(buf, l4...)
}

// Finalize computes honest checksums and length fields in place. Call it
// after crafting a packet, then corrupt individual fields as needed. It
// works arithmetically from the fields (no serialization, no
// allocation) — this is the single hottest crafting call in a trial.
func (p *Packet) Finalize() *Packet {
	switch {
	case p.TCP != nil:
		p.TCP.Checksum = p.TCP.checksumFixed(p.IP.Src, p.IP.Dst, p.Payload)
		p.IP.SetLengths(p.TCP.HeaderLen() + len(p.Payload))
	case p.UDP != nil:
		p.UDP.Length = uint16(UDPHeaderLen + len(p.Payload))
		p.UDP.Checksum = p.UDP.computeChecksum(p.IP.Src, p.IP.Dst, p.Payload)
		p.IP.SetLengths(UDPHeaderLen + len(p.Payload))
	case p.ICMP != nil:
		p.ICMP.Checksum = p.ICMP.computeChecksum()
		p.IP.SetLengths(8 + len(p.ICMP.Body))
	default:
		p.IP.SetLengths(len(p.Payload))
	}
	p.IP.UpdateChecksum()
	return p
}

// Parse decodes a full IPv4 datagram from wire bytes. Non-first
// fragments keep their L4 bytes in Payload with TCP/UDP/ICMP nil.
func Parse(data []byte) (*Packet, error) {
	p := &Packet{}
	n, err := p.IP.DecodeFromBytes(data)
	if err != nil {
		return nil, err
	}
	end := int(p.IP.TotalLength)
	if end > len(data) || end < n {
		end = len(data) // tolerate lying TotalLength; take what is there
	}
	l4 := data[n:end]
	if p.IP.FragOffset != 0 {
		p.Payload = append([]byte(nil), l4...)
		return p, nil
	}
	switch p.IP.Protocol {
	case ProtoTCP:
		p.TCP = &TCPHeader{}
		hn, err := p.TCP.DecodeFromBytes(l4)
		if err != nil {
			return nil, err
		}
		p.Payload = append([]byte(nil), l4[hn:]...)
	case ProtoUDP:
		p.UDP = &UDPHeader{}
		hn, err := p.UDP.DecodeFromBytes(l4)
		if err != nil {
			return nil, err
		}
		p.Payload = append([]byte(nil), l4[hn:]...)
	case ProtoICMP:
		p.ICMP = &ICMPMessage{}
		if err := p.ICMP.DecodeFromBytes(l4); err != nil {
			return nil, err
		}
	default:
		p.Payload = append([]byte(nil), l4...)
	}
	return p, nil
}

// Clone returns a deep copy, so middleboxes and the GFW tap can mutate
// their view without aliasing the in-flight packet.
func (p *Packet) Clone() *Packet {
	c := &Packet{IP: p.IP.Clone(), BadTCPChecksum: p.BadTCPChecksum, Lin: p.Lin.child()}
	if p.TCP != nil {
		c.TCP = p.TCP.Clone()
	}
	if p.UDP != nil {
		c.UDP = p.UDP.Clone()
	}
	if p.ICMP != nil {
		c.ICMP = p.ICMP.Clone()
	}
	c.Payload = append([]byte(nil), p.Payload...)
	return c
}

// String renders a one-line trace label.
func (p *Packet) String() string {
	switch {
	case p.TCP != nil:
		s := fmt.Sprintf("TCP %v [%s] seq=%d ack=%d len=%d ttl=%d",
			p.Tuple(), FlagString(p.TCP.Flags), uint32(p.TCP.Seq), uint32(p.TCP.Ack), len(p.Payload), p.IP.TTL)
		if p.BadTCPChecksum {
			s += " badck"
		}
		if p.TCP.HasMD5() {
			s += " md5"
		}
		return s
	case p.UDP != nil:
		return fmt.Sprintf("UDP %v len=%d ttl=%d", p.Tuple(), len(p.Payload), p.IP.TTL)
	case p.ICMP != nil:
		return fmt.Sprintf("ICMP %v>%v type=%d code=%d", p.IP.Src, p.IP.Dst, p.ICMP.Type, p.ICMP.Code)
	default:
		return fmt.Sprintf("IP %v>%v proto=%d frag@%d len=%d", p.IP.Src, p.IP.Dst, p.IP.Protocol, int(p.IP.FragOffset)*8, len(p.Payload))
	}
}

// NewTCP builds a TCP packet with sensible defaults (TTL 64, window
// 29200) and finalizes it.
func NewTCP(src Addr, sport uint16, dst Addr, dport uint16, flags uint8, seq, ack Seq, payload []byte) *Packet {
	p := &Packet{
		IP: IPv4Header{TTL: 64, Protocol: ProtoTCP, Src: src, Dst: dst},
		TCP: &TCPHeader{
			SrcPort: sport, DstPort: dport,
			Seq: seq, Ack: ack, Flags: flags, Window: 29200,
		},
		Payload: append([]byte(nil), payload...),
	}
	return p.Finalize()
}

// NewUDP builds a UDP packet with TTL 64 and finalizes it.
func NewUDP(src Addr, sport uint16, dst Addr, dport uint16, payload []byte) *Packet {
	p := &Packet{
		IP:      IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: src, Dst: dst},
		UDP:     &UDPHeader{SrcPort: sport, DstPort: dport},
		Payload: append([]byte(nil), payload...),
	}
	return p.Finalize()
}
