package packet

// Seq is a TCP sequence number. All comparisons are modular (RFC 793
// style, mod 2^32), so sequence spaces that wrap behave correctly.
type Seq uint32

// Add returns s advanced by n bytes, wrapping mod 2^32.
func (s Seq) Add(n int) Seq { return s + Seq(uint32(int32(n))) }

// Diff returns the signed distance s-t in sequence space. The result is
// positive when s is "after" t, negative when "before".
func (s Seq) Diff(t Seq) int32 { return int32(uint32(s) - uint32(t)) }

// Before reports whether s precedes t in sequence space.
func (s Seq) Before(t Seq) bool { return s.Diff(t) < 0 }

// After reports whether s follows t in sequence space.
func (s Seq) After(t Seq) bool { return s.Diff(t) > 0 }

// AtOrBefore reports s <= t in sequence space.
func (s Seq) AtOrBefore(t Seq) bool { return s.Diff(t) <= 0 }

// AtOrAfter reports s >= t in sequence space.
func (s Seq) AtOrAfter(t Seq) bool { return s.Diff(t) >= 0 }

// InWindow reports whether s lies in the half-open window
// [start, start+size). A zero-size window contains nothing.
func (s Seq) InWindow(start Seq, size int) bool {
	if size <= 0 {
		return false
	}
	d := s.Diff(start)
	return d >= 0 && d < int32(size)
}

// Min returns the earlier of s and t in sequence space.
func (s Seq) Min(t Seq) Seq {
	if s.Before(t) {
		return s
	}
	return t
}

// Max returns the later of s and t in sequence space.
func (s Seq) Max(t Seq) Seq {
	if s.After(t) {
		return s
	}
	return t
}
