package packet

import (
	"encoding/binary"
	"fmt"
)

// Addr is an IPv4 address. It is an array (not a slice) so it can key
// maps and compare with ==.
type Addr [4]byte

// AddrFrom4 builds an Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// String renders the address in dotted-quad form.
func (a Addr) String() string { return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3]) }

// IsZero reports whether the address is 0.0.0.0.
func (a Addr) IsZero() bool { return a == Addr{} }

// IP protocol numbers used in this codebase.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// IPv4 flag bits (in the Flags field, already shifted out of the
// fragment-offset word).
const (
	IPFlagMoreFragments = 0x1
	IPFlagDontFragment  = 0x2
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4Header is an IPv4 header. TotalLength is an explicit field rather
// than being derived at serialization time, because a deliberately lying
// TotalLength ("IP total length > actual packet length", Table 3 row 1)
// is one of the insertion-packet discrepancies the paper studies. Use
// SetLengths to fill it honestly.
type IPv4Header struct {
	TOS         uint8
	TotalLength uint16
	ID          uint16
	Flags       uint8  // IPFlag* bits
	FragOffset  uint16 // in 8-byte units
	TTL         uint8
	Protocol    uint8
	Checksum    uint16 // filled by SerializeTo when opts.ComputeChecksums
	Src, Dst    Addr
	Options     []byte // raw options, padded by caller to a 4-byte multiple
}

// HeaderLen returns the encoded header length in bytes.
func (h *IPv4Header) HeaderLen() int { return IPv4HeaderLen + len(h.Options) }

// SetLengths sets TotalLength from the header length and an L4 length.
func (h *IPv4Header) SetLengths(l4len int) {
	h.TotalLength = uint16(h.HeaderLen() + l4len)
}

// MoreFragments reports whether the MF flag is set.
func (h *IPv4Header) MoreFragments() bool { return h.Flags&IPFlagMoreFragments != 0 }

// IsFragment reports whether the header describes anything other than a
// whole, unfragmented datagram.
func (h *IPv4Header) IsFragment() bool { return h.MoreFragments() || h.FragOffset != 0 }

// SerializeOptions controls serialization, in the gopacket style.
type SerializeOptions struct {
	// ComputeChecksums recomputes IP/TCP/UDP/ICMP checksums. Leave it
	// false to emit whatever value is already in the header field — the
	// mechanism for crafting bad-checksum insertion packets.
	ComputeChecksums bool
	// FixLengths recomputes length fields (IP TotalLength, TCP data
	// offset). Leave it false to emit lying lengths.
	FixLengths bool
}

// SerializeTo appends the encoded header to buf and returns the result.
// payloadLen is the L4 byte count that follows (used only when
// opts.FixLengths is set).
func (h *IPv4Header) SerializeTo(buf []byte, payloadLen int, opts SerializeOptions) []byte {
	if len(h.Options)%4 != 0 {
		// Options must pad to a 4-byte boundary on the wire; pad with
		// End-of-Options (0) rather than emitting a malformed IHL.
		pad := 4 - len(h.Options)%4
		h.Options = append(h.Options, make([]byte, pad)...)
	}
	if opts.FixLengths {
		h.SetLengths(payloadLen)
	}
	start := len(buf)
	hl := h.HeaderLen()
	out := append(buf, make([]byte, hl)...)
	b := out[start:]
	b[0] = 4<<4 | uint8(hl/4)
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], h.TotalLength)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], uint16(h.Flags)<<13|h.FragOffset&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	copy(b[20:], h.Options)
	if opts.ComputeChecksums {
		binary.BigEndian.PutUint16(b[10:], 0)
		h.Checksum = Checksum(b[:hl], 0)
	}
	binary.BigEndian.PutUint16(b[10:], h.Checksum)
	return out
}

// DecodeFromBytes parses an IPv4 header from data and returns the header
// length consumed.
func (h *IPv4Header) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < IPv4HeaderLen {
		return 0, fmt.Errorf("ipv4: truncated header: %d bytes", len(data))
	}
	if v := data[0] >> 4; v != 4 {
		return 0, fmt.Errorf("ipv4: bad version %d", v)
	}
	hl := int(data[0]&0x0f) * 4
	if hl < IPv4HeaderLen {
		return 0, fmt.Errorf("ipv4: bad IHL %d", hl)
	}
	if len(data) < hl {
		return 0, fmt.Errorf("ipv4: truncated options: have %d want %d", len(data), hl)
	}
	h.TOS = data[1]
	h.TotalLength = binary.BigEndian.Uint16(data[2:])
	h.ID = binary.BigEndian.Uint16(data[4:])
	fo := binary.BigEndian.Uint16(data[6:])
	h.Flags = uint8(fo >> 13)
	h.FragOffset = fo & 0x1fff
	h.TTL = data[8]
	h.Protocol = data[9]
	h.Checksum = binary.BigEndian.Uint16(data[10:])
	copy(h.Src[:], data[12:16])
	copy(h.Dst[:], data[16:20])
	if hl > IPv4HeaderLen {
		h.Options = append([]byte(nil), data[IPv4HeaderLen:hl]...)
	} else {
		h.Options = nil
	}
	return hl, nil
}

// headerSum computes the partial checksum of the header words from the
// fields directly, with the checksum field taken as zero. It mirrors
// SerializeTo exactly, including the in-place padding of short option
// blocks, so the arithmetic path and the wire bytes can never disagree.
func (h *IPv4Header) headerSum() uint32 {
	if len(h.Options)%4 != 0 {
		pad := 4 - len(h.Options)%4
		h.Options = append(h.Options, make([]byte, pad)...)
	}
	hl := h.HeaderLen()
	sum := uint32(4<<4|uint8(hl/4))<<8 | uint32(h.TOS)
	sum += uint32(h.TotalLength)
	sum += uint32(h.ID)
	sum += uint32(uint16(h.Flags)<<13 | h.FragOffset&0x1fff)
	sum += uint32(h.TTL)<<8 | uint32(h.Protocol)
	sum += uint32(h.Src[0])<<8 | uint32(h.Src[1])
	sum += uint32(h.Src[2])<<8 | uint32(h.Src[3])
	sum += uint32(h.Dst[0])<<8 | uint32(h.Dst[1])
	sum += uint32(h.Dst[2])<<8 | uint32(h.Dst[3])
	return sum + regionSum(h.Options)
}

// VerifyChecksum reports whether the header's checksum field is correct
// for its current contents. Computed arithmetically from the fields —
// routers call this per hop per packet, so it must not serialize.
func (h *IPv4Header) VerifyChecksum() bool {
	sum := h.headerSum() + uint32(h.Checksum)
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return uint16(sum) == 0xffff
}

// UpdateChecksum recomputes the header checksum for the current field
// values.
func (h *IPv4Header) UpdateChecksum() {
	h.Checksum = foldChecksum(h.headerSum())
}

// DecrementTTL drops TTL by one and incrementally updates the header
// checksum (RFC 1141), exactly as forwarding routers do — so a
// deliberately wrong checksum stays exactly as wrong at every hop.
func (h *IPv4Header) DecrementTTL() {
	h.TTL--
	// The TTL is the high byte of header word 8; decrementing it by
	// one decreases that word by 0x0100. One's-complement arithmetic:
	// ~C' = ~C + ~m + m' where the word m goes to m' = m - 0x0100.
	sum := uint32(h.Checksum) + 0x0100
	sum += sum >> 16
	h.Checksum = uint16(sum)
}

// Clone returns a deep copy of the header.
func (h *IPv4Header) Clone() IPv4Header {
	c := *h
	if h.Options != nil {
		c.Options = append([]byte(nil), h.Options...)
	}
	return c
}
