package packet

import (
	"bytes"
	"testing"
)

func TestPoolRecyclesPackets(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	if !p.Pooled() {
		t.Fatal("pooled packet not marked Pooled")
	}
	// sync.Pool may drop a Put on the floor (it does so randomly under
	// the race detector), so drive the Get/Release cycle until a
	// released packet comes back instead of asserting on one round.
	var recycled bool
	for i := 0; i < 100 && !recycled; i++ {
		p.Release()
		q := pl.Get()
		recycled = q == p
		p = q
	}
	if !recycled {
		t.Fatal("Get never recycled a released packet")
	}
	st := pl.Stats()
	if st.Gets != st.Puts+1 {
		t.Fatalf("stats = %+v, want gets = puts+1", st)
	}
	if st.Recycled() < 1 {
		t.Fatalf("recycled = %d, want >= 1", st.Recycled())
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	pl := NewPool()
	p := pl.Get()
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	p.Release()
}

func TestNilPoolFallsBackToHeap(t *testing.T) {
	var pl *Pool
	p := pl.Get()
	if p == nil || p.Pooled() {
		t.Fatalf("nil-pool Get: %v pooled=%v", p, p.Pooled())
	}
	p.Release() // no-op, must not panic
	if st := pl.Stats(); st != (PoolStats{}) {
		t.Fatalf("nil-pool stats = %+v", st)
	}
}

// TestPooledCraftingMatchesHeap pins the pooled constructors to their
// heap equivalents byte-for-byte on the wire, across reuse.
func TestPooledCraftingMatchesHeap(t *testing.T) {
	pl := NewPool()
	src, dst := AddrFrom4(10, 0, 0, 1), AddrFrom4(203, 0, 113, 80)
	for round := 0; round < 3; round++ {
		heapTCP := NewTCP(src, 4000, dst, 80, FlagPSH|FlagACK, 1000, 2000, []byte("hello"))
		poolTCP := pl.NewTCP(src, 4000, dst, 80, FlagPSH|FlagACK, 1000, 2000, []byte("hello"))
		if !bytes.Equal(heapTCP.Serialize(SerializeOptions{}), poolTCP.Serialize(SerializeOptions{})) {
			t.Fatalf("round %d: pooled TCP differs from heap TCP on the wire", round)
		}

		heapUDP := NewUDP(src, 53, dst, 53, []byte("query"))
		poolUDP := pl.NewUDP(src, 53, dst, 53, []byte("query"))
		if !bytes.Equal(heapUDP.Serialize(SerializeOptions{}), poolUDP.Serialize(SerializeOptions{})) {
			t.Fatalf("round %d: pooled UDP differs from heap UDP on the wire", round)
		}

		poolTCP.Release()
		poolUDP.Release()
	}
}

// TestPooledOptionsMatchHeap covers the scratch-backed option builders
// against the allocating TimestampOption/MSSOption path.
func TestPooledOptionsMatchHeap(t *testing.T) {
	pl := NewPool()
	src, dst := AddrFrom4(10, 0, 0, 1), AddrFrom4(203, 0, 113, 80)
	for round := 0; round < 3; round++ {
		h := &Packet{
			IP:  IPv4Header{TTL: 64, Protocol: ProtoTCP, Src: src, Dst: dst},
			TCP: &TCPHeader{SrcPort: 1, DstPort: 2, Seq: 7, Flags: FlagSYN, Window: 100},
		}
		h.TCP.Options = append(h.TCP.Options, TimestampOption(111111, 222222), MSSOption(1460))
		h.Finalize()

		p := pl.Get()
		p.IP = IPv4Header{TTL: 64, Protocol: ProtoTCP, Src: src, Dst: dst}
		tcp := p.UseTCP()
		tcp.SrcPort, tcp.DstPort = 1, 2
		tcp.Seq, tcp.Flags, tcp.Window = 7, FlagSYN, 100
		p.AddTimestampOption(111111, 222222)
		p.AddMSSOption(1460)
		p.Finalize()

		if !bytes.Equal(h.Serialize(SerializeOptions{}), p.Serialize(SerializeOptions{})) {
			t.Fatalf("round %d: scratch-built options differ on the wire", round)
		}
		p.Release()
	}
}

// TestPooledCloneIsDeep verifies a pooled clone shares no storage with
// its source.
func TestPooledCloneIsDeep(t *testing.T) {
	pl := NewPool()
	src, dst := AddrFrom4(10, 0, 0, 1), AddrFrom4(203, 0, 113, 80)
	orig := NewTCP(src, 1, dst, 2, FlagPSH|FlagACK, 10, 20, []byte("payload"))
	orig.TCP.Options = append(orig.TCP.Options, TimestampOption(1, 2))
	orig.IP.Options = []byte{7, 7}
	orig.Finalize()

	c := pl.Clone(orig)
	want := orig.Serialize(SerializeOptions{})
	if !bytes.Equal(want, c.Serialize(SerializeOptions{})) {
		t.Fatal("clone differs from source on the wire")
	}
	// Mutating the original must not leak into the clone.
	orig.Payload[0] = 'X'
	orig.IP.Options[0] = 9
	orig.TCP.Options[0].Data[0] = 9
	if bytes.Equal(orig.Serialize(SerializeOptions{}), c.Serialize(SerializeOptions{})) {
		t.Fatal("clone aliases the source's buffers")
	}
	if !bytes.Equal(want, c.Serialize(SerializeOptions{})) {
		t.Fatal("clone changed when the source was mutated")
	}
	c.Release()
}

// TestPooledTimeExceededMatchesHeap pins Pool.TimeExceededPacket to the
// heap TimeExceeded construction byte-for-byte, including the side
// effect both share of finalizing the quoted original.
func TestPooledTimeExceededMatchesHeap(t *testing.T) {
	pl := NewPool()
	src, dst := AddrFrom4(10, 0, 0, 1), AddrFrom4(203, 0, 113, 80)
	router := AddrFrom4(10, 254, 0, 3)
	for _, mk := range []func() *Packet{
		func() *Packet { return NewTCP(src, 4000, dst, 80, FlagSYN, 42, 0, nil) },
		func() *Packet { return NewUDP(src, 53, dst, 53, []byte("q")) },
	} {
		orig := mk()
		orig.IP.TTL = 1
		orig.Finalize()
		heapReply := (&Packet{
			IP:   IPv4Header{TTL: 64, Protocol: ProtoICMP, Src: router, Dst: orig.IP.Src},
			ICMP: TimeExceeded(orig),
		}).Finalize()

		orig2 := mk()
		orig2.IP.TTL = 1
		orig2.Finalize()
		poolReply := pl.TimeExceededPacket(orig2, router)

		if !bytes.Equal(heapReply.Serialize(SerializeOptions{}), poolReply.Serialize(SerializeOptions{})) {
			t.Fatal("pooled Time-Exceeded differs from heap construction on the wire")
		}
		poolReply.Release()
	}
}
