package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	addrA = AddrFrom4(10, 0, 0, 1)
	addrB = AddrFrom4(93, 184, 216, 34)
)

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0x0001, 0xf203, 0xf4f5, 0xf6f7 -> sum 0xddf2,
	// checksum ^0xddf2 = 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	if got, want := Checksum([]byte{0xff}, 0), ^uint16(0xff00); got != want {
		t.Fatalf("Checksum odd = %#04x, want %#04x", got, want)
	}
}

func TestChecksumVerifiesToZero(t *testing.T) {
	// Appending the correct checksum makes the whole buffer sum to 0.
	f := func(data []byte) bool {
		ck := Checksum(data, 0)
		buf := append(append([]byte(nil), data...), byte(ck>>8), byte(ck))
		if len(data)%2 != 0 {
			// Odd-length data shifts the appended checksum's alignment;
			// the to-zero property only holds for even alignment.
			return true
		}
		return Checksum(buf, 0) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		s, t   Seq
		before bool
	}{
		{0, 1, true},
		{1, 0, false},
		{0xffffffff, 0, true}, // wraps
		{0, 0x7fffffff, true},
		{5, 5, false},
	}
	for _, c := range cases {
		if got := c.s.Before(c.t); got != c.before {
			t.Errorf("Seq(%d).Before(%d) = %v, want %v", c.s, c.t, got, c.before)
		}
	}
	if got := Seq(0xfffffff0).Add(0x20); got != 0x10 {
		t.Errorf("Add wrap = %d, want 16", got)
	}
	if d := Seq(10).Diff(20); d != -10 {
		t.Errorf("Diff = %d, want -10", d)
	}
}

func TestSeqAddDiffInverse(t *testing.T) {
	f := func(s uint32, n int16) bool {
		a := Seq(s)
		return a.Add(int(n)).Diff(a) == int32(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeqInWindow(t *testing.T) {
	if !Seq(100).InWindow(100, 1) {
		t.Error("start of window should be in")
	}
	if Seq(100).InWindow(100, 0) {
		t.Error("zero window contains nothing")
	}
	if Seq(200).InWindow(100, 100) {
		t.Error("end of window is exclusive")
	}
	if !Seq(5).InWindow(0xfffffff0, 0x40) {
		t.Error("window spanning wrap should contain 5")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4Header{
		TOS: 0x10, ID: 0x1234, Flags: IPFlagDontFragment, TTL: 61,
		Protocol: ProtoTCP, Src: addrA, Dst: addrB,
	}
	h.SetLengths(100)
	buf := h.SerializeTo(nil, 100, SerializeOptions{ComputeChecksums: true})
	var got IPv4Header
	n, err := got.DecodeFromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != IPv4HeaderLen {
		t.Fatalf("consumed %d, want %d", n, IPv4HeaderLen)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.TTL != 61 || got.ID != 0x1234 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !got.VerifyChecksum() {
		t.Fatal("checksum did not verify")
	}
	got.TTL--
	if got.VerifyChecksum() {
		t.Fatal("checksum verified after mutation")
	}
}

func TestIPv4Truncated(t *testing.T) {
	var h IPv4Header
	if _, err := h.DecodeFromBytes(make([]byte, 10)); err == nil {
		t.Fatal("want error for truncated header")
	}
}

func TestTCPRoundTripWithOptions(t *testing.T) {
	h := &TCPHeader{
		SrcPort: 40000, DstPort: 80, Seq: 1000, Ack: 2000,
		Flags: FlagPSH | FlagACK, Window: 512, Urgent: 7,
		Options: []TCPOption{
			MSSOption(1460),
			{Kind: OptNOP},
			TimestampOption(111, 222),
			MD5Option([16]byte{1, 2, 3}),
		},
	}
	payload := []byte("GET / HTTP/1.1\r\n")
	buf := h.SerializeTo(nil, addrA, addrB, payload, SerializeOptions{ComputeChecksums: true, FixLengths: true})
	var got TCPHeader
	n, err := got.DecodeFromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[n:], payload) {
		t.Fatalf("payload mismatch: %q", buf[n:])
	}
	if got.SrcPort != 40000 || got.Seq != 1000 || got.Ack != 2000 || got.Urgent != 7 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if !got.HasMD5() {
		t.Fatal("MD5 option lost")
	}
	tsval, tsecr, ok := got.Timestamps()
	if !ok || tsval != 111 || tsecr != 222 {
		t.Fatalf("timestamps = %d,%d,%v", tsval, tsecr, ok)
	}
	if !got.VerifyChecksum(addrA, addrB, payload) {
		t.Fatal("checksum did not verify")
	}
	got.Seq++
	if got.VerifyChecksum(addrA, addrB, payload) {
		t.Fatal("checksum verified after mutation")
	}
}

func TestTCPHeaderLenUnder20Rejected(t *testing.T) {
	h := &TCPHeader{SrcPort: 1, DstPort: 2, RawDataOffset: 3}
	buf := h.SerializeTo(nil, addrA, addrB, nil, SerializeOptions{ComputeChecksums: true})
	var got TCPHeader
	if _, err := got.DecodeFromBytes(buf); err == nil {
		t.Fatal("want error for data offset < 5")
	}
}

func TestTCPFlagString(t *testing.T) {
	if s := FlagString(FlagSYN | FlagACK); s != "SYN|ACK" {
		t.Fatalf("FlagString = %q", s)
	}
	if s := FlagString(0); s != "none" {
		t.Fatalf("FlagString(0) = %q", s)
	}
}

func TestTCPRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		h := &TCPHeader{
			SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()),
			Seq: Seq(rng.Uint32()), Ack: Seq(rng.Uint32()),
			Flags: uint8(rng.Intn(64)), Window: uint16(rng.Uint32()),
		}
		if rng.Intn(2) == 0 {
			h.Options = append(h.Options, TimestampOption(rng.Uint32(), rng.Uint32()))
		}
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		buf := h.SerializeTo(nil, addrA, addrB, payload, SerializeOptions{ComputeChecksums: true, FixLengths: true})
		var got TCPHeader
		n, err := got.DecodeFromBytes(buf)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got.Seq != h.Seq || got.Ack != h.Ack || got.Flags != h.Flags || got.Window != h.Window {
			t.Fatalf("iter %d: header mismatch", i)
		}
		if !bytes.Equal(buf[n:], payload) {
			t.Fatalf("iter %d: payload mismatch", i)
		}
		if !got.VerifyChecksum(addrA, addrB, payload) {
			t.Fatalf("iter %d: checksum", i)
		}
	}
}

func TestUDPRoundTrip(t *testing.T) {
	p := NewUDP(addrA, 5353, addrB, 53, []byte{0xab, 0xcd})
	wire := p.Serialize(SerializeOptions{ComputeChecksums: true, FixLengths: true})
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.UDP == nil || got.UDP.SrcPort != 5353 || got.UDP.DstPort != 53 {
		t.Fatalf("udp mismatch: %+v", got.UDP)
	}
	if !bytes.Equal(got.Payload, []byte{0xab, 0xcd}) {
		t.Fatalf("payload = %x", got.Payload)
	}
}

func TestPacketParseSerializeRoundTrip(t *testing.T) {
	p := NewTCP(addrA, 33000, addrB, 80, FlagSYN, 42, 0, nil)
	p.TCP.Options = []TCPOption{MSSOption(1460)}
	p.Finalize()
	wire := p.Serialize(SerializeOptions{ComputeChecksums: true, FixLengths: true})
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.TCP.Seq != 42 || !got.TCP.FlagsOnly(FlagSYN) {
		t.Fatalf("parsed %v", got)
	}
	wire2 := got.Serialize(SerializeOptions{ComputeChecksums: true, FixLengths: true})
	if !bytes.Equal(wire, wire2) {
		t.Fatalf("serialize not stable:\n%x\n%x", wire, wire2)
	}
}

func TestPacketSegLen(t *testing.T) {
	syn := NewTCP(addrA, 1, addrB, 2, FlagSYN, 0, 0, nil)
	if syn.SegLen() != 1 {
		t.Errorf("SYN SegLen = %d", syn.SegLen())
	}
	finData := NewTCP(addrA, 1, addrB, 2, FlagFIN|FlagACK, 0, 0, []byte("xy"))
	if finData.SegLen() != 3 {
		t.Errorf("FIN+2 SegLen = %d", finData.SegLen())
	}
	if finData.EndSeq() != 3 {
		t.Errorf("EndSeq = %d", finData.EndSeq())
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := NewTCP(addrA, 1, addrB, 2, FlagACK, 10, 20, []byte("abc"))
	p.TCP.Options = []TCPOption{TimestampOption(1, 2)}
	c := p.Clone()
	c.Payload[0] = 'z'
	c.TCP.Options[0].Data[0] = 0xff
	c.IP.TTL = 3
	if p.Payload[0] != 'a' || p.TCP.Options[0].Data[0] == 0xff || p.IP.TTL == 3 {
		t.Fatal("clone aliases original")
	}
}

func TestTupleCanonical(t *testing.T) {
	a := FourTuple{SrcAddr: addrA, SrcPort: 1000, DstAddr: addrB, DstPort: 80}
	if a.Canonical() != a.Reverse().Canonical() {
		t.Fatal("canonical not direction independent")
	}
	if a.Reverse().Reverse() != a {
		t.Fatal("reverse not involutive")
	}
}

func TestFragmentAndReassemble(t *testing.T) {
	payload := bytes.Repeat([]byte("0123456789"), 30) // 300 bytes
	p := NewTCP(addrA, 4000, addrB, 80, FlagPSH|FlagACK, 1, 1, payload)
	p.IP.ID = 777
	p.Finalize()
	frags, err := Fragment(p, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("got %d fragments, want >=3", len(frags))
	}
	for i, f := range frags {
		last := i == len(frags)-1
		if f.IP.MoreFragments() == last {
			t.Fatalf("frag %d MF flag wrong", i)
		}
	}
	r := NewReassembler(LastWins)
	var out *Packet
	for _, f := range frags {
		got, err := r.Add(f)
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			out = got
		}
	}
	if out == nil {
		t.Fatal("reassembly did not complete")
	}
	if out.TCP == nil || !bytes.Equal(out.Payload, payload) {
		t.Fatalf("reassembled payload mismatch: %d bytes", len(out.Payload))
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d", r.Pending())
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 200)
	p := NewTCP(addrA, 4000, addrB, 80, FlagACK, 1, 1, payload)
	p.IP.ID = 9
	p.Finalize()
	frags, err := Fragment(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler(FirstWins)
	var out *Packet
	for i := len(frags) - 1; i >= 0; i-- {
		got, err := r.Add(frags[i])
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			out = got
		}
	}
	if out == nil || !bytes.Equal(out.Payload, payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestReassemblyOverlapPolicies(t *testing.T) {
	// Build two fragment series by hand: same offset/length, different
	// content, to verify FirstWins vs LastWins (§3.2 of the paper).
	mk := func(off int, data []byte, more bool) *Packet {
		f := &Packet{IP: IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: addrA, Dst: addrB, ID: 5}}
		f.IP.FragOffset = uint16(off / 8)
		if more {
			f.IP.Flags |= IPFlagMoreFragments
		}
		f.Payload = data
		f.IP.SetLengths(len(data))
		return f
	}
	// UDP header (8 bytes) then 8 bytes of body sent twice.
	hdr := &UDPHeader{SrcPort: 1, DstPort: 2, Length: 16}
	hdrBytes := hdr.SerializeTo(nil, addrA, addrB, nil, SerializeOptions{})[:8]

	for _, tc := range []struct {
		policy OverlapPolicy
		want   byte
	}{{FirstWins, 'A'}, {LastWins, 'B'}} {
		r := NewReassembler(tc.policy)
		if _, err := r.Add(mk(8, bytes.Repeat([]byte{'A'}, 8), false)); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Add(mk(8, bytes.Repeat([]byte{'B'}, 8), false)); err != nil {
			t.Fatal(err)
		}
		first := mk(0, hdrBytes, true)
		out, err := r.Add(first)
		if err != nil {
			t.Fatal(err)
		}
		if out == nil {
			t.Fatalf("policy %v: did not complete", tc.policy)
		}
		if out.Payload[0] != tc.want {
			t.Errorf("policy %v: byte = %c, want %c", tc.policy, out.Payload[0], tc.want)
		}
	}
}

func TestICMPTimeExceededQuote(t *testing.T) {
	orig := NewTCP(addrA, 31000, addrB, 80, FlagSYN, 123456, 0, nil)
	m := TimeExceeded(orig)
	wire := (&Packet{IP: IPv4Header{TTL: 64, Protocol: ProtoICMP, Src: addrB, Dst: addrA}, ICMP: m}).Finalize().
		Serialize(SerializeOptions{ComputeChecksums: true, FixLengths: true})
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ICMP == nil || got.ICMP.Type != ICMPTimeExceeded {
		t.Fatalf("icmp = %+v", got.ICMP)
	}
	_, sp, dp, seq, ok := got.ICMP.QuotedTCP()
	if !ok || sp != 31000 || dp != 80 || seq != 123456 {
		t.Fatalf("quoted = %d,%d,%d,%v", sp, dp, seq, ok)
	}
}

func TestLyingTotalLengthParses(t *testing.T) {
	p := NewTCP(addrA, 1, addrB, 2, FlagACK, 0, 0, []byte("hi"))
	p.IP.TotalLength = 4000 // lies: larger than actual
	wire := p.Serialize(SerializeOptions{ComputeChecksums: true})
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload, []byte("hi")) {
		t.Fatalf("payload = %q", got.Payload)
	}
	if int(got.IP.TotalLength) <= len(wire) {
		t.Fatal("lying TotalLength not preserved")
	}
}

func TestBadChecksumDetected(t *testing.T) {
	p := NewTCP(addrA, 1, addrB, 2, FlagACK, 5, 6, []byte("data"))
	if !p.TCP.VerifyChecksum(p.IP.Src, p.IP.Dst, p.Payload) {
		t.Fatal("fresh packet should verify")
	}
	p.TCP.Checksum ^= 0x5555
	if p.TCP.VerifyChecksum(p.IP.Src, p.IP.Dst, p.Payload) {
		t.Fatal("corrupted checksum should not verify")
	}
}

func TestFinalizeSetsHonestTotalLength(t *testing.T) {
	// Regression: Finalize once clobbered TotalLength back to the bare
	// header length, which only surfaced when captures were re-parsed.
	p := NewTCP(addrA, 1, addrB, 2, FlagPSH|FlagACK, 1, 1, []byte("hello world"))
	want := p.IP.HeaderLen() + p.TCP.HeaderLen() + len(p.Payload)
	if int(p.IP.TotalLength) != want {
		t.Fatalf("TotalLength = %d, want %d", p.IP.TotalLength, want)
	}
	if !p.IP.VerifyChecksum() {
		t.Fatal("IP checksum stale after Finalize")
	}
	// A plain serialize (no FixLengths) must round-trip.
	got, err := Parse(p.Serialize(SerializeOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "hello world" {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestDecrementTTLIncrementalChecksum(t *testing.T) {
	for _, ttl := range []uint8{1, 2, 63, 64, 128, 255} {
		h := IPv4Header{TTL: ttl, Protocol: ProtoTCP, Src: addrA, Dst: addrB, ID: 0x7777}
		h.SetLengths(100)
		h.UpdateChecksum()
		h.DecrementTTL()
		if h.TTL != ttl-1 {
			t.Fatalf("ttl = %d", h.TTL)
		}
		if !h.VerifyChecksum() {
			t.Fatalf("incremental checksum wrong after decrement from %d", ttl)
		}
	}
}

func TestFragmentReassembleProperty(t *testing.T) {
	// Any payload, any legal MTU, any arrival order: reassembly must
	// reproduce the original datagram byte-for-byte.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 150; i++ {
		n := 30 + rng.Intn(400)
		payload := make([]byte, n)
		rng.Read(payload)
		p := NewTCP(addrA, 4000, addrB, 80, FlagPSH|FlagACK, Seq(rng.Uint32()), 1, payload)
		p.IP.ID = uint16(rng.Uint32())
		p.Finalize()
		mtu := 48 + rng.Intn(200)
		frags, err := Fragment(p, mtu)
		if err != nil {
			continue // MTU too small for this header: fine
		}
		// Shuffle arrival order.
		rng.Shuffle(len(frags), func(a, b int) { frags[a], frags[b] = frags[b], frags[a] })
		r := NewReassembler(LastWins)
		var out *Packet
		for _, f := range frags {
			got, err := r.Add(f)
			if err != nil {
				t.Fatalf("iter %d: %v", i, err)
			}
			if got != nil {
				out = got
			}
		}
		if out == nil {
			t.Fatalf("iter %d: incomplete (mtu %d, %d frags)", i, mtu, len(frags))
		}
		if out.TCP == nil || !bytes.Equal(out.Payload, payload) {
			t.Fatalf("iter %d: payload mismatch (%d vs %d bytes)", i, len(out.Payload), len(payload))
		}
		if out.TCP.Seq != p.TCP.Seq || out.TCP.Flags != p.TCP.Flags {
			t.Fatalf("iter %d: header mismatch", i)
		}
		if !out.TCP.VerifyChecksum(out.IP.Src, out.IP.Dst, out.Payload) {
			t.Fatalf("iter %d: checksum lost in reassembly", i)
		}
	}
}

func TestFragmentTooSmallMTU(t *testing.T) {
	p := NewTCP(addrA, 1, addrB, 2, FlagACK, 0, 0, make([]byte, 50))
	if _, err := Fragment(p, 24); err == nil {
		t.Fatal("tiny MTU should error")
	}
	p.IP.Flags |= IPFlagDontFragment
	if _, err := Fragment(p, 200); err == nil {
		t.Fatal("DF should forbid fragmentation")
	}
}
