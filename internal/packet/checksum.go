package packet

// Checksum computes the 16-bit one's-complement Internet checksum
// (RFC 1071) over data, starting from an initial partial sum. The
// initial sum lets callers fold in a pseudo-header before the payload.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	i := 0
	for ; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < len(data) {
		sum += uint32(data[i]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// pseudoHeaderSum folds the IPv4 pseudo-header for proto and an L4
// length into a partial checksum accumulator.
func pseudoHeaderSum(src, dst Addr, proto uint8, l4len int) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}

// foldChecksum folds a partial sum into the final one's-complement
// checksum value, exactly as Checksum does after its byte loop.
func foldChecksum(sum uint32) uint16 {
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// regionSum computes the partial checksum of a byte region that begins
// at an even offset of the enclosing datagram (all header lengths here
// are 4-byte multiples, so payloads and option blocks qualify). An odd
// trailing byte is padded high, as in RFC 1071.
func regionSum(data []byte) uint32 {
	var sum uint32
	i := 0
	for ; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < len(data) {
		sum += uint32(data[i]) << 8
	}
	return sum
}
