package netem

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"intango/internal/obs"
	"intango/internal/packet"
)

// This file is the graph half of netem. A Fabric generalizes the
// linear Path: nodes (endpoints and routers with attached taps and
// processors) joined by directed links, each direction carrying its
// own latency, loss, and MTU — so forward and reverse routes can
// differ, and parallel censor devices can sit on parallel branches.
// Routing is hop-count shortest path with equal-cost multipath:
// where several next hops tie, a deterministic per-flow hash (seeded
// ECMP) picks one, modeling the GFW's load-balanced device clusters.
//
// The Fabric implements the same Net and Carrier contracts as Path,
// with identical event vocabulary (send/fwd/deliver/inject/drop-*),
// counters, packet-pool recycling, and lineage stamping — so obs,
// tracing, and `-what explain` narratives work unchanged on graph
// topologies. Linear topologies keep compiling to Path (see
// internal/topo), which stays allocation-free; the Fabric trades a
// little routing arithmetic for generality.

// Node is one vertex of a Fabric: an endpoint or a forwarding element
// with the same tap/processor attachment points as a Path hop.
type Node struct {
	Name   string
	Router bool // decrement TTL, verify checksums, expire packets
	// Taps are on-path observers (the GFW wiretap): they see every
	// packet arriving at this node before TTL processing, cannot drop,
	// and must not mutate.
	Taps []Processor
	// Processors are in-path devices (middleboxes): they run after TTL
	// processing and may mutate or Drop.
	Processors []Processor
}

// Link carries the attributes of one direction of an edge.
type Link struct {
	Latency  time.Duration
	LossRate float64
	// MTU, when nonzero, drops datagrams whose wire size exceeds it at
	// this link's egress (traced as "drop-mtu"). The fabric does not
	// auto-fragment; senders must fragment deliberately.
	MTU int
	// Rate, when nonzero, caps this direction at that many bits per
	// second: packets serialize through a finite FIFO of Queue packets
	// (DefaultQueueLimit when zero) with tail-drop, or RED when set.
	Rate  int64
	Queue int
	RED   bool
}

// linkKey identifies a directed edge.
type linkKey struct{ from, to int }

// Fabric is a graph topology bound to a simulator. Build one with
// NewFabric/AddNode/Connect, pick the endpoints, then Finalize to
// compute the routing tables before sending traffic.
type Fabric struct {
	Sim *Simulator
	// Client and Server receive packets arriving at the endpoint nodes.
	Client Endpoint
	Server Endpoint
	// Trace, when set, observes every packet event on the fabric.
	Trace func(ev TraceEvent)
	// Obs, when set, counts packet events and records flight-recorder
	// entries, exactly like Path.Obs.
	Obs *obs.Obs
	// Pool, when set, recycles packets at end-of-life points (suppressed
	// while Trace is attached, which retains packet pointers).
	Pool *packet.Pool

	nodes          []*Node
	client, server int // endpoint node ids
	links          map[linkKey]Link
	adj            [][]int // out-neighbours, ascending node id
	nextS          [][]int // per node: equal-cost next hops toward server
	nextC          [][]int // per node: equal-cost next hops toward client
	ecmpSeed       uint64
	finalized      bool

	counts   [numPathEvents]uint64
	lastAt   time.Duration
	lineageN uint32
	ctx      Context

	// shapers holds the lazily built token buckets of rated links,
	// keyed by directed edge; nil until the first packet crosses one,
	// so unshaped fabrics allocate nothing extra.
	shapers map[linkKey]*linkShaper
}

// NewFabric returns an empty fabric bound to sim.
func NewFabric(sim *Simulator) *Fabric {
	return &Fabric{Sim: sim, client: -1, server: -1, links: make(map[linkKey]Link)}
}

// AddNode appends a node and returns its id.
func (f *Fabric) AddNode(n *Node) int {
	f.nodes = append(f.nodes, n)
	return len(f.nodes) - 1
}

// SetClientNode and SetServerNode mark the endpoint nodes; packets
// arriving there are handed to the Client/Server endpoints.
func (f *Fabric) SetClientNode(id int) { f.client = id }
func (f *Fabric) SetServerNode(id int) { f.server = id }

// SetECMPSeed pins the per-flow route-selection hash. Two fabrics with
// the same topology and seed route every flow identically.
func (f *Fabric) SetECMPSeed(seed uint64) { f.ecmpSeed = seed }

// Connect adds (or replaces) the directed link from→to.
func (f *Fabric) Connect(from, to int, l Link) {
	f.links[linkKey{from, to}] = l
}

// Finalize validates the graph and computes the per-destination
// next-hop tables: a BFS from each endpoint over reversed links yields
// hop-count distances; a node's candidate set toward an endpoint is
// every out-neighbour strictly closer to it, in ascending node order.
// Parallel equal-cost branches become ECMP candidate sets.
func (f *Fabric) Finalize() error {
	if f.client < 0 || f.client >= len(f.nodes) {
		return fmt.Errorf("fabric: no client node")
	}
	if f.server < 0 || f.server >= len(f.nodes) {
		return fmt.Errorf("fabric: no server node")
	}
	if f.client == f.server {
		return fmt.Errorf("fabric: client and server are the same node")
	}
	n := len(f.nodes)
	f.adj = make([][]int, n)
	radj := make([][]int, n)
	for k := range f.links {
		f.adj[k.from] = append(f.adj[k.from], k.to)
		radj[k.to] = append(radj[k.to], k.from)
	}
	for i := range f.adj {
		sort.Ints(f.adj[i])
		sort.Ints(radj[i])
	}
	distS := bfs(radj, f.server)
	distC := bfs(radj, f.client)
	if distS[f.client] < 0 {
		return fmt.Errorf("fabric: no route from client %q to server %q",
			f.nodes[f.client].Name, f.nodes[f.server].Name)
	}
	if distC[f.server] < 0 {
		return fmt.Errorf("fabric: no route from server %q to client %q",
			f.nodes[f.server].Name, f.nodes[f.client].Name)
	}
	f.nextS = nextHops(f.adj, distS)
	f.nextC = nextHops(f.adj, distC)
	f.finalized = true
	return nil
}

// bfs returns hop-count distances to dst following edges of radj
// (reversed links); -1 marks unreachable nodes.
func bfs(radj [][]int, dst int) []int {
	dist := make([]int, len(radj))
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []int{dst}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range radj[v] {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// nextHops derives the equal-cost candidate sets from a distance map.
func nextHops(adj [][]int, dist []int) [][]int {
	next := make([][]int, len(adj))
	for u := range adj {
		if dist[u] <= 0 {
			continue // destination itself, or unreachable
		}
		for _, v := range adj[u] {
			if dist[v] == dist[u]-1 {
				next[u] = append(next[u], v) // adj is sorted, so next is too
			}
		}
	}
	return next
}

// addrU32 orders addresses for flow canonicalization.
func addrU32(a packet.Addr) uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// flowHash folds a packet's flow identity into a 64-bit FNV-1a hash,
// canonicalized so both directions of one flow hash identically (the
// selection is per flow, not per packet direction).
func (f *Fabric) flowHash(pkt *packet.Packet) uint64 {
	a, b := pkt.IP.Src, pkt.IP.Dst
	var pa, pb uint16
	switch {
	case pkt.TCP != nil:
		pa, pb = pkt.TCP.SrcPort, pkt.TCP.DstPort
	case pkt.UDP != nil:
		pa, pb = pkt.UDP.SrcPort, pkt.UDP.DstPort
	}
	if addrU32(b) < addrU32(a) || (a == b && pb < pa) {
		a, b = b, a
		pa, pb = pb, pa
	}
	const prime = 1099511628211
	h := uint64(14695981039346656037) ^ f.ecmpSeed
	for _, x := range a {
		h = (h ^ uint64(x)) * prime
	}
	for _, x := range b {
		h = (h ^ uint64(x)) * prime
	}
	h = (h ^ uint64(pa)) * prime
	h = (h ^ uint64(pb)) * prime
	return h
}

// route picks the next hop leaving `from` toward the endpoint dir
// points at, applying per-flow ECMP at branch points. It is pure:
// emit-time and fire-time calls agree.
func (f *Fabric) route(from int, dir Direction, pkt *packet.Packet) (int, Link) {
	cands := f.nextS[from]
	if dir == ToClient {
		cands = f.nextC[from]
	}
	switch len(cands) {
	case 0:
		return -1, Link{}
	case 1:
		return cands[0], f.links[linkKey{from, cands[0]}]
	}
	// Mix the node id in so independent branch points decide
	// independently, as separate hardware hash functions would.
	h := f.flowHash(pkt) ^ (uint64(from) * 0x9e3779b97f4a7c15)
	next := cands[h%uint64(len(cands))]
	return next, f.links[linkKey{from, next}]
}

// name labels node idx in traces.
func (f *Fabric) name(idx int) string { return f.nodes[idx].Name }

// trace mirrors Path.trace: counter increment, lineage stamping at
// transmission points, flight-recorder entry (per-hop "fwd" stays
// out), and the optional trace hook.
func (f *Fabric) trace(where string, ev int, dir Direction, pkt *packet.Packet) {
	f.counts[ev]++
	f.lastAt = f.Sim.Now()
	if ev == evSend || ev == evInject {
		f.StampLineage(pkt)
	}
	if f.Obs != nil && ev != evFwd {
		var seq uint32
		var flags uint8
		if pkt.TCP != nil {
			seq = uint32(pkt.TCP.Seq)
			flags = pkt.TCP.Flags
		}
		f.Obs.TracePkt("netem", pathEventLabels[ev], pkt.Lin.ID, pkt.Lin.Parent, seq, flags, where+" "+dir.String())
	}
	if f.Trace != nil {
		f.Trace(TraceEvent{Time: f.Sim.Now(), Where: where, Event: pathEventLabels[ev], Dir: dir, Pkt: pkt})
	}
}

// release recycles a pool-owned packet at an end-of-life point, unless
// a trace hook (which retains packet pointers) is attached.
func (f *Fabric) release(pkt *packet.Packet) {
	if f.Trace == nil {
		pkt.Release()
	}
}

// SendFromClient transmits pkt from the client endpoint node.
func (f *Fabric) SendFromClient(pkt *packet.Packet) {
	f.trace(f.name(f.client), evSend, ToServer, pkt)
	f.emitFrom(f.client, ToServer, pkt, 0, false)
}

// SendFromServer transmits pkt from the server endpoint node.
func (f *Fabric) SendFromServer(pkt *packet.Packet) {
	f.trace(f.name(f.server), evSend, ToClient, pkt)
	f.emitFrom(f.server, ToClient, pkt, 0, false)
}

// emitFrom schedules pkt's crossing of the link leaving `from` toward
// dir's endpoint. inject marks mid-path injections.
func (f *Fabric) emitFrom(from int, dir Direction, pkt *packet.Packet, extraDelay time.Duration, inject bool) {
	if inject {
		f.trace(f.name(from), evInject, dir, pkt)
	}
	next, l := f.route(from, dir, pkt)
	if next < 0 {
		// No route onward (a dead-end node injecting the wrong way);
		// the packet silently expires here.
		f.trace(f.name(from), evDropProc, dir, pkt)
		f.release(pkt)
		return
	}
	if l.MTU > 0 && wireSize(pkt) > l.MTU {
		f.trace(f.name(from), evDropMTU, dir, pkt)
		f.release(pkt)
		return
	}
	delay := extraDelay + l.Latency
	if l.Rate > 0 {
		key := linkKey{from, next}
		sh := f.shapers[key]
		if sh == nil {
			if f.shapers == nil {
				f.shapers = make(map[linkKey]*linkShaper)
			}
			sh = newLinkShaper(l.Rate, l.Queue, l.RED)
			f.shapers[key] = sh
		}
		qd, ev := sh.admit(f.Sim, wireSize(pkt))
		if ev >= 0 {
			f.trace(f.name(from), ev, dir, pkt)
			f.release(pkt)
			return
		}
		delay += qd
	}
	f.Sim.AtPacket(delay, f, pkt, from, dir)
}

// HandlePacket implements PacketHandler: pkt finished crossing the
// link leaving `from`. The next hop is recomputed (route is pure) and
// loss is drawn at fire time, matching Path's draw discipline.
func (f *Fabric) HandlePacket(pkt *packet.Packet, from int, dir Direction) {
	next, l := f.route(from, dir, pkt)
	if l.LossRate > 0 && f.Sim.Rand().Float64() < l.LossRate {
		f.trace(f.name(next), evDropLoss, dir, pkt)
		f.release(pkt)
		return
	}
	f.arriveAt(next, dir, pkt)
}

// arriveAt processes pkt at node idx: deliver at the target endpoint,
// else taps → router TTL handling → in-path processors → forward.
func (f *Fabric) arriveAt(idx int, dir Direction, pkt *packet.Packet) {
	if (idx == f.client && dir == ToClient) || (idx == f.server && dir == ToServer) {
		f.trace(f.name(idx), evDeliver, dir, pkt)
		if idx == f.client {
			if f.Client != nil {
				f.Client.Deliver(pkt)
			}
		} else if f.Server != nil {
			f.Server.Deliver(pkt)
		}
		f.release(pkt)
		return
	}
	node := f.nodes[idx]
	f.ctx.Sim, f.ctx.Net, f.ctx.HopIndex = f.Sim, f, idx
	ctx := &f.ctx
	for _, tap := range node.Taps {
		tap.Process(ctx, pkt, dir)
	}
	if node.Router {
		if !pkt.IP.VerifyChecksum() {
			f.trace(node.Name, evDropIPck, dir, pkt)
			f.release(pkt)
			return
		}
		if len(pkt.IP.Options) > 0 {
			f.trace(node.Name, evDropIPOpt, dir, pkt)
			f.release(pkt)
			return
		}
		if pkt.IP.TTL <= 1 {
			f.trace(node.Name, evDropTTL, dir, pkt)
			f.sendTimeExceeded(idx, dir, pkt)
			f.release(pkt)
			return
		}
		pkt.IP.DecrementTTL()
	}
	for _, proc := range node.Processors {
		if proc.Process(ctx, pkt, dir) == Drop {
			if f.Obs != nil {
				f.Obs.Count("middlebox.drop." + proc.Name())
				f.Obs.Count("middlebox.drop-kind." + pktKind(pkt))
			}
			f.trace(node.Name, evDropProc, dir, pkt)
			f.release(pkt)
			return
		}
	}
	f.trace(node.Name, evFwd, dir, pkt)
	f.emitFrom(idx, dir, pkt, 0, false)
}

// sendTimeExceeded emits an ICMP Time-Exceeded from node idx back
// toward the packet's source.
func (f *Fabric) sendTimeExceeded(idx int, dir Direction, orig *packet.Packet) {
	reply := f.Pool.TimeExceededPacket(orig, f.nodeAddr(idx))
	reply.Lin = packet.Lineage{Origin: packet.OriginRouter, Parent: orig.Lin.ID}
	f.emitFrom(idx, dir.Flip(), reply, 0, true)
}

// nodeAddr synthesizes a stable router address for node idx.
func (f *Fabric) nodeAddr(idx int) packet.Addr {
	return packet.AddrFrom4(10, 254, byte(idx>>8), byte(idx))
}

// StampLineage implements Net; IDs are fabric-unique and assigned the
// first time a packet is sent or injected, traced or not.
func (f *Fabric) StampLineage(pkt *packet.Packet) uint32 {
	if pkt.Lin.ID == 0 {
		f.lineageN++
		pkt.Lin.ID = f.lineageN
	}
	return pkt.Lin.ID
}

// LastEventAt implements Net: the virtual time of the most recent
// packet event (zero before any traffic).
func (f *Fabric) LastEventAt() time.Duration { return f.lastAt }

// FlushCounters implements Net.
func (f *Fabric) FlushCounters() {
	if f.Obs == nil {
		return
	}
	reg := f.Obs.Registry()
	for ev, n := range f.counts {
		reg.Add(pathEventCounters[ev], n)
		f.counts[ev] = 0
	}
}

// Carrier implementation.
func (f *Fabric) injectFrom(from int, dir Direction, pkt *packet.Packet, delay time.Duration) {
	f.emitFrom(from, dir, pkt, delay, true)
}
func (f *Fabric) pool() *packet.Pool  { return f.Pool }
func (f *Fabric) obsBundle() *obs.Obs { return f.Obs }

// Net implementation (field accessors).
func (f *Fabric) PacketPool() *packet.Pool         { return f.Pool }
func (f *Fabric) SetClient(ep Endpoint)            { f.Client = ep }
func (f *Fabric) SetServer(ep Endpoint)            { f.Server = ep }
func (f *Fabric) SetObs(b *obs.Obs)                { f.Obs = b }
func (f *Fabric) TraceHook() func(ev TraceEvent)   { return f.Trace }
func (f *Fabric) SetTraceHook(fn func(TraceEvent)) { f.Trace = fn }

// ForwardRoute resolves the node names a packet of pkt's flow
// traverses client→server under the current ECMP tables — the
// introspection `-what topo`'s demo and the determinism tests use.
func (f *Fabric) ForwardRoute(pkt *packet.Packet) []string {
	var names []string
	at := f.client
	names = append(names, f.name(at))
	for at != f.server {
		next, _ := f.route(at, ToServer, pkt)
		if next < 0 {
			return names
		}
		names = append(names, f.name(next))
		at = next
	}
	return names
}

// ReverseRoute is ForwardRoute for server→client travel.
func (f *Fabric) ReverseRoute(pkt *packet.Packet) []string {
	var names []string
	at := f.server
	names = append(names, f.name(at))
	for at != f.client {
		next, _ := f.route(at, ToClient, pkt)
		if next < 0 {
			return names
		}
		names = append(names, f.name(next))
		at = next
	}
	return names
}

// Describe renders the fabric: nodes with attachments in id order,
// then links with their attributes, sorted.
func (f *Fabric) Describe() string {
	var b strings.Builder
	b.WriteString("fabric:")
	for i, n := range f.nodes {
		b.WriteString(" ")
		b.WriteString(n.Name)
		switch i {
		case f.client:
			b.WriteString("<client>")
		case f.server:
			b.WriteString("<server>")
		}
		var names []string
		for _, tap := range n.Taps {
			names = append(names, "tap:"+tap.Name())
		}
		for _, proc := range n.Processors {
			names = append(names, proc.Name())
		}
		if len(names) > 0 {
			fmt.Fprintf(&b, "[%s]", strings.Join(names, ","))
		}
	}
	keys := make([]linkKey, 0, len(f.links))
	for k := range f.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	b.WriteString(" |")
	for _, k := range keys {
		l := f.links[k]
		fmt.Fprintf(&b, " %s>%s(%s", f.name(k.from), f.name(k.to), l.Latency)
		if l.LossRate > 0 {
			fmt.Fprintf(&b, ",loss=%g", l.LossRate)
		}
		if l.MTU > 0 {
			fmt.Fprintf(&b, ",mtu=%d", l.MTU)
		}
		if l.Rate > 0 {
			fmt.Fprintf(&b, ",bw=%s", FormatRate(l.Rate))
			if l.Queue > 0 {
				fmt.Fprintf(&b, ",queue=%d", l.Queue)
			}
			if l.RED {
				b.WriteString(",red")
			}
		}
		b.WriteString(")")
	}
	return b.String()
}
