package netem

import (
	"testing"
	"time"

	"intango/internal/packet"
)

var (
	cliAddr = packet.AddrFrom4(10, 0, 0, 1)
	srvAddr = packet.AddrFrom4(203, 0, 113, 80)
)

func TestSimulatorOrdering(t *testing.T) {
	s := NewSimulator(1)
	var got []int
	s.At(2*time.Millisecond, func() { got = append(got, 2) })
	s.At(1*time.Millisecond, func() { got = append(got, 1) })
	s.At(1*time.Millisecond, func() { got = append(got, 11) }) // same time: FIFO by seq
	s.At(3*time.Millisecond, func() { got = append(got, 3) })
	s.Run(100)
	want := []int{1, 11, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	s := NewSimulator(1)
	fired := false
	s.At(time.Millisecond, func() {
		s.At(time.Millisecond, func() { fired = true })
	})
	s.Run(10)
	if !fired || s.Now() != 2*time.Millisecond {
		t.Fatalf("fired=%v now=%v", fired, s.Now())
	}
}

func TestSimulatorRunFor(t *testing.T) {
	s := NewSimulator(1)
	ran := 0
	s.At(time.Millisecond, func() { ran++ })
	s.At(10*time.Millisecond, func() { ran++ })
	s.RunFor(5 * time.Millisecond)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("Now = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d", s.Pending())
	}
}

func newTestPath(s *Simulator, nHops int) *Path {
	p := &Path{Sim: s}
	for i := 0; i < nHops; i++ {
		p.Hops = append(p.Hops, &Hop{
			Name: "r" + string(rune('0'+i)), Router: true, Latency: time.Millisecond,
		})
	}
	p.ClientLink.Latency = time.Millisecond
	return p
}

func TestPathDelivery(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 3)
	var atServer *packet.Packet
	p.Server = EndpointFunc(func(pkt *packet.Packet) { atServer = pkt })
	pkt := packet.NewTCP(cliAddr, 4000, srvAddr, 80, packet.FlagSYN, 1, 0, nil)
	p.SendFromClient(pkt)
	s.Run(100)
	if atServer == nil {
		t.Fatal("packet not delivered")
	}
	if atServer.IP.TTL != 64-3 {
		t.Fatalf("TTL = %d, want 61", atServer.IP.TTL)
	}
	if s.Now() != 4*time.Millisecond {
		t.Fatalf("delivery time = %v, want 4ms", s.Now())
	}
}

func TestPathReverseDelivery(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 2)
	var atClient *packet.Packet
	p.Client = EndpointFunc(func(pkt *packet.Packet) { atClient = pkt })
	pkt := packet.NewTCP(srvAddr, 80, cliAddr, 4000, packet.FlagSYN|packet.FlagACK, 9, 2, nil)
	p.SendFromServer(pkt)
	s.Run(100)
	if atClient == nil {
		t.Fatal("packet not delivered to client")
	}
	if atClient.IP.TTL != 62 {
		t.Fatalf("TTL = %d, want 62", atClient.IP.TTL)
	}
}

func TestTTLExpiryGeneratesTimeExceeded(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 5)
	var atServer, atClient *packet.Packet
	p.Server = EndpointFunc(func(pkt *packet.Packet) { atServer = pkt })
	p.Client = EndpointFunc(func(pkt *packet.Packet) { atClient = pkt })
	pkt := packet.NewTCP(cliAddr, 4000, srvAddr, 80, packet.FlagSYN, 77, 0, nil)
	pkt.IP.TTL = 3
	pkt.Finalize()
	p.SendFromClient(pkt)
	s.Run(100)
	if atServer != nil {
		t.Fatal("TTL-3 packet should not reach server across 5 hops")
	}
	if atClient == nil || atClient.ICMP == nil || atClient.ICMP.Type != packet.ICMPTimeExceeded {
		t.Fatalf("want ICMP time exceeded at client, got %v", atClient)
	}
	_, sp, _, seq, ok := atClient.ICMP.QuotedTCP()
	if !ok || sp != 4000 || seq != 77 {
		t.Fatalf("quote mismatch: %d %d %v", sp, seq, ok)
	}
	// The third router (index 2) should be the expiry point.
	if atClient.IP.Src != p.hopAddr(2) {
		t.Fatalf("expired at %v, want %v", atClient.IP.Src, p.hopAddr(2))
	}
}

type dropAll struct{}

func (dropAll) Name() string { return "dropall" }
func (dropAll) Process(ctx *Context, pkt *packet.Packet, dir Direction) Verdict {
	return Drop
}

type countTap struct{ n int }

func (c *countTap) Name() string { return "tap" }
func (c *countTap) Process(ctx *Context, pkt *packet.Packet, dir Direction) Verdict {
	c.n++
	return Pass
}

func TestProcessorDropAndTap(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 3)
	tap := &countTap{}
	p.Hops[0].Processors = []Processor{tap}
	p.Hops[1].Processors = []Processor{dropAll{}}
	delivered := false
	p.Server = EndpointFunc(func(pkt *packet.Packet) { delivered = true })
	p.SendFromClient(packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagSYN, 0, 0, nil))
	s.Run(100)
	if delivered {
		t.Fatal("dropall should have stopped the packet")
	}
	if tap.n != 1 {
		t.Fatalf("tap saw %d packets, want 1", tap.n)
	}
}

type injector struct{}

func (injector) Name() string { return "injector" }
func (injector) Process(ctx *Context, pkt *packet.Packet, dir Direction) Verdict {
	if dir == ToServer && pkt.TCP != nil && pkt.TCP.HasFlag(packet.FlagSYN) {
		rst := packet.NewTCP(pkt.IP.Dst, pkt.TCP.DstPort, pkt.IP.Src, pkt.TCP.SrcPort,
			packet.FlagRST, pkt.TCP.Ack, 0, nil)
		ctx.Inject(ToClient, rst, 0)
	}
	return Pass
}

func TestInjectionTowardClient(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 4)
	p.Hops[2].Processors = []Processor{injector{}}
	var atClient *packet.Packet
	p.Client = EndpointFunc(func(pkt *packet.Packet) {
		if pkt.TCP != nil {
			atClient = pkt
		}
	})
	delivered := false
	p.Server = EndpointFunc(func(pkt *packet.Packet) { delivered = true })
	p.SendFromClient(packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagSYN, 0, 0, nil))
	s.Run(100)
	if !delivered {
		t.Fatal("on-path tap must not block the original packet")
	}
	if atClient == nil || !atClient.TCP.HasFlag(packet.FlagRST) {
		t.Fatal("injected RST not delivered to client")
	}
}

func TestLossIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) int {
		s := NewSimulator(seed)
		p := newTestPath(s, 2)
		p.ClientLink.LossRate = 0.5
		n := 0
		p.Server = EndpointFunc(func(pkt *packet.Packet) { n++ })
		for i := 0; i < 100; i++ {
			p.SendFromClient(packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagACK, packet.Seq(i), 0, nil))
		}
		s.Run(10000)
		return n
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed gave %d and %d deliveries", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("loss rate 0.5 delivered %d/100", a)
	}
}

func TestTraceRecordsSequence(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 2)
	var events []TraceEvent
	p.Trace = func(ev TraceEvent) { events = append(events, ev) }
	p.Server = EndpointFunc(func(pkt *packet.Packet) {})
	p.SendFromClient(packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagSYN, 0, 0, nil))
	s.Run(100)
	if len(events) < 4 {
		t.Fatalf("only %d events traced", len(events))
	}
	if events[0].Event != "send" || events[len(events)-1].Event != "deliver" {
		t.Fatalf("trace endpoints: %v ... %v", events[0], events[len(events)-1])
	}
	if events[0].String() == "" {
		t.Fatal("trace line empty")
	}
}

func TestDescribeTopology(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 2)
	p.Hops[1].Processors = []Processor{&countTap{}}
	d := p.Describe()
	if d != "client — r0 — r1[tap] — server" {
		t.Fatalf("Describe = %q", d)
	}
}

func TestRouterHopAccounting(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 4)
	p.Hops[1].Router = false // a middlebox position, not a router
	if p.RouterHopCount() != 3 {
		t.Fatalf("RouterHopCount = %d", p.RouterHopCount())
	}
	if p.RouterHopsBefore(2) != 2 {
		t.Fatalf("RouterHopsBefore(2) = %d", p.RouterHopsBefore(2))
	}
	p.Hops[3].Processors = []Processor{dropAll{}}
	if p.HopIndexOf("dropall") != 3 {
		t.Fatalf("HopIndexOf = %d", p.HopIndexOf("dropall"))
	}
	if p.HopIndexOf("nope") != -1 {
		t.Fatal("HopIndexOf missing should be -1")
	}
}

func TestMTUEnforcement(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 2)
	p.MTU = 100
	delivered := 0
	p.Server = EndpointFunc(func(pkt *packet.Packet) { delivered++ })
	var dropped bool
	p.Trace = func(ev TraceEvent) {
		if ev.Event == "drop-mtu" {
			dropped = true
		}
	}
	big := packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagACK, 0, 0, make([]byte, 200))
	small := packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagACK, 0, 0, make([]byte, 20))
	p.SendFromClient(big)
	p.SendFromClient(small)
	s.Run(100)
	if delivered != 1 || !dropped {
		t.Fatalf("delivered=%d dropped=%v", delivered, dropped)
	}
	// Fragments of the big packet fit and get through.
	big2 := packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagACK, 0, 0, make([]byte, 200))
	frags, err := packet.Fragment(big2, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		p.SendFromClient(f)
	}
	s.Run(1000)
	if delivered < 2 {
		t.Fatal("fragments did not pass the MTU limit")
	}
}

func TestRouterDropsBadIPChecksumAndOptions(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 2)
	delivered := 0
	p.Server = EndpointFunc(func(pkt *packet.Packet) { delivered++ })
	bad := packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagACK, 0, 0, nil)
	bad.IP.Checksum ^= 0x0101
	p.SendFromClient(bad)
	opt := packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagACK, 0, 0, nil)
	opt.IP.Options = []byte{7, 7, 4, 0}
	opt.IP.UpdateChecksum()
	p.SendFromClient(opt)
	good := packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagACK, 0, 0, nil)
	p.SendFromClient(good)
	s.Run(100)
	if delivered != 1 {
		t.Fatalf("delivered = %d, want only the well-formed packet", delivered)
	}
}

func TestTapSeesExpiringPacket(t *testing.T) {
	// The on-path wiretap must observe packets that expire at its own
	// hop — the property TTL-limited insertion packets depend on.
	s := NewSimulator(1)
	p := newTestPath(s, 4)
	tap := &countTap{}
	p.Hops[2].Taps = []Processor{tap}
	pkt := packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagSYN, 0, 0, nil)
	pkt.IP.TTL = 3 // dies exactly at hop index 2
	pkt.Finalize()
	delivered := false
	p.Server = EndpointFunc(func(*packet.Packet) { delivered = true })
	p.SendFromClient(pkt)
	s.Run(100)
	if tap.n != 1 {
		t.Fatalf("tap saw %d packets, want 1", tap.n)
	}
	if delivered {
		t.Fatal("TTL-3 packet must not reach the server")
	}
	// In-path processors at the same hop must NOT see it.
	p2 := newTestPath(s, 4)
	proc := &countTap{}
	p2.Hops[2].Processors = []Processor{proc}
	pkt2 := packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagSYN, 0, 0, nil)
	pkt2.IP.TTL = 3
	pkt2.Finalize()
	p2.SendFromClient(pkt2)
	s.Run(100)
	if proc.n != 0 {
		t.Fatalf("in-path processor saw %d expiring packets, want 0", proc.n)
	}
}

func TestContextInjectDelay(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 3)
	var deliveredAt time.Duration
	p.Client = EndpointFunc(func(pkt *packet.Packet) { deliveredAt = s.Now() })
	inj := processorAdapter{fn: func(ctx *Context, pkt *packet.Packet, dir Direction) Verdict {
		if dir == ToServer {
			rst := packet.NewTCP(srvAddr, 2, cliAddr, 1, packet.FlagRST, 0, 0, nil)
			ctx.Inject(ToClient, rst, 50*time.Millisecond)
		}
		return Pass
	}}
	p.Hops[1].Processors = []Processor{inj}
	p.SendFromClient(packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagSYN, 0, 0, nil))
	p.Server = EndpointFunc(func(*packet.Packet) {})
	s.Run(100)
	// Reaches hop1 at 2ms; injected +50ms; 2 links back = 2ms.
	if deliveredAt != 54*time.Millisecond {
		t.Fatalf("deliveredAt = %v, want 54ms", deliveredAt)
	}
}

type processorAdapter struct {
	fn func(ctx *Context, pkt *packet.Packet, dir Direction) Verdict
}

func (processorAdapter) Name() string { return "adapter" }
func (a processorAdapter) Process(ctx *Context, pkt *packet.Packet, dir Direction) Verdict {
	return a.fn(ctx, pkt, dir)
}
