package netem

import (
	"time"

	"intango/internal/obs"
	"intango/internal/packet"
)

// Net is the transport substrate a trial runs over. Two shapes
// implement it: the linear Path (the compiled fast path: one chain of
// hops, allocation-free in steady state) and the graph Fabric
// (arbitrary nodes and directed links, per-flow ECMP route selection).
// Everything above netem — the TCP stacks, the strategy engine, the
// tracer, the experiment runner — holds a Net, so a trial can swap a
// linear rig for a graph one without touching experiment code.
type Net interface {
	// SendFromClient transmits pkt from the client end.
	SendFromClient(pkt *packet.Packet)
	// SendFromServer transmits pkt from the server end.
	SendFromServer(pkt *packet.Packet)
	// StampLineage assigns pkt its net-unique wire ID if it does not
	// have one yet, and returns the ID.
	StampLineage(pkt *packet.Packet) uint32
	// PacketPool returns the substrate's packet pool (nil when pooling
	// is disabled).
	PacketPool() *packet.Pool
	// SetClient and SetServer wire the endpoints.
	SetClient(ep Endpoint)
	SetServer(ep Endpoint)
	// SetObs attaches (or detaches, with nil) the observability bundle.
	SetObs(b *obs.Obs)
	// TraceHook and SetTraceHook expose the packet-event hook so a
	// tracer can chain itself in front of an existing observer.
	TraceHook() func(ev TraceEvent)
	SetTraceHook(fn func(ev TraceEvent))
	// FlushCounters folds accumulated per-event totals into the
	// attached observability registry; a no-op without one.
	FlushCounters()
	// LastEventAt returns the virtual time of the most recent packet
	// event on the substrate (zero before any traffic). The experiment
	// runner reads it to bracket the teardown stage span.
	LastEventAt() time.Duration
	// Describe renders the topology as a one-line ASCII diagram.
	Describe() string
}

// Carrier is the netem substrate a Context points back into. Both Path
// and Fabric implement it; processors reach injection, pooling, and
// observability through the Context accessors without knowing which
// topology shape they are attached to. The methods are unexported on
// purpose: only netem's own substrates can carry processors.
type Carrier interface {
	injectFrom(from int, dir Direction, pkt *packet.Packet, delay time.Duration)
	pool() *packet.Pool
	obsBundle() *obs.Obs
}
