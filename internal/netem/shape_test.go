package netem

import (
	"strings"
	"testing"
	"time"

	"intango/internal/packet"
)

// mkSeg builds a bare client→server TCP packet (40 wire bytes).
func mkSeg(t *testing.T) *packet.Packet {
	t.Helper()
	return packet.NewTCP(cliAddr, 4000, srvAddr, 80, packet.FlagACK, 1, 1, nil)
}

func TestShapedPathSerializesBackToBack(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 1)
	// 40-byte packets at 320 kbit/s serialize in exactly 1ms each.
	rate := int64(8 * 1000 * wireSize(mkSeg(t)))
	p.ClientLink.Rate = rate
	var arrivals []time.Duration
	p.Server = EndpointFunc(func(pkt *packet.Packet) { arrivals = append(arrivals, s.Now()) })
	for i := 0; i < 3; i++ {
		p.SendFromClient(mkSeg(t))
	}
	s.Run(100)
	// Client link: 1ms propagation + n×1ms serialization; hop link: 1ms.
	want := []time.Duration{3 * time.Millisecond, 4 * time.Millisecond, 5 * time.Millisecond}
	if len(arrivals) != len(want) {
		t.Fatalf("delivered %d packets, want %d", len(arrivals), len(want))
	}
	for i, at := range arrivals {
		if at != want[i] {
			t.Fatalf("packet %d delivered at %v, want %v", i, at, want[i])
		}
	}
}

func TestShapedPathTailDrop(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 1)
	p.ClientLink.Rate = 1000 // 40ms more per 40-byte packet: all five queue
	p.ClientLink.Queue = 2
	delivered := 0
	p.Server = EndpointFunc(func(pkt *packet.Packet) { delivered++ })
	for i := 0; i < 5; i++ {
		p.SendFromClient(mkSeg(t))
	}
	s.Run(100)
	if delivered != 2 {
		t.Fatalf("delivered %d packets, want 2 (queue limit)", delivered)
	}
	if got := p.counts[evDropQueue]; got != 3 {
		t.Fatalf("drop-queue count = %d, want 3", got)
	}
}

func TestUnratedPathAllocatesNoShapers(t *testing.T) {
	s := NewSimulator(1)
	p := newTestPath(s, 2)
	p.Server = EndpointFunc(func(pkt *packet.Packet) {})
	p.SendFromClient(mkSeg(t))
	s.Run(100)
	if p.shapers != nil {
		t.Fatal("unrated path built shaper state")
	}
	if !p.shapeChk || p.shaped {
		t.Fatalf("shapeChk=%v shaped=%v, want memoized unshaped", p.shapeChk, p.shaped)
	}
}

func TestShapedFabricSerializesAndDescribes(t *testing.T) {
	s := NewSimulator(1)
	f := NewFabric(s)
	c := f.AddNode(&Node{Name: "c"})
	r := f.AddNode(&Node{Name: "r", Router: true})
	v := f.AddNode(&Node{Name: "v"})
	rate := int64(8 * 1000 * wireSize(mkSeg(t)))
	f.Connect(c, r, Link{Latency: time.Millisecond, Rate: rate, Queue: 16})
	f.Connect(r, c, Link{Latency: time.Millisecond})
	f.Connect(r, v, Link{Latency: time.Millisecond})
	f.Connect(v, r, Link{Latency: time.Millisecond})
	f.SetClientNode(c)
	f.SetServerNode(v)
	if err := f.Finalize(); err != nil {
		t.Fatal(err)
	}
	var arrivals []time.Duration
	f.Server = EndpointFunc(func(pkt *packet.Packet) { arrivals = append(arrivals, s.Now()) })
	for i := 0; i < 2; i++ {
		f.SendFromClient(mkSeg(t))
	}
	s.Run(100)
	want := []time.Duration{3 * time.Millisecond, 4 * time.Millisecond}
	if len(arrivals) != 2 || arrivals[0] != want[0] || arrivals[1] != want[1] {
		t.Fatalf("arrivals = %v, want %v", arrivals, want)
	}
	if d := f.Describe(); !strings.Contains(d, "c>r(1ms,bw=320kbit,queue=16)") {
		t.Fatalf("Describe missing shaped link attrs: %s", d)
	}
}

func TestFormatRate(t *testing.T) {
	cases := map[int64]string{
		1_000_000:     "1mbit",
		500_000:       "500kbit",
		2_000_000_000: "2gbit",
		12_345:        "12345bit",
	}
	for bits, want := range cases {
		if got := FormatRate(bits); got != want {
			t.Errorf("FormatRate(%d) = %q, want %q", bits, got, want)
		}
	}
}
