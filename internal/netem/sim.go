// Package netem is a deterministic discrete-event network simulator. It
// models the measurement environment of the paper: a client and a server
// joined by a chain of router hops, with middleboxes and the GFW's
// on-path wiretap attached at arbitrary hops, per-link latency and loss,
// TTL handling with ICMP Time-Exceeded generation, and full packet
// tracing for the time-sequence diagrams of Figs. 3 and 4.
package netem

import (
	"container/heap"
	"math/rand"
	"time"
)

// Simulator owns virtual time and the event queue. All model code runs
// single-threaded inside Run, so no locking is needed anywhere in the
// simulation.
type Simulator struct {
	now   time.Duration
	seq   uint64
	steps uint64
	queue eventHeap
	rng   *rand.Rand
}

type event struct {
	at  time.Duration
	seq uint64 // tie-break for determinism
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewSimulator returns a simulator seeded for deterministic runs.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic PRNG.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// At schedules fn to run after delay (relative to now). A zero or
// negative delay runs on the next step, still in deterministic order.
func (s *Simulator) At(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.queue, event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Step executes the next event. It reports false when the queue is
// empty.
func (s *Simulator) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(event)
	s.now = e.at
	s.steps++
	e.fn()
	return true
}

// Steps returns the number of events executed so far — the
// observability layer's "netem events executed" figure.
func (s *Simulator) Steps() uint64 { return s.steps }

// Run executes events until the queue drains or the budget of events is
// exhausted (a guard against accidental livelock in model code). It
// returns the number of events executed.
func (s *Simulator) Run(budget int) int {
	n := 0
	for n < budget && s.Step() {
		n++
	}
	return n
}

// RunFor executes events with timestamps up to now+d, then advances the
// clock to exactly now+d (even if the queue still holds later events).
func (s *Simulator) RunFor(d time.Duration) {
	deadline := s.now + d
	for s.queue.Len() > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	s.now = deadline
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.queue.Len() }
