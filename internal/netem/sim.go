// Package netem is a deterministic discrete-event network simulator. It
// models the measurement environment of the paper: a client and a server
// joined by a chain of router hops, with middleboxes and the GFW's
// on-path wiretap attached at arbitrary hops, per-link latency and loss,
// TTL handling with ICMP Time-Exceeded generation, and full packet
// tracing for the time-sequence diagrams of Figs. 3 and 4.
package netem

import (
	"math/rand"
	"time"

	"intango/internal/packet"
)

// PacketHandler is the monomorphic alternative to a scheduled closure:
// packet deliveries carry (handler, pkt, from, dir) in the event itself
// instead of allocating a capturing func. Path implements it; so can
// any model component with a per-packet timer.
type PacketHandler interface {
	HandlePacket(pkt *packet.Packet, from int, dir Direction)
}

// Simulator owns virtual time and the event queue. All model code runs
// single-threaded inside Run, so no locking is needed anywhere in the
// simulation.
type Simulator struct {
	now   time.Duration
	seq   uint64
	steps uint64
	queue []event
	rng   *rand.Rand
}

// event is a value type: the queue is a plain []event, so scheduling
// never boxes (the old container/heap path allocated an interface
// wrapper per Push/Pop). A popped slot is zeroed before reuse so the
// backing array — which doubles as the free list — retains neither the
// executed closure nor the delivered packet.
type event struct {
	at  time.Duration
	seq uint64 // tie-break for determinism
	fn  func()
	// Packet-event fields, used when fn is nil.
	h    PacketHandler
	pkt  *packet.Packet
	from int32
	dir  Direction
}

// eventLess orders events by (at, seq) — the same strict total order as
// the old heap, so replacing the heap shape cannot reorder ties.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// NewSimulator returns a simulator seeded for deterministic runs.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic PRNG.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// At schedules fn to run after delay (relative to now). A zero or
// negative delay runs on the next step, still in deterministic order.
func (s *Simulator) At(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	s.push(event{at: s.now + delay, seq: s.seq, fn: fn})
}

// AtPacket schedules h.HandlePacket(pkt, from, dir) after delay without
// allocating: the arguments ride in the event value itself. It shares
// the (at, seq) order with At, so closure and packet events interleave
// exactly as their scheduling order dictates.
func (s *Simulator) AtPacket(delay time.Duration, h PacketHandler, pkt *packet.Packet, from int, dir Direction) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	s.push(event{at: s.now + delay, seq: s.seq, h: h, pkt: pkt, from: int32(from), dir: dir})
}

// The queue is a 4-ary implicit heap: children of i are 4i+1..4i+4,
// parent is (i-1)/4. Compared to the binary container/heap it halves
// tree depth (fewer sift levels for the mostly-FIFO workload here) and,
// being monomorphic, costs zero allocations in steady state — append
// only grows the backing array until the high-water mark of concurrent
// events, after which popped slots are recycled.

func (s *Simulator) push(e event) {
	q := append(s.queue, e)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(&q[i], &q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	s.queue = q
}

// popTop removes the minimum event. The vacated tail slot is zeroed so
// the backing array does not retain the popped closure or packet (long
// campaigns previously kept every executed closure reachable).
func (s *Simulator) popTop() event {
	q := s.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	s.queue = q
	i := 0
	for {
		best := i
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		for ; c < end; c++ {
			if eventLess(&q[c], &q[best]) {
				best = c
			}
		}
		if best == i {
			break
		}
		q[i], q[best] = q[best], q[i]
		i = best
	}
	return top
}

// Step executes the next event. It reports false when the queue is
// empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.popTop()
	s.now = e.at
	s.steps++
	if e.fn != nil {
		e.fn()
	} else {
		e.h.HandlePacket(e.pkt, int(e.from), e.dir)
	}
	return true
}

// Steps returns the number of events executed so far — the
// observability layer's "netem events executed" figure.
func (s *Simulator) Steps() uint64 { return s.steps }

// Run executes events until the queue drains or the budget of events is
// exhausted (a guard against accidental livelock in model code). It
// returns the number of events executed.
func (s *Simulator) Run(budget int) int {
	n := 0
	for n < budget && s.Step() {
		n++
	}
	return n
}

// RunFor executes events with timestamps up to now+d, then advances the
// clock to exactly now+d (even if the queue still holds later events).
func (s *Simulator) RunFor(d time.Duration) {
	deadline := s.now + d
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	s.now = deadline
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }
