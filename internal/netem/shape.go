package netem

import (
	"fmt"
	"time"
)

// This file adds congestion-real links to both substrates: a rated
// link serializes packets at a finite bit rate through a finite
// FIFO queue (tail-drop, optionally RED). Everything is integer
// virtual-time arithmetic, so shaped campaigns stay bit-identical
// serial vs parallel; the state is lazily allocated only when a link
// sets a rate, so unshaped topologies keep the allocation-free and
// branch-cheap hot path.

// DefaultQueueLimit is the queue depth (in packets) used when a link
// sets a rate but no explicit queue size.
const DefaultQueueLimit = 64

// linkShaper is the runtime state of one direction of a rated link: a
// token-bucket serializer with a finite packet queue. A packet
// admitted at virtual time now departs at
//
//	dep = max(freeAt, now) + wireBits/rate
//
// and freeAt advances to dep, so back-to-back packets queue behind
// each other exactly as on a transmission line. Queue occupancy is
// the number of packets admitted but not yet departed; when it
// reaches limit the packet is tail-dropped ("drop-queue"), and with
// RED enabled packets are probabilistically dropped once the queue is
// half full ("drop-red"), the drop probability ramping linearly to 1
// at the tail.
type linkShaper struct {
	rate   int64 // bits per second, always > 0
	limit  int   // max packets queued awaiting serialization
	red    bool
	freeAt time.Duration   // when the link finishes its current backlog
	depart []time.Duration // departure times of queued packets, ascending
}

// newLinkShaper builds the runtime state for one link direction.
func newLinkShaper(rate int64, limit int, red bool) *linkShaper {
	if limit <= 0 {
		limit = DefaultQueueLimit
	}
	return &linkShaper{rate: rate, limit: limit, red: red}
}

// admit runs the shaping decision for a packet of the given wire size
// entering the link now. It returns the queueing+serialization delay
// to add on top of the link's propagation latency, or a drop event
// (evDropQueue or evDropRED; -1 means admitted). The RED draw comes
// from the simulation PRNG, but only on RED-enabled links, so
// configurations without RED consume exactly the draws they did
// before shaping existed.
func (s *linkShaper) admit(sim *Simulator, size int) (time.Duration, int) {
	now := sim.Now()
	// Retire packets that have finished serializing.
	n := 0
	for n < len(s.depart) && s.depart[n] <= now {
		n++
	}
	if n > 0 {
		s.depart = s.depart[:copy(s.depart, s.depart[n:])]
	}
	occ := len(s.depart)
	if occ >= s.limit {
		return 0, evDropQueue
	}
	if s.red {
		half := s.limit / 2
		if occ >= half && float64(occ-half) > sim.Rand().Float64()*float64(s.limit-half) {
			return 0, evDropRED
		}
	}
	tx := time.Duration(size*8) * time.Second / time.Duration(s.rate)
	start := s.freeAt
	if start < now {
		start = now
	}
	dep := start + tx
	s.freeAt = dep
	s.depart = append(s.depart, dep)
	return dep - now, -1
}

// FormatRate renders a bit rate in the topo grammar's canonical form:
// the largest of gbit/mbit/kbit that divides it exactly, else bare
// bits ("1mbit", "500kbit", "12345bit").
func FormatRate(bits int64) string {
	switch {
	case bits%1_000_000_000 == 0:
		return fmt.Sprintf("%dgbit", bits/1_000_000_000)
	case bits%1_000_000 == 0:
		return fmt.Sprintf("%dmbit", bits/1_000_000)
	case bits%1_000 == 0:
		return fmt.Sprintf("%dkbit", bits/1_000)
	default:
		return fmt.Sprintf("%dbit", bits)
	}
}
