package netem

import (
	"fmt"
	"strings"
	"time"

	"intango/internal/obs"
	"intango/internal/packet"
)

// Direction is the direction a packet travels along a path.
type Direction int

const (
	// ToServer is client→server travel.
	ToServer Direction = iota
	// ToClient is server→client travel.
	ToClient
)

// String names the direction for traces.
func (d Direction) String() string {
	if d == ToServer {
		return "→srv"
	}
	return "→cli"
}

// Flip returns the opposite direction.
func (d Direction) Flip() Direction { return 1 - d }

// Verdict is a processor's decision about a packet.
type Verdict int

const (
	// Pass forwards the (possibly mutated) packet.
	Pass Verdict = iota
	// Drop silently discards the packet.
	Drop
)

// Processor is anything attached at a hop that sees packets in both
// directions: middleboxes, and the GFW wiretap. An on-path wiretap must
// return Pass and must not mutate the packet (clone first); in-path
// middleboxes may mutate or Drop.
type Processor interface {
	// Name labels the processor in traces.
	Name() string
	// Process handles pkt traveling in dir at this hop.
	Process(ctx *Context, pkt *packet.Packet, dir Direction) Verdict
}

// Endpoint receives packets at either end of a path.
type Endpoint interface {
	Deliver(pkt *packet.Packet)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(pkt *packet.Packet)

// Deliver implements Endpoint.
func (f EndpointFunc) Deliver(pkt *packet.Packet) { f(pkt) }

// Hop is one position on a path: a router (which decrements TTL and
// emits ICMP Time-Exceeded) with optional attached processors, plus the
// link toward the next element (server side).
type Hop struct {
	Name   string
	Router bool // decrement TTL, expire packets
	// Taps are "on-path" observers (§2.1): they see every packet that
	// arrives at this hop — including packets about to expire here —
	// before TTL processing, cannot drop, and must not mutate. The GFW
	// wiretap attaches here.
	Taps []Processor
	// Processors are "in-path" devices (middleboxes): they run after
	// TTL processing and may mutate or Drop.
	Processors []Processor
	// Latency and LossRate describe the link from this hop toward the
	// next element (the next hop, or the server after the last hop).
	Latency  time.Duration
	LossRate float64
	// Rate, when nonzero, caps the link at that many bits per second:
	// packets serialize through a finite FIFO of Queue packets
	// (DefaultQueueLimit when zero) with tail-drop, or RED when set.
	// Both directions of the link shape independently (full duplex).
	Rate  int64
	Queue int
	RED   bool
}

// Path is a linear client—hops—server topology bound to a simulator.
type Path struct {
	Sim    *Simulator
	Hops   []*Hop
	Client Endpoint
	Server Endpoint
	// ClientLink is the link between the client and the first hop.
	// Rate/Queue/RED shape it exactly as on a Hop.
	ClientLink struct {
		Latency  time.Duration
		LossRate float64
		Rate     int64
		Queue    int
		RED      bool
	}
	// Trace, when set, observes every packet event on the path.
	Trace func(ev TraceEvent)
	// Obs, when set, counts packet events and records path-level
	// flight-recorder entries. Nil means disabled (the default) and
	// costs one branch per event.
	Obs *obs.Obs
	// MTU, when nonzero, is enforced at the client link: datagrams
	// whose wire size exceeds it are dropped (traced as "drop-mtu").
	// The simulator does not auto-fragment; senders must fragment
	// deliberately, as the evasion strategies do.
	MTU int

	// Pool, when set, recycles packets at end-of-life points: link-loss
	// and router drops, middlebox Drop verdicts, and after an endpoint's
	// Deliver returns. Recycling is suppressed while Trace is attached,
	// because TraceEvents retain *Packet pointers. Only pool-owned
	// packets are recycled; heap packets pass through untouched.
	Pool *packet.Pool

	// counts accumulates per-event totals as plain increments — the
	// path belongs to a single simulation, so no atomics are needed on
	// the hot path. FlushCounters folds them into the registry.
	counts [numPathEvents]uint64

	// lastAt is the virtual time of the most recent packet event; the
	// experiment runner reads it to close the teardown span (last wire
	// activity → trial end). One store per event, no allocation.
	lastAt time.Duration

	// lineageN is the wire-ID allocator for causal tracing: every
	// packet gets a path-unique ID the first time it is sent or
	// injected. Assignment is one compare and one increment, always on
	// — IDs must be stable whether or not a tracer is attached, so the
	// determinism guarantee (tracing on == tracing off) holds.
	lineageN uint32

	// ctx is the scratch Context handed to taps and processors; reusing
	// it keeps arrive allocation-free. Processors must not retain it
	// past their Process call (the prober copies it before scheduling).
	ctx Context

	// shapers holds the lazily built per-link per-direction token
	// buckets, indexed by physical link (0 = client link, i+1 = the
	// link leaving hop i). It stays nil — and emit stays two boolean
	// loads — on paths where no link sets a Rate. shapeChk/shaped
	// memoize the scan so it runs once per path.
	shapers  [][2]*linkShaper
	shapeChk bool
	shaped   bool
}

// TraceEvent is one observable packet event.
type TraceEvent struct {
	Time  time.Duration
	Where string // element name
	Event string // "send", "fwd", "deliver", "drop-ttl", "drop-loss", "drop-proc", "inject"
	Dir   Direction
	Pkt   *packet.Packet
}

// String renders a trace line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%8.3fms %-12s %-9s %s %s",
		float64(e.Time)/float64(time.Millisecond), e.Where, e.Event, e.Dir, e.Pkt)
}

// Context gives processors access to simulation services and the
// ability to inject packets from their own position. It is agnostic to
// the substrate shape: Net is the Path or Fabric the hop belongs to.
type Context struct {
	Sim *Simulator
	Net Carrier
	// HopIndex is the position of the processor's element: a hop index
	// on a Path, a node id on a Fabric.
	HopIndex int
}

// Inject sends pkt from this context's hop in dir after delay. The GFW
// uses it to fire forged RSTs; reassembling middleboxes use it to emit
// rebuilt datagrams.
func (c *Context) Inject(dir Direction, pkt *packet.Packet, delay time.Duration) {
	c.Net.injectFrom(c.HopIndex, dir, pkt, delay)
}

// Obs returns the substrate's observability bundle (nil when
// disabled), so processors can count and trace their own decisions.
func (c *Context) Obs() *obs.Obs { return c.Net.obsBundle() }

// Pool returns the substrate's packet pool (nil when pooling is
// disabled; all pool constructors fall back to the heap on nil).
func (c *Context) Pool() *packet.Pool { return c.Net.pool() }

// element indices: -1 = client, 0..len(hops)-1 = hops, len(hops) = server.
func (p *Path) serverIndex() int { return len(p.Hops) }

// Path implements Net and Carrier: it is the compiled linear special
// case of a topology, and the only shape the pre-fabric simulator knew.

// injectFrom implements Carrier for Context.Inject.
func (p *Path) injectFrom(from int, dir Direction, pkt *packet.Packet, delay time.Duration) {
	p.emit(from, dir, pkt, delay, true)
}

// pool implements Carrier.
func (p *Path) pool() *packet.Pool { return p.Pool }

// obsBundle implements Carrier.
func (p *Path) obsBundle() *obs.Obs { return p.Obs }

// PacketPool implements Net.
func (p *Path) PacketPool() *packet.Pool { return p.Pool }

// SetClient implements Net.
func (p *Path) SetClient(ep Endpoint) { p.Client = ep }

// SetServer implements Net.
func (p *Path) SetServer(ep Endpoint) { p.Server = ep }

// SetObs implements Net.
func (p *Path) SetObs(b *obs.Obs) { p.Obs = b }

// TraceHook implements Net.
func (p *Path) TraceHook() func(ev TraceEvent) { return p.Trace }

// SetTraceHook implements Net.
func (p *Path) SetTraceHook(fn func(ev TraceEvent)) { p.Trace = fn }

// Path event indices for the hot-path counters.
const (
	evSend = iota
	evFwd
	evDeliver
	evInject
	evDropLoss
	evDropTTL
	evDropProc
	evDropIPck
	evDropIPOpt
	evDropMTU
	evDropQueue
	evDropRED
	numPathEvents
)

// pathEventLabels are the TraceEvent labels, indexed by event.
var pathEventLabels = [numPathEvents]string{
	"send", "fwd", "deliver", "inject", "drop-loss",
	"drop-ttl", "drop-proc", "drop-ipck", "drop-ipopt", "drop-mtu",
	"drop-queue", "drop-red",
}

// pathEventCounters are the registry counter names, indexed by event.
var pathEventCounters = [numPathEvents]string{
	"netem.send", "netem.fwd", "netem.deliver", "netem.inject", "netem.drop-loss",
	"netem.drop-ttl", "netem.drop-proc", "netem.drop-ipck", "netem.drop-ipopt", "netem.drop-mtu",
	"netem.drop-queue", "netem.drop-red",
}

func (p *Path) trace(where string, ev int, dir Direction, pkt *packet.Packet) {
	p.counts[ev]++
	p.lastAt = p.Sim.Now()
	if ev == evSend || ev == evInject {
		p.StampLineage(pkt)
	}
	// Per-hop forwarding stays out of the flight recorder, which would
	// otherwise fill with uninteresting "fwd" lines.
	if p.Obs != nil && ev != evFwd {
		var seq uint32
		var flags uint8
		if pkt.TCP != nil {
			seq = uint32(pkt.TCP.Seq)
			flags = pkt.TCP.Flags
		}
		p.Obs.TracePkt("netem", pathEventLabels[ev], pkt.Lin.ID, pkt.Lin.Parent, seq, flags, where+" "+dir.String())
	}
	if p.Trace != nil {
		p.Trace(TraceEvent{Time: p.Sim.Now(), Where: where, Event: pathEventLabels[ev], Dir: dir, Pkt: pkt})
	}
}

// StampLineage assigns pkt its path-unique wire ID if it does not have
// one yet, and returns the ID. The send/inject path calls it
// implicitly; the strategy engine calls it early so insertion packets
// crafted around an intercepted packet can record it as their parent
// before it ever reaches the wire.
func (p *Path) StampLineage(pkt *packet.Packet) uint32 {
	if pkt.Lin.ID == 0 {
		p.lineageN++
		pkt.Lin.ID = p.lineageN
	}
	return pkt.Lin.ID
}

// LastEventAt implements Net: the virtual time of the most recent
// packet event (zero before any traffic).
func (p *Path) LastEventAt() time.Duration { return p.lastAt }

// FlushCounters folds the path's accumulated event counts into the
// observability registry and resets them. Call once per finished
// trial; a no-op when no Obs is attached.
func (p *Path) FlushCounters() {
	if p.Obs == nil {
		return
	}
	reg := p.Obs.Registry()
	for ev, n := range p.counts {
		reg.Add(pathEventCounters[ev], n)
		p.counts[ev] = 0
	}
}

// pktKind buckets a packet for the per-type drop counters.
func pktKind(pkt *packet.Packet) string {
	switch {
	case pkt.IP.IsFragment():
		return "ipfrag"
	case pkt.TCP != nil:
		return "tcp"
	case pkt.UDP != nil:
		return "udp"
	case pkt.ICMP != nil:
		return "icmp"
	default:
		return "other"
	}
}

// release recycles a pool-owned packet at an end-of-life point. With a
// Trace attached nothing is recycled: trace events hold the pointer.
func (p *Path) release(pkt *packet.Packet) {
	if p.Trace == nil {
		pkt.Release()
	}
}

// SendFromClient transmits pkt from the client end.
func (p *Path) SendFromClient(pkt *packet.Packet) {
	if p.MTU > 0 && wireSize(pkt) > p.MTU {
		p.trace("client", evDropMTU, ToServer, pkt)
		p.release(pkt)
		return
	}
	p.trace("client", evSend, ToServer, pkt)
	p.emit(-1, ToServer, pkt, 0, false)
}

// wireSize computes the datagram's on-the-wire size from its fields.
func wireSize(pkt *packet.Packet) int {
	n := pkt.IP.HeaderLen() + len(pkt.Payload)
	switch {
	case pkt.TCP != nil:
		n += pkt.TCP.HeaderLen()
	case pkt.UDP != nil:
		n += packet.UDPHeaderLen
	case pkt.ICMP != nil:
		n += 8 + len(pkt.ICMP.Body)
	}
	return n
}

// SendFromServer transmits pkt from the server end.
func (p *Path) SendFromServer(pkt *packet.Packet) {
	p.trace("server", evSend, ToClient, pkt)
	p.emit(p.serverIndex(), ToClient, pkt, 0, false)
}

// linkFrom returns the latency/loss of the link leaving element idx in
// direction dir.
func (p *Path) linkFrom(idx int, dir Direction) (time.Duration, float64) {
	if dir == ToServer {
		if idx < 0 {
			return p.ClientLink.Latency, p.ClientLink.LossRate
		}
		return p.Hops[idx].Latency, p.Hops[idx].LossRate
	}
	// ToClient: the link leaving element idx toward the client is the
	// link between idx-1 and idx.
	if idx <= 0 {
		return p.ClientLink.Latency, p.ClientLink.LossRate
	}
	return p.Hops[idx-1].Latency, p.Hops[idx-1].LossRate
}

// linkID maps (element, direction) to the physical link index: 0 is
// the client link, i+1 the link leaving hop i toward the server.
func (p *Path) linkID(from int, dir Direction) int {
	if dir == ToServer {
		return from + 1
	}
	if from <= 0 {
		return 0
	}
	return from
}

// shaperAt returns the token bucket for the link leaving element from
// in direction dir, building it on first use; nil when that link (or
// the whole path) is unrated. The first call scans the path once and
// memoizes the answer, so unshaped paths pay two boolean loads per
// emission and allocate nothing.
func (p *Path) shaperAt(from int, dir Direction) *linkShaper {
	if !p.shapeChk {
		p.shapeChk = true
		p.shaped = p.ClientLink.Rate > 0
		for _, h := range p.Hops {
			if h.Rate > 0 {
				p.shaped = true
			}
		}
		if p.shaped {
			p.shapers = make([][2]*linkShaper, len(p.Hops)+1)
		}
	}
	if !p.shaped {
		return nil
	}
	id := p.linkID(from, dir)
	if sh := p.shapers[id][dir]; sh != nil {
		return sh
	}
	var rate int64
	var queue int
	var red bool
	if id == 0 {
		rate, queue, red = p.ClientLink.Rate, p.ClientLink.Queue, p.ClientLink.RED
	} else {
		h := p.Hops[id-1]
		rate, queue, red = h.Rate, h.Queue, h.RED
	}
	if rate <= 0 {
		return nil
	}
	sh := newLinkShaper(rate, queue, red)
	p.shapers[id][dir] = sh
	return sh
}

// emit schedules pkt's traversal of the link leaving element from in
// direction dir, then processing at the next element. inject marks
// mid-path injections (forged packets, rebuilt datagrams, ICMP). The
// traversal rides a monomorphic packet event (AtPacket) rather than a
// closure, so steady-state emission allocates nothing. On a rated
// link the token bucket adds queueing+serialization delay ahead of
// the propagation latency, or drops the packet at a full queue.
func (p *Path) emit(from int, dir Direction, pkt *packet.Packet, extraDelay time.Duration, inject bool) {
	if inject && from >= 0 && from < p.serverIndex() {
		p.trace(p.Hops[from].Name, evInject, dir, pkt)
	}
	lat, _ := p.linkFrom(from, dir)
	delay := extraDelay + lat
	if p.shaped || !p.shapeChk {
		if sh := p.shaperAt(from, dir); sh != nil {
			qd, ev := sh.admit(p.Sim, wireSize(pkt))
			if ev >= 0 {
				p.trace(p.elementName(from), ev, dir, pkt)
				p.release(pkt)
				return
			}
			delay += qd
		}
	}
	p.Sim.AtPacket(delay, p, pkt, from, dir)
}

// HandlePacket implements PacketHandler: the packet has finished
// crossing the link leaving element from in direction dir. Loss is
// recomputed here (linkFrom is pure) and the PRNG is drawn at fire
// time, exactly as the old closure did, preserving the draw order.
func (p *Path) HandlePacket(pkt *packet.Packet, from int, dir Direction) {
	_, loss := p.linkFrom(from, dir)
	next := from + 1
	if dir == ToClient {
		next = from - 1
	}
	if loss > 0 && p.Sim.Rand().Float64() < loss {
		p.trace(p.elementName(next), evDropLoss, dir, pkt)
		p.release(pkt)
		return
	}
	p.arrive(next, dir, pkt)
}

func (p *Path) elementName(idx int) string {
	switch {
	case idx < 0:
		return "client"
	case idx >= p.serverIndex():
		return "server"
	default:
		return p.Hops[idx].Name
	}
}

// arrive processes pkt at element idx.
func (p *Path) arrive(idx int, dir Direction, pkt *packet.Packet) {
	switch {
	case idx < 0:
		p.trace("client", evDeliver, dir, pkt)
		if p.Client != nil {
			p.Client.Deliver(pkt)
		}
		p.release(pkt)
		return
	case idx >= p.serverIndex():
		p.trace("server", evDeliver, dir, pkt)
		if p.Server != nil {
			p.Server.Deliver(pkt)
		}
		p.release(pkt)
		return
	}
	hop := p.Hops[idx]
	p.ctx.Sim, p.ctx.Net, p.ctx.HopIndex = p.Sim, p, idx
	ctx := &p.ctx
	for _, tap := range hop.Taps {
		tap.Process(ctx, pkt, dir)
	}
	if hop.Router {
		// Routers validate the IP header checksum (RFC 1812 §5.2.2)
		// and, in this model, discard datagrams carrying IP options —
		// the §5.3 observation that IP-layer discrepancies "are often
		// dropped by routers or middleboxes" and therefore make poor
		// insertion packets.
		if !pkt.IP.VerifyChecksum() {
			p.trace(hop.Name, evDropIPck, dir, pkt)
			p.release(pkt)
			return
		}
		if len(pkt.IP.Options) > 0 {
			p.trace(hop.Name, evDropIPOpt, dir, pkt)
			p.release(pkt)
			return
		}
		if pkt.IP.TTL <= 1 {
			p.trace(hop.Name, evDropTTL, dir, pkt)
			p.sendTimeExceeded(idx, dir, pkt)
			p.release(pkt)
			return
		}
		pkt.IP.DecrementTTL()
	}
	for _, proc := range hop.Processors {
		if proc.Process(ctx, pkt, dir) == Drop {
			if p.Obs != nil {
				// Attribute the drop to the middlebox and the packet
				// type — §3.4's "middlebox ate the insertion packet".
				p.Obs.Count("middlebox.drop." + proc.Name())
				p.Obs.Count("middlebox.drop-kind." + pktKind(pkt))
			}
			p.trace(hop.Name, evDropProc, dir, pkt)
			p.release(pkt)
			return
		}
	}
	p.trace(hop.Name, evFwd, dir, pkt)
	p.emit(idx, dir, pkt, 0, false)
}

// sendTimeExceeded emits an ICMP Time-Exceeded from hop idx back toward
// the packet's source. With a pool attached the reply reuses pooled
// storage; the heap fallback inside TimeExceededPacket handles the
// rest.
func (p *Path) sendTimeExceeded(idx int, dir Direction, orig *packet.Packet) {
	reply := p.Pool.TimeExceededPacket(orig, p.hopAddr(idx))
	reply.Lin = packet.Lineage{Origin: packet.OriginRouter, Parent: orig.Lin.ID}
	p.emit(idx, dir.Flip(), reply, 0, true)
}

// hopAddr synthesizes a stable router address for hop idx, so
// traceroute-style measurements can distinguish hops.
func (p *Path) hopAddr(idx int) packet.Addr {
	return packet.AddrFrom4(10, 254, byte(idx>>8), byte(idx))
}

// RouterHopCount returns the number of TTL-decrementing hops between the
// client and the server.
func (p *Path) RouterHopCount() int {
	n := 0
	for _, h := range p.Hops {
		if h.Router {
			n++
		}
	}
	return n
}

// HopIndexOf returns the index of the first hop carrying a processor
// with the given name, or -1.
func (p *Path) HopIndexOf(name string) int {
	for i, h := range p.Hops {
		for _, proc := range h.Processors {
			if proc.Name() == name {
				return i
			}
		}
		for _, tap := range h.Taps {
			if tap.Name() == name {
				return i
			}
		}
	}
	return -1
}

// RouterHopsBefore returns how many TTL-decrementing hops a
// client-originated packet crosses up to and including hop idx.
func (p *Path) RouterHopsBefore(idx int) int {
	n := 0
	for i := 0; i <= idx && i < len(p.Hops); i++ {
		if p.Hops[i].Router {
			n++
		}
	}
	return n
}

// Describe renders the topology as a one-line ASCII diagram (Fig. 1).
func (p *Path) Describe() string {
	var b strings.Builder
	b.WriteString("client")
	for _, h := range p.Hops {
		b.WriteString(" — ")
		b.WriteString(h.Name)
		var names []string
		for _, tap := range h.Taps {
			names = append(names, "tap:"+tap.Name())
		}
		for _, proc := range h.Processors {
			names = append(names, proc.Name())
		}
		if len(names) > 0 {
			fmt.Fprintf(&b, "[%s]", strings.Join(names, ","))
		}
	}
	b.WriteString(" — server")
	return b.String()
}
