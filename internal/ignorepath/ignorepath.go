// Package ignorepath implements the systematic insertion-packet
// discovery of §5.3: it enumerates candidate packet perturbations
// against the server stack models ("ignore path" analysis — every
// program path on which the server discards or ignores a packet),
// cross-checks each against the GFW model (does the device process the
// packet and update its TCB?), and cross-validates against the Table 2
// middlebox profiles. Its output is Table 3, generated rather than
// transcribed.
package ignorepath

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"intango/internal/core"
	"intango/internal/gfw"
	"intango/internal/middlebox"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

const probeKeyword = "ultrasurf"

// connContext is the fixed synthetic connection all candidates are
// evaluated against.
type connContext struct {
	cli, srv  packet.Addr
	cport     uint16
	sport     uint16
	clientISS packet.Seq
	serverISS packet.Seq
}

func defaultContext() connContext {
	return connContext{
		cli: packet.AddrFrom4(10, 0, 0, 1), srv: packet.AddrFrom4(203, 0, 113, 80),
		cport: 40000, sport: 80,
		clientISS: 10000, serverISS: 90000,
	}
}

// view builds the server-side ConnView for a state.
func (cc connContext) view(st tcpstack.State) tcpstack.ConnView {
	return tcpstack.ConnView{
		State:       st,
		RcvNxt:      cc.clientISS.Add(1),
		RcvWnd:      29200,
		SndUna:      cc.serverISS.Add(1),
		SndNxt:      cc.serverISS.Add(1),
		TSRecent:    5000,
		HasTSRecent: true,
		MaxWindow:   29200,
	}
}

// dataProbe builds an in-order client data packet carrying the probe
// keyword, with valid numbering — the baseline every perturbation
// starts from.
func (cc connContext) dataProbe() *packet.Packet {
	p := packet.NewTCP(cc.cli, cc.cport, cc.srv, cc.sport,
		packet.FlagPSH|packet.FlagACK, cc.clientISS.Add(1), cc.serverISS.Add(1),
		[]byte("GET /?q="+probeKeyword+" HTTP/1.1\r\n\r\n"))
	p.TCP.Options = append(p.TCP.Options, packet.TimestampOption(6000, 5000))
	return p.Finalize()
}

// Candidate is one row of the enumeration.
type Candidate struct {
	// Condition describes the perturbation, in Table 3's wording.
	Condition string
	// Flags is the TCP flag set of the probe.
	Flags string
	// States lists the server TCP states the row applies to.
	States []tcpstack.State
	// Control marks candidates whose GFW effect is a state change
	// (teardown/resync) rather than data ingestion.
	Control bool
	// RouterHostile marks IP-layer perturbations §5.3 expects routers
	// themselves to discard; the analysis should prove them unusable.
	RouterHostile bool
	// build produces the probe packet.
	build func(cc connContext) *packet.Packet
}

// Candidates returns the §5.3 enumeration: the baseline acceptable
// packet plus every studied perturbation.
//
// The TCP-layer data-packet perturbations are exactly the crafting
// discrepancies the evasion strategies inject (core.Discrepancy), so
// they are routed through the same core.Env.Apply the strategy
// compiler uses — Table 3 probes the very packets Table 5 builds,
// through one implementation. The remaining rows (IP-layer
// perturbations, the RST+ACK control, FIN-only) have no strategy
// counterpart and stay bespoke.
func Candidates() []Candidate {
	anyState := []tcpstack.State{tcpstack.SynRecv, tcpstack.Established}
	env := core.Env{Rand: rand.New(rand.NewSource(53))}
	disc := func(d core.Discrepancy) func(cc connContext) *packet.Packet {
		return func(cc connContext) *packet.Packet { return env.Apply(cc.dataProbe(), d) }
	}
	return []Candidate{
		{
			Condition: "IP total length > actual length", Flags: "Any", States: anyState,
			build: func(cc connContext) *packet.Packet {
				p := cc.dataProbe()
				p.IP.TotalLength += 64
				// The sender computes the header checksum over the
				// lying length, so the header is internally consistent
				// and routers forward it.
				p.IP.UpdateChecksum()
				return p
			},
		},
		{
			Condition: "TCP Header Length < 20", Flags: "Any", States: anyState,
			build: func(cc connContext) *packet.Packet {
				p := cc.dataProbe()
				p.TCP.RawDataOffset = 4
				return p
			},
		},
		{
			Condition: "TCP checksum incorrect", Flags: "Any", States: anyState,
			build: disc(core.DiscBadChecksum),
		},
		{
			Condition: "Wrong acknowledgement number", Flags: "RST+ACK",
			States: []tcpstack.State{tcpstack.SynRecv}, Control: true,
			build: func(cc connContext) *packet.Packet {
				return packet.NewTCP(cc.cli, cc.cport, cc.srv, cc.sport,
					packet.FlagRST|packet.FlagACK, cc.clientISS.Add(1), cc.serverISS.Add(77777), nil)
			},
		},
		{
			Condition: "Wrong acknowledgement number", Flags: "ACK", States: anyState,
			build: disc(core.DiscBadAck),
		},
		{
			Condition: "Has unsolicited MD5 Optional Header", Flags: "Any", States: anyState,
			build: disc(core.DiscMD5),
		},
		{
			Condition: "TCP packet with no flag", Flags: "No flag", States: anyState,
			build: disc(core.DiscNoFlag),
		},
		{
			Condition: "TCP packet with only FIN flag", Flags: "FIN", States: anyState,
			build: func(cc connContext) *packet.Packet {
				p := cc.dataProbe()
				p.TCP.Flags = packet.FlagFIN
				return p.Finalize()
			},
		},
		{
			Condition: "Timestamps too old", Flags: "ACK", States: anyState,
			build: disc(core.DiscOldTimestamp),
		},
		// §5.3's rejected IP-layer discrepancies: routers themselves
		// discard these, so they never make it to the GFW, let alone
		// past it — the analysis must rule them out.
		{
			Condition: "IP checksum incorrect", Flags: "Any", States: anyState, RouterHostile: true,
			build: func(cc connContext) *packet.Packet {
				p := cc.dataProbe()
				p.IP.Checksum ^= 0x5a5a
				return p
			},
		},
		{
			Condition: "IP optional header present", Flags: "Any", States: anyState, RouterHostile: true,
			build: func(cc connContext) *packet.Packet {
				p := cc.dataProbe()
				// A record-route option, padded to 4 bytes.
				p.IP.Options = []byte{7, 7, 4, 0, 0, 0, 0, 0}
				p.IP.SetLengths(p.TCP.HeaderLen() + len(p.Payload))
				p.IP.UpdateChecksum()
				return p
			},
		},
	}
}

// Finding is the evaluated result for one candidate.
type Finding struct {
	Candidate Candidate
	// ServerVerdicts maps stack profile name → disposition in each
	// applicable state ("state/verdict(reason)").
	ServerVerdicts map[string][]string
	// ServerIgnores reports whether the reference stack (Linux 4.4)
	// ignores the packet in every applicable state.
	ServerIgnores bool
	// GFWAccepts reports whether the evolved GFW model processes the
	// packet (ingests its data or changes TCB state).
	GFWAccepts bool
	// GFWEffect describes what the GFW did.
	GFWEffect string
	// Middlebox maps Table 2 profile → "pass" / "dropped" /
	// "sometimes dropped".
	Middlebox map[middlebox.ProfileName]string
	// UsableInsertion is the §5.3 conclusion: ignored by the server
	// but accepted by the GFW.
	UsableInsertion bool
}

// Analyze runs the full §5.3 pipeline over all candidates.
func Analyze() []Finding {
	cc := defaultContext()
	profiles := tcpstack.AllProfiles()
	var findings []Finding
	for _, cand := range Candidates() {
		f := Finding{
			Candidate:      cand,
			ServerVerdicts: make(map[string][]string),
			Middlebox:      make(map[middlebox.ProfileName]string),
		}
		ignores := true
		for _, prof := range profiles {
			for _, st := range cand.States {
				d := tcpstack.Classify(prof, cc.view(st), cand.build(cc))
				f.ServerVerdicts[prof.Name] = append(f.ServerVerdicts[prof.Name],
					fmt.Sprintf("%s/%s(%s)", st, d.Verdict, d.Reason))
				if prof.Name == "linux-4.4" && d.Verdict == tcpstack.Accept {
					ignores = false
				}
			}
		}
		f.ServerIgnores = ignores
		f.GFWAccepts, f.GFWEffect = probeGFW(cc, cand)
		f.Middlebox = probeMiddleboxes(cc, cand)
		f.UsableInsertion = f.ServerIgnores && f.GFWAccepts
		findings = append(findings, f)
	}
	return findings
}

// probeGFW replays a handshake plus the candidate against a live
// evolved device and observes whether the device processed it.
func probeGFW(cc connContext, cand Candidate) (bool, string) {
	sim := netem.NewSimulator(97)
	cfg := gfw.Config{Model: gfw.ModelEvolved2017, Keywords: []string{probeKeyword}, DetectionMissProb: -1, ResyncOnRSTProb: 1}
	dev := gfw.NewDevice("gfw-probe", cfg, sim.Rand())
	path := &netem.Path{Sim: sim}
	for i := 0; i < 3; i++ {
		path.Hops = append(path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	path.Hops[1].Taps = []netem.Processor{dev}

	var events []string
	dev.OnEvent = func(ev gfw.Event) { events = append(events, ev.Kind) }

	// Synthetic handshake.
	path.SendFromClient(packet.NewTCP(cc.cli, cc.cport, cc.srv, cc.sport, packet.FlagSYN, cc.clientISS, 0, nil))
	path.SendFromServer(packet.NewTCP(cc.srv, cc.sport, cc.cli, cc.cport,
		packet.FlagSYN|packet.FlagACK, cc.serverISS, cc.clientISS.Add(1), nil))
	path.SendFromClient(packet.NewTCP(cc.cli, cc.cport, cc.srv, cc.sport,
		packet.FlagACK, cc.clientISS.Add(1), cc.serverISS.Add(1), nil))
	sim.Run(1000)

	path.SendFromClient(cand.build(cc))
	sim.Run(1000)

	if cand.Control {
		// A control packet is "accepted" if it changed the TCB state.
		for _, k := range events {
			if k == "teardown" {
				return true, "TCB torn down (previous state terminated)"
			}
			if k == "resync" {
				return true, "TCB moved to RESYNC"
			}
		}
		return false, "no state change"
	}
	for _, k := range events {
		if k == "detect" {
			return true, "payload ingested and keyword detected"
		}
	}
	return false, "payload not processed"
}

// probeMiddleboxes pushes the candidate through each Table 2 profile
// chain repeatedly and classifies the outcome.
func probeMiddleboxes(cc connContext, cand Candidate) map[middlebox.ProfileName]string {
	out := make(map[middlebox.ProfileName]string)
	const trials = 25
	for _, prof := range middlebox.AllProfiles() {
		sim := netem.NewSimulator(7)
		chain := middlebox.BuildProfile(prof, sim.Rand())
		path := &netem.Path{Sim: sim}
		path.Hops = append(path.Hops, &netem.Hop{Name: "mb", Router: true, Latency: time.Millisecond, Processors: chain})
		delivered := 0
		path.Server = netem.EndpointFunc(func(*packet.Packet) { delivered++ })
		for i := 0; i < trials; i++ {
			path.SendFromClient(cand.build(cc))
		}
		sim.Run(100000)
		switch {
		case delivered == trials:
			out[prof] = "pass"
		case delivered == 0:
			out[prof] = "dropped"
		default:
			out[prof] = "sometimes dropped"
		}
	}
	return out
}

// FormatTable3 renders the findings in the layout of Table 3.
func FormatTable3(findings []Finding) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-28s %-10s %-38s %s\n", "TCP State", "GFW State", "TCP Flags", "Condition", "Insertion?")
	for _, f := range findings {
		if !f.UsableInsertion {
			continue
		}
		states := make([]string, len(f.Candidate.States))
		for i, st := range f.Candidate.States {
			states[i] = st.String()
		}
		gfwState := "ESTABLISHED/RESYNC"
		if len(f.Candidate.States) == 2 && f.Candidate.States[0] == tcpstack.SynRecv &&
			f.Candidate.Condition[0] != 'W' && f.Candidate.Flags == "Any" &&
			f.Candidate.Condition != "Has unsolicited MD5 Optional Header" {
			gfwState = "Any"
		}
		if f.Candidate.Flags == "Any" && (f.Candidate.Condition == "IP total length > actual length" ||
			f.Candidate.Condition == "TCP Header Length < 20" || f.Candidate.Condition == "TCP checksum incorrect") {
			fmt.Fprintf(&b, "%-24s %-28s %-10s %-38s yes\n", "Any", "Any", "Any", f.Candidate.Condition)
			continue
		}
		fmt.Fprintf(&b, "%-24s %-28s %-10s %-38s yes\n",
			strings.Join(states, "/"), gfwState, f.Candidate.Flags, f.Candidate.Condition)
	}
	return b.String()
}

// CrossValidation summarizes the §5.3 stack differences: candidates
// whose disposition on an older stack diverges from Linux 4.4.
func CrossValidation(findings []Finding) []string {
	var notes []string
	for _, f := range findings {
		ref := f.ServerVerdicts["linux-4.4"]
		for _, prof := range []string{"linux-4.0", "linux-3.14", "linux-2.6.34", "linux-2.4.37"} {
			got := f.ServerVerdicts[prof]
			for i := range ref {
				if i < len(got) && got[i] != ref[i] {
					notes = append(notes, fmt.Sprintf("%s: %q differs: 4.4=%s vs %s=%s",
						prof, f.Candidate.Condition, ref[i], prof, got[i]))
				}
			}
		}
	}
	return notes
}
