package ignorepath

import (
	"strings"
	"testing"

	"intango/internal/middlebox"
)

func TestAnalyzeReproducesTable3(t *testing.T) {
	findings := Analyze()
	if len(findings) != 11 {
		t.Fatalf("findings = %d, want 9 Table 3 rows + 2 rejected IP-layer candidates", len(findings))
	}
	// The §5.3 rejected IP-layer discrepancies must be proven
	// unusable: routers discard them before the GFW.
	for _, f := range findings {
		if f.Candidate.RouterHostile {
			if f.GFWAccepts || f.UsableInsertion {
				t.Errorf("%q should be rejected by the analysis", f.Candidate.Condition)
			}
		}
	}
	// Every actual Table 3 row must come out as a usable insertion
	// packet: ignored by Linux 4.4, accepted by the GFW.
	for _, f := range findings {
		if f.Candidate.RouterHostile {
			continue
		}
		if !f.ServerIgnores {
			t.Errorf("%q (%s): server does not ignore: %v",
				f.Candidate.Condition, f.Candidate.Flags, f.ServerVerdicts["linux-4.4"])
		}
		if !f.GFWAccepts {
			t.Errorf("%q (%s): GFW does not accept: %s",
				f.Candidate.Condition, f.Candidate.Flags, f.GFWEffect)
		}
		if !f.UsableInsertion {
			t.Errorf("%q (%s): not a usable insertion packet", f.Candidate.Condition, f.Candidate.Flags)
		}
	}
}

func TestRSTACKControlProbe(t *testing.T) {
	findings := Analyze()
	var rstack *Finding
	for i := range findings {
		if findings[i].Candidate.Flags == "RST+ACK" {
			rstack = &findings[i]
		}
	}
	if rstack == nil {
		t.Fatal("no RST+ACK candidate")
	}
	// §5.3 finding 1: the GFW accepts it and changes state to
	// LISTEN (terminated) or RESYNC.
	if !strings.Contains(rstack.GFWEffect, "RESYNC") && !strings.Contains(rstack.GFWEffect, "torn down") {
		t.Fatalf("effect = %q", rstack.GFWEffect)
	}
}

func TestMiddleboxCrossValidation(t *testing.T) {
	findings := Analyze()
	byCondition := func(cond string) Finding {
		for _, f := range findings {
			if f.Candidate.Condition == cond {
				return f
			}
		}
		t.Fatalf("missing %q", cond)
		return Finding{}
	}
	// §5.3: MD5-option insertion packets are never dropped by the
	// middleboxes encountered.
	md5 := byCondition("Has unsolicited MD5 Optional Header")
	for prof, verdict := range md5.Middlebox {
		if verdict != "pass" {
			t.Errorf("md5 through %s: %s, want pass", prof, verdict)
		}
	}
	// Same for old timestamps and wrong ACK numbers.
	for _, cond := range []string{"Timestamps too old"} {
		f := byCondition(cond)
		for prof, verdict := range f.Middlebox {
			if verdict != "pass" {
				t.Errorf("%s through %s: %s, want pass", cond, prof, verdict)
			}
		}
	}
	// Wrong checksum and flagless packets are dropped at Unicom
	// Tianjin (Table 2).
	ck := byCondition("TCP checksum incorrect")
	if ck.Middlebox[middlebox.ProfileUnicomTJ] != "dropped" {
		t.Errorf("bad checksum at unicom-tj: %s", ck.Middlebox[middlebox.ProfileUnicomTJ])
	}
	noflag := byCondition("TCP packet with no flag")
	if noflag.Middlebox[middlebox.ProfileUnicomTJ] != "dropped" {
		t.Errorf("no-flag at unicom-tj: %s", noflag.Middlebox[middlebox.ProfileUnicomTJ])
	}
	if noflag.Middlebox[middlebox.ProfileAliyun] != "pass" {
		t.Errorf("no-flag at aliyun: %s", noflag.Middlebox[middlebox.ProfileAliyun])
	}
}

func TestCrossValidationFindsStackDifferences(t *testing.T) {
	findings := Analyze()
	notes := CrossValidation(findings)
	wantSubstrings := []string{
		// Linux 2.6.34/2.4.37 accept data without the ACK flag (§5.3).
		"linux-2.6.34: \"TCP packet with no flag\"",
		// Linux 2.4.37 has no RFC 2385 support (§5.3).
		"linux-2.4.37: \"Has unsolicited MD5 Optional Header\"",
	}
	joined := strings.Join(notes, "\n")
	for _, want := range wantSubstrings {
		if !strings.Contains(joined, want) {
			t.Errorf("cross-validation missing %q in:\n%s", want, joined)
		}
	}
	// Linux 4.0 must not diverge from 4.4 (§5.3 found no differences).
	if strings.Contains(joined, "linux-4.0:") {
		t.Errorf("linux-4.0 should match 4.4:\n%s", joined)
	}
}

func TestFormatTable3(t *testing.T) {
	out := FormatTable3(Analyze())
	for _, want := range []string{
		"TCP checksum incorrect",
		"Has unsolicited MD5 Optional Header",
		"Timestamps too old",
		"Wrong acknowledgement number",
		"TCP packet with only FIN flag",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "Any") {
		t.Error("header-level rows should apply to any state")
	}
}
