package core

import (
	"time"

	"intango/internal/packet"
)

// Emission is one packet a strategy wants on the wire. Insertion
// packets are re-sent Env.Repeat times to survive loss; real packets go
// out exactly once.
type Emission struct {
	Pkt       *packet.Packet
	Insertion bool
	// Delay postpones the emission by that much virtual time (the
	// `delay` primitive); insertion repeat waves stack on top of it.
	Delay time.Duration
}

// real wraps the client's own packet.
func real(p *packet.Packet) Emission { return Emission{Pkt: p} }

// insertion wraps a crafted packet.
func insertion(p *packet.Packet) Emission { return Emission{Pkt: p, Insertion: true} }

// Flow is the per-connection view a strategy works against, maintained
// by the Engine from the packets it intercepts.
type Flow struct {
	Tuple packet.FourTuple
	Env   *Env

	// ISS is the client's initial sequence number (from its SYN).
	ISS packet.Seq
	// ServerISN is the server's initial sequence number (from the
	// SYN/ACK), valid once HandshakeDone.
	ServerISN packet.Seq
	// SndNxt and RcvNxt track the client's live sequence state, from
	// observed traffic.
	SndNxt, RcvNxt packet.Seq
	// HandshakeDone is set once the client has ACKed the SYN/ACK.
	HandshakeDone bool
	// DataSent counts client payload bytes so far; the first data
	// packet (DataSent==0) is where most strategies act.
	DataSent int

	// exec is the compiled executor's per-flow trigger state (see
	// primitives.go). Keeping it here — not on the Strategy value —
	// means a strategy instance reused across flows cannot leak
	// one-shot state between connections.
	exec *execState
}

// Strategy transforms the client's outbound packets, inserting crafted
// packets around them. Implementations are per-connection and may keep
// state across calls.
type Strategy interface {
	// Name is the strategy's identifier (matching the paper's tables).
	Name() string
	// Outbound intercepts one client packet and returns the emission
	// sequence that replaces it (usually including the packet itself).
	Outbound(f *Flow, pkt *packet.Packet) []Emission
}

// Factory builds a fresh per-connection strategy instance.
type Factory func() Strategy

// Passthrough is the no-strategy baseline.
type Passthrough struct{}

// Name implements Strategy.
func (Passthrough) Name() string { return "none" }

// Outbound implements Strategy.
func (Passthrough) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	return []Emission{real(pkt)}
}

// --- crafting helpers shared by the strategies ---

// fakeSYN builds a SYN insertion packet with a deliberately wrong
// sequence number, outside the server's receive window so older Linux
// servers are not reset by it (§5.2).
func fakeSYN(f *Flow, disc Discrepancy) *packet.Packet {
	p := packet.NewTCP(f.Tuple.SrcAddr, f.Tuple.SrcPort, f.Tuple.DstAddr, f.Tuple.DstPort,
		packet.FlagSYN, f.SndNxt.Add(1<<20), 0, nil)
	return f.Env.Apply(p, disc)
}

// fakeSYNACK builds the TCB Reversal insertion packet: a SYN/ACK from
// the client that the evolved GFW mistakes for the server's.
func fakeSYNACK(f *Flow, disc Discrepancy) *packet.Packet {
	p := packet.NewTCP(f.Tuple.SrcAddr, f.Tuple.SrcPort, f.Tuple.DstAddr, f.Tuple.DstPort,
		packet.FlagSYN|packet.FlagACK,
		packet.Seq(f.Env.Rand.Uint32()), packet.Seq(f.Env.Rand.Uint32()), nil)
	return f.Env.Apply(p, disc)
}

// teardownPacket builds a RST, RST/ACK or FIN insertion packet carrying
// the connection's live sequence numbers.
func teardownPacket(f *Flow, flags uint8, disc Discrepancy) *packet.Packet {
	var ack packet.Seq
	if flags&packet.FlagACK != 0 {
		ack = f.RcvNxt
	}
	p := packet.NewTCP(f.Tuple.SrcAddr, f.Tuple.SrcPort, f.Tuple.DstAddr, f.Tuple.DstPort,
		flags, f.SndNxt, ack, nil)
	return f.Env.Apply(p, disc)
}

// desyncPacket builds the §5.1 desynchronization packet: one byte of
// junk at a far-out-of-window sequence number. The server ignores it
// naturally (out of window); a GFW in the resynchronization state
// adopts its sequence and goes blind to the real stream.
func desyncPacket(f *Flow) *packet.Packet {
	p := packet.NewTCP(f.Tuple.SrcAddr, f.Tuple.SrcPort, f.Tuple.DstAddr, f.Tuple.DstPort,
		packet.FlagPSH|packet.FlagACK, f.SndNxt.Add(1<<20), f.RcvNxt, []byte{'z'})
	return p.Finalize()
}

// prefillPacket builds an in-order junk data packet shadowing the real
// segment: same sequence range, filler payload.
func prefillPacket(f *Flow, realPkt *packet.Packet, disc Discrepancy) *packet.Packet {
	p := packet.NewTCP(f.Tuple.SrcAddr, f.Tuple.SrcPort, f.Tuple.DstAddr, f.Tuple.DstPort,
		packet.FlagPSH|packet.FlagACK, realPkt.TCP.Seq, f.RcvNxt, junk(len(realPkt.Payload)))
	return f.Env.Apply(p, disc)
}
