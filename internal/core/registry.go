package core

import (
	"fmt"
	"strings"

	"intango/internal/packet"
)

// This file defines every strategy of the paper's Tables 1, 4 and 5 as
// a Spec built from the primitives of primitives.go, registered under
// its legacy name. The monolithic per-strategy implementations are
// gone: a strategy is now data, and the registry is just the naming
// layer over it.

// Entry is one registered strategy: its legacy display name (the alias
// used in table output and the INTANG stats) and its spec.
type Entry struct {
	// Alias is the legacy Name() string, e.g. "improved-teardown".
	Alias string
	// Spec is the declarative definition; Spec.String() is the
	// canonical identity the result cache and tools key off.
	Spec Spec
}

// legacyFlagSlug names teardown flags the way the pre-spec registry
// did ("teardown-fin" is FIN|ACK — the spec vocabulary says "finack").
func legacyFlagSlug(flags uint8) string {
	switch flags {
	case packet.FlagRST:
		return "rst"
	case packet.FlagRST | packet.FlagACK:
		return "rstack"
	case packet.FlagFIN, packet.FlagFIN | packet.FlagACK:
		return "fin"
	default:
		return packet.FlagString(flags)
	}
}

func onHandshake(actions ...Action) Rule {
	return Rule{Trigger: Trigger{Phase: PhaseHandshake}, Actions: actions}
}

func onFirstPayload(actions ...Action) Rule {
	return Rule{Trigger: Trigger{Phase: PhaseFirstPayload}, Actions: actions}
}

// --- spec constructors for the paper's strategies ---

// SpecTCBCreation is "TCB creation with SYN" (§3.2): a fake-sequence
// SYN insertion packet before the real handshake, creating a false TCB
// on the (old) GFW so the real connection is out of its window.
func SpecTCBCreation(d Discrepancy) Spec {
	return Spec{Rules: []Rule{onHandshake(InjectAction{Kind: InjectSYN, Disc: d})}}
}

// SpecOutOfOrderIPFrag is the out-of-order IP-fragment overlap (§3.2):
// fragment so the head carries no payload, send junk copies of the
// tails first (the GFW keeps the first copy of overlapping fragments),
// then the real tails, then the gap-filling head. rexmit re-fragments
// retransmissions so a lossy path never sees the request whole.
func SpecOutOfOrderIPFrag() Spec {
	return Spec{Rules: []Rule{{
		Trigger: Trigger{Phase: PhaseFirstPayload, Min: 16, Rexmit: true},
		Actions: []Action{
			FragmentAction{Layer: LayerIP},
			ReorderAction{},
			DuplicateAction{Fill: FillJunk, Pos: PosBefore},
		},
	}}}
}

// SpecOutOfOrderTCPSeg is the TCP-segment variant (§3.2): real tail
// first, junk copy second (the old GFW prefers the later out-of-order
// copy; the server keeps the first), then the head. The split lands
// right after the method token, before any keyword.
func SpecOutOfOrderTCPSeg() Spec {
	return Spec{Rules: []Rule{{
		Trigger: Trigger{Phase: PhaseFirstPayload, Min: 4},
		Actions: []Action{
			FragmentAction{Layer: LayerTCP, At: 4},
			ReorderAction{},
			DuplicateAction{Fill: FillJunk, Pos: PosAfter},
		},
	}}}
}

// SpecInOrderPrefill is in-order data overlapping (§3.2): junk
// insertion copies shadowing the real request fill the GFW's buffer
// first; the server never accepts them thanks to the discrepancy.
func SpecInOrderPrefill(discs ...Discrepancy) Spec {
	acts := make([]Action, len(discs))
	for i, d := range discs {
		acts[i] = InjectAction{Kind: InjectPrefill, Disc: d}
	}
	return Spec{Rules: []Rule{onFirstPayload(acts...)}}
}

// SpecTCBTeardown sends a RST, RST/ACK or FIN insertion packet after
// the handshake to deactivate the GFW's TCB before the request (§3.2).
func SpecTCBTeardown(flags uint8, d Discrepancy) Spec {
	return Spec{Rules: []Rule{onFirstPayload(TeardownAction{Flags: flags, Disc: d})}}
}

// SpecImprovedTeardown is the §7.1 "Improved TCB Teardown": RST
// insertions (TTL- and MD5-based, per Table 5) followed by a
// desynchronization packet, so a GFW that answers the RST by entering
// the resynchronization state is steered onto a garbage sequence.
func SpecImprovedTeardown() Spec {
	return Spec{Rules: []Rule{onFirstPayload(
		TeardownAction{Flags: packet.FlagRST, Disc: DiscTTL},
		TeardownAction{Flags: packet.FlagRST, Disc: DiscMD5},
		InjectAction{Kind: InjectDesync, Disc: DiscNone},
	)}}
}

// SpecImprovedPrefill is the §7.1 "Improved In-order Data Overlapping":
// junk insertion packets built from the MD5 and old-timestamp
// discrepancies, which no middlebox in the study dropped.
func SpecImprovedPrefill() Spec {
	return SpecInOrderPrefill(DiscMD5, DiscOldTimestamp)
}

// SpecResyncDesync is the Fig. 3 combined strategy: "TCB Creation +
// Resync/Desync". A fake-sequence SYN before the handshake defeats the
// old GFW model; a second SYN insertion after the handshake forces the
// evolved model into the resynchronization state, where the
// desynchronization packet strands it on a garbage sequence. (The
// post-handshake SYN triggers on first payload, not the SYN/ACK ACK:
// earlier and the GFW would just resynchronize from the SYN/ACK, §5.2.)
func SpecResyncDesync() Spec {
	return Spec{Rules: []Rule{
		onHandshake(InjectAction{Kind: InjectSYN, Disc: DiscTTL}),
		onFirstPayload(
			InjectAction{Kind: InjectSYN, Disc: DiscTTL},
			InjectAction{Kind: InjectDesync, Disc: DiscNone},
		),
	}}
}

// SpecTCBReversal is the Fig. 4 combined strategy: "TCB Teardown + TCB
// Reversal". A SYN/ACK insertion before the handshake makes the
// evolved GFW create a reversed TCB; RST insertions after the
// handshake tear down the old model's TCB. The SYN/ACK carries the TTL
// discrepancy so it cannot reach the server, whose LISTEN socket would
// answer with a RST and tear the reversed TCB right back down (§5.2).
func SpecTCBReversal() Spec {
	return Spec{Rules: []Rule{
		onHandshake(InjectAction{Kind: InjectSYNACK, Disc: DiscTTL}),
		onFirstPayload(
			TeardownAction{Flags: packet.FlagRST, Disc: DiscTTL},
			TeardownAction{Flags: packet.FlagRST, Disc: DiscMD5},
		),
	}}
}

// SpecWestChamber is the West Chamber Project baseline (§2, [25]):
// bare RST/FIN teardown packets with no server-side discrepancy. They
// tear the GFW's TCB down, but they also reach the server and kill the
// real connection — which is why the paper found the tool ineffective.
func SpecWestChamber() Spec {
	return Spec{Rules: []Rule{onFirstPayload(
		TeardownAction{Flags: packet.FlagRST, Disc: DiscNone},
		TeardownAction{Flags: packet.FlagFIN | packet.FlagACK, Disc: DiscNone},
	)}}
}

// SpecMD5TaggedRequest is the §8 arms-race counter-counter-measure: if
// the GFW hardens itself to ignore packets with unsolicited MD5
// options, tagging the *real* request with one makes it invisible to
// the censor while servers that never check the option process it
// normally.
func SpecMD5TaggedRequest() Spec {
	return Spec{Rules: []Rule{{
		Trigger: Trigger{Phase: PhasePayload},
		Actions: []Action{TamperAction{Kind: TamperMD5}},
	}}}
}

// --- legacy Factory constructors, now spec-backed ---

// NewTCBCreation returns "TCB creation with SYN" with the given
// insertion discrepancy (Table 1 rows: TTL, bad checksum).
func NewTCBCreation(d Discrepancy) Factory {
	return SpecTCBCreation(d).FactoryAs("tcb-creation-syn/" + d.String())
}

// NewOutOfOrderIPFrag returns the out-of-order IP-fragment strategy.
func NewOutOfOrderIPFrag() Factory {
	return SpecOutOfOrderIPFrag().FactoryAs("ooo-ipfrag")
}

// NewOutOfOrderTCPSeg returns the out-of-order TCP-segment strategy.
func NewOutOfOrderTCPSeg() Factory {
	return SpecOutOfOrderTCPSeg().FactoryAs("ooo-tcpseg")
}

// NewInOrderPrefill returns in-order data overlapping with the given
// insertion discrepancies (one junk copy per discrepancy).
func NewInOrderPrefill(discs ...Discrepancy) Factory {
	alias := "prefill"
	for _, d := range discs {
		alias += "/" + d.String()
	}
	return SpecInOrderPrefill(discs...).FactoryAs(alias)
}

// NewTCBTeardown returns TCB teardown with the given flags and
// discrepancy.
func NewTCBTeardown(flags uint8, d Discrepancy) Factory {
	return SpecTCBTeardown(flags, d).FactoryAs(
		"teardown-" + legacyFlagSlug(flags) + "/" + d.String())
}

// NewImprovedTeardown returns the §7.1 improved teardown.
func NewImprovedTeardown() Factory {
	return SpecImprovedTeardown().FactoryAs("improved-teardown")
}

// NewImprovedPrefill returns the §7.1 improved prefill.
func NewImprovedPrefill() Factory {
	return SpecImprovedPrefill().FactoryAs("improved-prefill")
}

// NewResyncDesync returns the Fig. 3 combined strategy.
func NewResyncDesync() Factory {
	return SpecResyncDesync().FactoryAs("creation-resync-desync")
}

// NewTCBReversal returns the Fig. 4 combined strategy.
func NewTCBReversal() Factory {
	return SpecTCBReversal().FactoryAs("teardown-reversal")
}

// NewWestChamber returns the West Chamber baseline.
func NewWestChamber() Factory {
	return SpecWestChamber().FactoryAs("west-chamber")
}

// NewMD5TaggedRequest returns the §8 MD5-tagged-request strategy.
func NewMD5TaggedRequest() Factory {
	return SpecMD5TaggedRequest().FactoryAs("md5-request")
}

// Registry lists every built-in strategy in paper-table order: the
// Table 1 existing strategies, then the Table 4 improved/new ones,
// then the §2/§8 extras.
func Registry() []Entry {
	entries := []Entry{
		{"none", Spec{}},
		{"tcb-creation-syn/ttl", SpecTCBCreation(DiscTTL)},
		{"tcb-creation-syn/bad-checksum", SpecTCBCreation(DiscBadChecksum)},
		{"ooo-ipfrag", SpecOutOfOrderIPFrag()},
		{"ooo-tcpseg", SpecOutOfOrderTCPSeg()},
	}
	for _, d := range []Discrepancy{DiscTTL, DiscBadAck, DiscBadChecksum, DiscNoFlag} {
		entries = append(entries, Entry{"prefill/" + d.String(), SpecInOrderPrefill(d)})
	}
	for _, flags := range []uint8{packet.FlagRST, packet.FlagRST | packet.FlagACK, packet.FlagFIN | packet.FlagACK} {
		for _, d := range []Discrepancy{DiscTTL, DiscBadChecksum} {
			entries = append(entries, Entry{
				"teardown-" + legacyFlagSlug(flags) + "/" + d.String(),
				SpecTCBTeardown(flags, d),
			})
		}
	}
	return append(entries,
		Entry{"improved-teardown", SpecImprovedTeardown()},
		Entry{"improved-prefill", SpecImprovedPrefill()},
		Entry{"creation-resync-desync", SpecResyncDesync()},
		Entry{"teardown-reversal", SpecTCBReversal()},
		Entry{"west-chamber", SpecWestChamber()},
		Entry{"md5-request", SpecMD5TaggedRequest()},
	)
}

// BuiltinFactories returns the full strategy suite keyed by legacy
// name: the Table 1 existing strategies and the Table 4 improved/new
// ones, every one compiled from its spec.
func BuiltinFactories() map[string]Factory {
	m := make(map[string]Factory)
	for _, e := range Registry() {
		m[e.Alias] = e.Spec.FactoryAs(e.Alias)
	}
	return m
}

// ResolveStrategy resolves a strategy key — a legacy alias, a canonical
// spec string, or any parseable spec text — to a Factory plus the
// canonical spec string that identifies it.
func ResolveStrategy(key string) (Factory, string, bool) {
	for _, e := range Registry() {
		if e.Alias == key {
			return e.Spec.FactoryAs(e.Alias), e.Spec.String(), true
		}
	}
	if spec, err := ParseSpec(key); err == nil {
		canon := spec.String()
		if alias, ok := AliasFor(canon); ok {
			return spec.FactoryAs(alias), canon, true
		}
		return spec.Factory(), canon, true
	}
	return nil, "", false
}

// AliasFor maps a canonical spec string back to its registered legacy
// name, if any.
func AliasFor(canon string) (string, bool) {
	for _, e := range Registry() {
		if e.Spec.String() == canon {
			return e.Alias, true
		}
	}
	return "", false
}

// FormatStrategyTable renders the name ↔ spec table that
// `cmd/tables -what strategies` prints.
func FormatStrategyTable() string {
	entries := Registry()
	width := 0
	for _, e := range entries {
		if len(e.Alias) > width {
			width = len(e.Alias)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  %s\n", width, "name", "spec")
	for _, e := range entries {
		fmt.Fprintf(&b, "%-*s  %s\n", width, e.Alias, e.Spec.String())
	}
	return b.String()
}
