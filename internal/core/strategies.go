package core

import (
	"intango/internal/packet"
)

// --- §3.2 existing strategies ---

// TCBCreation is "TCB creation with SYN": a fake-sequence SYN insertion
// packet before the real handshake, creating a false TCB on the (old)
// GFW so the real connection is out of its window.
type TCBCreation struct {
	Disc  Discrepancy
	fired bool
}

// NewTCBCreation returns the strategy with the given insertion
// discrepancy (Table 1 rows: TTL, bad checksum).
func NewTCBCreation(d Discrepancy) Factory {
	return func() Strategy { return &TCBCreation{Disc: d} }
}

// Name implements Strategy.
func (s *TCBCreation) Name() string { return "tcb-creation-syn/" + s.Disc.String() }

// Outbound implements Strategy.
func (s *TCBCreation) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	if pkt.TCP.FlagsOnly(packet.FlagSYN) && !s.fired {
		s.fired = true
		return []Emission{insertion(fakeSYN(f, s.Disc)), real(pkt)}
	}
	return []Emission{real(pkt)}
}

// OutOfOrderIPFrag is the out-of-order IP-fragment overlap strategy:
// the request is fragmented; a junk copy of the tail fragment is sent
// first (the GFW keeps the first copy of overlapping fragments), then
// the real tail, then the head to fill the gap. Retransmissions of the
// same segment are re-fragmented, so a lossy or fragment-dropping path
// never sees the request whole.
type OutOfOrderIPFrag struct {
	fired    bool
	firstSeq packet.Seq
}

// NewOutOfOrderIPFrag returns the strategy.
func NewOutOfOrderIPFrag() Factory { return func() Strategy { return &OutOfOrderIPFrag{} } }

// Name implements Strategy.
func (s *OutOfOrderIPFrag) Name() string { return "ooo-ipfrag" }

// Outbound implements Strategy.
func (s *OutOfOrderIPFrag) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	retransmit := s.fired && len(pkt.Payload) > 0 && pkt.TCP.Seq == s.firstSeq
	if !retransmit && (s.fired || len(pkt.Payload) < 16 || f.DataSent > 0) {
		return []Emission{real(pkt)}
	}
	s.fired = true
	s.firstSeq = pkt.TCP.Seq
	// Fragment so the first fragment carries only the TCP header: all
	// payload bytes (and hence the keyword, wherever it sits) land in
	// later fragments, which the decoys shadow.
	maxData := (pkt.TCP.HeaderLen() + 7) &^ 7
	frags, err := packet.Fragment(pkt, packet.IPv4HeaderLen+maxData)
	if err != nil || len(frags) < 2 {
		return []Emission{real(pkt)}
	}
	// §3.2 order: junk at offset X first (the GFW keeps the first copy
	// of overlapping fragments), then the real data at X, and finally
	// the gap-filling head. Overlap repeats would corrupt the server's
	// last-wins reassembly, so every piece goes out exactly once.
	var out []Emission
	for _, tail := range frags[1:] {
		decoy := tail.Clone()
		decoy.Payload = junk(len(decoy.Payload))
		decoy.Finalize()
		out = append(out, real(decoy))
	}
	for _, tail := range frags[1:] {
		out = append(out, real(tail))
	}
	return append(out, real(frags[0]))
}

// OutOfOrderTCPSeg is the TCP-segment variant: real tail segment first,
// junk copy second (the old GFW prefers the latter for out-of-order
// segments; the server keeps the first), then the head segment.
type OutOfOrderTCPSeg struct{ fired bool }

// NewOutOfOrderTCPSeg returns the strategy.
func NewOutOfOrderTCPSeg() Factory { return func() Strategy { return &OutOfOrderTCPSeg{} } }

// Name implements Strategy.
func (s *OutOfOrderTCPSeg) Name() string { return "ooo-tcpseg" }

// Outbound implements Strategy.
func (s *OutOfOrderTCPSeg) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	if s.fired || len(pkt.Payload) < 4 || f.DataSent > 0 {
		return []Emission{real(pkt)}
	}
	s.fired = true
	k := 4 // split right after the method token, before any keyword
	if k >= len(pkt.Payload) {
		k = len(pkt.Payload) / 2
	}
	seg := func(seq packet.Seq, payload []byte) *packet.Packet {
		p := packet.NewTCP(f.Tuple.SrcAddr, f.Tuple.SrcPort, f.Tuple.DstAddr, f.Tuple.DstPort,
			packet.FlagPSH|packet.FlagACK, seq, f.RcvNxt, payload)
		return p.Finalize()
	}
	tailSeq := pkt.TCP.Seq.Add(k)
	realTail := seg(tailSeq, pkt.Payload[k:])
	junkTail := seg(tailSeq, junk(len(pkt.Payload)-k))
	head := seg(pkt.TCP.Seq, pkt.Payload[:k])
	return []Emission{real(realTail), real(junkTail), real(head)}
}

// InOrderPrefill is the in-order data overlapping strategy: a junk
// insertion packet shadowing the real request fills the GFW's buffer
// first; both GFW and server accept the first in-order copy, but the
// server never accepts the junk thanks to the discrepancy.
type InOrderPrefill struct {
	Discs []Discrepancy
	fired bool
}

// NewInOrderPrefill returns the strategy with the given insertion
// discrepancies (one junk copy per discrepancy).
func NewInOrderPrefill(discs ...Discrepancy) Factory {
	return func() Strategy { return &InOrderPrefill{Discs: discs} }
}

// Name implements Strategy.
func (s *InOrderPrefill) Name() string {
	n := "prefill"
	for _, d := range s.Discs {
		n += "/" + d.String()
	}
	return n
}

// Outbound implements Strategy.
func (s *InOrderPrefill) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	if s.fired || len(pkt.Payload) == 0 || f.DataSent > 0 {
		return []Emission{real(pkt)}
	}
	s.fired = true
	var out []Emission
	for _, d := range s.Discs {
		out = append(out, insertion(prefillPacket(f, pkt, d)))
	}
	return append(out, real(pkt))
}

// TCBTeardown sends a RST, RST/ACK or FIN insertion packet after the
// handshake to deactivate the GFW's TCB before the request.
type TCBTeardown struct {
	Flags uint8
	Disc  Discrepancy
	fired bool
}

// NewTCBTeardown returns the strategy for the given teardown flags.
func NewTCBTeardown(flags uint8, d Discrepancy) Factory {
	return func() Strategy { return &TCBTeardown{Flags: flags, Disc: d} }
}

// Name implements Strategy.
func (s *TCBTeardown) Name() string {
	return "teardown-" + flagSlug(s.Flags) + "/" + s.Disc.String()
}

func flagSlug(flags uint8) string {
	switch flags {
	case packet.FlagRST:
		return "rst"
	case packet.FlagRST | packet.FlagACK:
		return "rstack"
	case packet.FlagFIN, packet.FlagFIN | packet.FlagACK:
		return "fin"
	default:
		return packet.FlagString(flags)
	}
}

// Outbound implements Strategy.
func (s *TCBTeardown) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	if s.fired || len(pkt.Payload) == 0 || f.DataSent > 0 {
		return []Emission{real(pkt)}
	}
	s.fired = true
	return []Emission{insertion(teardownPacket(f, s.Flags, s.Disc)), real(pkt)}
}

// --- §5/§7 new and improved strategies ---

// ImprovedTeardown is the §7.1 "Improved TCB Teardown": RST insertion
// packets (TTL- and MD5-based, per Table 5) followed by a
// desynchronization packet, so a GFW that answers the RST by entering
// the resynchronization state is steered onto a garbage sequence.
type ImprovedTeardown struct{ fired bool }

// NewImprovedTeardown returns the strategy.
func NewImprovedTeardown() Factory { return func() Strategy { return &ImprovedTeardown{} } }

// Name implements Strategy.
func (s *ImprovedTeardown) Name() string { return "improved-teardown" }

// Outbound implements Strategy.
func (s *ImprovedTeardown) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	if s.fired || len(pkt.Payload) == 0 || f.DataSent > 0 {
		return []Emission{real(pkt)}
	}
	s.fired = true
	return []Emission{
		insertion(teardownPacket(f, packet.FlagRST, DiscTTL)),
		insertion(teardownPacket(f, packet.FlagRST, DiscMD5)),
		insertion(desyncPacket(f)),
		real(pkt),
	}
}

// ImprovedPrefill is the §7.1 "Improved In-order Data Overlapping":
// junk insertion packets built from the MD5 and old-timestamp
// discrepancies, which no middlebox in the study dropped.
type ImprovedPrefill struct{ fired bool }

// NewImprovedPrefill returns the strategy.
func NewImprovedPrefill() Factory { return func() Strategy { return &ImprovedPrefill{} } }

// Name implements Strategy.
func (s *ImprovedPrefill) Name() string { return "improved-prefill" }

// Outbound implements Strategy.
func (s *ImprovedPrefill) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	if s.fired || len(pkt.Payload) == 0 || f.DataSent > 0 {
		return []Emission{real(pkt)}
	}
	s.fired = true
	return []Emission{
		insertion(prefillPacket(f, pkt, DiscMD5)),
		insertion(prefillPacket(f, pkt, DiscOldTimestamp)),
		real(pkt),
	}
}

// ResyncDesync is the Fig. 3 combined strategy: "TCB Creation +
// Resync/Desync". A fake-sequence SYN before the handshake defeats the
// old GFW model; a second SYN insertion after the handshake forces the
// evolved model into the resynchronization state, where the
// desynchronization packet strands it on a garbage sequence.
type ResyncDesync struct {
	synFired, dataFired bool
}

// NewResyncDesync returns the strategy.
func NewResyncDesync() Factory { return func() Strategy { return &ResyncDesync{} } }

// Name implements Strategy.
func (s *ResyncDesync) Name() string { return "creation-resync-desync" }

// Outbound implements Strategy.
func (s *ResyncDesync) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	if pkt.TCP.FlagsOnly(packet.FlagSYN) && !s.synFired {
		s.synFired = true
		return []Emission{insertion(fakeSYN(f, DiscTTL)), real(pkt)}
	}
	if !s.dataFired && len(pkt.Payload) > 0 && f.DataSent == 0 {
		s.dataFired = true
		// The post-handshake SYN insertion cannot precede the SYN/ACK:
		// the GFW would just resynchronize from the SYN/ACK's ack
		// (§5.2). Triggering on the first data packet guarantees it.
		return []Emission{
			insertion(fakeSYN(f, DiscTTL)),
			insertion(desyncPacket(f)),
			real(pkt),
		}
	}
	return []Emission{real(pkt)}
}

// TCBReversal is the Fig. 4 combined strategy: "TCB Teardown + TCB
// Reversal". A SYN/ACK insertion before the handshake makes the
// evolved GFW create a reversed TCB (it watches the wrong direction);
// a RST insertion after the handshake tears down the old model's TCB.
type TCBReversal struct {
	synFired, dataFired bool
}

// NewTCBReversal returns the strategy.
func NewTCBReversal() Factory { return func() Strategy { return &TCBReversal{} } }

// Name implements Strategy.
func (s *TCBReversal) Name() string { return "teardown-reversal" }

// Outbound implements Strategy.
func (s *TCBReversal) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	if pkt.TCP.FlagsOnly(packet.FlagSYN) && !s.synFired {
		s.synFired = true
		// Crafted with care (§5.2): the TTL discrepancy keeps it from
		// reaching the server, whose LISTEN socket would answer with a
		// RST and tear the reversed TCB right back down.
		return []Emission{insertion(fakeSYNACK(f, DiscTTL)), real(pkt)}
	}
	if !s.dataFired && len(pkt.Payload) > 0 && f.DataSent == 0 {
		s.dataFired = true
		return []Emission{
			insertion(teardownPacket(f, packet.FlagRST, DiscTTL)),
			insertion(teardownPacket(f, packet.FlagRST, DiscMD5)),
			real(pkt),
		}
	}
	return []Emission{real(pkt)}
}

// WestChamber is the West Chamber Project baseline (§2, [25]): bare
// RST/FIN teardown packets with no server-side discrepancy. They tear
// the GFW's TCB down, but they also reach the server and kill the real
// connection — which is why the paper found the tool ineffective.
type WestChamber struct{ fired bool }

// NewWestChamber returns the baseline.
func NewWestChamber() Factory { return func() Strategy { return &WestChamber{} } }

// Name implements Strategy.
func (s *WestChamber) Name() string { return "west-chamber" }

// Outbound implements Strategy.
func (s *WestChamber) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	if s.fired || len(pkt.Payload) == 0 || f.DataSent > 0 {
		return []Emission{real(pkt)}
	}
	s.fired = true
	rst := packet.NewTCP(f.Tuple.SrcAddr, f.Tuple.SrcPort, f.Tuple.DstAddr, f.Tuple.DstPort,
		packet.FlagRST, f.SndNxt, 0, nil)
	fin := packet.NewTCP(f.Tuple.SrcAddr, f.Tuple.SrcPort, f.Tuple.DstAddr, f.Tuple.DstPort,
		packet.FlagFIN|packet.FlagACK, f.SndNxt, f.RcvNxt, nil)
	return []Emission{insertion(rst.Finalize()), insertion(fin.Finalize()), real(pkt)}
}

// MD5TaggedRequest is the §8 arms-race counter-counter-measure: if the
// GFW hardens itself to ignore packets with unsolicited MD5 options,
// tagging the *real* request with one makes it invisible to the censor
// while servers that never check the option (e.g. Linux 2.4.37, or
// kernels built without TCP-MD5) process it normally.
type MD5TaggedRequest struct{}

// NewMD5TaggedRequest returns the strategy.
func NewMD5TaggedRequest() Factory { return func() Strategy { return &MD5TaggedRequest{} } }

// Name implements Strategy.
func (s *MD5TaggedRequest) Name() string { return "md5-request" }

// Outbound implements Strategy.
func (s *MD5TaggedRequest) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	if len(pkt.Payload) == 0 {
		return []Emission{real(pkt)}
	}
	tagged := pkt.Clone()
	var digest [16]byte
	f.Env.Rand.Read(digest[:])
	tagged.TCP.Options = append(tagged.TCP.Options, packet.MD5Option(digest))
	tagged.Finalize()
	return []Emission{real(tagged)}
}

// BuiltinFactories returns the full strategy suite keyed by name: the
// Table 1 existing strategies and the Table 4 improved/new ones.
func BuiltinFactories() map[string]Factory {
	m := map[string]Factory{
		"none":       func() Strategy { return Passthrough{} },
		"ooo-ipfrag": NewOutOfOrderIPFrag(),
		"ooo-tcpseg": NewOutOfOrderTCPSeg(),

		"improved-teardown":      NewImprovedTeardown(),
		"improved-prefill":       NewImprovedPrefill(),
		"creation-resync-desync": NewResyncDesync(),
		"teardown-reversal":      NewTCBReversal(),

		"west-chamber": NewWestChamber(),
		"md5-request":  NewMD5TaggedRequest(),
	}
	for _, d := range []Discrepancy{DiscTTL, DiscBadChecksum} {
		m["tcb-creation-syn/"+d.String()] = NewTCBCreation(d)
		m["teardown-rst/"+d.String()] = NewTCBTeardown(packet.FlagRST, d)
		m["teardown-rstack/"+d.String()] = NewTCBTeardown(packet.FlagRST|packet.FlagACK, d)
		m["teardown-fin/"+d.String()] = NewTCBTeardown(packet.FlagFIN|packet.FlagACK, d)
	}
	for _, d := range []Discrepancy{DiscTTL, DiscBadAck, DiscBadChecksum, DiscNoFlag} {
		m["prefill/"+d.String()] = NewInOrderPrefill(d)
	}
	return m
}
