package core

import (
	"time"

	"intango/internal/device"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// Engine interposes between a client TCP stack and the network — the
// position INTANG occupies with netfilter-queue (§6). It tracks flows,
// instantiates a per-connection Strategy, applies it to outbound
// packets, and re-sends insertion packets to survive loss.
//
// The engine emits through the device boundary: in a simulated trial
// Dev is a NetemEnd wrapping the client end of the substrate, and in
// the live proxy it is whatever packet carrier the daemon runs on. The
// engine itself stays the client-side netem.Endpoint in simulation, so
// inbound delivery is unchanged.
type Engine struct {
	Sim *netem.Simulator
	// Dev is the packet device the engine emits onto.
	Dev device.Device
	// Stack, when set, receives inbound packets (the in-simulation
	// client). A daemon-mode engine leaves it nil and sets Upstream.
	Stack *tcpstack.Stack
	Env   Env

	// Upstream, when set and Stack is nil, receives every inbound
	// packet that passes OnInbound — the live proxy's path back to its
	// real clients. The packet still belongs to the substrate for the
	// duration of the call; implementations copy what they keep.
	Upstream func(pkt *packet.Packet)

	// NewStrategy picks the strategy for a new flow. A nil return (or
	// nil field) passes traffic through untouched.
	NewStrategy func(tuple packet.FourTuple) Strategy

	// OnInbound, when set, observes every inbound packet before the
	// stack (INTANG's DNS thread and hop-count prober hook in here).
	// Returning false consumes the packet.
	OnInbound func(pkt *packet.Packet) bool
	// OnOutbound, when set, observes every packet leaving the stack
	// before strategies run. Returning false consumes the packet
	// (INTANG's DNS forwarder redirects UDP queries this way).
	OnOutbound func(pkt *packet.Packet) bool
	// OnOutboundRaw, when set, observes every packet actually emitted.
	OnOutboundRaw func(em Emission)

	// FirstSendAt/LastSendAt bracket, on the virtual clock, every
	// packet the engine emitted — including delayed insertion waves —
	// so the experiment runner can span the strategy-application
	// stage. Both stay zero until the first send.
	FirstSendAt time.Duration
	LastSendAt  time.Duration
	sentAny     bool

	flows map[packet.FourTuple]*flowState

	// dev is the inline adapter storage NewEngine binds over a netem
	// substrate — a value field, so the Device boundary costs no extra
	// heap object per trial.
	dev device.NetemEnd
	// pool and stamper cache the device's capabilities so the per-
	// packet path does no interface re-assertion.
	pool    *packet.Pool
	stamper device.LineageStamper
}

type flowState struct {
	flow  Flow
	strat Strategy
}

// NewEngine wires an engine between stack and the client end of n.
// A nil stack builds a daemon-mode engine: outbound packets enter
// through Outbound, inbound packets leave through Upstream.
func NewEngine(sim *netem.Simulator, n netem.Net, stack *tcpstack.Stack, env Env) *Engine {
	e := &Engine{
		Sim: sim, Stack: stack, Env: env,
		flows: make(map[packet.FourTuple]*flowState),
	}
	e.dev = device.NetemEnd{Net: n}
	e.Dev = &e.dev
	e.bindDev()
	if stack != nil {
		stack.Send = e.Outbound
	}
	n.SetClient(e)
	return e
}

// NewEngineOn wires an engine directly onto a packet device — the
// daemon entry point, where there is no netem substrate to claim an
// endpoint on. The caller pumps client traffic into Outbound and
// receives the return path via Upstream (or a Stack, if it sets one).
func NewEngineOn(sim *netem.Simulator, dev device.Device, env Env) *Engine {
	e := &Engine{
		Sim: sim, Dev: dev, Env: env,
		flows: make(map[packet.FourTuple]*flowState),
	}
	e.bindDev()
	return e
}

// bindDev caches the device's pool and lineage capabilities.
func (e *Engine) bindDev() {
	e.pool = device.PoolOf(e.Dev)
	e.stamper, _ = e.Dev.(device.LineageStamper)
}

// StrategyFor returns the live strategy instance for a flow, if any.
func (e *Engine) StrategyFor(tuple packet.FourTuple) (Strategy, bool) {
	fs, ok := e.flows[tuple]
	if !ok || fs.strat == nil {
		return nil, false
	}
	return fs.strat, true
}

// Outbound intercepts a packet leaving the client stack.
func (e *Engine) Outbound(pkt *packet.Packet) {
	if e.OnOutbound != nil && !e.OnOutbound(pkt) {
		return
	}
	if pkt.TCP == nil {
		e.send(Emission{Pkt: pkt})
		return
	}
	// Assign the wire ID now, before strategies run, so insertion
	// packets crafted from this one can record it as lineage parent.
	if e.stamper != nil {
		e.stamper.StampLineage(pkt)
	}
	tuple := pkt.Tuple()
	fs := e.flows[tuple]
	if fs == nil {
		fs = &flowState{flow: Flow{Tuple: tuple, Env: &e.Env}}
		if e.NewStrategy != nil {
			fs.strat = e.NewStrategy(tuple)
		}
		e.flows[tuple] = fs
	}
	f := &fs.flow
	tcp := pkt.TCP

	// Track the flow state strategies craft against.
	if tcp.FlagsOnly(packet.FlagSYN) {
		f.ISS = tcp.Seq
		f.SndNxt = tcp.Seq
	}
	if tcp.HasFlag(packet.FlagACK) {
		if tcp.Ack.After(f.RcvNxt) {
			f.RcvNxt = tcp.Ack
		}
		if !f.HandshakeDone && !tcp.HasFlag(packet.FlagSYN) {
			f.HandshakeDone = true
		}
	}

	var emissions []Emission
	if fs.strat != nil {
		emissions = fs.strat.Outbound(f, pkt)
	} else {
		emissions = []Emission{real(pkt)}
	}

	if end := pkt.EndSeq(); end.After(f.SndNxt) {
		f.SndNxt = end
	}
	f.DataSent += len(pkt.Payload)

	e.emit(emissions)
}

// emit sends a volley. Insertion packets are sent in Env.Repeat waves
// (20 ms apart by default, §3.4) to survive loss and middlebox drops;
// the volley's real packets are held until the final wave, so the
// insertions get every chance to take effect on the GFW before the
// protected traffic passes it. Volleys with no insertions go out
// immediately.
func (e *Engine) emit(emissions []Emission) {
	repeat := e.Env.Repeat
	if repeat < 1 {
		repeat = 1
	}
	gap := e.Env.RepeatGap
	if gap == 0 {
		gap = 20 * time.Millisecond
	}
	hasInsertion := false
	for _, em := range emissions {
		if em.Insertion {
			hasInsertion = true
			break
		}
	}
	if !hasInsertion {
		for _, em := range emissions {
			if d := em.Delay; d > 0 {
				em := em
				em.Delay = 0
				e.Sim.At(d, func() { e.send(em) })
				continue
			}
			e.send(em)
		}
		return
	}
	finalWave := time.Duration(repeat-1) * gap
	for wave := 0; wave < repeat; wave++ {
		delay := time.Duration(wave) * gap
		last := wave == repeat-1
		for _, em := range emissions {
			switch {
			case em.Insertion:
				// Each wave sends its own copy; pooled clones let the
				// path recycle them at end-of-life.
				clone := e.pool.Clone(em.Pkt)
				e.Sim.At(delay+em.Delay, func() { e.send(Emission{Pkt: clone, Insertion: true}) })
			case last:
				p := em.Pkt
				e.Sim.At(finalWave+em.Delay, func() { e.send(Emission{Pkt: p}) })
			}
		}
	}
}

func (e *Engine) send(em Emission) {
	now := e.Sim.Now()
	if !e.sentAny {
		e.sentAny = true
		e.FirstSendAt = now
	}
	e.LastSendAt = now
	if e.OnOutboundRaw != nil {
		e.OnOutboundRaw(em)
	}
	_ = e.Dev.WritePacket(em.Pkt)
}

// Deliver implements netem.Endpoint for the client end.
func (e *Engine) Deliver(pkt *packet.Packet) {
	if e.OnInbound != nil && !e.OnInbound(pkt) {
		return
	}
	if pkt.TCP != nil && pkt.TCP.HasFlag(packet.FlagSYN) && pkt.TCP.HasFlag(packet.FlagACK) {
		if fs, ok := e.flows[pkt.Tuple().Reverse()]; ok {
			fs.flow.ServerISN = pkt.TCP.Seq
		}
	}
	switch {
	case e.Stack != nil:
		e.Stack.Deliver(pkt)
	case e.Upstream != nil:
		e.Upstream(pkt)
	}
}

// DropFlow forgets the per-flow state for tuple (both orientations) —
// the daemon's idle-flow expiry calls it so a long-running engine's
// flow table cannot grow without bound.
func (e *Engine) DropFlow(tuple packet.FourTuple) {
	delete(e.flows, tuple)
	delete(e.flows, tuple.Reverse())
}

// Flows returns the number of tracked flows.
func (e *Engine) Flows() int { return len(e.flows) }

// Reset drops all flow state (between trials).
func (e *Engine) Reset() {
	e.flows = make(map[packet.FourTuple]*flowState)
}
