package core

import (
	"fmt"
	"strconv"
	"time"

	"intango/internal/packet"
)

// This file is the imperative half of the strategy layer: primitive
// actions transform an emission *plan* — an ordered list of pieces that
// starts as just the intercepted packet — and a Compiled executor runs
// a Spec's rules against each outbound packet. All per-connection
// trigger state lives on the Flow (execState), never on the strategy
// value, so one compiled instance can serve any number of flows.

// InjectKind selects what kind of crafted insertion packet an
// InjectAction adds to the plan.
type InjectKind int

const (
	// InjectSYN is the fake-sequence SYN of TCB creation / resync (§3.2,
	// §5.1).
	InjectSYN InjectKind = iota
	// InjectSYNACK is the TCB Reversal SYN/ACK (§5.2).
	InjectSYNACK
	// InjectDesync is the §5.1 desynchronization packet: one junk byte
	// far out of window.
	InjectDesync
	// InjectPrefill is the in-order junk copy shadowing the real
	// segment (§3.2 in-order data overlapping).
	InjectPrefill
)

// String names the kind as it appears in spec text.
func (k InjectKind) String() string {
	switch k {
	case InjectSYN:
		return "syn"
	case InjectSYNACK:
		return "synack"
	case InjectDesync:
		return "desync"
	case InjectPrefill:
		return "prefill"
	default:
		return "inject(?)"
	}
}

func parseInjectKind(s string) (InjectKind, bool) {
	for _, k := range []InjectKind{InjectSYN, InjectSYNACK, InjectDesync, InjectPrefill} {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// flagsToken renders teardown/tamper flags in spec vocabulary.
func flagsToken(flags uint8) string {
	switch flags {
	case packet.FlagRST:
		return "rst"
	case packet.FlagRST | packet.FlagACK:
		return "rstack"
	case packet.FlagFIN:
		return "fin"
	case packet.FlagFIN | packet.FlagACK:
		return "finack"
	}
	return packet.FlagString(flags)
}

func parseFlagsToken(s string) (uint8, bool) {
	switch s {
	case "rst":
		return packet.FlagRST, true
	case "rstack":
		return packet.FlagRST | packet.FlagACK, true
	case "fin":
		return packet.FlagFIN, true
	case "finack":
		return packet.FlagFIN | packet.FlagACK, true
	}
	return 0, false
}

// --- the emission plan actions transform ---

type pieceRole int

const (
	roleInsertion pieceRole = iota
	roleReal                // the intercepted packet, not yet fragmented
	roleHead                // first fragment/segment of the real packet
	roleTail                // later fragment/segment of the real packet
	roleDecoy               // junk copy of a fragment, sent as real traffic
)

type piece struct {
	em   Emission
	role pieceRole
}

// plan is the mutable emission sequence a rule's actions build up.
type plan struct {
	f      *Flow
	src    *packet.Packet // the intercepted packet, untouched
	pieces []piece
	// crafter identifies the canonical spec text of the action currently
	// applying, interned at compile time; every packet an action adds
	// to the plan is stamped with it so traces can name the exact spec
	// piece that crafted each wire packet.
	crafter packet.CrafterRef
}

func newPlan(f *Flow, pkt *packet.Packet) *plan {
	return &plan{f: f, src: pkt, pieces: []piece{{em: real(pkt), role: roleReal}}}
}

func (pl *plan) emissions() []Emission {
	out := make([]Emission, len(pl.pieces))
	for i, pc := range pl.pieces {
		out[i] = pc.em
	}
	return out
}

// addInsertion appends a crafted packet after any existing insertions
// but before the plan's traffic, preserving the order insertions were
// requested in (the wire order the monolithic strategies used).
func (pl *plan) addInsertion(p *packet.Packet) {
	p.Lin.Origin = packet.OriginStrategy
	p.Lin.Parent = pl.src.Lin.ID
	p.Lin.Crafter = pl.crafter
	at := 0
	for at < len(pl.pieces) && pl.pieces[at].role == roleInsertion {
		at++
	}
	pc := piece{em: insertion(p), role: roleInsertion}
	pl.pieces = append(pl.pieces, piece{})
	copy(pl.pieces[at+1:], pl.pieces[at:])
	pl.pieces[at] = pc
}

// --- primitive actions ---

// Action is one primitive step of a rule's pipeline. The set is closed
// (actions carry unexported methods); compose strategies by combining
// these values, not by implementing new ones.
type Action interface {
	// apply transforms the emission plan.
	apply(pl *plan)
	// encode renders the canonical spec text.
	encode() string
}

// InjectAction adds a crafted insertion packet to the plan, built by
// the same helpers the paper's strategies share and stamped with Disc
// via Env.Apply.
type InjectAction struct {
	Kind InjectKind
	Disc Discrepancy
}

func (a InjectAction) apply(pl *plan) {
	f := pl.f
	var p *packet.Packet
	switch a.Kind {
	case InjectSYN:
		p = fakeSYN(f, a.Disc)
	case InjectSYNACK:
		p = fakeSYNACK(f, a.Disc)
	case InjectDesync:
		// The desync packet needs no discrepancy: its far-out-of-window
		// sequence already makes the server ignore it (§5.1). Honour an
		// explicit one anyway so mutated specs stay expressible.
		p = desyncPacket(f)
		if a.Disc != DiscNone {
			p = f.Env.Apply(p, a.Disc)
		}
	case InjectPrefill:
		p = prefillPacket(f, pl.src, a.Disc)
	default:
		return
	}
	pl.addInsertion(p)
}

func (a InjectAction) encode() string {
	s := "inject(" + a.Kind.String()
	if a.Disc != DiscNone {
		s += ",disc=" + a.Disc.String()
	}
	return s + ")"
}

// TeardownAction adds a RST/RST-ACK/FIN insertion packet carrying the
// connection's live sequence numbers (§3.2 TCB teardown).
type TeardownAction struct {
	Flags uint8
	Disc  Discrepancy
}

func (a TeardownAction) apply(pl *plan) {
	pl.addInsertion(teardownPacket(pl.f, a.Flags, a.Disc))
}

func (a TeardownAction) encode() string {
	s := "teardown(flags=" + flagsToken(a.Flags)
	if a.Disc != DiscNone {
		s += ",disc=" + a.Disc.String()
	}
	return s + ")"
}

// FragLayer selects the granularity FragmentAction splits at.
type FragLayer int

const (
	// LayerIP fragments at the IP layer so the first fragment carries
	// only the TCP header and every payload byte lands in later
	// fragments.
	LayerIP FragLayer = iota
	// LayerTCP re-segments the payload at byte offset At into separate
	// TCP packets.
	LayerTCP
)

// FragmentAction splits the plan's real packet into head + tail pieces.
// It is a no-op if the packet is already fragmented or has no payload
// to split.
type FragmentAction struct {
	Layer FragLayer
	// At is the TCP split offset for LayerTCP. For LayerIP it sets the
	// fragment data size in bytes (rounded down to the 8-byte fragment
	// grid); zero keeps the default header-sized fragments, whose head
	// carries no payload at all. Larger chunks trade that property for
	// fewer fragments — what a sustained per-segment strategy needs to
	// survive a finite router queue.
	At int
}

func (a FragmentAction) apply(pl *plan) {
	for i, pc := range pl.pieces {
		if pc.role != roleReal {
			continue
		}
		pkt := pc.em.Pkt
		var frags []*packet.Packet
		switch a.Layer {
		case LayerIP:
			// Fragment so the first fragment carries only the TCP
			// header: all payload bytes (and hence the keyword, wherever
			// it sits) land in later fragments. An explicit At overrides
			// the chunk size (never below the header grid).
			maxData := (pkt.TCP.HeaderLen() + 7) &^ 7
			if d := a.At &^ 7; d > maxData {
				maxData = d
			}
			fr, err := packet.Fragment(pkt, packet.IPv4HeaderLen+maxData)
			if err != nil || len(fr) < 2 {
				return
			}
			frags = fr
		case LayerTCP:
			if len(pkt.Payload) == 0 {
				return
			}
			k := a.At
			if k >= len(pkt.Payload) {
				k = len(pkt.Payload) / 2
			}
			if k <= 0 {
				return
			}
			f := pl.f
			seg := func(seq packet.Seq, payload []byte) *packet.Packet {
				p := packet.NewTCP(f.Tuple.SrcAddr, f.Tuple.SrcPort, f.Tuple.DstAddr, f.Tuple.DstPort,
					packet.FlagPSH|packet.FlagACK, seq, f.RcvNxt, payload)
				return p.Finalize()
			}
			frags = []*packet.Packet{
				seg(pkt.TCP.Seq, pkt.Payload[:k]),
				seg(pkt.TCP.Seq.Add(k), pkt.Payload[k:]),
			}
		}
		for _, fr := range frags {
			fr.Lin = packet.Lineage{Origin: packet.OriginStrategy, Parent: pl.src.Lin.ID, Crafter: pl.crafter}
		}
		repl := make([]piece, 0, len(pl.pieces)+len(frags)-1)
		repl = append(repl, pl.pieces[:i]...)
		repl = append(repl, piece{em: real(frags[0]), role: roleHead})
		for _, tail := range frags[1:] {
			repl = append(repl, piece{em: real(tail), role: roleTail})
		}
		pl.pieces = append(repl, pl.pieces[i+1:]...)
		return
	}
}

func (a FragmentAction) encode() string {
	if a.Layer == LayerTCP {
		at := a.At
		if at == 0 {
			at = 4
		}
		return "fragment(tcp,at=" + strconv.Itoa(at) + ")"
	}
	if a.At > 0 {
		return "fragment(ip,at=" + strconv.Itoa(a.At) + ")"
	}
	return "fragment(ip)"
}

// ReorderAction moves the head piece after the tails: the §3.2
// out-of-order trick of sending later data first and filling the gap
// last. A no-op until FragmentAction has produced a head.
type ReorderAction struct{}

func (ReorderAction) apply(pl *plan) {
	head := -1
	for i, pc := range pl.pieces {
		if pc.role == roleHead {
			head = i
			break
		}
	}
	if head < 0 {
		return
	}
	hp := pl.pieces[head]
	rest := append(pl.pieces[:head], pl.pieces[head+1:]...)
	pl.pieces = append(rest, hp)
}

func (ReorderAction) encode() string { return "reorder(head-last)" }

// DuplicateFill selects what payload a duplicated piece carries.
type DuplicateFill int

const (
	// FillJunk replaces the copy's payload with keyword-free filler.
	FillJunk DuplicateFill = iota
	// FillCopy keeps the payload byte-for-byte.
	FillCopy
)

func (f DuplicateFill) String() string {
	if f == FillCopy {
		return "copy"
	}
	return "junk"
}

// DuplicatePos selects where the copies land relative to the originals.
type DuplicatePos int

const (
	// PosBefore puts the block of copies before the first original: the
	// GFW keeps the first copy of overlapping IP fragments (§3.2).
	PosBefore DuplicatePos = iota
	// PosAfter puts it after the last original: the old GFW prefers the
	// later copy of out-of-order TCP segments while the server keeps
	// the first.
	PosAfter
)

func (p DuplicatePos) String() string {
	if p == PosAfter {
		return "after"
	}
	return "before"
}

// DuplicateAction clones every tail piece into a decoy block. Decoys go
// out as real traffic — the overlap itself, not a discrepancy, is what
// desynchronizes the GFW's reassembly from the server's.
type DuplicateAction struct {
	Fill DuplicateFill
	Pos  DuplicatePos
}

func (a DuplicateAction) apply(pl *plan) {
	first, last := -1, -1
	var decoys []piece
	for i, pc := range pl.pieces {
		if pc.role != roleTail {
			continue
		}
		if first < 0 {
			first = i
		}
		last = i
		copyPkt := pc.em.Pkt.Clone()
		if a.Fill == FillJunk {
			copyPkt.Payload = junk(len(copyPkt.Payload))
		}
		copyPkt.Finalize()
		copyPkt.Lin.Origin = packet.OriginStrategy
		copyPkt.Lin.Crafter = pl.crafter
		decoys = append(decoys, piece{em: real(copyPkt), role: roleDecoy})
	}
	if first < 0 {
		return
	}
	at := first
	if a.Pos == PosAfter {
		at = last + 1
	}
	repl := make([]piece, 0, len(pl.pieces)+len(decoys))
	repl = append(repl, pl.pieces[:at]...)
	repl = append(repl, decoys...)
	pl.pieces = append(repl, pl.pieces[at:]...)
}

func (a DuplicateAction) encode() string {
	return "duplicate(tails,fill=" + a.Fill.String() + ",pos=" + a.Pos.String() + ")"
}

// TamperKind selects which field TamperAction rewrites.
type TamperKind int

const (
	// TamperMD5 appends an unsolicited RFC 2385 MD5 option to the real
	// packet (§8: invisible to a censor that learned to skip MD5-tagged
	// packets, harmless to servers that never check the option).
	TamperMD5 TamperKind = iota
	// TamperTTL rewrites the IP TTL.
	TamperTTL
	// TamperFlags rewrites the TCP flags.
	TamperFlags
	// TamperSeq shifts the sequence number by Delta.
	TamperSeq
)

// TamperAction rewrites the plan's (unfragmented) real packet in place
// — the only primitive that modifies protected traffic rather than
// surrounding it.
type TamperAction struct {
	Kind  TamperKind
	TTL   uint8
	Flags uint8
	Delta int
}

func (a TamperAction) apply(pl *plan) {
	for i, pc := range pl.pieces {
		if pc.role != roleReal {
			continue
		}
		p := pc.em.Pkt.Clone()
		switch a.Kind {
		case TamperMD5:
			var digest [16]byte
			pl.f.Env.Rand.Read(digest[:])
			p.TCP.Options = append(p.TCP.Options, packet.MD5Option(digest))
		case TamperTTL:
			p.IP.TTL = a.TTL
		case TamperFlags:
			p.TCP.Flags = a.Flags
		case TamperSeq:
			p.TCP.Seq = p.TCP.Seq.Add(a.Delta)
		}
		p.Finalize()
		p.Lin.Origin = packet.OriginStrategy
		p.Lin.Crafter = pl.crafter
		pl.pieces[i].em = real(p)
		return
	}
}

func (a TamperAction) encode() string {
	switch a.Kind {
	case TamperTTL:
		return "tamper(ttl=" + strconv.Itoa(int(a.TTL)) + ")"
	case TamperFlags:
		return "tamper(flags=" + flagsToken(a.Flags) + ")"
	case TamperSeq:
		return "tamper(seq=" + fmt.Sprintf("%+d", a.Delta) + ")"
	default:
		return "tamper(md5)"
	}
}

// DelayAction postpones every piece currently in the plan by Ms
// milliseconds of virtual time.
type DelayAction struct {
	Ms int
}

func (a DelayAction) apply(pl *plan) {
	d := time.Duration(a.Ms) * time.Millisecond
	for i := range pl.pieces {
		pl.pieces[i].em.Delay += d
	}
}

func (a DelayAction) encode() string { return "delay(ms=" + strconv.Itoa(a.Ms) + ")" }

// --- the compiled executor ---

// execState is the per-flow trigger state of a compiled strategy, one
// slot per rule. It hangs off the Flow — which the Engine creates per
// connection — so a strategy instance shared across flows (every
// Factory returned by Spec.Factory hands out a single instance) can
// never leak one-shot state between connections.
type execState struct {
	fired    []bool
	firstSeq []packet.Seq
	haveSeq  []bool
}

func (f *Flow) execStateFor(rules int) *execState {
	if f.exec == nil || len(f.exec.fired) != rules {
		f.exec = &execState{
			fired:    make([]bool, rules),
			firstSeq: make([]packet.Seq, rules),
			haveSeq:  make([]bool, rules),
		}
	}
	return f.exec
}

// Compiled executes a Spec against the Strategy interface. It is
// immutable and goroutine-safe; all mutable state lives on the Flow.
type Compiled struct {
	spec  Spec
	alias string
	// labels[i][j] is Rules[i].Actions[j].encode(), interned at compile
	// time so the hot path can stamp packet lineage with one integer
	// store, re-encoding nothing.
	labels [][]packet.CrafterRef
}

// Name implements Strategy: the legacy alias when one was registered,
// otherwise the canonical spec text.
func (c *Compiled) Name() string {
	if c.alias != "" {
		return c.alias
	}
	return c.spec.String()
}

// Spec returns the compiled spec.
func (c *Compiled) Spec() Spec { return c.spec }

// Canonical returns the canonical spec encoding regardless of alias.
func (c *Compiled) Canonical() string { return c.spec.String() }

// Outbound implements Strategy: run every rule whose trigger fires and
// return the transformed plan.
func (c *Compiled) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	st := f.execStateFor(len(c.spec.Rules))
	pl := (*plan)(nil)
	for i := range c.spec.Rules {
		r := &c.spec.Rules[i]
		if !triggerFires(r.Trigger, st, i, f, pkt) {
			continue
		}
		if pl == nil {
			pl = newPlan(f, pkt)
		}
		for j, act := range r.Actions {
			pl.crafter = c.labels[i][j]
			act.apply(pl)
		}
		pl.crafter = 0
	}
	if pl == nil {
		return []Emission{real(pkt)}
	}
	return pl.emissions()
}

// triggerFires decides whether rule i acts on pkt, updating the flow's
// one-shot state. Min suppresses a short packet without consuming the
// one-shot; Rexmit re-fires on retransmissions of the recorded first
// segment.
func triggerFires(tr Trigger, st *execState, i int, f *Flow, pkt *packet.Packet) bool {
	switch tr.Phase {
	case PhaseSegment:
		return true
	case PhasePayload:
		return len(pkt.Payload) > 0 && len(pkt.Payload) >= tr.Min
	case PhaseHandshake:
		if st.fired[i] || !pkt.TCP.FlagsOnly(packet.FlagSYN) {
			return false
		}
		st.fired[i] = true
		return true
	case PhaseFirstPayload:
		if tr.Rexmit && st.fired[i] && len(pkt.Payload) > 0 &&
			st.haveSeq[i] && pkt.TCP.Seq == st.firstSeq[i] {
			return true
		}
		if st.fired[i] || len(pkt.Payload) == 0 || f.DataSent > 0 {
			return false
		}
		if tr.Min > 0 && len(pkt.Payload) < tr.Min {
			return false
		}
		st.fired[i] = true
		st.firstSeq[i] = pkt.TCP.Seq
		st.haveSeq[i] = true
		return true
	}
	return false
}

// Factory returns a Factory handing out one shared compiled executor;
// per-flow state lives on the Flow, so sharing is safe.
func (s Spec) Factory() Factory { return s.FactoryAs("") }

// FactoryAs is Factory with a legacy display alias for Name().
func (s Spec) FactoryAs(alias string) Factory {
	labels := make([][]packet.CrafterRef, len(s.Rules))
	for i := range s.Rules {
		labels[i] = make([]packet.CrafterRef, len(s.Rules[i].Actions))
		for j, act := range s.Rules[i].Actions {
			labels[i][j] = packet.InternCrafter(act.encode())
		}
	}
	c := &Compiled{spec: s, alias: alias, labels: labels}
	return func() Strategy { return c }
}

// CompileSpec parses and compiles a spec in one step.
func CompileSpec(input string) (Factory, error) {
	return CompileSpecAs("", input)
}

// CompileSpecAs is CompileSpec with a display alias.
func CompileSpecAs(alias, input string) (Factory, error) {
	spec, err := ParseSpec(input)
	if err != nil {
		return nil, err
	}
	return spec.FactoryAs(alias), nil
}
