package core

import (
	"bytes"
	"testing"
	"time"

	"intango/internal/gfw"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// recordingStrategy captures the flow state it was offered.
type recordingStrategy struct {
	flows []Flow
	pkts  []uint8 // flag sets seen
}

func (r *recordingStrategy) Name() string { return "recording" }
func (r *recordingStrategy) Outbound(f *Flow, pkt *packet.Packet) []Emission {
	r.flows = append(r.flows, *f)
	r.pkts = append(r.pkts, pkt.TCP.Flags)
	return []Emission{{Pkt: pkt}}
}

func TestEngineTracksFlowState(t *testing.T) {
	r := newTrialRig(t, evolved(), nil, nil)
	rec := &recordingStrategy{}
	r.engine.NewStrategy = func(packet.FourTuple) Strategy { return rec }
	c := r.cli.Connect(srvAddr, 80)
	r.sim.RunFor(200 * time.Millisecond)
	if c.State() != tcpstack.Established {
		t.Fatalf("state = %v", c.State())
	}
	c.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	r.sim.RunFor(time.Second)

	if len(rec.flows) < 3 {
		t.Fatalf("strategy saw %d packets", len(rec.flows))
	}
	// SYN first: ISS recorded, handshake not done.
	if rec.pkts[0] != packet.FlagSYN {
		t.Fatalf("first packet flags %v", packet.FlagString(rec.pkts[0]))
	}
	if rec.flows[0].ISS != c.ISS() || rec.flows[0].HandshakeDone {
		t.Fatalf("SYN flow state: %+v", rec.flows[0])
	}
	// Handshake ACK: done, RcvNxt = server ISN+1.
	if !rec.flows[1].HandshakeDone {
		t.Fatalf("ACK flow state: %+v", rec.flows[1])
	}
	if rec.flows[1].ServerISN.Add(1) != rec.flows[1].RcvNxt {
		t.Fatalf("RcvNxt %d vs ServerISN %d", rec.flows[1].RcvNxt, rec.flows[1].ServerISN)
	}
	// Data packet: DataSent still 0 when the strategy runs (so
	// first-data triggers fire), SndNxt = ISS+1.
	dataFlow := rec.flows[2]
	if dataFlow.DataSent != 0 {
		t.Fatalf("DataSent = %d before first data", dataFlow.DataSent)
	}
	if dataFlow.SndNxt != c.ISS().Add(1) {
		t.Fatalf("SndNxt = %d", dataFlow.SndNxt)
	}
}

func TestEngineStrategyForAndReset(t *testing.T) {
	r := newTrialRig(t, evolved(), NewImprovedTeardown(), nil)
	c := r.cli.Connect(srvAddr, 80)
	r.sim.RunFor(100 * time.Millisecond)
	tuple := packet.FourTuple{SrcAddr: cliAddr, SrcPort: c.LocalPort(), DstAddr: srvAddr, DstPort: 80}
	if s, ok := r.engine.StrategyFor(tuple); !ok || s.Name() != "improved-teardown" {
		t.Fatalf("StrategyFor = %v %v", s, ok)
	}
	r.engine.Reset()
	if _, ok := r.engine.StrategyFor(tuple); ok {
		t.Fatal("flows should be gone after Reset")
	}
}

func TestEngineOnOutboundConsumes(t *testing.T) {
	r := newTrialRig(t, evolved(), nil, nil)
	dropped := 0
	r.engine.OnOutbound = func(pkt *packet.Packet) bool {
		if pkt.UDP != nil {
			dropped++
			return false
		}
		return true
	}
	delivered := 0
	r.srv.ListenUDP(99, func(packet.Addr, uint16, []byte) { delivered++ })
	r.cli.SendUDP(1000, srvAddr, 99, []byte("x"))
	r.sim.RunFor(time.Second)
	if dropped != 1 || delivered != 0 {
		t.Fatalf("dropped=%d delivered=%d", dropped, delivered)
	}
}

func TestEngineNonTCPPassThrough(t *testing.T) {
	r := newTrialRig(t, evolved(), nil, nil)
	got := 0
	r.srv.ListenUDP(99, func(packet.Addr, uint16, []byte) { got++ })
	r.cli.SendUDP(1000, srvAddr, 99, []byte("ping"))
	r.sim.RunFor(time.Second)
	if got != 1 {
		t.Fatalf("udp delivered %d", got)
	}
}

func TestEngineRepeatWavesPreserveOrder(t *testing.T) {
	// Each wave must contain the insertions in their original order so
	// (SYN, desync) pairs keep their causality (Fig. 3).
	r := newTrialRig(t, evolved(), NewResyncDesync(), nil)
	type sent struct {
		flags uint8
		seq   packet.Seq
	}
	var log []sent
	r.engine.OnOutboundRaw = func(em Emission) {
		if em.Insertion {
			log = append(log, sent{em.Pkt.TCP.Flags, em.Pkt.TCP.Seq})
		}
	}
	if got := r.runTrial(t); got != Success {
		t.Fatalf("outcome %v", got)
	}
	// Post-handshake waves: SYN then desync-data, three times.
	var postPairs int
	for i := 0; i+1 < len(log); i++ {
		if log[i].flags == packet.FlagSYN && log[i+1].flags == packet.FlagPSH|packet.FlagACK {
			postPairs++
		}
	}
	if postPairs < 3 {
		t.Fatalf("ordered SYN→desync pairs = %d, want ≥3:\n%v", postPairs, log)
	}
}

func TestEngineNoStrategySendsNothingExtra(t *testing.T) {
	r := newTrialRig(t, evolved(), nil, nil)
	count := 0
	r.engine.OnOutboundRaw = func(em Emission) {
		if em.Insertion {
			count++
		}
	}
	r.runTrial(t)
	if count != 0 {
		t.Fatalf("passthrough emitted %d insertions", count)
	}
}

func TestSharedStrategyInstanceAcrossFlows(t *testing.T) {
	// A Spec factory hands every connection the same *Compiled instance:
	// all trigger state must therefore live on the Flow. Two sequential
	// connections through one engine must each get their own insertions
	// — if the first connection's one-shot consumed shared state, the
	// second would sail out unprotected.
	r := newTrialRig(t, evolved(), SpecImprovedTeardown().FactoryAs("improved-teardown"), nil)
	insertions := make(map[uint16]int) // client port → insertion count
	r.engine.OnOutboundRaw = func(em Emission) {
		if em.Insertion {
			insertions[em.Pkt.TCP.SrcPort]++
		}
	}
	var ports []uint16
	for i := 0; i < 2; i++ {
		c := r.cli.Connect(srvAddr, 80)
		ports = append(ports, c.LocalPort())
		r.sim.RunFor(200 * time.Millisecond)
		if c.State() != tcpstack.Established {
			t.Fatalf("connection %d state = %v", i, c.State())
		}
		c.Write([]byte("GET /?q=" + keyword + " HTTP/1.1\r\nHost: example.com\r\n\r\n"))
		r.sim.RunFor(5 * time.Second)
		if !bytes.Contains(c.Received(), []byte("200 OK")) {
			t.Fatalf("connection %d did not evade", i)
		}
	}
	if ports[0] == ports[1] {
		t.Fatalf("both connections used port %d", ports[0])
	}
	for i, p := range ports {
		if insertions[p] == 0 {
			t.Errorf("connection %d (port %d) emitted no insertions: one-shot state leaked across flows", i, p)
		}
	}
}

func TestWestChamberKillsOwnConnection(t *testing.T) {
	r := newTrialRig(t, evolved(), NewWestChamber(), nil)
	if got := r.runTrial(t); got != Failure1 {
		t.Fatalf("west-chamber outcome = %v, want failure-1 (its bare RST reaches the server)", got)
	}
}

func TestMD5RequestAgainstHardenedGFW(t *testing.T) {
	cfg := evolved()
	cfg.ValidateMD5 = true // §8 hardened censor
	r := newTrialRig(t, cfg, NewMD5TaggedRequest(), nil)
	// Against a modern server the MD5-tagged request is ignored by the
	// server too: Failure 1.
	if got := r.runTrial(t); got != Failure1 {
		t.Fatalf("vs linux-4.4: %v, want failure-1", got)
	}
	// Against a pre-RFC-2385 server it sails through.
	r2 := newTrialRig(t, cfg, NewMD5TaggedRequest(), nil)
	r2.srv.Profile = tcpstack.Linux2437()
	if got := r2.runTrial(t); got != Success {
		t.Fatalf("vs linux-2.4.37: %v, want success", got)
	}
	_ = gfw.Config{}
}
