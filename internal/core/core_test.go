package core

import (
	"bytes"
	"testing"
	"time"

	"intango/internal/gfw"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

var (
	cliAddr = packet.AddrFrom4(10, 0, 0, 1)
	srvAddr = packet.AddrFrom4(203, 0, 113, 80)
)

const keyword = "ultrasurf"

// Outcome mirrors the §3.4 classification.
type Outcome int

const (
	Success Outcome = iota
	Failure1
	Failure2
)

func (o Outcome) String() string {
	switch o {
	case Success:
		return "success"
	case Failure1:
		return "failure-1"
	default:
		return "failure-2"
	}
}

// trialRig is a client—GFW—server topology with a strategy engine.
type trialRig struct {
	sim    *netem.Simulator
	path   *netem.Path
	dev    *gfw.Device
	engine *Engine
	cli    *tcpstack.Stack
	srv    *tcpstack.Stack
}

func newTrialRig(t *testing.T, cfg gfw.Config, factory Factory, middle []netem.Processor) *trialRig {
	t.Helper()
	r := &trialRig{sim: netem.NewSimulator(23)}
	if cfg.Keywords == nil {
		cfg.Keywords = []string{keyword}
	}
	if cfg.DetectionMissProb == 0 {
		cfg.DetectionMissProb = -1 // deterministic tests never miss
	}
	r.dev = gfw.NewDevice("gfw", cfg, r.sim.Rand())
	r.path = &netem.Path{Sim: r.sim}
	for i := 0; i < 6; i++ {
		r.path.Hops = append(r.path.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	}
	r.path.ClientLink.Latency = time.Millisecond
	// Client-side middleboxes at hop 0; GFW tap at hop 2.
	r.path.Hops[0].Processors = middle
	r.path.Hops[2].Taps = []netem.Processor{r.dev}
	r.cli = tcpstack.NewStack(cliAddr, tcpstack.Linux44(), r.sim)
	r.srv = tcpstack.NewStack(srvAddr, tcpstack.Linux44(), r.sim)
	r.srv.AttachServer(r.path)
	r.srv.Listen(80, func(c *tcpstack.Conn) {
		c.OnData = func([]byte) {
			if bytes.Contains(c.Received(), []byte("\r\n\r\n")) {
				c.Write([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"))
			}
		}
	})
	// Insertion TTL 3: seen by the tap at hop 2, dead before the server.
	env := DefaultEnv(3, r.sim.Rand())
	r.engine = NewEngine(r.sim, r.path, r.cli, env)
	if factory != nil {
		r.engine.NewStrategy = func(packet.FourTuple) Strategy { return factory() }
	}
	return r
}

// runTrial performs one sensitive GET and classifies the outcome with
// the §3.4 notation: Failure 2 requires resets attributable to the GFW
// (its injection signature), not just any RST.
func (r *trialRig) runTrial(t *testing.T) Outcome {
	t.Helper()
	c := r.cli.Connect(srvAddr, 80)
	r.sim.RunFor(200 * time.Millisecond)
	if c.State() == tcpstack.Established {
		c.Write([]byte("GET /?q=" + keyword + " HTTP/1.1\r\nHost: example.com\r\n\r\n"))
	}
	r.sim.RunFor(5 * time.Second)
	gfwInjected := r.dev.Stats["inject-type1"]+r.dev.Stats["inject-type2"]+r.dev.Stats["block-enforce"] > 0
	switch {
	case bytes.Contains(c.Received(), []byte("200 OK")) && !c.GotRST:
		return Success
	case c.GotRST && gfwInjected:
		return Failure2
	default:
		return Failure1
	}
}

func evolved() gfw.Config { return gfw.Config{Model: gfw.ModelEvolved2017} }
func old() gfw.Config     { return gfw.Config{Model: gfw.ModelKhattak2013} }

func TestNoStrategyIsCensored(t *testing.T) {
	for _, cfg := range []gfw.Config{evolved(), old()} {
		r := newTrialRig(t, cfg, nil, nil)
		if got := r.runTrial(t); got != Failure2 {
			t.Fatalf("%v: outcome = %v, want failure-2", cfg.Model, got)
		}
	}
}

func TestTCBCreationOldVsEvolved(t *testing.T) {
	// Worked against the 2013 model; the evolved model resynchronizes
	// from the extra SYN and catches the keyword (§4).
	r := newTrialRig(t, old(), NewTCBCreation(DiscTTL), nil)
	if got := r.runTrial(t); got != Success {
		t.Fatalf("old model: %v, want success", got)
	}
	r2 := newTrialRig(t, evolved(), NewTCBCreation(DiscTTL), nil)
	if got := r2.runTrial(t); got != Failure2 {
		t.Fatalf("evolved model: %v, want failure-2", got)
	}
}

func TestInOrderPrefill(t *testing.T) {
	for _, d := range []Discrepancy{DiscTTL, DiscBadChecksum, DiscBadAck, DiscNoFlag, DiscMD5, DiscOldTimestamp} {
		r := newTrialRig(t, evolved(), NewInOrderPrefill(d), nil)
		if got := r.runTrial(t); got != Success {
			t.Fatalf("prefill/%v: %v, want success", d, got)
		}
	}
}

func TestPrefillOldTimestampAgainstOldModel(t *testing.T) {
	r := newTrialRig(t, old(), NewInOrderPrefill(DiscTTL), nil)
	if got := r.runTrial(t); got != Success {
		t.Fatalf("old model prefill: %v", got)
	}
}

func TestTeardownRSTDependsOnDeviceRSTBehaviour(t *testing.T) {
	cfgDown := evolved() // ResyncOnRSTProb 0: RST tears down
	r := newTrialRig(t, cfgDown, NewTCBTeardown(packet.FlagRST, DiscTTL), nil)
	if got := r.runTrial(t); got != Success {
		t.Fatalf("teardown device: %v, want success", got)
	}
	cfgResync := evolved()
	cfgResync.ResyncOnRSTProb = 1 // RST sends the TCB to resync: the request resyncs it
	r2 := newTrialRig(t, cfgResync, NewTCBTeardown(packet.FlagRST, DiscTTL), nil)
	if got := r2.runTrial(t); got != Failure2 {
		t.Fatalf("resync device: %v, want failure-2", got)
	}
}

func TestTeardownFINFailsAgainstEvolved(t *testing.T) {
	r := newTrialRig(t, evolved(), NewTCBTeardown(packet.FlagFIN|packet.FlagACK, DiscTTL), nil)
	if got := r.runTrial(t); got != Failure2 {
		t.Fatalf("FIN vs evolved: %v, want failure-2", got)
	}
	r2 := newTrialRig(t, old(), NewTCBTeardown(packet.FlagFIN|packet.FlagACK, DiscTTL), nil)
	if got := r2.runTrial(t); got != Success {
		t.Fatalf("FIN vs old: %v, want success", got)
	}
}

func TestImprovedTeardownBeatsBothRSTBehaviours(t *testing.T) {
	for _, prob := range []float64{0, 1} {
		cfg := evolved()
		cfg.ResyncOnRSTProb = prob
		r := newTrialRig(t, cfg, NewImprovedTeardown(), nil)
		if got := r.runTrial(t); got != Success {
			t.Fatalf("improved teardown (resync prob %v): %v, want success", prob, got)
		}
	}
	r := newTrialRig(t, old(), NewImprovedTeardown(), nil)
	if got := r.runTrial(t); got != Success {
		t.Fatalf("improved teardown vs old: %v", got)
	}
}

func TestImprovedPrefill(t *testing.T) {
	for _, cfg := range []gfw.Config{evolved(), old()} {
		r := newTrialRig(t, cfg, NewImprovedPrefill(), nil)
		if got := r.runTrial(t); got != Success {
			t.Fatalf("%v: %v, want success", cfg.Model, got)
		}
	}
}

func TestResyncDesyncBeatsBothModels(t *testing.T) {
	for _, cfg := range []gfw.Config{evolved(), old()} {
		r := newTrialRig(t, cfg, NewResyncDesync(), nil)
		if got := r.runTrial(t); got != Success {
			t.Fatalf("%v: %v, want success", cfg.Model, got)
		}
	}
}

func TestTCBReversalBeatsBothModels(t *testing.T) {
	for _, cfg := range []gfw.Config{evolved(), old()} {
		r := newTrialRig(t, cfg, NewTCBReversal(), nil)
		if got := r.runTrial(t); got != Success {
			t.Fatalf("%v: %v, want success", cfg.Model, got)
		}
	}
	// Also against a resync-on-RST evolved device.
	cfg := evolved()
	cfg.ResyncOnRSTProb = 1
	r := newTrialRig(t, cfg, NewTCBReversal(), nil)
	if got := r.runTrial(t); got != Success {
		t.Fatalf("reversal vs resync-on-RST: %v", got)
	}
}

func TestOutOfOrderTCPSegOverlapPolicy(t *testing.T) {
	// Old-style devices prefer the later copy: junk wins, evasion works.
	cfg := evolved()
	cfg.SegmentLastWinsProb = 1
	r := newTrialRig(t, cfg, NewOutOfOrderTCPSeg(), nil)
	if got := r.runTrial(t); got != Success {
		t.Fatalf("last-wins device: %v, want success", got)
	}
	// Evolved devices that keep the first copy see the real data.
	cfg2 := evolved()
	cfg2.SegmentLastWinsProb = 0
	r2 := newTrialRig(t, cfg2, NewOutOfOrderTCPSeg(), nil)
	if got := r2.runTrial(t); got != Failure2 {
		t.Fatalf("first-wins device: %v, want failure-2", got)
	}
}

func TestOutOfOrderIPFrag(t *testing.T) {
	// With no middlebox interference the fragment decoy blinds the GFW
	// (it keeps the first copy) while the server keeps the real data.
	r := newTrialRig(t, evolved(), NewOutOfOrderIPFrag(), nil)
	if got := r.runTrial(t); got != Success {
		t.Fatalf("no middleboxes: %v, want success", got)
	}
}

func TestWrongInsertionTTLCausesFailure1(t *testing.T) {
	// An insertion RST whose TTL overshoots the GFW reaches the server
	// and kills the real connection: Failure 1 (§3.4 network dynamics).
	r := newTrialRig(t, evolved(), NewTCBTeardown(packet.FlagRST, DiscTTL), nil)
	r.engine.Env.InsertionTTL = 64 // wrong: reaches the server
	if got := r.runTrial(t); got != Failure1 {
		t.Fatalf("outcome = %v, want failure-1", got)
	}
}

func TestInsertionRepeats(t *testing.T) {
	r := newTrialRig(t, evolved(), NewImprovedTeardown(), nil)
	var insertions int
	r.engine.OnOutboundRaw = func(em Emission) {
		if em.Insertion {
			insertions++
		}
	}
	r.runTrial(t)
	// 3 insertion packets × 3 waves.
	if insertions != 9 {
		t.Fatalf("insertion emissions = %d, want 9", insertions)
	}
}

func TestDiscrepancyStringsAndTable5(t *testing.T) {
	for _, d := range []Discrepancy{DiscTTL, DiscBadChecksum, DiscBadAck, DiscMD5, DiscOldTimestamp, DiscNoFlag} {
		if d.String() == "" {
			t.Fatal("empty discrepancy name")
		}
	}
	if len(PreferredDiscrepancies["SYN"]) != 1 || PreferredDiscrepancies["SYN"][0] != DiscTTL {
		t.Fatal("Table 5: SYN insertion must be TTL-only")
	}
	if len(PreferredDiscrepancies["Data"]) != 4 {
		t.Fatal("Table 5: data insertion has four constructions")
	}
}

func TestBuiltinFactoriesComplete(t *testing.T) {
	m := BuiltinFactories()
	want := []string{
		"none", "ooo-ipfrag", "ooo-tcpseg",
		"tcb-creation-syn/ttl", "tcb-creation-syn/bad-checksum",
		"teardown-rst/ttl", "teardown-rstack/ttl", "teardown-fin/ttl",
		"prefill/ttl", "prefill/bad-ack", "prefill/bad-checksum", "prefill/no-flag",
		"improved-teardown", "improved-prefill", "creation-resync-desync", "teardown-reversal",
	}
	for _, name := range want {
		f, ok := m[name]
		if !ok {
			t.Fatalf("missing factory %q", name)
		}
		s := f()
		if s.Name() != name && name != "none" {
			t.Fatalf("factory %q builds strategy %q", name, s.Name())
		}
	}
}

func TestApplyDiscrepancies(t *testing.T) {
	rng := netem.NewSimulator(1).Rand()
	env := DefaultEnv(5, rng)
	base := func() *packet.Packet {
		return packet.NewTCP(cliAddr, 1, srvAddr, 2, packet.FlagPSH|packet.FlagACK, 100, 200, []byte("x"))
	}
	p := env.Apply(base(), DiscTTL)
	if p.IP.TTL != 5 {
		t.Fatalf("ttl = %d", p.IP.TTL)
	}
	p = env.Apply(base(), DiscBadChecksum)
	if p.TCP.VerifyChecksum(p.IP.Src, p.IP.Dst, p.Payload) || !p.BadTCPChecksum {
		t.Fatal("checksum should be corrupted")
	}
	p = env.Apply(base(), DiscMD5)
	if !p.TCP.HasMD5() || !p.TCP.VerifyChecksum(p.IP.Src, p.IP.Dst, p.Payload) {
		t.Fatal("md5 packet must carry the option with a valid checksum")
	}
	p = env.Apply(base(), DiscBadAck)
	if p.TCP.Ack.Diff(200) != 1<<22 {
		t.Fatalf("bad ack = %d", p.TCP.Ack)
	}
	p = env.Apply(base(), DiscNoFlag)
	if p.TCP.Flags != 0 {
		t.Fatal("flags should be cleared")
	}
	p = env.Apply(base(), DiscOldTimestamp)
	if tsval, _, ok := p.TCP.Timestamps(); !ok || tsval != 1 {
		t.Fatal("old timestamp missing")
	}
}
