package core

import (
	"os"
	"strings"
	"testing"
)

// TestRegisteredNamesGolden pins every registered strategy alias: a
// rename breaks the INTANG result cache, the table runners and any
// downstream config referring to strategies by name, so it must be a
// conscious change (regenerate with
// `go run ./cmd/tables -what strategies`).
func TestRegisteredNamesGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/strategy_names.golden")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range Registry() {
		names = append(names, e.Alias)
	}
	got := strings.Join(names, "\n") + "\n"
	if got != string(want) {
		t.Errorf("registered names drifted from testdata/strategy_names.golden:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestStrategyTableGolden pins the full `-what strategies` dump — alias
// and canonical spec for the whole suite.
func TestStrategyTableGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/strategies.golden")
	if err != nil {
		t.Fatal(err)
	}
	got := "== strategy registry: name ↔ spec ==\n" + FormatStrategyTable()
	if got != string(want) {
		t.Errorf("strategy table drifted from testdata/strategies.golden:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestFactoryNamesMatchAliases checks that the factory a registry entry
// builds reports the registered alias as its Name() — the string every
// stats key, trace line and table row uses.
func TestFactoryNamesMatchAliases(t *testing.T) {
	for _, e := range Registry() {
		if got := e.Spec.FactoryAs(e.Alias)().Name(); got != e.Alias {
			t.Errorf("FactoryAs(%q)().Name() = %q", e.Alias, got)
		}
		f, _, ok := ResolveStrategy(e.Alias)
		if !ok {
			t.Errorf("ResolveStrategy(%q) failed", e.Alias)
			continue
		}
		if got := f().Name(); got != e.Alias {
			t.Errorf("ResolveStrategy(%q) factory Name() = %q", e.Alias, got)
		}
	}
}

// TestSpecRoundTrip checks Parse∘String is the identity on every
// registered spec — the property that makes canonical spec strings a
// stable strategy identity.
func TestSpecRoundTrip(t *testing.T) {
	for _, e := range Registry() {
		canon := e.Spec.String()
		back, err := ParseSpec(canon)
		if err != nil {
			t.Errorf("%s: ParseSpec(%q): %v", e.Alias, canon, err)
			continue
		}
		if back.String() != canon {
			t.Errorf("%s: round trip %q -> %q", e.Alias, canon, back.String())
		}
	}
	// And on the baseline.
	if s := MustParseSpec("pass"); s.String() != "pass" || len(s.Rules) != 0 {
		t.Errorf("pass round trip: %q (%d rules)", s.String(), len(s.Rules))
	}
}

// TestParseSpecNormalizes checks that forgiving input spellings parse
// and re-encode canonically.
func TestParseSpecNormalizes(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"  pass ", "pass"},
		{"on:handshake[ ]", "on:handshake[]"},
		{"on:first-payload( rexmit , min=16 )[ inject( prefill , disc=ttl ) ]",
			"on:first-payload(min=16,rexmit)[inject(prefill,disc=ttl)]"},
		{"on:segment[fragment(tcp)]", "on:segment[fragment(tcp,at=4)]"},
		{"on:payload[inject(desync,disc=none)]", "on:payload[inject(desync)]"},
		{"on:payload[tamper(seq=8)]", "on:payload[tamper(seq=+8)]"},
		{"on:payload[fragment(ip,at=512)]", "on:payload[fragment(ip,at=512)]"},
	} {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got.String() != tc.want {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", tc.in, got.String(), tc.want)
		}
	}
}

// TestParseSpecErrors pins the parser's rejection behaviour and message
// wording for representative malformed specs.
func TestParseSpecErrors(t *testing.T) {
	for _, tc := range []struct{ in, wantErr string }{
		{"", "spec: empty input"},
		{"pass pass", `spec: unexpected text after "pass"`},
		{"first-payload[inject(syn)]", `spec: rule must start with "on:<phase>"`},
		{"on:midnight[inject(syn)]", `spec: unknown phase "midnight"`},
		{"on:first-payload(min=-1)[inject(syn)]", `spec: trigger on:first-payload: bad min "-1"`},
		{"on:first-payload(max=9)[inject(syn)]", `spec: trigger on:first-payload: unknown argument "9"`},
		{"on:first-payload inject(syn)", "spec: missing '[' after on:first-payload"},
		{"on:first-payload[inject(syn)", "spec: missing ']' to close on:first-payload"},
		{"on:first-payload[inject(syn) inject(desync)]", "spec: expected ';' or ']'"},
		{"on:first-payload[explode]", `spec: unknown primitive "explode"`},
		{"on:first-payload[inject]", "spec: inject: missing kind (syn, synack, desync or prefill)"},
		{"on:first-payload[inject(ack)]", `spec: inject: unknown kind "ack"`},
		{"on:first-payload[inject(syn,disc=wifi)]", `spec: inject: unknown discrepancy "wifi"`},
		{"on:first-payload[teardown(disc=ttl)]", "spec: teardown: missing flags (rst, rstack, fin or finack)"},
		{"on:first-payload[teardown(flags=syn)]", `spec: teardown: unknown flags "syn"`},
		{"on:first-payload[fragment]", "spec: fragment: missing layer (ip or tcp)"},
		{"on:first-payload[fragment(udp)]", `spec: fragment: unknown layer "udp"`},
		{"on:first-payload[fragment(tcp,at=0)]", `spec: fragment: bad at "0"`},
		{"on:first-payload[fragment(ip,at=0)]", `spec: fragment: bad at "0"`},
		{"on:first-payload[reorder]", "spec: reorder: want reorder(head-last)"},
		{"on:first-payload[duplicate(fill=junk)]", "spec: duplicate: missing selector (tails)"},
		{"on:first-payload[duplicate(tails,pos=middle)]", `spec: duplicate: unknown pos "middle"`},
		{"on:first-payload[tamper]", "spec: tamper: want exactly one of md5, ttl=N, flags=F, seq=±N"},
		{"on:first-payload[tamper(ttl=0)]", `spec: tamper: bad ttl "0"`},
		{"on:first-payload[tamper(seq=0)]", `spec: tamper: bad seq delta "0"`},
		{"on:first-payload[delay]", "spec: delay: want delay(ms=N)"},
		{"on:first-payload[delay(ms=0)]", `spec: delay: bad ms "0"`},
		{"on:first-payload[inject(syn]", "spec: inject: expected ',' or ')'"},
		{"on:first-payload[inject(disc=)]", `spec: inject: missing value for "disc"`},
	} {
		_, err := ParseSpec(tc.in)
		if err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error %q", tc.in, tc.wantErr)
			continue
		}
		if !strings.HasPrefix(err.Error(), tc.wantErr) {
			t.Errorf("ParseSpec(%q) error = %q, want prefix %q", tc.in, err, tc.wantErr)
		}
	}
}

// FuzzParseSpec checks the parser never panics and that accepted input
// reaches a canonical fixed point: String() of a parsed spec re-parses
// to the same string.
func FuzzParseSpec(f *testing.F) {
	for _, e := range Registry() {
		f.Add(e.Spec.String())
	}
	f.Add("pass")
	f.Add("on:handshake[]")
	f.Add("on:first-payload(min=16,rexmit)[fragment(tcp,at=4); reorder(head-last)]")
	f.Add("on:payload[tamper(seq=-2)]")
	f.Add("on:first-payload[inject(")
	f.Add("on:first-payload[delay(ms=99]]")
	f.Add("on:segment[duplicate(tails,fill=copy,pos=after)]")
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseSpec(input)
		if err != nil {
			return
		}
		canon := spec.String()
		back, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: ParseSpec(%q) -> %q: %v", input, canon, err)
		}
		if back.String() != canon {
			t.Fatalf("not a fixed point: %q -> %q -> %q", input, canon, back.String())
		}
	})
}
