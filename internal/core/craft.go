// Package core implements the paper's primary contribution: the evasion
// strategies of §3 (existing), §5 (new: Resync+Desync, TCB Reversal)
// and §7 (improved and combined), together with the insertion-packet
// crafting machinery of §5.3 / Table 5. Strategies plug into an Engine
// that interposes between a client TCP stack and the network, the same
// position INTANG occupies with netfilter-queue.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"intango/internal/packet"
)

// Discrepancy is a way to make an insertion packet that the GFW
// processes but the server (or the path beyond the GFW) does not.
type Discrepancy int

// The discrepancies of §3.2 and Table 3/Table 5.
const (
	// DiscTTL caps the TTL so the packet dies between the GFW and the
	// server.
	DiscTTL Discrepancy = iota
	// DiscBadChecksum corrupts the TCP checksum; servers drop it, the
	// GFW does not validate (§3.4).
	DiscBadChecksum
	// DiscBadAck sets an acknowledgment number for data never sent;
	// servers ignore such segments (Table 3 row 5).
	DiscBadAck
	// DiscMD5 attaches an unsolicited RFC 2385 MD5 signature option
	// (Table 3 row 6); never dropped by middleboxes (§5.3).
	DiscMD5
	// DiscOldTimestamp carries a PAWS-stale timestamp (Table 3 row 9).
	DiscOldTimestamp
	// DiscNoFlag clears all TCP flags (Table 3 row 7).
	DiscNoFlag

	// DiscNone applies no discrepancy: the insertion packet is a plain,
	// well-formed packet that reaches the server (the West Chamber
	// baseline — exactly why the paper found that tool ineffective).
	DiscNone Discrepancy = -1
)

// String names the discrepancy as it appears in the paper's tables.
func (d Discrepancy) String() string {
	switch d {
	case DiscTTL:
		return "ttl"
	case DiscBadChecksum:
		return "bad-checksum"
	case DiscBadAck:
		return "bad-ack"
	case DiscMD5:
		return "md5"
	case DiscOldTimestamp:
		return "old-timestamp"
	case DiscNoFlag:
		return "no-flag"
	case DiscNone:
		return "none"
	default:
		return fmt.Sprintf("disc(%d)", int(d))
	}
}

// ParseDiscrepancy inverts Discrepancy.String — the spec parser's
// vocabulary for the disc= argument.
func ParseDiscrepancy(s string) (Discrepancy, bool) {
	for _, d := range []Discrepancy{DiscTTL, DiscBadChecksum, DiscBadAck, DiscMD5, DiscOldTimestamp, DiscNoFlag, DiscNone} {
		if d.String() == s {
			return d, true
		}
	}
	return 0, false
}

// PreferredDiscrepancies is Table 5: which insertion-packet
// constructions are usable for each packet type.
var PreferredDiscrepancies = map[string][]Discrepancy{
	"SYN":  {DiscTTL},
	"RST":  {DiscTTL, DiscMD5},
	"Data": {DiscTTL, DiscMD5, DiscBadAck, DiscOldTimestamp},
}

// Env carries the per-path crafting environment a strategy needs.
type Env struct {
	// InsertionTTL is the TTL that reaches the GFW but not the server
	// or server-side middleboxes — measured hop count minus δ (§7.1).
	InsertionTTL uint8
	// Repeat is how many times each insertion packet is re-sent to
	// survive loss (§3.4: thrice with 20 ms intervals).
	Repeat int
	// RepeatGap is the spacing between repeats.
	RepeatGap time.Duration
	// Rand drives randomized field values deterministically.
	Rand *rand.Rand
}

// DefaultEnv returns the crafting environment the paper's measurements
// used: TTL-based insertion with three repeats 20 ms apart.
func DefaultEnv(insertionTTL uint8, rng *rand.Rand) Env {
	return Env{InsertionTTL: insertionTTL, Repeat: 3, RepeatGap: 20 * time.Millisecond, Rand: rng}
}

// Apply applies a discrepancy to a crafted packet in place and
// finalizes it. The packet must be a TCP packet.
func (e *Env) Apply(pkt *packet.Packet, d Discrepancy) *packet.Packet {
	switch d {
	case DiscTTL:
		pkt.IP.TTL = e.InsertionTTL
		pkt.Finalize()
	case DiscBadChecksum:
		pkt.Finalize()
		pkt.TCP.Checksum ^= 0x5555
		pkt.BadTCPChecksum = true
	case DiscBadAck:
		pkt.TCP.Flags |= packet.FlagACK
		pkt.TCP.Ack = pkt.TCP.Ack.Add(1 << 22)
		pkt.Finalize()
	case DiscMD5:
		var digest [16]byte
		e.Rand.Read(digest[:])
		pkt.TCP.Options = append(pkt.TCP.Options, packet.MD5Option(digest))
		pkt.Finalize()
	case DiscOldTimestamp:
		opts := pkt.TCP.Options[:0]
		for _, o := range pkt.TCP.Options {
			if o.Kind != packet.OptTimestamps {
				opts = append(opts, o)
			}
		}
		pkt.TCP.Options = append(opts, packet.TimestampOption(1, 0))
		pkt.Finalize()
	case DiscNoFlag:
		pkt.TCP.Flags = 0
		pkt.Finalize()
	case DiscNone:
		pkt.Finalize()
	}
	return pkt
}

// junk fills a buffer with keyword-free filler.
func junk(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = 'A' + byte(i%13)
	}
	return b
}
