package core

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the declarative half of the strategy layer: a Spec is a
// list of trigger→actions rules with a canonical single-line text
// encoding, e.g.
//
//	on:first-payload[teardown(flags=rst,disc=ttl); inject(desync)]
//
// ParseSpec and Spec.String round-trip, so a spec string is a stable
// identity for a strategy: the INTANG result cache, the table runners
// and the arms-race enumerator all key off it. Compilation to the
// imperative Strategy interface lives in primitives.go.

// Phase is the trigger point of a rule within a connection's life.
type Phase int

const (
	// PhaseHandshake fires once, on the client's initial SYN.
	PhaseHandshake Phase = iota
	// PhaseFirstPayload fires once, on the first packet carrying client
	// payload (where most of the paper's strategies act).
	PhaseFirstPayload
	// PhasePayload fires on every packet carrying client payload.
	PhasePayload
	// PhaseSegment fires on every outbound TCP packet.
	PhaseSegment
)

// String names the phase as it appears in spec text.
func (ph Phase) String() string {
	switch ph {
	case PhaseHandshake:
		return "handshake"
	case PhaseFirstPayload:
		return "first-payload"
	case PhasePayload:
		return "payload"
	case PhaseSegment:
		return "segment"
	default:
		return fmt.Sprintf("phase(%d)", int(ph))
	}
}

func parsePhase(s string) (Phase, bool) {
	for _, ph := range []Phase{PhaseHandshake, PhaseFirstPayload, PhasePayload, PhaseSegment} {
		if ph.String() == s {
			return ph, true
		}
	}
	return 0, false
}

// Trigger decides when a rule's actions run.
type Trigger struct {
	Phase Phase
	// Min suppresses the trigger while the packet's payload is shorter
	// than Min bytes (without consuming a one-shot phase).
	Min int
	// Rexmit re-fires a one-shot trigger on retransmissions of the
	// packet that first fired it, so a lossy path never sees the
	// original segment on the wire.
	Rexmit bool
}

// String renders the trigger in canonical form.
func (tr Trigger) String() string {
	s := "on:" + tr.Phase.String()
	var args []string
	if tr.Min > 0 {
		args = append(args, fmt.Sprintf("min=%d", tr.Min))
	}
	if tr.Rexmit {
		args = append(args, "rexmit")
	}
	if len(args) > 0 {
		s += "(" + strings.Join(args, ",") + ")"
	}
	return s
}

// Rule pairs a trigger with the action pipeline it releases.
type Rule struct {
	Trigger Trigger
	Actions []Action
}

// String renders the rule in canonical form.
func (r Rule) String() string {
	parts := make([]string, len(r.Actions))
	for i, a := range r.Actions {
		parts[i] = a.encode()
	}
	return r.Trigger.String() + "[" + strings.Join(parts, "; ") + "]"
}

// Spec is a complete declarative strategy: rules are checked in order
// against each outbound packet and every matching rule's actions are
// applied to the emission plan. The zero Spec is the passthrough
// baseline and encodes as "pass".
type Spec struct {
	Rules []Rule
}

// String renders the canonical single-line encoding. ParseSpec inverts
// it exactly: ParseSpec(s.String()).String() == s.String().
func (s Spec) String() string {
	if len(s.Rules) == 0 {
		return "pass"
	}
	parts := make([]string, len(s.Rules))
	for i, r := range s.Rules {
		parts[i] = r.String()
	}
	return strings.Join(parts, " ")
}

// MustParseSpec is ParseSpec for statically-known specs; it panics on
// error.
func MustParseSpec(input string) Spec {
	spec, err := ParseSpec(input)
	if err != nil {
		panic(err)
	}
	return spec
}

// ParseSpec parses the canonical text encoding:
//
//	spec    = "pass" | rule {" " rule}
//	rule    = "on:" phase ["(" targ {"," targ} ")"] "[" [action {"; " action}] "]"
//	phase   = "handshake" | "first-payload" | "payload" | "segment"
//	targ    = "min=" int | "rexmit"
//	action  = name ["(" arg {"," arg} ")"]
//	name    = "inject" | "teardown" | "fragment" | "reorder" |
//	          "duplicate" | "tamper" | "delay"
//	arg     = ident | key "=" value
//
// Whitespace between tokens is forgiving on input; String always emits
// the canonical spacing.
func ParseSpec(input string) (Spec, error) {
	p := &specParser{s: input}
	p.space()
	if p.eof() {
		return Spec{}, fmt.Errorf("spec: empty input")
	}
	save := p.i
	if p.ident() == "pass" {
		p.space()
		if p.eof() {
			return Spec{}, nil
		}
		return Spec{}, fmt.Errorf("spec: unexpected text after \"pass\": %q", p.rest())
	}
	p.i = save
	var spec Spec
	for {
		p.space()
		if p.eof() {
			return spec, nil
		}
		r, err := p.rule()
		if err != nil {
			return Spec{}, err
		}
		spec.Rules = append(spec.Rules, r)
	}
}

type specParser struct {
	s string
	i int
}

func (p *specParser) eof() bool { return p.i >= len(p.s) }

func (p *specParser) rest() string { return p.s[p.i:] }

func (p *specParser) space() {
	for !p.eof() && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func identByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '-' || c == '_' || c == '+' || c == '.'
}

// ident consumes a run of identifier bytes (possibly empty).
func (p *specParser) ident() string {
	start := p.i
	for !p.eof() && identByte(p.s[p.i]) {
		p.i++
	}
	return p.s[start:p.i]
}

func (p *specParser) consume(c byte) bool {
	if !p.eof() && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

type specArg struct {
	key string // "" for a bare positional token
	val string
}

// args parses an optional parenthesised argument list.
func (p *specParser) args(owner string) ([]specArg, error) {
	if !p.consume('(') {
		return nil, nil
	}
	var out []specArg
	for {
		p.space()
		if p.consume(')') {
			return out, nil
		}
		tok := p.ident()
		if tok == "" {
			return nil, fmt.Errorf("spec: %s: expected argument, got %q", owner, p.rest())
		}
		a := specArg{val: tok}
		if p.consume('=') {
			a.key = tok
			a.val = p.ident()
			if a.val == "" {
				return nil, fmt.Errorf("spec: %s: missing value for %q", owner, a.key)
			}
		}
		out = append(out, a)
		p.space()
		if p.consume(',') {
			continue
		}
		if p.consume(')') {
			return out, nil
		}
		return nil, fmt.Errorf("spec: %s: expected ',' or ')', got %q", owner, p.rest())
	}
}

func (p *specParser) rule() (Rule, error) {
	var r Rule
	if !strings.HasPrefix(p.rest(), "on:") {
		return r, fmt.Errorf("spec: rule must start with \"on:<phase>\", got %q", p.rest())
	}
	p.i += len("on:")
	name := p.ident()
	ph, ok := parsePhase(name)
	if !ok {
		return r, fmt.Errorf("spec: unknown phase %q", name)
	}
	r.Trigger.Phase = ph
	args, err := p.args("trigger on:" + name)
	if err != nil {
		return r, err
	}
	for _, a := range args {
		switch {
		case a.key == "" && a.val == "rexmit":
			r.Trigger.Rexmit = true
		case a.key == "min":
			n, err := strconv.Atoi(a.val)
			if err != nil || n < 0 {
				return r, fmt.Errorf("spec: trigger on:%s: bad min %q", name, a.val)
			}
			r.Trigger.Min = n
		default:
			return r, fmt.Errorf("spec: trigger on:%s: unknown argument %q", name, a.val)
		}
	}
	p.space()
	if !p.consume('[') {
		return r, fmt.Errorf("spec: missing '[' after %s", r.Trigger.String())
	}
	p.space()
	if p.consume(']') {
		return r, nil
	}
	for {
		p.space()
		act, err := p.action()
		if err != nil {
			return r, err
		}
		r.Actions = append(r.Actions, act)
		p.space()
		if p.consume(';') {
			continue
		}
		if p.consume(']') {
			return r, nil
		}
		if p.eof() {
			return r, fmt.Errorf("spec: missing ']' to close %s", r.Trigger.String())
		}
		return r, fmt.Errorf("spec: expected ';' or ']', got %q", p.rest())
	}
}

func (p *specParser) action() (Action, error) {
	name := p.ident()
	if name == "" {
		return nil, fmt.Errorf("spec: expected primitive name, got %q", p.rest())
	}
	args, err := p.args(name)
	if err != nil {
		return nil, err
	}
	return buildAction(name, args)
}

// buildAction validates one primitive invocation.
func buildAction(name string, args []specArg) (Action, error) {
	bad := func(format string, a ...any) (Action, error) {
		return nil, fmt.Errorf("spec: "+name+": "+format, a...)
	}
	switch name {
	case "inject":
		act := InjectAction{Disc: DiscNone}
		kindSet := false
		for _, a := range args {
			switch a.key {
			case "":
				k, ok := parseInjectKind(a.val)
				if !ok {
					return bad("unknown kind %q", a.val)
				}
				act.Kind, kindSet = k, true
			case "disc":
				d, ok := ParseDiscrepancy(a.val)
				if !ok {
					return bad("unknown discrepancy %q", a.val)
				}
				act.Disc = d
			default:
				return bad("unknown argument %q", a.key)
			}
		}
		if !kindSet {
			return bad("missing kind (syn, synack, desync or prefill)")
		}
		return act, nil
	case "teardown":
		act := TeardownAction{Disc: DiscNone}
		flagsSet := false
		for _, a := range args {
			switch a.key {
			case "flags":
				fl, ok := parseFlagsToken(a.val)
				if !ok {
					return bad("unknown flags %q", a.val)
				}
				act.Flags, flagsSet = fl, true
			case "disc":
				d, ok := ParseDiscrepancy(a.val)
				if !ok {
					return bad("unknown discrepancy %q", a.val)
				}
				act.Disc = d
			default:
				return bad("unknown argument %q", a.val)
			}
		}
		if !flagsSet {
			return bad("missing flags (rst, rstack, fin or finack)")
		}
		return act, nil
	case "fragment":
		act := FragmentAction{}
		laySet := false
		for _, a := range args {
			switch a.key {
			case "":
				switch a.val {
				case "ip":
					act.Layer, laySet = LayerIP, true
				case "tcp":
					act.Layer, laySet = LayerTCP, true
				default:
					return bad("unknown layer %q", a.val)
				}
			case "at":
				n, err := strconv.Atoi(a.val)
				if err != nil || n <= 0 {
					return bad("bad at %q", a.val)
				}
				act.At = n
			default:
				return bad("unknown argument %q", a.val)
			}
		}
		if !laySet {
			return bad("missing layer (ip or tcp)")
		}
		if act.Layer == LayerTCP && act.At == 0 {
			act.At = 4
		}
		return act, nil
	case "reorder":
		if len(args) != 1 || args[0].key != "" || args[0].val != "head-last" {
			return bad("want reorder(head-last)")
		}
		return ReorderAction{}, nil
	case "duplicate":
		act := DuplicateAction{Fill: FillJunk, Pos: PosBefore}
		selSet := false
		for _, a := range args {
			switch a.key {
			case "":
				if a.val != "tails" {
					return bad("unknown selector %q", a.val)
				}
				selSet = true
			case "fill":
				switch a.val {
				case "junk":
					act.Fill = FillJunk
				case "copy":
					act.Fill = FillCopy
				default:
					return bad("unknown fill %q", a.val)
				}
			case "pos":
				switch a.val {
				case "before":
					act.Pos = PosBefore
				case "after":
					act.Pos = PosAfter
				default:
					return bad("unknown pos %q", a.val)
				}
			default:
				return bad("unknown argument %q", a.val)
			}
		}
		if !selSet {
			return bad("missing selector (tails)")
		}
		return act, nil
	case "tamper":
		if len(args) != 1 {
			return bad("want exactly one of md5, ttl=N, flags=F, seq=±N")
		}
		a := args[0]
		switch {
		case a.key == "" && a.val == "md5":
			return TamperAction{Kind: TamperMD5}, nil
		case a.key == "ttl":
			n, err := strconv.Atoi(a.val)
			if err != nil || n < 1 || n > 255 {
				return bad("bad ttl %q", a.val)
			}
			return TamperAction{Kind: TamperTTL, TTL: uint8(n)}, nil
		case a.key == "flags":
			fl, ok := parseFlagsToken(a.val)
			if !ok {
				return bad("unknown flags %q", a.val)
			}
			return TamperAction{Kind: TamperFlags, Flags: fl}, nil
		case a.key == "seq":
			n, err := strconv.Atoi(a.val)
			if err != nil || n == 0 {
				return bad("bad seq delta %q", a.val)
			}
			return TamperAction{Kind: TamperSeq, Delta: n}, nil
		default:
			return bad("unknown argument %q", a.val)
		}
	case "delay":
		if len(args) != 1 || args[0].key != "ms" {
			return bad("want delay(ms=N)")
		}
		n, err := strconv.Atoi(args[0].val)
		if err != nil || n <= 0 {
			return bad("bad ms %q", args[0].val)
		}
		return DelayAction{Ms: n}, nil
	default:
		return nil, fmt.Errorf("spec: unknown primitive %q", name)
	}
}
