package dpi

import (
	"bytes"
	"encoding/binary"
	"strings"
)

// Protocol is an application protocol the classifier recognizes.
type Protocol int

// Recognized protocols.
const (
	ProtoUnknown Protocol = iota
	ProtoHTTP
	ProtoDNSTCP
	ProtoTLS
	ProtoTor
	ProtoOpenVPN
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtoHTTP:
		return "http"
	case ProtoDNSTCP:
		return "dns-tcp"
	case ProtoTLS:
		return "tls"
	case ProtoTor:
		return "tor"
	case ProtoOpenVPN:
		return "openvpn"
	default:
		return "unknown"
	}
}

var httpMethods = []string{"GET ", "POST ", "HEAD ", "PUT ", "DELETE ", "OPTIONS ", "CONNECT "}

// ClassifyClientStream identifies the application protocol from the
// first bytes a client sends, together with the destination port —
// mirroring how DPI boxes pick a parser.
func ClassifyClientStream(dstPort uint16, prefix []byte) Protocol {
	if dstPort == 53 {
		return ProtoDNSTCP
	}
	for _, m := range httpMethods {
		if len(prefix) >= len(m) && string(prefix[:len(m)]) == m {
			return ProtoHTTP
		}
	}
	if isTLSClientHello(prefix) {
		if hasTorCipherFingerprint(prefix) {
			return ProtoTor
		}
		return ProtoTLS
	}
	if isOpenVPN(prefix) {
		return ProtoOpenVPN
	}
	return ProtoUnknown
}

// HTTPRequestInfo is what the GFW extracts from a plaintext request.
type HTTPRequestInfo struct {
	Method string
	URI    string
	Host   string
}

// ParseHTTPRequest extracts method, URI and Host from a plaintext HTTP
// request head. It is forgiving: it works on partial requests as long
// as the request line is complete.
func ParseHTTPRequest(data []byte) (HTTPRequestInfo, bool) {
	var info HTTPRequestInfo
	line, rest, found := bytes.Cut(data, []byte("\r\n"))
	if !found {
		return info, false
	}
	parts := strings.SplitN(string(line), " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return info, false
	}
	info.Method, info.URI = parts[0], parts[1]
	for {
		var hline []byte
		hline, rest, found = bytes.Cut(rest, []byte("\r\n"))
		if len(hline) == 0 {
			break
		}
		if k, v, ok := bytes.Cut(hline, []byte(":")); ok {
			if strings.EqualFold(string(bytes.TrimSpace(k)), "host") {
				info.Host = string(bytes.TrimSpace(v))
			}
		}
		if !found {
			break
		}
	}
	return info, true
}

// DNSTCPQueryName extracts the first query name from a DNS-over-TCP
// stream prefix (2-byte length prefix, then a DNS message).
func DNSTCPQueryName(data []byte) (string, bool) {
	if len(data) < 2 {
		return "", false
	}
	msgLen := int(binary.BigEndian.Uint16(data))
	if msgLen < 12 || len(data) < 2+12 {
		return "", false
	}
	msg := data[2:]
	if msgLen < len(msg) {
		msg = msg[:msgLen]
	}
	return dnsQueryName(msg)
}

// DNSUDPQueryName extracts the first query name from a raw UDP DNS
// message.
func DNSUDPQueryName(data []byte) (string, bool) {
	return dnsQueryName(data)
}

func dnsQueryName(msg []byte) (string, bool) {
	if len(msg) < 12 {
		return "", false
	}
	qd := binary.BigEndian.Uint16(msg[4:])
	if qd == 0 {
		return "", false
	}
	var labels []string
	p := 12
	for {
		if p >= len(msg) {
			return "", false
		}
		n := int(msg[p])
		if n == 0 {
			break
		}
		if n >= 0xc0 { // compression pointer: not expected in a query
			return "", false
		}
		p++
		if p+n > len(msg) {
			return "", false
		}
		labels = append(labels, string(msg[p:p+n]))
		p += n
	}
	if len(labels) == 0 {
		return "", false
	}
	return strings.Join(labels, "."), true
}

// TLS record/handshake constants.
const (
	tlsRecordHandshake = 0x16
	tlsClientHello     = 0x01
)

func isTLSClientHello(data []byte) bool {
	return len(data) >= 6 &&
		data[0] == tlsRecordHandshake &&
		data[1] == 3 && // TLS major version
		data[5] == tlsClientHello
}

// TorCipherMarker is the byte string our simulated Tor client embeds in
// its ClientHello cipher-suite region. The live GFW fingerprints Tor by
// its distinctive cipher list (Winter & Lindskog 2012); the simulated
// client reproduces a distinctive, fingerprintable handshake the same
// way.
var TorCipherMarker = []byte{0xc0, 0x2b, 0xc0, 0x2f, 0x00, 0x9e, 0xcc, 0x14, 0xcc, 0x13}

func hasTorCipherFingerprint(data []byte) bool {
	return bytes.Contains(data, TorCipherMarker)
}

// isOpenVPN recognizes an OpenVPN-over-TCP session start: a 2-byte
// length prefix followed by a P_CONTROL_HARD_RESET_CLIENT_V2 opcode
// (0x38 = opcode 7 << 3).
func isOpenVPN(data []byte) bool {
	if len(data) < 3 {
		return false
	}
	plen := int(binary.BigEndian.Uint16(data))
	return plen >= 14 && data[2] == 0x38
}
