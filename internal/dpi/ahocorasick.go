// Package dpi implements the deep-packet-inspection primitives the GFW
// model is built on: an Aho–Corasick multi-pattern keyword matcher (the
// rule-based detection engine of §2.1) and lightweight protocol
// classifiers for HTTP requests, DNS-over-TCP, Tor TLS handshakes, and
// OpenVPN-over-TCP.
package dpi

// Matcher is an Aho–Corasick automaton over byte strings. Matching is
// case-insensitive (ASCII), since censorship keyword lists are.
type Matcher struct {
	// goto function: one dense 256-way row per node. Node 0 is the root.
	next [][256]int32
	fail []int32
	// out[i] holds the pattern indices that end at node i.
	out      [][]int
	patterns []string
}

func lower(b byte) byte {
	if 'A' <= b && b <= 'Z' {
		return b + 'a' - 'A'
	}
	return b
}

// NewMatcher builds an automaton for the given patterns. Empty patterns
// are ignored.
func NewMatcher(patterns []string) *Matcher {
	m := &Matcher{}
	m.addNode()
	for idx, p := range patterns {
		if p == "" {
			continue
		}
		m.patterns = append(m.patterns, p)
		node := int32(0)
		for i := 0; i < len(p); i++ {
			c := lower(p[i])
			if m.next[node][c] == 0 {
				m.next[node][c] = m.addNode()
			}
			node = m.next[node][c]
		}
		_ = idx
		m.out[node] = append(m.out[node], len(m.patterns)-1)
	}
	// BFS to build failure links and convert goto to a full transition
	// function.
	queue := make([]int32, 0, len(m.next))
	for c := 0; c < 256; c++ {
		if n := m.next[0][c]; n != 0 {
			m.fail[n] = 0
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for c := 0; c < 256; c++ {
			v := m.next[u][c]
			if v == 0 {
				m.next[u][c] = m.next[m.fail[u]][c]
				continue
			}
			m.fail[v] = m.next[m.fail[u]][c]
			m.out[v] = append(m.out[v], m.out[m.fail[v]]...)
			queue = append(queue, v)
		}
	}
	return m
}

func (m *Matcher) addNode() int32 {
	m.next = append(m.next, [256]int32{})
	m.fail = append(m.fail, 0)
	m.out = append(m.out, nil)
	return int32(len(m.next) - 1)
}

// Match is one pattern occurrence.
type Match struct {
	// Pattern is the matched pattern text.
	Pattern string
	// End is the byte offset just past the occurrence.
	End int
}

// Scan returns every pattern occurrence in data.
func (m *Matcher) Scan(data []byte) []Match {
	var matches []Match
	node := int32(0)
	for i := 0; i < len(data); i++ {
		node = m.next[node][lower(data[i])]
		for _, pi := range m.out[node] {
			matches = append(matches, Match{Pattern: m.patterns[pi], End: i + 1})
		}
	}
	return matches
}

// Contains reports whether any pattern occurs in data.
func (m *Matcher) Contains(data []byte) bool {
	node := int32(0)
	for i := 0; i < len(data); i++ {
		node = m.next[node][lower(data[i])]
		if len(m.out[node]) > 0 {
			return true
		}
	}
	return false
}

// Patterns returns the patterns the matcher was built with.
func (m *Matcher) Patterns() []string { return m.patterns }

// StreamScanner runs a Matcher incrementally over a byte stream,
// carrying automaton state across chunk boundaries so keywords split
// between segments are still found — the property that distinguishes
// the paper's type-2 (reassembling) GFW devices from type-1 devices.
type StreamScanner struct {
	m    *Matcher
	node int32
	off  int
}

// NewStreamScanner returns a scanner for m starting at stream offset 0.
func (m *Matcher) NewStreamScanner() *StreamScanner {
	return &StreamScanner{m: m}
}

// Feed consumes the next chunk of the stream and returns any matches,
// with End offsets relative to the whole stream.
func (s *StreamScanner) Feed(chunk []byte) []Match {
	var matches []Match
	for i := 0; i < len(chunk); i++ {
		s.node = s.m.next[s.node][lower(chunk[i])]
		for _, pi := range s.m.out[s.node] {
			matches = append(matches, Match{Pattern: s.m.patterns[pi], End: s.off + i + 1})
		}
	}
	s.off += len(chunk)
	return matches
}

// Reset returns the scanner to the stream start.
func (s *StreamScanner) Reset() {
	s.node = 0
	s.off = 0
}

// Offset returns the number of stream bytes consumed.
func (s *StreamScanner) Offset() int { return s.off }
