package dpi

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatcherBasic(t *testing.T) {
	m := NewMatcher([]string{"ultrasurf", "falun", "tor"})
	if !m.Contains([]byte("GET /?q=ultrasurf HTTP/1.1")) {
		t.Fatal("should match ultrasurf")
	}
	if m.Contains([]byte("GET /?q=innocent HTTP/1.1")) {
		t.Fatal("should not match")
	}
	got := m.Scan([]byte("tor and ultrasurf"))
	if len(got) != 2 || got[0].Pattern != "tor" || got[1].Pattern != "ultrasurf" {
		t.Fatalf("scan = %+v", got)
	}
	if got[0].End != 3 {
		t.Fatalf("End = %d", got[0].End)
	}
}

func TestMatcherCaseInsensitive(t *testing.T) {
	m := NewMatcher([]string{"UltraSurf"})
	if !m.Contains([]byte("ULTRASURF")) || !m.Contains([]byte("ultrasurf")) {
		t.Fatal("matching must be case-insensitive")
	}
}

func TestMatcherOverlappingPatterns(t *testing.T) {
	m := NewMatcher([]string{"he", "she", "hers"})
	got := m.Scan([]byte("ushers"))
	if len(got) != 3 {
		t.Fatalf("scan = %+v, want 3 matches", got)
	}
}

func TestMatcherEmptyAndNoPatterns(t *testing.T) {
	m := NewMatcher(nil)
	if m.Contains([]byte("anything")) {
		t.Fatal("empty matcher must match nothing")
	}
	m2 := NewMatcher([]string{"", "x"})
	if len(m2.Patterns()) != 1 {
		t.Fatal("empty pattern should be dropped")
	}
}

func TestMatcherAgainstNaiveSearch(t *testing.T) {
	patterns := []string{"abc", "bca", "aa", "cab"}
	m := NewMatcher(patterns)
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n))
		for i := range data {
			data[i] = "abc"[rng.Intn(3)]
		}
		want := false
		for _, p := range patterns {
			if strings.Contains(string(data), p) {
				want = true
			}
		}
		return m.Contains(data) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamScannerAcrossChunks(t *testing.T) {
	m := NewMatcher([]string{"ultrasurf"})
	s := m.NewStreamScanner()
	if got := s.Feed([]byte("GET /?q=ultra")); len(got) != 0 {
		t.Fatalf("premature match: %+v", got)
	}
	got := s.Feed([]byte("surf HTTP/1.1"))
	if len(got) != 1 || got[0].End != len("GET /?q=ultrasurf") {
		t.Fatalf("split keyword: %+v", got)
	}
	s.Reset()
	if s.Offset() != 0 {
		t.Fatal("reset failed")
	}
}

func TestClassifyHTTP(t *testing.T) {
	if p := ClassifyClientStream(80, []byte("GET / HTTP/1.1\r\n")); p != ProtoHTTP {
		t.Fatalf("got %v", p)
	}
	if p := ClassifyClientStream(80, []byte("POST /x HTTP/1.1\r\n")); p != ProtoHTTP {
		t.Fatalf("got %v", p)
	}
	if p := ClassifyClientStream(80, []byte("\x00\x01\x02")); p != ProtoUnknown {
		t.Fatalf("got %v", p)
	}
}

func TestParseHTTPRequest(t *testing.T) {
	req := []byte("GET /search?q=ultrasurf HTTP/1.1\r\nHost: www.example.com\r\nUser-Agent: x\r\n\r\n")
	info, ok := ParseHTTPRequest(req)
	if !ok {
		t.Fatal("parse failed")
	}
	if info.Method != "GET" || info.URI != "/search?q=ultrasurf" || info.Host != "www.example.com" {
		t.Fatalf("info = %+v", info)
	}
	if _, ok := ParseHTTPRequest([]byte("nonsense")); ok {
		t.Fatal("should not parse nonsense")
	}
	if _, ok := ParseHTTPRequest([]byte("GET /incomplete")); ok {
		t.Fatal("incomplete request line should not parse")
	}
}

// buildDNSQuery assembles a minimal DNS query message for name.
func buildDNSQuery(name string) []byte {
	var b []byte
	b = append(b, 0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0)
	for _, label := range strings.Split(name, ".") {
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	b = append(b, 0, 0, 1, 0, 1)
	return b
}

func TestDNSQueryNameExtraction(t *testing.T) {
	msg := buildDNSQuery("www.dropbox.com")
	if got, ok := DNSUDPQueryName(msg); !ok || got != "www.dropbox.com" {
		t.Fatalf("udp qname = %q ok=%v", got, ok)
	}
	tcp := make([]byte, 2+len(msg))
	binary.BigEndian.PutUint16(tcp, uint16(len(msg)))
	copy(tcp[2:], msg)
	if got, ok := DNSTCPQueryName(tcp); !ok || got != "www.dropbox.com" {
		t.Fatalf("tcp qname = %q ok=%v", got, ok)
	}
	if _, ok := DNSTCPQueryName([]byte{0}); ok {
		t.Fatal("truncated stream should not parse")
	}
	if _, ok := DNSUDPQueryName(make([]byte, 12)); ok {
		t.Fatal("no-question message should not parse")
	}
}

func TestClassifyTorVsTLS(t *testing.T) {
	hello := []byte{tlsRecordHandshake, 3, 1, 0, 50, tlsClientHello}
	hello = append(hello, bytes.Repeat([]byte{0}, 20)...)
	if p := ClassifyClientStream(443, hello); p != ProtoTLS {
		t.Fatalf("plain TLS classified %v", p)
	}
	tor := append(append([]byte{}, hello...), TorCipherMarker...)
	if p := ClassifyClientStream(9001, tor); p != ProtoTor {
		t.Fatalf("tor hello classified %v", p)
	}
}

func TestClassifyOpenVPN(t *testing.T) {
	pkt := []byte{0x00, 0x20, 0x38}
	pkt = append(pkt, bytes.Repeat([]byte{0xaa}, 32)...)
	if p := ClassifyClientStream(1194, pkt); p != ProtoOpenVPN {
		t.Fatalf("openvpn classified %v", p)
	}
}

func TestClassifyDNSByPort(t *testing.T) {
	if p := ClassifyClientStream(53, []byte{0, 10}); p != ProtoDNSTCP {
		t.Fatalf("got %v", p)
	}
}

func TestProtocolStrings(t *testing.T) {
	for _, p := range []Protocol{ProtoUnknown, ProtoHTTP, ProtoDNSTCP, ProtoTLS, ProtoTor, ProtoOpenVPN} {
		if p.String() == "" {
			t.Fatal("empty protocol name")
		}
	}
}
