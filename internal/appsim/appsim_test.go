package appsim

import (
	"bytes"
	"testing"
	"time"

	"intango/internal/dnsmsg"
	"intango/internal/dpi"
	"intango/internal/netem"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

var (
	cliAddr = packet.AddrFrom4(10, 0, 0, 1)
	srvAddr = packet.AddrFrom4(203, 0, 113, 80)
)

func pair(t *testing.T) (*netem.Simulator, *tcpstack.Stack, *tcpstack.Stack) {
	t.Helper()
	sim := netem.NewSimulator(3)
	p := &netem.Path{Sim: sim}
	p.Hops = append(p.Hops, &netem.Hop{Name: "r", Router: true, Latency: time.Millisecond})
	cli := tcpstack.NewStack(cliAddr, tcpstack.Linux44(), sim)
	srv := tcpstack.NewStack(srvAddr, tcpstack.Linux44(), sim)
	cli.AttachClient(p)
	srv.AttachServer(p)
	return sim, cli, srv
}

func TestHTTPServerAndCompletion(t *testing.T) {
	sim, cli, srv := pair(t)
	ServeHTTP(srv, 80)
	c := cli.Connect(srvAddr, 80)
	sim.RunFor(100 * time.Millisecond)
	c.Write(HTTPRequest("example.com", "/index.html"))
	sim.RunFor(time.Second)
	if !bytes.Contains(c.Received(), []byte("200 OK")) {
		t.Fatalf("no response: %q", c.Received())
	}
	if !HTTPResponseComplete(c.Received()) {
		t.Fatal("response should be complete")
	}
	if HTTPResponseComplete([]byte("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc")) {
		t.Fatal("short body should be incomplete")
	}
	// The page must not echo the request (no response-censorship bait).
	if bytes.Contains(c.Received(), []byte("index.html")) {
		t.Fatal("response echoes the URI")
	}
}

func TestHTTPServerPipelinedRequests(t *testing.T) {
	sim, cli, srv := pair(t)
	ServeHTTP(srv, 80)
	c := cli.Connect(srvAddr, 80)
	sim.RunFor(100 * time.Millisecond)
	c.Write(HTTPRequest("a.com", "/1"))
	sim.RunFor(time.Second)
	c.Write(HTTPRequest("a.com", "/2"))
	sim.RunFor(time.Second)
	if n := bytes.Count(c.Received(), []byte("200 OK")); n != 2 {
		t.Fatalf("responses = %d, want 2", n)
	}
}

func TestDNSUDPResolver(t *testing.T) {
	sim, cli, srv := pair(t)
	want := packet.AddrFrom4(93, 184, 216, 34)
	ServeDNSUDP(srv, Zone{"example.com": want})
	var got []packet.Addr
	cli.ListenUDP(4000, func(src packet.Addr, sp uint16, payload []byte) {
		m, err := dnsmsg.Decode(payload)
		if err == nil && len(m.Answers) > 0 {
			got = append(got, m.Answers[0].Addr)
		}
	})
	q, _ := dnsmsg.NewQuery(1, "example.com").Encode()
	cli.SendUDP(4000, srvAddr, 53, q)
	q2, _ := dnsmsg.NewQuery(2, "other.org").Encode()
	cli.SendUDP(4000, srvAddr, 53, q2)
	sim.RunFor(time.Second)
	if len(got) != 2 || got[0] != want {
		t.Fatalf("answers = %v", got)
	}
	if got[1] == (packet.Addr{}) {
		t.Fatal("fallback answer empty")
	}
}

func TestDNSTCPResolver(t *testing.T) {
	sim, cli, srv := pair(t)
	want := packet.AddrFrom4(1, 2, 3, 4)
	ServeDNSTCP(srv, Zone{"dropbox.com": want})
	c := cli.Connect(srvAddr, 53)
	sim.RunFor(100 * time.Millisecond)
	q, _ := dnsmsg.NewQuery(9, "dropbox.com").Encode()
	c.Write(dnsmsg.FrameTCP(q))
	sim.RunFor(time.Second)
	msgs, _ := dnsmsg.UnframeTCP(c.Received())
	if len(msgs) != 1 {
		t.Fatalf("messages = %d", len(msgs))
	}
	m, err := dnsmsg.Decode(msgs[0])
	if err != nil || len(m.Answers) != 1 || m.Answers[0].Addr != want {
		t.Fatalf("answer = %+v err=%v", m, err)
	}
}

func TestTorHandshakeIsFingerprintable(t *testing.T) {
	hello := TorClientHello()
	if p := dpi.ClassifyClientStream(9001, hello); p != dpi.ProtoTor {
		t.Fatalf("classified %v, want tor", p)
	}
	sim, cli, srv := pair(t)
	ServeTorBridge(srv, 9001)
	c := cli.Connect(srvAddr, 9001)
	sim.RunFor(100 * time.Millisecond)
	c.Write(hello)
	sim.RunFor(time.Second)
	if len(c.Received()) == 0 || c.Received()[0] != 0x16 {
		t.Fatalf("no server hello: %x", c.Received())
	}
	c.Write([]byte("relaycell"))
	sim.RunFor(time.Second)
	if !bytes.Contains(c.Received(), []byte("TORCELL")) {
		t.Fatal("no relay cell echoed")
	}
}

func TestOpenVPNFingerprintAndResponse(t *testing.T) {
	pkt := OpenVPNClientReset()
	if p := dpi.ClassifyClientStream(1194, pkt); p != dpi.ProtoOpenVPN {
		t.Fatalf("classified %v, want openvpn", p)
	}
	sim, cli, srv := pair(t)
	ServeOpenVPN(srv, 1194)
	c := cli.Connect(srvAddr, 1194)
	sim.RunFor(100 * time.Millisecond)
	c.Write(pkt)
	sim.RunFor(time.Second)
	if len(c.Received()) < 3 || c.Received()[2] != 0x40 {
		t.Fatalf("no HARD_RESET_SERVER: %x", c.Received())
	}
}

func TestZoneFallbackDeterministic(t *testing.T) {
	z := Zone{}
	a := z.lookup("some.random.name")
	b := z.lookup("some.random.name")
	if a != b {
		t.Fatal("fallback lookup not deterministic")
	}
	if a == (packet.Addr{}) {
		t.Fatal("fallback empty")
	}
}

func TestHTTPSRedirectEchoesURI(t *testing.T) {
	sim, cli, srv := pair(t)
	ServeHTTPSRedirect(srv, 443, "secure.example.com")
	c := cli.Connect(srvAddr, 443)
	sim.RunFor(100 * time.Millisecond)
	c.Write(HTTPRequest("x", "/?q=ultrasurf"))
	sim.RunFor(time.Second)
	if !bytes.Contains(c.Received(), []byte("301 Moved Permanently")) {
		t.Fatalf("no redirect: %q", c.Received())
	}
	if !bytes.Contains(c.Received(), []byte("Location: https://secure.example.com/?q=ultrasurf")) {
		t.Fatalf("Location header must copy the URI: %q", c.Received())
	}
	// A malformed request still gets a redirect (defensive default).
	c2 := cli.Connect(srvAddr, 443)
	sim.RunFor(100 * time.Millisecond)
	c2.Write([]byte("garbage\r\n\r\n"))
	sim.RunFor(time.Second)
	if !bytes.Contains(c2.Received(), []byte("Location: https://secure.example.com/")) {
		t.Fatalf("fallback redirect missing: %q", c2.Received())
	}
}
