// Package appsim provides the application-layer endpoints the
// experiments run over the simulated network: a plaintext HTTP server
// and client (the Alexa-website stand-ins of §3.3), DNS resolvers over
// UDP and TCP (§7.2), a Tor bridge with its fingerprintable handshake
// (§7.3), and an OpenVPN-over-TCP peer.
package appsim

import (
	"bytes"
	"fmt"
	"strings"

	"intango/internal/dnsmsg"
	"intango/internal/dpi"
	"intango/internal/packet"
	"intango/internal/tcpstack"
)

// ServeHTTP installs a minimal HTTP/1.1 server on port. It answers
// every complete request with a 200 page; the page never echoes the
// request (mirroring the §3.3 site selection, which excluded servers
// that copy the URI into the response and so trip response censorship).
func ServeHTTP(stack *tcpstack.Stack, port uint16) {
	stack.Listen(port, func(c *tcpstack.Conn) {
		served := 0
		c.OnData = func([]byte) {
			buf := c.Received()[served:]
			idx := bytes.Index(buf, []byte("\r\n\r\n"))
			if idx < 0 {
				return
			}
			served += idx + 4
			body := "<html><body>it works</body></html>"
			c.Write([]byte(fmt.Sprintf(
				"HTTP/1.1 200 OK\r\nServer: sim\r\nContent-Length: %d\r\n\r\n%s", len(body), body)))
		}
	})
}

// HTTPRequest renders a GET for uri against host.
func HTTPRequest(host, uri string) []byte {
	return []byte(fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\nUser-Agent: intango\r\nAccept: */*\r\n\r\n", uri, host))
}

// HTTPUpload renders a POST of size deterministic body bytes against
// host — the client half of the goodput experiments, which measure how
// much of a constrained uplink an evasion strategy leaves for data.
func HTTPUpload(host, uri string, size int) []byte {
	head := fmt.Sprintf("POST %s HTTP/1.1\r\nHost: %s\r\nUser-Agent: intango\r\nContent-Length: %d\r\n\r\n", uri, host, size)
	req := make([]byte, 0, len(head)+size)
	req = append(req, head...)
	for i := 0; i < size; i++ {
		req = append(req, 'a'+byte(i%26))
	}
	return req
}

// ServeHTTPUpload installs an HTTP/1.1 server that consumes a POST
// body of the declared Content-Length and answers 200 once the upload
// is complete. Like ServeHTTP, the response never echoes the request.
func ServeHTTPUpload(stack *tcpstack.Stack, port uint16) {
	stack.Listen(port, func(c *tcpstack.Conn) {
		served := 0
		c.OnData = func([]byte) {
			buf := c.Received()[served:]
			if !HTTPResponseComplete(buf) {
				// Same framing rule as a response: headers plus declared
				// body length. Incomplete upload — keep reading.
				return
			}
			idx := bytes.Index(buf, []byte("\r\n\r\n"))
			want := 0
			for _, line := range strings.Split(string(buf[:idx]), "\r\n") {
				if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(strings.TrimSpace(k), "content-length") {
					fmt.Sscanf(strings.TrimSpace(v), "%d", &want)
				}
			}
			served += idx + 4 + want
			c.Write([]byte("HTTP/1.1 200 OK\r\nServer: sim\r\nContent-Length: 2\r\n\r\nok"))
		}
	})
}

// HTTPResponseComplete reports whether buf contains a complete HTTP
// response (headers plus declared body).
func HTTPResponseComplete(buf []byte) bool {
	head, rest, ok := bytes.Cut(buf, []byte("\r\n\r\n"))
	if !ok {
		return false
	}
	want := 0
	for _, line := range strings.Split(string(head), "\r\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(strings.TrimSpace(k), "content-length") {
			fmt.Sscanf(strings.TrimSpace(v), "%d", &want)
		}
	}
	return len(rest) >= want
}

// Zone maps domain names to addresses for the resolver apps.
type Zone map[string]packet.Addr

// lookup resolves name in the zone, falling back to a deterministic
// synthetic address so every query gets an answer.
func (z Zone) lookup(name string) packet.Addr {
	if a, ok := z[strings.ToLower(name)]; ok {
		return a
	}
	var h uint32 = 2166136261
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return packet.AddrFrom4(198, 18, byte(h>>8), byte(h))
}

// ServeDNSUDP installs a UDP resolver on port 53.
func ServeDNSUDP(stack *tcpstack.Stack, zone Zone) {
	stack.ListenUDP(53, func(src packet.Addr, srcPort uint16, payload []byte) {
		q, err := dnsmsg.Decode(payload)
		if err != nil || len(q.Questions) == 0 {
			return
		}
		resp := dnsmsg.NewResponse(q, zone.lookup(q.Questions[0].Name), 300)
		b, err := resp.Encode()
		if err != nil {
			return
		}
		stack.SendUDP(53, src, srcPort, b)
	})
}

// ServeDNSTCP installs a DNS-over-TCP resolver on port 53.
func ServeDNSTCP(stack *tcpstack.Stack, zone Zone) {
	stack.Listen(53, func(c *tcpstack.Conn) {
		consumed := 0
		c.OnData = func([]byte) {
			msgs, n := dnsmsg.UnframeTCP(c.Received()[consumed:])
			consumed += n
			for _, raw := range msgs {
				q, err := dnsmsg.Decode(raw)
				if err != nil || len(q.Questions) == 0 {
					continue
				}
				resp := dnsmsg.NewResponse(q, zone.lookup(q.Questions[0].Name), 300)
				b, err := resp.Encode()
				if err != nil {
					continue
				}
				c.Write(dnsmsg.FrameTCP(b))
			}
		}
	})
}

// TorClientHello returns the fingerprintable TLS ClientHello the
// simulated Tor client opens with — carrying the distinctive cipher
// list the GFW fingerprints (Winter & Lindskog 2012).
func TorClientHello() []byte {
	hello := []byte{0x16, 3, 1, 0, 60, 0x01, 0, 0, 56, 3, 3}
	hello = append(hello, bytes.Repeat([]byte{0x5a}, 16)...)
	return append(hello, dpi.TorCipherMarker...)
}

// ServeTorBridge installs a Tor bridge endpoint: it answers a TLS
// ClientHello with a ServerHello-shaped blob and thereafter echoes
// cell-sized chunks, enough to exercise a long-lived circuit.
func ServeTorBridge(stack *tcpstack.Stack, port uint16) {
	stack.Listen(port, func(c *tcpstack.Conn) {
		greeted := false
		c.OnData = func(data []byte) {
			if !greeted {
				greeted = true
				srvHello := []byte{0x16, 3, 3, 0, 10, 0x02, 0, 0, 6, 3, 3, 0, 0, 0, 0}
				c.Write(srvHello)
				return
			}
			// Relay acknowledgment: echo a fixed-size cell.
			cell := make([]byte, 64)
			copy(cell, "TORCELL")
			c.Write(cell)
		}
	})
}

// ServeObfsBridge installs a probe-resistant obfuscated bridge
// (ScrambleSuit-style, Winter & Lindskog's countermeasure): to anything
// that cannot complete the out-of-band-keyed handshake — an active
// prober replaying a vanilla Tor ClientHello — it answers an opaque
// non-TLS blob, so the prober never sees the ServerHello it confirms
// on. Established clients then carry cells as usual.
func ServeObfsBridge(stack *tcpstack.Stack, port uint16) {
	stack.Listen(port, func(c *tcpstack.Conn) {
		greeted := false
		c.OnData = func(data []byte) {
			if !greeted {
				greeted = true
				// Uniformly random-looking bytes: first byte is not a TLS
				// handshake record, so probe confirmation fails.
				blob := bytes.Repeat([]byte{0x7f, 0x3c, 0x91, 0xe8}, 8)
				c.Write(blob)
				return
			}
			cell := make([]byte, 64)
			copy(cell, "OBFSCELL")
			c.Write(cell)
		}
	})
}

// OpenVPNClientReset returns the P_CONTROL_HARD_RESET_CLIENT_V2 opening
// of an OpenVPN-over-TCP session.
func OpenVPNClientReset() []byte {
	pkt := []byte{0x00, 0x2a, 0x38}
	return append(pkt, bytes.Repeat([]byte{0x11}, 42)...)
}

// ServeOpenVPN installs an OpenVPN-over-TCP responder.
func ServeOpenVPN(stack *tcpstack.Stack, port uint16) {
	stack.Listen(port, func(c *tcpstack.Conn) {
		c.OnData = func([]byte) {
			// P_CONTROL_HARD_RESET_SERVER_V2 (opcode 8).
			resp := []byte{0x00, 0x1a, 0x40}
			resp = append(resp, bytes.Repeat([]byte{0x22}, 26)...)
			c.Write(resp)
		}
	})
}

// ServeHTTPSRedirect installs the §3.3 exclusion case: a site that
// answers every plaintext request with a 301 redirect to its HTTPS
// origin, copying the request URI into the Location header — and with
// it any sensitive keyword, which response-censoring GFW devices can
// then catch.
func ServeHTTPSRedirect(stack *tcpstack.Stack, port uint16, host string) {
	stack.Listen(port, func(c *tcpstack.Conn) {
		served := 0
		c.OnData = func([]byte) {
			buf := c.Received()[served:]
			idx := bytes.Index(buf, []byte("\r\n\r\n"))
			if idx < 0 {
				return
			}
			served += idx + 4
			info, ok := dpi.ParseHTTPRequest(buf[:idx+4])
			uri := "/"
			if ok {
				uri = info.URI
			}
			c.Write([]byte(fmt.Sprintf(
				"HTTP/1.1 301 Moved Permanently\r\nLocation: https://%s%s\r\nContent-Length: 0\r\n\r\n", host, uri)))
		}
	})
}
